package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// finalizableClass declares finalize()V that bumps a static counter and
// optionally resurrects the receiver into a static.
func finalizableClass(name string, resurrect bool) *classfile.Class {
	b := classfile.NewClass(name).
		StaticField("finalized", classfile.KindInt).
		StaticField("keeper", classfile.KindRef).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("finalize", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(name, "finalized").Const(1).IAdd().PutStatic(name, "finalized")
			if resurrect {
				a.ALoad(0).PutStatic(name, "keeper")
			}
			a.Return()
		})
	return b.MustBuild()
}

func staticInt(t *testing.T, vm vmLike, c *classfile.Class, iso *core.Isolate, name string) int64 {
	t.Helper()
	f, err := c.LookupStaticField(name)
	if err != nil {
		t.Fatal(err)
	}
	return vm.World().Mirror(c, iso).Statics[f.Slot].I
}

// vmLike is the slice of interp.VM these helpers need.
type vmLike interface {
	World() *core.World
}

func TestFinalizerRunsOnceAndObjectIsReclaimed(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, finalizableClass("fin/Once", false))

	// Allocate an instance and drop it.
	driver := define(t, iso, classfile.NewClass("fin/Driver").
		Method("make", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New("fin/Once").Dup().InvokeSpecial("fin/Once", classfile.InitName, "()V").Pop()
			a.Return()
		}).MustBuild())
	m := findMethod(t, driver, "make")
	if _, th, err := vm.CallRoot(iso, m, nil, 100_000); err != nil || th.Failure() != nil {
		t.Fatalf("%v", err)
	}

	// First GC: the object is unreachable but finalizable -> kept,
	// finalizer scheduled.
	res1 := vm.CollectGarbage(nil)
	if len(res1.PendingFinalize) != 1 {
		t.Fatalf("pending finalizers = %d, want 1", len(res1.PendingFinalize))
	}
	obj := res1.PendingFinalize[0]
	if obj.Dead() {
		t.Fatal("finalizable object swept before its finalizer ran")
	}
	vm.Run(100_000) // run the finalizer thread
	if got := staticInt(t, vm, c, iso, "finalized"); got != 1 {
		t.Fatalf("finalize ran %d times, want 1", got)
	}

	// Second GC: now it is reclaimed, and the finalizer does not rerun.
	res2 := vm.CollectGarbage(nil)
	if len(res2.PendingFinalize) != 0 {
		t.Fatalf("finalizer rescheduled: %d", len(res2.PendingFinalize))
	}
	if !obj.Dead() {
		t.Fatal("object not reclaimed after finalization")
	}
	vm.Run(100_000)
	if got := staticInt(t, vm, c, iso, "finalized"); got != 1 {
		t.Fatalf("finalize reran: %d", got)
	}
}

func TestFinalizerResurrection(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, finalizableClass("fin/Zombie", true))
	driver := define(t, iso, classfile.NewClass("fin/Driver2").
		Method("make", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New("fin/Zombie").Dup().InvokeSpecial("fin/Zombie", classfile.InitName, "()V").Pop()
			a.Return()
		}).MustBuild())
	m := findMethod(t, driver, "make")
	if _, th, err := vm.CallRoot(iso, m, nil, 100_000); err != nil || th.Failure() != nil {
		t.Fatalf("%v", err)
	}

	res := vm.CollectGarbage(nil)
	if len(res.PendingFinalize) != 1 {
		t.Fatalf("pending = %d", len(res.PendingFinalize))
	}
	obj := res.PendingFinalize[0]
	vm.Run(100_000) // finalize() stores `this` into the keeper static

	// The object is now reachable again: it survives collections, but
	// its finalizer never runs a second time (JVM semantics).
	vm.CollectGarbage(nil)
	if obj.Dead() {
		t.Fatal("resurrected object was swept")
	}
	if got := staticInt(t, vm, c, iso, "finalized"); got != 1 {
		t.Fatalf("finalize count = %d", got)
	}
	// Dropping the keeper reference lets the next GC reclaim it for
	// good, silently.
	vm.World().Mirror(c, iso).Statics[func() int {
		f, _ := c.LookupStaticField("keeper")
		return f.Slot
	}()] = heap.Null()
	res = vm.CollectGarbage(nil)
	if len(res.PendingFinalize) != 0 {
		t.Fatal("finalizer scheduled twice")
	}
	if !obj.Dead() {
		t.Fatal("zombie survived without references")
	}
}

func TestKilledIsolateObjectsAreNotFinalized(t *testing.T) {
	vm, _ := newVM(t, core.ModeIsolated) // isolate0 = "main"
	bundle, err := vm.NewIsolate("bundle")
	if err != nil {
		t.Fatal(err)
	}
	define(t, bundle, finalizableClass("fin/Killed", false))
	c, err := bundle.Loader().Lookup("fin/Killed")
	if err != nil {
		t.Fatal(err)
	}
	driver := classfile.NewClass("fin/Driver3").
		Method("make", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New("fin/Killed").Dup().InvokeSpecial("fin/Killed", classfile.InitName, "()V").Pop()
			a.Return()
		}).MustBuild()
	if err := bundle.Loader().Define(driver); err != nil {
		t.Fatal(err)
	}
	m, _ := driver.LookupMethod("make", "()V")
	if _, th, err := vm.CallRoot(bundle, m, nil, 100_000); err != nil || th.Failure() != nil {
		t.Fatalf("%v", err)
	}
	if err := vm.KillIsolate(nil, bundle); err != nil {
		t.Fatal(err)
	}
	res := vm.CollectGarbage(nil)
	// The object is still *queued* by the heap (it cannot know about
	// isolates), but the VM refuses to run killed code: no finalizer
	// thread is spawned and the account stays zero.
	vm.Run(100_000)
	if bundle.Account().FinalizersRun.Load() != 0 {
		t.Fatal("killed isolate's finalizer ran")
	}
	_ = res
	// The next collection reclaims it without ever executing its code.
	vm.CollectGarbage(nil)
	mirror := vm.World().MirrorIfPresent(c, bundle)
	if mirror != nil && mirror.Statics[0].I != 0 {
		t.Fatal("finalize body executed for a killed isolate")
	}
}
