package interp

import (
	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/heap"
)

// Superinstruction handlers. The preparation pass (prepare.go,
// fuseSuperinstructions) rewrites the head instruction's handler index of
// common quickened sequences; followers keep their original form, so every
// operand a handler needs is read from p.Instrs[pc+1..] and an entry at a
// follower pc (branch target, handler target, re-quickened resume) simply
// executes the original single instruction.
//
// Contracts, shared with tier.go:
//
//   - Before any state mutation, a handler reserves its prefix
//     sub-instructions against the quantum (t.qa). When the group does not
//     fit — or no engine loop owns the thread — it bails to the head's
//     base handler, executing exactly one original instruction.
//   - Full-inline shapes contain only non-throwing sub-instructions and
//     return nil; the engine loop's post-step charge covers the last
//     sub-instruction, and chargeSubs covers the w-1 before it.
//   - Delegated-final shapes materialize the prefix's exact stack effect,
//     advance f.pc to the final sub-instruction, and tail-dispatch it
//     through the live handler table: throws, allocation, invocation,
//     mode-specialized quickenings and a final that is itself a fused
//     head (the group then charges its own subs) all behave exactly as
//     unfused execution.
//   - Net-zero stack traffic is elided (e.g. load/load/compare-branch
//     never touches f.stack): nothing can observe the intermediate stack
//     inside one step — no safepoint, no throw, no GC root scan.
//
// Follower handler indices are read at group-match time from the original
// opcodes, so reading a follower's H at run time is safe: branches,
// arithmetic, stores and invokes are never fusion heads (only loads,
// iconst, iinc and getfield are), so their H is always the original
// opcode value.

// registerFusedHandlers installs the superinstruction handlers into a
// base dispatch table (called from handlers.go's init before the base is
// copied into the mode-specialized tables). The handlers themselves are
// mode-neutral: anything mode-specialized appears only as a delegated
// final, dispatched through the VM's live table.
func registerFusedHandlers(base *[256]phandler) {
	reg := func(h uint8, fn phandler) { base[h] = fn }
	reg(bytecode.FusedLLOpStore, pFusedLLOpStore)
	reg(bytecode.FusedLCOpStore, pFusedLCOpStore)
	reg(bytecode.FusedLLOp, pFusedLLOp)
	reg(bytecode.FusedLCOp, pFusedLCOp)
	reg(bytecode.FusedLLCmpBr, pFusedLLCmpBr)
	reg(bytecode.FusedLCCmpBr, pFusedLCCmpBr)
	reg(bytecode.FusedIncGoto, pFusedIncGoto)
	reg(bytecode.FusedConstStore, pFusedConstStore)
	reg(bytecode.FusedLLThen, pFusedLLThen)
	reg(bytecode.FusedLCThen, pFusedLCThen)
	reg(bytecode.FusedLThen, pFusedLThen)
	reg(bytecode.FusedGetFieldThen, pFusedGetFieldThen)
}

// pureBinop evaluates one of the nine non-throwing int ops (the fusion
// matcher admits no others into inline op positions), mirroring the base
// handlers bit for bit (shift counts masked to 63).
func pureBinop(h uint8, a, b int64) int64 {
	switch bytecode.Opcode(h) {
	case bytecode.OpIAdd:
		return a + b
	case bytecode.OpISub:
		return a - b
	case bytecode.OpIMul:
		return a * b
	case bytecode.OpIAnd:
		return a & b
	case bytecode.OpIOr:
		return a | b
	case bytecode.OpIXor:
		return a ^ b
	case bytecode.OpIShl:
		return a << (uint64(b) & 63)
	case bytecode.OpIShr:
		return a >> (uint64(b) & 63)
	default: // OpIUshr
		return int64(uint64(a) >> (uint64(b) & 63))
	}
}

// --- Full-inline shapes --------------------------------------------------

func pFusedLLOpStore(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(3) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	a := f.locals[in.A].I
	b := f.locals[ins[pc+1].A].I
	f.locals[ins[pc+3].A] = heap.IntVal(pureBinop(ins[pc+2].H, a, b))
	q.chargeSubs(t, 3)
	f.pc = pc + 4
	return nil
}

func pFusedLCOpStore(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(3) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	a := f.locals[in.A].I
	b := ins[pc+1].I
	f.locals[ins[pc+3].A] = heap.IntVal(pureBinop(ins[pc+2].H, a, b))
	q.chargeSubs(t, 3)
	f.pc = pc + 4
	return nil
}

func pFusedLLOp(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(2) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	a := f.locals[in.A].I
	b := f.locals[ins[pc+1].A].I
	f.push(heap.IntVal(pureBinop(ins[pc+2].H, a, b)))
	q.chargeSubs(t, 2)
	f.pc = pc + 3
	return nil
}

func pFusedLCOp(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(2) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	a := f.locals[in.A].I
	b := ins[pc+1].I
	f.push(heap.IntVal(pureBinop(ins[pc+2].H, a, b)))
	q.chargeSubs(t, 2)
	f.pc = pc + 3
	return nil
}

func pFusedLLCmpBr(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(2) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	a := f.locals[in.A].I
	b := f.locals[ins[pc+1].A].I
	in3 := &ins[pc+2]
	q.chargeSubs(t, 2)
	if intCmpCondition(bytecode.Opcode(in3.H), a, b) {
		f.pc = in3.A
	} else {
		f.pc = pc + 3
	}
	return nil
}

func pFusedLCCmpBr(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(2) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	a := f.locals[in.A].I
	b := ins[pc+1].I
	in3 := &ins[pc+2]
	q.chargeSubs(t, 2)
	if intCmpCondition(bytecode.Opcode(in3.H), a, b) {
		f.pc = in3.A
	} else {
		f.pc = pc + 3
	}
	return nil
}

func pFusedIncGoto(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(1) {
		return pIInc(vm, t, f, in)
	}
	f.locals[in.A].I += int64(in.B)
	f.locals[in.A].Kind = classfile.KindInt
	q.chargeSubs(t, 1)
	f.pc = f.pcode.Instrs[f.pc+1].A
	return nil
}

func pFusedConstStore(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(1) {
		return pIConst(vm, t, f, in)
	}
	pc := f.pc
	f.locals[f.pcode.Instrs[pc+1].A] = heap.IntVal(in.I)
	q.chargeSubs(t, 1)
	f.pc = pc + 2
	return nil
}

// --- Delegated-final shapes ----------------------------------------------

func pFusedLLThen(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(2) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	f.push(f.locals[in.A])
	f.push(f.locals[ins[pc+1].A])
	q.chargeSubs(t, 2)
	f.pc = pc + 2
	inL := &ins[pc+2]
	return vm.ptable[inL.H](vm, t, f, inL)
}

func pFusedLCThen(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(2) {
		return pLoad(vm, t, f, in)
	}
	ins := f.pcode.Instrs
	pc := f.pc
	f.push(f.locals[in.A])
	f.push(heap.IntVal(ins[pc+1].I))
	q.chargeSubs(t, 2)
	f.pc = pc + 2
	inL := &ins[pc+2]
	return vm.ptable[inL.H](vm, t, f, inL)
}

func pFusedLThen(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(1) {
		return pLoad(vm, t, f, in)
	}
	pc := f.pc
	f.push(f.locals[in.A])
	q.chargeSubs(t, 1)
	f.pc = pc + 1
	inL := &f.pcode.Instrs[pc+1]
	return vm.ptable[inL.H](vm, t, f, inL)
}

// pFusedGetFieldThen inlines a resolved, non-faulting getfield and
// delegates the following invoke. The guards run before any mutation: an
// unresolved slot or null receiver bails to the base getfield handler,
// which resolves/throws with the frame exactly as the unfused engine
// would have it.
func pFusedGetFieldThen(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	q := t.qa
	if q == nil || !q.reserve(1) {
		return pGetField(vm, t, f, in)
	}
	slot := in.FS.Get()
	if slot < 0 {
		return pGetField(vm, t, f, in)
	}
	recv := f.upeek()
	if recv.R == nil {
		return pGetField(vm, t, f, in)
	}
	pc := f.pc
	f.upop()
	f.push(recv.R.Fields[slot])
	q.chargeSubs(t, 1)
	f.pc = pc + 1
	inL := &f.pcode.Instrs[pc+1]
	return vm.ptable[inL.H](vm, t, f, inL)
}
