package interp

import (
	"errors"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// This file is the interpreter's allocation layer: it threads the
// executing shard's allocation domain (heap.AllocDomain) and batched
// per-isolate byte accounting (core.ByteBatch) through every guest
// allocation site, so the allocation fast path is a shard-local bump —
// one atomic reservation CAS against the heap limit, an append to the
// domain's private object list, and a plain-counter batch note — with no
// global mutex and no shared statistic atomics.
//
// # Ownership
//
// An allocState is single-goroutine state with the same contract as
// core.InstrBatch: the sequential engine owns one (vm.seqAlloc, used by
// runQuantum), each concurrent worker owns one (carried in its
// SampleState and recycled through vm's free list across runs), and the
// engine installs it on the executing thread (t.alloc) only for the
// duration of a quantum. Code running on the executing goroutine —
// prepared handlers, the reference switch path, natives, vm.Throw —
// allocates through it; everything else (host-side setup, RPC copies,
// wake-side throwable allocation such as InterruptThread, tests) passes
// a nil thread or a thread without an installed state and falls back to
// the heap's mutex-guarded host path, which charges counters directly
// and therefore needs no flush.
//
// # Exactness
//
// Byte accounts share InstrBatch's exactness contract: batches flush
// when the charged isolate changes, at every quantum boundary (workers
// flush before parking for a stop-the-world), at sequential safepoints
// (flushSequential), and before any allocation-pressure collection —
// so the STW accounting GC, kills and precise accounting always observe
// exact per-isolate totals, while mid-quantum host-side snapshot reads
// may trail by at most one quantum (exactly like instruction counts).
type allocState struct {
	dom   *heap.AllocDomain
	batch core.ByteBatch
	// satb buffers the shard's SATB write-barrier records while a mark
	// phase is open, handed to the heap's gray machinery at quantum
	// boundaries, before allocation-pressure collections, and when the
	// buffer fills. Same single-goroutine ownership as the batch.
	satb []*heap.Object
	// gcIso, when non-nil, is the isolate whose allocation on this shard
	// crossed the background-cycle occupancy threshold; the shard's next
	// quantum boundary starts the cycle and charges the activation to it
	// (§4.4: collections are attributed to the allocator that forces
	// them, not to whoever happens to run at the boundary).
	gcIso *core.Isolate
	// barrierOn caches heap.BarrierActive for the current quantum, so the
	// reference-store fast paths read a plain bool instead of an atomic
	// per store. Refreshed at quantum starts and after sequential
	// stopped-world sections. Soundness: the barrier is only ever armed
	// inside a stop-the-world (cycle open), and every mutator passes a
	// quantum boundary — hence a refresh — before executing again, so the
	// flag can never be stale-false while a mark phase is open. A
	// stale-true flag merely records SATB entries the heap drops when no
	// cycle is active.
	barrierOn bool
}

// satbFlushAt bounds the barrier buffer between flush points.
const satbFlushAt = 128

// recordSATB buffers one overwritten reference, spilling to the heap
// when the buffer fills mid-quantum.
func (a *allocState) recordSATB(h *heap.Heap, old *heap.Object) {
	a.satb = append(a.satb, old)
	if len(a.satb) >= satbFlushAt {
		a.flushSATB(h)
	}
}

// flushSATB hands buffered barrier records to the heap (no-op when
// empty). It must run before the owning goroutine parks for a
// stop-the-world: the terminal mark phase is sound only if every
// mutator's records are visible.
func (a *allocState) flushSATB(h *heap.Heap) {
	if len(a.satb) == 0 {
		return
	}
	h.FlushSATB(a.satb)
	for i := range a.satb {
		a.satb[i] = nil
	}
	a.satb = a.satb[:0]
}

// acquireAllocState returns a recycled (or fresh) allocation state. The
// domain registry in the heap is append-only, so states are pooled on
// the VM and reused across runs instead of growing the registry per run.
func (vm *VM) acquireAllocState() *allocState {
	vm.allocFreeMu.Lock()
	defer vm.allocFreeMu.Unlock()
	if n := len(vm.allocFree); n > 0 {
		a := vm.allocFree[n-1]
		vm.allocFree[n-1] = nil
		vm.allocFree = vm.allocFree[:n-1]
		a.barrierOn = vm.heap.BarrierActive()
		return a
	}
	return &allocState{dom: vm.heap.NewDomain(), barrierOn: vm.heap.BarrierActive()}
}

// releaseAllocState flushes and recycles a worker's allocation state.
func (vm *VM) releaseAllocState(a *allocState) {
	if a == nil {
		return
	}
	a.batch.Flush()
	a.flushSATB(vm.heap)
	a.gcIso = nil
	vm.allocFreeMu.Lock()
	vm.allocFree = append(vm.allocFree, a)
	vm.allocFreeMu.Unlock()
}

// allocOf returns the allocation state installed on t for the current
// quantum, or nil when the caller must use the host path.
func allocOf(t *Thread) *allocState {
	if t == nil {
		return nil
	}
	return t.alloc
}

// domainAlloc runs fn against the executing shard's domain, charging the
// batched per-isolate counters on success; on heap exhaustion it flushes
// the batch (exact accounts for the stopped-world collection), runs an
// accounting collection charged to iso, and retries once.
func (vm *VM) domainAlloc(a *allocState, iso *core.Isolate, fn func() (*heap.Object, error)) (*heap.Object, error) {
	obj, err := fn()
	if err != nil {
		if !errors.Is(err, heap.ErrOutOfMemory) {
			return nil, err
		}
		a.batch.Flush()
		a.flushSATB(vm.heap)
		vm.CollectGarbage(iso)
		obj, err = fn()
		if err != nil {
			return nil, err
		}
	}
	if vm.heap.TrackAlloc() {
		a.batch.Note(vm.heap.CountersFor(iso.ID()), obj.Size(), obj.IsConnection)
	}
	if a.gcIso == nil && vm.heap.CrossedThreshold() {
		a.gcIso = iso
	}
	return obj, nil
}

// allocRetry is the host-path twin of domainAlloc: fn goes through the
// heap's mutex-guarded host domain (which charges counters directly), and
// heap exhaustion triggers an accounting collection and one retry. The
// second failure is surfaced to the caller, which raises
// OutOfMemoryError in the guest.
func (vm *VM) allocRetry(iso *core.Isolate, fn func() (*heap.Object, error)) (*heap.Object, error) {
	obj, err := fn()
	if err == nil {
		return obj, nil
	}
	if !errors.Is(err, heap.ErrOutOfMemory) {
		return nil, err
	}
	vm.CollectGarbage(iso)
	return fn()
}

// AllocObjectIn allocates an instance of class charged to iso, collecting
// on pressure. t, when executing, selects the shard-local allocation
// domain; a nil t (host-side callers) selects the host path.
func (vm *VM) AllocObjectIn(t *Thread, class *classfile.Class, iso *core.Isolate) (*heap.Object, error) {
	if a := allocOf(t); a != nil {
		return vm.domainAlloc(a, iso, func() (*heap.Object, error) {
			return a.dom.AllocObject(class, iso.ID())
		})
	}
	return vm.allocRetry(iso, func() (*heap.Object, error) {
		return vm.heap.AllocObject(class, iso.ID())
	})
}

// AllocArrayIn allocates an array charged to iso, collecting on pressure.
func (vm *VM) AllocArrayIn(t *Thread, class *classfile.Class, n int, iso *core.Isolate) (*heap.Object, error) {
	if a := allocOf(t); a != nil {
		return vm.domainAlloc(a, iso, func() (*heap.Object, error) {
			return a.dom.AllocArray(class, n, iso.ID())
		})
	}
	return vm.allocRetry(iso, func() (*heap.Object, error) {
		return vm.heap.AllocArray(class, n, iso.ID())
	})
}

// allocStringRaw allocates a guest string charged to iso.
func (vm *VM) allocStringRaw(t *Thread, class *classfile.Class, s string, iso *core.Isolate) (*heap.Object, error) {
	if a := allocOf(t); a != nil {
		return vm.domainAlloc(a, iso, func() (*heap.Object, error) {
			return a.dom.AllocString(class, s, iso.ID())
		})
	}
	return vm.allocRetry(iso, func() (*heap.Object, error) {
		return vm.heap.AllocString(class, s, iso.ID())
	})
}

// allocNativeRaw allocates a native-payload object charged to iso.
func (vm *VM) allocNativeRaw(t *Thread, class *classfile.Class, payload any, size int64, conn bool, iso *core.Isolate) (*heap.Object, error) {
	if a := allocOf(t); a != nil {
		return vm.domainAlloc(a, iso, func() (*heap.Object, error) {
			return a.dom.AllocNative(class, payload, size, conn, iso.ID())
		})
	}
	return vm.allocRetry(iso, func() (*heap.Object, error) {
		return vm.heap.AllocNative(class, payload, size, conn, iso.ID())
	})
}

// AllocNativeIn allocates a native-payload object charged to iso.
func (vm *VM) AllocNativeIn(t *Thread, class *classfile.Class, payload any, size int64, conn bool, iso *core.Isolate) (*heap.Object, error) {
	if conn {
		iso.Account().ConnectionsOpened.Add(1)
	}
	return vm.allocNativeRaw(t, class, payload, size, conn, iso)
}
