package interp

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
)

// This file implements the code-preparation ("quickening") pass that
// turns a method's decoded instruction stream into the prepared form the
// flat handler table (handlers.go) executes. Preparation runs once per
// method on its first invocation and is cached on the method's Code
// behind an atomic pointer, so concurrent scheduler workers racing on
// the same method both end up executing the single published form.
//
// The pass does three things:
//
//  1. Quickening: constant-pool operands (string/class/field/method
//     references) are resolved to direct *classfile.PoolEntry pointers,
//     removing the per-execution pool bounds check and error branch; the
//     entries' atomic Resolved* caches then make every later execution a
//     single pointer load.
//  2. Verification: a dataflow pass over the instruction graph computes
//     the exact operand-stack depth at every instruction (invocation
//     effects made exact by parsing the referenced descriptor). Methods
//     that verify get exact MaxStack/MaxLocals — frames preallocate
//     fixed-capacity stacks — and their handlers pop without underflow
//     checks. Methods that do not verify (depth conflict at a merge
//     point, potential underflow, malformed pool reference) fall back
//     permanently to the reference switch interpreter in exec.go, which
//     preserves the seed's checked semantics exactly.
//  3. Sticky errors: the only remaining hot-loop failure check — the
//     program counter escaping the code — returns a preformatted
//     per-method error instead of constructing one.
//
// A fourth step fuses common quickened sequences into superinstructions
// (fused.go in the bytecode package, handlers in fused_handlers.go): the
// head instruction's handler index is rewritten to a Fused* value while
// every follower keeps its original form, so branches into the middle of
// a group, handler entries, and re-quickening still work instruction by
// instruction. Fused handlers reserve their extra sub-instructions
// against the quantum budget (tier.go) and charge them through the same
// per-instruction accounting sequence as the engine loop, so instruction
// counts, accounting, budget exhaustion and the §4.3 attack detectors
// fire at identical points (asserted by the dispatch oracle tests).

// unpreparable is the published sentinel for methods the verifier
// rejected; they execute through the reference switch path forever.
var unpreparable = &bytecode.PCode{}

// pmodeIndex maps an isolation mode to its prepared-form cache slot.
func pmodeIndex(mode core.Mode) int {
	if mode == core.ModeIsolated {
		return bytecode.PModeIsolated
	}
	return bytecode.PModeShared
}

// preparedCode returns the quickened form of m for the VM's current
// isolation mode, preparing and caching it on first invocation. Each
// mode has an independent quickening (and therefore independent inline
// caches); the mode-specialized handler table the VM dispatches through
// is selected to match in NewVM and SetIsolationMode. It returns nil
// when the VM runs seed-style dispatch (Options.DisablePrepare) or the
// method is unpreparable.
func (vm *VM) preparedCode(m *classfile.Method) *bytecode.PCode {
	if vm.opts.DisablePrepare {
		return nil
	}
	fuse := !vm.opts.DisableFusion
	variant := bytecode.PVariantFused
	if !fuse {
		variant = bytecode.PVariantUnfused
	}
	slot := bytecode.PSlot(vm.pmode, variant)
	code := m.Code
	p := code.Prepared(slot)
	if p == nil {
		p = prepareMethod(m, fuse)
		if p == nil {
			p = unpreparable
		}
		p = code.StorePrepared(slot, p)
	}
	if len(p.Instrs) == 0 {
		return nil
	}
	return p
}

// prepareMethod builds the prepared form of m, or returns nil when the
// method cannot be verified for unchecked execution. When fuse is set,
// superinstruction heads are rewritten after the quickening pass.
func prepareMethod(m *classfile.Method, fuse bool) *bytecode.PCode {
	code := m.Code
	n := len(code.Instrs)
	if n == 0 {
		return nil
	}
	pool := m.Class.Pool

	// Per-instruction stack effect and prefetched pool entries.
	// Invocation effects are exact: the referenced descriptor tells the
	// argument and return counts, and runtime resolution looks the method
	// up by that same descriptor.
	pops := make([]int32, n)
	pushes := make([]int32, n)
	entries := make([]*classfile.PoolEntry, n)
	for pc, in := range code.Instrs {
		if !in.Op.Valid() {
			return nil
		}
		p, q, ok := prepStackEffect(in.Op)
		if !ok {
			return nil
		}
		switch in.Op {
		case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual, bytecode.OpInvokeSpecial:
			entry, err := pool.Entry(in.A)
			if err != nil || entry.Kind != classfile.PoolMethodRef {
				return nil
			}
			d, derr := classfile.ParseDescriptor(entry.Descriptor)
			if derr != nil {
				return nil
			}
			p = int32(d.NumParams())
			if in.Op != bytecode.OpInvokeStatic {
				p++
			}
			q = 0
			if d.Return != classfile.KindVoid {
				q = 1
			}
			entries[pc] = entry
		default:
			if in.Op.UsesPool() && !(in.Op == bytecode.OpNewArray && in.A == 0) {
				entry, err := pool.Entry(in.A)
				if err != nil || !poolKindOK(in.Op, entry.Kind) {
					return nil
				}
				entries[pc] = entry
			}
		}
		pops[pc], pushes[pc] = p, q
	}

	// Dataflow over operand-stack depth. Every reachable instruction must
	// see one consistent depth (exception-handler targets enter at depth
	// 1: exception delivery clears the stack and pushes the throwable).
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	work := make([]int32, 0, 16)
	ok := true
	flow := func(pc, d int32) {
		if pc < 0 || pc >= int32(n) {
			ok = false
			return
		}
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, pc)
			return
		}
		if depth[pc] != d {
			ok = false
		}
	}
	flow(0, 0)
	for _, h := range code.Handlers {
		flow(h.Target, 1)
	}
	maxStack := int32(1)
	for ok && len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := code.Instrs[pc]
		d := depth[pc]
		if d < pops[pc] {
			ok = false
			break
		}
		nd := d - pops[pc] + pushes[pc]
		if nd > maxStack {
			maxStack = nd
		}
		if !in.Op.IsTerminator() {
			flow(pc+1, nd)
		}
		if in.Op.IsBranch() {
			flow(in.A, nd)
		}
	}
	if !ok {
		return nil
	}

	// Exact locals: the parameter window plus every slot the code touches.
	maxLocals := m.Desc.NumParams()
	if !m.IsStatic() {
		maxLocals++
	}
	for _, in := range code.Instrs {
		if in.Op.UsesLocal() {
			if in.A < 0 {
				return nil
			}
			if int(in.A)+1 > maxLocals {
				maxLocals = int(in.A) + 1
			}
		}
	}

	instrs := make([]bytecode.PInstr, n)
	for pc, in := range code.Instrs {
		instrs[pc] = bytecode.PInstr{
			H:   uint8(in.Op),
			A:   in.A,
			B:   in.B,
			I:   in.I,
			F:   in.F,
			Ref: nil,
		}
		if entries[pc] != nil {
			instrs[pc].Ref = entries[pc]
		}
		switch in.Op {
		case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual, bytecode.OpInvokeSpecial:
			// The argument-window size (receiver included) is exactly the
			// invoke's verified pop count; baking it into B lets the fast
			// paths find the receiver and slice the window without
			// consulting the resolved descriptor.
			instrs[pc].B = pops[pc]
			if in.Op == bytecode.OpInvokeVirtual {
				instrs[pc].IC = new(bytecode.ICache)
			}
		case bytecode.OpGetField, bytecode.OpPutField:
			// Per-site resolved-field slot cache (published on first
			// resolution, handlers.go).
			instrs[pc].FS = bytecode.NewFieldSlot()
		}
	}
	if fuse {
		fuseSuperinstructions(code.Instrs, instrs)
	}
	return &bytecode.PCode{
		Instrs:    instrs,
		MaxStack:  int(maxStack),
		MaxLocals: maxLocals,
		ErrPC:     fmt.Errorf("interp: pc out of range in %s", m.QualifiedName()),
	}
}

// fuseSuperinstructions rewrites superinstruction heads in the prepared
// stream. Matching runs over the original decoded opcodes at every pc —
// including pcs already covered by an earlier group — because only the
// head's handler index changes: overlapping groups are sound (entering a
// follower pc executes its original single instruction, and a follower
// that is itself a fused head just starts its own group there).
//
// Shape constraints mirror the fused handlers' semantics:
//
//   - "load" positions accept iload/fload/aload: handlers read the local
//     slot's value (and .I for int ops) exactly as push-then-pop would,
//     so kind mismatches behave identically to the unfused engine.
//   - const positions require iconst (fconst pushes a float value).
//   - inline op positions accept only the non-throwing int ops; idiv and
//     irem throw, so they may appear only as delegated finals.
//   - delegated finals are ops that may throw, allocate, or invoke; the
//     handler materializes the prefix's stack effect and dispatches the
//     final through the live handler table, so its semantics (including
//     mode-specialized quickenings) are exact.
func fuseSuperinstructions(ops []bytecode.Instr, instrs []bytecode.PInstr) {
	n := len(ops)
	isLoad := func(pc int) bool {
		switch ops[pc].Op {
		case bytecode.OpILoad, bytecode.OpFLoad, bytecode.OpALoad:
			return true
		}
		return false
	}
	isStore := func(pc int) bool {
		switch ops[pc].Op {
		case bytecode.OpIStore, bytecode.OpFStore, bytecode.OpAStore:
			return true
		}
		return false
	}
	isIConst := func(pc int) bool { return ops[pc].Op == bytecode.OpIConst }
	isPureOp := func(pc int) bool {
		switch ops[pc].Op {
		case bytecode.OpIAdd, bytecode.OpISub, bytecode.OpIMul,
			bytecode.OpIAnd, bytecode.OpIOr, bytecode.OpIXor,
			bytecode.OpIShl, bytecode.OpIShr, bytecode.OpIUshr:
			return true
		}
		return false
	}
	isICmpBr := func(pc int) bool {
		switch ops[pc].Op {
		case bytecode.OpIfICmpEq, bytecode.OpIfICmpNe, bytecode.OpIfICmpLt,
			bytecode.OpIfICmpLe, bytecode.OpIfICmpGt, bytecode.OpIfICmpGe:
			return true
		}
		return false
	}
	isDelegFinal := func(pc int) bool {
		switch ops[pc].Op {
		case bytecode.OpGetField, bytecode.OpPutField,
			bytecode.OpInvokeVirtual, bytecode.OpInvokeSpecial, bytecode.OpInvokeStatic,
			bytecode.OpIDiv, bytecode.OpIRem,
			bytecode.OpArrayLoad, bytecode.OpArrayStore:
			return true
		}
		return false
	}
	for pc := 0; pc < n; pc++ {
		switch {
		case isLoad(pc):
			switch {
			case pc+3 < n && isLoad(pc+1) && isPureOp(pc+2) && isStore(pc+3):
				instrs[pc].H = bytecode.FusedLLOpStore
			case pc+3 < n && isIConst(pc+1) && isPureOp(pc+2) && isStore(pc+3):
				instrs[pc].H = bytecode.FusedLCOpStore
			case pc+2 < n && isLoad(pc+1) && isICmpBr(pc+2):
				instrs[pc].H = bytecode.FusedLLCmpBr
			case pc+2 < n && isIConst(pc+1) && isICmpBr(pc+2):
				instrs[pc].H = bytecode.FusedLCCmpBr
			case pc+2 < n && isLoad(pc+1) && isPureOp(pc+2):
				instrs[pc].H = bytecode.FusedLLOp
			case pc+2 < n && isIConst(pc+1) && isPureOp(pc+2):
				instrs[pc].H = bytecode.FusedLCOp
			case pc+2 < n && isLoad(pc+1) && isDelegFinal(pc+2):
				instrs[pc].H = bytecode.FusedLLThen
			case pc+2 < n && isIConst(pc+1) && isDelegFinal(pc+2):
				instrs[pc].H = bytecode.FusedLCThen
			case pc+1 < n && isDelegFinal(pc+1):
				instrs[pc].H = bytecode.FusedLThen
			}
		case ops[pc].Op == bytecode.OpIInc:
			if pc+1 < n && ops[pc+1].Op == bytecode.OpGoto {
				instrs[pc].H = bytecode.FusedIncGoto
			}
		case isIConst(pc):
			if pc+1 < n && isStore(pc+1) {
				instrs[pc].H = bytecode.FusedConstStore
			}
		case ops[pc].Op == bytecode.OpGetField:
			if pc+1 < n && (ops[pc+1].Op == bytecode.OpInvokeVirtual || ops[pc+1].Op == bytecode.OpInvokeSpecial) {
				instrs[pc].H = bytecode.FusedGetFieldThen
			}
		}
	}
}

// poolKindOK reports whether a pool entry's kind matches what the opcode
// dereferences; a mismatch makes the method unpreparable (the reference
// path surfaces the error at execution time).
func poolKindOK(op bytecode.Opcode, kind classfile.PoolEntryKind) bool {
	switch op {
	case bytecode.OpLdcString:
		return kind == classfile.PoolString
	case bytecode.OpLdcClass, bytecode.OpNew, bytecode.OpNewArray,
		bytecode.OpInstanceOf, bytecode.OpCheckCast:
		return kind == classfile.PoolClassRef
	case bytecode.OpGetStatic, bytecode.OpPutStatic,
		bytecode.OpGetField, bytecode.OpPutField:
		return kind == classfile.PoolFieldRef
	default:
		return false
	}
}

// prepStackEffect returns the exact (pops, pushes) of op for the
// verification dataflow. Invocations are handled by the caller (their
// effect depends on the referenced descriptor). ok is false for opcodes
// the prepared dispatch does not model.
func prepStackEffect(op bytecode.Opcode) (pops, pushes int32, ok bool) {
	switch op {
	case bytecode.OpNop, bytecode.OpGoto, bytecode.OpIInc, bytecode.OpReturn:
		return 0, 0, true
	case bytecode.OpIConst, bytecode.OpFConst, bytecode.OpAConstNull,
		bytecode.OpLdcString, bytecode.OpLdcClass,
		bytecode.OpILoad, bytecode.OpFLoad, bytecode.OpALoad,
		bytecode.OpGetStatic, bytecode.OpNew:
		return 0, 1, true
	case bytecode.OpPop, bytecode.OpIStore, bytecode.OpFStore, bytecode.OpAStore,
		bytecode.OpIfEq, bytecode.OpIfNe, bytecode.OpIfLt, bytecode.OpIfLe,
		bytecode.OpIfGt, bytecode.OpIfGe, bytecode.OpIfNull, bytecode.OpIfNonNull,
		bytecode.OpIReturn, bytecode.OpFReturn, bytecode.OpAReturn,
		bytecode.OpMonitorEnter, bytecode.OpMonitorExit, bytecode.OpAThrow,
		bytecode.OpPutStatic:
		return 1, 0, true
	case bytecode.OpDup:
		return 1, 2, true
	case bytecode.OpDupX1:
		return 2, 3, true
	case bytecode.OpSwap:
		return 2, 2, true
	case bytecode.OpIAdd, bytecode.OpISub, bytecode.OpIMul, bytecode.OpIDiv,
		bytecode.OpIRem, bytecode.OpIShl, bytecode.OpIShr, bytecode.OpIUshr,
		bytecode.OpIAnd, bytecode.OpIOr, bytecode.OpIXor,
		bytecode.OpFAdd, bytecode.OpFSub, bytecode.OpFMul, bytecode.OpFDiv,
		bytecode.OpFCmp:
		return 2, 1, true
	case bytecode.OpINeg, bytecode.OpFNeg, bytecode.OpI2F, bytecode.OpF2I,
		bytecode.OpArrayLength, bytecode.OpInstanceOf, bytecode.OpCheckCast,
		bytecode.OpNewArray, bytecode.OpGetField:
		return 1, 1, true
	case bytecode.OpIfICmpEq, bytecode.OpIfICmpNe, bytecode.OpIfICmpLt,
		bytecode.OpIfICmpLe, bytecode.OpIfICmpGt, bytecode.OpIfICmpGe,
		bytecode.OpIfACmpEq, bytecode.OpIfACmpNe, bytecode.OpPutField:
		return 2, 0, true
	case bytecode.OpArrayLoad:
		return 2, 1, true
	case bytecode.OpArrayStore:
		return 3, 0, true
	case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual, bytecode.OpInvokeSpecial:
		return 0, 0, true // replaced by the caller with descriptor-exact effects
	default:
		return 0, 0, false
	}
}
