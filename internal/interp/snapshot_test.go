package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

const (
	snapApp  = "snap/App"
	snapNode = "snap/Node"
	snapMsg  = "warm-hello"
)

// snapClasses builds the warm-up class set of the snapshot tests: statics
// covering scalars, an array, an interned string, array aliasing, and a
// two-node reference cycle.
func snapClasses() []*classfile.Class {
	node := classfile.NewClass(snapNode).
		Field("next", classfile.KindRef).
		Field("v", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).MustBuild()
	app := classfile.NewClass(snapApp).
		StaticField("count", classfile.KindInt).
		StaticField("table", classfile.KindRef).
		StaticField("msg", classfile.KindRef).
		StaticField("alias", classfile.KindRef).
		StaticField("ring", classfile.KindRef).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(7).PutStatic(snapApp, "count")
			// table = new[8]; table[i] = i*i
			a.Const(8).NewArray("").AStore(0)
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).Const(8).IfICmpGe("done")
			a.ALoad(0).ILoad(1).ILoad(1).ILoad(1).IMul().ArrayStore()
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.ALoad(0).PutStatic(snapApp, "table")
			a.GetStatic(snapApp, "table").PutStatic(snapApp, "alias")
			a.Str(snapMsg).PutStatic(snapApp, "msg")
			// ring: two nodes referencing each other
			a.New(snapNode).Dup().InvokeSpecial(snapNode, classfile.InitName, "()V").AStore(2)
			a.New(snapNode).Dup().InvokeSpecial(snapNode, classfile.InitName, "()V").AStore(3)
			a.ALoad(2).ALoad(3).PutField(snapNode, "next")
			a.ALoad(3).ALoad(2).PutField(snapNode, "next")
			a.ALoad(2).Const(11).PutField(snapNode, "v")
			a.ALoad(2).PutStatic(snapApp, "ring")
			a.Return()
		}).
		// bump(x): count += x; return count + table[3] + ring.v
		Method("bump", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(snapApp, "count").ILoad(0).IAdd().PutStatic(snapApp, "count")
			a.GetStatic(snapApp, "count").
				GetStatic(snapApp, "table").Const(3).ArrayLoad().IAdd().
				GetStatic(snapApp, "ring").GetField(snapNode, "v").IAdd().
				IReturn()
		}).MustBuild()
	return []*classfile.Class{node, app}
}

// snapVM builds an isolated VM with the template-loader pattern: classes
// live in an isolate-less loader, the warmer isolate delegates to it.
func snapVM(t *testing.T) (*interp.VM, *core.Isolate) {
	t.Helper()
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 8 << 20})
	syslib.MustInstall(vm)
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}
	tl := vm.Registry().NewLoader("template")
	if err := tl.DefineAll(snapClasses()); err != nil {
		t.Fatal(err)
	}
	warmer, err := vm.NewIsolate("warmer")
	if err != nil {
		t.Fatal(err)
	}
	warmer.Loader().AddDelegate(tl)
	return vm, warmer
}

func snapCall(t *testing.T, vm *interp.VM, iso *core.Isolate, arg int64) int64 {
	t.Helper()
	c, err := iso.Loader().Lookup(snapApp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.LookupMethod("bump", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("bump(%d): %v / %s", arg, err, th.FailureString())
	}
	return v.I
}

// TestSnapshotCloneBasics proves the core clone contract: statics arrive
// initialized (no <clinit> replay), aliasing and cycles survive, the
// interned pool is shared by pointer, mutations stay private, and the
// clone's account, allocation counters and reachability fingerprint are
// byte-identical to the template's at capture.
func TestSnapshotCloneBasics(t *testing.T) {
	vm, warmer := snapVM(t)
	// Warm: clinit (count=7) + bump(5) -> count=12; bump returns 12+9+11.
	if got := snapCall(t, vm, warmer, 5); got != 32 {
		t.Fatalf("warm bump = %d, want 32", got)
	}
	snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	wantAccount := warmer.Account().Numbers()
	wantAlloc := vm.Heap().AllocStatsFor(warmer.ID())
	wantFP := vm.ReachabilityFingerprint(warmer)

	clone, err := vm.CloneIsolate(snap, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if got := clone.Account().Numbers(); got != wantAccount {
		t.Fatalf("clone account = %+v, want %+v", got, wantAccount)
	}
	if got := vm.Heap().AllocStatsFor(clone.ID()); got != wantAlloc {
		t.Fatalf("clone alloc = %+v, want %+v", got, wantAlloc)
	}
	if got := vm.ReachabilityFingerprint(clone); got != wantFP {
		t.Fatalf("clone fingerprint = %x, want %x", got, wantFP)
	}

	// The interned pool is shared by pointer.
	wObj, ok1 := warmer.InternedString(snapMsg)
	cObj, ok2 := clone.InternedString(snapMsg)
	if !ok1 || !ok2 || wObj != cObj {
		t.Fatalf("pool sharing broken: %v %v %p %p", ok1, ok2, wObj, cObj)
	}

	// Aliasing is preserved, but the array is a private copy.
	var cloneMirror *core.TaskClassMirror
	for _, e := range vm.World().MirrorEntries(clone) {
		if e.Class.Name == snapApp {
			cloneMirror = e.Mirror
		}
	}
	if cloneMirror == nil {
		t.Fatal("clone has no App mirror")
	}
	table, alias := cloneMirror.Statics[1].R, cloneMirror.Statics[3].R
	if table == nil || table != alias {
		t.Fatalf("alias not preserved: %p %p", table, alias)
	}
	var warmMirror *core.TaskClassMirror
	for _, e := range vm.World().MirrorEntries(warmer) {
		if e.Class.Name == snapApp {
			warmMirror = e.Mirror
		}
	}
	if warmMirror.Statics[1].R == table {
		t.Fatal("table should be a private copy without FreezeShared")
	}

	// No <clinit> replay: count is 12, not 7. Mutations are private.
	if got := snapCall(t, vm, clone, 0); got != 32 {
		t.Fatalf("clone bump(0) = %d, want 32", got)
	}
	if got := snapCall(t, vm, clone, 10); got != 42 {
		t.Fatalf("clone bump(10) = %d, want 42", got)
	}
	if got := snapCall(t, vm, warmer, 0); got != 32 {
		t.Fatalf("template affected by clone mutation: %d", got)
	}
}

// TestSnapshotFreezeShared proves FreezeShared shares the warm table by
// pointer (frozen, pinned) instead of copying it.
func TestSnapshotFreezeShared(t *testing.T) {
	vm, warmer := snapVM(t)
	snapCall(t, vm, warmer, 5)
	snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{FreezeShared: true})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	clone, err := vm.CloneIsolate(snap, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	var wTab, cTab *heap.Object
	for _, e := range vm.World().MirrorEntries(warmer) {
		if e.Class.Name == snapApp {
			wTab = e.Mirror.Statics[1].R
		}
	}
	for _, e := range vm.World().MirrorEntries(clone) {
		if e.Class.Name == snapApp {
			cTab = e.Mirror.Statics[1].R
		}
	}
	if wTab == nil || wTab != cTab {
		t.Fatalf("frozen table not shared: %p %p", wTab, cTab)
	}
	if !wTab.Frozen() {
		t.Fatal("table not frozen")
	}
	// Reads still work through the shared table.
	if got := snapCall(t, vm, clone, 0); got != 32 {
		t.Fatalf("clone bump(0) = %d, want 32", got)
	}
}

// TestSnapshotRecycle kills a clone, disposes it, returns it to the pool,
// and proves the next clone reuses the ID with a clean slate.
func TestSnapshotRecycle(t *testing.T) {
	vm, warmer := snapVM(t)
	snapCall(t, vm, warmer, 5)
	snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	clone, err := vm.CloneIsolate(snap, "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	firstID := clone.ID()
	snapCall(t, vm, clone, 100)

	if err := vm.FreeIsolate(clone); err == nil {
		t.Fatal("free of a live isolate must fail")
	}
	if err := vm.KillIsolate(nil, clone); err != nil {
		t.Fatal(err)
	}
	vm.CollectGarbage(nil)
	if !clone.Disposed() {
		t.Fatalf("clone not disposed: %s", clone.State())
	}
	if err := vm.FreeIsolate(clone); err != nil {
		t.Fatal(err)
	}
	if err := vm.FreeIsolate(clone); err == nil {
		t.Fatal("double free must fail")
	}

	clone2, err := vm.CloneIsolate(snap, "tenant-b")
	if err != nil {
		t.Fatal(err)
	}
	if clone2.ID() != firstID {
		t.Fatalf("ID not recycled: got %d, want %d", clone2.ID(), firstID)
	}
	// Clean slate: seeded account (not the killed tenant's), working
	// statics, no leaked mutations.
	if got := clone2.Account().Numbers(); got != warmer.Account().Numbers() {
		t.Fatalf("recycled account = %+v", got)
	}
	if got := snapCall(t, vm, clone2, 0); got != 32 {
		t.Fatalf("recycled clone bump(0) = %d, want 32", got)
	}
}

// TestSnapshotTemplateOwnedClasses proves the visibility contract: a live
// template that owns its classes cannot be cloned (clone frames would
// migrate into the template), but freeing the template first turns its
// loader into a template loader and cloning becomes legal.
func TestSnapshotTemplateOwnedClasses(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 8 << 20})
	syslib.MustInstall(vm)
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}
	owner, err := vm.NewIsolate("owner")
	if err != nil {
		t.Fatal(err)
	}
	// No string literals: interned strings would pin to the owner and
	// keep it undisposable while the snapshot lives.
	const cn = "own/C"
	c := classfile.NewClass(cn).
		StaticField("v", classfile.KindInt).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(41).PutStatic(cn, "v").Return()
		}).
		Method("get", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(cn, "v").Const(1).IAdd().PutStatic(cn, "v")
			a.GetStatic(cn, "v").IReturn()
		}).MustBuild()
	if err := owner.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("get", "()I")
	if v, th, err := vm.CallRoot(owner, m, nil, 1_000_000); err != nil || th.Failure() != nil || v.I != 42 {
		t.Fatalf("warm: %v %v", v, err)
	}
	snap, err := vm.CaptureSnapshot(owner, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if _, err := vm.CloneIsolate(snap, "tenant"); err == nil {
		t.Fatal("clone with live class-owning template must fail")
	}
	if err := vm.KillIsolate(nil, owner); err != nil {
		t.Fatal(err)
	}
	vm.CollectGarbage(nil)
	if err := vm.FreeIsolate(owner); err != nil {
		t.Fatal(err)
	}
	clone, err := vm.CloneIsolate(snap, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if v, th, err := vm.CallRoot(clone, m, nil, 1_000_000); err != nil || th.Failure() != nil || v.I != 43 {
		t.Fatalf("clone get = %v (err %v): want 43 (42 captured + 1)", v, err)
	}
}

// TestRestoreInPlaceShared proves the Shared-mode leg: RestoreInPlace
// rewinds the single isolate to the warm point, in place, so a session
// replays byte-identically.
func TestRestoreInPlaceShared(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeShared, HeapLimit: 8 << 20})
	syslib.MustInstall(vm)
	world, err := vm.NewIsolate("world")
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Loader().DefineAll(snapClasses()); err != nil {
		t.Fatal(err)
	}
	if got := snapCall(t, vm, world, 5); got != 32 {
		t.Fatalf("warm = %d", got)
	}
	snap, err := vm.CaptureSnapshot(world, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	vm.CollectGarbage(nil)
	wantFP := vm.ReachabilityFingerprint(world)

	// Dirty session.
	first := snapCall(t, vm, world, 100)
	if first != 132 {
		t.Fatalf("session#1 = %d", first)
	}
	if err := snap.RestoreInPlace(); err != nil {
		t.Fatal(err)
	}
	vm.CollectGarbage(nil)
	if got := vm.ReachabilityFingerprint(world); got != wantFP {
		t.Fatalf("post-restore fingerprint = %x, want %x", got, wantFP)
	}
	// Session replays identically.
	if got := snapCall(t, vm, world, 100); got != first {
		t.Fatalf("session#2 = %d, want %d", got, first)
	}
}
