package interp_test

import (
	"os"
	"path/filepath"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
	"ijvm/internal/textasm"
)

// FuzzPrepareVerifier feeds adversarial instruction streams to the
// prepare-pass dataflow verifier. The contract under test:
//
//   - prepareMethod never panics — garbage is rejected to the reference
//     switch path (nil), never crashed on;
//   - anything the verifier ACCEPTS must then execute on the unchecked
//     prepared handlers without a host panic, and byte-identically to
//     the checked seed-style switch (result, failure, instruction
//     count) — the verifier's soundness contract.
//
// The corpus is seeded from the instruction streams of the shipped
// example programs (encoded through the same 3-bytes-per-instruction
// scheme the fuzzer decodes) plus handcrafted edge shapes.
func FuzzPrepareVerifier(f *testing.F) {
	for _, name := range []string{"hello.jasm", "quicksort.jasm", "sieve.jasm"} {
		src, err := os.ReadFile(filepath.Join("../../examples/programs", name))
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		classes, err := textasm.Parse(string(src))
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		for _, c := range classes {
			for _, m := range c.Methods {
				if m.Code != nil {
					f.Add(encodeFuzzProgram(m.Code.Instrs))
				}
			}
		}
	}
	f.Add([]byte{byte(bytecode.OpIConst), 7, 0, byte(bytecode.OpIReturn), 0, 0})
	f.Add([]byte{byte(bytecode.OpILoad), 1, 0, byte(bytecode.OpAThrow), 0, 0})
	f.Add([]byte{byte(bytecode.OpInvokeStatic), 5, 0, byte(bytecode.OpReturn), 0, 0})
	f.Add([]byte{255, 255, 255, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		instrs := decodeFuzzProgram(data)
		if len(instrs) == 0 {
			return
		}
		// The first byte also steers an (often nonsensical) exception
		// handler; the verifier must bounds-check it, not trust it.
		var handlers []bytecode.Handler
		if data[0]&1 == 1 {
			handlers = append(handlers, bytecode.Handler{
				Start:  int32(int8(data[0] >> 1)),
				End:    int32(len(instrs)),
				Target: int32(int8(data[len(data)/2])),
			})
		}
		code := &bytecode.Code{
			Instrs:    instrs,
			Handlers:  handlers,
			MaxLocals: 16,
			MaxStack:  64,
		}
		class := fuzzHostClass(code)
		m, err := class.LookupMethod("fuzz", "(II)I")
		if err != nil {
			t.Fatal(err)
		}
		p := interp.PrepareMethodForTest(m) // must not panic
		if p == nil {
			return // rejected to the reference switch path: the safe outcome
		}
		// Execution-worthy code must additionally pass the structural
		// validator — every real pipeline (builder, textasm, loader) runs
		// it before code can reach either interpreter, and the checked
		// reference path sizes frames from its MaxLocals guarantee.
		if bytecode.Validate(code) != nil {
			return
		}
		// Accepted: the unchecked fast path must agree with the checked
		// reference interpreter.
		gotV, gotFail, gotErr, gotInstr := execFuzzProgram(t, code, false)
		refV, refFail, refErr, refInstr := execFuzzProgram(t, code, true)
		if gotErr != refErr {
			t.Fatalf("host-error divergence: prepared=%v seed=%v", gotErr, refErr)
		}
		if gotErr {
			return
		}
		if gotV != refV || gotFail != refFail || gotInstr != refInstr {
			t.Fatalf("verified-but-divergent: prepared {v:%d fail:%q n:%d} seed {v:%d fail:%q n:%d}",
				gotV, gotFail, gotInstr, refV, refFail, refInstr)
		}
	})
}

// decodeFuzzProgram maps 3 bytes to one instruction: raw opcode (valid
// or not), and a small signed operand reused as slot/pool-index/branch
// target/immediate.
func decodeFuzzProgram(data []byte) []bytecode.Instr {
	n := len(data) / 3
	if n > 256 {
		n = 256
	}
	out := make([]bytecode.Instr, 0, n)
	for i := 0; i < n; i++ {
		a := int32(int8(data[i*3+1]))
		b := int32(int8(data[i*3+2]))
		out = append(out, bytecode.Instr{
			Op: bytecode.Opcode(data[i*3]),
			A:  a,
			B:  b,
			I:  int64(a),
			F:  float64(b),
		})
	}
	return out
}

// encodeFuzzProgram is decodeFuzzProgram's inverse for corpus seeding
// (operands saturate to the encodable range).
func encodeFuzzProgram(instrs []bytecode.Instr) []byte {
	clamp := func(v int32) byte {
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		return byte(int8(v))
	}
	out := make([]byte, 0, len(instrs)*3)
	for _, in := range instrs {
		out = append(out, byte(in.Op), clamp(in.A), clamp(in.B))
	}
	return out
}

// fuzzHostClass wraps the fuzzed body in a class whose constant pool has
// one live entry of every kind at small indices, so fuzzed pool operands
// sometimes resolve and sometimes miss.
func fuzzHostClass(code *bytecode.Code) *classfile.Class {
	b := classfile.NewClass("fz/Fuzz").
		StaticField("sf", classfile.KindInt).
		Field("inst", classfile.KindInt).
		Method("helper", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(1).IAdd().IReturn()
		}).
		Method(classfile.InitName, "()V", 0, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		RawMethod("fuzz", "(II)I", classfile.FlagStatic, code)
	pool := b.Pool()
	pool.StringIndex("fz")
	pool.ClassIndex("fz/Fuzz")
	pool.ClassIndex("java/lang/Object")
	pool.FieldIndex("fz/Fuzz", "sf")
	pool.FieldIndex("fz/Fuzz", "inst")
	pool.MethodIndex("fz/Fuzz", "helper", "(I)I")
	pool.MethodIndex("fz/Fuzz", "fuzz", "(II)I")
	pool.MethodIndex("fz/Fuzz", classfile.InitName, "()V")
	return b.MustBuild()
}

// execFuzzProgram runs the fuzzed body in a fresh small VM under one
// dispatch mode and reports (result, failure, host-error?, instructions).
func execFuzzProgram(t *testing.T, code *bytecode.Code, seedDispatch bool) (int64, string, bool, int64) {
	t.Helper()
	vm := interp.NewVM(interp.Options{
		Mode:           core.ModeIsolated,
		HeapLimit:      1 << 20,
		MaxThreads:     8,
		MaxFrameDepth:  64,
		DisablePrepare: seedDispatch,
	})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	// Each run needs a fresh class: prepared forms and resolution caches
	// are per-Code, and the two dispatch modes must not share state with
	// each other across runs.
	if err := iso.Loader().Define(fuzzHostClass(code.Clone())); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup("fz/Fuzz")
	m, _ := c.LookupMethod("fuzz", "(II)I")
	th, err := vm.SpawnThread("fuzz", iso, m, []heap.Value{heap.IntVal(3), heap.IntVal(-5)})
	if err != nil {
		t.Fatal(err)
	}
	vm.RunUntil(th, 100_000)
	if th.Err() != nil {
		return 0, "", true, vm.TotalInstructions()
	}
	if !th.Done() {
		// Budget exhausted (infinite loop): compare the cut-off point.
		return -1, "budget", false, vm.TotalInstructions()
	}
	return th.Result().I, th.FailureString(), false, vm.TotalInstructions()
}
