package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// spinClass builds a runnable whose run() executes roughly n instructions
// before finishing, counting completed laps into a static.
func spinClass(name string) *classfile.Class {
	return classfile.NewClass(name).
		StaticField("laps", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).Const(100000).IfICmpGe("done")
			a.IInc(1, 1)
			a.GetStatic(name, "laps").Const(1).IAdd().PutStatic(name, "laps")
			a.Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild()
}

// TestSchedulerFairness: two identical compute threads receive roughly
// equal instruction shares under round-robin quanta.
func TestSchedulerFairness(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, Quantum: 500})
	syslib.MustInstall(vm)
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}
	isoA, err := vm.NewIsolate("a")
	if err != nil {
		t.Fatal(err)
	}
	isoB, err := vm.NewIsolate("b")
	if err != nil {
		t.Fatal(err)
	}
	classA := spinClass("fair/A")
	classB := spinClass("fair/B")
	if err := isoA.Loader().Define(classA); err != nil {
		t.Fatal(err)
	}
	if err := isoB.Loader().Define(classB); err != nil {
		t.Fatal(err)
	}
	spawn := func(iso *core.Isolate, c *classfile.Class) {
		m, err := c.LookupMethod("run", "()V")
		if err != nil {
			t.Fatal(err)
		}
		obj, err := vm.AllocObjectIn(nil, c, iso)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.SpawnThread("spin", iso, m, []heap.Value{heap.RefVal(obj)}); err != nil {
			t.Fatal(err)
		}
	}
	spawn(isoA, classA)
	spawn(isoB, classB)
	vm.Run(400_000) // neither thread can finish within this budget
	a := isoA.Account().Instructions.Load()
	b := isoB.Account().Instructions.Load()
	if a == 0 || b == 0 {
		t.Fatalf("a thread starved: a=%d b=%d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair split: a=%d b=%d (ratio %.2f)", a, b, ratio)
	}
}

// TestVirtualClockSleepOrdering: threads sleeping different durations
// wake in deadline order, and the clock jumps when everyone sleeps.
func TestVirtualClockSleepOrdering(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	const cn = "clock/Sleeper"
	c := classfile.NewClass(cn).
		StaticField("order", classfile.KindRef).
		StaticField("next", classfile.KindInt).
		Field("ticks", classfile.KindInt).
		Field("tag", classfile.KindInt).
		Method(classfile.InitName, "(II)V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V")
			a.ALoad(0).ILoad(1).PutField(cn, "ticks")
			a.ALoad(0).ILoad(2).PutField(cn, "tag")
			a.Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).GetField(cn, "ticks").InvokeStatic("java/lang/Thread", "sleep", "(I)V")
			// order[next++] = tag
			a.GetStatic(cn, "order").GetStatic(cn, "next").ALoad(0).GetField(cn, "tag").
				InvokeStatic("java/lang/Integer", "valueOf", "(I)Ljava/lang/Integer;").ArrayStore()
			a.GetStatic(cn, "next").Const(1).IAdd().PutStatic(cn, "next")
			a.Return()
		}).
		Method("setup", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(3).NewArray("").PutStatic(cn, "order")
			a.Return()
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	setup, _ := c.LookupMethod("setup", "()V")
	if _, th, err := vm.CallRoot(iso, setup, nil, 100_000); err != nil || th.Failure() != nil {
		t.Fatal(err)
	}
	runM, _ := c.LookupMethod("run", "()V")
	// Spawn with deliberately shuffled durations: tags 0,1,2 sleep
	// 30000, 10000, 20000 ticks -> wake order 1, 2, 0.
	durations := []int64{30000, 10000, 20000}
	for tag, d := range durations {
		obj, err := vm.AllocObjectIn(nil, c, iso)
		if err != nil {
			t.Fatal(err)
		}
		fTicks, _ := c.LookupField("ticks")
		fTag, _ := c.LookupField("tag")
		obj.Fields[fTicks.Slot] = heap.IntVal(d)
		obj.Fields[fTag.Slot] = heap.IntVal(int64(tag))
		if _, err := vm.SpawnThread("sleeper", iso, runM, []heap.Value{heap.RefVal(obj)}); err != nil {
			t.Fatal(err)
		}
	}
	res := vm.Run(0)
	if !res.AllDone {
		t.Fatalf("run = %+v", res)
	}
	mirror := vm.World().Mirror(c, iso)
	fOrder, _ := c.LookupStaticField("order")
	order := mirror.Statics[fOrder.Slot].R
	want := []int64{1, 2, 0}
	for i, w := range want {
		boxed := order.Elems[i].R
		fVal, _ := boxed.Class.LookupField("value")
		if got := boxed.Fields[fVal.Slot].I; got != w {
			t.Fatalf("wake order[%d] = %d, want %d", i, got, w)
		}
	}
	if vm.Clock() < 30000 {
		t.Fatalf("clock = %d, must have advanced past the longest sleep", vm.Clock())
	}
}

// TestRunBudgetExhaustion: the budget is the freeze detector — an
// infinite loop exhausts it without hanging the host.
func TestRunBudgetExhaustion(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	c := classfile.NewClass("b/Spin").
		Method("spin", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Label("loop")
			a.Goto("loop")
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("spin", "()V")
	if _, err := vm.SpawnThread("spin", iso, m, nil); err != nil {
		t.Fatal(err)
	}
	res := vm.Run(50_000)
	if !res.BudgetExhausted || res.AllDone || res.Deadlocked {
		t.Fatalf("res = %+v", res)
	}
	if res.Instructions != 50_000 {
		t.Fatalf("executed %d, want exactly the budget", res.Instructions)
	}
}

// TestShutdownStopsScheduler: System.exit from Isolate0 ends the run.
func TestShutdownStopsScheduler(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main") // Isolate0: exit permitted
	if err != nil {
		t.Fatal(err)
	}
	c := classfile.NewClass("s/Exit").
		Method("bye", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(0).InvokeStatic("java/lang/System", "exit", "(I)V")
			a.Label("loop")
			a.Goto("loop") // never reached
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("bye", "()V")
	if _, err := vm.SpawnThread("exit", iso, m, nil); err != nil {
		t.Fatal(err)
	}
	res := vm.Run(1_000_000)
	if !res.Shutdown {
		t.Fatalf("res = %+v", res)
	}
	if !vm.IsShutdown() {
		t.Fatal("vm must be shut down")
	}
}

// TestTimedWaitTimesOut: Object.waitTicks resumes after the deadline
// without a notify.
func TestTimedWaitTimesOut(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	const cn = "tw/Main"
	c := classfile.NewClass(cn).
		Method("main", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").AStore(0)
			a.ALoad(0).MonitorEnter()
			a.ALoad(0).Const(500).InvokeVirtual(classfile.ObjectClassName, "waitTicks", "(I)V")
			a.ALoad(0).MonitorExit()
			a.Const(1).IReturn()
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("main", "()I")
	v, th, err := vm.CallRoot(iso, m, nil, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("%v / %s", err, th.FailureString())
	}
	if v.I != 1 {
		t.Fatalf("main = %d", v.I)
	}
}
