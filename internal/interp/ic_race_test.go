package interp_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// This file stress-tests concurrent inline-cache publication: system
// classes are shared by every isolate and execute in the caller's
// isolate, so a call site inside a system method is hammered by every
// scheduler shard in parallel. Two sites cover the interesting
// transitions:
//
//   - hammerPoly dispatches over two system receiver classes — the
//     same *classfile.Class in every shard — so all workers race the
//     empty -> mono -> poly CAS transitions of one site and then share
//     its steady state;
//   - hammerMega dispatches over per-isolate bundle classes, so the
//     site sees 3 x isolates receiver classes and every shard races it
//     into the megamorphic marker.
//
// Meanwhile an admin goroutine cycles accounting collections (each a
// stop-the-world safepoint) and kills one victim isolate mid-run. The
// test runs under -race in CI.

const icStressIters = 4000

// icStressSystemClasses builds the shared system hierarchy and the two
// hammer drivers.
func icStressSystemClasses() []*classfile.Class {
	sysInit := func(super string) func(a *bytecode.Assembler) {
		return func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(super, classfile.InitName, "()V").Return()
		}
	}
	base := classfile.NewClass("sys/icb/Base").
		Method(classfile.InitName, "()V", 0, sysInit(classfile.ObjectClassName)).
		Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(1).IAdd().IReturn()
		}).MustBuild()
	implA := classfile.NewClass("sys/icb/ImplA").Super("sys/icb/Base").
		Method(classfile.InitName, "()V", 0, sysInit("sys/icb/Base")).
		Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(2).IAdd().IReturn()
		}).MustBuild()
	implB := classfile.NewClass("sys/icb/ImplB").Super("sys/icb/Base").
		Method(classfile.InitName, "()V", 0, sysInit("sys/icb/Base")).
		Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(3).IAdd().IReturn()
		}).MustBuild()
	// hammerPoly and hammerMega are identical bodies — but distinct
	// methods, so each carries its own invokevirtual site: hammer(r0, r1,
	// r2, n) dispatches one site over the three receivers round-robin.
	// Locals: 0..2 receivers, 3 n, 4 i, 5 acc, 6 sel.
	hammerBody := func(a *bytecode.Assembler) {
		a.Const(0).IStore(4)
		a.Const(0).IStore(5)
		a.Label("loop").ILoad(4).ILoad(3).IfICmpGe("done")
		a.ILoad(4).Const(3).IRem().IStore(6)
		a.ILoad(6).IfEq("r0")
		a.ILoad(6).Const(1).IfICmpEq("r1")
		a.ALoad(2).Goto("call")
		a.Label("r1").ALoad(1).Goto("call")
		a.Label("r0").ALoad(0)
		a.Label("call").ILoad(5).
			InvokeVirtual("sys/icb/Base", "f", "(I)I").IStore(5)
		a.IInc(4, 1).Goto("loop")
		a.Label("done").ILoad(5).IReturn()
	}
	const hammerDesc = "(Ljava/lang/Object;Ljava/lang/Object;Ljava/lang/Object;I)I"
	hammer := classfile.NewClass("sys/icb/Hammer").
		Method("hammerPoly", hammerDesc, classfile.FlagStatic, hammerBody).
		Method("hammerMega", hammerDesc, classfile.FlagStatic, hammerBody).MustBuild()
	return []*classfile.Class{base, implA, implB, hammer}
}

// icStressBundleClasses builds one isolate's bundle: three private
// subclasses (megamorphic fodder) and the entry point driving both
// hammer sites.
func icStressBundleClasses(prefix string) []*classfile.Class {
	init := func(super string) func(a *bytecode.Assembler) {
		return func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(super, classfile.InitName, "()V").Return()
		}
	}
	var classes []*classfile.Class
	for i := 0; i < 3; i++ {
		add := int64(i + 4)
		classes = append(classes, classfile.NewClass(fmt.Sprintf("%s/Impl%d", prefix, i)).
			Super("sys/icb/Base").
			Method(classfile.InitName, "()V", 0, init("sys/icb/Base")).
			Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
				a.ILoad(1).Const(add).IAdd().IReturn()
			}).MustBuild())
	}
	newRecv := func(a *bytecode.Assembler, class string) {
		a.New(class).Dup().InvokeSpecial(class, classfile.InitName, "()V")
	}
	const hammerDesc = "(Ljava/lang/Object;Ljava/lang/Object;Ljava/lang/Object;I)I"
	main := classfile.NewClass(prefix+"/Main").
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// Poly site: every isolate passes the same two shared system
			// receiver classes, so the site settles at N=2 and workers
			// race its empty -> mono -> poly transitions, then share the
			// steady-state hit path.
			newRecv(a, "sys/icb/ImplA")
			newRecv(a, "sys/icb/ImplB")
			newRecv(a, "sys/icb/ImplA")
			a.ILoad(0).InvokeStatic("sys/icb/Hammer", "hammerPoly", hammerDesc).IStore(1)
			// Mega site: per-isolate receiver classes (3 x isolates in
			// total), so every shard races the same site into the
			// megamorphic marker.
			newRecv(a, prefix+"/Impl0")
			newRecv(a, prefix+"/Impl1")
			newRecv(a, prefix+"/Impl2")
			a.ILoad(0).InvokeStatic("sys/icb/Hammer", "hammerMega", hammerDesc)
			a.ILoad(1).IAdd().IReturn()
		}).MustBuild()
	return append(classes, main)
}

// icStressExpected mirrors both hammer phases in Go for one isolate.
func icStressExpected(n int64) int64 {
	hammer := func(adds [3]int64) int64 {
		var acc int64
		for i := int64(0); i < n; i++ {
			acc += adds[i%3]
		}
		return acc
	}
	return hammer([3]int64{2, 3, 2}) + hammer([3]int64{4, 5, 6})
}

// TestInlineCachePublicationRace is the -race stress: 6 isolates on 4
// workers hammering the two shared call sites while the admin goroutine
// cycles GC safepoints and kills isolate "bundle1" mid-run.
func TestInlineCachePublicationRace(t *testing.T) {
	const isolates = 6
	for round := 0; round < 3; round++ {
		vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 32 << 20})
		syslib.MustInstall(vm)
		if err := vm.Registry().Bootstrap().DefineAll(icStressSystemClasses()); err != nil {
			t.Fatal(err)
		}
		var threads []*interp.Thread
		var victim *core.Isolate
		for k := 0; k < isolates; k++ {
			iso, err := vm.NewIsolate(fmt.Sprintf("bundle%d", k))
			if err != nil {
				t.Fatal(err)
			}
			if k == 1 {
				victim = iso
			}
			prefix := fmt.Sprintf("b%d", k)
			if err := iso.Loader().DefineAll(icStressBundleClasses(prefix)); err != nil {
				t.Fatal(err)
			}
			c, err := iso.Loader().Lookup(prefix + "/Main")
			if err != nil {
				t.Fatal(err)
			}
			m, err := c.LookupMethod("run", "(I)I")
			if err != nil {
				t.Fatal(err)
			}
			th, err := vm.SpawnThread(prefix, iso, m, []heap.Value{heap.IntVal(icStressIters)})
			if err != nil {
				t.Fatal(err)
			}
			threads = append(threads, th)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			killed := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				vm.CollectGarbage(nil)
				if i == 2 && !killed {
					killed = true
					if err := vm.KillIsolate(nil, victim); err != nil {
						t.Errorf("kill: %v", err)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		res := sched.Run(vm, 4, 0)
		close(stop)
		wg.Wait()
		if !res.AllDone {
			t.Fatalf("round %d: run did not finish: %+v", round, res)
		}
		want := icStressExpected(icStressIters)
		for k, th := range threads {
			if th.Err() != nil {
				t.Fatalf("round %d bundle%d: host error %v", round, k, th.Err())
			}
			if k == 1 {
				// The victim either finished before the kill landed or died
				// with the termination exception; both are legal.
				if th.Failure() != nil {
					continue
				}
			}
			if th.Failure() != nil {
				t.Fatalf("round %d bundle%d: guest failure %v", round, k, th.FailureString())
			}
			if th.Result().I != want {
				t.Fatalf("round %d bundle%d: result %d, want %d", round, k, th.Result().I, want)
			}
		}

		// The stress must actually have driven the two sites into their
		// terminal states: stable two-way polymorphic and megamorphic.
		hammerClass, err := vm.Registry().Bootstrap().Lookup("sys/icb/Hammer")
		if err != nil {
			t.Fatal(err)
		}
		assertSite := func(name string, wantN int, wantMega bool) {
			m, err := hammerClass.LookupMethod(name, "(Ljava/lang/Object;Ljava/lang/Object;Ljava/lang/Object;I)I")
			if err != nil {
				t.Fatal(err)
			}
			line := icSiteLine(t, m, bytecode.PModeIsolated)
			if line == nil || line.N != wantN || line.Mega != wantMega {
				t.Fatalf("round %d %s: line %+v, want {N:%d Mega:%v}", round, name, line, wantN, wantMega)
			}
		}
		assertSite("hammerPoly", 2, false)
		assertSite("hammerMega", 0, true)
	}
}
