package interp

import (
	"errors"
	"fmt"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// ErrTooManyThreads is returned by SpawnThread when the thread limit is
// reached; the Thread.start native converts it into
// java/lang/OutOfMemoryError, as real JVMs do (attack A5).
var ErrTooManyThreads = errors.New("interp: thread limit reached")

// resolveClassFrom resolves a class name through the loader of the
// referencing class (bundle-scoped resolution with bootstrap delegation
// and OSGi wiring).
func (vm *VM) resolveClassFrom(from *classfile.Class, name string) (*classfile.Class, error) {
	l := vm.registry.Loader(from.LoaderID)
	if l == nil {
		return nil, fmt.Errorf("class %s has no loader", from.Name)
	}
	return l.Lookup(name)
}

// resolveMethodEntry resolves a MethodRef pool entry relative to the
// frame's class, caching the result.
func (vm *VM) resolveMethodEntry(f *Frame, entry *classfile.PoolEntry) (*classfile.Method, error) {
	if m := entry.ResolvedMethod.Load(); m != nil {
		return m, nil
	}
	class, err := vm.resolveClassFrom(f.method.Class, entry.ClassName)
	if err != nil {
		return nil, err
	}
	m, err := class.LookupMethod(entry.Name, entry.Descriptor)
	if err != nil {
		return nil, err
	}
	entry.ResolvedClass.Store(class)
	entry.ResolvedMethod.Store(m)
	return m, nil
}

// SpawnThread creates a new green thread whose entry point is method m
// with the given arguments, charged to creator. The first instruction runs
// at the next scheduling opportunity.
func (vm *VM) SpawnThread(name string, creator *core.Isolate, m *classfile.Method, args []heap.Value) (*Thread, error) {
	if creator == nil {
		return nil, errors.New("interp: SpawnThread requires a creator isolate")
	}
	// Admission control: a governor-throttled isolate may not grow its
	// thread population. Isolate0 (platform) is never throttled, and
	// RespawnThread is deliberately ungated — RPC dispatch threads are
	// admission-controlled on the caller side at Link submission.
	if creator.Throttled() && !creator.IsIsolate0() {
		return nil, fmt.Errorf("%w: isolate %d", core.ErrThrottled, creator.ID())
	}
	vm.threadsMu.Lock()
	if live := int(vm.liveThreads.Load()); live >= vm.opts.MaxThreads {
		vm.threadsMu.Unlock()
		return nil, fmt.Errorf("%w (%d live)", ErrTooManyThreads, live)
	}
	vm.nextThreadID++
	t := &Thread{
		id:             vm.nextThreadID,
		name:           name,
		vm:             vm,
		cur:            creator,
		creator:        creator,
		lastSwitchTick: vm.NowTicks(),
	}
	t.setState(StateRunnable)
	creator.Account().ThreadsCreated.Add(1)
	creator.Account().ThreadsLive.Add(1)
	vm.liveThreads.Add(1)
	vm.threadsMu.Unlock()
	// The thread is NOT in vm.threads yet. Frame setup below runs on the
	// caller's goroutine, which a concurrent run's stop-the-world does
	// not park (only scheduler workers reach safepoints); publishing the
	// thread first would let the root scan read t.frames while this
	// goroutine writes them. So the frames are built on the still-private
	// thread and published under threadsMu afterwards — the mutex edge
	// makes them visible to any scan that observes the thread listed.
	//
	// That privacy means pendingArgs cannot root the entry arguments
	// (the scan only walks listed threads); the staged-args registry
	// keeps them alive across call setup instead, and records them with
	// an open mark phase's barrier — host-held references entering the
	// mutator world are outside the cycle's root snapshot, so without the
	// record the new thread could store one into an already-scanned
	// holder and the terminal re-scan would never see it (the heap fuzz
	// harness reproduces exactly this).
	vm.stageEntryArgs(t, creator, args)
	err := vm.pushFrame(t, m, args, nil)
	if err != nil {
		vm.unstageEntryArgs(t)
		vm.finishThread(t)
		t.err = err
		return nil, err
	}
	vm.threadsMu.Lock()
	vm.threads = append(vm.threads, t)
	delete(vm.stagedEntryArgs, t) // the frame locals root the arguments now
	vm.threadsMu.Unlock()
	// The arrival stamp is taken here, not at construction: this is the
	// moment the scheduler learns of the thread, and pushFrame above can
	// do real work (frame setup, barrier records) during which a
	// descheduled host goroutine must not bill the VM's progress as
	// request queueing time.
	t.spawnTick = vm.NowTicks()
	vm.notifyThreadSpawned(t)
	return t, nil
}

// stagedArgs is one staged entry-argument window: the references of a
// spawn/respawn argument list, attributed to the creator isolate. The
// refs slice is never mutated after insertion into vm.stagedEntryArgs,
// so the root scan may read it under threadsMu alone.
type stagedArgs struct {
	iso  heap.IsolateID
	refs []*heap.Object
}

// stageEntryArgs roots a spawn/respawn entry-argument window for the
// interval during which its thread is invisible to the GC root scan
// (unlisted, or listed but still Done). A window without references
// stages nothing. Staged references are also recorded with an open
// incremental cycle, keeping the SATB invariant for host-injected
// values. The registry is threadsMu-guarded (not HostRoots/pinMu):
// finalizer scheduling spawns threads from inside the stopped world
// while CollectGarbage still holds pinMu.
func (vm *VM) stageEntryArgs(t *Thread, creator *core.Isolate, args []heap.Value) {
	var refs []*heap.Object
	for i := range args {
		if r := args[i].R; r != nil {
			refs = append(refs, r)
		}
	}
	if refs == nil {
		return
	}
	vm.threadsMu.Lock()
	vm.stagedEntryArgs[t] = stagedArgs{iso: creator.ID(), refs: refs}
	vm.threadsMu.Unlock()
	if vm.heap.BarrierActive() {
		for _, r := range refs {
			vm.heap.RecordWrite(r)
		}
	}
}

// unstageEntryArgs drops a staged window (frame-setup failure path; the
// success paths unstage inline with their publication step).
func (vm *VM) unstageEntryArgs(t *Thread) {
	vm.threadsMu.Lock()
	delete(vm.stagedEntryArgs, t)
	vm.threadsMu.Unlock()
}

// RespawnThread re-arms a finished thread with a fresh entry point,
// reusing its allocation and (when still listed) its scheduler slot.
// Hosts that dispatch guest calls at high rate — the RPC hub's worker
// pools — recycle threads through this instead of paying SpawnThread's
// allocation and list bookkeeping per call. The thread keeps its ID;
// the respawn is charged to creator exactly like a fresh spawn
// (ThreadsCreated/ThreadsLive), so per-isolate accounting sees the same
// totals either way. Only Done threads whose frames have been popped
// (normal completion, uncaught exception, or AbortRootThread) may be
// respawned.
func (vm *VM) RespawnThread(t *Thread, name string, creator *core.Isolate, m *classfile.Method, args []heap.Value) error {
	if creator == nil {
		return errors.New("interp: RespawnThread requires a creator isolate")
	}
	vm.threadsMu.Lock()
	if !t.Done() || len(t.frames) != 0 {
		vm.threadsMu.Unlock()
		return errors.New("interp: RespawnThread on an unfinished thread")
	}
	if live := int(vm.liveThreads.Load()); live >= vm.opts.MaxThreads {
		vm.threadsMu.Unlock()
		return fmt.Errorf("%w (%d live)", ErrTooManyThreads, live)
	}
	t.name = name
	t.cur = creator
	t.creator = creator
	t.lastSwitchTick = vm.NowTicks()
	t.finishTick = 0
	t.result = heap.Value{}
	t.failure = nil
	t.err = nil
	t.interrupted = false
	t.threadObj = nil
	t.wakeAt = 0
	t.blockedOn, t.waitingOn, t.joinOn = nil, nil, nil
	t.savedLock = 0
	t.resumeKind, t.resumeValue, t.resumeThrow = resumeNone, heap.Value{}, nil
	t.slowStep = false
	creator.Account().ThreadsCreated.Add(1)
	creator.Account().ThreadsLive.Add(1)
	vm.liveThreads.Add(1)
	if t.pruned {
		t.pruned = false
		vm.threads = append(vm.threads, t)
	}
	vm.threadsMu.Unlock()
	// Same publication discipline as SpawnThread: the thread stays Done —
	// which the root scan skips — until its frames are fully built, so a
	// stop-the-world scan on another goroutine never reads t.frames while
	// this one writes them. The atomic state flip below is the
	// publication point; the staged-args registry keeps the arguments
	// alive (and SATB-recorded) while the thread is invisible.
	vm.stageEntryArgs(t, creator, args)
	err := vm.pushFrame(t, m, args, nil)
	if err != nil {
		vm.unstageEntryArgs(t)
		vm.finishThread(t)
		t.err = err
		return err
	}
	// Same arrival-stamp placement as SpawnThread.
	t.spawnTick = vm.NowTicks()
	t.setState(StateRunnable)
	// Scannable now (a scan that misses the staged entry must have
	// acquired threadsMu after this delete, hence after the state flip
	// above, so it walks the completed frames instead).
	vm.unstageEntryArgs(t)
	vm.notifyThreadSpawned(t)
	return nil
}

// invokeResolved is the invocation tail shared by the inline-cache and
// resolved-entry fast paths: target is already resolved — and, for
// instance calls, the receiver known non-null; for static calls, the
// class known initialized — so only the argument hand-off remains. The
// caller's pc advances before frames are pushed so returns resume after
// the call site; nargs is the argument-window size baked into the
// prepared instruction (receiver included). Prepared code verified the
// operand-stack discipline, so the window needs no depth check.
func (vm *VM) invokeResolved(t *Thread, f *Frame, target *classfile.Method, nargs int, hasRecv bool, next int32) error {
	args := f.stack[len(f.stack)-nargs:]
	f.pc = next
	// As in invokeEntry: pendingArgs keeps the truncated window visible
	// to the GC root scan until the callee owns the values.
	t.pendingArgs = args
	f.stack = f.stack[:len(f.stack)-nargs]
	var err error
	if target.IsNative() {
		err = vm.callNative(t, f, target, args, hasRecv)
	} else {
		err = vm.pushFrame(t, target, args, nil)
	}
	t.pendingArgs = nil
	return err
}

// Threads returns all threads ever created (including finished ones that
// have not been pruned).
func (vm *VM) Threads() []*Thread {
	vm.threadsMu.Lock()
	defer vm.threadsMu.Unlock()
	return append([]*Thread(nil), vm.threads...)
}

// LiveThreads returns the number of unfinished threads.
func (vm *VM) LiveThreads() int { return int(vm.liveThreads.Load()) }

// pushFrame activates method m on thread t with the given argument
// values (receiver first for instance methods). isoOverride forces the
// frame's isolate (used by <clinit>, which must execute in the accessing
// isolate so static writes hit that isolate's mirror).
//
// This is the thread-migration point of §3.1: when the callee's class
// belongs to a different isolate, the thread's isolate reference is
// updated and the caller's recorded for restoration on return. System
// library classes never migrate. A call into a killed isolate throws
// StoppedIsolateException (the paper's method poisoning).
//
// Frames come from the VM's frame pool; args may be a view of the
// caller's operand stack — it is copied into the callee's locals before
// this function returns.
func (vm *VM) pushFrame(t *Thread, m *classfile.Method, args []heap.Value, isoOverride *core.Isolate) error {
	if len(t.frames) >= vm.opts.MaxFrameDepth {
		return vm.Throw(t, ClassStackOverflowError, m.QualifiedName())
	}
	frameIso := t.cur
	var callerIso *core.Isolate
	if isoOverride != nil {
		frameIso = isoOverride
	} else if !m.Class.IsSystem() {
		classIso := vm.world.IsolateForLoaderID(m.Class.LoaderID)
		if classIso != nil {
			if classIso.Killed() {
				return vm.Throw(t, ClassStoppedIsolateException, "call into killed isolate "+classIso.Name())
			}
			if classIso != t.cur && vm.world.Isolated() {
				// Inter-isolate call: migrate the thread.
				callerIso = t.cur
				if vm.opts.PerCallCPUAccounting {
					vm.chargePerCallCPU(t, t.cur)
				}
				t.cur = classIso
				frameIso = classIso
				classIso.Account().InterBundleCallsIn.Add(1)
				if callerIso != nil {
					callerIso.Account().InterBundleCallsOut.Add(1)
				}
			} else {
				frameIso = classIso
			}
		}
	}
	if frameIso == nil {
		return fmt.Errorf("pushFrame %s: no isolate for frame", m.QualifiedName())
	}
	code := m.Code
	if code == nil {
		return fmt.Errorf("pushFrame %s: bytecode method without code", m.QualifiedName())
	}
	var mon *heap.Object
	if m.IsSynchronized() {
		var err error
		mon, err = vm.syncMonitorFor(t, m, args)
		if err != nil {
			return err
		}
	}
	// Code preparation (quickening) runs once per method on its first
	// invocation; prepared methods carry exact frame dimensions.
	pcode := vm.preparedCode(m)
	nLocals, maxStack := code.MaxLocals, code.MaxStack
	if pcode != nil {
		nLocals, maxStack = pcode.MaxLocals, pcode.MaxStack
	}
	if n := len(args); n > nLocals {
		nLocals = n
	}
	f := vm.acquireFrame(nLocals, maxStack)
	f.method = m
	f.iso = frameIso
	f.pcode = pcode
	if pcode != nil {
		// Tier heat: count the activation and adopt (or build) the
		// closure-threaded program once the body crosses the promotion
		// threshold. Steady state for an already-hot method is one atomic
		// load (the published program).
		vm.noteActivation(f, m, pcode)
	}
	f.callerIso = callerIso
	f.needsMonitor = mon
	if mon != nil {
		t.slowStep = true // acquire before the first instruction
	}
	copy(f.locals, args)
	for i := len(args); i < nLocals; i++ {
		f.locals[i] = heap.Null()
	}
	t.frames = append(t.frames, f)
	if vm.TraceMethodEntry != nil {
		vm.TraceMethodEntry(m, frameIso)
	}
	return nil
}

// acquireFrame takes a cleared frame from the pool (or allocates one)
// and sizes its locals and operand stack. Prepared methods pass exact
// dimensions, so the operand stack never grows during execution.
func (vm *VM) acquireFrame(nLocals, maxStack int) *Frame {
	f, _ := vm.framePool.Get().(*Frame)
	if f == nil {
		f = &Frame{}
	}
	if cap(f.locals) < nLocals {
		f.locals = make([]heap.Value, nLocals)
	} else {
		f.locals = f.locals[:nLocals]
	}
	if cap(f.stack) < maxStack {
		f.stack = make([]heap.Value, 0, maxStack)
	}
	return f
}

// releaseFrame clears a popped frame (so pooled frames retain no object
// references) and returns it to the pool. The caller must not touch the
// frame afterwards: another thread's pushFrame may already be reusing it.
func (vm *VM) releaseFrame(f *Frame) {
	clear(f.locals[:cap(f.locals)])
	clear(f.stack[:cap(f.stack)])
	clear(f.entered[:cap(f.entered)])
	locals, stack, entered := f.locals[:0], f.stack[:0], f.entered[:0]
	*f = Frame{locals: locals, stack: stack, entered: entered}
	vm.framePool.Put(f)
}

// syncMonitorFor returns the monitor a synchronized method must hold: the
// receiver for instance methods, the (per-isolate!) java.lang.Class object
// for static methods. Per-isolate Class objects are exactly why attack A2
// cannot block a foreign bundle under I-JVM.
func (vm *VM) syncMonitorFor(t *Thread, m *classfile.Method, args []heap.Value) (*heap.Object, error) {
	if m.IsStatic() {
		return vm.ClassObjectFor(t, m.Class, t.cur)
	}
	if len(args) == 0 || args[0].R == nil {
		return nil, fmt.Errorf("synchronized instance method %s without receiver", m.QualifiedName())
	}
	return args[0].R, nil
}

// returnFromFrame completes the top frame with a return value (Void for
// void returns) and resumes the caller. Returning into a frame of a killed
// isolate raises StoppedIsolateException instead of delivering the value
// (the paper's patched return pointers, §3.3).
func (vm *VM) returnFromFrame(t *Thread, v heap.Value) error {
	f := t.top()
	// Capture everything needed from the frame before popFrame recycles
	// it into the frame pool.
	isClinit := f.clinitMirror != nil
	retKind := f.method.Desc.Return
	if v.Kind == voidKind && retKind != classfile.KindVoid {
		// A void return instruction inside a value-returning method: the
		// bytecode lies about its descriptor. Callers (and the prepared
		// verifier) size their stacks from the descriptor, so this must
		// terminate the thread here rather than leave the caller's stack
		// one value short.
		return fmt.Errorf("interp: %s declared a value return but returned void", f.method.QualifiedName())
	}
	vm.popFrame(t, f)
	nf := t.top()
	if nf == nil {
		t.result = v
		vm.finishThread(t)
		return nil
	}
	if nf.iso != nil && nf.iso.Killed() {
		return vm.Throw(t, ClassStoppedIsolateException, "return into killed isolate "+nf.iso.Name())
	}
	if isClinit {
		// The triggering instruction re-executes; nothing is pushed.
		return nil
	}
	if v.Kind != voidKind && retKind != classfile.KindVoid {
		nf.push(v)
	}
	return nil
}

// ensureInitialized guarantees the task class mirror chain of c (supers
// first) is initialized for isolate iso, pushing a <clinit> frame when
// needed. It returns true when execution of the triggering instruction may
// proceed; false means the instruction must re-execute later (a <clinit>
// frame was pushed, or another thread is initializing).
func (vm *VM) ensureInitialized(t *Thread, c *classfile.Class, iso *core.Isolate) (bool, error) {
	for {
		var target *classfile.Class
		for k := c; k != nil; k = k.Super {
			m := vm.world.Mirror(k, iso)
			switch m.State {
			case core.InitNone:
				target = k // deepest iteration wins: topmost uninitialized super
			case core.InitRunning:
				if m.InitThread != t.id {
					// Another thread is initializing; retry later.
					return false, nil
				}
			}
		}
		if target == nil {
			return true, nil
		}
		mirror := vm.world.Mirror(target, iso)
		if target.Clinit == nil {
			mirror.State = core.InitDone
			continue
		}
		mirror.State = core.InitRunning
		mirror.InitThread = t.id
		if err := vm.pushFrame(t, target.Clinit, nil, iso); err != nil {
			mirror.State = core.InitDone
			mirror.InitThread = 0
			return false, err
		}
		clinitFrame := t.top()
		clinitFrame.clinitMirror = mirror
		return false, nil
	}
}

// CallRoot spawns a thread for method m, runs the scheduler until that
// thread finishes (or the budget is exhausted), and returns its result.
// Convenience for hosts (examples, OSGi framework, benchmarks).
func (vm *VM) CallRoot(iso *core.Isolate, m *classfile.Method, args []heap.Value, budget int64) (heap.Value, *Thread, error) {
	t, err := vm.SpawnThread("call:"+m.Name, iso, m, args)
	if err != nil {
		return heap.Value{}, nil, err
	}
	res := vm.RunUntil(t, budget)
	if t.err != nil {
		return heap.Value{}, t, t.err
	}
	if !t.Done() {
		return heap.Value{}, t, fmt.Errorf("thread %d did not finish: %v (budget %d, result %+v)", t.id, t.State(), budget, res)
	}
	return t.result, t, nil
}
