package interp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/loader"
)

// Well-known class names the interpreter raises or consults directly.
// They are defined by the system library (internal/syslib).
const (
	ClassObject    = "java/lang/Object"
	ClassString    = "java/lang/String"
	ClassClass     = "java/lang/Class"
	ClassThread    = "java/lang/Thread"
	ClassThrowable = "java/lang/Throwable"

	ClassNullPointerException = "java/lang/NullPointerException"
	ClassArithmeticException  = "java/lang/ArithmeticException"
	ClassArrayIndexException  = "java/lang/ArrayIndexOutOfBoundsException"
	ClassClassCastException   = "java/lang/ClassCastException"
	ClassNegativeArraySize    = "java/lang/NegativeArraySizeException"
	ClassIllegalMonitorState  = "java/lang/IllegalMonitorStateException"
	ClassIllegalState         = "java/lang/IllegalStateException"
	ClassInterruptedException = "java/lang/InterruptedException"
	ClassOutOfMemoryError     = "java/lang/OutOfMemoryError"
	ClassStackOverflowError   = "java/lang/StackOverflowError"

	// ClassStoppedIsolateException is I-JVM's termination exception
	// (§3.3). The terminating isolate cannot catch it: handlers in frames
	// belonging to a killed isolate are ignored during unwinding.
	ClassStoppedIsolateException = "ijvm/isolate/StoppedIsolateException"
)

// Options configures a VM.
type Options struct {
	// Mode selects Shared (baseline JVM) or Isolated (I-JVM) semantics.
	Mode core.Mode
	// HeapLimit is the heap capacity in modelled bytes (0 selects the
	// heap default).
	HeapLimit int64
	// MaxThreads caps live threads; exceeding it raises
	// OutOfMemoryError, as real JVMs do (attack A5). 0 selects 4096.
	MaxThreads int
	// Quantum is the scheduler time slice in instructions (0 selects
	// 1000).
	Quantum int
	// SampleEvery is the CPU-sampling period in instructions (0 selects
	// 127). Sampling only runs in Isolated mode.
	SampleEvery int
	// MaxFrameDepth caps the frame stack (0 selects 1024).
	MaxFrameDepth int
	// PerCallCPUAccounting enables the ablation-only accounting strategy
	// the paper rejected (§3.2): charge exact virtual time on every
	// inter-isolate call boundary instead of sampling.
	PerCallCPUAccounting bool
	// DisableAccountingGC turns the GC's per-isolate charging pass off
	// (ablation).
	DisableAccountingGC bool
	// DisablePrepare turns the code-preparation (quickening) pass off:
	// every method executes through the seed-style switch interpreter
	// with checked stack discipline. Used as the reference semantics of
	// the dispatch oracle tests and as an escape hatch.
	DisablePrepare bool
	// DisableInlineCaches makes prepared invokes resolve through the
	// generic path (pool entry + per-class resolution cache) instead of
	// the per-site polymorphic inline caches — the ablation baseline of
	// the BenchmarkInvoke_* microbenchmarks.
	DisableInlineCaches bool
	// ForceSTWGC selects the reference collector: no incremental cycles,
	// no write barrier, every collection a monolithic stop-the-world
	// mark-sweep at its trigger point. The differential baseline of the
	// GC oracle and benchmarks.
	ForceSTWGC bool
	// GCThresholdPercent is the heap occupancy (percent of the limit) at
	// which the engines open a background incremental mark cycle at a
	// quantum boundary. 0 selects 88; negative disables background
	// cycles (collections then happen only on allocation pressure or
	// explicit request, each as one exact stop-the-world pass — the
	// configuration whose collection points are byte-identical to
	// ForceSTWGC).
	GCThresholdPercent int
	// GCMarkStride is how many mark-work units (≈ objects scanned) each
	// engine performs per quantum boundary while a cycle is open. 0
	// selects 256.
	GCMarkStride int
	// DisableFusion turns the preparation-time superinstruction pass off:
	// prepared bodies keep one handler per bytecode. Used as the ablation
	// baseline of the BenchmarkTier_* microbenchmarks and as an escape
	// hatch. Fused and unfused forms occupy distinct prepared-cache slots,
	// so VMs with different settings share method bodies safely.
	DisableFusion bool
	// TierPromoteThreshold is the heat (activations plus quantum-resident
	// instructions) at which a prepared method body is promoted to the
	// closure-threaded hot tier. 0 selects 2048; negative disables the
	// tier entirely; 1 promotes on first activation (the dispatch oracle's
	// closure leg uses this to force every method hot).
	TierPromoteThreshold int
}

func (o *Options) normalize() {
	if o.Mode == 0 {
		o.Mode = core.ModeIsolated
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 4096
	}
	if o.Quantum <= 0 {
		o.Quantum = 1000
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 127
	}
	if o.MaxFrameDepth <= 0 {
		o.MaxFrameDepth = 1024
	}
	if o.GCThresholdPercent == 0 {
		o.GCThresholdPercent = 88
	}
	if o.GCMarkStride <= 0 {
		o.GCMarkStride = 256
	}
	if o.TierPromoteThreshold == 0 {
		o.TierPromoteThreshold = 2048
	}
}

// VM is one virtual machine instance: registry, isolate world, heap,
// threads and scheduler state.
//
// Guest code runs either on the cooperative sequential scheduler (Run /
// RunUntil, single goroutine) or on the concurrent isolate scheduler
// (internal/sched via the hooks in concurrent.go), never both at once.
// The shared VM state below is synchronized so the concurrent engine is
// race-free; see internal/interp/README.md for the locking discipline.
type VM struct {
	opts     Options
	registry *loader.Registry
	world    *core.World
	heap     *heap.Heap

	// ptable is the mode-specialized prepared-dispatch table and pmode
	// the matching prepared-form cache index. Both are fixed at
	// construction and only change inside SetIsolationMode's
	// stopped-world section (which also re-quickens every live frame),
	// so the execution engines read them without synchronization.
	ptable *[256]phandler
	pmode  int

	// threadsMu guards the thread registry (threads, nextThreadID) and
	// stagedEntryArgs; liveThreads is atomic so schedulers can poll it
	// lock-free.
	threadsMu    sync.Mutex
	threads      []*Thread
	nextThreadID int64
	liveThreads  atomic.Int64
	rrIndex      int // sequential engine only

	// stagedEntryArgs roots spawn/respawn entry-argument windows while
	// their thread is invisible to the GC root scan — unlisted, or
	// listed but still Done (see SpawnThread's publication discipline).
	// Each entry's refs slice is immutable once inserted, so the scan
	// reads it safely under threadsMu alone. This deliberately does not
	// use the pinMu-guarded HostRoots registry: finalizer scheduling
	// spawns threads from inside the stopped world while CollectGarbage
	// still holds pinMu.
	stagedEntryArgs map[*Thread]stagedArgs

	// schedMu serializes the park/wake state machine: wait sets, sleep
	// deadlines and cross-thread state transitions. No allocation and no
	// VM lock other than a monitor stripe (monitor.go) is taken while
	// holding it.
	schedMu sync.Mutex

	// clock is the virtual time in ticks; it advances by one per executed
	// instruction and jumps forward when all threads sleep.
	clock            atomic.Int64
	instrSinceSample int // sequential engine only
	totalInstrs      atomic.Int64

	// Sequential-engine batched accounting (owned by the goroutine
	// running Run/RunUntil): instructions and clock ticks accumulate in
	// these plain counters and are flushed to the atomics at quantum
	// boundaries and sequential safepoints (see flushSequential).
	// seqModeFlip tells runQuantum to refresh its hoisted isolation-mode
	// flag; SetIsolationMode raises it under the same ownership contract
	// (the executing goroutine, or no run in progress).
	seqBatch    core.InstrBatch
	seqPending  int64
	seqModeFlip bool

	// framePool recycles activation records (and their local/stack
	// slices) across pushFrame/popFrame.
	framePool sync.Pool

	// seqAlloc is the sequential engine's allocation state (shard-local
	// domain + byte batch), owned by the goroutine running Run/RunUntil
	// and installed on the stepping thread per quantum. allocFree pools
	// worker allocation states across concurrent runs so the heap's
	// domain registry stays bounded by the worker high-water mark.
	seqAlloc    *allocState
	allocFreeMu sync.Mutex
	allocFree   []*allocState

	// monStripes is the striped monitor-lock table: Object.Monitor words
	// are guarded by the stripe selected by the object's immutable stripe
	// index, so uncontended monitor enter/exit never touches a global
	// lock. Stripes are leaf locks, acquired (if at all) after schedMu;
	// see monitor.go for the full discipline.
	monStripes [monStripeCount]sync.Mutex

	// pinned holds host-side references (OSGi registry, RPC endpoints)
	// that act as GC roots attributed to an isolate. hostRoots is the
	// registry of live HostRoots sets (see hostroots.go) — transient
	// host-side root batches with the same attribution, guarded by the
	// same mutex so rooted allocation is atomic with respect to root-set
	// construction.
	pinMu     sync.Mutex
	pinned    map[heap.IsolateID][]*heap.Object
	hostRoots map[*HostRoots]struct{}

	// waiters tracks Object.wait sets per monitor object (schedMu).
	waiters map[*heap.Object][]*Thread

	// out captures guest System.out.
	outMu sync.Mutex
	out   strings.Builder

	// wellKnown caches bootstrap classes by name.
	wkMu      sync.Mutex
	wellKnown map[string]*classfile.Class

	// TraceMethodEntry, when set, observes every frame push (used by
	// termination tests to prove killed code never runs again).
	TraceMethodEntry func(m *classfile.Method, iso *core.Isolate)

	// Host services the system library uses (installed by syslib).
	connHost ConnectionHost

	// hooks and safepointer are installed by the concurrent scheduler for
	// the duration of a RunConcurrent; both are nil in sequential runs.
	hooks atomic.Pointer[hookBox]
	safe  atomic.Pointer[safeBox]

	shutdown atomic.Bool
	rngMu    sync.Mutex
	rng      uint64
}

// ConnectionHost backs the guest's connection I/O (the simulated network
// and filesystem substrate).
type ConnectionHost interface {
	// Open returns an opaque endpoint for a connection name.
	Open(name string) (ConnectionEndpoint, error)
}

// ConnectionEndpoint is one open guest connection.
type ConnectionEndpoint interface {
	Read(n int) ([]byte, error)
	Write(b []byte) (int, error)
	Close() error
}

// NewVM creates an empty VM. The system library must be installed (see
// internal/syslib) and at least one isolate created before code can run.
func NewVM(opts Options) *VM {
	opts.normalize()
	registry := loader.NewRegistry()
	h := heap.New(opts.HeapLimit)
	if opts.Mode == core.ModeShared {
		// The baseline JVM performs no per-bundle resource accounting.
		h.SetAllocTracking(false)
	}
	if !opts.ForceSTWGC && opts.GCThresholdPercent > 0 {
		h.SetGCThreshold(h.Limit() * int64(opts.GCThresholdPercent) / 100)
	}
	return &VM{
		opts:      opts,
		registry:  registry,
		world:     core.NewWorld(opts.Mode, registry),
		heap:      h,
		ptable:    handlerTable(opts.Mode, opts.DisableInlineCaches),
		pmode:     pmodeIndex(opts.Mode),
		pinned:    make(map[heap.IsolateID][]*heap.Object),
		hostRoots: make(map[*HostRoots]struct{}),
		waiters:   make(map[*heap.Object][]*Thread),

		stagedEntryArgs: make(map[*Thread]stagedArgs),
		wellKnown: make(map[string]*classfile.Class),
		rng:       0x9E3779B97F4A7C15,
	}
}

// Options returns the VM's effective options.
func (vm *VM) Options() Options { return vm.opts }

// Registry returns the class-loader registry.
func (vm *VM) Registry() *loader.Registry { return vm.registry }

// World returns the isolate world.
func (vm *VM) World() *core.World { return vm.world }

// Heap returns the heap.
func (vm *VM) Heap() *heap.Heap { return vm.heap }

// Clock returns the virtual time in ticks. This is the flushed,
// cross-goroutine-safe view: mid-quantum it may trail the executing
// engine by up to one quantum, because both engines publish ticks in
// batches. Code running on the executing goroutine (natives, deadline
// computation) must use NowTicks for per-instruction-exact time.
func (vm *VM) Clock() int64 { return vm.clock.Load() }

// NowTicks returns the exact virtual time as observed by the goroutine
// executing guest code: the flushed clock plus the sequential engine's
// pending batched ticks. Sleep/wait deadline computation and the time
// natives use it so batched tick publication never shortens a timed
// park or freezes guest-visible time within a quantum — sequential
// timing is bit-identical to per-instruction clock publication. Host
// goroutines must use Clock instead: the pending counter is plain state
// owned by the run-loop goroutine. (Under the concurrent engine the
// pending counter is unused and this equals Clock, whose quantum
// batching is inherent to parallel execution.)
func (vm *VM) NowTicks() int64 { return vm.clock.Load() + vm.seqPending }

// TotalInstructions returns the number of instructions executed so far.
func (vm *VM) TotalInstructions() int64 { return vm.totalInstrs.Load() }

// Output returns everything the guest printed to System.out.
func (vm *VM) Output() string {
	vm.outMu.Lock()
	defer vm.outMu.Unlock()
	return vm.out.String()
}

// AppendOutput appends to the captured System.out stream (used by
// system-library print natives).
func (vm *VM) AppendOutput(s string) {
	vm.outMu.Lock()
	vm.out.WriteString(s)
	vm.outMu.Unlock()
}

// ResetOutput clears the captured output.
func (vm *VM) ResetOutput() {
	vm.outMu.Lock()
	vm.out.Reset()
	vm.outMu.Unlock()
}

// SetConnectionHost installs the I/O substrate used by guest connections.
func (vm *VM) SetConnectionHost(h ConnectionHost) { vm.connHost = h }

// ConnectionHostRef returns the installed I/O substrate (nil if none).
func (vm *VM) ConnectionHostRef() ConnectionHost { return vm.connHost }

// Shutdown marks the platform as shut down (System.exit / admin action);
// the scheduler stops at the next boundary.
func (vm *VM) Shutdown() { vm.shutdown.Store(true) }

// IsShutdown reports whether the platform has been shut down.
func (vm *VM) IsShutdown() bool { return vm.shutdown.Load() }

// NewIsolate creates an application class loader and its isolate. The
// first call creates Isolate0.
func (vm *VM) NewIsolate(name string) (*core.Isolate, error) {
	l := vm.registry.NewLoader(name)
	return vm.world.NewIsolate(name, l)
}

// Pin registers a host-held reference as a GC root charged to iso (OSGi
// service registry entries, RPC endpoints).
func (vm *VM) Pin(iso heap.IsolateID, obj *heap.Object) {
	if obj == nil {
		return
	}
	vm.pinMu.Lock()
	vm.pinned[iso] = append(vm.pinned[iso], obj)
	vm.pinMu.Unlock()
}

// Unpin removes a previously pinned reference.
func (vm *VM) Unpin(iso heap.IsolateID, obj *heap.Object) {
	vm.pinMu.Lock()
	defer vm.pinMu.Unlock()
	refs := vm.pinned[iso]
	for i, r := range refs {
		if r == obj {
			vm.pinned[iso] = append(refs[:i], refs[i+1:]...)
			return
		}
	}
}

// lookupWellKnown resolves a bootstrap class by name with caching.
func (vm *VM) lookupWellKnown(name string) (*classfile.Class, error) {
	vm.wkMu.Lock()
	c, ok := vm.wellKnown[name]
	vm.wkMu.Unlock()
	if ok {
		return c, nil
	}
	c, err := vm.registry.Bootstrap().Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("system library class missing (is syslib installed?): %w", err)
	}
	vm.wkMu.Lock()
	vm.wellKnown[name] = c
	vm.wkMu.Unlock()
	return c, nil
}

// InternString returns the interned string object for s in isolate iso.
// In Isolated mode every isolate has a private pool (paper §3.1/§3.5); in
// Shared mode the single isolate's pool is global. t selects the
// executing shard's allocation domain (nil for host-side callers).
func (vm *VM) InternString(t *Thread, iso *core.Isolate, s string) (*heap.Object, error) {
	if iso == nil {
		return nil, errors.New("interp: InternString requires an isolate")
	}
	if obj, ok := iso.InternedString(s); ok {
		return obj, nil
	}
	strClass, err := vm.lookupWellKnown(ClassString)
	if err != nil {
		return nil, err
	}
	obj, err := vm.allocStringRaw(t, strClass, s, iso)
	if err != nil {
		return nil, err
	}
	// First publisher wins: a racing interner's object becomes garbage
	// and everyone returns the pool's canonical one.
	return iso.SetInternedString(s, obj), nil
}

// NewStringObject allocates a fresh (non-interned) guest string.
func (vm *VM) NewStringObject(t *Thread, iso *core.Isolate, s string) (*heap.Object, error) {
	strClass, err := vm.lookupWellKnown(ClassString)
	if err != nil {
		return nil, err
	}
	return vm.allocStringRaw(t, strClass, s, iso)
}

// ClassObjectFor returns the per-isolate java.lang.Class object of class c
// (Shared mode: the single shared one), allocating it lazily in the
// class's task class mirror.
func (vm *VM) ClassObjectFor(t *Thread, c *classfile.Class, iso *core.Isolate) (*heap.Object, error) {
	m := vm.world.Mirror(c, iso)
	if obj := m.ClassObject.Load(); obj != nil {
		return obj, nil
	}
	classClass, err := vm.lookupWellKnown(ClassClass)
	if err != nil {
		return nil, err
	}
	obj, err := vm.allocNativeRaw(t, classClass, c, 0, false, iso)
	if err != nil {
		return nil, err
	}
	// First publisher wins; a racing loser's object becomes garbage and
	// is reclaimed by the next collection.
	if !m.ClassObject.CompareAndSwap(nil, obj) {
		return m.ClassObject.Load(), nil
	}
	return obj, nil
}

// --- Garbage collection ---------------------------------------------------

// CollectGarbage runs the paper's accounting collection (§3.2): roots are
// the per-isolate mirrors and string pools (step 2) plus every thread
// frame attributed to the frame's isolate (step 3), traced in isolate-ID
// order so an object is charged to the first isolate referencing it (step
// 4). triggeredBy, when non-nil, is charged one GC activation.
//
// The result is always exact — post-collection Used() equals live bytes
// and every dead object is reclaimed — regardless of the collector
// configuration: heap.Collect abandons any open incremental cycle and
// runs a fresh full pass from the current roots (see internal/heap
// gc.go), so pressure and explicit collections behave byte-identically
// under the incremental and the forced-STW collector.
func (vm *VM) CollectGarbage(triggeredBy *core.Isolate) heap.CollectResult {
	if triggeredBy != nil {
		triggeredBy.Account().GCActivations.Add(1)
	}
	var res heap.CollectResult
	// The collection traverses thread frames and the full object graph,
	// so under the concurrent scheduler every worker must be parked
	// first; the installed safepointer provides that (and is a no-op
	// passthrough for sequential runs).
	//
	// pinMu is held across snapshot AND sweep: host-side rooted
	// allocation (HostRoots) takes pinMu around alloc+root, so holding it
	// here means no object can be allocated-and-rooted between the root
	// snapshot and the sweep — the exact pass abandons any open cycle
	// (clearing allocate-black marks), so without this exclusion a copy
	// rooted after the snapshot would be swept while a host goroutine
	// still holds it. Lock order: pinMu -> (threadsMu, heap's gcMu/hostMu).
	vm.withWorldStopped(func() {
		vm.pinMu.Lock()
		defer vm.pinMu.Unlock()
		rootSets := vm.buildRootSetsLocked()
		res = vm.heap.Collect(rootSets)
		vm.world.UpdateDisposal(vm.heap)
		vm.scheduleFinalizers(res.PendingFinalize)
	})
	return res
}

// scheduleFinalizers spawns one finalizer thread per pending object,
// charged to the object's creator isolate (finalization work is part of
// what attack A4 monopolizes the CPU with). Objects of killed isolates
// are not finalized — their code must never run again (§3.3).
func (vm *VM) scheduleFinalizers(pending []*heap.Object) {
	for _, obj := range pending {
		iso := vm.world.IsolateByID(obj.Creator)
		if iso == nil || iso.Killed() {
			continue
		}
		m, err := obj.Class.LookupMethod(loader.FinalizeName, "()V")
		if err != nil {
			continue
		}
		t, err := vm.SpawnThread("finalizer:"+obj.Class.Name, iso, m, []heap.Value{heap.RefVal(obj)})
		if err != nil {
			continue // thread limit reached: the object stays resurrected
		}
		_ = t
		iso.Account().FinalizersRun.Add(1)
	}
}

// PreciseAccounting runs the precise per-isolate accounting pass (shared
// objects charged to every isolate reaching them) over the same root sets
// CollectGarbage uses — the strategy the paper rejected for its cost
// (§3.2); kept as an ablation and for administrators who want an exact
// view on demand.
func (vm *VM) PreciseAccounting() map[heap.IsolateID]*heap.PreciseStats {
	var out map[heap.IsolateID]*heap.PreciseStats
	vm.withWorldStopped(func() {
		vm.pinMu.Lock()
		defer vm.pinMu.Unlock()
		out = vm.heap.PreciseAccounting(vm.buildRootSetsLocked())
	})
	return out
}

// buildRootSets assembles the accounting root sets: per-isolate mirrors
// and string pools (step 2), pinned host references, and thread frames
// attributed to the frame's isolate (step 3), ordered by isolate ID so
// charging follows the paper's first-tracer rule (step 4).
func (vm *VM) buildRootSets() []heap.RootSet {
	vm.pinMu.Lock()
	defer vm.pinMu.Unlock()
	return vm.buildRootSetsLocked()
}

// buildRootSetsLocked is buildRootSets with pinMu already held. Exact
// collections call it and keep pinMu held through the sweep so rooted
// host-side allocation (HostRoots.alloc) cannot slip an object between
// the snapshot and the reclaim; incremental cycle starts only need the
// snapshot (allocate-black admission covers later births).
func (vm *VM) buildRootSetsLocked() []heap.RootSet {
	rootsByIso := vm.world.MirrorRootSets()
	for iso, objs := range vm.pinned {
		rootsByIso[iso] = append(rootsByIso[iso], objs...)
	}
	for r := range vm.hostRoots {
		if len(r.refs) != 0 {
			rootsByIso[r.iso] = append(rootsByIso[r.iso], r.refs...)
		}
	}
	vm.threadsMu.Lock()
	threads := append([]*Thread(nil), vm.threads...)
	// Entry-argument windows of threads still being set up (not yet
	// listed, or listed but Done pending a respawn's publication flip).
	for _, sa := range vm.stagedEntryArgs {
		rootsByIso[sa.iso] = append(rootsByIso[sa.iso], sa.refs...)
	}
	vm.threadsMu.Unlock()
	for _, t := range threads {
		if t.Done() {
			continue
		}
		// Thread-identity roots belong to the creator.
		creatorID := t.creator.ID()
		if t.threadObj != nil {
			rootsByIso[creatorID] = append(rootsByIso[creatorID], t.threadObj)
		}
		if t.resumeThrow != nil {
			rootsByIso[creatorID] = append(rootsByIso[creatorID], t.resumeThrow)
		}
		if r := t.resumeValue.R; r != nil {
			rootsByIso[creatorID] = append(rootsByIso[creatorID], r)
		}
		// In-flight invocation arguments (set only while the thread's own
		// goroutine is inside call setup; see Thread.pendingArgs).
		for i := range t.pendingArgs {
			if r := t.pendingArgs[i].R; r != nil {
				rootsByIso[creatorID] = append(rootsByIso[creatorID], r)
			}
		}
		if t.blockedOn != nil {
			rootsByIso[creatorID] = append(rootsByIso[creatorID], t.blockedOn)
		}
		if t.waitingOn != nil {
			rootsByIso[creatorID] = append(rootsByIso[creatorID], t.waitingOn)
		}
		for _, f := range t.frames {
			isoID := f.iso.ID()
			refs := rootsByIso[isoID]
			for i := range f.locals {
				if r := f.locals[i].R; r != nil {
					refs = append(refs, r)
				}
			}
			for i := range f.stack {
				if r := f.stack[i].R; r != nil {
					refs = append(refs, r)
				}
			}
			if f.lockedMonitor != nil {
				refs = append(refs, f.lockedMonitor)
			}
			if f.needsMonitor != nil {
				refs = append(refs, f.needsMonitor)
			}
			// Explicitly entered monitors stay rooted like the
			// synchronized-method one: the kill path must be able to
			// force-release them on a live object.
			refs = append(refs, f.entered...)
			rootsByIso[isoID] = refs
		}
	}
	rootSets := make([]heap.RootSet, 0, len(rootsByIso))
	if vm.opts.DisableAccountingGC {
		// Ablation: single undifferentiated root set.
		var all []*heap.Object
		for _, refs := range rootsByIso {
			all = append(all, refs...)
		}
		rootSets = append(rootSets, heap.RootSet{Isolate: 0, Refs: all})
	} else {
		for _, iso := range vm.world.Isolates() {
			if refs, ok := rootsByIso[iso.ID()]; ok {
				rootSets = append(rootSets, heap.RootSet{Isolate: iso.ID(), Refs: refs})
			}
		}
	}
	return rootSets
}

// MemoryFootprint returns the Figure 3 memory measure: live guest heap
// plus the isolation metadata (task class mirrors, per-isolate string
// pools and statistics). Run CollectGarbage first for a post-GC figure.
func (vm *VM) MemoryFootprint() int64 {
	return vm.heap.Used() + vm.world.StructFootprint()
}

// Snapshots returns per-isolate resource snapshots (refreshing nothing;
// call CollectGarbage first for up-to-date live memory).
func (vm *VM) Snapshots() []core.Snapshot {
	return vm.world.Snapshots(vm.heap)
}

// SnapshotOf returns the snapshot of one isolate.
func (vm *VM) SnapshotOf(iso *core.Isolate) core.Snapshot {
	return vm.world.Snapshot(iso, vm.heap)
}

// NextRand returns a deterministic pseudo-random uint64 (xorshift*), used
// by native methods that need randomness while keeping runs reproducible.
// (Deterministic for sequential runs; concurrent runs interleave callers.)
func (vm *VM) NextRand() uint64 {
	vm.rngMu.Lock()
	defer vm.rngMu.Unlock()
	vm.rng ^= vm.rng >> 12
	vm.rng ^= vm.rng << 25
	vm.rng ^= vm.rng >> 27
	return vm.rng * 0x2545F4914F6CDD1D
}

// describeThrowable renders "Class: message" for an exception object.
func (vm *VM) describeThrowable(obj *heap.Object) string {
	if obj == nil {
		return "<nil throwable>"
	}
	msg := ""
	if f, err := obj.Class.LookupField("message"); err == nil {
		if mv := obj.Fields[f.Slot]; mv.R != nil {
			if s, ok := mv.R.StringValue(); ok {
				msg = s
			}
		}
	}
	if msg == "" {
		return obj.Class.Name
	}
	return obj.Class.Name + ": " + msg
}
