package interp_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// This file is the incremental collector's companion of
// TestShardedAllocMonitorStress: 8 isolate shards mutate ONE shared
// object graph (a pinned 32-slot array, each shard overwriting its own
// 4-slot region every iteration) while background mark cycles open at
// 50% occupancy, mark strides run at every worker's quantum boundary,
// and terminal phases race admin-driven exact collections, explicit
// cycle starts, an InterruptThread storm and a mid-run World.Kill. Every
// overwrite of a shared slot during a cycle exercises the SATB deletion
// barrier and the atomic slot publication that markers read.
//
// The test runs under -race in CI. Assertions: the run completes,
// surviving threads compute the exact expected result, no object
// reachable through the pinned shared graph was ever swept (sweep
// soundness under concurrent marking), creator-charged byte accounts of
// the symmetric survivors are identical, the reservation counter equals
// live bytes exactly after a final exact collection, and the run really
// executed incremental cycles with live barrier traffic.

const (
	gcStressIsolates  = 8
	gcStressIters     = 1500
	gcStressKeep      = 48
	gcStressSlotsEach = 4
)

// gcStressClasses builds one isolate's bundle: run(shared, base, n)
// performs n iterations of keep-alloc + shared-graph overwrite + churn +
// shared-monitor section. Locals: 0 shared, 1 base, 2 n, 3 i, 4 acc,
// 5 ring, 6 tmp.
func gcStressClasses(prefix string) []*classfile.Class {
	main := classfile.NewClass(prefix+"/Main").
		Method("run", "(Ljava/lang/Object;II)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(gcStressKeep).NewArray("").AStore(5)
			a.Const(0).IStore(3)
			a.Const(0).IStore(4)
			a.Label("loop").ILoad(3).ILoad(2).IfICmpGe("done")
			// Kept allocation into the private ring (survives collections).
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").
				AStore(6)
			a.ALoad(5).ILoad(3).Const(gcStressKeep).IRem().ALoad(6).ArrayStore()
			// Shared-graph mutation: overwrite this shard's slot
			// base + i%slotsEach with a fresh object. The previous
			// occupant dies mid-cycle when a mark phase is open — the
			// SATB shape — and markers scan the slot concurrently.
			a.ALoad(0).ILoad(1).ILoad(3).Const(gcStressSlotsEach).IRem().IAdd().
				ALoad(6).ArrayStore()
			// Read the slot back through the barriered array (load path).
			a.ALoad(0).ILoad(1).ArrayLoad().AStore(6)
			a.Null().AStore(6)
			// Dropped churn (drives threshold crossings and pressure).
			a.Const(48).NewArray("").AStore(6)
			a.Null().AStore(6)
			// Cross-shard shared monitor section.
			a.ALoad(0).MonitorEnter()
			a.ILoad(4).Const(1).IAdd().IStore(4)
			a.ALoad(0).MonitorExit()
			a.IInc(3, 1).Goto("loop")
			a.Label("done").ILoad(4).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// TestKillReleasesExplicitMonitor is the deterministic regression test
// for the deadlock the barrier stress surfaced: a victim killed while
// inside an EXPLICIT monitorenter section (not a synchronized method)
// must have the monitor force-released by the §3.3 kill path, or every
// contender blocks forever on a lock owned by a dead thread.
func TestKillReleasesExplicitMonitor(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.NewIsolate("platform"); err != nil { // Isolate0
		t.Fatal(err)
	}
	victim, err := vm.NewIsolate("victim")
	if err != nil {
		t.Fatal(err)
	}
	other, err := vm.NewIsolate("other")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := vm.AllocObjectIn(nil, objClass, victim)
	if err != nil {
		t.Fatal(err)
	}
	// hold(shared): explicit monitorenter, then spin forever.
	hold := classfile.NewClass("v/Hold").
		Method("run", "(Ljava/lang/Object;)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).MonitorEnter()
			a.Label("spin").Goto("spin")
		}).MustBuild()
	// want(shared): block entering, then report success.
	want := classfile.NewClass("o/Want").
		Method("run", "(Ljava/lang/Object;)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).MonitorEnter()
			a.ALoad(0).MonitorExit()
			a.Const(42).IReturn()
		}).MustBuild()
	if err := victim.Loader().DefineAll([]*classfile.Class{hold}); err != nil {
		t.Fatal(err)
	}
	if err := other.Loader().DefineAll([]*classfile.Class{want}); err != nil {
		t.Fatal(err)
	}
	spawn := func(iso *core.Isolate, cls string) *interp.Thread {
		c, err := iso.Loader().Lookup(cls)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.LookupMethod("run", "(Ljava/lang/Object;)I")
		if err != nil {
			t.Fatal(err)
		}
		th, err := vm.SpawnThread(cls, iso, m, []heap.Value{heap.RefVal(shared)})
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	holder := spawn(victim, "v/Hold")
	waiter := spawn(other, "o/Want")
	_ = holder
	// Let the holder take the monitor and the waiter block on it.
	vm.Run(10_000)
	// Kill the victim: the explicit monitor must be force-released and
	// the waiter must complete.
	if err := vm.KillIsolate(nil, victim); err != nil {
		t.Fatal(err)
	}
	res := vm.RunUntil(waiter, 1_000_000)
	if !res.TargetDone || waiter.Failure() != nil || waiter.Result().I != 42 {
		t.Fatalf("waiter did not acquire the killed holder's explicit monitor: res=%+v failure=%v result=%d",
			res, waiter.FailureString(), waiter.Result().I)
	}
}

// TestKillPreservesSurvivorMonitorRecursion pins the other half of the
// kill-path contract: force-release must drop only the KILLED frame's
// recursion levels. Here the victim's frame enters a monitor and calls
// into a surviving isolate, which re-enters the same monitor
// (recursion level 2) and keeps working inside its critical section.
// Killing the victim must not hand the monitor to a contender while
// the surviving frame is still inside it, and the surviving frame's
// own monitorexit must not throw IllegalMonitorState.
func TestKillPreservesSurvivorMonitorRecursion(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.NewIsolate("platform"); err != nil { // Isolate0
		t.Fatal(err)
	}
	victim, err := vm.NewIsolate("victim")
	if err != nil {
		t.Fatal(err)
	}
	other, err := vm.NewIsolate("other")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := vm.AllocObjectIn(nil, objClass, other)
	if err != nil {
		t.Fatal(err)
	}
	// Victim: enter the monitor, then call the surviving isolate.
	enterAndCall := classfile.NewClass("vr/Main").
		Method("run", "(Ljava/lang/Object;)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).MonitorEnter()
			a.ALoad(0).InvokeStatic("or/Hold", "hold", "(Ljava/lang/Object;)I").IReturn()
		}).MustBuild()
	// Survivor: re-enter (recursion level 2), work, exit, return.
	holdClass := classfile.NewClass("or/Hold").
		Method("hold", "(Ljava/lang/Object;)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).MonitorEnter()
			a.Const(0).IStore(1)
			a.Label("loop").ILoad(1).Const(5000).IfICmpGe("done")
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ALoad(0).MonitorExit()
			a.Const(7).IReturn()
		}).MustBuild()
	contend := classfile.NewClass("or/Want").
		Method("run", "(Ljava/lang/Object;)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).MonitorEnter()
			a.ALoad(0).MonitorExit()
			a.Const(42).IReturn()
		}).MustBuild()
	if err := other.Loader().DefineAll([]*classfile.Class{holdClass, contend}); err != nil {
		t.Fatal(err)
	}
	victim.Loader().AddDelegate(other.Loader())
	if err := victim.Loader().DefineAll([]*classfile.Class{enterAndCall}); err != nil {
		t.Fatal(err)
	}
	spawn := func(iso *core.Isolate, cls, method string) *interp.Thread {
		c, err := iso.Loader().Lookup(cls)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.LookupMethod(method, "(Ljava/lang/Object;)I")
		if err != nil {
			t.Fatal(err)
		}
		th, err := vm.SpawnThread(cls, iso, m, []heap.Value{heap.RefVal(shared)})
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	holder := spawn(victim, "vr/Main", "run")
	waiter := spawn(other, "or/Want", "run")
	// Let the holder enter twice and settle into the survivor's loop,
	// with the waiter blocked on the monitor.
	vm.Run(3_000)
	if err := vm.KillIsolate(nil, victim); err != nil {
		t.Fatal(err)
	}
	res := vm.Run(1_000_000)
	if !res.AllDone {
		t.Fatalf("run did not finish after the kill: %+v", res)
	}
	// The surviving frame's critical section stayed intact: its own
	// monitorexit succeeded (no IllegalMonitorState), and the holder
	// died only when control returned into the killed frame.
	if f := holder.FailureString(); f == "" || !strings.Contains(f, "StoppedIsolateException") {
		t.Fatalf("holder failure = %q, want StoppedIsolateException (an IllegalMonitorState here means the kill broke the survivor's recursion level)", f)
	}
	if waiter.Failure() != nil || waiter.Result().I != 42 {
		t.Fatalf("waiter: failure=%v result=%d, want clean 42", waiter.FailureString(), waiter.Result().I)
	}
}

func TestIncrementalGCBarrierStress(t *testing.T) {
	for round := 0; round < 2; round++ {
		// Small heap + 50% threshold: the churn opens background cycles
		// continuously, and still forces GC-on-pressure exact
		// collections on top of the admin cycle below.
		vm := interp.NewVM(interp.Options{
			Mode:               core.ModeIsolated,
			HeapLimit:          256 << 10,
			GCThresholdPercent: 50,
			GCMarkStride:       64,
		})
		syslib.MustInstall(vm)
		objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
		if err != nil {
			t.Fatal(err)
		}

		var threads []*interp.Thread
		var isolates []*core.Isolate
		var victim *core.Isolate
		var shared *heap.Object
		for k := 0; k < gcStressIsolates; k++ {
			iso, err := vm.NewIsolate(fmt.Sprintf("gcbundle%d", k))
			if err != nil {
				t.Fatal(err)
			}
			isolates = append(isolates, iso)
			if k == 0 {
				// The shared graph spine, charged to bundle0 and pinned
				// so it stays a root past the run for the soundness walk.
				shared, err = vm.AllocArrayIn(nil, objClass, gcStressIsolates*gcStressSlotsEach, iso)
				if err != nil {
					t.Fatal(err)
				}
				vm.Pin(iso.ID(), shared)
			}
			if k == 1 {
				victim = iso
			}
			prefix := fmt.Sprintf("gcs%d", k)
			if err := iso.Loader().DefineAll(gcStressClasses(prefix)); err != nil {
				t.Fatal(err)
			}
			c, err := iso.Loader().Lookup(prefix + "/Main")
			if err != nil {
				t.Fatal(err)
			}
			m, err := c.LookupMethod("run", "(Ljava/lang/Object;II)I")
			if err != nil {
				t.Fatal(err)
			}
			th, err := vm.SpawnThread(prefix, iso, m, []heap.Value{
				heap.RefVal(shared),
				heap.IntVal(int64(k * gcStressSlotsEach)),
				heap.IntVal(gcStressIters),
			})
			if err != nil {
				t.Fatal(err)
			}
			threads = append(threads, th)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			killed := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					// Exact collection racing the open cycle (abandon path).
					vm.CollectGarbage(nil)
				case 1:
					// Host-initiated cycle start racing worker-driven ones.
					vm.StartIncrementalCycle()
				default:
					// Interrupt storm across all threads (running threads
					// just get the flag; monitor-blocked ones are not
					// interruptible, as in the JVM).
					for _, th := range threads {
						_ = vm.InterruptThread(th)
					}
				}
				if i == 4 && !killed {
					killed = true
					if err := vm.KillIsolate(nil, victim); err != nil {
						t.Errorf("kill: %v", err)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		res := sched.Run(vm, 4, 0)
		close(stop)
		wg.Wait()
		if !res.AllDone {
			t.Fatalf("round %d: run did not finish: %+v", round, res)
		}

		var wantBytes int64 = -1
		for k, th := range threads {
			if th.Err() != nil {
				t.Fatalf("round %d gcbundle%d: host error %v", round, k, th.Err())
			}
			if k == 1 {
				continue // victim: finished or killed, both legal
			}
			if th.Failure() != nil {
				t.Fatalf("round %d gcbundle%d: guest failure %v", round, k, th.FailureString())
			}
			if th.Result().I != gcStressIters {
				t.Fatalf("round %d gcbundle%d: result %d, want %d", round, k, th.Result().I, gcStressIters)
			}
			b := vm.SnapshotOf(isolates[k]).AllocatedBytes
			if k == 0 {
				b -= shared.Size() // bundle0 additionally owns the spine
			}
			if wantBytes == -1 {
				wantBytes = b
			} else if b != wantBytes {
				t.Fatalf("round %d gcbundle%d: allocated bytes %d, want %d", round, k, b, wantBytes)
			}
		}

		// Sweep soundness: nothing reachable through the pinned shared
		// graph was ever swept — before AND after a final exact
		// collection.
		checkGraph := func(when string) {
			if shared.Dead() {
				t.Fatalf("round %d (%s): the pinned shared spine was swept", round, when)
			}
			for i := range shared.Elems {
				if r := shared.Elems[i].R; r != nil && r.Dead() {
					t.Fatalf("round %d (%s): live object in shared slot %d was swept", round, when, i)
				}
			}
		}
		checkGraph("post-run")
		final := vm.CollectGarbage(nil)
		checkGraph("post-final-collect")

		// Reservation-counter soundness: the shared atomic counter equals
		// exactly the live bytes after an exact collection.
		if used := vm.Heap().Used(); used != final.LiveBytes {
			t.Fatalf("round %d: used %d != live %d after final collection", round, used, final.LiveBytes)
		}
		// The run must really have exercised the incremental machinery.
		if cycles := vm.Heap().IncrementalCycles(); cycles < 2 {
			t.Fatalf("round %d: only %d incremental cycles ran", round, cycles)
		}
		if vm.Heap().BarrierRecords() == 0 {
			t.Fatalf("round %d: no SATB barrier records were taken", round)
		}
		if vm.Heap().GCCount() < 3 {
			t.Fatalf("round %d: expected several collections, got %d", round, vm.Heap().GCCount())
		}
	}
}
