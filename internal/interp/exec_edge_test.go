package interp_test

import (
	"math"
	"strings"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
)

// runExpect builds run()I from body, executes it, and asserts the result
// or the uncaught exception class.
func runExpect(t *testing.T, body func(a *bytecode.Assembler)) (heap.Value, *interp.Thread) {
	t.Helper()
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("edge/Main").
		Method("run", "()I", classfile.FlagStatic, body).MustBuild())
	m := findMethod(t, c, "run")
	v, th, err := vm.CallRoot(iso, m, nil, 1_000_000)
	if err != nil {
		t.Fatalf("host error: %v", err)
	}
	return v, th
}

func expectValue(t *testing.T, want int64, body func(a *bytecode.Assembler)) {
	t.Helper()
	v, th := runExpect(t, body)
	if th.Failure() != nil {
		t.Fatalf("uncaught: %s", th.FailureString())
	}
	if v.I != want {
		t.Fatalf("got %d, want %d", v.I, want)
	}
}

func expectThrow(t *testing.T, wantClass string, body func(a *bytecode.Assembler)) {
	t.Helper()
	_, th := runExpect(t, body)
	if th.Failure() == nil {
		t.Fatalf("expected %s, got normal return", wantClass)
	}
	if got := th.FailureString(); !strings.Contains(got, wantClass) {
		t.Fatalf("failure = %q, want %s", got, wantClass)
	}
}

func TestStackManipulationOps(t *testing.T) {
	// swap: 1 2 -> 2 1 -> 2 - 1 = 1... ISub computes (second-from-top -
	// top): push 1, push 2, swap -> stack [2,1]; isub -> 2-1 = 1.
	expectValue(t, 1, func(a *bytecode.Assembler) {
		a.Const(1).Const(2).Swap().ISub().IReturn()
	})
	// dup_x1: a b -> b a b. With a=5, b=3: 3 5 3; iadd -> 3, (5+3)=8;
	// imul -> 24.
	expectValue(t, 24, func(a *bytecode.Assembler) {
		a.Const(5).Const(3).DupX1().IAdd().IMul().IReturn()
	})
}

func TestArithmeticEdgeCases(t *testing.T) {
	expectThrow(t, "ArithmeticException", func(a *bytecode.Assembler) {
		a.Const(1).Const(0).IRem().IReturn()
	})
	// Shift counts are masked to 6 bits (64-bit ints).
	expectValue(t, 2, func(a *bytecode.Assembler) {
		a.Const(1).Const(65).IShl().IReturn()
	})
	// Unsigned shift of a negative value.
	expectValue(t, int64(uint64(math.MaxUint64)>>1), func(a *bytecode.Assembler) {
		a.Const(-1).Const(1).IUshr().IReturn()
	})
	// Negation and float conversion round-trip.
	expectValue(t, -7, func(a *bytecode.Assembler) {
		a.Const(7).INeg().I2F().F2I().IReturn()
	})
}

func TestFloatComparison(t *testing.T) {
	expectValue(t, -1, func(a *bytecode.Assembler) {
		a.FConst(1.5).FConst(2.5).FCmp().IReturn()
	})
	expectValue(t, 0, func(a *bytecode.Assembler) {
		a.FConst(2.5).FConst(2.5).FCmp().IReturn()
	})
	expectValue(t, 1, func(a *bytecode.Assembler) {
		a.FConst(3.5).FConst(2.5).FCmp().IReturn()
	})
}

func TestArrayEdgeCases(t *testing.T) {
	expectThrow(t, "NegativeArraySizeException", func(a *bytecode.Assembler) {
		a.Const(-1).NewArray("").Pop().Const(0).IReturn()
	})
	expectThrow(t, "ArrayIndexOutOfBoundsException", func(a *bytecode.Assembler) {
		a.Const(2).NewArray("").Const(5).ArrayLoad().Pop().Const(0).IReturn()
	})
	expectThrow(t, "ArrayIndexOutOfBoundsException", func(a *bytecode.Assembler) {
		a.Const(2).NewArray("").Const(-1).Const(0).ArrayStore().Const(0).IReturn()
	})
	expectThrow(t, "NullPointerException", func(a *bytecode.Assembler) {
		a.Null().ArrayLength().IReturn()
	})
	// arraylength on a non-array object.
	expectThrow(t, "ClassCastException", func(a *bytecode.Assembler) {
		a.New(classfile.ObjectClassName).Dup().
			InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V")
		a.ArrayLength().IReturn()
	})
}

func TestCastsAndInstanceOf(t *testing.T) {
	// instanceof on null is 0; checkcast on null passes.
	expectValue(t, 0, func(a *bytecode.Assembler) {
		a.Null().InstanceOf(classfile.ObjectClassName).IReturn()
	})
	expectValue(t, 7, func(a *bytecode.Assembler) {
		a.Null().CheckCast("java/lang/String").Pop().Const(7).IReturn()
	})
	// A String is an Object but not an Integer.
	expectValue(t, 1, func(a *bytecode.Assembler) {
		a.Str("x").InstanceOf(classfile.ObjectClassName).IReturn()
	})
	expectThrow(t, "ClassCastException", func(a *bytecode.Assembler) {
		a.Str("x").CheckCast("java/lang/Integer").Pop().Const(0).IReturn()
	})
}

func TestMonitorIllegalStates(t *testing.T) {
	expectThrow(t, "IllegalMonitorStateException", func(a *bytecode.Assembler) {
		a.New(classfile.ObjectClassName).Dup().
			InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V")
		a.MonitorExit().Const(0).IReturn()
	})
	expectThrow(t, "NullPointerException", func(a *bytecode.Assembler) {
		a.Null().MonitorEnter().Const(0).IReturn()
	})
	// Recursive acquisition works.
	expectValue(t, 1, func(a *bytecode.Assembler) {
		a.New(classfile.ObjectClassName).Dup().
			InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").AStore(0)
		a.ALoad(0).MonitorEnter()
		a.ALoad(0).MonitorEnter()
		a.ALoad(0).MonitorExit()
		a.ALoad(0).MonitorExit()
		a.Const(1).IReturn()
	})
}

func TestAThrowNull(t *testing.T) {
	expectThrow(t, "NullPointerException", func(a *bytecode.Assembler) {
		a.Null().AThrow()
	})
}

func TestNullFieldAccess(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	define(t, iso, classfile.NewClass("edge/Holder").
		Field("x", classfile.KindInt).MustBuild())
	c := define(t, iso, classfile.NewClass("edge/NullField").
		Method("run", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Null().GetField("edge/Holder", "x").IReturn()
		}).MustBuild())
	m := findMethod(t, c, "run")
	_, th, err := vm.CallRoot(iso, m, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if th.Failure() == nil || !strings.Contains(th.FailureString(), "NullPointerException") {
		t.Fatalf("failure = %v", th.FailureString())
	}
}

func TestFinallyStyleHandlerNesting(t *testing.T) {
	// Inner handler catches Arithmetic, rethrows as RuntimeException;
	// outer catch-all converts to a code.
	expectValue(t, 99, func(a *bytecode.Assembler) {
		a.Label("outer")
		a.Label("inner")
		a.Const(1).Const(0).IDiv().IReturn()
		a.Label("endinner")
		a.Label("innerh")
		a.Pop()
		a.New("java/lang/RuntimeException").Dup().Str("wrapped").
			InvokeSpecial("java/lang/RuntimeException", classfile.InitName, "(Ljava/lang/String;)V")
		a.AThrow()
		a.Label("endouter")
		a.Label("outerh")
		a.Pop().Const(99).IReturn()
		a.Handler("inner", "endinner", "innerh", "java/lang/ArithmeticException")
		a.Handler("outer", "endouter", "outerh", "java/lang/RuntimeException")
	})
}
