package interp

import (
	"fmt"

	"ijvm/internal/core"
)

// SetIsolationMode flips the VM between Shared (baseline JVM) and
// Isolated (I-JVM) semantics at a safepoint, re-quickening every live
// frame onto the new mode's prepared forms. The intended direction is
// Shared -> Isolated — boot the platform on the cheap baseline fast
// paths, then arm isolation, accounting and termination once untrusted
// bundles load; the reverse flip is accepted only while at most one
// isolate exists.
//
// The protocol runs entirely inside one stop-the-world section:
//
//  1. World.SetMode publishes the new mode (atomically — admin
//     goroutines may read it concurrently outside the section).
//  2. The heap's per-isolate allocation tracking is armed or disarmed
//     to match (Shared mode models the baseline JVM's lack of
//     accounting; objects allocated before arming stay uncounted).
//  3. The VM's dispatch table and prepared-form cache index switch to
//     the new mode's quickenings.
//  4. Every live frame holding a prepared body is re-quickened: the two
//     mode quickenings are instruction-for-instruction aligned (fusion
//     rewrites only handler indices, never layout), so the frame's pc,
//     locals and operand stack carry over unchanged — only the dispatch
//     targets (and the invoke sites' inline caches, which start cold)
//     differ. Adopted closure-tier programs are dropped (deopt): they
//     bind the old form's caches; the new form re-promotes on its own
//     heat. A pc mid-fused-group carries over exactly because followers
//     keep their original instruction form.
//
// Stale Shared-mode ResolvedMirror pool caches need no invalidation:
// after the flip the Isolated tables (and the Isolated branches of the
// reference switch path) never consult them, and a later flip back to
// Shared mode can only happen with the single isolate those caches
// described.
//
// Like CollectGarbage and KillIsolate, the call must come from a host
// goroutine while no sequential run is in progress, from guest/native
// code on the executing goroutine, or under the concurrent scheduler's
// installed safepointer.
func (vm *VM) SetIsolationMode(mode core.Mode) error {
	if mode == vm.world.Mode() {
		return nil
	}
	var err error
	vm.withWorldStopped(func() {
		if err = vm.world.SetMode(mode); err != nil {
			return
		}
		vm.heap.SetAllocTracking(mode == core.ModeIsolated)
		vm.opts.Mode = mode
		vm.pmode = pmodeIndex(mode)
		vm.ptable = handlerTable(mode, vm.opts.DisableInlineCaches)
		// A sequential quantum may be mid-flight (guest/native-context
		// flip): make its hoisted mode flag refresh on the next step so
		// accounting switches with the semantics.
		vm.seqModeFlip = true
		for _, t := range vm.Threads() {
			if t.Done() {
				continue
			}
			for _, f := range t.frames {
				if f.pcode == nil {
					continue
				}
				p := vm.preparedCode(f.method)
				if p == nil {
					// Preparation is deterministic; a body quickened under
					// one mode must quicken under the other.
					err = fmt.Errorf("interp: re-quicken of %s failed", f.method.QualifiedName())
					return
				}
				f.pcode = p
				f.hot = nil // deopt: closure programs bind one form's caches
			}
		}
	})
	return err
}
