package interp

import (
	"fmt"

	"ijvm/internal/heap"
)

// tryAcquireMonitor attempts to lock obj for t without blocking. It
// returns true on success (including recursive acquisition).
func (vm *VM) tryAcquireMonitor(t *Thread, obj *heap.Object) bool {
	m := &obj.Monitor
	switch m.Owner {
	case 0:
		m.Owner = t.id
		m.Count = 1
		return true
	case t.id:
		m.Count++
		return true
	default:
		return false
	}
}

// blockOnMonitor parks t until obj's monitor is free (attack A2 is exactly
// a thread parked here forever in the baseline VM).
func (vm *VM) blockOnMonitor(t *Thread, obj *heap.Object) {
	t.state = StateBlockedMonitor
	t.blockedOn = obj
}

// releaseMonitor fully releases one recursion level of obj held by t;
// used by monitorexit and frame unwinding of synchronized methods.
func (vm *VM) releaseMonitor(t *Thread, obj *heap.Object) {
	m := &obj.Monitor
	if m.Owner != t.id {
		// Unwinding a frame whose monitor was force-released (isolate
		// termination) — nothing to do.
		return
	}
	m.Count--
	if m.Count <= 0 {
		m.Owner = 0
		m.Count = 0
	}
}

// monitorExitChecked implements the monitorexit bytecode with the
// IllegalMonitorStateException check.
func (vm *VM) monitorExitChecked(t *Thread, obj *heap.Object) (ok bool) {
	if obj.Monitor.Owner != t.id {
		return false
	}
	vm.releaseMonitor(t, obj)
	return true
}

// MonitorWait implements Object.wait(timeoutTicks): the calling thread
// must own the monitor; it releases it fully, parks, and re-acquires on
// wake. timeoutTicks <= 0 waits until notified or interrupted.
func (vm *VM) MonitorWait(t *Thread, obj *heap.Object, timeoutTicks int64) error {
	m := &obj.Monitor
	if m.Owner != t.id {
		return fmt.Errorf("wait without ownership")
	}
	t.savedLock = m.Count
	m.Owner = 0
	m.Count = 0
	t.state = StateWaitingMonitor
	t.waitingOn = obj
	if timeoutTicks > 0 {
		t.wakeAt = vm.clock + timeoutTicks
	} else {
		t.wakeAt = SleepForever
	}
	vm.addSleepGauge(t)
	vm.waiters[obj] = append(vm.waiters[obj], t)
	return nil
}

// MonitorNotify wakes one (or all) waiters of obj; woken threads move to
// the blocked-on-monitor state and re-acquire before returning from wait.
func (vm *VM) MonitorNotify(t *Thread, obj *heap.Object, all bool) error {
	if obj.Monitor.Owner != t.id {
		return fmt.Errorf("notify without ownership")
	}
	waiters := vm.waiters[obj]
	if len(waiters) == 0 {
		return nil
	}
	n := 1
	if all {
		n = len(waiters)
	}
	for i := 0; i < n; i++ {
		vm.wakeWaiter(waiters[i], obj)
	}
	rest := waiters[n:]
	if len(rest) == 0 {
		delete(vm.waiters, obj)
	} else {
		vm.waiters[obj] = append([]*Thread(nil), rest...)
	}
	return nil
}

// wakeWaiter transitions a waiting thread to monitor re-acquisition.
func (vm *VM) wakeWaiter(w *Thread, obj *heap.Object) {
	if w.state != StateWaitingMonitor {
		return
	}
	vm.removeSleepGauge(w)
	w.state = StateBlockedMonitor
	w.blockedOn = obj
	w.waitingOn = nil
	w.wakeAt = 0
}

// removeWaiter drops t from obj's wait set (timeout/interrupt paths).
func (vm *VM) removeWaiter(t *Thread, obj *heap.Object) {
	waiters := vm.waiters[obj]
	for i, w := range waiters {
		if w == t {
			vm.waiters[obj] = append(waiters[:i], waiters[i+1:]...)
			break
		}
	}
	if len(vm.waiters[obj]) == 0 {
		delete(vm.waiters, obj)
	}
}

// addSleepGauge bumps the sleeping-threads gauge of the isolate the
// thread is currently executing in (attack A7 detection: "I-JVM inspects
// the current bundle of each thread and counts the number of sleeping
// threads in a bundle").
func (vm *VM) addSleepGauge(t *Thread) {
	if t.cur == nil || t.sleepGauge != nil {
		return
	}
	t.cur.Account().SleepingThreads++
	t.sleepGauge = t.cur
}

// removeSleepGauge undoes addSleepGauge.
func (vm *VM) removeSleepGauge(t *Thread) {
	if t.sleepGauge == nil {
		return
	}
	t.sleepGauge.Account().SleepingThreads--
	t.sleepGauge = nil
}
