package interp

import (
	"fmt"

	"ijvm/internal/heap"
)

// Monitor operations and the park/wake bookkeeping all run under
// VM.schedMu: object monitors are shared across isolates, so under the
// concurrent scheduler threads on different workers contend for them.
// schedMu is a leaf lock — none of these functions allocate or take
// another VM lock while holding it.

// tryAcquireMonitor attempts to lock obj for t without blocking. It
// returns true on success (including recursive acquisition).
func (vm *VM) tryAcquireMonitor(t *Thread, obj *heap.Object) bool {
	vm.schedMu.Lock()
	defer vm.schedMu.Unlock()
	m := &obj.Monitor
	switch m.Owner {
	case 0:
		m.Owner = t.id
		m.Count = 1
		return true
	case t.id:
		m.Count++
		return true
	default:
		return false
	}
}

// blockOnMonitor parks t until obj's monitor is free (attack A2 is exactly
// a thread parked here forever in the baseline VM).
func (vm *VM) blockOnMonitor(t *Thread, obj *heap.Object) {
	vm.schedMu.Lock()
	t.setState(StateBlockedMonitor)
	t.blockedOn = obj
	vm.schedMu.Unlock()
}

// releaseMonitor fully releases one recursion level of obj held by t;
// used by monitorexit and frame unwinding of synchronized methods.
func (vm *VM) releaseMonitor(t *Thread, obj *heap.Object) {
	vm.schedMu.Lock()
	freed := vm.releaseMonitorLocked(t, obj)
	vm.schedMu.Unlock()
	if freed {
		vm.notifyMonitorFreed()
	}
}

// releaseMonitorLocked is releaseMonitor under schedMu; it reports
// whether the monitor became free.
func (vm *VM) releaseMonitorLocked(t *Thread, obj *heap.Object) bool {
	m := &obj.Monitor
	if m.Owner != t.id {
		// Unwinding a frame whose monitor was force-released (isolate
		// termination) — nothing to do.
		return false
	}
	m.Count--
	if m.Count <= 0 {
		m.Owner = 0
		m.Count = 0
		return true
	}
	return false
}

// monitorExitChecked implements the monitorexit bytecode with the
// IllegalMonitorStateException check.
func (vm *VM) monitorExitChecked(t *Thread, obj *heap.Object) (ok bool) {
	vm.schedMu.Lock()
	if obj.Monitor.Owner != t.id {
		vm.schedMu.Unlock()
		return false
	}
	freed := vm.releaseMonitorLocked(t, obj)
	vm.schedMu.Unlock()
	if freed {
		vm.notifyMonitorFreed()
	}
	return true
}

// MonitorWait implements Object.wait(timeoutTicks): the calling thread
// must own the monitor; it releases it fully, parks, and re-acquires on
// wake. timeoutTicks <= 0 waits until notified or interrupted.
func (vm *VM) MonitorWait(t *Thread, obj *heap.Object, timeoutTicks int64) error {
	now := vm.NowTicks() // before schedMu: exact, and keeps schedMu a leaf
	vm.schedMu.Lock()
	m := &obj.Monitor
	if m.Owner != t.id {
		vm.schedMu.Unlock()
		return fmt.Errorf("wait without ownership")
	}
	t.savedLock = m.Count
	m.Owner = 0
	m.Count = 0
	t.setState(StateWaitingMonitor)
	t.waitingOn = obj
	if timeoutTicks > 0 {
		t.wakeAt = now + timeoutTicks
	} else {
		t.wakeAt = SleepForever
	}
	vm.addSleepGaugeLocked(t)
	vm.waiters[obj] = append(vm.waiters[obj], t)
	vm.schedMu.Unlock()
	// Releasing the monitor may unblock threads parked on it.
	vm.notifyMonitorFreed()
	return nil
}

// MonitorNotify wakes one (or all) waiters of obj; woken threads move to
// the blocked-on-monitor state and re-acquire before returning from wait.
func (vm *VM) MonitorNotify(t *Thread, obj *heap.Object, all bool) error {
	vm.schedMu.Lock()
	if obj.Monitor.Owner != t.id {
		vm.schedMu.Unlock()
		return fmt.Errorf("notify without ownership")
	}
	waiters := vm.waiters[obj]
	if len(waiters) == 0 {
		vm.schedMu.Unlock()
		return nil
	}
	n := 1
	if all {
		n = len(waiters)
	}
	woken := append([]*Thread(nil), waiters[:n]...)
	for _, w := range woken {
		vm.wakeWaiterLocked(w, obj)
	}
	rest := waiters[n:]
	if len(rest) == 0 {
		delete(vm.waiters, obj)
	} else {
		vm.waiters[obj] = append([]*Thread(nil), rest...)
	}
	vm.schedMu.Unlock()
	for _, w := range woken {
		vm.notifyUnparked(w)
	}
	return nil
}

// wakeWaiterLocked transitions a waiting thread to monitor
// re-acquisition. schedMu held.
func (vm *VM) wakeWaiterLocked(w *Thread, obj *heap.Object) {
	if w.State() != StateWaitingMonitor {
		return
	}
	vm.removeSleepGaugeLocked(w)
	w.setState(StateBlockedMonitor)
	w.blockedOn = obj
	w.waitingOn = nil
	w.wakeAt = 0
}

// removeWaiterLocked drops t from obj's wait set (timeout/interrupt
// paths). schedMu held.
func (vm *VM) removeWaiterLocked(t *Thread, obj *heap.Object) {
	waiters := vm.waiters[obj]
	for i, w := range waiters {
		if w == t {
			vm.waiters[obj] = append(waiters[:i], waiters[i+1:]...)
			break
		}
	}
	if len(vm.waiters[obj]) == 0 {
		delete(vm.waiters, obj)
	}
}

// addSleepGaugeLocked bumps the sleeping-threads gauge of the isolate the
// thread is currently executing in (attack A7 detection: "I-JVM inspects
// the current bundle of each thread and counts the number of sleeping
// threads in a bundle"). schedMu held.
func (vm *VM) addSleepGaugeLocked(t *Thread) {
	if t.cur == nil || t.sleepGauge != nil {
		return
	}
	t.cur.Account().SleepingThreads.Add(1)
	t.sleepGauge = t.cur
}

// removeSleepGaugeLocked undoes addSleepGaugeLocked. schedMu held.
func (vm *VM) removeSleepGaugeLocked(t *Thread) {
	if t.sleepGauge == nil {
		return
	}
	t.sleepGauge.Account().SleepingThreads.Add(-1)
	t.sleepGauge = nil
}
