package interp

import (
	"fmt"
	"sync"

	"ijvm/internal/heap"
)

// Object monitors are guarded by a striped lock table: every object
// carries an immutable stripe index assigned at allocation
// (heap.Object.MonitorStripe), and all reads/writes of its Monitor word
// (Owner, Count) happen under the selected stripe mutex. Uncontended
// monitorenter/monitorexit therefore touch one stripe lock and never a
// VM-global mutex — under the concurrent scheduler, shards locking
// unrelated objects no longer serialize on each other.
//
// The park/wake bookkeeping (thread states, blockedOn/waitingOn, the
// wait sets in VM.waiters, sleep deadlines) stays under VM.schedMu.
//
// # Lock ordering
//
// schedMu -> stripe. A stripe may be taken alone (the enter/exit fast
// paths) or nested under schedMu (wait/notify, blocked-thread promotion,
// the kill path's force-release); schedMu is never acquired while a
// stripe is held, and stripes are leaf locks — no allocation and no
// other VM lock under them. Two stripes are never held at once.
//
// # Why the enter/park window is safe
//
// A failed tryAcquireMonitor followed by blockOnMonitor leaves a window
// in which the owner may release the monitor (stripe only) before the
// loser parks (schedMu). The release's notifyMonitorFreed may then find
// nothing to wake — the same window the schedMu-serialized design had,
// because try and park were separate critical sections there too. Both
// schedulers close it by polling: the sequential engine re-polls
// promoteLocked every scheduling round, and the concurrent pool re-polls
// promotability in finishSliceLocked before idling a shard (see the
// comment there). Wait/notify has no such window: MonitorWait holds
// schedMu across the monitor release AND the wait-set insertion, and a
// notifier must hold schedMu to read the wait set, so a notify can never
// fall between them.

// monStripeCount is the size of the striped monitor-lock table (power of
// two; the object's 8-bit stripe index is masked into it).
const monStripeCount = 64

// monStripe returns the stripe mutex guarding obj's Monitor word.
func (vm *VM) monStripe(obj *heap.Object) *sync.Mutex {
	return &vm.monStripes[obj.MonitorStripe()&(monStripeCount-1)]
}

// tryAcquireMonitor attempts to lock obj for t without blocking. It
// returns true on success (including recursive acquisition). Stripe
// only: the uncontended monitorenter fast path.
func (vm *VM) tryAcquireMonitor(t *Thread, obj *heap.Object) bool {
	mu := vm.monStripe(obj)
	mu.Lock()
	defer mu.Unlock()
	m := &obj.Monitor
	switch m.Owner {
	case 0:
		m.Owner = t.id
		m.Count = 1
		return true
	case t.id:
		m.Count++
		return true
	default:
		return false
	}
}

// blockOnMonitor parks t until obj's monitor is free (attack A2 is exactly
// a thread parked here forever in the baseline VM).
func (vm *VM) blockOnMonitor(t *Thread, obj *heap.Object) {
	vm.schedMu.Lock()
	t.setState(StateBlockedMonitor)
	t.blockedOn = obj
	vm.schedMu.Unlock()
}

// releaseMonitor fully releases one recursion level of obj held by t;
// used by monitorexit and frame unwinding of synchronized methods.
func (vm *VM) releaseMonitor(t *Thread, obj *heap.Object) {
	mu := vm.monStripe(obj)
	mu.Lock()
	freed := vm.releaseMonitorLocked(t, obj)
	mu.Unlock()
	if freed {
		vm.notifyMonitorFreed()
	}
}

// releaseMonitorLocked is releaseMonitor under obj's stripe; it reports
// whether the monitor became free.
func (vm *VM) releaseMonitorLocked(t *Thread, obj *heap.Object) bool {
	m := &obj.Monitor
	if m.Owner != t.id {
		// Unwinding a frame whose monitor was force-released (isolate
		// termination) — nothing to do.
		return false
	}
	m.Count--
	if m.Count <= 0 {
		m.Owner = 0
		m.Count = 0
		return true
	}
	return false
}

// monitorExitChecked implements the monitorexit bytecode with the
// IllegalMonitorStateException check. Stripe only: the uncontended
// monitorexit fast path.
func (vm *VM) monitorExitChecked(t *Thread, obj *heap.Object) (ok bool) {
	mu := vm.monStripe(obj)
	mu.Lock()
	if obj.Monitor.Owner != t.id {
		mu.Unlock()
		return false
	}
	freed := vm.releaseMonitorLocked(t, obj)
	mu.Unlock()
	if freed {
		vm.notifyMonitorFreed()
	}
	return true
}

// MonitorWait implements Object.wait(timeoutTicks): the calling thread
// must own the monitor; it releases it fully, parks, and re-acquires on
// wake. timeoutTicks <= 0 waits until notified or interrupted. schedMu
// is held across the monitor release and the wait-set insertion, so a
// racing notify (which requires schedMu) observes either a still-owned
// monitor or a fully registered waiter — never the gap between.
func (vm *VM) MonitorWait(t *Thread, obj *heap.Object, timeoutTicks int64) error {
	now := vm.NowTicks() // before schedMu: exact, and keeps the locks leaf-bound
	vm.schedMu.Lock()
	mu := vm.monStripe(obj)
	mu.Lock()
	m := &obj.Monitor
	if m.Owner != t.id {
		mu.Unlock()
		vm.schedMu.Unlock()
		return fmt.Errorf("wait without ownership")
	}
	t.savedLock = m.Count
	m.Owner = 0
	m.Count = 0
	mu.Unlock()
	t.setState(StateWaitingMonitor)
	t.waitingOn = obj
	if timeoutTicks > 0 {
		t.wakeAt = now + timeoutTicks
	} else {
		t.wakeAt = SleepForever
	}
	vm.addSleepGaugeLocked(t)
	vm.waiters[obj] = append(vm.waiters[obj], t)
	vm.schedMu.Unlock()
	// Releasing the monitor may unblock threads parked on it.
	vm.notifyMonitorFreed()
	return nil
}

// MonitorNotify wakes one (or all) waiters of obj; woken threads move to
// the blocked-on-monitor state and re-acquire before returning from wait.
func (vm *VM) MonitorNotify(t *Thread, obj *heap.Object, all bool) error {
	vm.schedMu.Lock()
	mu := vm.monStripe(obj)
	mu.Lock()
	owner := obj.Monitor.Owner
	mu.Unlock()
	// The ownership check stays exact after the stripe unlock: only t can
	// release a monitor t owns, and t is right here.
	if owner != t.id {
		vm.schedMu.Unlock()
		return fmt.Errorf("notify without ownership")
	}
	waiters := vm.waiters[obj]
	if len(waiters) == 0 {
		vm.schedMu.Unlock()
		return nil
	}
	n := 1
	if all {
		n = len(waiters)
	}
	woken := append([]*Thread(nil), waiters[:n]...)
	for _, w := range woken {
		vm.wakeWaiterLocked(w, obj)
	}
	rest := waiters[n:]
	if len(rest) == 0 {
		delete(vm.waiters, obj)
	} else {
		vm.waiters[obj] = append([]*Thread(nil), rest...)
	}
	vm.schedMu.Unlock()
	for _, w := range woken {
		vm.notifyUnparked(w)
	}
	return nil
}

// wakeWaiterLocked transitions a waiting thread to monitor
// re-acquisition. schedMu held.
func (vm *VM) wakeWaiterLocked(w *Thread, obj *heap.Object) {
	if w.State() != StateWaitingMonitor {
		return
	}
	vm.removeSleepGaugeLocked(w)
	w.setState(StateBlockedMonitor)
	w.blockedOn = obj
	w.waitingOn = nil
	w.wakeAt = 0
}

// removeWaiterLocked drops t from obj's wait set (timeout/interrupt
// paths). schedMu held.
func (vm *VM) removeWaiterLocked(t *Thread, obj *heap.Object) {
	waiters := vm.waiters[obj]
	for i, w := range waiters {
		if w == t {
			vm.waiters[obj] = append(waiters[:i], waiters[i+1:]...)
			break
		}
	}
	if len(vm.waiters[obj]) == 0 {
		delete(vm.waiters, obj)
	}
}

// addSleepGaugeLocked bumps the sleeping-threads gauge of the isolate the
// thread is currently executing in (attack A7 detection: "I-JVM inspects
// the current bundle of each thread and counts the number of sleeping
// threads in a bundle"). schedMu held.
func (vm *VM) addSleepGaugeLocked(t *Thread) {
	if t.cur == nil || t.sleepGauge != nil {
		return
	}
	t.cur.Account().SleepingThreads.Add(1)
	t.sleepGauge = t.cur
}

// removeSleepGaugeLocked undoes addSleepGaugeLocked. schedMu held.
func (vm *VM) removeSleepGaugeLocked(t *Thread) {
	if t.sleepGauge == nil {
		return
	}
	t.sleepGauge.Account().SleepingThreads.Add(-1)
	t.sleepGauge = nil
}
