package interp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// This file is the randomized differential oracle for the quickened,
// inline-cached dispatch AND the incremental collector: a seeded
// generator produces small *verified* programs exercising virtual calls
// (mono- and polymorphic receivers), static cross-isolate calls,
// branches, monitors, guest exceptions (caught and uncaught), array
// traffic, allocation/GC-heavy churn (the small oracle heap forces
// GC-on-pressure collections mid-run), synchronized-heavy shapes
// (synchronized methods nested in explicit monitor sections), stores
// into aging object graphs (long-lived receivers and a persistent array
// whose reference slots are overwritten every iteration — the write
// barrier's diet), cross-isolate reference churn (peer-allocated
// objects retained then dropped by the main isolate), and string
// interning under GC pressure (Ldc identity must survive collections).
//
// Every program is replayed under {prepared+IC (fused superinstructions),
// closure-threaded hot tier, seed switch} × {Shared, Isolated} ×
// {forced-STW, incremental (pressure-only), incremental (paced:
// threshold-opened cycles whose mark strides interleave with mutator
// quanta under an armed barrier)}:
//
//   - forced-STW vs incremental-pressure-only must be byte-identical on
//     EVERYTHING, including GCActivations: pressure collections are
//     exact in both (heap.Collect abandons open cycles), so the
//     collection points coincide.
//   - the paced runs must be byte-identical to each other across
//     dispatch engines, and byte-identical to forced-STW on outcome,
//     output, instructions, clock, CPU samples, allocation byte
//     accounts and final post-GC reachability — only GCActivations may
//     differ (background cycles collect ahead of the pressure points,
//     which is their purpose), so that one column is masked for the
//     cross-collector comparison.

// oracleFragKind enumerates the loop-body building blocks the generator
// composes.
type oracleFragKind int

const (
	fragArith oracleFragKind = iota
	fragVirtualMono
	fragVirtualPoly
	fragCrossStatic
	fragMonitor
	fragCatchDiv
	fragCatchNull
	fragArray
	fragSpecial
	// fragAllocChurn allocates a fresh receiver object per iteration and
	// drops it (allocation-heavy garbage: under the small oracle heap
	// this drives GC-on-pressure collections mid-run, exercising the
	// shard-local allocation domains and the batched byte accounting).
	fragAllocChurn
	// fragArrayChurn allocates a sized array per iteration, writes one
	// slot and drops it (byte-heavy garbage).
	fragArrayChurn
	// fragSyncCall invokes a synchronized virtual method (monitor
	// acquired on frame entry, released on return) and nests an explicit
	// monitorenter/exit on a second receiver inside the same iteration —
	// the synchronized-heavy shape on the striped monitor table.
	fragSyncCall
	// fragAgingStore overwrites a reference field on a long-lived
	// receiver every iteration (old graph edges die while the graph
	// ages) — the putfield deletion-barrier shape.
	fragAgingStore
	// fragAgingArray overwrites one slot of a persistent array with a
	// fresh object every iteration — the aastore deletion-barrier shape
	// plus allocation churn into an aging graph.
	fragAgingArray
	// fragCrossChurn stores a peer-isolate-allocated object into the
	// persistent array (cross-isolate reference retained for one
	// iteration, then overwritten) — cross-isolate reference churn
	// through collections.
	fragCrossChurn
	// fragIntern loads interned string literals and mixes their identity
	// (two Ldc of one literal must stay ==, across every collection)
	// into the accumulator — interning under GC.
	fragIntern
	// fragAllocBurst drops ~6 KB of array garbage per iteration — the
	// burst sized so programs containing it cross the paced collector's
	// occupancy threshold several times mid-run (≥2 incremental cycles).
	fragAllocBurst
	numFragKinds
)

// oracleFrag is one loop-body fragment. Fields are interpreted per kind.
type oracleFrag struct {
	kind    oracleFragKind
	op      int   // arith operator selector
	c       int64 // immediate constant
	r1, r2  int   // receiver selectors (< numImpls)
	divisor int64 // fragCatchDiv: 0 forces the caught exception
	arrLen  int64 // fragArray
	arrIdx  int64 // fragArray: may be out of bounds (caught)
}

// oracleProgram is a fully generated program, independent of any VM so
// the same spec can be materialized into the four configurations.
type oracleProgram struct {
	seed       int64
	numImpls   int
	implKind   []int   // per-impl body shape (0..2)
	implConst  []int64 // per-impl constant
	loopN      int64
	frags      []oracleFrag
	uncaughtAt int // index of a fragment whose divisor is zeroed WITHOUT a handler; -1 if none
}

// genOracleProgram derives a program deterministically from seed.
func genOracleProgram(seed int64) oracleProgram {
	r := rand.New(rand.NewSource(seed))
	p := oracleProgram{
		seed:       seed,
		numImpls:   1 + r.Intn(4),
		loopN:      int64(3 + r.Intn(40)),
		uncaughtAt: -1,
	}
	for k := 0; k < p.numImpls; k++ {
		p.implKind = append(p.implKind, r.Intn(3))
		p.implConst = append(p.implConst, int64(r.Intn(201)-100))
	}
	nfrags := 2 + r.Intn(7)
	for j := 0; j < nfrags; j++ {
		f := oracleFrag{
			kind:    oracleFragKind(r.Intn(int(numFragKinds))),
			op:      r.Intn(6),
			c:       int64(r.Intn(199) - 99),
			r1:      r.Intn(p.numImpls),
			r2:      r.Intn(p.numImpls),
			divisor: int64(r.Intn(5)), // 0 in ~20% of div fragments
			arrLen:  int64(1 + r.Intn(4)),
		}
		f.arrIdx = int64(r.Intn(int(f.arrLen) + 1)) // == arrLen in ~25%: caught OOB
		p.frags = append(p.frags, f)
	}
	// A few percent of programs terminate with an uncaught guest
	// exception to exercise unwinding and thread failure on both paths.
	if r.Intn(25) == 0 {
		p.uncaughtAt = r.Intn(len(p.frags))
	}
	return p
}

const (
	oraBase = "ora/Base"
	oraSvc  = "peer/Svc"
	oraMain = "ora/Main"
)

func oraImpl(k int) string { return fmt.Sprintf("ora/Impl%d", k) }

// emitArith emits the selected binary operator (division-free; division
// is covered by fragCatchDiv where the exception is expected).
func emitArith(a *bytecode.Assembler, op int) {
	switch op {
	case 0:
		a.IAdd()
	case 1:
		a.ISub()
	case 2:
		a.IMul()
	case 3:
		a.IXor()
	case 4:
		a.IAnd()
	default:
		a.IOr()
	}
}

// oracleMainClasses builds the main-isolate classes of p: the receiver
// hierarchy and the generated entry point.
func oracleMainClasses(p oracleProgram) []*classfile.Class {
	defaultInit := func(super string) func(a *bytecode.Assembler) {
		return func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(super, classfile.InitName, "()V").Return()
		}
	}
	base := classfile.NewClass(oraBase).
		Field("v", classfile.KindInt).
		Field("link", classfile.KindRef).
		Method(classfile.InitName, "()V", 0, defaultInit(classfile.ObjectClassName)).
		Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(1).IAdd().IReturn()
		}).
		Method("p", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(3).IMul().IReturn()
		}).
		Method("sf", "(I)I", classfile.FlagSynchronized, func(a *bytecode.Assembler) {
			// Synchronized: the frame holds the receiver's monitor while
			// it reads and writes the inherited field.
			a.ALoad(0).ILoad(1).PutField(oraBase, "v")
			a.ALoad(0).GetField(oraBase, "v").Const(5).IAdd().IReturn()
		}).MustBuild()
	classes := []*classfile.Class{base}
	for k := 0; k < p.numImpls; k++ {
		kind, c := p.implKind[k], p.implConst[k]
		classes = append(classes, classfile.NewClass(oraImpl(k)).Super(oraBase).
			Method(classfile.InitName, "()V", 0, defaultInit(oraBase)).
			Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
				switch kind {
				case 0: // pure arithmetic
					a.ILoad(1).Const(c).IAdd().IReturn()
				case 1: // reads the inherited field
					a.ILoad(1).ALoad(0).GetField(oraBase, "v").IAdd().Const(c).IXor().IReturn()
				default: // writes the inherited field
					a.ALoad(0).ILoad(1).PutField(oraBase, "v")
					a.ILoad(1).Const(c).ISub().IReturn()
				}
			}).MustBuild())
	}

	recvSlot := func(r int) int { return 3 + r }
	tmpSlot := 3 + p.numImpls
	graphSlot := tmpSlot + 1
	main := classfile.NewClass(oraMain).
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			for k := 0; k < p.numImpls; k++ {
				a.New(oraImpl(k)).Dup().
					InvokeSpecial(oraImpl(k), classfile.InitName, "()V").
					AStore(recvSlot(k))
			}
			// The persistent graph array: its slots age across the whole
			// loop and are overwritten by the aging/cross-churn
			// fragments, so old references die mid-run (and mid-cycle
			// under the paced incremental collector).
			a.Const(4).NewArray("").AStore(graphSlot)
			a.ILoad(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(2).Const(p.loopN).IfICmpGe("done")
			for j, f := range p.frags {
				s := fmt.Sprintf("s%d", j)
				h := fmt.Sprintf("h%d", j)
				after := fmt.Sprintf("a%d", j)
				switch f.kind {
				case fragArith:
					a.ILoad(1)
					if f.op%2 == 0 {
						a.Const(f.c)
					} else {
						a.ILoad(2)
					}
					emitArith(a, f.op)
					a.IStore(1)
				case fragVirtualMono:
					a.ALoad(recvSlot(f.r1)).ILoad(1).
						InvokeVirtual(oraBase, "f", "(I)I").IStore(1)
				case fragVirtualPoly:
					// Data-dependent receiver: one call site sees several
					// classes, driving the site mono -> poly (-> mega with
					// enough impls across fragments).
					a.ILoad(2).Const(1).IAnd().IfEq(s)
					a.ALoad(recvSlot(f.r1)).Goto(after)
					a.Label(s).ALoad(recvSlot(f.r2))
					a.Label(after).ILoad(1).
						InvokeVirtual(oraBase, "f", "(I)I").IStore(1)
				case fragCrossStatic:
					a.ILoad(1).InvokeStatic(oraSvc, "g", "(I)I").IStore(1)
				case fragMonitor:
					a.ALoad(recvSlot(f.r1)).MonitorEnter()
					a.ILoad(1).Const(f.c).IAdd().IStore(1)
					a.ALoad(recvSlot(f.r1)).MonitorExit()
				case fragCatchDiv:
					a.Label(s).ILoad(1).Const(f.divisor).IDiv().IStore(1).Goto(after)
					a.Label(h).Pop().ILoad(1).Const(7).IAdd().IStore(1)
					a.Label(after)
					a.Handler(s, h, h, "java/lang/ArithmeticException")
				case fragCatchNull:
					a.Label(s).Null().AThrow()
					a.Label(h).Pop().ILoad(1).Const(11).IXor().IStore(1)
					a.Handler(s, h, h, "java/lang/NullPointerException")
				case fragArray:
					a.Const(f.arrLen).NewArray("").AStore(tmpSlot)
					a.Label(s).ALoad(tmpSlot).Const(f.arrIdx).ILoad(1).ArrayStore().Goto(after)
					a.Label(h).Pop().ILoad(1).Const(13).IAdd().IStore(1)
					a.Label(after)
					a.Handler(s, h, h, "java/lang/ArrayIndexOutOfBoundsException")
					safe := f.arrIdx % f.arrLen
					a.ALoad(tmpSlot).Const(safe).ArrayLoad().IStore(1)
				case fragSpecial:
					a.ALoad(recvSlot(f.r1)).ILoad(1).
						InvokeSpecial(oraBase, "p", "(I)I").IStore(1)
				case fragAllocChurn:
					// Fresh object per iteration, dropped immediately:
					// allocation-heavy garbage for the GC-on-pressure path.
					a.New(oraImpl(f.r1)).Dup().
						InvokeSpecial(oraImpl(f.r1), classfile.InitName, "()V").
						AStore(tmpSlot)
					a.ALoad(tmpSlot).ILoad(1).
						InvokeVirtual(oraBase, "f", "(I)I").IStore(1)
					a.Null().AStore(tmpSlot)
				case fragArrayChurn:
					// Sized array per iteration (up to ~2 KB), one store,
					// dropped.
					a.Const(f.arrLen * 64).NewArray("").AStore(tmpSlot)
					a.ALoad(tmpSlot).Const(f.arrLen).ILoad(1).ArrayStore()
					a.ALoad(tmpSlot).Const(f.arrLen).ArrayLoad().IStore(1)
					a.Null().AStore(tmpSlot)
				case fragSyncCall:
					// Synchronized method call nested inside an explicit
					// monitor section on a second receiver.
					a.ALoad(recvSlot(f.r2)).MonitorEnter()
					a.ALoad(recvSlot(f.r1)).ILoad(1).
						InvokeVirtual(oraBase, "sf", "(I)I").IStore(1)
					a.ALoad(recvSlot(f.r2)).MonitorExit()
				case fragAgingStore:
					// Age the receiver graph: overwrite r1.link with a
					// fresh object (the old link, when present, dies).
					a.ALoad(recvSlot(f.r1)).
						New(oraImpl(f.r2)).Dup().
						InvokeSpecial(oraImpl(f.r2), classfile.InitName, "()V").
						PutField(oraBase, "link")
					a.ILoad(1).Const(f.c).IXor().IStore(1)
				case fragAgingArray:
					// Overwrite one persistent array slot with a fresh
					// object; the previous occupant becomes garbage.
					a.ALoad(graphSlot).Const(f.arrIdx%4).
						New(oraImpl(f.r1)).Dup().
						InvokeSpecial(oraImpl(f.r1), classfile.InitName, "()V").
						ArrayStore()
					a.ILoad(1).Const(3).IAdd().IStore(1)
				case fragCrossChurn:
					// A peer-allocated object is retained in the graph
					// array for one iteration, then overwritten: cross-
					// isolate references churn through collections.
					a.ALoad(graphSlot).Const((f.arrIdx+1)%4).
						ILoad(1).InvokeStatic(oraSvc, "mk", "(I)Ljava/lang/Object;").
						ArrayStore()
					a.ILoad(1).Const(f.c).IAdd().IStore(1)
				case fragIntern:
					// Two Ldc of one literal must be the same object —
					// interning survives every collector configuration
					// and every collection.
					lit := fmt.Sprintf("ora-lit-%d", f.op%3)
					eq := fmt.Sprintf("ieq%d", j)
					a.Str(lit).Str(lit).IfACmpEq(eq)
					a.ILoad(1).Const(4242).IXor().IStore(1) // interning broken
					a.Label(eq).ILoad(1).Const(f.c + 1).IAdd().IStore(1)
				case fragAllocBurst:
					// Six 128-slot arrays (~6 KB) dropped per iteration.
					for b := 0; b < 6; b++ {
						a.Const(128).NewArray("").AStore(tmpSlot)
					}
					a.Null().AStore(tmpSlot)
					a.ILoad(1).Const(f.c).ISub().IStore(1)
				}
			}
			a.IInc(2, 1).Goto("loop")
			a.Label("done").ILoad(1).IReturn()
		}).MustBuild()

	// The uncaught-exception variant divides by zero outside any handler
	// on the last loop iteration.
	if p.uncaughtAt >= 0 {
		main = classfile.NewClass(oraMain).
			Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.ILoad(0).Const(0).IDiv().IReturn()
			}).MustBuild()
	}
	return append(classes, main)
}

// oraclePeerClasses builds the peer classes (a foreign isolate under
// I-JVM, a plain second loader under the baseline).
func oraclePeerClasses() []*classfile.Class {
	return []*classfile.Class{
		classfile.NewClass(oraSvc).
			StaticField("s", classfile.KindInt).
			Method("g", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.GetStatic(oraSvc, "s").ILoad(0).IAdd().
					Dup().PutStatic(oraSvc, "s").IReturn()
			}).
			// mk allocates in the PEER isolate (the executing thread
			// migrates for the static call), so the returned object's
			// creator-charged bytes land on the peer while the main
			// isolate retains the reference — the cross-isolate churn
			// shape of the GC oracle.
			Method("mk", "(I)Ljava/lang/Object;", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.Const(8).NewArray("").AReturn()
			}).MustBuild(),
	}
}

// oracleDispatch selects the execution engine of one run. All three must
// produce byte-identical traces: instruction totals, clock, CPU samples,
// per-isolate byte accounts, GC activations and post-GC reachability —
// the fused superinstructions and the closure-threaded tier charge every
// covered instruction exactly as the seed switch retires it.
type oracleDispatch int

const (
	// dispSeed is the reference: the unquickened checked switch
	// interpreter (DisablePrepare).
	dispSeed oracleDispatch = iota
	// dispPrepared is the quickened, inline-cached, superinstruction-fused
	// table interpreter (the production default; the closure tier stays
	// cold because the oracle programs never reach the promotion heat).
	dispPrepared
	// dispClosure forces every prepared method hot on first activation
	// (TierPromoteThreshold 1), so the whole program executes through
	// closure-threaded blocks with fused/table fallbacks at quantum
	// boundaries, deopt shapes (exceptions inside fused regions, caught
	// and uncaught) and delegated finals.
	dispClosure
)

func (d oracleDispatch) apply(o *interp.Options) {
	switch d {
	case dispSeed:
		o.DisablePrepare = true
	case dispClosure:
		o.TierPromoteThreshold = 1
	}
}

// oracleGC selects the collector configuration of one run.
type oracleGC int

const (
	// gcForcedSTW is the reference collector: every collection a
	// monolithic stop-the-world pass at its trigger point.
	gcForcedSTW oracleGC = iota
	// gcIncPressure runs the incremental machinery with background
	// cycles disabled: collections happen at the same points as the
	// reference and must be byte-identical to it, GCActivations
	// included.
	gcIncPressure
	// gcIncPaced opens cycles at 50% occupancy and marks 32 units per
	// quantum boundary, so mark strides interleave with mutator quanta
	// under an armed write barrier — the configuration that actually
	// exercises SATB records deterministically.
	gcIncPaced
)

func (g oracleGC) options() (forceSTW bool, thresholdPct, stride int) {
	switch g {
	case gcForcedSTW:
		return true, -1, 0
	case gcIncPressure:
		return false, -1, 0
	default:
		return false, 50, 32
	}
}

// oracleTrace is the full comparison surface of one run.
type oracleTrace struct {
	result  int64
	failure string
	output  string
	total   int64
	clock   int64
	// name -> {Instructions, CPUSamples, AllocatedObjects,
	// AllocatedBytes, LiveObjects, LiveBytes, GCActivations} (live
	// figures post-GC: the heap-reachable result surface; GCActivations
	// proves the GC-on-pressure collection points are identical).
	perIsolate map[string][7]int64
	// incCycles and barrierRecords are collector diagnostics (excluded
	// from diff): the oracle asserts the paced configuration actually
	// ran incremental cycles with live barrier traffic.
	incCycles      int64
	barrierRecords int64
}

// maskGCActivations returns a copy of the trace with the GCActivations
// column zeroed — the one quantity background cycles are allowed to
// change relative to the forced-STW reference.
func (a oracleTrace) maskGCActivations() oracleTrace {
	out := a
	out.perIsolate = make(map[string][7]int64, len(a.perIsolate))
	for k, v := range a.perIsolate {
		v[6] = 0
		out.perIsolate[k] = v
	}
	return out
}

func (a oracleTrace) diff(b oracleTrace) string {
	switch {
	case a.result != b.result:
		return fmt.Sprintf("result %d != %d", a.result, b.result)
	case a.failure != b.failure:
		return fmt.Sprintf("failure %q != %q", a.failure, b.failure)
	case a.output != b.output:
		return fmt.Sprintf("output %q != %q", a.output, b.output)
	case a.total != b.total:
		return fmt.Sprintf("total instructions %d != %d", a.total, b.total)
	case a.clock != b.clock:
		return fmt.Sprintf("clock %d != %d", a.clock, b.clock)
	case len(a.perIsolate) != len(b.perIsolate):
		return fmt.Sprintf("isolate count %d != %d", len(a.perIsolate), len(b.perIsolate))
	}
	for iso, av := range a.perIsolate {
		bv, ok := b.perIsolate[iso]
		if !ok {
			return fmt.Sprintf("isolate %s missing", iso)
		}
		if av != bv {
			return fmt.Sprintf("isolate %s {instr, samples, allocObj, allocB, liveObj, liveB, gcActs} %v != %v", iso, av, bv)
		}
	}
	return ""
}

// runOracleProgram materializes and executes p under one configuration.
func runOracleProgram(t *testing.T, p oracleProgram, mode core.Mode, disp oracleDispatch, gc oracleGC) oracleTrace {
	t.Helper()
	// The small heap limit makes the alloc/array-churn fragments hit
	// GC-on-pressure collections mid-run (and, under the paced config,
	// open ≥2 incremental cycles), so the oracle also proves the
	// collection points, the per-isolate byte accounts and the post-GC
	// reachability identical across dispatch and collector
	// configurations.
	forceSTW, pct, stride := gc.options()
	opts := interp.Options{
		Mode:               mode,
		HeapLimit:          32 << 10,
		ForceSTWGC:         forceSTW,
		GCThresholdPercent: pct,
		GCMarkStride:       stride,
	}
	disp.apply(&opts)
	vm := interp.NewVM(opts)
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	peerLoader := iso.Loader()
	if mode == core.ModeIsolated {
		peer, err := vm.NewIsolate("peer")
		if err != nil {
			t.Fatal(err)
		}
		peerLoader = peer.Loader()
	} else {
		peerLoader = vm.Registry().NewLoader("peer")
	}
	if err := peerLoader.DefineAll(oraclePeerClasses()); err != nil {
		t.Fatal(err)
	}
	iso.Loader().AddDelegate(peerLoader)
	if err := iso.Loader().DefineAll(oracleMainClasses(p)); err != nil {
		t.Fatal(err)
	}
	c, err := iso.Loader().Lookup(oraMain)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	arg := p.seed % 97
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 5_000_000)
	if err != nil {
		t.Fatalf("seed %d mode %v dispatch %d gc %d: host error: %v", p.seed, mode, disp, gc, err)
	}
	// The terminal collection is exact under every configuration
	// (heap.Collect abandons an open cycle), so the post-GC live
	// figures below are the heap-reachable ground truth.
	vm.CollectGarbage(nil)
	tr := oracleTrace{
		result:         v.I,
		failure:        th.FailureString(),
		output:         vm.Output(),
		total:          vm.TotalInstructions(),
		clock:          vm.Clock(),
		perIsolate:     make(map[string][7]int64),
		incCycles:      vm.Heap().IncrementalCycles(),
		barrierRecords: vm.Heap().BarrierRecords(),
	}
	for _, s := range vm.Snapshots() {
		tr.perIsolate[s.IsolateName] = [7]int64{
			s.Instructions, s.CPUSamples,
			s.AllocatedObjects, s.AllocatedBytes,
			s.LiveObjects, s.LiveBytes,
			s.GCActivations,
		}
	}
	return tr
}

// TestRandomizedDifferentialOracle replays >= 500 generated programs
// across {seed switch, prepared+IC+fusion, closure-threaded} ×
// {Shared, Isolated} × {forced-STW, incremental-pressure,
// incremental-paced} and demands:
//
//   - byte-identical traces (GCActivations included) between the
//     forced-STW reference and all three dispatch engines under the
//     pressure-only incremental collector;
//   - byte-identical traces between the three dispatch engines under the
//     paced incremental collector (its GC schedule is deterministic at
//     quantum boundaries);
//   - byte-identical everything-but-GCActivations between the paced
//     runs and the reference (background cycles move the collection
//     points; outcome, accounts and final reachability must not move);
//   - that the paced configuration really ran ≥2 incremental cycles
//     with live SATB barrier traffic on a healthy fraction of programs
//     (no silent degeneration to stop-the-world).
func TestRandomizedDifferentialOracle(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 60
	}
	multiCycle, barrierHits := 0, 0
	for i := 0; i < n; i++ {
		seed := int64(i)*2654435761 + 99991
		p := genOracleProgram(seed)
		for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
			ref := runOracleProgram(t, p, mode, dispSeed, gcForcedSTW)
			for _, disp := range []oracleDispatch{dispPrepared, dispClosure} {
				if d := ref.diff(runOracleProgram(t, p, mode, disp, gcForcedSTW)); d != "" {
					t.Fatalf("program %d (seed %d) mode %v STW: dispatch %d diverges from seed dispatch: %s",
						i, seed, mode, disp, d)
				}
			}
			for _, disp := range []oracleDispatch{dispSeed, dispPrepared, dispClosure} {
				got := runOracleProgram(t, p, mode, disp, gcIncPressure)
				if d := ref.diff(got); d != "" {
					t.Fatalf("program %d (seed %d) mode %v dispatch %d: incremental(pressure) diverges from forced-STW: %s",
						i, seed, mode, disp, d)
				}
			}
			pacedSeed := runOracleProgram(t, p, mode, dispSeed, gcIncPaced)
			for _, disp := range []oracleDispatch{dispPrepared, dispClosure} {
				if d := pacedSeed.diff(runOracleProgram(t, p, mode, disp, gcIncPaced)); d != "" {
					t.Fatalf("program %d (seed %d) mode %v paced: dispatch %d diverges from seed dispatch: %s",
						i, seed, mode, disp, d)
				}
			}
			if d := ref.maskGCActivations().diff(pacedSeed.maskGCActivations()); d != "" {
				t.Fatalf("program %d (seed %d) mode %v: incremental(paced) diverges from forced-STW beyond GCActivations: %s",
					i, seed, mode, d)
			}
			if pacedSeed.incCycles >= 2 {
				multiCycle++
			}
			if pacedSeed.barrierRecords > 0 {
				barrierHits++
			}
		}
	}
	// Sized so the alloc bursts drive ≥2 incremental cycles mid-run on a
	// meaningful share of programs, with real barrier records — the
	// paced dimension must not silently degenerate.
	if multiCycle < n/10 {
		t.Fatalf("only %d/%d paced runs saw >=2 incremental cycles", multiCycle, 2*n)
	}
	if barrierHits == 0 {
		t.Fatal("no paced run recorded a single SATB barrier record")
	}
}
