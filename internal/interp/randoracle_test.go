package interp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// This file is the randomized differential oracle for the quickened,
// inline-cached dispatch: a seeded generator produces small *verified*
// programs exercising virtual calls (mono- and polymorphic receivers),
// static cross-isolate calls, branches, monitors, guest exceptions
// (caught and uncaught), array traffic, allocation/GC-heavy churn (the
// small oracle heap forces GC-on-pressure collections mid-run) and
// synchronized-heavy shapes (synchronized methods nested in explicit
// monitor sections), and every program is replayed under all four
// configurations {prepared+IC, seed switch} × {Shared, Isolated}.
// Within each mode the prepared run must match the seed run
// byte-for-byte: guest result, failure, output, total instructions,
// virtual clock, per-isolate instruction/CPU-sample accounting, the
// per-isolate *byte* accounts (allocated objects/bytes), the GC
// activation counts, and the post-GC heap-reachable live objects/bytes.

// oracleFragKind enumerates the loop-body building blocks the generator
// composes.
type oracleFragKind int

const (
	fragArith oracleFragKind = iota
	fragVirtualMono
	fragVirtualPoly
	fragCrossStatic
	fragMonitor
	fragCatchDiv
	fragCatchNull
	fragArray
	fragSpecial
	// fragAllocChurn allocates a fresh receiver object per iteration and
	// drops it (allocation-heavy garbage: under the small oracle heap
	// this drives GC-on-pressure collections mid-run, exercising the
	// shard-local allocation domains and the batched byte accounting).
	fragAllocChurn
	// fragArrayChurn allocates a sized array per iteration, writes one
	// slot and drops it (byte-heavy garbage).
	fragArrayChurn
	// fragSyncCall invokes a synchronized virtual method (monitor
	// acquired on frame entry, released on return) and nests an explicit
	// monitorenter/exit on a second receiver inside the same iteration —
	// the synchronized-heavy shape on the striped monitor table.
	fragSyncCall
	numFragKinds
)

// oracleFrag is one loop-body fragment. Fields are interpreted per kind.
type oracleFrag struct {
	kind    oracleFragKind
	op      int   // arith operator selector
	c       int64 // immediate constant
	r1, r2  int   // receiver selectors (< numImpls)
	divisor int64 // fragCatchDiv: 0 forces the caught exception
	arrLen  int64 // fragArray
	arrIdx  int64 // fragArray: may be out of bounds (caught)
}

// oracleProgram is a fully generated program, independent of any VM so
// the same spec can be materialized into the four configurations.
type oracleProgram struct {
	seed       int64
	numImpls   int
	implKind   []int   // per-impl body shape (0..2)
	implConst  []int64 // per-impl constant
	loopN      int64
	frags      []oracleFrag
	uncaughtAt int // index of a fragment whose divisor is zeroed WITHOUT a handler; -1 if none
}

// genOracleProgram derives a program deterministically from seed.
func genOracleProgram(seed int64) oracleProgram {
	r := rand.New(rand.NewSource(seed))
	p := oracleProgram{
		seed:       seed,
		numImpls:   1 + r.Intn(4),
		loopN:      int64(3 + r.Intn(40)),
		uncaughtAt: -1,
	}
	for k := 0; k < p.numImpls; k++ {
		p.implKind = append(p.implKind, r.Intn(3))
		p.implConst = append(p.implConst, int64(r.Intn(201)-100))
	}
	nfrags := 2 + r.Intn(7)
	for j := 0; j < nfrags; j++ {
		f := oracleFrag{
			kind:    oracleFragKind(r.Intn(int(numFragKinds))),
			op:      r.Intn(6),
			c:       int64(r.Intn(199) - 99),
			r1:      r.Intn(p.numImpls),
			r2:      r.Intn(p.numImpls),
			divisor: int64(r.Intn(5)), // 0 in ~20% of div fragments
			arrLen:  int64(1 + r.Intn(4)),
		}
		f.arrIdx = int64(r.Intn(int(f.arrLen) + 1)) // == arrLen in ~25%: caught OOB
		p.frags = append(p.frags, f)
	}
	// A few percent of programs terminate with an uncaught guest
	// exception to exercise unwinding and thread failure on both paths.
	if r.Intn(25) == 0 {
		p.uncaughtAt = r.Intn(len(p.frags))
	}
	return p
}

const (
	oraBase = "ora/Base"
	oraSvc  = "peer/Svc"
	oraMain = "ora/Main"
)

func oraImpl(k int) string { return fmt.Sprintf("ora/Impl%d", k) }

// emitArith emits the selected binary operator (division-free; division
// is covered by fragCatchDiv where the exception is expected).
func emitArith(a *bytecode.Assembler, op int) {
	switch op {
	case 0:
		a.IAdd()
	case 1:
		a.ISub()
	case 2:
		a.IMul()
	case 3:
		a.IXor()
	case 4:
		a.IAnd()
	default:
		a.IOr()
	}
}

// oracleMainClasses builds the main-isolate classes of p: the receiver
// hierarchy and the generated entry point.
func oracleMainClasses(p oracleProgram) []*classfile.Class {
	defaultInit := func(super string) func(a *bytecode.Assembler) {
		return func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(super, classfile.InitName, "()V").Return()
		}
	}
	base := classfile.NewClass(oraBase).
		Field("v", classfile.KindInt).
		Method(classfile.InitName, "()V", 0, defaultInit(classfile.ObjectClassName)).
		Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(1).IAdd().IReturn()
		}).
		Method("p", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(3).IMul().IReturn()
		}).
		Method("sf", "(I)I", classfile.FlagSynchronized, func(a *bytecode.Assembler) {
			// Synchronized: the frame holds the receiver's monitor while
			// it reads and writes the inherited field.
			a.ALoad(0).ILoad(1).PutField(oraBase, "v")
			a.ALoad(0).GetField(oraBase, "v").Const(5).IAdd().IReturn()
		}).MustBuild()
	classes := []*classfile.Class{base}
	for k := 0; k < p.numImpls; k++ {
		kind, c := p.implKind[k], p.implConst[k]
		classes = append(classes, classfile.NewClass(oraImpl(k)).Super(oraBase).
			Method(classfile.InitName, "()V", 0, defaultInit(oraBase)).
			Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
				switch kind {
				case 0: // pure arithmetic
					a.ILoad(1).Const(c).IAdd().IReturn()
				case 1: // reads the inherited field
					a.ILoad(1).ALoad(0).GetField(oraBase, "v").IAdd().Const(c).IXor().IReturn()
				default: // writes the inherited field
					a.ALoad(0).ILoad(1).PutField(oraBase, "v")
					a.ILoad(1).Const(c).ISub().IReturn()
				}
			}).MustBuild())
	}

	recvSlot := func(r int) int { return 3 + r }
	tmpSlot := 3 + p.numImpls
	main := classfile.NewClass(oraMain).
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			for k := 0; k < p.numImpls; k++ {
				a.New(oraImpl(k)).Dup().
					InvokeSpecial(oraImpl(k), classfile.InitName, "()V").
					AStore(recvSlot(k))
			}
			a.ILoad(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(2).Const(p.loopN).IfICmpGe("done")
			for j, f := range p.frags {
				s := fmt.Sprintf("s%d", j)
				h := fmt.Sprintf("h%d", j)
				after := fmt.Sprintf("a%d", j)
				switch f.kind {
				case fragArith:
					a.ILoad(1)
					if f.op%2 == 0 {
						a.Const(f.c)
					} else {
						a.ILoad(2)
					}
					emitArith(a, f.op)
					a.IStore(1)
				case fragVirtualMono:
					a.ALoad(recvSlot(f.r1)).ILoad(1).
						InvokeVirtual(oraBase, "f", "(I)I").IStore(1)
				case fragVirtualPoly:
					// Data-dependent receiver: one call site sees several
					// classes, driving the site mono -> poly (-> mega with
					// enough impls across fragments).
					a.ILoad(2).Const(1).IAnd().IfEq(s)
					a.ALoad(recvSlot(f.r1)).Goto(after)
					a.Label(s).ALoad(recvSlot(f.r2))
					a.Label(after).ILoad(1).
						InvokeVirtual(oraBase, "f", "(I)I").IStore(1)
				case fragCrossStatic:
					a.ILoad(1).InvokeStatic(oraSvc, "g", "(I)I").IStore(1)
				case fragMonitor:
					a.ALoad(recvSlot(f.r1)).MonitorEnter()
					a.ILoad(1).Const(f.c).IAdd().IStore(1)
					a.ALoad(recvSlot(f.r1)).MonitorExit()
				case fragCatchDiv:
					a.Label(s).ILoad(1).Const(f.divisor).IDiv().IStore(1).Goto(after)
					a.Label(h).Pop().ILoad(1).Const(7).IAdd().IStore(1)
					a.Label(after)
					a.Handler(s, h, h, "java/lang/ArithmeticException")
				case fragCatchNull:
					a.Label(s).Null().AThrow()
					a.Label(h).Pop().ILoad(1).Const(11).IXor().IStore(1)
					a.Handler(s, h, h, "java/lang/NullPointerException")
				case fragArray:
					a.Const(f.arrLen).NewArray("").AStore(tmpSlot)
					a.Label(s).ALoad(tmpSlot).Const(f.arrIdx).ILoad(1).ArrayStore().Goto(after)
					a.Label(h).Pop().ILoad(1).Const(13).IAdd().IStore(1)
					a.Label(after)
					a.Handler(s, h, h, "java/lang/ArrayIndexOutOfBoundsException")
					safe := f.arrIdx % f.arrLen
					a.ALoad(tmpSlot).Const(safe).ArrayLoad().IStore(1)
				case fragSpecial:
					a.ALoad(recvSlot(f.r1)).ILoad(1).
						InvokeSpecial(oraBase, "p", "(I)I").IStore(1)
				case fragAllocChurn:
					// Fresh object per iteration, dropped immediately:
					// allocation-heavy garbage for the GC-on-pressure path.
					a.New(oraImpl(f.r1)).Dup().
						InvokeSpecial(oraImpl(f.r1), classfile.InitName, "()V").
						AStore(tmpSlot)
					a.ALoad(tmpSlot).ILoad(1).
						InvokeVirtual(oraBase, "f", "(I)I").IStore(1)
					a.Null().AStore(tmpSlot)
				case fragArrayChurn:
					// Sized array per iteration (up to ~2 KB), one store,
					// dropped.
					a.Const(f.arrLen * 64).NewArray("").AStore(tmpSlot)
					a.ALoad(tmpSlot).Const(f.arrLen).ILoad(1).ArrayStore()
					a.ALoad(tmpSlot).Const(f.arrLen).ArrayLoad().IStore(1)
					a.Null().AStore(tmpSlot)
				case fragSyncCall:
					// Synchronized method call nested inside an explicit
					// monitor section on a second receiver.
					a.ALoad(recvSlot(f.r2)).MonitorEnter()
					a.ALoad(recvSlot(f.r1)).ILoad(1).
						InvokeVirtual(oraBase, "sf", "(I)I").IStore(1)
					a.ALoad(recvSlot(f.r2)).MonitorExit()
				}
			}
			a.IInc(2, 1).Goto("loop")
			a.Label("done").ILoad(1).IReturn()
		}).MustBuild()

	// The uncaught-exception variant divides by zero outside any handler
	// on the last loop iteration.
	if p.uncaughtAt >= 0 {
		main = classfile.NewClass(oraMain).
			Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.ILoad(0).Const(0).IDiv().IReturn()
			}).MustBuild()
	}
	return append(classes, main)
}

// oraclePeerClasses builds the peer classes (a foreign isolate under
// I-JVM, a plain second loader under the baseline).
func oraclePeerClasses() []*classfile.Class {
	return []*classfile.Class{
		classfile.NewClass(oraSvc).
			StaticField("s", classfile.KindInt).
			Method("g", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.GetStatic(oraSvc, "s").ILoad(0).IAdd().
					Dup().PutStatic(oraSvc, "s").IReturn()
			}).MustBuild(),
	}
}

// oracleTrace is the full comparison surface of one run.
type oracleTrace struct {
	result  int64
	failure string
	output  string
	total   int64
	clock   int64
	// name -> {Instructions, CPUSamples, AllocatedObjects,
	// AllocatedBytes, LiveObjects, LiveBytes, GCActivations} (live
	// figures post-GC: the heap-reachable result surface; GCActivations
	// proves the GC-on-pressure collection points are identical).
	perIsolate map[string][7]int64
}

func (a oracleTrace) diff(b oracleTrace) string {
	switch {
	case a.result != b.result:
		return fmt.Sprintf("result %d != %d", a.result, b.result)
	case a.failure != b.failure:
		return fmt.Sprintf("failure %q != %q", a.failure, b.failure)
	case a.output != b.output:
		return fmt.Sprintf("output %q != %q", a.output, b.output)
	case a.total != b.total:
		return fmt.Sprintf("total instructions %d != %d", a.total, b.total)
	case a.clock != b.clock:
		return fmt.Sprintf("clock %d != %d", a.clock, b.clock)
	case len(a.perIsolate) != len(b.perIsolate):
		return fmt.Sprintf("isolate count %d != %d", len(a.perIsolate), len(b.perIsolate))
	}
	for iso, av := range a.perIsolate {
		bv, ok := b.perIsolate[iso]
		if !ok {
			return fmt.Sprintf("isolate %s missing", iso)
		}
		if av != bv {
			return fmt.Sprintf("isolate %s {instr, samples, allocObj, allocB, liveObj, liveB, gcActs} %v != %v", iso, av, bv)
		}
	}
	return ""
}

// runOracleProgram materializes and executes p under one configuration.
func runOracleProgram(t *testing.T, p oracleProgram, mode core.Mode, seedDispatch bool) oracleTrace {
	t.Helper()
	// The small heap limit makes the alloc/array-churn fragments hit
	// GC-on-pressure collections mid-run, so the oracle also proves the
	// collection points, the per-isolate byte accounts and the post-GC
	// reachability identical across dispatch configurations.
	vm := interp.NewVM(interp.Options{Mode: mode, DisablePrepare: seedDispatch, HeapLimit: 32 << 10})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	peerLoader := iso.Loader()
	if mode == core.ModeIsolated {
		peer, err := vm.NewIsolate("peer")
		if err != nil {
			t.Fatal(err)
		}
		peerLoader = peer.Loader()
	} else {
		peerLoader = vm.Registry().NewLoader("peer")
	}
	if err := peerLoader.DefineAll(oraclePeerClasses()); err != nil {
		t.Fatal(err)
	}
	iso.Loader().AddDelegate(peerLoader)
	if err := iso.Loader().DefineAll(oracleMainClasses(p)); err != nil {
		t.Fatal(err)
	}
	c, err := iso.Loader().Lookup(oraMain)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	arg := p.seed % 97
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 5_000_000)
	if err != nil {
		t.Fatalf("seed %d mode %v seedDispatch %v: host error: %v", p.seed, mode, seedDispatch, err)
	}
	vm.CollectGarbage(nil)
	tr := oracleTrace{
		result:     v.I,
		failure:    th.FailureString(),
		output:     vm.Output(),
		total:      vm.TotalInstructions(),
		clock:      vm.Clock(),
		perIsolate: make(map[string][7]int64),
	}
	for _, s := range vm.Snapshots() {
		tr.perIsolate[s.IsolateName] = [7]int64{
			s.Instructions, s.CPUSamples,
			s.AllocatedObjects, s.AllocatedBytes,
			s.LiveObjects, s.LiveBytes,
			s.GCActivations,
		}
	}
	return tr
}

// TestRandomizedDifferentialOracle replays >= 500 generated programs on
// prepared-IC vs seed-style dispatch in both modes and demands
// byte-identical traces.
func TestRandomizedDifferentialOracle(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		seed := int64(i)*2654435761 + 99991
		p := genOracleProgram(seed)
		for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
			ref := runOracleProgram(t, p, mode, true)
			got := runOracleProgram(t, p, mode, false)
			if d := ref.diff(got); d != "" {
				t.Fatalf("program %d (seed %d) mode %v: prepared-IC diverges from seed dispatch: %s",
					i, seed, mode, d)
			}
		}
	}
}
