package interp

import (
	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
)

// PrepareMethodForTest exposes the preparation pass (with the
// superinstruction fusion pass enabled) to the external test package
// (the fuzz target drives it with adversarial instruction streams; the
// oracle tests reach it through normal execution).
func PrepareMethodForTest(m *classfile.Method) *bytecode.PCode { return prepareMethod(m, true) }
