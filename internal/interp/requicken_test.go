package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// requickenClasses builds a counter class (static state) and a driver
// whose run(I)I spins n iterations bumping the static counter through an
// invokevirtual site — enough surface to prove statics, inline caches
// and live frames survive a mode flip.
func requickenClasses() []*classfile.Class {
	init := func(a *bytecode.Assembler) {
		a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
	}
	counter := classfile.NewClass("rq/Counter").
		StaticField("total", classfile.KindInt).
		Method(classfile.InitName, "()V", 0, init).
		Method("bump", "(I)I", 0, func(a *bytecode.Assembler) {
			a.GetStatic("rq/Counter", "total").ILoad(1).IAdd().
				Dup().PutStatic("rq/Counter", "total").IReturn()
		}).MustBuild()
	driver := classfile.NewClass("rq/Driver").
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New("rq/Counter").Dup().
				InvokeSpecial("rq/Counter", classfile.InitName, "()V").AStore(1)
			a.Const(0).IStore(2)
			a.Label("loop").ILoad(2).ILoad(0).IfICmpGe("done")
			a.ALoad(1).Const(1).InvokeVirtual("rq/Counter", "bump", "(I)I").Pop()
			a.IInc(2, 1).Goto("loop")
			a.Label("done").GetStatic("rq/Counter", "total").IReturn()
		}).MustBuild()
	return []*classfile.Class{counter, driver}
}

// TestSetIsolationModeRequickens boots a Shared-mode VM, runs warm
// (populating the Shared quickening, its inline caches and the pool
// entries' ResolvedMirror caches), then flips to Isolated mode —
// including mid-run, with live partially-executed frames — and checks
// that execution continues correctly on the Isolated quickening, that
// isolate 0's statics survive the flip, and that a fresh second isolate
// (impossible under Shared mode) gets its own mirror.
func TestSetIsolationModeRequickens(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeShared})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup("rq/Driver")
	m, err := c.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}

	// Warm run under Shared dispatch.
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(10)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("shared run: %v / %v", err, th.FailureString())
	}
	if v.I != 10 {
		t.Fatalf("shared run total = %d, want 10", v.I)
	}
	if m.Code.Prepared(bytecode.PModeShared) == nil {
		t.Fatal("shared quickening missing after warm run")
	}

	// Flip mid-run: spawn a long run, execute part of it, flip, finish.
	th2, err := vm.SpawnThread("flip", iso, m, []heap.Value{heap.IntVal(1000)})
	if err != nil {
		t.Fatal(err)
	}
	vm.RunUntil(th2, 500) // partial: live frames hold Shared pcode
	if th2.Done() {
		t.Fatal("thread finished before the flip; raise the iteration count")
	}
	if err := vm.SetIsolationMode(core.ModeIsolated); err != nil {
		t.Fatalf("SetIsolationMode: %v", err)
	}
	if !vm.World().Isolated() {
		t.Fatal("world did not flip to isolated")
	}
	res := vm.RunUntil(th2, 0)
	if !res.TargetDone || th2.Failure() != nil || th2.Err() != nil {
		t.Fatalf("post-flip run: %+v / %v / %v", res, th2.FailureString(), th2.Err())
	}
	// Statics survive the flip (isolate 0 indexes mirror slot 0 in both
	// modes): 10 from the warm run plus 1000 from the flipped run.
	if th2.Result().I != 1010 {
		t.Fatalf("post-flip total = %d, want 1010", th2.Result().I)
	}
	if m.Code.Prepared(bytecode.PModeIsolated) == nil {
		t.Fatal("isolated quickening missing after flip")
	}

	// A second isolate is now legal and gets its own statics: its run
	// starts a fresh mirror (counter 0), while isolate 0 keeps its own.
	iso2, err := vm.NewIsolate("tenant")
	if err != nil {
		t.Fatalf("NewIsolate after flip: %v", err)
	}
	if err := iso2.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c2, _ := iso2.Loader().Lookup("rq/Driver")
	m2, _ := c2.LookupMethod("run", "(I)I")
	v2, th3, err := vm.CallRoot(iso2, m2, []heap.Value{heap.IntVal(7)}, 1_000_000)
	if err != nil || th3.Failure() != nil {
		t.Fatalf("tenant run: %v / %v", err, th3.FailureString())
	}
	if v2.I != 7 {
		t.Fatalf("tenant total = %d, want 7 (fresh per-isolate statics)", v2.I)
	}
	v3, th4, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(5)}, 1_000_000)
	if err != nil || th4.Failure() != nil {
		t.Fatalf("main re-run: %v / %v", err, th4.FailureString())
	}
	if v3.I != 1015 {
		t.Fatalf("main total after tenant run = %d, want 1015", v3.I)
	}

	// Isolated -> Shared is rejected while two isolates exist.
	if err := vm.SetIsolationMode(core.ModeShared); err == nil {
		t.Fatal("flip back to shared with two isolates should fail")
	}
}

// TestRequickenStormAgainstHotTier storms SetIsolationMode against
// superinstruction-fused, closure-promoted code: a hot loop (promoted on
// first activation via TierPromoteThreshold 1) is advanced in small,
// odd-sized budget slices, flipping the isolation mode between every
// slice. Quantum boundaries land at every offset of the fused groups —
// including single-stepped heads (budget-exhausted bails) and delegated
// finals — so a flip observing a partially-applied stack effect, a
// stale closure program surviving deopt, or a mis-carried pc inside a
// fused region would corrupt the final total.
func TestRequickenStormAgainstHotTier(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeShared, TierPromoteThreshold: 1})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup("rq/Driver")
	m, err := c.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}

	const iters = 4000
	th, err := vm.SpawnThread("storm", iso, m, []heap.Value{heap.IntVal(iters)})
	if err != nil {
		t.Fatal(err)
	}
	// Prime/co-prime budgets walk the quantum boundary through every
	// fused-group offset as the storm progresses.
	budgets := []int64{1, 2, 3, 5, 7, 11, 13, 17, 101, 997}
	modes := []core.Mode{core.ModeIsolated, core.ModeShared}
	flips := 0
	for i := 0; !th.Done(); i++ {
		vm.RunUntil(th, budgets[i%len(budgets)])
		if th.Done() {
			break
		}
		if err := vm.SetIsolationMode(modes[flips%len(modes)]); err != nil {
			t.Fatalf("flip %d: %v", flips, err)
		}
		flips++
	}
	if th.Failure() != nil || th.Err() != nil {
		t.Fatalf("storm run failed: %v / %v", th.FailureString(), th.Err())
	}
	if th.Result().I != iters {
		t.Fatalf("storm total = %d, want %d", th.Result().I, iters)
	}
	if flips < 10 {
		t.Fatalf("only %d mode flips; the storm never interleaved", flips)
	}

	// The storm must actually have run against the tier under test: both
	// mode quickenings carry fused superinstruction heads, and the hot
	// loop body was promoted to the closure tier.
	for _, pm := range []int{bytecode.PModeShared, bytecode.PModeIsolated} {
		p := m.Code.Prepared(bytecode.PSlot(pm, bytecode.PVariantFused))
		if p == nil {
			t.Fatalf("mode %d quickening missing after storm", pm)
		}
		fused := 0
		for i := range p.Instrs {
			if bytecode.IsFused(p.Instrs[i].H) {
				fused++
			}
		}
		if fused == 0 {
			t.Fatalf("mode %d quickening has no fused superinstructions", pm)
		}
		if p.Tier.Hot() == nil {
			t.Fatalf("mode %d quickening was never promoted to the closure tier", pm)
		}
	}
}

// TestKillStormAgainstHotTier kills an isolate while its hot,
// closure-promoted, fused loop is mid-flight at an arbitrary quantum
// boundary, and proves termination semantics are unchanged by the hot
// tier: the victim thread dies with StoppedIsolateException-style
// failure (killed code never runs again), while a second isolate's
// identical hot loop still computes the exact total afterwards.
func TestKillStormAgainstHotTier(t *testing.T) {
	for _, budget := range []int64{7, 101, 1009} {
		vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, TierPromoteThreshold: 1})
		syslib.MustInstall(vm)
		if _, err := vm.NewIsolate("platform"); err != nil { // Isolate0: unkillable
			t.Fatal(err)
		}
		victimIso, err := vm.NewIsolate("victim")
		if err != nil {
			t.Fatal(err)
		}
		if err := victimIso.Loader().DefineAll(requickenClasses()); err != nil {
			t.Fatal(err)
		}
		c, _ := victimIso.Loader().Lookup("rq/Driver")
		m, _ := c.LookupMethod("run", "(I)I")
		th, err := vm.SpawnThread("victim", victimIso, m, []heap.Value{heap.IntVal(100000)})
		if err != nil {
			t.Fatal(err)
		}
		vm.RunUntil(th, budget) // park the hot loop mid-flight
		if th.Done() {
			t.Fatalf("budget %d: victim finished before the kill", budget)
		}
		if err := vm.KillIsolate(nil, victimIso); err != nil {
			t.Fatalf("budget %d: kill: %v", budget, err)
		}
		res := vm.RunUntil(th, 0)
		if !th.Done() {
			t.Fatalf("budget %d: victim still live after kill: %+v", budget, res)
		}
		if th.Failure() == nil && th.Err() == nil {
			t.Fatalf("budget %d: killed thread finished cleanly with %d", budget, th.Result().I)
		}

		// A fresh isolate's hot loop is unaffected by the carnage.
		iso2, err := vm.NewIsolate("survivor")
		if err != nil {
			t.Fatal(err)
		}
		if err := iso2.Loader().DefineAll(requickenClasses()); err != nil {
			t.Fatal(err)
		}
		c2, _ := iso2.Loader().Lookup("rq/Driver")
		m2, _ := c2.LookupMethod("run", "(I)I")
		v, th2, err := vm.CallRoot(iso2, m2, []heap.Value{heap.IntVal(123)}, 1_000_000)
		if err != nil || th2.Failure() != nil {
			t.Fatalf("budget %d: survivor run: %v / %v", budget, err, th2.FailureString())
		}
		if v.I != 123 {
			t.Fatalf("budget %d: survivor total = %d, want 123", budget, v.I)
		}
	}
}

// TestSetIsolationModeSharedDowngrade covers the legal reverse flip: a
// single-isolate Isolated VM may downgrade to Shared semantics.
func TestSetIsolationModeSharedDowngrade(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup("rq/Driver")
	m, _ := c.LookupMethod("run", "(I)I")
	if v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(4)}, 1_000_000); err != nil || th.Failure() != nil || v.I != 4 {
		t.Fatalf("isolated run: %v / %v", err, th.FailureString())
	}
	if err := vm.SetIsolationMode(core.ModeShared); err != nil {
		t.Fatalf("downgrade: %v", err)
	}
	if v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(6)}, 1_000_000); err != nil || th.Failure() != nil || v.I != 10 {
		t.Fatalf("shared re-run: %v / %v (statics must persist)", err, th.FailureString())
	}
}
