package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// requickenClasses builds a counter class (static state) and a driver
// whose run(I)I spins n iterations bumping the static counter through an
// invokevirtual site — enough surface to prove statics, inline caches
// and live frames survive a mode flip.
func requickenClasses() []*classfile.Class {
	init := func(a *bytecode.Assembler) {
		a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
	}
	counter := classfile.NewClass("rq/Counter").
		StaticField("total", classfile.KindInt).
		Method(classfile.InitName, "()V", 0, init).
		Method("bump", "(I)I", 0, func(a *bytecode.Assembler) {
			a.GetStatic("rq/Counter", "total").ILoad(1).IAdd().
				Dup().PutStatic("rq/Counter", "total").IReturn()
		}).MustBuild()
	driver := classfile.NewClass("rq/Driver").
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New("rq/Counter").Dup().
				InvokeSpecial("rq/Counter", classfile.InitName, "()V").AStore(1)
			a.Const(0).IStore(2)
			a.Label("loop").ILoad(2).ILoad(0).IfICmpGe("done")
			a.ALoad(1).Const(1).InvokeVirtual("rq/Counter", "bump", "(I)I").Pop()
			a.IInc(2, 1).Goto("loop")
			a.Label("done").GetStatic("rq/Counter", "total").IReturn()
		}).MustBuild()
	return []*classfile.Class{counter, driver}
}

// TestSetIsolationModeRequickens boots a Shared-mode VM, runs warm
// (populating the Shared quickening, its inline caches and the pool
// entries' ResolvedMirror caches), then flips to Isolated mode —
// including mid-run, with live partially-executed frames — and checks
// that execution continues correctly on the Isolated quickening, that
// isolate 0's statics survive the flip, and that a fresh second isolate
// (impossible under Shared mode) gets its own mirror.
func TestSetIsolationModeRequickens(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeShared})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup("rq/Driver")
	m, err := c.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}

	// Warm run under Shared dispatch.
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(10)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("shared run: %v / %v", err, th.FailureString())
	}
	if v.I != 10 {
		t.Fatalf("shared run total = %d, want 10", v.I)
	}
	if m.Code.Prepared(bytecode.PModeShared) == nil {
		t.Fatal("shared quickening missing after warm run")
	}

	// Flip mid-run: spawn a long run, execute part of it, flip, finish.
	th2, err := vm.SpawnThread("flip", iso, m, []heap.Value{heap.IntVal(1000)})
	if err != nil {
		t.Fatal(err)
	}
	vm.RunUntil(th2, 500) // partial: live frames hold Shared pcode
	if th2.Done() {
		t.Fatal("thread finished before the flip; raise the iteration count")
	}
	if err := vm.SetIsolationMode(core.ModeIsolated); err != nil {
		t.Fatalf("SetIsolationMode: %v", err)
	}
	if !vm.World().Isolated() {
		t.Fatal("world did not flip to isolated")
	}
	res := vm.RunUntil(th2, 0)
	if !res.TargetDone || th2.Failure() != nil || th2.Err() != nil {
		t.Fatalf("post-flip run: %+v / %v / %v", res, th2.FailureString(), th2.Err())
	}
	// Statics survive the flip (isolate 0 indexes mirror slot 0 in both
	// modes): 10 from the warm run plus 1000 from the flipped run.
	if th2.Result().I != 1010 {
		t.Fatalf("post-flip total = %d, want 1010", th2.Result().I)
	}
	if m.Code.Prepared(bytecode.PModeIsolated) == nil {
		t.Fatal("isolated quickening missing after flip")
	}

	// A second isolate is now legal and gets its own statics: its run
	// starts a fresh mirror (counter 0), while isolate 0 keeps its own.
	iso2, err := vm.NewIsolate("tenant")
	if err != nil {
		t.Fatalf("NewIsolate after flip: %v", err)
	}
	if err := iso2.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c2, _ := iso2.Loader().Lookup("rq/Driver")
	m2, _ := c2.LookupMethod("run", "(I)I")
	v2, th3, err := vm.CallRoot(iso2, m2, []heap.Value{heap.IntVal(7)}, 1_000_000)
	if err != nil || th3.Failure() != nil {
		t.Fatalf("tenant run: %v / %v", err, th3.FailureString())
	}
	if v2.I != 7 {
		t.Fatalf("tenant total = %d, want 7 (fresh per-isolate statics)", v2.I)
	}
	v3, th4, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(5)}, 1_000_000)
	if err != nil || th4.Failure() != nil {
		t.Fatalf("main re-run: %v / %v", err, th4.FailureString())
	}
	if v3.I != 1015 {
		t.Fatalf("main total after tenant run = %d, want 1015", v3.I)
	}

	// Isolated -> Shared is rejected while two isolates exist.
	if err := vm.SetIsolationMode(core.ModeShared); err == nil {
		t.Fatal("flip back to shared with two isolates should fail")
	}
}

// TestSetIsolationModeSharedDowngrade covers the legal reverse flip: a
// single-isolate Isolated VM may downgrade to Shared semantics.
func TestSetIsolationModeSharedDowngrade(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(requickenClasses()); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup("rq/Driver")
	m, _ := c.LookupMethod("run", "(I)I")
	if v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(4)}, 1_000_000); err != nil || th.Failure() != nil || v.I != 4 {
		t.Fatalf("isolated run: %v / %v", err, th.FailureString())
	}
	if err := vm.SetIsolationMode(core.ModeShared); err != nil {
		t.Fatalf("downgrade: %v", err)
	}
	if v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(6)}, 1_000_000); err != nil || th.Failure() != nil || v.I != 10 {
		t.Fatalf("shared re-run: %v / %v (statics must persist)", err, th.FailureString())
	}
}
