package interp

import (
	"ijvm/internal/heap"
)

// This file drives the heap's incremental collector (internal/heap
// gc.go) from both execution engines and hosts the mutator side of the
// SATB write barrier.
//
// # Collector scheduling
//
// Background cycles open when heap occupancy crosses the configured
// threshold, observed at quantum boundaries (gcQuantum): the opening
// pause is a stop-the-world just long enough to snapshot the root sets
// and arm the barrier. While a cycle is open, every quantum boundary —
// sequential loop and each concurrent worker — contributes a bounded
// stride of mark work through the heap's shared gray pool, so marking
// proceeds concurrently with mutators on other shards. When the mark is
// exhausted the observing boundary runs the short terminal
// stop-the-world (root re-scan, residual drain, finalizer pass, sweep).
//
// Allocation pressure and explicit requests still go through
// VM.CollectGarbage, which is always exact: heap.Collect abandons an
// open cycle and runs a fresh full pass, so the pinned invariants
// (post-GC Used() == live bytes, first-tracer charging, identical
// collection points across collector configurations) hold regardless of
// what the background cycle was doing.
//
// # GC-activation accounting
//
// A background cycle charges one GCActivation to the isolate whose
// quantum observed the threshold crossing — the isolate driving heap
// growth activates the collector, which is what the paper's counter is
// for (attack A4 detection). Pressure and explicit collections charge
// the triggering isolate exactly as before. See core.AccountCounters.

// gcQuantum is the per-quantum collector hook of both engines. a is the
// engine's allocation state: when one of its allocations crossed the
// occupancy threshold (allocState.gcIso), this boundary opens the
// background cycle and charges the activation to that isolate. A shard
// that did not cross the threshold itself never starts a cycle, so the
// activation is always attributed to an allocator.
func (vm *VM) gcQuantum(a *allocState) {
	if vm.opts.ForceSTWGC {
		return
	}
	h := vm.heap
	if !h.CycleOpen() {
		if a != nil && a.gcIso != nil {
			if h.NeedCycle() && vm.StartIncrementalCycle() {
				a.gcIso.Account().GCActivations.Add(1)
			}
			a.gcIso = nil
		}
		return
	}
	if a != nil {
		// A crossing observed before another shard opened the cycle is
		// stale; drop it so a later cycle is not double-charged.
		a.gcIso = nil
	}
	if h.MarkQuantum(vm.opts.GCMarkStride) {
		vm.FinishIncrementalCycle()
	}
}

// GCQuantum is gcQuantum for the concurrent scheduler: one bounded
// collector step at a worker's quantum boundary, using the worker's
// allocation state for activation attribution.
func (vm *VM) GCQuantum(s *SampleState) { vm.gcQuantum(s.alloc) }

// StartIncrementalCycle opens a background mark cycle now (stopping the
// world briefly to snapshot roots and arm the barrier). It returns
// false when a cycle is already open or the reference collector is
// selected. Exposed for the GC benchmarks and stress tests; the engines
// normally start cycles from the occupancy threshold.
func (vm *VM) StartIncrementalCycle() bool {
	if vm.opts.ForceSTWGC {
		return false
	}
	ok := false
	vm.withWorldStopped(func() {
		if !vm.heap.CycleOpen() {
			ok = vm.heap.BeginCycle(vm.buildRootSets())
		}
	})
	return ok
}

// GCMarkStep performs up to n units of mark work on the open cycle and
// reports whether the mark is exhausted. Exposed for benchmarks; the
// engines call the same heap primitive through gcQuantum.
func (vm *VM) GCMarkStep(n int) bool { return vm.heap.MarkQuantum(n) }

// FinishIncrementalCycle runs the terminal phase of the open cycle: a
// short stop-the-world for the root re-scan, residual drain, finalizer
// pass and sweep. Returns false when no cycle is open.
func (vm *VM) FinishIncrementalCycle() (heap.CollectResult, bool) {
	var res heap.CollectResult
	var ok bool
	vm.withWorldStopped(func() {
		if !vm.heap.CycleOpen() {
			return
		}
		res, ok = vm.heap.FinishCycle(vm.buildRootSets())
		if ok {
			vm.world.UpdateDisposal(vm.heap)
			vm.scheduleFinalizers(res.PendingFinalize)
		}
	})
	return res, ok
}

// gcBarrier records one overwritten reference while a cycle is open.
// The executing engine's allocation state buffers records and hands
// them to the heap in batches at quantum boundaries (and when the
// buffer fills); callers without an installed state fall back to the
// heap's locked path.
func (vm *VM) gcBarrier(t *Thread, old *heap.Object) {
	if old.Marked() {
		return
	}
	if a := allocOf(t); a != nil {
		a.recordSATB(vm.heap, old)
		return
	}
	vm.heap.RecordWrite(old)
}

// gcWriteSlot performs one reference-slot store under an armed barrier:
// the overwritten reference is recorded (SATB's deletion barrier) and
// the reference word of the slot is published atomically so concurrent
// markers never read a torn pointer. Store handlers call it only after
// BarrierActive() reported true; the idle fast path stays a plain
// assignment.
func (vm *VM) gcWriteSlot(t *Thread, slot *heap.Value, v heap.Value) {
	if old := slot.R; old != nil {
		vm.gcBarrier(t, old)
	}
	heap.StoreSlotBarriered(slot, v)
}

// WriteBarrier records old as overwritten if it is a reference and a
// mark phase is open. System-library natives call it before mutating
// native payloads that hold references (collection set/remove/clear,
// arraycopy): those payloads are scanned only in stop-the-world phases,
// so the deletion record is what keeps a reference removed mid-cycle
// alive until the terminal phase.
func (vm *VM) WriteBarrier(t *Thread, old heap.Value) {
	if old.R != nil && vm.heap.BarrierActive() {
		vm.gcBarrier(t, old.R)
	}
}
