package interp

import (
	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/heap"
)

// The closure-threaded hot tier. When a prepared method's activation heat
// crosses the promotion threshold (tier.go), buildClosureProgram compiles
// it into one Go closure chain per basic block: every operand — local
// slots, immediates, branch targets, pre-resolved pool entries, field
// slots, IC lines — is captured at build time, so executing a block is a
// straight run of closure calls with no table dispatch and no PInstr
// decoding between sub-instructions.
//
// The tier is a generalization of the superinstruction contract
// (fused_handlers.go):
//
//   - a block's prefix holds only micros that cannot throw, allocate,
//     park, or reach a safepoint; anything else (invokes, news, statics,
//     monitors, returns, throws, ldc, checkcast ...) terminates the block
//     and is delegated through the live handler table, with the frame in
//     exactly the unfused state;
//   - every micro fully applies its own stack/locals/pc effect before the
//     next one runs, and guarded micros (field and array access) check
//     all failure conditions BEFORE mutating anything, returning
//     microBail. A bail delegates the instruction at the current pc
//     through the handler table as the step's final sub-instruction, so
//     the step always retires ≥1 instruction and accounting stays exact;
//   - conditional branches do not end a block: they are mid-block micros
//     that stop the step when taken (microStop) and fall through into
//     the block's continuation otherwise, so a tight loop's whole
//     iteration — compare, body, iinc+goto — retires as one engine step;
//   - where the preparation pass fused a superinstruction
//     (bytecode.IsFused on the head's handler index), the builder emits
//     ONE combined micro for the whole group — operands pre-bound, the
//     intermediate stack traffic elided entirely (local-to-local data
//     flow), exactly like the fused handlers. Combined micros cover only
//     the full-inline shapes, which cannot fail, so bail charging never
//     lands inside a group;
//   - the whole block reserves its sub-instruction width against the
//     quantum up front and charges retired micros through the engine
//     loop's own accounting sequence in one batched, arithmetically
//     identical call (tier.go chargeSubs), so quantum boundaries,
//     per-isolate accounts, GC mark strides, interrupt/kill polls and
//     STW parking all land at identical instruction counts to the
//     unfused engine.
//
// Deopt: SetIsolationMode re-quickens live frames and drops their adopted
// program (requicken.go); the mode's own prepared form re-promotes
// independently. Exceptions and unresolved sites deopt per-step via the
// bail path with no state to unwind. Kill and interrupts act at step
// boundaries exactly as before.
//
// Programs are immutable after publication (CAS in bytecode.TierState),
// so concurrent adoption needs no locks.

// microStatus is a micro's verdict on how the block proceeds.
type microStatus uint8

const (
	// microNext: the micro fully applied its effect; run the next one.
	microNext microStatus = iota
	// microStop: the micro fully applied its effect and transferred
	// control (a taken branch); the step ends with the block's charges
	// through this micro settled.
	microStop
	// microBail: the micro applied NO effect; the instruction at the
	// current pc is delegated through the handler table as the step's
	// final sub-instruction.
	microBail
)

// closureMicro executes one guest instruction (or one fused group) with
// pre-bound operands.
type closureMicro func(vm *VM, t *Thread, f *Frame) microStatus

// closureBlock is the compiled form of one extended basic block. The
// prefix holds micros for straight-line instructions, fused groups, AND
// conditional branches (taken → microStop ends the step; not taken →
// execution continues into the fall-through within the same step, so a
// tight loop iteration is one engine step). last is an optional inline
// unconditional final (goto, or a fused iinc+goto); nil last means the
// block's final instruction is delegated through the handler table
// (invokes, allocation, returns, ...).
//
// A prefix entry may cover several guest instructions (a fused group),
// so charging is width-aware: cum[i] is the sub-instruction count
// retired once prefix[i] completes, and width is the full fall-through
// path's count plus an inline final's surplus over the one instruction
// the engine loop charges. reserve(width) is conservative on early-taken
// branches — exactly like a fused handler's whole-group reserve, the
// block runs compiled only when its longest path fits the quantum, and
// single-steps (the unfused engine's own boundary behavior) otherwise.
type closureBlock struct {
	prefix []closureMicro
	cum    []int64
	width  int64
	last   closureMicro
}

// closureProgram maps each block-head pc to its compiled block; nil
// entries are pcs reached only mid-block (or blocks too trivial to win),
// which execute through normal table dispatch.
type closureProgram struct {
	blocks []*closureBlock
}

// maxClosureBlock bounds a block's sub-instruction width so a block
// never spans a large fraction of the quantum (a reserve failure
// single-steps the whole block until the next quantum).
const maxClosureBlock = 24

// runClosureBlock executes one compiled block as one engine step. The
// loop's post-step charge covers the step's final sub-instruction (a
// taken branch, the inline final, or the delegated instruction);
// chargeSubs batches everything retired before it — charge order within
// a step is unobservable, so batching is identical to charging each
// micro as it retires.
func (vm *VM) runClosureBlock(t *Thread, f *Frame, b *closureBlock) error {
	q := t.qa
	if q == nil || !q.reserve(b.width) {
		in := &f.pcode.Instrs[f.pc]
		return vm.ptable[in.H](vm, t, f, in)
	}
	for i, m := range b.prefix {
		switch m(vm, t, f) {
		case microNext:
		case microStop:
			q.chargeSubs(t, b.cum[i]-1)
			return nil
		default: // microBail: no effect applied; delegate at pc.
			var c int64
			if i > 0 {
				c = b.cum[i-1]
			}
			q.chargeSubs(t, c)
			in := &f.pcode.Instrs[f.pc]
			return vm.ptable[in.H](vm, t, f, in)
		}
	}
	q.chargeSubs(t, b.width)
	if b.last != nil {
		b.last(vm, t, f)
		return nil
	}
	in := &f.pcode.Instrs[f.pc]
	return vm.ptable[in.H](vm, t, f, in)
}

// buildClosureProgram compiles the prepared method into closure-threaded
// blocks. Block heads are the method entry, every branch target, every
// exception-handler target, and every fall-through successor of a built
// block, so steady-state execution (including returns from delegated
// invokes) always lands on a compiled block; other pcs run through table
// dispatch. The result is never nil (blocks may be sparse).
func buildClosureProgram(m *classfile.Method, p *bytecode.PCode) *closureProgram {
	code := m.Code
	n := len(code.Instrs)
	cp := &closureProgram{blocks: make([]*closureBlock, n)}
	if n == 0 || n != len(p.Instrs) {
		return cp
	}
	seen := make([]bool, n)
	work := make([]int32, 0, 16)
	add := func(pc int32) {
		if pc >= 0 && int(pc) < n && !seen[pc] {
			seen[pc] = true
			work = append(work, pc)
		}
	}
	add(0)
	for _, in := range code.Instrs {
		if in.Op.IsBranch() {
			add(in.A)
		}
	}
	for _, h := range code.Handlers {
		add(h.Target)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		b, end, fall := buildClosureBlock(code, p, pc)
		if b != nil {
			cp.blocks[pc] = b
		}
		if fall {
			add(end + 1)
		}
	}
	return cp
}

// buildClosureBlock compiles one extended block starting at pc. It
// returns the block (nil when too trivial to beat table dispatch), the
// pc of the block's final instruction, and whether control may fall
// through past it. Where the prepared form carries a fused
// superinstruction head, the whole group compiles into one combined
// micro; blocks entered at a follower pc see the followers' original
// form, so mid-group entries still compile per instruction. Conditional
// branches (plain or fused compare-and-branch) do not end the block:
// they compile as mid-block micros and the fall-through path continues,
// so a backward-branching loop body becomes a single step per
// iteration. The builder terminates because cur strictly increases and
// only unconditional transfers end a block.
func buildClosureBlock(code *bytecode.Code, p *bytecode.PCode, pc int32) (*closureBlock, int32, bool) {
	var prefix []closureMicro
	var cum []int64
	var width int64
	cur := pc
	n := int32(len(code.Instrs))
	for cur < n && width < maxClosureBlock {
		if h := p.Instrs[cur].H; bytecode.IsFused(h) {
			if mo, w := closureFusedMicro(h, p, cur); mo != nil {
				if h == bytecode.FusedIncGoto {
					// Unconditional inline final: the engine loop's
					// post-step charge covers the goto, width the iinc.
					width += int64(w - 1)
					return &closureBlock{prefix: prefix, cum: cum, width: width, last: mo}, cur + int32(w) - 1, false
				}
				width += int64(w)
				cum = append(cum, width)
				prefix = append(prefix, mo)
				cur += int32(w)
				continue
			}
			// Delegated-final shapes (load/getfield-then-...) compile per
			// original instruction below; their finals end the block.
		}
		op := code.Instrs[cur].Op
		if op.IsBranch() {
			mo := closureBranch(op, &p.Instrs[cur])
			if !op.IsConditionalBranch() {
				// Unconditional inline final (goto).
				if len(prefix) == 0 {
					// A lone goto gains nothing over its table handler.
					return nil, cur, false
				}
				return &closureBlock{prefix: prefix, cum: cum, width: width, last: mo}, cur, false
			}
			// Mid-block conditional branch: taken stops the step, not
			// taken continues into the fall-through below.
			width++
			cum = append(cum, width)
			prefix = append(prefix, mo)
			cur++
			continue
		}
		mo := closureMicroFor(op, &p.Instrs[cur])
		if mo == nil {
			// Delegated final (invoke, allocation, return, throw, ...).
			if len(prefix) == 0 {
				return nil, cur, !op.IsTerminator()
			}
			return &closureBlock{prefix: prefix, cum: cum, width: width, last: nil}, cur, !op.IsTerminator()
		}
		width++
		cum = append(cum, width)
		prefix = append(prefix, mo)
		cur++
	}
	if cur >= n {
		// The verifier guarantees control never falls off the end, so the
		// last instruction was a micro only if pc bounds were odd; drop it
		// and let the final table dispatch surface ErrPC if reached.
		if len(prefix) == 0 {
			return nil, cur - 1, false
		}
		k := len(prefix) - 1
		width = 0
		if k > 0 {
			width = cum[k-1]
		}
		return &closureBlock{prefix: prefix[:k], cum: cum[:k], width: width, last: nil}, cur - 1, false
	}
	// Width cap hit: delegate the instruction at cur as the final.
	return &closureBlock{prefix: prefix, cum: cum, width: width, last: nil}, cur, true
}

// closureFusedMicro compiles one fused superinstruction group (head at
// pc, followers in original form at pc+1..) into a single combined micro
// with every operand pre-bound and the intermediate stack traffic
// elided, mirroring the corresponding fused handler bit for bit. It
// returns the micro and the group width; (nil, 0) leaves delegated-final
// shapes to the per-instruction path. Combined micros cannot fail: every
// shape here is full-inline (non-throwing, no safepoint, no allocation).
// The compare-and-branch groups are mid-block micros (microStop when
// taken); iinc+goto is the builder's inline final.
func closureFusedMicro(h uint8, p *bytecode.PCode, pc int32) (closureMicro, int) {
	ins := p.Instrs
	switch h {
	case bytecode.FusedLLOpStore:
		a, b, opH, d := ins[pc].A, ins[pc+1].A, ins[pc+2].H, ins[pc+3].A
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.locals[d] = heap.IntVal(pureBinop(opH, f.locals[a].I, f.locals[b].I))
			f.pc += 4
			return microNext
		}, 4
	case bytecode.FusedLCOpStore:
		a, c, opH, d := ins[pc].A, ins[pc+1].I, ins[pc+2].H, ins[pc+3].A
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.locals[d] = heap.IntVal(pureBinop(opH, f.locals[a].I, c))
			f.pc += 4
			return microNext
		}, 4
	case bytecode.FusedLLOp:
		a, b, opH := ins[pc].A, ins[pc+1].A, ins[pc+2].H
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(heap.IntVal(pureBinop(opH, f.locals[a].I, f.locals[b].I)))
			f.pc += 3
			return microNext
		}, 3
	case bytecode.FusedLCOp:
		a, c, opH := ins[pc].A, ins[pc+1].I, ins[pc+2].H
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(heap.IntVal(pureBinop(opH, f.locals[a].I, c)))
			f.pc += 3
			return microNext
		}, 3
	case bytecode.FusedConstStore:
		v, d := heap.IntVal(ins[pc].I), ins[pc+1].A
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.locals[d] = v
			f.pc += 2
			return microNext
		}, 2
	case bytecode.FusedLLCmpBr:
		a, b := ins[pc].A, ins[pc+1].A
		cond := bytecode.Opcode(ins[pc+2].H)
		tgt, fallPC := ins[pc+2].A, pc+3
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			if intCmpCondition(cond, f.locals[a].I, f.locals[b].I) {
				f.pc = tgt
				return microStop
			}
			f.pc = fallPC
			return microNext
		}, 3
	case bytecode.FusedLCCmpBr:
		a, c := ins[pc].A, ins[pc+1].I
		cond := bytecode.Opcode(ins[pc+2].H)
		tgt, fallPC := ins[pc+2].A, pc+3
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			if intCmpCondition(cond, f.locals[a].I, c) {
				f.pc = tgt
				return microStop
			}
			f.pc = fallPC
			return microNext
		}, 3
	case bytecode.FusedIncGoto:
		slot, delta := ins[pc].A, int64(ins[pc].B)
		tgt := ins[pc+1].A
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			l := &f.locals[slot]
			l.I += delta
			l.Kind = classfile.KindInt
			f.pc = tgt
			return microStop
		}, 2
	}
	return nil, 0
}

// closureBranch compiles a branch micro: an unconditional goto is an
// inline block final (always microStop, charged by the engine loop's
// post-step charge); conditional branches are mid-block micros that stop
// the step only when taken.
func closureBranch(op bytecode.Opcode, in *bytecode.PInstr) closureMicro {
	tgt := in.A
	switch op {
	case bytecode.OpGoto:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.pc = tgt
			return microStop
		}
	case bytecode.OpIfEq, bytecode.OpIfNe, bytecode.OpIfLt, bytecode.OpIfLe,
		bytecode.OpIfGt, bytecode.OpIfGe:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			if intCondition(op, f.upop().I) {
				f.pc = tgt
				return microStop
			}
			f.pc++
			return microNext
		}
	case bytecode.OpIfICmpEq, bytecode.OpIfICmpNe, bytecode.OpIfICmpLt,
		bytecode.OpIfICmpLe, bytecode.OpIfICmpGt, bytecode.OpIfICmpGe:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			b := f.upop()
			a := f.upop()
			if intCmpCondition(op, a.I, b.I) {
				f.pc = tgt
				return microStop
			}
			f.pc++
			return microNext
		}
	case bytecode.OpIfACmpEq, bytecode.OpIfACmpNe:
		want := op == bytecode.OpIfACmpEq
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			b := f.upop()
			a := f.upop()
			if (a.R == b.R) == want {
				f.pc = tgt
				return microStop
			}
			f.pc++
			return microNext
		}
	default: // OpIfNull, OpIfNonNull
		want := op == bytecode.OpIfNull
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			if (f.upop().R == nil) == want {
				f.pc = tgt
				return microStop
			}
			f.pc++
			return microNext
		}
	}
}

// closureMicroFor compiles one non-branch instruction into a prefix
// micro, or returns nil for ops that must end the block (may throw,
// allocate, park, push/pop frames, or touch mode-specialized state).
func closureMicroFor(op bytecode.Opcode, in *bytecode.PInstr) closureMicro {
	switch op {
	case bytecode.OpNop:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.pc++
			return microNext
		}
	case bytecode.OpIConst:
		v := heap.IntVal(in.I)
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(v)
			f.pc++
			return microNext
		}
	case bytecode.OpFConst:
		v := heap.FloatVal(in.F)
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(v)
			f.pc++
			return microNext
		}
	case bytecode.OpAConstNull:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(heap.Null())
			f.pc++
			return microNext
		}
	case bytecode.OpPop:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.upop()
			f.pc++
			return microNext
		}
	case bytecode.OpDup:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(f.upeek())
			f.pc++
			return microNext
		}
	case bytecode.OpDupX1:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			a := f.upop()
			b := f.upop()
			f.push(a)
			f.push(b)
			f.push(a)
			f.pc++
			return microNext
		}
	case bytecode.OpSwap:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			a := f.upop()
			b := f.upop()
			f.push(a)
			f.push(b)
			f.pc++
			return microNext
		}
	case bytecode.OpILoad, bytecode.OpFLoad, bytecode.OpALoad:
		slot := in.A
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.push(f.locals[slot])
			f.pc++
			return microNext
		}
	case bytecode.OpIStore, bytecode.OpFStore, bytecode.OpAStore:
		slot := in.A
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.locals[slot] = f.upop()
			f.pc++
			return microNext
		}
	case bytecode.OpIInc:
		slot, delta := in.A, int64(in.B)
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			f.locals[slot].I += delta
			f.locals[slot].Kind = classfile.KindInt
			f.pc++
			return microNext
		}
	case bytecode.OpIAdd, bytecode.OpISub, bytecode.OpIMul,
		bytecode.OpIAnd, bytecode.OpIOr, bytecode.OpIXor,
		bytecode.OpIShl, bytecode.OpIShr, bytecode.OpIUshr:
		h := uint8(op)
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			b := f.upop()
			a := f.upop()
			f.push(heap.IntVal(pureBinop(h, a.I, b.I)))
			f.pc++
			return microNext
		}
	case bytecode.OpINeg:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			v := f.upop()
			f.push(heap.IntVal(-v.I))
			f.pc++
			return microNext
		}
	case bytecode.OpFAdd, bytecode.OpFSub, bytecode.OpFMul, bytecode.OpFDiv:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			b := f.upop()
			a := f.upop()
			f.push(heap.FloatVal(floatBinop(op, a.F, b.F)))
			f.pc++
			return microNext
		}
	case bytecode.OpFNeg:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			v := f.upop()
			f.push(heap.FloatVal(-v.F))
			f.pc++
			return microNext
		}
	case bytecode.OpFCmp:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			b := f.upop()
			a := f.upop()
			switch {
			case a.F < b.F:
				f.push(heap.IntVal(-1))
			case a.F > b.F:
				f.push(heap.IntVal(1))
			default:
				f.push(heap.IntVal(0))
			}
			f.pc++
			return microNext
		}
	case bytecode.OpI2F:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			v := f.upop()
			f.push(heap.FloatVal(float64(v.I)))
			f.pc++
			return microNext
		}
	case bytecode.OpF2I:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			v := f.upop()
			f.push(heap.IntVal(int64(v.F)))
			f.pc++
			return microNext
		}
	case bytecode.OpGetField:
		// Guarded: unresolved slot or null receiver bails (the table
		// handler resolves or throws with the identical message).
		fs := in.FS
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			slot := fs.Get()
			if slot < 0 {
				return microBail
			}
			recv := f.upeek()
			if recv.R == nil {
				return microBail
			}
			f.upop()
			f.push(recv.R.Fields[slot])
			f.pc++
			return microNext
		}
	case bytecode.OpPutField:
		fs := in.FS
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			slot := fs.Get()
			if slot < 0 {
				return microBail
			}
			s := f.stack
			recv := s[len(s)-2]
			if recv.R == nil {
				return microBail
			}
			v := f.upop()
			f.upop()
			if sp := &recv.R.Fields[slot]; vm.barrierOn(t) {
				vm.gcWriteSlot(t, sp, v)
			} else {
				*sp = v
			}
			f.pc++
			return microNext
		}
	case bytecode.OpArrayLength:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			v := f.upeek()
			if v.R == nil || !v.R.IsArray() {
				return microBail
			}
			f.upop()
			f.push(heap.IntVal(int64(len(v.R.Elems))))
			f.pc++
			return microNext
		}
	case bytecode.OpArrayLoad:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			s := f.stack
			idx := s[len(s)-1]
			arr := s[len(s)-2]
			if arr.R == nil || !arr.R.IsArray() || idx.I < 0 || idx.I >= int64(len(arr.R.Elems)) {
				return microBail
			}
			f.upop()
			f.upop()
			f.push(arr.R.Elems[idx.I])
			f.pc++
			return microNext
		}
	case bytecode.OpArrayStore:
		return func(vm *VM, t *Thread, f *Frame) microStatus {
			s := f.stack
			v := s[len(s)-1]
			idx := s[len(s)-2]
			arr := s[len(s)-3]
			if arr.R == nil || !arr.R.IsArray() || idx.I < 0 ||
				idx.I >= int64(len(arr.R.Elems)) || arr.R.Frozen() {
				return microBail
			}
			f.upop()
			f.upop()
			f.upop()
			if sp := &arr.R.Elems[idx.I]; vm.barrierOn(t) {
				vm.gcWriteSlot(t, sp, v)
			} else {
				*sp = v
			}
			f.pc++
			return microNext
		}
	}
	return nil
}
