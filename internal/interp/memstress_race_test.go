package interp_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// This file is the sharded-memory-subsystem companion of
// TestInlineCachePublicationRace: it hammers the per-shard allocation
// domains and the striped monitor table from >= 6 scheduler shards at
// once, through stop-the-world safepoints (admin-cycled accounting
// collections PLUS allocation-pressure collections forced by a small
// heap) and a mid-run World.Kill. Every isolate runs the same loop:
//
//   - allocate one object it keeps (bounded ring, so some allocations
//     survive each collection) and one array it drops (garbage churn
//     that forces GC-on-pressure);
//   - enter/exit the monitor of ONE object shared by every isolate —
//     cross-shard contention on a single stripe, exercising the
//     blockOnMonitor park path, the promote re-poll and (when the
//     victim dies while holding it) the kill path's force-release.
//
// The test runs under -race in CI. Assertions: the run completes (a
// lost force-release or a lost monitor wake-up would deadlock it),
// non-victim threads compute the exact expected result, their
// per-isolate byte accounts are identical (the loop is symmetric), and
// the post-run collection leaves the reservation counter exactly equal
// to the live bytes.

const (
	memStressIsolates = 8
	memStressIters    = 2000
	memStressKeep     = 64
)

// memStressClasses builds one isolate's bundle: run(shared, n) performs
// n iterations of keep-alloc + churn-alloc + shared-monitor section.
// Locals: 0 shared, 1 n, 2 i, 3 acc, 4 keep ring, 5 tmp.
func memStressClasses(prefix string) []*classfile.Class {
	main := classfile.NewClass(prefix + "/Main").
		Method("run", "(Ljava/lang/Object;I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(memStressKeep).NewArray("").AStore(4)
			a.Const(0).IStore(2)
			a.Const(0).IStore(3)
			a.Label("loop").ILoad(2).ILoad(1).IfICmpGe("done")
			// Kept allocation into the ring (survives collections).
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").
				AStore(5)
			a.ALoad(4).ILoad(2).Const(memStressKeep).IRem().ALoad(5).ArrayStore()
			// Dropped allocation (garbage churn -> GC pressure).
			a.Const(32).NewArray("").AStore(5)
			a.Null().AStore(5)
			// Cross-shard shared monitor section.
			a.ALoad(0).MonitorEnter()
			a.ILoad(3).Const(1).IAdd().IStore(3)
			a.ALoad(0).MonitorExit()
			a.IInc(2, 1).Goto("loop")
			a.Label("done").ILoad(3).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// TestShardedAllocMonitorStress is the -race stress: 8 isolate shards on
// 4 workers allocating through their domains and contending on one
// shared monitor, while an admin goroutine cycles accounting
// collections and kills one victim isolate mid-run.
func TestShardedAllocMonitorStress(t *testing.T) {
	for round := 0; round < 2; round++ {
		// Small heap: the churn forces frequent GC-on-pressure
		// collections from the workers themselves, on top of the admin
		// cycle below.
		vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 256 << 10})
		syslib.MustInstall(vm)
		objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
		if err != nil {
			t.Fatal(err)
		}

		var threads []*interp.Thread
		var isolates []*core.Isolate
		var victim *core.Isolate
		var shared *heap.Object
		for k := 0; k < memStressIsolates; k++ {
			iso, err := vm.NewIsolate(fmt.Sprintf("bundle%d", k))
			if err != nil {
				t.Fatal(err)
			}
			isolates = append(isolates, iso)
			if k == 0 {
				// The shared monitor object, charged to bundle0 and kept
				// alive by every thread's frame.
				shared, err = vm.AllocObjectIn(nil, objClass, iso)
				if err != nil {
					t.Fatal(err)
				}
			}
			if k == 1 {
				victim = iso
			}
			prefix := fmt.Sprintf("ms%d", k)
			if err := iso.Loader().DefineAll(memStressClasses(prefix)); err != nil {
				t.Fatal(err)
			}
			c, err := iso.Loader().Lookup(prefix + "/Main")
			if err != nil {
				t.Fatal(err)
			}
			m, err := c.LookupMethod("run", "(Ljava/lang/Object;I)I")
			if err != nil {
				t.Fatal(err)
			}
			th, err := vm.SpawnThread(prefix, iso, m,
				[]heap.Value{heap.RefVal(shared), heap.IntVal(memStressIters)})
			if err != nil {
				t.Fatal(err)
			}
			threads = append(threads, th)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			killed := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				vm.CollectGarbage(nil)
				if i == 2 && !killed {
					killed = true
					if err := vm.KillIsolate(nil, victim); err != nil {
						t.Errorf("kill: %v", err)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		res := sched.Run(vm, 4, 0)
		close(stop)
		wg.Wait()
		if !res.AllDone {
			t.Fatalf("round %d: run did not finish: %+v", round, res)
		}

		var wantBytes int64 = -1
		for k, th := range threads {
			if th.Err() != nil {
				t.Fatalf("round %d bundle%d: host error %v", round, k, th.Err())
			}
			if k == 1 {
				// The victim either finished before the kill landed or died
				// with the termination exception; both are legal.
				continue
			}
			if th.Failure() != nil {
				t.Fatalf("round %d bundle%d: guest failure %v", round, k, th.FailureString())
			}
			if th.Result().I != memStressIters {
				t.Fatalf("round %d bundle%d: result %d, want %d", round, k, th.Result().I, memStressIters)
			}
			// The loop is symmetric, so creator-charged byte accounts of
			// the surviving isolates must be identical — batched charging
			// across domains, collections and kill safepoints loses
			// nothing.
			b := vm.SnapshotOf(isolates[k]).AllocatedBytes
			if k == 0 {
				// bundle0 additionally owns the shared monitor object.
				b -= shared.Size()
			}
			if wantBytes == -1 {
				wantBytes = b
			} else if b != wantBytes {
				t.Fatalf("round %d bundle%d: allocated bytes %d, want %d", round, k, b, wantBytes)
			}
		}

		// Reservation-counter soundness: after a final collection the
		// shared atomic counter equals exactly the live bytes.
		final := vm.CollectGarbage(nil)
		if used := vm.Heap().Used(); used != final.LiveBytes {
			t.Fatalf("round %d: used %d != live %d after final collection", round, used, final.LiveBytes)
		}
		if vm.Heap().GCCount() < 3 {
			t.Fatalf("round %d: expected several collections, got %d", round, vm.Heap().GCCount())
		}

		// Kill-then-recycle accounting regression: the disposed victim's
		// slot goes back through FreeIsolate, and the isolate that reuses
		// the ID must start from zero — a stale account, stale allocation
		// stats, or a stale GCActivations counter would bill the new
		// tenant for the dead one's history. A fast run may finish before
		// the admin's mid-run kill lands, so make sure the victim is dead
		// before demanding disposal.
		if victim.State() == core.StateLive {
			if err := vm.KillIsolate(nil, victim); err != nil {
				t.Fatalf("round %d: post-run kill: %v", round, err)
			}
			vm.CollectGarbage(nil)
		}
		if !victim.Disposed() {
			t.Fatalf("round %d: victim not disposed after drain + collection", round)
		}
		victimID := victim.ID()
		if err := vm.FreeIsolate(victim); err != nil {
			t.Fatalf("round %d: free victim: %v", round, err)
		}
		reborn, err := vm.NewIsolate("reborn")
		if err != nil {
			t.Fatal(err)
		}
		if reborn.ID() != victimID {
			t.Fatalf("round %d: recycled isolate got ID %d, want victim's %d", round, reborn.ID(), victimID)
		}
		if acct := reborn.Account().Numbers(); acct != (core.Account{}) {
			t.Fatalf("round %d: recycled isolate inherits account %+v", round, acct)
		}
		if as := vm.Heap().AllocStatsFor(reborn.ID()); as != (heap.AllocStats{}) {
			t.Fatalf("round %d: recycled isolate inherits alloc stats %+v", round, as)
		}
		// The recycled slot must be fully serviceable: run the same
		// workload in it and check both the result and that charging
		// starts from a clean slate.
		const rebornIters = 200
		if err := reborn.Loader().DefineAll(memStressClasses("msr")); err != nil {
			t.Fatal(err)
		}
		rc, err := reborn.Loader().Lookup("msr/Main")
		if err != nil {
			t.Fatal(err)
		}
		rm, err := rc.LookupMethod("run", "(Ljava/lang/Object;I)I")
		if err != nil {
			t.Fatal(err)
		}
		v, rth, err := vm.CallRoot(reborn, rm,
			[]heap.Value{heap.RefVal(shared), heap.IntVal(rebornIters)}, 0)
		if err != nil || rth.Failure() != nil {
			t.Fatalf("round %d: reborn run: %v / %s", round, err, rth.FailureString())
		}
		if v.I != rebornIters {
			t.Fatalf("round %d: reborn result %d, want %d", round, v.I, rebornIters)
		}
		acct := reborn.Account().Numbers()
		if acct.Instructions == 0 || acct.ThreadsCreated == 0 {
			t.Fatalf("round %d: reborn account not charged: %+v", round, acct)
		}
		if as := vm.Heap().AllocStatsFor(reborn.ID()); as.Objects == 0 || as.Bytes == 0 {
			t.Fatalf("round %d: reborn allocations not charged: %+v", round, as)
		}
		after := vm.CollectGarbage(nil)
		if used := vm.Heap().Used(); used != after.LiveBytes {
			t.Fatalf("round %d: used %d != live %d after recycle round", round, used, after.LiveBytes)
		}
	}
}
