package interp_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// This file is the snapshot-subsystem companion of
// TestShardedAllocMonitorStress: an admin goroutine captures warmed-
// isolate snapshots, clones them, fingerprints and kills the clones and
// recycles their slots — all while 8 tenant shards keep mutating their
// per-isolate statics through the SATB write barrier on 4 workers, with
// an InterruptThread storm and a mid-run victim kill layered on top. The
// small heap keeps allocation-pressure collections in flight, so capture
// safepoints land inside incremental marking cycles.
//
// The test runs under -race in CI. Assertions: the run completes, every
// surviving tenant computes the exact closed-form result (captures are
// observers — a capture that perturbed a static, lost a barrier record,
// or wedged a safepoint would show up here), snapshots and clones were
// actually produced, clone slots were recycled, and the final collection
// leaves the reservation counter exactly equal to the live bytes.

const (
	snapStressIsolates = 8
	snapStressIters    = 2000
	snapStressKeep     = 32
	snapStressAdmin    = 24 // capture/clone rounds before the admin goes GC-only
)

// snapStressClasses builds the shared template bundle. Statics are
// per-isolate (mirrors), so one definition serves every tenant. run(I)I
// hammers all three static shapes the snapshot flattener walks: an int
// accumulator, a ref slot overwritten every iteration (SATB records the
// old value), and a kept ring of objects stored through the array
// barrier. No string literals: tenants are capture victims and later
// kill victims, and pooled strings would pin to them.
// Locals: 0 n, 1 i, 2 tmp.
func snapStressClasses() []*classfile.Class {
	const cn = "ss/Main"
	main := classfile.NewClass(cn).
		StaticField("sum", classfile.KindInt).
		StaticField("slot", classfile.KindRef).
		StaticField("ring", classfile.KindRef).
		Method("run", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(snapStressKeep).NewArray("").PutStatic(cn, "ring")
			a.Const(0).IStore(1)
			a.Label("loop").ILoad(1).ILoad(0).IfICmpGe("done")
			// Int static read-modify-write.
			a.GetStatic(cn, "sum").ILoad(1).IAdd().PutStatic(cn, "sum")
			// Ref static overwrite: the old array dies, the SATB barrier
			// must record it if a cycle is marking.
			a.Const(16).NewArray("").PutStatic(cn, "slot")
			// Kept allocation through the array-store barrier.
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").
				AStore(2)
			a.GetStatic(cn, "ring").ILoad(1).Const(snapStressKeep).IRem().
				ALoad(2).ArrayStore()
			a.IInc(1, 1).Goto("loop")
			a.Label("done").GetStatic(cn, "sum").IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// TestSnapshotCaptureUnderLoad: capture/clone/kill/recycle churn racing
// 8 static-mutating tenant shards, an interrupt storm, and a victim kill.
func TestSnapshotCaptureUnderLoad(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 4 << 20})
	syslib.MustInstall(vm)
	tl := vm.Registry().NewLoader("ss-template")
	if err := tl.DefineAll(snapStressClasses()); err != nil {
		t.Fatal(err)
	}

	var threads []*interp.Thread
	var tenants []*core.Isolate
	for k := 0; k < snapStressIsolates; k++ {
		iso, err := vm.NewIsolate(fmt.Sprintf("tenant%d", k))
		if err != nil {
			t.Fatal(err)
		}
		iso.Loader().AddDelegate(tl)
		tenants = append(tenants, iso)
		c, err := iso.Loader().Lookup("ss/Main")
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.LookupMethod("run", "(I)I")
		if err != nil {
			t.Fatal(err)
		}
		th, err := vm.SpawnThread(fmt.Sprintf("ss%d", k), iso, m,
			[]heap.Value{heap.IntVal(snapStressIters)})
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	victim := tenants[1]

	var captures, clones, recycled int
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		killed := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i < snapStressAdmin {
				target := tenants[i%len(tenants)]
				snap, err := vm.CaptureSnapshot(target, interp.SnapshotOptions{})
				switch {
				case err != nil && !target.Killed():
					t.Errorf("capture %s: %v", target.Name(), err)
				case err == nil:
					captures++
					if snap.NumClasses() == 0 {
						t.Errorf("capture %s: empty snapshot", target.Name())
					}
					clone, cerr := vm.CloneIsolate(snap, fmt.Sprintf("ssclone%d", i))
					if cerr != nil {
						t.Errorf("clone %d: %v", i, cerr)
					} else {
						clones++
						_ = vm.ReachabilityFingerprint(clone)
						if kerr := vm.KillIsolate(nil, clone); kerr != nil {
							t.Errorf("kill clone %d: %v", i, kerr)
						}
						vm.CollectGarbage(nil)
						if clone.Disposed() {
							if ferr := vm.FreeIsolate(clone); ferr != nil {
								t.Errorf("free clone %d: %v", i, ferr)
							} else {
								recycled++
							}
						}
					}
					snap.Release()
				}
			} else {
				vm.CollectGarbage(nil)
			}
			if i == 4 && !killed {
				killed = true
				if err := vm.KillIsolate(nil, victim); err != nil {
					t.Errorf("kill victim: %v", err)
				}
			}
			if i%3 == 0 {
				for _, th := range threads {
					_ = vm.InterruptThread(th)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	res := sched.Run(vm, 4, 0)
	close(stop)
	wg.Wait()
	if !res.AllDone {
		t.Fatalf("run did not finish: %+v", res)
	}

	want := int64(snapStressIters) * (snapStressIters - 1) / 2
	for k, th := range threads {
		if th.Err() != nil {
			t.Fatalf("tenant%d: host error %v", k, th.Err())
		}
		if k == 1 {
			continue // the kill victim may have died mid-loop; both fates are legal
		}
		if th.Failure() != nil {
			t.Fatalf("tenant%d: guest failure %v", k, th.FailureString())
		}
		if th.Result().I != want {
			t.Fatalf("tenant%d: result %d, want %d", k, th.Result().I, want)
		}
	}
	if captures == 0 || clones == 0 {
		t.Fatalf("admin produced no snapshot traffic: captures=%d clones=%d", captures, clones)
	}
	if recycled == 0 {
		t.Fatalf("no clone slots were recycled (captures=%d clones=%d)", captures, clones)
	}
	final := vm.CollectGarbage(nil)
	if used := vm.Heap().Used(); used != final.LiveBytes {
		t.Fatalf("used %d != live %d after final collection", used, final.LiveBytes)
	}
	if vm.Heap().GCCount() == 0 {
		t.Fatal("expected collections during the run")
	}
}
