package interp_test

import (
	"os"
	"path/filepath"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
	"ijvm/internal/textasm"
)

// execTrace is everything the dispatch oracle compares between the
// quickened interpreter and the seed-style switch interpreter: the
// guest-visible result, the captured output, and the full accounting
// surface (per-isolate instruction counts, total instructions, the
// virtual clock, CPU samples).
type execTrace struct {
	result     int64
	failure    string
	output     string
	total      int64
	clock      int64
	perIsolate map[string][2]int64 // name -> {Instructions, CPUSamples}
}

// runProgramTrace assembles and runs one .jasm program entry point and
// captures its execution trace.
func runProgramTrace(t *testing.T, mode core.Mode, disablePrepare bool, file, class, method, desc string, args []heap.Value) execTrace {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("../../examples/programs", file))
	if err != nil {
		t.Fatal(err)
	}
	classes, err := textasm.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	vm := interp.NewVM(interp.Options{Mode: mode, DisablePrepare: disablePrepare})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(classes); err != nil {
		t.Fatal(err)
	}
	c, err := iso.Loader().Lookup(class)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.LookupMethod(method, desc)
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, args, 50_000_000)
	if err != nil {
		t.Fatalf("host error: %v", err)
	}
	return traceOf(vm, v, th)
}

func traceOf(vm *interp.VM, v heap.Value, th *interp.Thread) execTrace {
	tr := execTrace{
		result:     v.I,
		failure:    th.FailureString(),
		output:     vm.Output(),
		total:      vm.TotalInstructions(),
		clock:      vm.Clock(),
		perIsolate: make(map[string][2]int64),
	}
	for _, s := range vm.Snapshots() {
		tr.perIsolate[s.IsolateName] = [2]int64{s.Instructions, s.CPUSamples}
	}
	return tr
}

func assertTraceEqual(t *testing.T, name string, prepared, seed execTrace) {
	t.Helper()
	if prepared.result != seed.result {
		t.Errorf("%s: result %d (prepared) != %d (seed)", name, prepared.result, seed.result)
	}
	if prepared.failure != seed.failure {
		t.Errorf("%s: failure %q (prepared) != %q (seed)", name, prepared.failure, seed.failure)
	}
	if prepared.output != seed.output {
		t.Errorf("%s: output mismatch:\nprepared: %q\nseed:     %q", name, prepared.output, seed.output)
	}
	if prepared.total != seed.total {
		t.Errorf("%s: total instructions %d (prepared) != %d (seed)", name, prepared.total, seed.total)
	}
	if prepared.clock != seed.clock {
		t.Errorf("%s: clock %d (prepared) != %d (seed)", name, prepared.clock, seed.clock)
	}
	if len(prepared.perIsolate) != len(seed.perIsolate) {
		t.Errorf("%s: isolate count %d (prepared) != %d (seed)", name, len(prepared.perIsolate), len(seed.perIsolate))
	}
	for iso, p := range prepared.perIsolate {
		s, ok := seed.perIsolate[iso]
		if !ok {
			t.Errorf("%s: isolate %s missing from seed run", name, iso)
			continue
		}
		if p != s {
			t.Errorf("%s: isolate %s {instructions, samples} = %v (prepared) != %v (seed)", name, iso, p, s)
		}
	}
}

// TestDispatchOraclePrograms runs every shipped .jasm program through the
// quickened (prepared) interpreter and the seed-style switch interpreter
// and asserts byte-identical results and accounting: same values, same
// output, same per-isolate instruction counts, same virtual clock. This
// is the instruction-count determinism guarantee the quickening pass
// must preserve — budget exhaustion and the §4.3 detectors fire at
// identical points on both paths.
func TestDispatchOraclePrograms(t *testing.T) {
	programs := []struct {
		file   string
		class  string
		method string
		desc   string
		args   []heap.Value
	}{
		{"sieve.jasm", "demo/Sieve", "run", "(I)I", []heap.Value{heap.IntVal(1000)}},
		{"sieve.jasm", "demo/Sieve", "run", "(I)I", []heap.Value{heap.IntVal(100)}},
		{"quicksort.jasm", "demo/Quicksort", "run", "(I)I", []heap.Value{heap.IntVal(300)}},
		{"hello.jasm", "demo/Hello", "main", "()V", nil},
	}
	for _, p := range programs {
		for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
			name := p.file + "/" + mode.String()
			t.Run(name, func(t *testing.T) {
				prepared := runProgramTrace(t, mode, false, p.file, p.class, p.method, p.desc, p.args)
				seed := runProgramTrace(t, mode, true, p.file, p.class, p.method, p.desc, p.args)
				assertTraceEqual(t, name, prepared, seed)
			})
		}
	}
}

// TestDispatchOracleControlFlow drives the paths the shipped programs do
// not reach — exceptions with handlers, monitors, statics with <clinit>
// re-execution, virtual dispatch, and a budget-exhausted run — through
// both dispatch modes and asserts identical traces.
func TestDispatchOracleControlFlow(t *testing.T) {
	mkClasses := func() []*classfile.Class {
		helper := classfile.NewClass("ora/Helper").
			StaticField("seed", classfile.KindInt).
			Field("v", classfile.KindInt).
			Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.Const(7).PutStatic("ora/Helper", "seed").Return()
			}).
			Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
				a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
			}).
			Method("bump", "(I)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
				a.ALoad(0).ALoad(0).GetField("ora/Helper", "v").ILoad(1).IAdd().PutField("ora/Helper", "v")
				a.ALoad(0).GetField("ora/Helper", "v").IReturn()
			}).MustBuild()
		main := classfile.NewClass("ora/Main").
			Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				// sum = clinit'd static; loop calling bump virtually; a
				// caught division by zero; monitorenter/exit; throw/catch
				// across a frame.
				a.GetStatic("ora/Helper", "seed").IStore(1) // sum = 7
				a.New("ora/Helper").Dup().InvokeSpecial("ora/Helper", classfile.InitName, "()V").AStore(2)
				a.Const(0).IStore(3)
				a.Label("loop")
				a.ILoad(3).ILoad(0).IfICmpGe("after")
				a.ALoad(2).ILoad(3).InvokeVirtual("ora/Helper", "bump", "(I)I").IStore(1)
				a.IInc(3, 1).Goto("loop")
				a.Label("after")
				a.ALoad(2).MonitorEnter()
				a.ALoad(2).MonitorExit()
				a.Label("try")
				a.ILoad(1).Const(0).IDiv().IStore(1)
				a.Label("endtry")
				a.Goto("done")
				a.Label("catch")
				a.Pop().IInc(1, 1000)
				a.Label("done")
				a.ILoad(1).IReturn()
				a.Handler("try", "endtry", "catch", "java/lang/ArithmeticException")
			}).MustBuild()
		return []*classfile.Class{helper, main}
	}

	runOnce := func(t *testing.T, disablePrepare bool, budget int64) execTrace {
		t.Helper()
		vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, DisablePrepare: disablePrepare})
		syslib.MustInstall(vm)
		iso, err := vm.NewIsolate("main")
		if err != nil {
			t.Fatal(err)
		}
		if err := iso.Loader().DefineAll(mkClasses()); err != nil {
			t.Fatal(err)
		}
		c, err := iso.Loader().Lookup("ora/Main")
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.LookupMethod("run", "(I)I")
		if err != nil {
			t.Fatal(err)
		}
		th, err := vm.SpawnThread("oracle", iso, m, []heap.Value{heap.IntVal(50)})
		if err != nil {
			t.Fatal(err)
		}
		_ = vm.RunUntil(th, budget)
		return traceOf(vm, th.Result(), th)
	}

	for _, budget := range []int64{0, 333} { // unlimited and budget-exhausted mid-run
		prepared := runOnce(t, false, budget)
		seed := runOnce(t, true, budget)
		assertTraceEqual(t, "controlflow", prepared, seed)
	}
}

// TestSleepDeadlineExactUnderBatching pins the virtual-clock semantics
// of the batched sequential engine: a timed sleep parked mid-quantum
// must wake exactly as under the seed's per-instruction clock
// publication (VM.NowTicks compensates for the pending batch when the
// deadline is computed). The invariant: a single-threaded run that
// sleeps once for d ticks ends with Clock == TotalInstructions + d - 1,
// independent of where inside the quantum the sleep lands and of the
// dispatch mode.
func TestSleepDeadlineExactUnderBatching(t *testing.T) {
	const d = 100
	for _, disablePrepare := range []bool{false, true} {
		for _, pad := range []int64{5, 600} { // sleep early vs. mid-quantum
			vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, DisablePrepare: disablePrepare})
			syslib.MustInstall(vm)
			iso, err := vm.NewIsolate("main")
			if err != nil {
				t.Fatal(err)
			}
			c := classfile.NewClass("clk/Main").
				Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
					a.Const(0).IStore(1)
					a.Label("loop")
					a.ILoad(1).ILoad(0).IfICmpGe("done")
					a.IInc(1, 1).Goto("loop")
					a.Label("done")
					a.Const(d).InvokeStatic("java/lang/Thread", "sleep", "(I)V")
					a.ILoad(1).IReturn()
				}).MustBuild()
			if err := iso.Loader().Define(c); err != nil {
				t.Fatal(err)
			}
			m, err := c.LookupMethod("run", "(I)I")
			if err != nil {
				t.Fatal(err)
			}
			if _, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(pad)}, 1_000_000); err != nil || th.Failure() != nil {
				t.Fatalf("run: %v / %v", err, th.FailureString())
			}
			if got := vm.Clock() - vm.TotalInstructions(); got != d-1 {
				t.Errorf("seed=%v pad=%d: clock-total = %d, want %d (sleep deadline drifted under batching)",
					disablePrepare, pad, got, d-1)
			}
		}
	}
}

// TestVoidReturnFromValueMethod pins the lying-descriptor guard: a
// callee declared ()I whose body is a bare void return passes
// structural validation, but callers (and the prepared verifier) size
// their stacks from the descriptor. Both dispatch modes must terminate
// the offending thread with the same host error — the prepared caller
// must never reach an unchecked pop on the missing value (which would
// panic the whole VM on guest-supplied bytecode).
func TestVoidReturnFromValueMethod(t *testing.T) {
	var errs []string
	for _, disablePrepare := range []bool{false, true} {
		vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, DisablePrepare: disablePrepare})
		syslib.MustInstall(vm)
		iso, err := vm.NewIsolate("main")
		if err != nil {
			t.Fatal(err)
		}
		bad := classfile.NewClass("rk/Bad").
			Method("bad", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.Return() // void return from a ()I method
			}).MustBuild()
		main := classfile.NewClass("rk/Main").
			Method("run", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.InvokeStatic("rk/Bad", "bad", "()I").IReturn()
			}).MustBuild()
		if err := iso.Loader().DefineAll([]*classfile.Class{bad, main}); err != nil {
			t.Fatal(err)
		}
		m, err := main.LookupMethod("run", "()I")
		if err != nil {
			t.Fatal(err)
		}
		_, th, err := vm.CallRoot(iso, m, nil, 100_000)
		if err == nil || th == nil || th.Err() == nil {
			t.Fatalf("seed=%v: expected a host error for the lying descriptor, got err=%v", disablePrepare, err)
		}
		errs = append(errs, th.Err().Error())
	}
	if errs[0] != errs[1] {
		t.Fatalf("dispatch modes disagree on the error: %q (prepared) vs %q (seed)", errs[0], errs[1])
	}
}

// TestPendingArgsAreGCRoots proves in-flight invocation arguments
// survive a collection triggered during call setup. The scenario: the
// heap is filled to the brim, then a static synchronized method is
// invoked with a finalizable object as its only argument — allocating
// the per-isolate Class object for the monitor triggers a GC while the
// argument lives only in the pending-args window (the caller's stack is
// already truncated). The argument must be treated as a root: it must
// not be swept and its finalizer must not run.
func TestPendingArgsAreGCRoots(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 256 << 10})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	fin := classfile.NewClass("fin/F").
		StaticField("count", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("finalize", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic("fin/F", "count").Const(1).IAdd().PutStatic("fin/F", "count").Return()
		}).MustBuild()
	target := classfile.NewClass("tgt/K").
		Method("m", "(Ljava/lang/Object;)I", classfile.FlagStatic|classfile.FlagSynchronized,
			func(a *bytecode.Assembler) {
				a.ALoad(0).IfNull("gone")
				a.Const(1).IReturn()
				a.Label("gone")
				a.Const(0).IReturn()
			}).MustBuild()
	if err := iso.Loader().DefineAll([]*classfile.Class{fin, target}); err != nil {
		t.Fatal(err)
	}
	arg, err := vm.AllocObjectIn(nil, fin, iso)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the heap completely with unreferenced garbage so the next
	// allocation (the Class object of tgt/K, for the synchronized-static
	// monitor) must collect.
	objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := vm.Heap().AllocObject(objClass, iso.ID()); err != nil {
			break
		}
	}
	m, err := target.LookupMethod("m", "(Ljava/lang/Object;)I")
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.RefVal(arg)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("call: %v / %v", err, th.FailureString())
	}
	if v.I != 1 {
		t.Fatalf("m returned %d, want 1", v.I)
	}
	if vm.Heap().GCCount() == 0 {
		t.Fatal("scenario did not trigger a collection; the test lost its teeth")
	}
	if got := iso.Account().FinalizersRun.Load(); got != 0 {
		t.Fatalf("finalizer ran %d times on a live in-flight argument", got)
	}
}

// TestPreparedFallback proves a method the verifier rejects (conflicting
// stack depths at a merge point) still executes correctly through the
// reference switch path while prepared dispatch stays enabled for the
// rest of the VM.
func TestPreparedFallback(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	// The two arms reach "merge" with different stack depths (2 vs 1).
	// Runtime behavior is still well-defined — ireturn consumes the top
	// value and the frame discards the rest — but the dataflow cannot
	// assign one depth, so the method must fall back to checked dispatch.
	c := define(t, iso, classfile.NewClass("fb/Merge").
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ILoad(0).IfEq("small")
			a.Const(99).Const(3).Goto("merge") // depth 2: [99, 3]
			a.Label("small")
			a.Const(5) // depth 1: [5]
			a.Label("merge")
			a.IReturn()
		}).MustBuild())
	m := findMethod(t, c, "run")
	for arg, want := range map[int64]int64{1: 3, 0: 5} {
		v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 100_000)
		if err != nil || th.Failure() != nil {
			t.Fatalf("run(%d): %v / %v", arg, err, th.FailureString())
		}
		if v.I != want {
			t.Fatalf("run(%d) = %d, want %d", arg, v.I, want)
		}
	}
	if p := m.Code.Prepared(bytecode.PModeIsolated); p == nil || len(p.Instrs) != 0 {
		t.Fatalf("expected the unpreparable sentinel, got %+v", p)
	}
}
