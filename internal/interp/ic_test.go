package interp_test

import (
	"fmt"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// icSiteVM builds a VM with a Base + k-impl hierarchy and a driver whose
// single invokevirtual site dispatches over all k receiver classes
// round-robin (k must be a power of two). It returns the VM, isolate and
// driver method.
func icSiteVM(t *testing.T, k int, opts interp.Options) (*interp.VM, *core.Isolate, *classfile.Method) {
	t.Helper()
	vm := interp.NewVM(opts)
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	classes := icHierarchy("icb/Base", k)
	driver := classfile.NewClass("icb/Driver").
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// receivers in an array local; one call site, receiver chosen
			// by i & (k-1).
			a.Const(int64(k)).NewArray("").AStore(1)
			for i := 0; i < k; i++ {
				a.ALoad(1).Const(int64(i))
				a.New(icImplName("icb/Base", i)).Dup().
					InvokeSpecial(icImplName("icb/Base", i), classfile.InitName, "()V")
				a.ArrayStore()
			}
			a.Const(0).IStore(2) // acc
			a.Const(0).IStore(3) // i
			a.Label("loop")
			a.ILoad(3).ILoad(0).IfICmpGe("done")
			a.ALoad(1).ILoad(3).Const(int64(k - 1)).IAnd().ArrayLoad()
			a.ILoad(2).InvokeVirtual("icb/Base", "f", "(I)I").IStore(2)
			a.IInc(3, 1).Goto("loop")
			a.Label("done").ILoad(2).IReturn()
		}).MustBuild()
	if err := iso.Loader().DefineAll(append(classes, driver)); err != nil {
		t.Fatal(err)
	}
	c, err := iso.Loader().Lookup("icb/Driver")
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	return vm, iso, m
}

func icImplName(base string, i int) string { return fmt.Sprintf("%s%d", base[:len(base)-4]+"Impl", i) }

// icHierarchy builds Base plus k subclasses overriding f(I)I.
func icHierarchy(base string, k int) []*classfile.Class {
	init := func(super string) func(a *bytecode.Assembler) {
		return func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(super, classfile.InitName, "()V").Return()
		}
	}
	out := []*classfile.Class{classfile.NewClass(base).
		Method(classfile.InitName, "()V", 0, init(classfile.ObjectClassName)).
		Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
			a.ILoad(1).Const(1).IAdd().IReturn()
		}).MustBuild()}
	for i := 0; i < k; i++ {
		add := int64(i + 2)
		out = append(out, classfile.NewClass(icImplName(base, i)).Super(base).
			Method(classfile.InitName, "()V", 0, init(base)).
			Method("f", "(I)I", 0, func(a *bytecode.Assembler) {
				a.ILoad(1).Const(add).IAdd().IReturn()
			}).MustBuild())
	}
	return out
}

// icSiteLine digs the single invokevirtual site's cache line out of the
// driver's prepared form.
func icSiteLine(t *testing.T, m *classfile.Method, mode int) *bytecode.ICLine {
	t.Helper()
	p := m.Code.Prepared(mode)
	if p == nil {
		t.Fatal("driver was not prepared")
	}
	for i := range p.Instrs {
		if p.Instrs[i].IC != nil {
			return p.Instrs[i].IC.Line()
		}
	}
	t.Fatal("no inline-cached site in prepared driver")
	return nil
}

// expectedICSum mirrors the driver's guest computation in Go.
func expectedICSum(k int, n int64) int64 {
	var acc int64
	for i := int64(0); i < n; i++ {
		acc += int64(int(i)&(k-1)) + 2
	}
	return acc
}

// TestInlineCacheStates drives one call site through the monomorphic,
// polymorphic and megamorphic states and checks both the cached line
// shape and the guest results.
func TestInlineCacheStates(t *testing.T) {
	cases := []struct {
		k        int
		wantN    int
		wantMega bool
	}{
		{1, 1, false},                        // monomorphic
		{bytecode.ICMaxEntries, 4, false},    // full polymorphic
		{2 * bytecode.ICMaxEntries, 0, true}, // megamorphic marker
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("k=%d", tc.k), func(t *testing.T) {
			vm, iso, m := icSiteVM(t, tc.k, interp.Options{Mode: core.ModeIsolated})
			const n = 64
			v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(n)}, 1_000_000)
			if err != nil || th.Failure() != nil {
				t.Fatalf("run: %v / %v", err, th.FailureString())
			}
			if want := expectedICSum(tc.k, n); v.I != want {
				t.Fatalf("result %d, want %d", v.I, want)
			}
			line := icSiteLine(t, m, bytecode.PModeIsolated)
			if line == nil {
				t.Fatal("site has no published cache line")
			}
			if line.N != tc.wantN || line.Mega != tc.wantMega {
				t.Fatalf("line {N:%d Mega:%v}, want {N:%d Mega:%v}",
					line.N, line.Mega, tc.wantN, tc.wantMega)
			}
		})
	}
}

// TestInlineCacheDisabled checks the ablation switch: prepared dispatch
// still runs, results match, and the site's cache stays cold.
func TestInlineCacheDisabled(t *testing.T) {
	vm, iso, m := icSiteVM(t, 2, interp.Options{Mode: core.ModeIsolated, DisableInlineCaches: true})
	const n = 32
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(n)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("run: %v / %v", err, th.FailureString())
	}
	if want := expectedICSum(2, n); v.I != want {
		t.Fatalf("result %d, want %d", v.I, want)
	}
	if line := icSiteLine(t, m, bytecode.PModeIsolated); line != nil {
		t.Fatalf("inline cache populated despite DisableInlineCaches: %+v", line)
	}
}
