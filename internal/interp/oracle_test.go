package interp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// exprNode is a random integer expression with a Go-side oracle value.
type exprNode struct {
	emit func(a *bytecode.Assembler)
	val  int64
}

// genExpr builds a random expression tree of bounded depth over two
// int parameters.
func genExpr(r *rand.Rand, depth int, p0, p1 int64) exprNode {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			c := int64(r.Intn(201) - 100)
			return exprNode{func(a *bytecode.Assembler) { a.Const(c) }, c}
		case 1:
			return exprNode{func(a *bytecode.Assembler) { a.ILoad(0) }, p0}
		default:
			return exprNode{func(a *bytecode.Assembler) { a.ILoad(1) }, p1}
		}
	}
	left := genExpr(r, depth-1, p0, p1)
	right := genExpr(r, depth-1, p0, p1)
	type binop struct {
		op   bytecode.Opcode
		eval func(a, b int64) (int64, bool)
	}
	ops := []binop{
		{bytecode.OpIAdd, func(a, b int64) (int64, bool) { return a + b, true }},
		{bytecode.OpISub, func(a, b int64) (int64, bool) { return a - b, true }},
		{bytecode.OpIMul, func(a, b int64) (int64, bool) { return a * b, true }},
		{bytecode.OpIAnd, func(a, b int64) (int64, bool) { return a & b, true }},
		{bytecode.OpIOr, func(a, b int64) (int64, bool) { return a | b, true }},
		{bytecode.OpIXor, func(a, b int64) (int64, bool) { return a ^ b, true }},
		{bytecode.OpIDiv, func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}},
		{bytecode.OpIRem, func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}},
		{bytecode.OpIShl, func(a, b int64) (int64, bool) { return a << (uint64(b) & 63), true }},
	}
	for {
		op := ops[r.Intn(len(ops))]
		v, ok := op.eval(left.val, right.val)
		if !ok {
			// Avoid division by zero: re-roll the operator.
			continue
		}
		emitOp := op.op
		return exprNode{
			emit: func(a *bytecode.Assembler) {
				left.emit(a)
				right.emit(a)
				a.Nop() // exercise pc handling between operands
				switch emitOp {
				case bytecode.OpIAdd:
					a.IAdd()
				case bytecode.OpISub:
					a.ISub()
				case bytecode.OpIMul:
					a.IMul()
				case bytecode.OpIAnd:
					a.IAnd()
				case bytecode.OpIOr:
					a.IOr()
				case bytecode.OpIXor:
					a.IXor()
				case bytecode.OpIDiv:
					a.IDiv()
				case bytecode.OpIRem:
					a.IRem()
				case bytecode.OpIShl:
					a.IShl()
				}
			},
			val: v,
		}
	}
}

// TestQuickExpressionOracle compiles random integer expressions to
// bytecode and checks the interpreter agrees with the host-side oracle,
// in both modes.
func TestQuickExpressionOracle(t *testing.T) {
	classCounter := 0
	fn := func(seed int64, p0raw, p1raw int16) bool {
		r := rand.New(rand.NewSource(seed))
		p0, p1 := int64(p0raw), int64(p1raw)
		expr := genExpr(r, 4, p0, p1)

		for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
			vm := interp.NewVM(interp.Options{Mode: mode})
			if err := syslib.Install(vm); err != nil {
				return false
			}
			iso, err := vm.NewIsolate("main")
			if err != nil {
				return false
			}
			classCounter++
			c := classfile.NewClass("q/Expr").
				Method("run", "(II)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
					expr.emit(a)
					a.IReturn()
				}).MustBuild()
			if err := iso.Loader().Define(c); err != nil {
				return false
			}
			m, err := c.LookupMethod("run", "(II)I")
			if err != nil {
				return false
			}
			v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(p0), heap.IntVal(p1)}, 1_000_000)
			if err != nil || th.Failure() != nil {
				return false
			}
			if v.I != expr.val {
				t.Logf("seed %d mode %v: got %d, oracle %d", seed, mode, v.I, expr.val)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBranchOracle compiles random comparison chains and checks
// branch semantics against the oracle.
func TestQuickBranchOracle(t *testing.T) {
	type cmpCase struct {
		op   bytecode.Opcode
		eval func(a, b int64) bool
	}
	cases := []cmpCase{
		{bytecode.OpIfICmpEq, func(a, b int64) bool { return a == b }},
		{bytecode.OpIfICmpNe, func(a, b int64) bool { return a != b }},
		{bytecode.OpIfICmpLt, func(a, b int64) bool { return a < b }},
		{bytecode.OpIfICmpLe, func(a, b int64) bool { return a <= b }},
		{bytecode.OpIfICmpGt, func(a, b int64) bool { return a > b }},
		{bytecode.OpIfICmpGe, func(a, b int64) bool { return a >= b }},
	}
	fn := func(seed int64, araw, braw int8) bool {
		r := rand.New(rand.NewSource(seed))
		av, bv := int64(araw), int64(braw)
		tc := cases[r.Intn(len(cases))]
		want := int64(0)
		if tc.eval(av, bv) {
			want = 1
		}
		op := tc.op

		vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
		if err := syslib.Install(vm); err != nil {
			return false
		}
		iso, err := vm.NewIsolate("main")
		if err != nil {
			return false
		}
		c := classfile.NewClass("q/Branch").
			Method("run", "(II)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.ILoad(0).ILoad(1)
				a.Label("_pre") // labels are cheap; keeps structure obvious
				switch op {
				case bytecode.OpIfICmpEq:
					a.IfICmpEq("yes")
				case bytecode.OpIfICmpNe:
					a.IfICmpNe("yes")
				case bytecode.OpIfICmpLt:
					a.IfICmpLt("yes")
				case bytecode.OpIfICmpLe:
					a.IfICmpLe("yes")
				case bytecode.OpIfICmpGt:
					a.IfICmpGt("yes")
				case bytecode.OpIfICmpGe:
					a.IfICmpGe("yes")
				}
				a.Const(0).IReturn()
				a.Label("yes").Const(1).IReturn()
			}).MustBuild()
		if err := iso.Loader().Define(c); err != nil {
			return false
		}
		m, err := c.LookupMethod("run", "(II)I")
		if err != nil {
			return false
		}
		v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(av), heap.IntVal(bv)}, 100_000)
		if err != nil || th.Failure() != nil {
			return false
		}
		return v.I == want
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
