package interp_test

import (
	"strings"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// newVM builds a VM with syslib installed and one isolate.
func newVM(t *testing.T, mode core.Mode) (*interp.VM, *core.Isolate) {
	t.Helper()
	vm := interp.NewVM(interp.Options{Mode: mode})
	if err := syslib.Install(vm); err != nil {
		t.Fatalf("install syslib: %v", err)
	}
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatalf("new isolate: %v", err)
	}
	return vm, iso
}

func define(t *testing.T, iso *core.Isolate, c *classfile.Class) *classfile.Class {
	t.Helper()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatalf("define %s: %v", c.Name, err)
	}
	return c
}

func callStatic(t *testing.T, vm *interp.VM, iso *core.Isolate, c *classfile.Class, name string, args ...heap.Value) heap.Value {
	t.Helper()
	m := findMethod(t, c, name)
	v, th, err := vm.CallRoot(iso, m, args, 50_000_000)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	if th.Failure() != nil {
		t.Fatalf("call %s: uncaught %s", name, th.FailureString())
	}
	return v
}

func findMethod(t *testing.T, c *classfile.Class, name string) *classfile.Method {
	t.Helper()
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("method %s not found in %s", name, c.Name)
	return nil
}

func TestArithmeticLoop(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("demo/Sum").
		Method("sum", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// int s = 0; for (i = 1; i <= n; i++) s += i; return s;
			a.Const(0).IStore(1)
			a.Const(1).IStore(2)
			a.Label("loop")
			a.ILoad(2).ILoad(0).IfICmpGt("done")
			a.ILoad(1).ILoad(2).IAdd().IStore(1)
			a.IInc(2, 1)
			a.Goto("loop")
			a.Label("done")
			a.ILoad(1).IReturn()
		}).MustBuild())
	v := callStatic(t, vm, iso, c, "sum", heap.IntVal(100))
	if v.I != 5050 {
		t.Fatalf("sum(100) = %d, want 5050", v.I)
	}
}

func TestObjectFieldsAndVirtualDispatch(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	base := define(t, iso, classfile.NewClass("demo/Base").
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("value", "()I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(1).IReturn()
		}).MustBuild())
	_ = base
	define(t, iso, classfile.NewClass("demo/Derived").Super("demo/Base").
		Field("x", classfile.KindInt).
		Method(classfile.InitName, "(I)V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial("demo/Base", classfile.InitName, "()V")
			a.ALoad(0).ILoad(1).PutField("demo/Derived", "x")
			a.Return()
		}).
		Method("value", "()I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).GetField("demo/Derived", "x").IReturn()
		}).MustBuild())
	main := define(t, iso, classfile.NewClass("demo/Main").
		Method("run", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// Base b = new Derived(41); return b.value() + 1;
			a.New("demo/Derived").Dup().Const(41).
				InvokeSpecial("demo/Derived", classfile.InitName, "(I)V").
				AStore(0)
			a.ALoad(0).InvokeVirtual("demo/Base", "value", "()I")
			a.Const(1).IAdd().IReturn()
		}).MustBuild())
	v := callStatic(t, vm, iso, main, "run")
	if v.I != 42 {
		t.Fatalf("run() = %d, want 42", v.I)
	}
}

func TestStaticInitializerRunsOncePerIsolate(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("demo/Counted").
		StaticField("n", classfile.KindInt).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.GetStatic("demo/Counted", "n").Const(1).IAdd().PutStatic("demo/Counted", "n")
			a.Return()
		}).
		Method("get", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.GetStatic("demo/Counted", "n").IReturn()
		}).MustBuild())
	for i := 0; i < 3; i++ {
		if v := callStatic(t, vm, iso, c, "get"); v.I != 1 {
			t.Fatalf("iteration %d: n = %d, want 1 (clinit must run once)", i, v.I)
		}
	}
}

func TestExceptionHandling(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("demo/Div").
		Method("safeDiv", "(II)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.ILoad(0).ILoad(1).IDiv().IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop().Const(-1).IReturn()
			a.Handler("try", "endtry", "catch", interp.ClassArithmeticException)
		}).MustBuild())
	if v := callStatic(t, vm, iso, c, "safeDiv", heap.IntVal(10), heap.IntVal(2)); v.I != 5 {
		t.Fatalf("safeDiv(10,2) = %d, want 5", v.I)
	}
	if v := callStatic(t, vm, iso, c, "safeDiv", heap.IntVal(10), heap.IntVal(0)); v.I != -1 {
		t.Fatalf("safeDiv(10,0) = %d, want -1 (caught)", v.I)
	}
}

func TestUncaughtExceptionTerminatesThread(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("demo/Boom").
		Method("boom", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Null().InvokeVirtual(classfile.ObjectClassName, "hashCode", "()I").Pop().Return()
		}).MustBuild())
	m := findMethod(t, c, "boom")
	_, th, err := vm.CallRoot(iso, m, nil, 1_000_000)
	if err != nil {
		t.Fatalf("host error: %v", err)
	}
	if th.Failure() == nil {
		t.Fatal("expected uncaught NullPointerException")
	}
	if got := th.FailureString(); !strings.Contains(got, "NullPointerException") {
		t.Fatalf("failure = %q, want NullPointerException", got)
	}
}

func TestStringsAndOutput(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("demo/Hello").
		Method("hello", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Str("hello").Str(" world").
				InvokeVirtual("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;").
				InvokeStatic("java/lang/System", "println", "(Ljava/lang/String;)V").
				Return()
		}).MustBuild())
	callStatic(t, vm, iso, c, "hello")
	if got := vm.Output(); got != "hello world\n" {
		t.Fatalf("output = %q, want %q", got, "hello world\n")
	}
}

func TestThreadsAndJoin(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	define(t, iso, classfile.NewClass("demo/Worker").
		StaticField("total", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic("demo/Worker", "total").Const(1).IAdd().PutStatic("demo/Worker", "total")
			a.Return()
		}).MustBuild())
	main := define(t, iso, classfile.NewClass("demo/ThreadMain").
		Method("spawn", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// Thread t = new Thread(new Worker()); t.start(); t.join();
			a.New("java/lang/Thread").Dup()
			a.New("demo/Worker").Dup().InvokeSpecial("demo/Worker", classfile.InitName, "()V")
			a.InvokeSpecial("java/lang/Thread", classfile.InitName, "(Ljava/lang/Object;)V")
			a.AStore(0)
			a.ALoad(0).InvokeVirtual("java/lang/Thread", "start", "()V")
			a.ALoad(0).InvokeVirtual("java/lang/Thread", "join", "()V")
			a.GetStatic("demo/Worker", "total").IReturn()
		}).MustBuild())
	if v := callStatic(t, vm, iso, main, "spawn"); v.I != 1 {
		t.Fatalf("total = %d, want 1", v.I)
	}
	snap := vm.SnapshotOf(iso)
	if snap.ThreadsCreated < 2 { // main thread + worker
		t.Fatalf("ThreadsCreated = %d, want >= 2", snap.ThreadsCreated)
	}
}

func TestMonitorMutualExclusion(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	// Two threads increment a shared counter 1000 times each inside a
	// monitor; final count must be 2000 (and without races by
	// construction, this exercises enter/exit paths and blocking).
	define(t, iso, classfile.NewClass("demo/Locker").
		StaticField("count", classfile.KindInt).
		StaticField("lock", classfile.KindRef).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).Const(1000).IfICmpGe("done")
			a.GetStatic("demo/Locker", "lock").MonitorEnter()
			a.GetStatic("demo/Locker", "count").Const(1).IAdd().PutStatic("demo/Locker", "count")
			a.GetStatic("demo/Locker", "lock").MonitorExit()
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild())
	main := define(t, iso, classfile.NewClass("demo/LockMain").
		Method("main", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// lock = new Object();
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").
				PutStatic("demo/Locker", "lock")
			// t1 = new Thread(new Locker()); t1.start(); same for t2.
			a.New("java/lang/Thread").Dup()
			a.New("demo/Locker").Dup().InvokeSpecial("demo/Locker", classfile.InitName, "()V")
			a.InvokeSpecial("java/lang/Thread", classfile.InitName, "(Ljava/lang/Object;)V").AStore(0)
			a.New("java/lang/Thread").Dup()
			a.New("demo/Locker").Dup().InvokeSpecial("demo/Locker", classfile.InitName, "()V")
			a.InvokeSpecial("java/lang/Thread", classfile.InitName, "(Ljava/lang/Object;)V").AStore(1)
			a.ALoad(0).InvokeVirtual("java/lang/Thread", "start", "()V")
			a.ALoad(1).InvokeVirtual("java/lang/Thread", "start", "()V")
			a.ALoad(0).InvokeVirtual("java/lang/Thread", "join", "()V")
			a.ALoad(1).InvokeVirtual("java/lang/Thread", "join", "()V")
			a.GetStatic("demo/Locker", "count").IReturn()
		}).MustBuild())
	if v := callStatic(t, vm, iso, main, "main"); v.I != 2000 {
		t.Fatalf("count = %d, want 2000", v.I)
	}
}

func TestGCCollectsGarbage(t *testing.T) {
	vm, iso := newVM(t, core.ModeIsolated)
	c := define(t, iso, classfile.NewClass("demo/Alloc").
		Method("churn", "(I)V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Label("loop")
			a.ILoad(0).IfLe("done")
			a.New(classfile.ObjectClassName).Pop()
			a.IInc(0, -1)
			a.Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild())
	callStatic(t, vm, iso, c, "churn", heap.IntVal(1000))
	before := vm.Heap().Used()
	vm.CollectGarbage(iso)
	after := vm.Heap().Used()
	if after >= before {
		t.Fatalf("GC freed nothing: before=%d after=%d", before, after)
	}
	if vm.SnapshotOf(iso).GCActivations != 1 {
		t.Fatalf("GCActivations = %d, want 1", vm.SnapshotOf(iso).GCActivations)
	}
}
