package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// twoIsolateVM builds a VM with two wired isolates ("alpha" imports
// "beta"'s classes).
func twoIsolateVM(t *testing.T, mode core.Mode) (*interp.VM, *core.Isolate, *core.Isolate) {
	t.Helper()
	vm := interp.NewVM(interp.Options{Mode: mode})
	syslib.MustInstall(vm)
	if mode == core.ModeShared {
		world, err := vm.NewIsolate("world")
		if err != nil {
			t.Fatal(err)
		}
		return vm, world, world
	}
	// Isolate0 is a separate runtime isolate so alpha and beta are
	// standard (killable) isolates.
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}
	beta, err := vm.NewIsolate("beta")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := vm.NewIsolate("alpha")
	if err != nil {
		t.Fatal(err)
	}
	return vm, alpha, beta
}

// TestPerIsolateStaticsAndClinit verifies the task-class-mirror core
// semantics (§3.1): each isolate sees its own copy of a class's statics,
// initialized by its own <clinit> run.
func TestPerIsolateStaticsAndClinit(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	owner, err := vm.NewIsolate("owner")
	if err != nil {
		t.Fatal(err)
	}
	other, err := vm.NewIsolate("other")
	if err != nil {
		t.Fatal(err)
	}
	const cn = "iso/Data"
	data := classfile.NewClass(cn).
		StaticField("v", classfile.KindInt).
		StaticField("inits", classfile.KindInt).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(100).PutStatic(cn, "v")
			a.GetStatic(cn, "inits").Const(1).IAdd().PutStatic(cn, "inits")
			a.Return()
		}).
		Method("set", "(I)V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).PutStatic(cn, "v").Return()
		}).
		Method("get", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(cn, "v").IReturn()
		}).MustBuild()
	if err := owner.Loader().Define(data); err != nil {
		t.Fatal(err)
	}
	other.Loader().AddDelegate(owner.Loader())
	// The foreign isolate accesses owner's statics *directly* (the A1
	// pattern): getstatic/putstatic in its own code use its own mirror.
	// Calling owner's methods would migrate the thread and operate on
	// owner's mirror instead — tested separately.
	probe := classfile.NewClass("iso/Probe").
		Method("set", "(I)V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).PutStatic(cn, "v").Return()
		}).
		Method("get", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(cn, "v").IReturn()
		}).MustBuild()
	if err := other.Loader().Define(probe); err != nil {
		t.Fatal(err)
	}

	call := func(iso *core.Isolate, class *classfile.Class, name string, args ...heap.Value) int64 {
		t.Helper()
		m, err := class.LookupMethod(name, map[string]string{"set": "(I)V", "get": "()I"}[name])
		if err != nil {
			t.Fatal(err)
		}
		v, th, err := vm.CallRoot(iso, m, args, 1_000_000)
		if err != nil || th.Failure() != nil {
			t.Fatalf("%s: %v / %s", name, err, th.FailureString())
		}
		return v.I
	}

	// Both isolates see the clinit value independently.
	if v := call(owner, data, "get"); v != 100 {
		t.Fatalf("owner initial = %d", v)
	}
	if v := call(other, probe, "get"); v != 100 {
		t.Fatalf("other initial = %d", v)
	}
	// A direct write by one isolate never reaches the other.
	call(owner, data, "set", heap.IntVal(7))
	if v := call(other, probe, "get"); v != 100 {
		t.Fatalf("static leaked across isolates: other sees %d", v)
	}
	if v := call(owner, data, "get"); v != 7 {
		t.Fatalf("owner lost its write: %d", v)
	}
	// Thread migration contrast: calling owner's *method* from the other
	// isolate migrates and writes owner's copy (§3.1).
	call(other, data, "set", heap.IntVal(55))
	if v := call(owner, data, "get"); v != 55 {
		t.Fatalf("migrated call must write the callee's mirror, owner sees %d", v)
	}
	if v := call(other, probe, "get"); v != 100 {
		t.Fatalf("other's own mirror must be untouched by the migrated call, sees %d", v)
	}
	// <clinit> ran once per isolate (its own counter is per-isolate too).
	ownerMirror := vm.World().Mirror(data, owner)
	otherMirror := vm.World().Mirror(data, other)
	if ownerMirror == otherMirror {
		t.Fatal("mirrors must differ")
	}
	if ownerMirror.Statics[1].I != 1 || otherMirror.Statics[1].I != 1 {
		t.Fatalf("clinit counts: owner=%d other=%d", ownerMirror.Statics[1].I, otherMirror.Statics[1].I)
	}
}

// TestStringIdentityAcrossIsolates reproduces the §3.5 caveat: the same
// literal interned from two bundles yields distinct objects in I-JVM
// (reference equality fails, equals works); in Shared mode both see one
// object.
func TestStringIdentityAcrossIsolates(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
		t.Run(mode.String(), func(t *testing.T) {
			vm, alpha, beta := twoIsolateVM(t, mode)
			a1, err := vm.InternString(nil, alpha, "shared-literal")
			if err != nil {
				t.Fatal(err)
			}
			a2, err := vm.InternString(nil, alpha, "shared-literal")
			if err != nil {
				t.Fatal(err)
			}
			b1, err := vm.InternString(nil, beta, "shared-literal")
			if err != nil {
				t.Fatal(err)
			}
			if a1 != a2 {
				t.Fatal("intern must be stable within an isolate")
			}
			if mode == core.ModeIsolated && a1 == b1 {
				t.Fatal("I-JVM: literals must not be shared across isolates")
			}
			if mode == core.ModeShared && a1 != b1 {
				t.Fatal("baseline: literals must be shared")
			}
		})
	}
}

// TestClassObjectsPerIsolate verifies java.lang.Class objects are
// isolate-private in I-JVM (the fix for attack A2).
func TestClassObjectsPerIsolate(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	i1, _ := vm.NewIsolate("one")
	i2, _ := vm.NewIsolate("two")
	objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := vm.ClassObjectFor(nil, objClass, i1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := vm.ClassObjectFor(nil, objClass, i2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("Class objects must be isolate-private")
	}
	c1again, err := vm.ClassObjectFor(nil, objClass, i1)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c1again {
		t.Fatal("Class object identity must be stable per isolate")
	}
}

// interCallEnv builds alpha -> beta service wiring with a method that
// throws on demand.
func interCallEnv(t *testing.T) (*interp.VM, *core.Isolate, *core.Isolate, *classfile.Class) {
	t.Helper()
	vm, alpha, beta := twoIsolateVM(t, core.ModeIsolated)
	const svc = "b/Svc"
	svcClass := classfile.NewClass(svc).
		Method("boom", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.New("java/lang/RuntimeException").Dup().Str("from beta").
				InvokeSpecial("java/lang/RuntimeException", classfile.InitName, "(Ljava/lang/String;)V")
			a.AThrow()
		}).
		Method("ok", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(5).IReturn()
		}).MustBuild()
	if err := beta.Loader().Define(svcClass); err != nil {
		t.Fatal(err)
	}
	alpha.Loader().AddDelegate(beta.Loader())
	const drv = "a/Drv"
	drvClass := classfile.NewClass(drv).
		Method("catchBoom", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.InvokeStatic(svc, "boom", "()V")
			a.Const(0).IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop()
			// After catching, the thread must be back in alpha: calling
			// ok() counts as a fresh inter-isolate call.
			a.InvokeStatic(svc, "ok", "()I").IReturn()
			a.Handler("try", "endtry", "catch", "")
		}).MustBuild()
	if err := alpha.Loader().Define(drvClass); err != nil {
		t.Fatal(err)
	}
	return vm, alpha, beta, drvClass
}

// TestIsolateRestoredAcrossExceptionUnwind verifies the thread-migration
// return path also holds when an exception unwinds across the isolate
// boundary (§3.1 + §3.3 interplay).
func TestIsolateRestoredAcrossExceptionUnwind(t *testing.T) {
	vm, alpha, beta, drvClass := interCallEnv(t)
	m, err := drvClass.LookupMethod("catchBoom", "()I")
	if err != nil {
		t.Fatal(err)
	}
	before := beta.Account().InterBundleCallsIn.Load()
	v, th, err := vm.CallRoot(alpha, m, nil, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("%v / %s", err, th.FailureString())
	}
	if v.I != 5 {
		t.Fatalf("result = %d, want 5", v.I)
	}
	// Two entries into beta: boom (which threw) and ok.
	if got := beta.Account().InterBundleCallsIn.Load() - before; got != 2 {
		t.Fatalf("beta entries = %d, want 2", got)
	}
}

// TestKillWhileThreadInsideIsolate verifies §3.3: a thread currently
// executing the killed isolate's code receives StoppedIsolateException at
// the next safepoint, and a prepared caller catches it.
func TestKillWhileThreadInsideIsolate(t *testing.T) {
	vm, alpha, beta := twoIsolateVM(t, core.ModeIsolated)
	const svc = "b/Spin"
	svcClass := classfile.NewClass(svc).
		Method("spin", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("loop")
			a.Goto("loop")
		}).MustBuild()
	if err := beta.Loader().Define(svcClass); err != nil {
		t.Fatal(err)
	}
	alpha.Loader().AddDelegate(beta.Loader())
	const drv = "a/Caller"
	drvClass := classfile.NewClass(drv).
		Method("call", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.InvokeStatic(svc, "spin", "()V")
			a.Const(0).IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.InstanceOf(interp.ClassStoppedIsolateException).IReturn()
			a.Handler("try", "endtry", "catch", "")
		}).MustBuild()
	if err := alpha.Loader().Define(drvClass); err != nil {
		t.Fatal(err)
	}
	m, _ := drvClass.LookupMethod("call", "()I")
	th, err := vm.SpawnThread("caller", alpha, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm.RunUntil(th, 100_000)
	if th.Done() {
		t.Fatal("spin returned early")
	}
	if th.CurrentIsolate() != beta {
		t.Fatalf("thread in %s, want beta", th.CurrentIsolate().Name())
	}
	if err := vm.KillIsolate(nil, beta); err != nil {
		t.Fatal(err)
	}
	vm.RunUntil(th, 1_000_000)
	if !th.Done() || th.Failure() != nil {
		t.Fatalf("done=%v failure=%s", th.Done(), th.FailureString())
	}
	if th.Result().I != 1 {
		t.Fatal("caller must catch a StoppedIsolateException")
	}
	if th.CurrentIsolate() != alpha {
		t.Fatal("thread must be migrated back to the caller's isolate")
	}
}

// TestKillIsolateRequiresIsolatedMode covers the mode guard.
func TestKillIsolateRequiresIsolatedMode(t *testing.T) {
	vm, _, beta := twoIsolateVM(t, core.ModeShared)
	if err := vm.KillIsolate(nil, beta); err == nil {
		t.Fatal("shared-mode kill must fail")
	}
}

// TestKillIsolate0Refused covers the Isolate0 protection.
func TestKillIsolate0Refused(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso0, _ := vm.NewIsolate("runtime")
	if err := vm.KillIsolate(nil, iso0); err == nil {
		t.Fatal("Isolate0 kill must be refused")
	}
}

// TestInstructionAccountingFollowsMigration verifies per-isolate
// instruction counters track the executing isolate, not the thread's
// creator.
func TestInstructionAccountingFollowsMigration(t *testing.T) {
	vm, alpha, beta, drvClass := interCallEnv(t)
	m, _ := drvClass.LookupMethod("catchBoom", "()I")
	a0 := alpha.Account().Instructions.Load()
	b0 := beta.Account().Instructions.Load()
	if _, th, err := vm.CallRoot(alpha, m, nil, 1_000_000); err != nil || th.Failure() != nil {
		t.Fatalf("%v", err)
	}
	if alpha.Account().Instructions.Load() <= a0 {
		t.Fatal("alpha executed instructions but none were charged")
	}
	if beta.Account().Instructions.Load() <= b0 {
		t.Fatal("beta executed instructions but none were charged")
	}
}

// TestStackOverflowRaisesGuestError covers the frame-depth guard.
func TestStackOverflowRaisesGuestError(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, MaxFrameDepth: 32})
	syslib.MustInstall(vm)
	iso, _ := vm.NewIsolate("main")
	const cn = "so/Rec"
	c := classfile.NewClass(cn).
		Method("rec", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(1).IAdd().InvokeStatic(cn, "rec", "(I)I").IReturn()
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("rec", "(I)I")
	_, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(0)}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if th.Failure() == nil || th.Failure().Class.Name != interp.ClassStackOverflowError {
		t.Fatalf("failure = %v", th.FailureString())
	}
}

// TestDeadlockDetection: two threads blocked on monitors held by each
// other are reported as a deadlock by the scheduler.
func TestDeadlockDetection(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, _ := vm.NewIsolate("main")
	const cn = "dl/T"
	c := classfile.NewClass(cn).
		StaticField("a", classfile.KindRef).
		StaticField("b", classfile.KindRef).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		// run(): lock a, yield, lock b (the partner does the reverse).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(cn, "a").MonitorEnter()
			a.Const(10).InvokeStatic("java/lang/Thread", "sleep", "(I)V")
			a.GetStatic(cn, "b").MonitorEnter()
			a.Return()
		}).
		Method("runRev", "()V", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.GetStatic(cn, "b").MonitorEnter()
			a.Const(10).InvokeStatic("java/lang/Thread", "sleep", "(I)V")
			a.GetStatic(cn, "a").MonitorEnter()
			a.Return()
		}).
		Method("setup", "()V", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").PutStatic(cn, "a")
			a.New(classfile.ObjectClassName).Dup().
				InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").PutStatic(cn, "b")
			a.Return()
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	setup, _ := c.LookupMethod("setup", "()V")
	if _, th, err := vm.CallRoot(iso, setup, nil, 100_000); err != nil || th.Failure() != nil {
		t.Fatal(err)
	}
	runM, _ := c.LookupMethod("run", "()V")
	obj, _ := vm.AllocObjectIn(nil, c, iso)
	if _, err := vm.SpawnThread("t1", iso, runM, []heap.Value{heap.RefVal(obj)}); err != nil {
		t.Fatal(err)
	}
	revM, _ := c.LookupMethod("runRev", "()V")
	if _, err := vm.SpawnThread("t2", iso, revM, nil); err != nil {
		t.Fatal(err)
	}
	res := vm.Run(10_000_000)
	if !res.Deadlocked {
		t.Fatalf("expected deadlock, got %+v", res)
	}
}
