package interp

import (
	"sync/atomic"

	"ijvm/internal/core"
)

// This file is the integration surface between the interpreter and the
// concurrent isolate scheduler (internal/sched). The scheduler installs
// two callbacks for the duration of a concurrent run:
//
//   - SchedHooks let the interpreter tell the scheduler that threads
//     appeared, woke up, or that a global condition changed (a monitor
//     freed, a thread finished) so idle shards re-poll. Hooks are always
//     invoked WITHOUT schedMu held, so implementations may take their
//     own locks freely.
//   - Safepointer lets stop-the-world operations (accounting GC, isolate
//     kill) park every worker at an instruction boundary first.
//
// Both are nil in sequential runs, turning the call sites into direct
// passthroughs.

// SchedHooks is implemented by the concurrent scheduler's pool.
type SchedHooks interface {
	// ThreadSpawned reports a newly created runnable thread (its creator
	// isolate decides the shard it lands on).
	ThreadSpawned(t *Thread)
	// ThreadUnparked reports that t may have become runnable (notify,
	// interrupt, forced wake).
	ThreadUnparked(t *Thread)
	// ThreadsChanged reports a global scheduling event without a single
	// affected thread: a monitor was freed or a thread finished, so
	// blocked and joining threads anywhere may now be promotable.
	ThreadsChanged()
}

// Safepointer stops every scheduler worker at an instruction boundary,
// runs fn alone, and resumes the world. Implementations must be
// reentrant: fn may itself request a stop (a kill patching threads can
// trigger an allocation-pressure collection).
type Safepointer interface {
	StopTheWorld(fn func())
}

type hookBox struct{ h SchedHooks }
type safeBox struct{ s Safepointer }

// SetSchedHooks installs (or, with nil, removes) the scheduler hooks.
func (vm *VM) SetSchedHooks(h SchedHooks) {
	if h == nil {
		vm.hooks.Store(nil)
		return
	}
	vm.hooks.Store(&hookBox{h: h})
}

// SetSafepointer installs (or, with nil, removes) the stop-the-world
// provider.
func (vm *VM) SetSafepointer(s Safepointer) {
	if s == nil {
		vm.safe.Store(nil)
		return
	}
	vm.safe.Store(&safeBox{s: s})
}

// withWorldStopped runs fn with every concurrent worker parked; in
// sequential runs it is a direct call on the run-loop goroutine, with
// the loop's pending batched charges flushed first so the stopped-world
// observer sees exact counters (the sequential safepoint).
func (vm *VM) withWorldStopped(fn func()) {
	if b := vm.safe.Load(); b != nil {
		b.s.StopTheWorld(fn)
		return
	}
	vm.flushSequential()
	fn()
	// fn may have armed or disarmed the incremental collector's write
	// barrier (cycle open/terminate). A mid-quantum sequential safepoint
	// resumes stepping without passing a quantum start, so the cached
	// per-quantum flag must be refreshed here (see allocState.barrierOn).
	if vm.seqAlloc != nil {
		vm.seqAlloc.barrierOn = vm.heap.BarrierActive()
	}
}

func (vm *VM) notifyThreadSpawned(t *Thread) {
	if b := vm.hooks.Load(); b != nil {
		b.h.ThreadSpawned(t)
	}
}

func (vm *VM) notifyUnparked(t *Thread) {
	if b := vm.hooks.Load(); b != nil {
		b.h.ThreadUnparked(t)
	}
}

func (vm *VM) notifyMonitorFreed() {
	if b := vm.hooks.Load(); b != nil {
		b.h.ThreadsChanged()
	}
}

func (vm *VM) notifyThreadsChanged() {
	if b := vm.hooks.Load(); b != nil {
		b.h.ThreadsChanged()
	}
}

// Waking reports whether the thread is in the transient staging window
// of a cross-shard wake (see stateStaging): not runnable yet, but about
// to be. The concurrent scheduler's quiescence detector treats such
// threads as pending work rather than as deadlocked.
func (t *Thread) Waking() bool { return t.State() == stateStaging }

// PromoteRunnable attempts to make one thread runnable (elapsed sleep,
// free monitor, notified wait, finished join). The concurrent scheduler
// polls shard threads through it.
func (vm *VM) PromoteRunnable(t *Thread) bool {
	vm.schedMu.Lock()
	defer vm.schedMu.Unlock()
	return vm.promoteLocked(t)
}

// WakeDeadline returns t's virtual-time wake deadline when it is parked
// in a timed sleep or timed wait. The concurrent scheduler uses it to
// re-queue idle shards once the global clock passes the deadline.
func (vm *VM) WakeDeadline(t *Thread) (int64, bool) {
	vm.schedMu.Lock()
	defer vm.schedMu.Unlock()
	switch t.State() {
	case StateSleeping, StateWaitingMonitor:
		if t.wakeAt != SleepForever && t.wakeAt > 0 {
			return t.wakeAt, true
		}
	}
	return 0, false
}

// SampleState carries one worker's per-goroutine execution state across
// quanta: the CPU-sampling countdown (giving each worker the sequential
// engine's sampling cadence) and the worker's allocation state (its
// shard-local heap allocation domain plus the batched per-isolate byte
// accounting), lazily acquired from the VM's pool on first use. Workers
// must hand the allocation state back with ReleaseWorkerState when they
// exit so later runs reuse domains instead of growing the heap's
// registry.
type SampleState struct {
	count int
	alloc *allocState
}

// ReleaseWorkerState flushes and recycles the worker-owned allocation
// state carried in s (no-op if none was acquired).
func (vm *VM) ReleaseWorkerState(s *SampleState) {
	vm.releaseAllocState(s.alloc)
	s.alloc = nil
}

// QuantumResult reports why RunThreadQuantum stopped stepping.
type QuantumResult struct {
	// Instructions executed in this quantum.
	Instructions int64
	// Migrated reports the thread's current isolate left the home
	// isolate (inter-isolate call or return): the thread must be handed
	// to the target isolate's shard.
	Migrated bool
	// Stopped reports the stop flag was observed (stop-the-world pending
	// or budget exhausted globally).
	Stopped bool
	// Shutdown reports the platform was shut down during the quantum.
	Shutdown bool
	// TargetDone reports the run's target thread finished during the
	// quantum (RunUntil parity for the concurrent scheduler).
	TargetDone bool
	// Err is the host-level error that aborted the thread, if any (the
	// thread has already been finished).
	Err error
}

// RunThreadQuantum executes up to budget instructions of t on the
// calling scheduler worker, stopping early when the thread parks,
// finishes, migrates off the home isolate, the stop flag rises, the
// platform shuts down, or the (optional) target thread finishes.
//
// Accounting matches the sequential engine: every instruction is charged
// to the isolate that is current after the step (so a migrating call is
// charged to the callee's isolate), and the virtual clock advances by
// one per instruction — but per-isolate charges go through the shared
// core.InstrBatch and clock and instruction totals are flushed in one
// batch at quantum end, keeping hot-path atomics off the shared cache
// lines. The sequential engine batches identically (see runQuantum).
func (vm *VM) RunThreadQuantum(t *Thread, home *core.Isolate, budget int64, stop *atomic.Bool, s *SampleState, target *Thread) QuantumResult {
	var res QuantumResult
	var batch core.InstrBatch
	if s.alloc == nil {
		s.alloc = vm.acquireAllocState()
	}
	// Quantum-start refresh of the cached write-barrier flag: the barrier
	// is only armed inside a stop-the-world, which this worker's quantum
	// ends for, so a per-quantum refresh keeps reference-store fast paths
	// off the atomic (see allocState.barrierOn).
	s.alloc.barrierOn = vm.heap.BarrierActive()
	// Install the worker's allocation state on the thread for this
	// quantum; it is removed (and its byte batch flushed) before the
	// worker parks, so stop-the-world observers see exact accounts. The
	// quantum accountant (qa) lets superinstruction handlers and closure
	// blocks charge their extra covered instructions with the exact
	// per-instruction semantics of the loop below (see quantumAcct).
	t.alloc = s.alloc
	qa := quantumAcct{vm: vm, limit: budget, sample: s, batch: &batch}
	t.qa = &qa
	for qa.steps < budget && t.State() == StateRunnable {
		if stop != nil && stop.Load() {
			res.Stopped = true
			break
		}
		// Pre-read the mode for the step's fused/closure sub-charges: the
		// global mode cannot flip while this worker is mid-step (flips
		// stop the world at step boundaries) except by the step's own
		// guest/native code, whose trailing instructions the re-read
		// below charges under the new mode.
		qa.isolated = vm.world.Isolated()
		err := vm.stepThread(t)
		qa.steps++
		cur := t.cur
		// The mode is re-read per step (one more uncontended atomic load
		// beside the stop flag above) so a worker whose own guest/native
		// code called SetIsolationMode charges the rest of its quantum
		// under the new mode; other workers' quanta break at the flip's
		// stop-the-world safepoint and re-enter here fresh.
		if vm.world.Isolated() {
			batch.Note(cur.Account())
			s.count++
			if s.count >= vm.opts.SampleEvery {
				s.count = 0
				cur.Account().CPUSamples.Add(1)
			}
		}
		if err != nil {
			t.err = err
			vm.finishThread(t)
			res.Err = err
			break
		}
		if vm.IsShutdown() {
			res.Shutdown = true
			break
		}
		if target != nil && target.Done() {
			res.TargetDone = true
			break
		}
		if cur != home {
			res.Migrated = true
			break
		}
	}
	res.Instructions = qa.steps
	t.alloc = nil
	t.qa = nil
	batch.Flush()
	s.alloc.batch.Flush()
	s.alloc.flushSATB(vm.heap)
	vm.clock.Add(res.Instructions)
	vm.totalInstrs.Add(res.Instructions)
	vm.noteQuantumHeat(t, res.Instructions)
	return res
}
