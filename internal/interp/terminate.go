package interp

import (
	"errors"
	"fmt"

	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// KillIsolate terminates an isolate (§3.3). The sequence mirrors the
// paper's signal-based protocol, with a scheduler safepoint as the point
// where "signals" are delivered: under the sequential engine that is the
// cooperative scheduler boundary; under the concurrent engine the world
// is stopped first, so the kill takes effect mid-run no matter which
// workers are executing — the preemptive kill path.
//
//  1. The isolate is marked killed. From now on, any frame push for one of
//     its methods throws StoppedIsolateException (the equivalent of
//     refusing to JIT new methods and patching compiled entry points).
//  2. Every thread's stack is inspected. A thread whose *top* frame
//     belongs to the killed isolate receives StoppedIsolateException
//     immediately. A thread parked in a system-library call (sleep, wait,
//     join, I/O) with a killed-isolate frame below is interrupted so the
//     blocking call aborts. Threads deeper in other isolates are left
//     alone: the patched "return pointers" are modelled by the return-path
//     check in returnFromFrame, which throws when control would re-enter a
//     killed frame.
//  3. Monitors held by frames of the killed isolate are force-released so
//     other bundles do not inherit the isolate's deadlocks; threads
//     blocked on those monitors are released with the exception staged.
//
// killer must hold RightKillIsolate (Isolate0); a nil killer is a
// host-level administrative action.
func (vm *VM) KillIsolate(killer, target *core.Isolate) error {
	if vm.world.Mode() != core.ModeIsolated {
		return errors.New("interp: isolate termination requires isolated mode")
	}
	if target != nil && target.IsIsolate0() {
		return errors.New("interp: Isolate0 cannot be killed")
	}
	var err error
	vm.withWorldStopped(func() {
		if err = vm.world.Kill(killer, target); err != nil {
			return
		}
		for _, t := range vm.Threads() {
			if t.Done() {
				continue
			}
			if perr := vm.patchThreadForKill(t, target); perr != nil {
				err = fmt.Errorf("patching thread %d: %w", t.id, perr)
				return
			}
		}
	})
	return err
}

// AbortRootThread tears down a host-spawned root thread (an RPC
// dispatch whose budget expired or whose link closed) without running
// any more of its code. The caller must own the engine — the thread must
// not be mid-quantum on any worker (the RPC hub calls this between
// RunUntil slices under its execution lock). Every monitor the thread
// still holds is force-released first, exactly as the kill path does for
// killed frames, so an aborted callee never leaves a lock owned by a
// dead thread; then the thread is finished with err recorded as its
// host-visible failure.
func (vm *VM) AbortRootThread(t *Thread, err error) {
	if t == nil || t.Done() {
		return
	}
	vm.schedMu.Lock()
	for _, f := range t.frames {
		if obj := f.lockedMonitor; obj != nil {
			vm.forceReleaseLocked(t, obj)
			f.lockedMonitor = nil
		}
		for _, obj := range f.entered {
			vm.forceReleaseLocked(t, obj)
		}
		f.entered = f.entered[:0]
	}
	vm.schedMu.Unlock()
	t.err = err
	vm.finishThread(t)
}

// forceReleaseLocked releases ONE recursion level of obj's monitor if t
// still owns it — the kill path calls it once per acquisition record of
// a killed frame (lockedMonitor or an entered entry), so recursion
// levels held by the thread's *surviving* frames (a killed frame that
// entered a monitor and then called into another isolate which entered
// it again) are preserved: zeroing outright would break mutual
// exclusion inside the innocent isolate's critical section and make its
// eventual monitorexit throw IllegalMonitorState. schedMu held, world
// stopped; the stripe nests under schedMu.
func (vm *VM) forceReleaseLocked(t *Thread, obj *heap.Object) {
	mu := vm.monStripe(obj)
	mu.Lock()
	m := &obj.Monitor
	if m.Owner == t.id {
		m.Count--
		if m.Count <= 0 {
			m.Owner = 0
			m.Count = 0
		}
	}
	mu.Unlock()
}

// patchThreadForKill applies the §3.3 stack treatment to one thread. The
// world is stopped: no worker is executing guest code.
func (vm *VM) patchThreadForKill(t *Thread, target *core.Isolate) error {
	involved := false
	vm.schedMu.Lock()
	for _, f := range t.frames {
		if f.iso == target {
			involved = true
			// Force-release monitors held by killed frames (the monitor
			// word is guarded by its stripe; schedMu -> stripe ordering):
			// the synchronized-method monitor AND every explicit
			// monitorenter the frame still holds — a victim killed
			// inside an explicit monitor section must not leave the
			// monitor owned by its dead thread (the survivors would
			// deadlock on a lock nobody can ever release).
			if obj := f.lockedMonitor; obj != nil {
				vm.forceReleaseLocked(t, obj)
				f.lockedMonitor = nil
			}
			for _, obj := range f.entered {
				vm.forceReleaseLocked(t, obj)
			}
			f.entered = f.entered[:0]
		}
	}
	vm.schedMu.Unlock()
	// Threads whose current isolate is the target have killed code on
	// top (possibly under system-library natives).
	onTop := t.cur == target
	if !involved && !onTop {
		// The thread may still be blocked on a monitor owned by a killed
		// frame — the force-release above (from another thread's walk)
		// lets the scheduler promote it naturally.
		return nil
	}
	switch t.State() {
	case StateRunnable:
		if onTop {
			// Equivalent of the signal handler finding the top frame in
			// the terminating isolate: throw at the next safepoint.
			obj, err := vm.NewThrowable(t.CurrentIsolateOrZero(), ClassStoppedIsolateException,
				"isolate "+target.Name()+" stopped")
			if err != nil {
				return err
			}
			t.StageResumeThrow(obj)
		}
		return nil
	case StateDone:
		return nil
	default:
		// Parked in a blocking system call with killed-isolate frames on
		// the stack: interrupt it (Spring-style protection-domain
		// termination).
		return vm.forceInterrupt(t)
	}
}
