package interp

import (
	"fmt"
	"unsafe"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// phandler executes one prepared instruction. Handlers manage the frame's
// pc themselves: fall-through handlers advance it, branch handlers set
// the target, and handlers that park the thread or must re-execute (a
// pushed <clinit> frame, a contended monitor) leave it untouched. A
// handler that delivers a guest exception returns immediately after —
// exception dispatch already placed the pc.
//
// Handlers pop with the unchecked upop/upeek: the preparation dataflow
// proved every pop has an operand (prepare.go). Pushes go through the
// append-based push — prepared frames preallocate the exact MaxStack, so
// the append never grows.
type phandler func(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error

// phandlerTables are the mode-specialized flat dispatch tables replacing
// the opcode switch for prepared code, indexed [mode][ic][PInstr.H]
// (base handlers use the opcode value as their index). The VM selects
// one table at construction (and again on SetIsolationMode), so the
// steady state never re-checks world.Isolated():
//
//   - the Shared tables run the baseline fast paths — static accesses
//     and initialization checks fold into the pool entry's
//     ResolvedMirror cache after the first initialized access, the way
//     a JIT folds them away;
//   - the Isolated tables perform the paper's per-access task-class-
//     mirror indexing and initialization re-check unconditionally, with
//     no Shared-cache probes on the way.
//
// The second index disables the invoke inline caches (the
// Options.DisableInlineCaches ablation): those tables dispatch every
// invoke through the generic resolution path.
var phandlerTables [bytecode.NumPModes][2][256]phandler

// handlerTable returns the dispatch table for one mode/IC configuration.
func handlerTable(mode core.Mode, disableIC bool) *[256]phandler {
	ic := 0
	if disableIC {
		ic = 1
	}
	return &phandlerTables[pmodeIndex(mode)][ic]
}

func init() {
	var base [256]phandler
	for i := range base {
		base[i] = pInvalid
	}
	reg := func(op bytecode.Opcode, h phandler) { base[uint8(op)] = h }

	reg(bytecode.OpNop, pNop)
	reg(bytecode.OpIConst, pIConst)
	reg(bytecode.OpFConst, pFConst)
	reg(bytecode.OpAConstNull, pAConstNull)
	reg(bytecode.OpLdcString, pLdcString)
	reg(bytecode.OpLdcClass, pLdcClass)
	reg(bytecode.OpPop, pPop)
	reg(bytecode.OpDup, pDup)
	reg(bytecode.OpDupX1, pDupX1)
	reg(bytecode.OpSwap, pSwap)
	reg(bytecode.OpILoad, pLoad)
	reg(bytecode.OpFLoad, pLoad)
	reg(bytecode.OpALoad, pLoad)
	reg(bytecode.OpIStore, pStore)
	reg(bytecode.OpFStore, pStore)
	reg(bytecode.OpAStore, pStore)
	reg(bytecode.OpIInc, pIInc)
	reg(bytecode.OpIAdd, pIAdd)
	reg(bytecode.OpISub, pISub)
	reg(bytecode.OpIMul, pIMul)
	reg(bytecode.OpIDiv, pIDiv)
	reg(bytecode.OpIRem, pIRem)
	reg(bytecode.OpINeg, pINeg)
	reg(bytecode.OpIShl, pIShl)
	reg(bytecode.OpIShr, pIShr)
	reg(bytecode.OpIUshr, pIUshr)
	reg(bytecode.OpIAnd, pIAnd)
	reg(bytecode.OpIOr, pIOr)
	reg(bytecode.OpIXor, pIXor)
	reg(bytecode.OpFAdd, pFAdd)
	reg(bytecode.OpFSub, pFSub)
	reg(bytecode.OpFMul, pFMul)
	reg(bytecode.OpFDiv, pFDiv)
	reg(bytecode.OpFNeg, pFNeg)
	reg(bytecode.OpFCmp, pFCmp)
	reg(bytecode.OpI2F, pI2F)
	reg(bytecode.OpF2I, pF2I)
	reg(bytecode.OpGoto, pGoto)
	reg(bytecode.OpIfEq, pIfEq)
	reg(bytecode.OpIfNe, pIfNe)
	reg(bytecode.OpIfLt, pIfLt)
	reg(bytecode.OpIfLe, pIfLe)
	reg(bytecode.OpIfGt, pIfGt)
	reg(bytecode.OpIfGe, pIfGe)
	reg(bytecode.OpIfICmpEq, pIfICmpEq)
	reg(bytecode.OpIfICmpNe, pIfICmpNe)
	reg(bytecode.OpIfICmpLt, pIfICmpLt)
	reg(bytecode.OpIfICmpLe, pIfICmpLe)
	reg(bytecode.OpIfICmpGt, pIfICmpGt)
	reg(bytecode.OpIfICmpGe, pIfICmpGe)
	reg(bytecode.OpIfACmpEq, pIfACmpEq)
	reg(bytecode.OpIfACmpNe, pIfACmpNe)
	reg(bytecode.OpIfNull, pIfNull)
	reg(bytecode.OpIfNonNull, pIfNonNull)
	reg(bytecode.OpReturn, pReturn)
	reg(bytecode.OpIReturn, pValueReturn)
	reg(bytecode.OpFReturn, pValueReturn)
	reg(bytecode.OpAReturn, pValueReturn)
	reg(bytecode.OpGetField, pGetField)
	reg(bytecode.OpPutField, pPutField)
	reg(bytecode.OpInvokeStatic, pInvokeStatic)
	reg(bytecode.OpInvokeVirtual, pInvokeVirtual)
	reg(bytecode.OpInvokeSpecial, pInvokeSpecial)
	reg(bytecode.OpNewArray, pNewArray)
	reg(bytecode.OpArrayLength, pArrayLength)
	reg(bytecode.OpArrayLoad, pArrayLoad)
	reg(bytecode.OpArrayStore, pArrayStore)
	reg(bytecode.OpInstanceOf, pInstanceOf)
	reg(bytecode.OpCheckCast, pCheckCast)
	reg(bytecode.OpMonitorEnter, pMonitorEnter)
	reg(bytecode.OpMonitorExit, pMonitorExit)
	reg(bytecode.OpAThrow, pAThrow)

	// Superinstruction handlers (fused_handlers.go) are mode-neutral and
	// live in every table; their delegated finals dispatch through the
	// VM's live table and so pick up the mode/IC specializations below.
	registerFusedHandlers(&base)

	for m := range phandlerTables {
		for ic := range phandlerTables[m] {
			phandlerTables[m][ic] = base
		}
	}
	// Mode-specialized statics, allocation and static-invoke handlers:
	// the Shared tables probe (and populate) the pool entries'
	// ResolvedMirror caches, the Isolated tables index mirrors and
	// re-check initialization on every execution — neither consults
	// world.Isolated() at runtime.
	for ic := range phandlerTables[bytecode.PModeShared] {
		sh := &phandlerTables[bytecode.PModeShared][ic]
		sh[uint8(bytecode.OpGetStatic)] = pGetStaticShared
		sh[uint8(bytecode.OpPutStatic)] = pPutStaticShared
		sh[uint8(bytecode.OpNew)] = pNewShared
		iso := &phandlerTables[bytecode.PModeIsolated][ic]
		iso[uint8(bytecode.OpGetStatic)] = pGetStaticIsolated
		iso[uint8(bytecode.OpPutStatic)] = pPutStaticIsolated
		iso[uint8(bytecode.OpNew)] = pNewIsolated
	}
	// Inline-cached invokes live only in the ic=0 tables; ic=1 keeps the
	// generic resolution path (the Options.DisableInlineCaches ablation
	// and the before/after benchmark baseline).
	for m := range phandlerTables {
		t0 := &phandlerTables[m][0]
		t0[uint8(bytecode.OpInvokeVirtual)] = pInvokeVirtualIC
		t0[uint8(bytecode.OpInvokeSpecial)] = pInvokeSpecialFast
	}
	phandlerTables[bytecode.PModeShared][0][uint8(bytecode.OpInvokeStatic)] = pInvokeStaticShared
	phandlerTables[bytecode.PModeIsolated][0][uint8(bytecode.OpInvokeStatic)] = pInvokeStaticIsolated
}

func pInvalid(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	return fmt.Errorf("unimplemented handler %d in %s", in.H, f.method.QualifiedName())
}

// --- Constants -----------------------------------------------------------

func pNop(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.pc++
	return nil
}

func pIConst(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.push(heap.IntVal(in.I))
	f.pc++
	return nil
}

func pFConst(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.push(heap.FloatVal(in.F))
	f.pc++
	return nil
}

func pAConstNull(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.push(heap.Null())
	f.pc++
	return nil
}

func pLdcString(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	obj, err := vm.InternString(t, t.cur, entry.Str)
	if err != nil {
		return vm.Throw(t, ClassOutOfMemoryError, "string intern")
	}
	f.push(heap.RefVal(obj))
	f.pc++
	return nil
}

func pLdcClass(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	class, err := vm.resolvePoolClassEntry(f, entry)
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}
	obj, err := vm.ClassObjectFor(t, class, t.cur)
	if err != nil {
		return err
	}
	f.push(heap.RefVal(obj))
	f.pc++
	return nil
}

// --- Stack ---------------------------------------------------------------

func pPop(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.upop()
	f.pc++
	return nil
}

func pDup(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.push(f.upeek())
	f.pc++
	return nil
}

func pDupX1(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	a := f.upop()
	b := f.upop()
	f.push(a)
	f.push(b)
	f.push(a)
	f.pc++
	return nil
}

func pSwap(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	a := f.upop()
	b := f.upop()
	f.push(a)
	f.push(b)
	f.pc++
	return nil
}

// --- Locals --------------------------------------------------------------

func pLoad(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.push(f.locals[in.A])
	f.pc++
	return nil
}

func pStore(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.locals[in.A] = f.upop()
	f.pc++
	return nil
}

func pIInc(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.locals[in.A].I += int64(in.B)
	f.locals[in.A].Kind = classfile.KindInt
	f.pc++
	return nil
}

// --- Integer arithmetic --------------------------------------------------

func pIAdd(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I + b.I))
	f.pc++
	return nil
}

func pISub(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I - b.I))
	f.pc++
	return nil
}

func pIMul(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I * b.I))
	f.pc++
	return nil
}

func pIDiv(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if b.I == 0 {
		return vm.Throw(t, ClassArithmeticException, "/ by zero")
	}
	f.push(heap.IntVal(a.I / b.I))
	f.pc++
	return nil
}

func pIRem(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if b.I == 0 {
		return vm.Throw(t, ClassArithmeticException, "% by zero")
	}
	f.push(heap.IntVal(a.I % b.I))
	f.pc++
	return nil
}

func pINeg(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	f.push(heap.IntVal(-v.I))
	f.pc++
	return nil
}

func pIShl(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I << (uint64(b.I) & 63)))
	f.pc++
	return nil
}

func pIShr(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I >> (uint64(b.I) & 63)))
	f.pc++
	return nil
}

func pIUshr(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(int64(uint64(a.I) >> (uint64(b.I) & 63))))
	f.pc++
	return nil
}

func pIAnd(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I & b.I))
	f.pc++
	return nil
}

func pIOr(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I | b.I))
	f.pc++
	return nil
}

func pIXor(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.IntVal(a.I ^ b.I))
	f.pc++
	return nil
}

// --- Float arithmetic ----------------------------------------------------

func pFAdd(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.FloatVal(a.F + b.F))
	f.pc++
	return nil
}

func pFSub(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.FloatVal(a.F - b.F))
	f.pc++
	return nil
}

func pFMul(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.FloatVal(a.F * b.F))
	f.pc++
	return nil
}

func pFDiv(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	f.push(heap.FloatVal(a.F / b.F))
	f.pc++
	return nil
}

func pFNeg(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	f.push(heap.FloatVal(-v.F))
	f.pc++
	return nil
}

func pFCmp(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	switch {
	case a.F < b.F:
		f.push(heap.IntVal(-1))
	case a.F > b.F:
		f.push(heap.IntVal(1))
	default:
		f.push(heap.IntVal(0))
	}
	f.pc++
	return nil
}

func pI2F(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	f.push(heap.FloatVal(float64(v.I)))
	f.pc++
	return nil
}

func pF2I(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	f.push(heap.IntVal(int64(v.F)))
	f.pc++
	return nil
}

// --- Control flow --------------------------------------------------------

func pGoto(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	f.pc = in.A
	return nil
}

func pIfEq(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().I == 0 {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfNe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().I != 0 {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfLt(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().I < 0 {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfLe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().I <= 0 {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfGt(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().I > 0 {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfGe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().I >= 0 {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfICmpEq(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.I == b.I {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfICmpNe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.I != b.I {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfICmpLt(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.I < b.I {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfICmpLe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.I <= b.I {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfICmpGt(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.I > b.I {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfICmpGe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.I >= b.I {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfACmpEq(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.R == b.R {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfACmpNe(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	b := f.upop()
	a := f.upop()
	if a.R != b.R {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfNull(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().R == nil {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

func pIfNonNull(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if f.upop().R != nil {
		f.pc = in.A
	} else {
		f.pc++
	}
	return nil
}

// --- Returns -------------------------------------------------------------

func pReturn(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	return vm.returnFromFrame(t, heap.Void())
}

func pValueReturn(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	return vm.returnFromFrame(t, f.upop())
}

// --- Statics (the task-class-mirror hot path, §3.1) ----------------------
//
// The Shared handlers model the baseline JVM: after the first
// initialized access the mirror is cached on the pool entry and every
// later access is a single load, the way a JIT folds the initialization
// check away. The Isolated handlers are the paper's I-JVM sequence —
// re-index the mirror table with the thread's current isolate and
// re-check initialization on every access — with no Shared-cache probe
// and no world.Isolated() branch left in the steady state.

func pGetStaticShared(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	if mirror, ok := entry.ResolvedMirror.(*core.TaskClassMirror); ok {
		f.push(mirror.Statics[entry.ResolvedField.Load().Slot])
		f.pc++
		return nil
	}
	mirror, field, err := vm.staticMirrorResolve(t, f, entry, true)
	if err != nil || mirror == nil {
		return err // guest throw already delivered, or re-execute after <clinit>
	}
	f.push(mirror.Statics[field.Slot])
	f.pc++
	return nil
}

func pGetStaticIsolated(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	mirror, field, err := vm.staticMirrorResolve(t, f, in.Ref.(*classfile.PoolEntry), false)
	if err != nil || mirror == nil {
		return err
	}
	f.push(mirror.Statics[field.Slot])
	f.pc++
	return nil
}

func pPutStaticShared(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	if mirror, ok := entry.ResolvedMirror.(*core.TaskClassMirror); ok {
		mirror.Statics[entry.ResolvedField.Load().Slot] = f.upop()
		f.pc++
		return nil
	}
	mirror, field, err := vm.staticMirrorResolve(t, f, entry, true)
	if err != nil || mirror == nil {
		return err
	}
	mirror.Statics[field.Slot] = f.upop()
	f.pc++
	return nil
}

func pPutStaticIsolated(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	mirror, field, err := vm.staticMirrorResolve(t, f, in.Ref.(*classfile.PoolEntry), false)
	if err != nil || mirror == nil {
		return err
	}
	mirror.Statics[field.Slot] = f.upop()
	f.pc++
	return nil
}

// --- Instance fields -----------------------------------------------------
//
// Prepared getfield/putfield sites cache the resolved field slot on the
// instruction itself (bytecode.FieldSlot, published once): the steady
// state is one atomic int32 load and a direct index into the receiver's
// field array, skipping the pool-entry indirection and the resolved-field
// pointer chase. The slow path resolves through the pool entry (whose
// ResolvedField cache it also populates) and publishes the slot, so the
// null-receiver error path can always recover the field's qualified name
// from the entry.

func pGetField(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if slot := in.FS.Get(); slot >= 0 {
		recv := f.upop()
		if recv.R == nil {
			return vm.Throw(t, ClassNullPointerException, "getfield "+pFieldName(in))
		}
		f.push(recv.R.Fields[slot])
		f.pc++
		return nil
	}
	entry := in.Ref.(*classfile.PoolEntry)
	field, err := vm.resolveFieldEntry(f, entry, false)
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}
	in.FS.Publish(int32(field.Slot))
	recv := f.upop()
	if recv.R == nil {
		return vm.Throw(t, ClassNullPointerException, "getfield "+field.QualifiedName())
	}
	f.push(recv.R.Fields[field.Slot])
	f.pc++
	return nil
}

func pPutField(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if slot := in.FS.Get(); slot >= 0 {
		v := f.upop()
		recv := f.upop()
		if recv.R == nil {
			return vm.Throw(t, ClassNullPointerException, "putfield "+pFieldName(in))
		}
		// SATB write barrier: while a mark phase is open, record the
		// overwritten reference and publish the new one atomically for
		// concurrent markers. Idle fast path: one plain flag load (the
		// per-quantum cached barrier flag, tier.go barrierOn), plain
		// store. (Statics and locals need no barrier — root sets are
		// snapshot copies.)
		if sp := &recv.R.Fields[slot]; vm.barrierOn(t) {
			vm.gcWriteSlot(t, sp, v)
		} else {
			*sp = v
		}
		f.pc++
		return nil
	}
	entry := in.Ref.(*classfile.PoolEntry)
	field, err := vm.resolveFieldEntry(f, entry, false)
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}
	in.FS.Publish(int32(field.Slot))
	v := f.upop()
	recv := f.upop()
	if recv.R == nil {
		return vm.Throw(t, ClassNullPointerException, "putfield "+field.QualifiedName())
	}
	if sp := &recv.R.Fields[field.Slot]; vm.barrierOn(t) {
		vm.gcWriteSlot(t, sp, v)
	} else {
		*sp = v
	}
	f.pc++
	return nil
}

// pFieldName recovers the qualified field name of a get/putfield site for
// error messages; the slot cache is only published after the pool entry's
// ResolvedField cache, so on the fast path the name is always available.
func pFieldName(in *bytecode.PInstr) string {
	if entry, ok := in.Ref.(*classfile.PoolEntry); ok {
		if field := entry.ResolvedField.Load(); field != nil {
			return field.QualifiedName()
		}
	}
	return "<unresolved field>"
}

// --- Invocation ----------------------------------------------------------
//
// The inline-cached handlers find the receiver through the argument
// count baked into PInstr.B at preparation time, so a cache hit skips
// symbolic resolution, the per-class resolution cache (its signature
// concatenation and lock), and the descriptor-derived argument count —
// the call funnels straight into the shared invocation tail
// (invokeResolved). Misses take the generic invokeEntry path, which
// publishes the observed (receiver class, target) pair into the site's
// cache; megamorphic sites stop publishing and live on the per-class
// resolution cache.

func pInvokeVirtualIC(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	nargs := int(in.B)
	// The preparation dataflow proved the operand window present, so the
	// receiver peek needs no depth check.
	recv := f.stack[len(f.stack)-nargs]
	if recv.R != nil {
		if line := in.IC.Line(); line != nil {
			if line.Mega {
				// Terminal state: a megamorphic line holds no entries, so
				// probing it is a guaranteed miss — resolve through the
				// per-class cache with no further publication attempts.
				return vm.invokeEntryIC(t, f, in.Ref.(*classfile.PoolEntry), bytecode.OpInvokeVirtual, f.pc+1, nil)
			}
			if target := line.Lookup(unsafe.Pointer(recv.R.Class)); target != nil {
				return vm.invokeResolved(t, f, (*classfile.Method)(target), nargs, true, f.pc+1)
			}
		}
	}
	return vm.invokeEntryIC(t, f, in.Ref.(*classfile.PoolEntry), bytecode.OpInvokeVirtual, f.pc+1, in.IC)
}

// pInvokeSpecialFast dispatches directly through the pool entry's
// resolved method (invokespecial has no receiver-class dispatch); only
// the first execution and null receivers take the generic path.
func pInvokeSpecialFast(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	if m := in.Ref.(*classfile.PoolEntry).ResolvedMethod.Load(); m != nil {
		nargs := int(in.B)
		if f.stack[len(f.stack)-nargs].R != nil {
			return vm.invokeResolved(t, f, m, nargs, true, f.pc+1)
		}
	}
	return vm.invokeEntry(t, f, in.Ref.(*classfile.PoolEntry), bytecode.OpInvokeSpecial, f.pc+1)
}

// pInvokeStaticShared skips the initialization check once the entry's
// ResolvedMirror cache proves the class initialized (baseline
// semantics); pInvokeStaticIsolated re-checks initialization on every
// execution, as I-JVM must.
func pInvokeStaticShared(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	if entry.ResolvedMirror != nil {
		if m := entry.ResolvedMethod.Load(); m != nil {
			return vm.invokeResolved(t, f, m, int(in.B), false, f.pc+1)
		}
	}
	return vm.invokeEntry(t, f, entry, bytecode.OpInvokeStatic, f.pc+1)
}

func pInvokeStaticIsolated(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	if m := entry.ResolvedMethod.Load(); m != nil {
		ready, err := vm.ensureInitialized(t, m.Class, t.cur)
		if err != nil || !ready {
			return err
		}
		return vm.invokeResolved(t, f, m, int(in.B), false, f.pc+1)
	}
	return vm.invokeEntry(t, f, entry, bytecode.OpInvokeStatic, f.pc+1)
}

// Generic invoke handlers (the DisableInlineCaches tables).

func pInvokeStatic(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	return vm.invokeEntry(t, f, in.Ref.(*classfile.PoolEntry), bytecode.OpInvokeStatic, f.pc+1)
}

func pInvokeVirtual(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	return vm.invokeEntry(t, f, in.Ref.(*classfile.PoolEntry), bytecode.OpInvokeVirtual, f.pc+1)
}

func pInvokeSpecial(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	return vm.invokeEntry(t, f, in.Ref.(*classfile.PoolEntry), bytecode.OpInvokeSpecial, f.pc+1)
}

// --- Objects and arrays --------------------------------------------------

// pNewShared folds the class-initialization check into the entry's
// ResolvedMirror cache (baseline semantics: checked once per call
// site); pNewIsolated re-checks on every execution.
func pNewShared(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	class := entry.ResolvedClass.Load()
	if class == nil || entry.ResolvedMirror == nil {
		var err error
		class, err = vm.resolvePoolClassEntry(f, entry)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		ready, err := vm.ensureInitialized(t, class, t.cur)
		if err != nil || !ready {
			return err
		}
		entry.ResolvedMirror = vm.world.Mirror(class, t.cur)
	}
	obj, err := vm.AllocObjectIn(t, class, t.cur)
	if err != nil {
		return vm.Throw(t, ClassOutOfMemoryError, err.Error())
	}
	f.push(heap.RefVal(obj))
	f.pc++
	return nil
}

func pNewIsolated(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	entry := in.Ref.(*classfile.PoolEntry)
	class, err := vm.resolvePoolClassEntry(f, entry)
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}
	ready, err := vm.ensureInitialized(t, class, t.cur)
	if err != nil || !ready {
		return err
	}
	obj, err := vm.AllocObjectIn(t, class, t.cur)
	if err != nil {
		return vm.Throw(t, ClassOutOfMemoryError, err.Error())
	}
	f.push(heap.RefVal(obj))
	f.pc++
	return nil
}

func pNewArray(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	n := f.upop()
	if n.I < 0 {
		return vm.Throw(t, ClassNegativeArraySize, fmt.Sprintf("%d", n.I))
	}
	var elemClass *classfile.Class
	var err error
	if in.Ref == nil {
		elemClass, err = vm.lookupWellKnown(ClassObject)
	} else {
		elemClass, err = vm.resolvePoolClassEntry(f, in.Ref.(*classfile.PoolEntry))
	}
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}
	arr, err := vm.AllocArrayIn(t, elemClass, int(n.I), t.cur)
	if err != nil {
		return vm.Throw(t, ClassOutOfMemoryError, err.Error())
	}
	f.push(heap.RefVal(arr))
	f.pc++
	return nil
}

func pArrayLength(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	if v.R == nil {
		return vm.Throw(t, ClassNullPointerException, "arraylength")
	}
	if !v.R.IsArray() {
		return vm.Throw(t, ClassClassCastException, "arraylength on non-array")
	}
	f.push(heap.IntVal(int64(len(v.R.Elems))))
	f.pc++
	return nil
}

func pArrayLoad(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	idx := f.upop()
	arr := f.upop()
	if arr.R == nil {
		return vm.Throw(t, ClassNullPointerException, "arrayload")
	}
	if !arr.R.IsArray() {
		return vm.Throw(t, ClassClassCastException, "arrayload on non-array")
	}
	if idx.I < 0 || idx.I >= int64(len(arr.R.Elems)) {
		return vm.Throw(t, ClassArrayIndexException, fmt.Sprintf("index %d of %d", idx.I, len(arr.R.Elems)))
	}
	f.push(arr.R.Elems[idx.I])
	f.pc++
	return nil
}

func pArrayStore(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	idx := f.upop()
	arr := f.upop()
	if arr.R == nil {
		return vm.Throw(t, ClassNullPointerException, "arraystore")
	}
	if !arr.R.IsArray() {
		return vm.Throw(t, ClassClassCastException, "arraystore on non-array")
	}
	if idx.I < 0 || idx.I >= int64(len(arr.R.Elems)) {
		return vm.Throw(t, ClassArrayIndexException, fmt.Sprintf("index %d of %d", idx.I, len(arr.R.Elems)))
	}
	// Frozen arrays (zero-copy RPC payloads, internal/heap frozen.go) are
	// deeply immutable; guest stores are rejected before the barrier path.
	if arr.R.Frozen() {
		return vm.Throw(t, ClassIllegalState, "store to frozen array")
	}
	// SATB write barrier, as in pPutField.
	if sp := &arr.R.Elems[idx.I]; vm.barrierOn(t) {
		vm.gcWriteSlot(t, sp, v)
	} else {
		*sp = v
	}
	f.pc++
	return nil
}

func pInstanceOf(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	class, err := vm.resolvePoolClassEntry(f, in.Ref.(*classfile.PoolEntry))
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}
	f.push(heap.BoolVal(v.R != nil && v.R.Class.IsSubclassOf(class)))
	f.pc++
	return nil
}

func pCheckCast(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upeek()
	if v.R != nil {
		class, err := vm.resolvePoolClassEntry(f, in.Ref.(*classfile.PoolEntry))
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		if !v.R.Class.IsSubclassOf(class) {
			return vm.Throw(t, ClassClassCastException,
				v.R.Class.Name+" cannot be cast to "+class.Name)
		}
	}
	f.pc++
	return nil
}

// --- Monitors ------------------------------------------------------------

func pMonitorEnter(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upeek()
	if v.R == nil {
		f.upop()
		return vm.Throw(t, ClassNullPointerException, "monitorenter")
	}
	if vm.tryAcquireMonitor(t, v.R) {
		f.noteEnter(v.R)
		f.upop()
		f.pc++
		return nil
	}
	// Re-execute this instruction once the monitor frees up.
	vm.blockOnMonitor(t, v.R)
	return nil
}

func pMonitorExit(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	if v.R == nil {
		return vm.Throw(t, ClassNullPointerException, "monitorexit")
	}
	if !vm.monitorExitChecked(t, v.R) {
		return vm.Throw(t, ClassIllegalMonitorState, "monitorexit without ownership")
	}
	f.noteExit(v.R)
	f.pc++
	return nil
}

// --- Exceptions ----------------------------------------------------------

func pAThrow(vm *VM, t *Thread, f *Frame, in *bytecode.PInstr) error {
	v := f.upop()
	if v.R == nil {
		return vm.Throw(t, ClassNullPointerException, "athrow null")
	}
	return vm.DeliverException(t, v.R)
}
