package interp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/loader"
)

// Snapshot fast-start
//
// A Snapshot is a checkpoint of a fully warmed isolate taken at a
// safepoint: the initialization state and static variable slots of every
// task class mirror the isolate touched, the reachable static object
// graph, the interned-string pool, and the isolate's resource account at
// capture. CloneIsolate materializes new tenants from it in microseconds
// instead of replaying class definition, preparation and <clinit> —
// the paper's gateway scenario (§1) at serverless density.
//
// What is shared vs. private:
//
//   - prepared/fused/closure-tier code is shared automatically: PCode is
//     cached on the Method (bootstrap-owned or template-loader-owned), so
//     every clone of the same VM reuses the exact published bodies via
//     the existing first-wins CAS — and since clones run in the same VM
//     and the same isolation mode as their template, no re-quicken is
//     ever needed at clone time (mode flips go through SetIsolationMode's
//     stop-the-world re-quicken as before);
//   - interned strings are shared by pointer: the clone adopts the
//     template's copy-on-write pool map and grows privately from it;
//     string objects are immutable, and pool identity is what keeps
//     guest == semantics identical to a cold start;
//   - frozen arrays (heap.Freeze) are shared by pointer and kept alive
//     by the snapshot's shared pins; CaptureSnapshot can optionally
//     freeze the captured static arrays first (FreezeShared) to maximize
//     sharing when tenants treat warm-up data as read-only;
//   - everything else — mutable statics, the reachable object graph, the
//     java.lang.Class objects — is a private per-clone copy (the "delta"
//     every tenant may mutate freely).
//
// Class visibility: cloning shares classes, so the captured classes must
// be resolvable without binding the clone to another isolate — they must
// live in loaders that have no isolate (a "template loader" pattern: the
// warmer isolate's own loader defines nothing and delegates to the
// template loader), or the template isolate must have been freed first.
// CloneIsolate enforces this.
type Snapshot struct {
	vm      *VM
	srcID   heap.IsolateID
	srcName string

	// delegates is the loader wiring a clone needs to resolve exactly the
	// class set the template resolved: the template's own loader first (if
	// it defined classes), then its delegates in order.
	delegates []*loader.Loader

	classes []snapClass
	objects []snapObject
	pool    map[string]*heap.Object

	// pinned holds every shared-by-pointer object, pinned for the
	// snapshot's lifetime so clones stay valid after the template dies.
	pinned []*heap.Object

	// frozen is the undo record of arrays this capture speculatively
	// froze (FreezeShared). Only a failed capture consults it — success
	// clears it, because an established snapshot's frozen graphs must
	// stay immutable for the clones' lifetime.
	frozen []*heap.Object

	account core.Account
	alloc   heap.AllocStats

	released atomic.Bool
}

// SnapshotOptions configures CaptureSnapshot.
type SnapshotOptions struct {
	// FreezeShared freezes captured static arrays (deep-immutable shapes
	// only) so clones share them by pointer instead of copying. Freezing
	// is visible to guests — stores into a frozen array throw — so it is
	// opt-in: enable it for serving workloads whose warm-up tables are
	// read-only, leave it off when clones must be byte-identical to cold
	// starts in every store.
	FreezeShared bool
}

// snapValue is one captured variable slot: scalars by value, references
// as an index into Snapshot.objects (refNone for null/scalar).
type snapValue struct {
	kind classfile.Kind
	i    int64
	f    float64
	ref  int32
}

const refNone = int32(-1)

// snapClass is one captured task class mirror.
type snapClass struct {
	class       *classfile.Class
	state       core.InitState
	statics     []snapValue
	hasClassObj bool
}

// snapObject is one node of the captured static object graph. Exactly one
// of the representations is active: shared (reused by pointer), str
// (string payload copy), classOf (java.lang.Class native), or the
// fields/elems copy.
type snapObject struct {
	class   *classfile.Class
	shared  *heap.Object
	str     string
	isStr   bool
	classOf *classfile.Class
	isArray bool
	fields  []snapValue
	elems   []snapValue
}

// CaptureSnapshot checkpoints src at a safepoint. The world is stopped
// for the duration (the same machinery exact collections use), so the
// captured cut is consistent: no torn references, no half-run stores.
// Capture fails on graphs the clone path cannot reproduce — connection
// objects and opaque native payloads (live system-library state parked in
// statics); warm-up code should leave only data behind.
//
// The caller must Release the snapshot when no more clones will be made;
// Release drops the shared pins that keep pool strings and frozen arrays
// alive after the template isolate dies.
func (vm *VM) CaptureSnapshot(src *core.Isolate, opts SnapshotOptions) (*Snapshot, error) {
	if src == nil {
		return nil, errors.New("interp: capture nil isolate")
	}
	if src.Killed() {
		return nil, fmt.Errorf("interp: cannot capture killed isolate %s", src.Name())
	}
	snap := &Snapshot{vm: vm, srcID: src.ID(), srcName: src.Name()}
	var err error
	vm.withWorldStopped(func() {
		err = vm.captureStopped(snap, src, opts)
	})
	if err != nil {
		// Unwind everything the partial capture did to the template:
		// thaw the arrays this capture froze (still inside the stopped
		// world on the flattener's path out, but harmless here too — no
		// guest observed the bits), then drop every shared pin taken so
		// far so the pin table is exactly as it was. A failed capture
		// must be a pure no-op: the template keeps serving.
		heap.Unfreeze(snap.frozen)
		snap.frozen = nil
		snap.Release()
		return nil, err
	}
	snap.frozen = nil
	return snap, nil
}

// captureStopped does the actual capture; the world is stopped.
func (vm *VM) captureStopped(snap *Snapshot, src *core.Isolate, opts SnapshotOptions) error {
	srcLoader := src.Loader()
	if srcLoader.NumClasses() > 0 {
		snap.delegates = append(snap.delegates, srcLoader)
	}
	snap.delegates = append(snap.delegates, srcLoader.Delegates()...)

	snap.pool = src.StringPoolSnapshot()
	poolSet := make(map[*heap.Object]bool, len(snap.pool))
	for _, obj := range snap.pool {
		poolSet[obj] = true
		vm.heap.PinShared(obj)
		snap.pinned = append(snap.pinned, obj)
	}

	fl := &flattener{vm: vm, snap: snap, poolSet: poolSet, opts: opts, memo: make(map[*heap.Object]int32)}
	for _, e := range vm.world.MirrorEntries(src) {
		sc := snapClass{
			class:       e.Class,
			state:       e.Mirror.State,
			hasClassObj: e.Mirror.ClassObject.Load() != nil,
		}
		sc.statics = make([]snapValue, len(e.Mirror.Statics))
		for i, v := range e.Mirror.Statics {
			sv, err := fl.encode(v)
			if err != nil {
				return fmt.Errorf("capture %s.%s: %w", e.Class.Name, e.Class.StaticFields[i].Name, err)
			}
			sc.statics[i] = sv
		}
		snap.classes = append(snap.classes, sc)
	}

	snap.account = src.Account().Numbers()
	snap.alloc = vm.heap.AllocStatsFor(src.ID())
	return nil
}

// flattener serializes the reachable static object graph into flat
// records, preserving aliasing and cycles through the memo.
type flattener struct {
	vm      *VM
	snap    *Snapshot
	poolSet map[*heap.Object]bool
	opts    SnapshotOptions
	memo    map[*heap.Object]int32
}

func (fl *flattener) encode(v heap.Value) (snapValue, error) {
	sv := snapValue{kind: v.Kind, i: v.I, f: v.F, ref: refNone}
	if v.R != nil {
		idx, err := fl.flatten(v.R)
		if err != nil {
			return sv, err
		}
		sv.ref = idx
	}
	return sv, nil
}

func (fl *flattener) flatten(o *heap.Object) (int32, error) {
	if idx, ok := fl.memo[o]; ok {
		return idx, nil
	}
	idx := int32(len(fl.snap.objects))
	fl.memo[o] = idx
	fl.snap.objects = append(fl.snap.objects, snapObject{class: o.Class})
	rec := &fl.snap.objects[idx]

	share := func() {
		rec.shared = o
		fl.vm.heap.PinShared(o)
		fl.snap.pinned = append(fl.snap.pinned, o)
	}

	if fl.poolSet[o] || o.Frozen() {
		share()
		return idx, nil
	}
	if fl.opts.FreezeShared && o.IsArray() {
		if flipped, err := heap.FreezeTracked(o); err == nil {
			// Record the newly frozen arrays so a capture that fails on a
			// later record can thaw them — otherwise the failed capture
			// would permanently poison the template's statics (stores
			// into frozen arrays throw).
			fl.snap.frozen = append(fl.snap.frozen, flipped...)
			share()
			return idx, nil
		}
	}
	if s, ok := o.StringValue(); ok {
		rec.str, rec.isStr = s, true
		return idx, nil
	}
	if o.IsConnection {
		return idx, fmt.Errorf("connection object of class %s is not snapshotable", o.Class.Name)
	}
	if o.Native != nil {
		if c, ok := o.Native.(*classfile.Class); ok {
			rec.classOf = c
			return idx, nil
		}
		return idx, fmt.Errorf("opaque native payload on %s is not snapshotable", o.Class.Name)
	}
	// From here on recursion may grow fl.snap.objects and relocate the
	// record, so writes go through the stable slice headers allocated
	// before descending (the copies share backing arrays).
	if o.IsArray() {
		rec.isArray = true
		rec.elems = make([]snapValue, len(o.Elems))
		elems := rec.elems
		for i, ev := range o.Elems {
			sv, err := fl.encode(ev)
			if err != nil {
				return idx, err
			}
			elems[i] = sv
		}
		return idx, nil
	}
	rec.fields = make([]snapValue, len(o.Fields))
	fields := rec.fields
	for i, fv := range o.Fields {
		sv, err := fl.encode(fv)
		if err != nil {
			return idx, err
		}
		fields[i] = sv
	}
	return idx, nil
}

// Released reports whether Release ran.
func (snap *Snapshot) Released() bool { return snap.released.Load() }

// SourceName returns the captured isolate's name (diagnostics).
func (snap *Snapshot) SourceName() string { return snap.srcName }

// NumClasses returns the number of captured task class mirrors.
func (snap *Snapshot) NumClasses() int { return len(snap.classes) }

// NumObjects returns the number of captured graph nodes.
func (snap *Snapshot) NumObjects() int { return len(snap.objects) }

// Release drops the snapshot's shared pins. Existing clones stay valid —
// their mirrors and pools root everything they use — but no further
// clones may be made.
func (snap *Snapshot) Release() {
	if !snap.released.CompareAndSwap(false, true) {
		return
	}
	for _, o := range snap.pinned {
		snap.vm.heap.UnpinShared(o)
	}
	snap.pinned = nil
}

// CloneIsolate materializes a new tenant isolate from a warmed snapshot:
// a fresh loader wired to the template's class owners, the whole mirror
// column installed in one publication (statics already initialized, so no
// <clinit> runs), the template's interned-string pool adopted by pointer,
// and the account and allocation counters seeded to the capture-time
// values — byte-identical to a cold start that ran the same warm-up.
//
// Materialization is GC-safe without stopping the world: every copy is
// allocated and rooted atomically against exact collections through a
// HostRoots batch, and released only after the mirrors (the permanent
// roots) are published.
func (vm *VM) CloneIsolate(snap *Snapshot, name string) (*core.Isolate, error) {
	if snap == nil || snap.vm != vm {
		return nil, errors.New("interp: clone requires a snapshot of this VM")
	}
	if snap.Released() {
		return nil, errors.New("interp: snapshot already released")
	}
	if !vm.world.Isolated() {
		return nil, errors.New("interp: cloning requires isolated mode (use RestoreInPlace in shared mode)")
	}
	for _, d := range snap.delegates {
		if owner := vm.world.IsolateForLoader(d); owner != nil {
			if owner.ID() == snap.srcID && d.NumClasses() > 0 {
				return nil, fmt.Errorf("interp: template %s still owns its classes; free it first or define classes in an isolate-less template loader", snap.srcName)
			}
		}
	}
	l := vm.registry.NewLoader(name)
	for _, d := range snap.delegates {
		l.AddDelegate(d)
	}
	iso, err := vm.world.NewIsolate(name, l)
	if err != nil {
		vm.registry.ReleaseLoader(l)
		return nil, err
	}
	roots := vm.NewHostRoots(iso)
	defer roots.Release()
	objs, classObjs, err := vm.materializeGraph(snap, iso, roots)
	if err != nil {
		return nil, vm.unwindClone(iso, roots, err)
	}
	mirrors := make(map[int]*core.TaskClassMirror, len(snap.classes))
	for i := range snap.classes {
		sc := &snap.classes[i]
		m, err := vm.buildMirror(snap, sc, iso, roots, objs, classObjs)
		if err != nil {
			return nil, vm.unwindClone(iso, roots, err)
		}
		mirrors[sc.class.StaticsID] = m
	}
	if err := vm.world.InstallMirrors(iso, mirrors); err != nil {
		return nil, vm.unwindClone(iso, roots, err)
	}
	iso.AdoptStringPool(snap.pool)
	iso.Account().Seed(snap.account)
	vm.heap.SeedAllocCounters(iso.ID(), snap.alloc)
	return iso, nil
}

// unwindClone rolls back a mid-materialization clone failure so the
// attempt leaves no trace: the half-built isolate consumed a dense
// isolate ID, a registry loader slot, heap bytes for the partial copy,
// and possibly an installed mirror column — all of which would leak if
// the error return simply abandoned them (the clone pool retries clone
// failures forever; a leak per attempt would exhaust the ID space and
// the heap). The unwind reuses the sanctioned teardown pipeline, in
// dependency order:
//
//	release roots -> kill -> collect -> FreeIsolate
//
// Releasing the HostRoots batch first unroots the partial copies;
// killing the (never-run) isolate removes its mirrors from the root set;
// the accounting collection then sweeps every byte the attempt charged
// and flips the corpse to Disposed (nothing else can root a clone that
// never ran); FreeIsolate finally returns the dense ID to the world's
// free list, clears any installed mirror column, resets the heap
// counters and releases the classless loader back to the registry. Every
// step is host-side and safepoint-aware, so a failed clone behind a live
// scheduler unwinds without stopping tenant progress beyond the one
// collection. The original cause is returned, annotated if the unwind
// itself could not complete (which would indicate a bug, not a full
// heap).
func (vm *VM) unwindClone(iso *core.Isolate, roots *HostRoots, cause error) error {
	roots.Release()
	if err := vm.KillIsolate(nil, iso); err != nil {
		return fmt.Errorf("%w (clone unwind: kill failed: %v)", cause, err)
	}
	vm.CollectGarbage(nil)
	if !iso.Disposed() {
		return fmt.Errorf("%w (clone unwind: isolate %s not disposed after sweep)", cause, iso.Name())
	}
	if err := vm.FreeIsolate(iso); err != nil {
		return fmt.Errorf("%w (clone unwind: free failed: %v)", cause, err)
	}
	return cause
}

// materializeGraph allocates the private copies of the captured graph,
// charged to iso and rooted in roots. Shared records reuse the pinned
// template object by pointer.
func (vm *VM) materializeGraph(snap *Snapshot, iso *core.Isolate, roots *HostRoots) ([]*heap.Object, map[*classfile.Class]*heap.Object, error) {
	objs := make([]*heap.Object, len(snap.objects))
	classObjs := make(map[*classfile.Class]*heap.Object)
	for i := range snap.objects {
		so := &snap.objects[i]
		switch {
		case so.shared != nil:
			objs[i] = so.shared
		case so.isStr:
			obj, err := vm.NewStringRooted(roots, so.str, iso)
			if err != nil {
				return nil, nil, err
			}
			objs[i] = obj
		case so.classOf != nil:
			obj, err := vm.classObjectRooted(so.classOf, iso, roots, classObjs)
			if err != nil {
				return nil, nil, err
			}
			objs[i] = obj
		case so.isArray:
			obj, err := vm.AllocArrayRooted(roots, so.class, len(so.elems), iso)
			if err != nil {
				return nil, nil, err
			}
			objs[i] = obj
		default:
			obj, err := vm.AllocObjectRooted(roots, so.class, iso)
			if err != nil {
				return nil, nil, err
			}
			objs[i] = obj
		}
	}
	// Second pass: wire fields and elements now that every node exists
	// (aliases and cycles resolve through the index space).
	for i := range snap.objects {
		so := &snap.objects[i]
		if so.shared != nil || so.isStr || so.classOf != nil {
			continue
		}
		if so.isArray {
			for j, sv := range so.elems {
				objs[i].Elems[j] = decodeValue(sv, objs)
			}
			continue
		}
		for j, sv := range so.fields {
			objs[i].Fields[j] = decodeValue(sv, objs)
		}
	}
	return objs, classObjs, nil
}

// classObjectRooted materializes iso's java.lang.Class object for c,
// memoized so a class object reachable both from statics and from its
// mirror stays one object (as in the template).
func (vm *VM) classObjectRooted(c *classfile.Class, iso *core.Isolate, roots *HostRoots, memo map[*classfile.Class]*heap.Object) (*heap.Object, error) {
	if obj, ok := memo[c]; ok {
		return obj, nil
	}
	classClass, err := vm.lookupWellKnown(ClassClass)
	if err != nil {
		return nil, err
	}
	obj, err := roots.alloc(func() (*heap.Object, error) {
		return vm.heap.AllocNative(classClass, c, 0, false, iso.ID())
	})
	if err != nil {
		return nil, err
	}
	memo[c] = obj
	return obj, nil
}

// buildMirror constructs one clone mirror from a captured class record. A
// capture that raced a running <clinit> (state InitRunning) yields a
// fresh uninitialized mirror: the clone re-runs the initializer from
// scratch rather than resuming a half-run one.
func (vm *VM) buildMirror(snap *Snapshot, sc *snapClass, iso *core.Isolate, roots *HostRoots, objs []*heap.Object, classObjs map[*classfile.Class]*heap.Object) (*core.TaskClassMirror, error) {
	m := &core.TaskClassMirror{}
	if sc.state == core.InitRunning {
		m.State = core.InitNone
		m.Statics = make([]heap.Value, len(sc.statics))
		for i, f := range sc.class.StaticFields {
			m.Statics[i] = heap.ZeroOf(f.Kind)
		}
	} else {
		m.State = sc.state
		m.Statics = make([]heap.Value, len(sc.statics))
		for i, sv := range sc.statics {
			m.Statics[i] = decodeValue(sv, objs)
		}
	}
	if sc.hasClassObj {
		obj, err := vm.classObjectRooted(sc.class, iso, roots, classObjs)
		if err != nil {
			return nil, err
		}
		m.ClassObject.Store(obj)
	}
	return m, nil
}

func decodeValue(sv snapValue, objs []*heap.Object) heap.Value {
	v := heap.Value{Kind: sv.kind, I: sv.i, F: sv.f}
	if sv.ref >= 0 {
		v.R = objs[sv.ref]
	}
	return v
}

// RestoreInPlace rewinds the captured isolate itself back to the
// snapshot: every captured mirror's state and statics are overwritten in
// place (the mirror structs are identity-stable, so Shared-mode
// ResolvedMirror pool caches stay valid), the string pool is reset to the
// captured map, and the account and allocation counters are re-seeded.
// This is the Shared-mode counterpart of CloneIsolate — the baseline VM
// has exactly one isolate, so "spawn a fresh tenant" means "reset the
// world to the warm point".
//
// Contract: the warm-up must have touched every class the isolate ever
// initialized ("full warm"), because an initialized mirror the snapshot
// does not cover cannot be reset safely — Shared-mode pool caches skip
// the initialization check, so zeroing such a mirror would expose
// uninitialized statics without re-running <clinit>. RestoreInPlace
// validates this before mutating anything.
func (snap *Snapshot) RestoreInPlace() error {
	vm := snap.vm
	if snap.Released() {
		return errors.New("interp: snapshot already released")
	}
	iso := vm.world.IsolateByID(snap.srcID)
	if iso == nil || iso.Killed() || iso.Name() != snap.srcName {
		return fmt.Errorf("interp: snapshot source %s is gone", snap.srcName)
	}
	roots := vm.NewHostRoots(iso)
	defer roots.Release()
	objs, classObjs, err := vm.materializeGraph(snap, iso, roots)
	if err != nil {
		return err
	}
	bySid := make(map[int]*snapClass, len(snap.classes))
	for i := range snap.classes {
		bySid[snap.classes[i].class.StaticsID] = &snap.classes[i]
	}
	var rerr error
	vm.withWorldStopped(func() {
		entries := vm.world.MirrorEntries(iso)
		// Validate the full-warm contract before mutating anything.
		for _, e := range entries {
			if _, ok := bySid[e.Class.StaticsID]; ok {
				continue
			}
			if e.Mirror.State != core.InitNone {
				rerr = fmt.Errorf("interp: snapshot does not cover initialized class %s; capture after a full warm-up", e.Class.Name)
				return
			}
		}
		for _, e := range entries {
			sc, ok := bySid[e.Class.StaticsID]
			if !ok {
				// Untouched mirror (lazily grown, never initialized):
				// reset its Class object so lazy allocation replays
				// identically.
				e.Mirror.ClassObject.Store(nil)
				continue
			}
			restoreMirror(e.Mirror, sc, objs, classObjs)
		}
		iso.AdoptStringPool(snap.pool)
		iso.Account().Seed(snap.account)
		vm.heap.SeedAllocCounters(iso.ID(), snap.alloc)
	})
	return rerr
}

// restoreMirror overwrites one existing mirror in place with the captured
// record.
func restoreMirror(m *core.TaskClassMirror, sc *snapClass, objs []*heap.Object, classObjs map[*classfile.Class]*heap.Object) {
	if sc.state == core.InitRunning {
		m.State = core.InitNone
		for i, f := range sc.class.StaticFields {
			m.Statics[i] = heap.ZeroOf(f.Kind)
		}
	} else {
		m.State = sc.state
		for i, sv := range sc.statics {
			m.Statics[i] = decodeValue(sv, objs)
		}
	}
	m.InitThread = 0
	if !sc.hasClassObj {
		m.ClassObject.Store(nil)
	} else if m.ClassObject.Load() == nil {
		if obj, ok := classObjs[sc.class]; ok {
			m.ClassObject.Store(obj)
		}
	}
}

// FreeIsolate returns a disposed isolate to the recycling pool: its
// accounting ID, mirror column, heap counters and (if classless) loader
// are all reclaimed for the next NewIsolate/CloneIsolate. The isolate
// must be fully disposed — killed, swept by an accounting collection, no
// live charged objects — and must have no undone threads still bound to
// it. Recycling is a host-side operation between runs (or at a
// safepoint); the concurrent scheduler keys its shards by isolate
// pointer per run, so a recycled ID is adopted naturally on the next
// spawn.
func (vm *VM) FreeIsolate(iso *core.Isolate) error {
	if iso == nil {
		return errors.New("interp: free nil isolate")
	}
	vm.threadsMu.Lock()
	for _, t := range vm.threads {
		if !t.Done() && t.cur == iso {
			vm.threadsMu.Unlock()
			return fmt.Errorf("interp: thread %d still executes in %s", t.ID(), iso.Name())
		}
	}
	vm.threadsMu.Unlock()
	l := iso.Loader()
	if err := vm.world.FreeIsolate(iso, vm.heap); err != nil {
		return err
	}
	vm.pinMu.Lock()
	delete(vm.pinned, iso.ID())
	vm.pinMu.Unlock()
	vm.registry.ReleaseLoader(l)
	return nil
}

// ReachabilityFingerprint hashes the canonical shape of everything
// reachable from one isolate's mirrors and string pool: class names,
// initialization states, value kinds and scalars, string payloads, array
// lengths, and the aliasing structure of the reference graph (visit-order
// numbering, so two isomorphic graphs hash equal regardless of object
// identity). The differential oracle uses it to prove a clone's post-GC
// reachability is byte-identical to a cold start's. Callers run it while
// the isolate executes no guest code.
func (vm *VM) ReachabilityFingerprint(iso *core.Isolate) uint64 {
	h := fnv.New64a()
	seen := make(map[*heap.Object]int)
	var walkVal func(v heap.Value)
	var walkObj func(o *heap.Object)
	walkObj = func(o *heap.Object) {
		if n, ok := seen[o]; ok {
			fmt.Fprintf(h, "@%d;", n)
			return
		}
		n := len(seen)
		seen[o] = n
		fmt.Fprintf(h, "#%d:%s", n, o.Class.Name)
		if s, ok := o.StringValue(); ok {
			fmt.Fprintf(h, "=str(%q);", s)
			return
		}
		if c, ok := o.Native.(*classfile.Class); ok {
			fmt.Fprintf(h, "=class(%s);", c.Name)
			return
		}
		if o.IsArray() {
			fmt.Fprintf(h, "=arr[%d]{", len(o.Elems))
			for _, ev := range o.Elems {
				walkVal(ev)
			}
			fmt.Fprint(h, "};")
			return
		}
		fmt.Fprintf(h, "=obj[%d]{", len(o.Fields))
		for _, fv := range o.Fields {
			walkVal(fv)
		}
		fmt.Fprint(h, "};")
	}
	walkVal = func(v heap.Value) {
		if v.R != nil {
			fmt.Fprintf(h, "r%d>", v.Kind)
			walkObj(v.R)
			return
		}
		fmt.Fprintf(h, "v%d:%d:%x;", v.Kind, v.I, v.F)
	}
	for _, e := range vm.world.MirrorEntries(iso) {
		fmt.Fprintf(h, "C%s|%d|", e.Class.Name, e.Mirror.State)
		for _, sv := range e.Mirror.Statics {
			walkVal(sv)
		}
		if e.Mirror.ClassObject.Load() != nil {
			fmt.Fprint(h, "K1;")
		} else {
			fmt.Fprint(h, "K0;")
		}
	}
	pool := iso.StringPoolSnapshot()
	keys := make([]string, 0, len(pool))
	for k := range pool {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "S%q;", k)
	}
	return h.Sum64()
}
