package interp_test

import (
	"testing"

	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
)

// Error-path regression tests for the snapshot/clone machinery: a failed
// CaptureSnapshot must leave the shared-pin table and the template's
// frozen bits exactly as it found them, and a failed CloneIsolate must
// return its consumed dense isolate ID and registry loader slot. Both
// paths run forever in a serving gateway (the clone pool retries
// failures), so any per-attempt leak is fatal at density.

// appMirror finds the snap/App mirror entry of iso.
func appMirror(t *testing.T, vm *interp.VM, iso *core.Isolate) core.MirrorEntry {
	t.Helper()
	for _, e := range vm.World().MirrorEntries(iso) {
		if e.Class.Name == snapApp {
			return e
		}
	}
	t.Fatalf("no %s mirror for %s", snapApp, iso.Name())
	return core.MirrorEntry{}
}

// TestCaptureFailureRestoresPinsAndFrozenBits forces CaptureSnapshot to
// fail mid-flatten (an opaque native payload parked in a static — the
// documented unsnapshotable shape) after the flattener has already
// pinned the string pool and, on the FreezeShared leg, frozen and pinned
// the statics table. The failed captures must restore the pin table
// refcounts and thaw the speculatively frozen array; afterwards the
// template must still capture, clone and serve.
func TestCaptureFailureRestoresPinsAndFrozenBits(t *testing.T) {
	vm, warmer := snapVM(t)
	if got := snapCall(t, vm, warmer, 5); got != 32 {
		t.Fatalf("warm-up bump = %d, want 32", got)
	}
	basePins := vm.Heap().SharedPins()

	snapA, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pinsA := vm.Heap().SharedPins()
	if pinsA <= basePins {
		t.Fatalf("good capture pinned nothing: base=%d with-snapshot=%d", basePins, pinsA)
	}

	m := appMirror(t, vm, warmer)
	table := m.Mirror.Statics[1].R // statics order: count, table, msg, alias, ring
	origMsg := m.Mirror.Statics[2]
	bad, err := vm.AllocNativeIn(nil, m.Class, 42, 64, false, warmer)
	if err != nil {
		t.Fatal(err)
	}
	m.Mirror.Statics[2] = heap.RefVal(bad)

	if _, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{}); err == nil {
		t.Fatal("capture of opaque native payload succeeded")
	}
	if got := vm.Heap().SharedPins(); got != pinsA {
		t.Fatalf("failed capture leaked pins: %d, want %d", got, pinsA)
	}

	// FreezeShared leg: the flattener freezes+pins the table static
	// before it reaches the poisoned msg slot; the failure must thaw it.
	if _, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{FreezeShared: true}); err == nil {
		t.Fatal("FreezeShared capture of opaque native payload succeeded")
	}
	if got := vm.Heap().SharedPins(); got != pinsA {
		t.Fatalf("failed FreezeShared capture leaked pins: %d, want %d", got, pinsA)
	}
	if table.Frozen() {
		t.Fatal("failed FreezeShared capture left the statics table frozen")
	}

	// The template must be fully serviceable after the failures.
	m.Mirror.Statics[2] = origMsg
	snapB, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{FreezeShared: true})
	if err != nil {
		t.Fatalf("capture after restored static: %v", err)
	}
	if !table.Frozen() {
		t.Fatal("successful FreezeShared capture did not freeze the table")
	}
	clone, err := vm.CloneIsolate(snapB, "after-fail")
	if err != nil {
		t.Fatal(err)
	}
	if got := snapCall(t, vm, clone, 5); got != 37 {
		t.Fatalf("clone bump = %d, want 37", got)
	}

	// Releasing both snapshots must return the pin table to its pre-test
	// state. This also catches refcount (not just distinct-entry) leaks:
	// pool strings are pinned by both snapshots, so a stray count left by
	// a failed capture would keep the entry alive past the final release.
	snapB.Release()
	snapA.Release()
	if got := vm.Heap().SharedPins(); got != basePins {
		t.Fatalf("pins after releasing all snapshots: %d, want %d", got, basePins)
	}
}

// TestCloneFailureReturnsIDAndLoader drives CloneIsolate into
// mid-materialization failure (heap exhausted by host-rooted filler) and
// asserts the attempt consumes nothing: the registry loader count, the
// world isolate table, and the dense-ID free list are all exactly as
// before, proven by the next successful clone adopting the same recycled
// ID a pre-failure clone used.
func TestCloneFailureReturnsIDAndLoader(t *testing.T) {
	vm, warmer := snapVM(t)
	if got := snapCall(t, vm, warmer, 5); got != 32 {
		t.Fatalf("warm-up bump = %d, want 32", got)
	}
	snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Establish a recycled slot: clone once, kill, sweep, free.
	probe, err := vm.CloneIsolate(snap, "probe")
	if err != nil {
		t.Fatal(err)
	}
	probeID := probe.ID()
	if err := vm.KillIsolate(nil, probe); err != nil {
		t.Fatal(err)
	}
	vm.CollectGarbage(nil)
	if !probe.Disposed() {
		t.Fatal("probe clone not disposed after sweep")
	}
	if err := vm.FreeIsolate(probe); err != nil {
		t.Fatal(err)
	}

	var runtimeIso *core.Isolate
	for _, iso := range vm.World().Isolates() {
		if iso.Name() == "runtime" {
			runtimeIso = iso
		}
	}
	if runtimeIso == nil {
		t.Fatal("no runtime isolate")
	}

	// Fill the heap to the brim with host-rooted arrays (descending
	// sizes, so even a one-element allocation fails afterwards). The
	// rooted filler survives the unwind's collections, keeping every
	// retry failing at materialization.
	vm.CollectGarbage(nil)
	arrClass := appMirror(t, vm, warmer).Mirror.Statics[1].R.Class
	filler := vm.NewHostRoots(runtimeIso)
	defer filler.Release()
	for _, n := range []int{4096, 256, 16, 1} {
		for {
			if _, err := vm.AllocArrayRooted(filler, arrClass, n, runtimeIso); err != nil {
				break
			}
		}
	}

	loaders := vm.Registry().NumLoaders()
	isolates := vm.World().NumIsolates()
	for i := 0; i < 3; i++ {
		if _, err := vm.CloneIsolate(snap, "oom-clone"); err == nil {
			t.Fatalf("clone %d against a full heap succeeded", i)
		}
		if got := vm.Registry().NumLoaders(); got != loaders {
			t.Fatalf("failed clone %d leaked a loader: %d, want %d", i, got, loaders)
		}
		if got := vm.World().NumIsolates(); got != isolates {
			t.Fatalf("failed clone %d leaked an isolate slot: %d, want %d", i, got, isolates)
		}
	}

	// Un-fill and prove the free list is intact: the next clone must
	// reuse the exact ID the probe clone returned.
	filler.Release()
	vm.CollectGarbage(nil)
	clone, err := vm.CloneIsolate(snap, "after-oom")
	if err != nil {
		t.Fatalf("clone after releasing filler: %v", err)
	}
	if clone.ID() != probeID {
		t.Fatalf("clone got ID %d, want recycled %d — failed clones disturbed the free list", clone.ID(), probeID)
	}
	if got := vm.Registry().NumLoaders(); got != loaders {
		t.Fatalf("loader count after recovery: %d, want %d", got, loaders)
	}
	if got := snapCall(t, vm, clone, 5); got != 37 {
		t.Fatalf("recovered clone bump = %d, want 37", got)
	}
}
