// Package interp implements the execution engine of the VM: frames,
// operand stacks, the bytecode interpreter, a cooperative green-thread
// scheduler with a virtual clock, monitors, exception dispatch, and the
// I-JVM hooks the paper adds to LadyVM: the isolate switch on
// inter-isolate calls (§3.1), CPU sampling and allocation accounting
// (§3.2), and the isolate termination engine (§3.3).
package interp

import (
	"errors"
	"sync/atomic"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// ThreadState enumerates scheduler states of a VM thread.
type ThreadState uint8

// Thread states.
const (
	// StateRunnable threads are eligible for scheduling.
	StateRunnable ThreadState = iota + 1
	// StateSleeping threads wait for the virtual clock (Thread.sleep).
	StateSleeping
	// StateBlockedMonitor threads wait to acquire an object monitor.
	StateBlockedMonitor
	// StateWaitingMonitor threads are parked in Object.wait.
	StateWaitingMonitor
	// StateWaitingJoin threads wait for another thread to finish.
	StateWaitingJoin
	// StateDone threads have finished (normally or with an uncaught
	// exception).
	StateDone

	// stateStaging is a transient internal state used while a cross-shard
	// wake operation (interrupt, forced kill wake) has detached the thread
	// from its wait structures but is still allocating the exception it
	// will deliver. Threads in this state are invisible to the schedulers:
	// not runnable, not wakeable, not done. The allocation must happen
	// outside schedMu (it can trigger a stop-the-world collection), so
	// this state bridges the two critical sections.
	stateStaging ThreadState = 255
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateSleeping:
		return "sleeping"
	case StateBlockedMonitor:
		return "blocked"
	case StateWaitingMonitor:
		return "waiting"
	case StateWaitingJoin:
		return "joining"
	case StateDone:
		return "done"
	default:
		return "invalid"
	}
}

// SleepForever is the wake deadline of an unbounded sleep or wait.
const SleepForever int64 = -1

// Frame is one activation record. Every frame records the isolate it
// executes in: bundle frames carry their class's isolate, system-library
// frames carry the caller's isolate (paper §3.1 — "classes from the Java
// System Library are not executed in a special isolate but in the isolate
// that called it"), which also gives the GC accounting rule of §3.2 step 3
// for free.
type Frame struct {
	method *classfile.Method
	iso    *core.Isolate

	// pcode is the method's quickened body (see prepare.go); nil selects
	// the reference switch interpreter in exec.go.
	pcode *bytecode.PCode

	// hot is the adopted closure-threaded program for pcode (closure.go),
	// nil while the frame executes through the handler table. Owned by
	// the executing goroutine; cleared on re-quickening (the program is
	// bound to one prepared form's caches).
	hot *closureProgram

	locals []heap.Value
	stack  []heap.Value
	pc     int32

	// callerIso, when non-nil, is the isolate to restore into the
	// thread's current-isolate reference when this frame returns (thread
	// migration, §3.1).
	callerIso *core.Isolate

	// needsMonitor is the monitor a synchronized method must acquire
	// before its first instruction; cleared once acquired.
	needsMonitor *heap.Object
	// lockedMonitor is released when the frame exits (normally or by
	// unwinding).
	lockedMonitor *heap.Object
	// entered records the monitors this frame acquired through explicit
	// monitorenter instructions (one entry per acquisition, including
	// recursive ones; monitorexit removes the latest matching entry).
	// Frame exits do NOT auto-release them — unmatched enter/exit leaks
	// a monitor exactly as raw bytecode does on a real JVM — but the
	// isolate-termination path force-releases them (§3.3 step 3: a
	// killed isolate's monitors must not outlive it), which per-frame
	// synchronized-method tracking alone cannot do.
	entered []*heap.Object

	// clinitMirror, when non-nil, marks this frame as a <clinit>
	// activation; the mirror transitions to InitDone when the frame
	// returns.
	clinitMirror *core.TaskClassMirror
}

// Method returns the frame's method.
func (f *Frame) Method() *classfile.Method { return f.method }

// Isolate returns the isolate the frame executes in.
func (f *Frame) Isolate() *core.Isolate { return f.iso }

// errStackUnderflow is the preformatted underflow error of the checked
// (reference) interpreter path: the hot loop never constructs fmt.Errorf
// values. Prepared code needs no check at all — its stack discipline is
// verified by the preparation dataflow (prepare.go), so handlers use the
// unchecked upop/upeek below.
var errStackUnderflow = errors.New("interp: operand stack underflow")

func (f *Frame) push(v heap.Value) { f.stack = append(f.stack, v) }

func (f *Frame) pop() (heap.Value, error) {
	n := len(f.stack)
	if n == 0 {
		return heap.Value{}, errStackUnderflow
	}
	v := f.stack[n-1]
	f.stack = f.stack[:n-1]
	return v, nil
}

func (f *Frame) peek() (heap.Value, error) {
	n := len(f.stack)
	if n == 0 {
		return heap.Value{}, errStackUnderflow
	}
	return f.stack[n-1], nil
}

// upop pops without an underflow check. Only handlers of prepared code
// may call it: the preparation pass proves every pop has an operand.
func (f *Frame) upop() heap.Value {
	n := len(f.stack) - 1
	v := f.stack[n]
	f.stack = f.stack[:n]
	return v
}

// upeek is peek without the underflow check, under the same contract as
// upop.
func (f *Frame) upeek() heap.Value { return f.stack[len(f.stack)-1] }

// noteEnter records one explicit monitorenter acquisition on the frame.
func (f *Frame) noteEnter(obj *heap.Object) { f.entered = append(f.entered, obj) }

// noteExit drops the latest matching explicit-enter record (a no-op for
// cross-frame exits, which the frame that entered still accounts for).
func (f *Frame) noteExit(obj *heap.Object) {
	for i := len(f.entered) - 1; i >= 0; i-- {
		if f.entered[i] == obj {
			f.entered = append(f.entered[:i], f.entered[i+1:]...)
			return
		}
	}
}

// Thread is one green thread. The sequential scheduler multiplexes
// threads onto the host goroutine that calls VM.Run; the concurrent
// scheduler (internal/sched) executes each thread on the worker owning
// the shard of its current isolate. A thread's isolate reference (cur)
// migrates on inter-isolate calls exactly as in the paper.
//
// Concurrency: frames, locals, stacks, cur, and the staged-resume fields
// are only touched by the goroutine currently executing the thread (or
// by wake operations while it is parked, serialized by VM.schedMu). The
// scheduler state word is atomic because other shards observe it
// (Done checks for joins, promote polls).
type Thread struct {
	id   int64
	name string
	vm   *VM

	frames []*Frame
	state  atomic.Uint32 // holds a ThreadState

	// cur is the isolate the thread currently executes in — the "isolate
	// reference" of §3.1 that inter-isolate calls update and CPU sampling
	// reads.
	cur *core.Isolate
	// creator is the isolate that created the thread; thread creation is
	// charged to it (§3.2, "Threads").
	creator *core.Isolate

	// Park bookkeeping.
	wakeAt    int64        // virtual deadline for Sleeping/timed waits; SleepForever for unbounded
	blockedOn *heap.Object // monitor being acquired (BlockedMonitor)
	waitingOn *heap.Object // monitor waited on (WaitingMonitor)
	savedLock int32        // recursion count to restore after wait
	joinOn    *Thread
	// sleepGauge, when non-nil, is the isolate whose SleepingThreads
	// gauge was incremented when this thread parked.
	sleepGauge *core.Isolate

	interrupted bool

	// lastSwitchTick is the virtual time of the last isolate switch, used
	// only by the per-call CPU accounting ablation.
	lastSwitchTick int64

	// spawnTick/finishTick stamp the thread's lifetime on the virtual
	// clock (spawn or respawn, and completion). Latency harnesses read
	// them instead of wall time: virtual-clock latency measures what the
	// VM scheduler controls and is insensitive to host CPU count and Go
	// runtime scheduling. finishTick is written by the goroutine that
	// finishes the thread before the Done state is published, so a reader
	// that observed Done reads a stable value.
	spawnTick  int64
	finishTick int64

	// Pending native resume: when a blocking native (sleep, wait, join,
	// I/O) returns control to the scheduler, the value or exception to be
	// delivered on wake is staged here.
	resumeValue heap.Value
	resumeKind  resumeKind
	resumeThrow *heap.Object

	// slowStep, when set, routes the next step through the staged-work
	// prologue (synchronized-entry monitor acquisition, the resume slots
	// above) so the steady-state dispatch checks a single flag instead of
	// every staging slot. Conservative: a stale true costs one empty
	// prologue pass; it must be set whenever any staged work exists. It
	// follows the same ownership contract as the resume slots (written by
	// wake operations only while the thread is parked, under VM.schedMu).
	slowStep bool

	// alloc is the executing engine's allocation state (shard-local
	// domain + batched byte accounting), installed for the duration of a
	// quantum and nil otherwise. Owned by the goroutine executing the
	// thread: only that goroutine may allocate through it, and wake-side
	// allocation (InterruptThread's exception) must use the host path
	// instead.
	alloc *allocState

	// qa is the owning engine loop's quantum accounting state (tier.go),
	// installed for the duration of a quantum and nil otherwise; fused
	// and closure-tier handlers reserve and charge their inlined
	// sub-instructions through it. Same ownership contract as alloc.
	qa *quantumAcct

	// pendingArgs is the in-flight invocation argument window between
	// the caller's stack truncation and the callee's locals copy (or the
	// native call's completion). buildRootSets scans it so an allocation
	// during call setup — a synchronized static's Class object, an
	// allocating native — cannot sweep objects reachable only through
	// the pending arguments. Owned by the goroutine executing the
	// thread; always nil at instruction boundaries.
	pendingArgs []heap.Value

	// threadObj is the guest java/lang/Thread object representing this
	// thread, when one exists.
	threadObj *heap.Object

	// Completion.
	result  heap.Value
	failure *heap.Object // uncaught guest exception
	err     error        // host-level execution error (VM bug or invalid code)

	// pruned records that pruneDoneThreads dropped this thread from the
	// scheduler list (guarded by vm.threadsMu). RespawnThread re-appends
	// pruned threads; without the flag it could not tell membership
	// without an O(threads) scan.
	pruned bool
}

type resumeKind uint8

const (
	resumeNone resumeKind = iota
	resumePushValue
	resumePushVoid
	resumeThrowKind
)

// ID returns the thread's VM-unique ID (>= 1).
func (t *Thread) ID() int64 { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// State returns the scheduler state.
func (t *Thread) State() ThreadState { return ThreadState(t.state.Load()) }

func (t *Thread) setState(s ThreadState) { t.state.Store(uint32(s)) }

// Done reports whether the thread has finished.
func (t *Thread) Done() bool { return t.State() == StateDone }

// CurrentIsolate returns the isolate the thread currently executes in.
func (t *Thread) CurrentIsolate() *core.Isolate { return t.cur }

// Creator returns the isolate that created the thread.
func (t *Thread) Creator() *core.Isolate { return t.creator }

// Result returns the value produced by the thread's entry method.
func (t *Thread) Result() heap.Value { return t.result }

// Failure returns the uncaught guest exception that terminated the
// thread, or nil.
func (t *Thread) Failure() *heap.Object { return t.failure }

// Err returns the host-level error that aborted the thread, or nil. Host
// errors indicate invalid bytecode or a VM defect, not guest exceptions.
func (t *Thread) Err() error { return t.err }

// SpawnTick returns the virtual time at which the thread was (re)spawned.
func (t *Thread) SpawnTick() int64 { return t.spawnTick }

// RestampSpawn overwrites the spawn stamp. The concurrent scheduler's
// spawn hook calls it under the pool lock so the arrival time is taken
// atomically with the thread's entry into the run queue: a host
// goroutine descheduled between SpawnThread's own stamp and the hook
// must not bill that gap — VM progress the scheduler was never asked to
// preempt — as queueing delay.
func (t *Thread) RestampSpawn(tick int64) { t.spawnTick = tick }

// FinishTick returns the virtual time at which the thread finished.
// Meaningful only after Done reports true; both engines batch clock
// publication per quantum, so the stamp carries up-to-a-quantum
// granularity.
func (t *Thread) FinishTick() int64 { return t.finishTick }

// Interrupted reports the thread's interrupt flag.
func (t *Thread) Interrupted() bool { return t.interrupted }

// GuestObject returns the guest java/lang/Thread object, or nil.
func (t *Thread) GuestObject() *heap.Object { return t.threadObj }

// SetGuestObject associates the guest java/lang/Thread object with this VM
// thread (set by the Thread.start / Thread.currentThread natives).
func (t *Thread) SetGuestObject(obj *heap.Object) { t.threadObj = obj }

// Depth returns the current frame count.
func (t *Thread) Depth() int { return len(t.frames) }

// top returns the active frame, or nil for an empty stack.
func (t *Thread) top() *Frame {
	if len(t.frames) == 0 {
		return nil
	}
	return t.frames[len(t.frames)-1]
}

// FailureString renders the uncaught exception for diagnostics.
func (t *Thread) FailureString() string {
	if t.failure == nil {
		return ""
	}
	return t.vm.describeThrowable(t.failure)
}
