package interp

import (
	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
)

// This file holds the quantum-accounting bridge that lets superinstruction
// handlers (fused_handlers.go) and closure-threaded blocks (closure.go)
// execute several guest instructions inside one engine step without
// disturbing any observable contract:
//
//   - instruction counts: every sub-instruction is charged through the
//     exact per-instruction sequence of the engine loop that owns the
//     quantum (sequential runQuantum or concurrent RunThreadQuantum), so
//     per-isolate accounts, CPU sampling and the virtual clock advance at
//     identical points to unfused execution;
//   - quantum/budget boundaries: a group only executes fused when the
//     whole group fits in the remaining quantum (reserve); otherwise the
//     head executes as its original single instruction and the boundary
//     lands exactly where the unfused engine would put it. The engine
//     loops already clamp the quantum to the remaining run budget, so
//     budget exhaustion is covered by the same check;
//   - safepoints: kill, SetIsolationMode and STW parking act only between
//     engine steps. A fused group completes (or delegates its final
//     sub-instruction) within one step, and its non-throwing prefix
//     cannot reach a safepoint, so no partially-applied group state is
//     ever observable.
//
// quantumAcct lives on the Thread (t.qa) only while an engine loop is
// driving it; fused handlers bail to single-step execution when it is
// absent (host-driven stepping) or the group does not fit.

// quantumAcct is the per-quantum instruction accounting state shared
// between an engine loop and the fused/closure handlers it dispatches.
// steps is the loop's own instruction counter: the loop increments it
// once per stepThread call (the group's final sub-instruction), and
// chargeSub increments it for each inlined prefix sub-instruction.
type quantumAcct struct {
	vm       *VM
	sample   *SampleState     // concurrent engine sampling state; nil for sequential
	batch    *core.InstrBatch // concurrent per-quantum account batch; nil for sequential
	steps    int64
	limit    int64
	isolated bool
	seq      bool
}

// reserve reports whether a fused group with extra prefix sub-instructions
// (on top of the final one the engine loop charges) still fits in the
// quantum.
func (q *quantumAcct) reserve(extra int64) bool {
	return q.steps+extra < q.limit
}

// chargeSubs charges k inlined prefix sub-instructions, replicating the
// owning engine loop's per-instruction accounting sequence in one
// arithmetically identical batched call: account notes batch through
// InstrBatch.NoteN and the CPU-sampling counter is folded modulo
// SampleEvery (floor((old+k)/every) samples, remainder kept), which is
// exactly what k unit increments with reset-at-threshold produce.
// Prefix sub-instructions cannot migrate the thread, flip the isolation
// mode or finish the thread (only a group's delegated final can, and
// the loop's own post-step charge covers that one), so reading t.cur
// and the hoisted isolation flag here matches what the unfused loop
// would have read — and nothing can observe the intermediate counters
// mid-step (no safepoint, throw, park or batch flush is reachable from
// a prefix micro), so the batching is invisible to the differential
// oracle.
func (q *quantumAcct) chargeSubs(t *Thread, k int64) {
	if k <= 0 {
		return
	}
	q.steps += k
	vm := q.vm
	if q.seq {
		vm.seqPending += k
		if q.isolated {
			acct := t.cur.Account()
			vm.seqBatch.NoteN(acct, k)
			total := vm.instrSinceSample + int(k)
			if every := vm.opts.SampleEvery; total >= every {
				acct.CPUSamples.Add(int64(total / every))
				total %= every
			}
			vm.instrSinceSample = total
		}
		return
	}
	if q.isolated {
		acct := t.cur.Account()
		q.batch.NoteN(acct, k)
		s := q.sample
		total := s.count + int(k)
		if every := vm.opts.SampleEvery; total >= every {
			acct.CPUSamples.Add(int64(total / every))
			total %= every
		}
		s.count = total
	}
}

// barrierOn is the per-quantum cached SATB barrier flag used by the fused
// and closure store paths (and the interpreter store handlers) in place
// of the heap's per-store atomic load. The flag is refreshed at every
// quantum start (both engines), on allocation-state acquisition, and
// after a sequential-engine world-stop (the only point where the barrier
// can arm or disarm mid-quantum on the executing goroutine); concurrent
// workers always end their quantum at a world-stop, so their next
// quantum re-reads the flag. A transiently stale ON is harmless (the
// heap drops SATB records when no cycle is open); a stale OFF cannot
// occur because arming happens only with the world stopped.
func (vm *VM) barrierOn(t *Thread) bool {
	if a := t.alloc; a != nil {
		return a.barrierOn
	}
	return vm.heap.BarrierActive()
}

// --- Closure-tier promotion ---------------------------------------------

// tierThreshold returns the activation-heat threshold for promoting a
// prepared method to the closure-threaded tier, or 0 when the tier is
// disabled.
func (vm *VM) tierThreshold() int64 {
	th := vm.opts.TierPromoteThreshold
	if th < 0 {
		return 0
	}
	return int64(th)
}

// noteActivation accumulates one activation of p's method and adopts (or
// builds) the closure-threaded program when the method is hot. Called by
// pushFrame after the frame's prepared code is installed. The published
// program is adopted with one atomic load in the steady state; heat only
// accumulates while no program is published.
func (vm *VM) noteActivation(f *Frame, m *classfile.Method, p *bytecode.PCode) {
	th := vm.tierThreshold()
	if th == 0 {
		return
	}
	if hot := p.Tier.Hot(); hot != nil {
		f.hot = hot.(*closureProgram)
		return
	}
	if p.Tier.AddHeat(1) >= th {
		f.hot = vm.promoteHot(m, p)
	}
}

// noteQuantumHeat credits a finished quantum's n executed instructions as
// heat to the thread's top frame, so a hot loop inside one long-lived
// activation still promotes (pushFrame heat alone would never see it).
// Runs at quantum end while the engine still owns the thread; adoption
// of a program published by another worker also happens here, giving
// running frames a bounded promotion latency of one quantum.
func (vm *VM) noteQuantumHeat(t *Thread, n int64) {
	th := vm.tierThreshold()
	if th == 0 || n <= 0 {
		return
	}
	f := t.top()
	if f == nil || f.hot != nil {
		return
	}
	p := f.pcode
	if p == nil {
		return
	}
	if hot := p.Tier.Hot(); hot != nil {
		f.hot = hot.(*closureProgram)
		return
	}
	if p.Tier.AddHeat(n) >= th {
		f.hot = vm.promoteHot(f.method, p)
	}
}

// promoteHot compiles the closure-threaded program for a hot method and
// publishes it with a first-wins CAS; racing promoters build redundantly
// but all adopt the single published program (same discipline as IC
// lines).
func (vm *VM) promoteHot(m *classfile.Method, p *bytecode.PCode) *closureProgram {
	if hot := p.Tier.Hot(); hot != nil {
		return hot.(*closureProgram)
	}
	cp := buildClosureProgram(m, p)
	if p.Tier.PublishHot(cp) {
		return cp
	}
	return p.Tier.Hot().(*closureProgram)
}
