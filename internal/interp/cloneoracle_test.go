package interp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// This file is the cloned-vs-cold leg of the randomized differential
// oracle: a seeded generator produces statics-rich warm-ups (int statics
// with clinit initializers, deterministically filled arrays, array
// aliasing, interned string literals, a reference cycle) plus a
// deterministic mutating session method, and demands that a tenant
// provisioned by snapshot cloning is byte-identical to a tenant that
// cold-started through the same warm-up: same session results, same
// absolute resource account, same creator-charged allocation statistics,
// and the same post-GC reachability fingerprint — across the three
// collector configurations {forced-STW, incremental-pressure,
// incremental-paced} and both modes (Isolated via CloneIsolate, Shared
// via RestoreInPlace). The generator avoids finalizers and identity
// hashes, which the snapshot contract excludes from warm state.

const (
	cloneOracleApp  = "co/App"
	cloneOracleNode = "co/Node"
)

type cloneSessionOp struct {
	kind int   // 0 int-static fold, 1 arith, 2 array read, 3 array write, 4 ring walk, 5 intern identity, 6 alloc churn
	a    int   // operand selector
	c    int64 // immediate (non-negative: doubles as an index)
}

type cloneProgram struct {
	seed    int64
	ints    []int64 // initial int-static values
	arrs    []int64 // array lengths (powers of two: session masks with len-1)
	aliasOf int     // which array the alias static points to
	lits    []string
	ops     []cloneSessionOp
}

func genCloneProgram(seed int64) cloneProgram {
	r := rand.New(rand.NewSource(seed))
	p := cloneProgram{seed: seed}
	for i, n := 0, 2+r.Intn(4); i < n; i++ {
		p.ints = append(p.ints, int64(r.Intn(1000)))
	}
	lens := []int64{4, 8, 16}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		p.arrs = append(p.arrs, lens[r.Intn(len(lens))])
	}
	p.aliasOf = r.Intn(len(p.arrs))
	// Duplicate literals are deliberate: two statics naming one literal
	// must stay one pooled object through capture and clone.
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		p.lits = append(p.lits, fmt.Sprintf("co-lit-%d", r.Intn(4)))
	}
	for j, n := 0, 3+r.Intn(6); j < n; j++ {
		p.ops = append(p.ops, cloneSessionOp{kind: r.Intn(7), a: r.Intn(8), c: int64(r.Intn(100))})
	}
	return p
}

// cloneOracleClasses materializes p: co/Node (cycle member) and co/App
// with the generated statics, a heavy-ish <clinit>, and session(I)I.
func cloneOracleClasses(p cloneProgram) []*classfile.Class {
	node := classfile.NewClass(cloneOracleNode).
		Field("next", classfile.KindRef).
		Field("v", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).MustBuild()

	b := classfile.NewClass(cloneOracleApp)
	for k := range p.ints {
		b.StaticField(fmt.Sprintf("i%d", k), classfile.KindInt)
	}
	for k := range p.arrs {
		b.StaticField(fmt.Sprintf("a%d", k), classfile.KindRef)
	}
	b.StaticField("alias", classfile.KindRef)
	for k := range p.lits {
		b.StaticField(fmt.Sprintf("s%d", k), classfile.KindRef)
	}
	b.StaticField("ring", classfile.KindRef).StaticField("acc", classfile.KindInt)

	b.Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
		for k, v := range p.ints {
			a.Const(v).PutStatic(cloneOracleApp, fmt.Sprintf("i%d", k))
		}
		for k, ln := range p.arrs {
			loop, done := fmt.Sprintf("al%d", k), fmt.Sprintf("ad%d", k)
			a.Const(ln).NewArray("").AStore(0)
			a.Const(0).IStore(1)
			a.Label(loop).ILoad(1).Const(ln).IfICmpGe(done)
			a.ALoad(0).ILoad(1).ILoad(1).Const(int64(k*7+3)).IMul().ArrayStore()
			a.IInc(1, 1).Goto(loop)
			a.Label(done).ALoad(0).PutStatic(cloneOracleApp, fmt.Sprintf("a%d", k))
		}
		a.GetStatic(cloneOracleApp, fmt.Sprintf("a%d", p.aliasOf)).PutStatic(cloneOracleApp, "alias")
		for k, lit := range p.lits {
			a.Str(lit).PutStatic(cloneOracleApp, fmt.Sprintf("s%d", k))
		}
		a.New(cloneOracleNode).Dup().InvokeSpecial(cloneOracleNode, classfile.InitName, "()V").AStore(2)
		a.New(cloneOracleNode).Dup().InvokeSpecial(cloneOracleNode, classfile.InitName, "()V").AStore(3)
		a.ALoad(2).ALoad(3).PutField(cloneOracleNode, "next")
		a.ALoad(3).ALoad(2).PutField(cloneOracleNode, "next")
		a.ALoad(2).Const(p.seed % 13).PutField(cloneOracleNode, "v")
		a.ALoad(2).PutStatic(cloneOracleApp, "ring")
		// Warm loop: what makes the snapshot worth taking.
		a.Const(0).IStore(1)
		a.Const(0).IStore(4)
		a.Label("wl").ILoad(1).Const(500).IfICmpGe("wd")
		a.ILoad(4).ILoad(1).IAdd().Const(0xFFFFF).IAnd().IStore(4)
		a.IInc(1, 1).Goto("wl")
		a.Label("wd").ILoad(4).PutStatic(cloneOracleApp, "acc")
		a.Return()
	})

	b.Method("session", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
		a.ILoad(0).IStore(1)
		for j, op := range p.ops {
			switch op.kind {
			case 0: // mutate an int static and fold it in
				f := fmt.Sprintf("i%d", op.a%len(p.ints))
				a.GetStatic(cloneOracleApp, f).ILoad(1).IAdd().Const(op.c).IAdd().
					PutStatic(cloneOracleApp, f)
				a.ILoad(1).GetStatic(cloneOracleApp, f).IXor().IStore(1)
			case 1:
				a.ILoad(1).Const(3).IMul().Const(op.c).IAdd().Const(0x7FFFFF).IAnd().IStore(1)
			case 2: // array read through the masked accumulator
				k := op.a % len(p.arrs)
				a.ILoad(1).
					GetStatic(cloneOracleApp, fmt.Sprintf("a%d", k)).
					ILoad(1).Const(p.arrs[k]-1).IAnd().ArrayLoad().
					IAdd().IStore(1)
			case 3: // array write (sessions age the warm arrays)
				k := op.a % len(p.arrs)
				a.GetStatic(cloneOracleApp, fmt.Sprintf("a%d", k)).
					Const(op.c % p.arrs[k]).ILoad(1).ArrayStore()
			case 4: // bump the ring node, fold, and walk the cycle
				a.GetStatic(cloneOracleApp, "ring").Dup().
					GetField(cloneOracleNode, "v").Const(op.c).IAdd().
					PutField(cloneOracleNode, "v")
				a.ILoad(1).GetStatic(cloneOracleApp, "ring").
					GetField(cloneOracleNode, "v").IAdd().IStore(1)
				a.GetStatic(cloneOracleApp, "ring").
					GetField(cloneOracleNode, "next").PutStatic(cloneOracleApp, "ring")
			case 5: // Ldc identity must survive capture/clone/restore
				lit := p.lits[op.a%len(p.lits)]
				eq := fmt.Sprintf("eq%d", j)
				a.Str(lit).Str(lit).IfACmpEq(eq)
				a.ILoad(1).Const(9999).IXor().IStore(1) // interning broken
				a.Label(eq).ILoad(1).Const(op.c).IAdd().IStore(1)
			case 6: // allocation churn (dropped garbage)
				a.Const(8).NewArray("").AStore(2)
				a.ALoad(2).Const(2).ILoad(1).ArrayStore()
				a.ALoad(2).Const(2).ArrayLoad().IStore(1)
				a.Null().AStore(2)
			}
		}
		a.ILoad(1).IReturn()
	})
	return []*classfile.Class{node, b.MustBuild()}
}

func cloneOracleVM(gc oracleGC, mode core.Mode) *interp.VM {
	// Generous heap: no pressure collections in any configuration, so the
	// three collector configs must agree on EVERYTHING (no masking).
	forceSTW, pct, stride := gc.options()
	vm := interp.NewVM(interp.Options{
		Mode:               mode,
		HeapLimit:          4 << 20,
		ForceSTWGC:         forceSTW,
		GCThresholdPercent: pct,
		GCMarkStride:       stride,
	})
	syslib.MustInstall(vm)
	return vm
}

func cloneOracleSession(t *testing.T, vm *interp.VM, iso *core.Isolate, arg int64) int64 {
	t.Helper()
	c, err := iso.Loader().Lookup(cloneOracleApp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.LookupMethod("session", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 5_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("session(%d): %v / %s", arg, err, th.FailureString())
	}
	return v.I
}

// cloneOracleTrace is the comparison surface of one Isolated-mode leg:
// everything observable about the tenant after warm-up + three sessions +
// an exact terminal collection.
type cloneOracleTrace struct {
	warm    int64
	results [3]int64
	account core.Account
	alloc   heap.AllocStats
	fp      uint64
}

func (a cloneOracleTrace) diff(b cloneOracleTrace) string {
	switch {
	case a.warm != b.warm:
		return fmt.Sprintf("warm result %d != %d", a.warm, b.warm)
	case a.results != b.results:
		return fmt.Sprintf("session results %v != %v", a.results, b.results)
	case a.account != b.account:
		return fmt.Sprintf("account %+v != %+v", a.account, b.account)
	case a.alloc != b.alloc:
		return fmt.Sprintf("alloc stats %+v != %+v", a.alloc, b.alloc)
	case a.fp != b.fp:
		return fmt.Sprintf("reachability fingerprint %x != %x", a.fp, b.fp)
	}
	return ""
}

// runCloneLeg runs one Isolated-mode leg. Cold provisions the tenant as a
// fresh isolate delegating to the template loader and runs the warm-up
// itself; cloned runs the warm-up in a warmer isolate, captures it, and
// provisions the tenant with CloneIsolate. Both then run the same three
// sessions.
func runCloneLeg(t *testing.T, p cloneProgram, gc oracleGC, cloned bool) cloneOracleTrace {
	t.Helper()
	vm := cloneOracleVM(gc, core.ModeIsolated)
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}
	tl := vm.Registry().NewLoader("template")
	if err := tl.DefineAll(cloneOracleClasses(p)); err != nil {
		t.Fatal(err)
	}
	var tr cloneOracleTrace
	var tenant *core.Isolate
	if cloned {
		warmer, err := vm.NewIsolate("warmer")
		if err != nil {
			t.Fatal(err)
		}
		warmer.Loader().AddDelegate(tl)
		tr.warm = cloneOracleSession(t, vm, warmer, 1)
		snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer snap.Release()
		tenant, err = vm.CloneIsolate(snap, "tenant")
		if err != nil {
			t.Fatal(err)
		}
	} else {
		var err error
		tenant, err = vm.NewIsolate("tenant")
		if err != nil {
			t.Fatal(err)
		}
		tenant.Loader().AddDelegate(tl)
		tr.warm = cloneOracleSession(t, vm, tenant, 1)
	}
	for i, arg := range [...]int64{5, 9, 13} {
		tr.results[i] = cloneOracleSession(t, vm, tenant, arg)
	}
	vm.CollectGarbage(nil)
	tr.account = tenant.Account().Numbers()
	tr.alloc = vm.Heap().AllocStatsFor(tenant.ID())
	tr.fp = vm.ReachabilityFingerprint(tenant)
	return tr
}

// runSharedRestoreLeg is the Shared-mode leg: a cold VM that warms and
// runs one session is the reference; the restore VM warms, captures, runs
// a dirty session, rewinds with RestoreInPlace, and must then replay the
// reference session byte-identically (fingerprint at the warm point,
// session result, and absolute account after the session).
func runSharedRestoreLeg(t *testing.T, p cloneProgram, gc oracleGC) {
	t.Helper()
	const sessionArg = 7
	classes := func() []*classfile.Class { return cloneOracleClasses(p) }

	cold := cloneOracleVM(gc, core.ModeShared)
	coldWorld, err := cold.NewIsolate("world")
	if err != nil {
		t.Fatal(err)
	}
	if err := coldWorld.Loader().DefineAll(classes()); err != nil {
		t.Fatal(err)
	}
	coldWarm := cloneOracleSession(t, cold, coldWorld, 1)
	cold.CollectGarbage(nil)
	coldWarmFP := cold.ReachabilityFingerprint(coldWorld)
	coldSession := cloneOracleSession(t, cold, coldWorld, sessionArg)
	cold.CollectGarbage(nil)
	coldAccount := coldWorld.Account().Numbers()
	coldFinalFP := cold.ReachabilityFingerprint(coldWorld)

	rvm := cloneOracleVM(gc, core.ModeShared)
	world, err := rvm.NewIsolate("world")
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Loader().DefineAll(classes()); err != nil {
		t.Fatal(err)
	}
	if got := cloneOracleSession(t, rvm, world, 1); got != coldWarm {
		t.Fatalf("seed %d gc %d: warm result %d != cold %d", p.seed, gc, got, coldWarm)
	}
	snap, err := rvm.CaptureSnapshot(world, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if got := cloneOracleSession(t, rvm, world, sessionArg); got != coldSession {
		t.Fatalf("seed %d gc %d: dirty session %d != cold %d", p.seed, gc, got, coldSession)
	}
	if err := snap.RestoreInPlace(); err != nil {
		t.Fatal(err)
	}
	rvm.CollectGarbage(nil)
	if got := rvm.ReachabilityFingerprint(world); got != coldWarmFP {
		t.Fatalf("seed %d gc %d: post-restore fingerprint %x != cold warm fingerprint %x",
			p.seed, gc, got, coldWarmFP)
	}
	if got := cloneOracleSession(t, rvm, world, sessionArg); got != coldSession {
		t.Fatalf("seed %d gc %d: replayed session %d != cold %d", p.seed, gc, got, coldSession)
	}
	rvm.CollectGarbage(nil)
	if got := world.Account().Numbers(); got != coldAccount {
		t.Fatalf("seed %d gc %d: restored account %+v != cold %+v", p.seed, gc, got, coldAccount)
	}
	if got := rvm.ReachabilityFingerprint(world); got != coldFinalFP {
		t.Fatalf("seed %d gc %d: final fingerprint %x != cold %x", p.seed, gc, got, coldFinalFP)
	}
}

// TestClonedVsColdOracle replays generated statics-rich programs and
// demands clone/restore provisioning be indistinguishable from a cold
// start, across the three collector configurations — which must also
// agree with each other, since the generous heap leaves no pressure
// collections to reschedule.
func TestClonedVsColdOracle(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	gcs := []oracleGC{gcForcedSTW, gcIncPressure, gcIncPaced}
	for i := 0; i < n; i++ {
		seed := int64(i)*7919 + 17
		p := genCloneProgram(seed)
		var ref cloneOracleTrace
		for gi, gc := range gcs {
			coldTr := runCloneLeg(t, p, gc, false)
			cloneTr := runCloneLeg(t, p, gc, true)
			if d := coldTr.diff(cloneTr); d != "" {
				t.Fatalf("program %d (seed %d) gc %d: cloned tenant diverges from cold start: %s",
					i, seed, gc, d)
			}
			if gi == 0 {
				ref = coldTr
			} else if d := ref.diff(coldTr); d != "" {
				t.Fatalf("program %d (seed %d): gc config %d diverges from forced-STW: %s",
					i, seed, gc, d)
			}
			runSharedRestoreLeg(t, p, gc)
		}
	}
}
