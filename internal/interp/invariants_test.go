package interp_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// TestInstructionAccountingSumsToTotal: in isolated mode, the per-isolate
// instruction counters must partition the global counter exactly — every
// instruction is charged to exactly one isolate.
func TestInstructionAccountingSumsToTotal(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, Quantum: 137})
	syslib.MustInstall(vm)
	var isolates []*core.Isolate
	for _, name := range []string{"runtime", "a", "b", "c"} {
		iso, err := vm.NewIsolate(name)
		if err != nil {
			t.Fatal(err)
		}
		isolates = append(isolates, iso)
	}
	// Three bundles spin different amounts concurrently.
	for i, iso := range isolates[1:] {
		cn := "inv/W" + string(rune('0'+i))
		c := classfile.NewClass(cn).
			Method("work", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.Const(0).IStore(1)
				a.Label("loop")
				a.ILoad(1).ILoad(0).IfICmpGe("done")
				a.IInc(1, 1).Goto("loop")
				a.Label("done")
				a.ILoad(1).IReturn()
			}).MustBuild()
		if err := iso.Loader().Define(c); err != nil {
			t.Fatal(err)
		}
		m, _ := c.LookupMethod("work", "(I)I")
		if _, err := vm.SpawnThread("w", iso, m, []heap.Value{heap.IntVal(int64(1000 * (i + 1)))}); err != nil {
			t.Fatal(err)
		}
	}
	res := vm.Run(0)
	if !res.AllDone {
		t.Fatalf("run = %+v", res)
	}
	var sum int64
	for _, iso := range isolates {
		sum += iso.Account().Instructions.Load()
	}
	if sum != vm.TotalInstructions() {
		t.Fatalf("per-isolate sum %d != total %d", sum, vm.TotalInstructions())
	}
	if res.Instructions != vm.TotalInstructions() {
		t.Fatalf("run result %d != total %d", res.Instructions, vm.TotalInstructions())
	}
}

// TestInterBundleCallSymmetry: calls-out summed over callers equals
// calls-in summed over callees.
func TestInterBundleCallSymmetry(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}
	svcIso, err := vm.NewIsolate("svc")
	if err != nil {
		t.Fatal(err)
	}
	svc := classfile.NewClass("sym/Svc").
		Method("f", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(1).IAdd().IReturn()
		}).MustBuild()
	if err := svcIso.Loader().Define(svc); err != nil {
		t.Fatal(err)
	}
	var drivers []*core.Isolate
	for i := 0; i < 3; i++ {
		iso, err := vm.NewIsolate("drv" + string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		iso.Loader().AddDelegate(svcIso.Loader())
		cn := "sym/D" + string(rune('0'+i))
		c := classfile.NewClass(cn).
			Method("loop", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
				a.Const(0).IStore(1).Const(0).IStore(2)
				a.Label("loop")
				a.ILoad(1).ILoad(0).IfICmpGe("done")
				a.ILoad(1).InvokeStatic("sym/Svc", "f", "(I)I").IStore(2)
				a.IInc(1, 1).Goto("loop")
				a.Label("done")
				a.ILoad(2).IReturn()
			}).MustBuild()
		if err := iso.Loader().Define(c); err != nil {
			t.Fatal(err)
		}
		m, _ := c.LookupMethod("loop", "(I)I")
		if _, err := vm.SpawnThread("drv", iso, m, []heap.Value{heap.IntVal(int64(100 * (i + 1)))}); err != nil {
			t.Fatal(err)
		}
		drivers = append(drivers, iso)
	}
	if res := vm.Run(0); !res.AllDone {
		t.Fatalf("run = %+v", res)
	}
	var out int64
	for _, iso := range drivers {
		out += iso.Account().InterBundleCallsOut.Load()
	}
	in := svcIso.Account().InterBundleCallsIn.Load()
	if out != in || out != 100+200+300 {
		t.Fatalf("calls out %d, in %d, want 600 each", out, in)
	}
}

// TestThreadPruningKeepsSchedulerCorrect: spawning many short-lived
// threads across repeated runs must not corrupt scheduling or accounting.
func TestThreadPruningKeepsSchedulerCorrect(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	c := classfile.NewClass("pr/W").
		Method("one", "()I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(1).IReturn()
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("one", "()I")
	for i := 0; i < 500; i++ {
		v, th, err := vm.CallRoot(iso, m, nil, 10_000)
		if err != nil || th.Failure() != nil || v.I != 1 {
			t.Fatalf("iteration %d: %v %v", i, err, v)
		}
	}
	if got := len(vm.Threads()); got > 300 {
		t.Fatalf("done threads not pruned: %d retained", got)
	}
	if vm.LiveThreads() != 0 {
		t.Fatalf("live threads = %d", vm.LiveThreads())
	}
}

// TestGCDuringDeepExecutionKeepsFrameRoots: a tiny heap forces
// collections while a deep recursive computation holds live references in
// many frames; nothing live may be swept.
func TestGCDuringDeepExecutionKeepsFrameRoots(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 64 << 10, MaxFrameDepth: 4096})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	const cn = "gc/Deep"
	// deep(n): allocates a 2-slot array holding the recursive result,
	// plus garbage, and checks the chain on the way back up.
	c := classfile.NewClass(cn).
		Method("deep", "(I)Ljava/lang/Object;", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ILoad(0).IfGt("recurse")
			a.Const(2).NewArray("").AReturn()
			a.Label("recurse")
			// garbage pressure
			a.Const(64).NewArray("").Pop()
			a.Const(2).NewArray("").AStore(1)
			a.ALoad(1).Const(0).ILoad(0).Const(1).ISub().InvokeStatic(cn, "deep", "(I)Ljava/lang/Object;").ArrayStore()
			a.ALoad(1).AReturn()
		}).
		Method("run", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// Walk the returned chain and count its length.
			a.ILoad(0).InvokeStatic(cn, "deep", "(I)Ljava/lang/Object;").AStore(1)
			a.Const(0).IStore(2)
			a.Label("walk")
			a.ALoad(1).Const(0).ArrayLoad().IfNull("done")
			a.ALoad(1).Const(0).ArrayLoad().AStore(1)
			a.IInc(2, 1).Goto("walk")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	if err := iso.Loader().Define(c); err != nil {
		t.Fatal(err)
	}
	m, _ := c.LookupMethod("run", "(I)I")
	const depth = 200
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(depth)}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if th.Failure() != nil {
		t.Fatalf("uncaught: %s", th.FailureString())
	}
	if v.I != depth {
		t.Fatalf("chain length = %d, want %d (GC dropped live frame roots?)", v.I, depth)
	}
	if vm.Heap().GCCount() == 0 {
		t.Fatal("test expected allocation pressure to force collections")
	}
}
