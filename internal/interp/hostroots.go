package interp

import (
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// HostRoots is a transient batch of GC roots held by host-side machinery
// (the RPC copier, in-flight call results) on behalf of one isolate. It
// closes the window the per-object Pin API leaves open: with Pin, an
// object exists unrooted between its allocation and the Pin call, and an
// exact collection running in that window sweeps it. A HostRoots batch
// instead allocates and roots under one pinMu critical section
// (alloc/Add below), and exact collections hold pinMu across
// snapshot-and-sweep (see CollectGarbage), so a rooted host allocation
// is atomic with respect to reclamation.
//
// All refs in a batch are attributed to the batch's isolate for the
// paper's §3.2 accounting, matching Pin's contract.
//
// A batch is not internally locked against its own concurrent use: one
// goroutine owns a HostRoots at a time (the RPC layer hands batches from
// submitter to dispatcher to future-holder with happens-before edges).
// Registration, growth, and release synchronize with the collector via
// vm.pinMu only.
type HostRoots struct {
	vm   *VM
	iso  heap.IsolateID
	refs []*heap.Object
	// registered tracks membership in vm.hostRoots (guarded by pinMu).
	// Registration is lazy — an empty batch never touches the VM map,
	// which keeps scalar-only RPC calls off the pinMu root registry.
	registered bool
}

// NewHostRoots creates an empty root batch charged to iso. The batch
// registers itself with the collector on first Add/alloc.
func (vm *VM) NewHostRoots(iso *core.Isolate) *HostRoots {
	return &HostRoots{vm: vm, iso: iso.ID()}
}

// registerLocked inserts the batch into the VM's root registry. Caller
// holds pinMu.
func (r *HostRoots) registerLocked() {
	if !r.registered {
		r.registered = true
		r.vm.hostRoots[r] = struct{}{}
	}
}

// Add roots an existing object in the batch. If a mark phase is open the
// object is also recorded with the cycle: the root snapshot was taken
// before the object was handed to the host, so injecting it as a barrier
// record keeps the SATB invariant for host-injected references (the same
// contract SpawnThread applies to pending arguments).
func (r *HostRoots) Add(obj *heap.Object) {
	if obj == nil {
		return
	}
	vm := r.vm
	vm.pinMu.Lock()
	r.registerLocked()
	r.refs = append(r.refs, obj)
	vm.pinMu.Unlock()
	if vm.heap.BarrierActive() {
		vm.heap.RecordWrite(obj)
	}
}

// AddValue roots v's reference, if it has one.
func (r *HostRoots) AddValue(v heap.Value) {
	if v.IsRef() && v.R != nil {
		r.Add(v.R)
	}
}

// Refs returns the batch's current roots (reads are only safe from the
// owning goroutine; see the type comment).
func (r *HostRoots) Refs() []*heap.Object { return r.refs }

// Release unregisters the batch. The objects stay referenced by the
// slice until the map entry is gone, so nothing can be swept mid-release;
// after Release they are reachable only through whatever guest or pin
// structure they were handed to.
func (r *HostRoots) Release() {
	if !r.registered {
		return
	}
	vm := r.vm
	vm.pinMu.Lock()
	delete(vm.hostRoots, r)
	r.registered = false
	vm.pinMu.Unlock()
}

// alloc runs one host-path heap allocation and roots the result in the
// batch atomically with respect to exact collections: pinMu is held
// across both, and CollectGarbage holds pinMu across snapshot-and-sweep.
// (Under an open incremental cycle the allocation is additionally
// admitted allocate-black by the heap, so markers never sweep it either
// way; the pinMu section is what protects against the exact path, which
// abandons open cycles and their allocate-black marks.)
//
// Unlike the interpreter's allocation path this does NOT collect on
// exhaustion — collection needs the world stopped and the caller (the
// RPC copier) owns that decision. ErrOutOfMemory is returned as-is.
func (r *HostRoots) alloc(fn func() (*heap.Object, error)) (*heap.Object, error) {
	vm := r.vm
	vm.pinMu.Lock()
	defer vm.pinMu.Unlock()
	obj, err := fn()
	if err != nil {
		return nil, err
	}
	r.registerLocked()
	r.refs = append(r.refs, obj)
	return obj, nil
}

// AllocObjectRooted allocates an instance of class charged to iso and
// roots it in r before any collection can observe it.
func (vm *VM) AllocObjectRooted(r *HostRoots, class *classfile.Class, iso *core.Isolate) (*heap.Object, error) {
	return r.alloc(func() (*heap.Object, error) {
		return vm.heap.AllocObject(class, iso.ID())
	})
}

// AllocArrayRooted allocates an n-element array of class charged to iso
// and roots it in r.
func (vm *VM) AllocArrayRooted(r *HostRoots, class *classfile.Class, n int, iso *core.Isolate) (*heap.Object, error) {
	return r.alloc(func() (*heap.Object, error) {
		return vm.heap.AllocArray(class, n, iso.ID())
	})
}

// NewStringRooted allocates a fresh (non-interned) guest string charged
// to iso and roots it in r.
func (vm *VM) NewStringRooted(r *HostRoots, s string, iso *core.Isolate) (*heap.Object, error) {
	strClass, err := vm.lookupWellKnown(ClassString)
	if err != nil {
		return nil, err
	}
	return r.alloc(func() (*heap.Object, error) {
		return vm.heap.AllocString(strClass, s, iso.ID())
	})
}
