package interp

import (
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// NativeControl tells the interpreter how a native method completed.
type NativeControl uint8

// Native completion modes.
const (
	// NativeDone means the call finished; Value carries the result (Void
	// for void methods).
	NativeDone NativeControl = iota + 1
	// NativeThrow means the call raised the guest exception in Throw.
	NativeThrow
	// NativeBlock means the native parked the thread (sleep, wait, join,
	// blocking I/O); the staged resume on the thread delivers the result
	// when it wakes.
	NativeBlock
)

// NativeResult is the outcome of a native method call.
type NativeResult struct {
	Control NativeControl
	Value   heap.Value
	Throw   *heap.Object
}

// NativeFunc is the host implementation of a native method. recv is the
// receiver (Void for static methods); args are the declared parameters. A
// non-nil error is a host-level failure (VM defect or unsupported state)
// that aborts the thread; guest-visible failures must be returned as
// NativeThrow.
//
// Native methods execute in the caller's isolate (paper §3.1: system
// library code runs in the isolate that called it); t.CurrentIsolate()
// names the isolate to charge for any resources consumed.
type NativeFunc func(vm *VM, t *Thread, recv heap.Value, args []heap.Value) (NativeResult, error)

// NativeReturn builds a NativeDone result carrying v.
func NativeReturn(v heap.Value) (NativeResult, error) {
	return NativeResult{Control: NativeDone, Value: v}, nil
}

// NativeVoid builds a NativeDone result for void methods.
func NativeVoid() (NativeResult, error) {
	return NativeResult{Control: NativeDone, Value: heap.Void()}, nil
}

// NativeThrowObject builds a NativeThrow result for an existing exception
// object.
func NativeThrowObject(obj *heap.Object) (NativeResult, error) {
	return NativeResult{Control: NativeThrow, Throw: obj}, nil
}

// NativeThrowName allocates an exception of the named system class with a
// message and returns a NativeThrow result.
func NativeThrowName(vm *VM, t *Thread, className, msg string) (NativeResult, error) {
	obj, err := vm.newThrowableT(t, t.cur, className, msg)
	if err != nil {
		return NativeResult{}, err
	}
	return NativeResult{Control: NativeThrow, Throw: obj}, nil
}

// NativeBlocked signals that the native already parked the thread.
func NativeBlocked() (NativeResult, error) {
	return NativeResult{Control: NativeBlock}, nil
}

// StageResumeValue arranges for v to be pushed on the caller's operand
// stack when the thread wakes (blocking natives with results).
func (t *Thread) StageResumeValue(v heap.Value) {
	t.slowStep = true
	if v.Kind == 0 || v.Kind == voidKind {
		t.resumeKind = resumePushVoid
		return
	}
	t.resumeKind = resumePushValue
	t.resumeValue = v
}

// StageResumeVoid arranges for nothing to be pushed on wake (void blocking
// natives).
func (t *Thread) StageResumeVoid() {
	t.slowStep = true
	t.resumeKind = resumePushVoid
}

// StageResumeThrow arranges for obj to be thrown in the caller when the
// thread wakes (e.g. InterruptedException).
func (t *Thread) StageResumeThrow(obj *heap.Object) {
	t.slowStep = true
	t.resumeKind = resumeThrowKind
	t.resumeThrow = obj
}

// VMRef gives natives access to the owning VM.
func (t *Thread) VMRef() *VM { return t.vm }

// CurrentIsolateOrZero returns the current isolate, defaulting to Isolate0
// (for host-initiated calls before any frame exists).
func (t *Thread) CurrentIsolateOrZero() *core.Isolate {
	if t.cur != nil {
		return t.cur
	}
	return t.vm.world.Isolate0()
}
