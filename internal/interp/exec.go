package interp

import (
	"fmt"
	"unsafe"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

// stepThread executes one instruction (or one pending action: monitor
// acquisition for a synchronized entry, or a staged native resume) of a
// runnable thread. Prepared methods dispatch through the flat handler
// table (handlers.go); methods without a prepared body run the reference
// switch interpreter below, which preserves the seed's checked
// semantics.
func (vm *VM) stepThread(t *Thread) error {
	f := t.top()
	if f == nil {
		vm.finishThread(t)
		return nil
	}

	// Deferred frame-entry and wake work (synchronized-method monitor
	// acquisition, staged native resumes) is funneled behind one
	// thread-local flag, so the steady-state step pays a single
	// predicted-false branch instead of re-checking each staging slot.
	if t.slowStep {
		done, err := vm.stepStaged(t, f)
		if done || err != nil {
			return err
		}
	}

	if p := f.pcode; p != nil {
		pc := f.pc
		if uint32(pc) >= uint32(len(p.Instrs)) {
			return p.ErrPC // preformatted at prepare time
		}
		// Closure-threaded hot tier: if the frame adopted a compiled
		// program and a block starts at this pc, run the whole block in
		// one step (closure.go); pcs without a block head (mid-block
		// resumes after a deopt bail) fall through to table dispatch.
		if h := f.hot; h != nil {
			if b := h.blocks[pc]; b != nil {
				return vm.runClosureBlock(t, f, b)
			}
		}
		in := &p.Instrs[pc]
		return vm.ptable[in.H](vm, t, f, in)
	}

	code := f.method.Code
	if f.pc < 0 || int(f.pc) >= len(code.Instrs) {
		return fmt.Errorf("pc %d out of range in %s", f.pc, f.method.QualifiedName())
	}
	in := code.Instrs[f.pc]
	return vm.execInstr(t, f, in)
}

// stepStaged drains the thread's staged work before the next
// instruction. done reports that this step is consumed (the thread
// parked on a contended synchronized entry, or a staged exception was
// delivered) — the accounting of both outcomes is identical to the
// pre-flag dispatch, which also charged one step for them.
func (vm *VM) stepStaged(t *Thread, f *Frame) (done bool, err error) {
	// Synchronized-method entry: acquire the monitor before the first
	// instruction.
	if f.needsMonitor != nil {
		if vm.tryAcquireMonitor(t, f.needsMonitor) {
			f.lockedMonitor = f.needsMonitor
			f.needsMonitor = nil
		} else {
			// Re-enter here on wake: slowStep stays set.
			vm.blockOnMonitor(t, f.needsMonitor)
			return true, nil
		}
	}

	// Staged resume from a blocking native.
	switch t.resumeKind {
	case resumePushValue:
		f.push(t.resumeValue)
		t.resumeKind = resumeNone
		t.resumeValue = heap.Value{}
	case resumePushVoid:
		t.resumeKind = resumeNone
	case resumeThrowKind:
		obj := t.resumeThrow
		t.resumeKind = resumeNone
		t.resumeThrow = nil
		t.slowStep = false
		return true, vm.DeliverException(t, obj)
	}
	t.slowStep = false
	return false, nil
}

// execInstr dispatches one instruction. Cases that park the thread or push
// a frame manage f.pc themselves; all others fall through to f.pc = next.
func (vm *VM) execInstr(t *Thread, f *Frame, in bytecode.Instr) error {
	next := f.pc + 1

	switch in.Op {
	case bytecode.OpNop:

	// --- Constants -----------------------------------------------------
	case bytecode.OpIConst:
		f.push(heap.IntVal(in.I))
	case bytecode.OpFConst:
		f.push(heap.FloatVal(in.F))
	case bytecode.OpAConstNull:
		f.push(heap.Null())
	case bytecode.OpLdcString:
		entry, err := f.method.Class.Pool.Entry(in.A)
		if err != nil {
			return err
		}
		obj, err := vm.InternString(t, t.cur, entry.Str)
		if err != nil {
			return vm.Throw(t, ClassOutOfMemoryError, "string intern")
		}
		f.push(heap.RefVal(obj))
	case bytecode.OpLdcClass:
		entry, err := f.method.Class.Pool.Entry(in.A)
		if err != nil {
			return err
		}
		class, err := vm.resolveClassFrom(f.method.Class, entry.ClassName)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		obj, err := vm.ClassObjectFor(t, class, t.cur)
		if err != nil {
			return err
		}
		f.push(heap.RefVal(obj))

	// --- Stack ----------------------------------------------------------
	case bytecode.OpPop:
		if _, err := f.pop(); err != nil {
			return err
		}
	case bytecode.OpDup:
		v, err := f.peek()
		if err != nil {
			return err
		}
		f.push(v)
	case bytecode.OpDupX1:
		a, err := f.pop()
		if err != nil {
			return err
		}
		b, err := f.pop()
		if err != nil {
			return err
		}
		f.push(a)
		f.push(b)
		f.push(a)
	case bytecode.OpSwap:
		a, err := f.pop()
		if err != nil {
			return err
		}
		b, err := f.pop()
		if err != nil {
			return err
		}
		f.push(a)
		f.push(b)

	// --- Locals ----------------------------------------------------------
	case bytecode.OpILoad, bytecode.OpFLoad, bytecode.OpALoad:
		f.push(f.locals[in.A])
	case bytecode.OpIStore, bytecode.OpFStore, bytecode.OpAStore:
		v, err := f.pop()
		if err != nil {
			return err
		}
		f.locals[in.A] = v
	case bytecode.OpIInc:
		f.locals[in.A].I += int64(in.B)
		f.locals[in.A].Kind = classfile.KindInt

	// --- Integer arithmetic ----------------------------------------------
	case bytecode.OpIAdd, bytecode.OpISub, bytecode.OpIMul, bytecode.OpIDiv,
		bytecode.OpIRem, bytecode.OpIShl, bytecode.OpIShr, bytecode.OpIUshr,
		bytecode.OpIAnd, bytecode.OpIOr, bytecode.OpIXor:
		b, err := f.pop()
		if err != nil {
			return err
		}
		a, err := f.pop()
		if err != nil {
			return err
		}
		r, gerr := intBinop(in.Op, a.I, b.I)
		if gerr != "" {
			return vm.Throw(t, ClassArithmeticException, gerr)
		}
		f.push(heap.IntVal(r))
	case bytecode.OpINeg:
		v, err := f.pop()
		if err != nil {
			return err
		}
		f.push(heap.IntVal(-v.I))

	// --- Float arithmetic -------------------------------------------------
	case bytecode.OpFAdd, bytecode.OpFSub, bytecode.OpFMul, bytecode.OpFDiv:
		b, err := f.pop()
		if err != nil {
			return err
		}
		a, err := f.pop()
		if err != nil {
			return err
		}
		f.push(heap.FloatVal(floatBinop(in.Op, a.F, b.F)))
	case bytecode.OpFNeg:
		v, err := f.pop()
		if err != nil {
			return err
		}
		f.push(heap.FloatVal(-v.F))
	case bytecode.OpFCmp:
		b, err := f.pop()
		if err != nil {
			return err
		}
		a, err := f.pop()
		if err != nil {
			return err
		}
		switch {
		case a.F < b.F:
			f.push(heap.IntVal(-1))
		case a.F > b.F:
			f.push(heap.IntVal(1))
		default:
			f.push(heap.IntVal(0))
		}
	case bytecode.OpI2F:
		v, err := f.pop()
		if err != nil {
			return err
		}
		f.push(heap.FloatVal(float64(v.I)))
	case bytecode.OpF2I:
		v, err := f.pop()
		if err != nil {
			return err
		}
		f.push(heap.IntVal(int64(v.F)))

	// --- Control flow ------------------------------------------------------
	case bytecode.OpGoto:
		next = in.A
	case bytecode.OpIfEq, bytecode.OpIfNe, bytecode.OpIfLt, bytecode.OpIfLe,
		bytecode.OpIfGt, bytecode.OpIfGe:
		v, err := f.pop()
		if err != nil {
			return err
		}
		if intCondition(in.Op, v.I) {
			next = in.A
		}
	case bytecode.OpIfICmpEq, bytecode.OpIfICmpNe, bytecode.OpIfICmpLt,
		bytecode.OpIfICmpLe, bytecode.OpIfICmpGt, bytecode.OpIfICmpGe:
		b, err := f.pop()
		if err != nil {
			return err
		}
		a, err := f.pop()
		if err != nil {
			return err
		}
		if intCmpCondition(in.Op, a.I, b.I) {
			next = in.A
		}
	case bytecode.OpIfACmpEq, bytecode.OpIfACmpNe:
		b, err := f.pop()
		if err != nil {
			return err
		}
		a, err := f.pop()
		if err != nil {
			return err
		}
		eq := a.R == b.R
		if (in.Op == bytecode.OpIfACmpEq) == eq {
			next = in.A
		}
	case bytecode.OpIfNull, bytecode.OpIfNonNull:
		v, err := f.pop()
		if err != nil {
			return err
		}
		if (in.Op == bytecode.OpIfNull) == (v.R == nil) {
			next = in.A
		}

	// --- Returns -------------------------------------------------------------
	case bytecode.OpReturn:
		return vm.returnFromFrame(t, heap.Void())
	case bytecode.OpIReturn, bytecode.OpFReturn, bytecode.OpAReturn:
		v, err := f.pop()
		if err != nil {
			return err
		}
		return vm.returnFromFrame(t, v)

	// --- Statics (the task-class-mirror hot path, §3.1) ----------------------
	//
	// Baseline (Shared) mode caches the unique mirror on the pool entry
	// after the first initialized access, the way a JIT folds the
	// initialization check away. I-JVM must re-index the mirror array
	// with the thread's current isolate and re-check initialization on
	// every access — the paper's two extra loads plus init check.
	case bytecode.OpGetStatic:
		mirror, field, err := vm.staticMirrorAt(t, f, in.A)
		if err != nil || mirror == nil {
			return err // guest throw already delivered, or re-execute after <clinit>
		}
		f.push(mirror.Statics[field.Slot])
	case bytecode.OpPutStatic:
		mirror, field, err := vm.staticMirrorAt(t, f, in.A)
		if err != nil || mirror == nil {
			return err
		}
		v, err := f.pop()
		if err != nil {
			return err
		}
		mirror.Statics[field.Slot] = v

	// --- Instance fields -------------------------------------------------------
	case bytecode.OpGetField:
		field, err := vm.resolveFieldEntryAt(f, in.A, false)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		recv, err := f.pop()
		if err != nil {
			return err
		}
		if recv.R == nil {
			return vm.Throw(t, ClassNullPointerException, "getfield "+field.QualifiedName())
		}
		f.push(recv.R.Fields[field.Slot])
	case bytecode.OpPutField:
		field, err := vm.resolveFieldEntryAt(f, in.A, false)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		v, err := f.pop()
		if err != nil {
			return err
		}
		recv, err := f.pop()
		if err != nil {
			return err
		}
		if recv.R == nil {
			return vm.Throw(t, ClassNullPointerException, "putfield "+field.QualifiedName())
		}
		// SATB write barrier (see handlers.go pPutField); the seed
		// switch carries the identical store discipline, including the
		// per-quantum cached barrier flag.
		if sp := &recv.R.Fields[field.Slot]; vm.barrierOn(t) {
			vm.gcWriteSlot(t, sp, v)
		} else {
			*sp = v
		}

	// --- Invocation (thread migration happens in pushFrame) ---------------------
	case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual, bytecode.OpInvokeSpecial:
		return vm.execInvoke(t, f, in, next)

	// --- Objects and arrays -------------------------------------------------------
	case bytecode.OpNew:
		entry, err := f.method.Class.Pool.Entry(in.A)
		if err != nil {
			return err
		}
		class, err := vm.resolvePoolClassEntry(f, entry)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		ready, err := vm.classInitReadyAt(t, entry, class)
		if err != nil || !ready {
			return err
		}
		obj, err := vm.AllocObjectIn(t, class, t.cur)
		if err != nil {
			return vm.Throw(t, ClassOutOfMemoryError, err.Error())
		}
		f.push(heap.RefVal(obj))
	case bytecode.OpNewArray:
		n, err := f.pop()
		if err != nil {
			return err
		}
		if n.I < 0 {
			return vm.Throw(t, ClassNegativeArraySize, fmt.Sprintf("%d", n.I))
		}
		elemClass, err := vm.arrayElemClass(f, in.A)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		arr, err := vm.AllocArrayIn(t, elemClass, int(n.I), t.cur)
		if err != nil {
			return vm.Throw(t, ClassOutOfMemoryError, err.Error())
		}
		f.push(heap.RefVal(arr))
	case bytecode.OpArrayLength:
		v, err := f.pop()
		if err != nil {
			return err
		}
		if v.R == nil {
			return vm.Throw(t, ClassNullPointerException, "arraylength")
		}
		if !v.R.IsArray() {
			return vm.Throw(t, ClassClassCastException, "arraylength on non-array")
		}
		f.push(heap.IntVal(int64(len(v.R.Elems))))
	case bytecode.OpArrayLoad:
		idx, err := f.pop()
		if err != nil {
			return err
		}
		arr, err := f.pop()
		if err != nil {
			return err
		}
		if arr.R == nil {
			return vm.Throw(t, ClassNullPointerException, "arrayload")
		}
		if !arr.R.IsArray() {
			return vm.Throw(t, ClassClassCastException, "arrayload on non-array")
		}
		if idx.I < 0 || idx.I >= int64(len(arr.R.Elems)) {
			return vm.Throw(t, ClassArrayIndexException, fmt.Sprintf("index %d of %d", idx.I, len(arr.R.Elems)))
		}
		f.push(arr.R.Elems[idx.I])
	case bytecode.OpArrayStore:
		v, err := f.pop()
		if err != nil {
			return err
		}
		idx, err := f.pop()
		if err != nil {
			return err
		}
		arr, err := f.pop()
		if err != nil {
			return err
		}
		if arr.R == nil {
			return vm.Throw(t, ClassNullPointerException, "arraystore")
		}
		if !arr.R.IsArray() {
			return vm.Throw(t, ClassClassCastException, "arraystore on non-array")
		}
		if idx.I < 0 || idx.I >= int64(len(arr.R.Elems)) {
			return vm.Throw(t, ClassArrayIndexException, fmt.Sprintf("index %d of %d", idx.I, len(arr.R.Elems)))
		}
		if arr.R.Frozen() {
			return vm.Throw(t, ClassIllegalState, "store to frozen array")
		}
		// SATB write barrier (see handlers.go pArrayStore).
		if sp := &arr.R.Elems[idx.I]; vm.barrierOn(t) {
			vm.gcWriteSlot(t, sp, v)
		} else {
			*sp = v
		}
	case bytecode.OpInstanceOf:
		v, err := f.pop()
		if err != nil {
			return err
		}
		class, err := vm.resolvePoolClass(f, in.A)
		if err != nil {
			return vm.Throw(t, ClassNullPointerException, err.Error())
		}
		f.push(heap.BoolVal(v.R != nil && v.R.Class.IsSubclassOf(class)))
	case bytecode.OpCheckCast:
		v, err := f.peek()
		if err != nil {
			return err
		}
		if v.R != nil {
			class, err := vm.resolvePoolClass(f, in.A)
			if err != nil {
				return vm.Throw(t, ClassNullPointerException, err.Error())
			}
			if !v.R.Class.IsSubclassOf(class) {
				return vm.Throw(t, ClassClassCastException,
					v.R.Class.Name+" cannot be cast to "+class.Name)
			}
		}

	// --- Monitors -----------------------------------------------------------------
	case bytecode.OpMonitorEnter:
		v, err := f.peek()
		if err != nil {
			return err
		}
		if v.R == nil {
			_, _ = f.pop()
			return vm.Throw(t, ClassNullPointerException, "monitorenter")
		}
		if vm.tryAcquireMonitor(t, v.R) {
			f.noteEnter(v.R)
			_, _ = f.pop()
		} else {
			// Re-execute this instruction once the monitor frees up.
			vm.blockOnMonitor(t, v.R)
			return nil
		}
	case bytecode.OpMonitorExit:
		v, err := f.pop()
		if err != nil {
			return err
		}
		if v.R == nil {
			return vm.Throw(t, ClassNullPointerException, "monitorexit")
		}
		if !vm.monitorExitChecked(t, v.R) {
			return vm.Throw(t, ClassIllegalMonitorState, "monitorexit without ownership")
		}
		f.noteExit(v.R)

	// --- Exceptions ------------------------------------------------------------------
	case bytecode.OpAThrow:
		v, err := f.pop()
		if err != nil {
			return err
		}
		if v.R == nil {
			return vm.Throw(t, ClassNullPointerException, "athrow null")
		}
		return vm.DeliverException(t, v.R)

	default:
		return fmt.Errorf("unimplemented opcode %s in %s", in.Op, f.method.QualifiedName())
	}

	f.pc = next
	return nil
}

// execInvoke handles the three invoke opcodes of the reference switch
// path; the shared invokeEntry below does the work.
func (vm *VM) execInvoke(t *Thread, f *Frame, in bytecode.Instr, next int32) error {
	entry, err := f.method.Class.Pool.Entry(in.A)
	if err != nil {
		return err
	}
	return vm.invokeEntry(t, f, entry, in.Op, next)
}

// invokeEntry is the invocation core shared by the prepared handlers and
// the reference switch path. The caller's pc is advanced before frames
// are pushed so returns resume after the call site. The argument window
// is passed as a view of the caller's operand stack — pushFrame copies
// it into the callee's locals and callNative consumes it synchronously,
// so no per-call argument slice is allocated.
func (vm *VM) invokeEntry(t *Thread, f *Frame, entry *classfile.PoolEntry, op bytecode.Opcode, next int32) error {
	return vm.invokeEntryIC(t, f, entry, op, next, nil)
}

// invokeEntryIC is invokeEntry with an optional invokevirtual inline
// cache: after dynamic dispatch resolves, the observed (receiver class,
// target) pair is published into the call site's cache so later
// executions take the cached fast path.
func (vm *VM) invokeEntryIC(t *Thread, f *Frame, entry *classfile.PoolEntry, op bytecode.Opcode, next int32, ic *bytecode.ICache) error {
	m, err := vm.resolveMethodEntry(f, entry)
	if err != nil {
		return vm.Throw(t, ClassNullPointerException, err.Error())
	}

	// Static methods trigger class initialization before arguments are
	// consumed, so a pushed <clinit> frame can re-execute this invoke.
	if op == bytecode.OpInvokeStatic {
		ready, ierr := vm.classInitReadyAt(t, entry, m.Class)
		if ierr != nil || !ready {
			return ierr
		}
	}

	nargs := m.Desc.NumParams()
	hasRecv := op != bytecode.OpInvokeStatic
	if hasRecv {
		nargs++
	}
	if len(f.stack) < nargs {
		return fmt.Errorf("invoke %s: need %d stack values, have %d", m.QualifiedName(), nargs, len(f.stack))
	}
	args := f.stack[len(f.stack)-nargs:]

	target := m
	if hasRecv {
		if args[0].R == nil {
			f.stack = f.stack[:len(f.stack)-nargs]
			return vm.Throw(t, ClassNullPointerException, "invoke on null: "+m.QualifiedName())
		}
		if op == bytecode.OpInvokeVirtual {
			resolved, lerr := args[0].R.Class.LookupMethod(m.Name, m.Desc.Raw())
			if lerr != nil {
				f.stack = f.stack[:len(f.stack)-nargs]
				return vm.Throw(t, ClassNullPointerException, lerr.Error())
			}
			target = resolved
			if ic != nil {
				// Dispatch is a pure function of the (immutable) receiver
				// class, so caching before the call proceeds is sound even
				// when the call itself faults.
				ic.Add(unsafe.Pointer(args[0].R.Class), unsafe.Pointer(resolved))
			}
		}
	}

	f.pc = next // resume after the call site
	// The argument window stays a view of the caller's stack beyond the
	// truncated length; pendingArgs keeps it visible to the GC root scan
	// until pushFrame copies it into the callee's locals (or the native
	// call consumes it).
	t.pendingArgs = args
	f.stack = f.stack[:len(f.stack)-nargs]

	if target.IsNative() {
		err = vm.callNative(t, f, target, args, hasRecv)
	} else {
		err = vm.pushFrame(t, target, args, nil)
	}
	t.pendingArgs = nil
	return err
}

// callNative invokes a host-implemented method inline. Blocking natives
// stage their resume on the thread and park it.
func (vm *VM) callNative(t *Thread, f *Frame, m *classfile.Method, args []heap.Value, hasRecv bool) error {
	fn, ok := m.Native.(NativeFunc)
	if !ok {
		return fmt.Errorf("native method %s has no implementation", m.QualifiedName())
	}
	recv := heap.Void()
	declared := args
	if hasRecv {
		recv = args[0]
		declared = args[1:]
	}
	res, err := fn(vm, t, recv, declared)
	if err != nil {
		return fmt.Errorf("native %s: %w", m.QualifiedName(), err)
	}
	switch res.Control {
	case NativeDone:
		if m.Desc.Return != classfile.KindVoid {
			if res.Value.Kind == voidKind {
				// Same contract as returnFromFrame: a value-declared
				// method must deliver a value, or callers sized by the
				// descriptor end up one short.
				return fmt.Errorf("native %s declared a value return but returned void", m.QualifiedName())
			}
			f.push(res.Value)
		}
		return nil
	case NativeThrow:
		return vm.DeliverException(t, res.Throw)
	case NativeBlock:
		// Third entry point of the value-vs-void contract (with
		// returnFromFrame and the NativeDone case above): the resume
		// staged at park time is exactly what the wake delivers to the
		// caller's descriptor-sized stack, so a mismatch must fail here
		// rather than surface later as an unchecked pop on a missing
		// value. A staged throw is descriptor-neutral and always legal.
		if m.Desc.Return != classfile.KindVoid {
			if t.resumeKind == resumeNone || t.resumeKind == resumePushVoid {
				return fmt.Errorf("native %s parked without staging its declared return value", m.QualifiedName())
			}
		} else if t.resumeKind == resumePushValue {
			return fmt.Errorf("native %s staged a value resume but is declared void", m.QualifiedName())
		}
		return nil
	default:
		return fmt.Errorf("native %s returned invalid control %d", m.QualifiedName(), res.Control)
	}
}

// staticMirrorAt resolves the task class mirror and field for a
// getstatic/putstatic of the reference switch path.
func (vm *VM) staticMirrorAt(t *Thread, f *Frame, idx int32) (*core.TaskClassMirror, *classfile.Field, error) {
	entry, err := f.method.Class.Pool.Entry(idx)
	if err != nil {
		return nil, nil, err
	}
	return vm.staticMirrorEntry(t, f, entry)
}

// staticMirrorEntry resolves the task class mirror and field of a static
// access through its pool entry, checking the mode dynamically (the
// reference switch path; the prepared handlers are mode-specialized and
// call staticMirrorResolve directly). It returns (nil, nil, nil) when
// the instruction must re-execute (a <clinit> frame was pushed) or when
// a guest exception was already delivered; a non-nil error is a
// host-level failure.
func (vm *VM) staticMirrorEntry(t *Thread, f *Frame, entry *classfile.PoolEntry) (*core.TaskClassMirror, *classfile.Field, error) {
	if !vm.world.Isolated() {
		// Baseline fast path: one load, as after JIT optimization.
		if m, ok := entry.ResolvedMirror.(*core.TaskClassMirror); ok {
			return m, entry.ResolvedField.Load(), nil
		}
		return vm.staticMirrorResolve(t, f, entry, true)
	}
	return vm.staticMirrorResolve(t, f, entry, false)
}

// staticMirrorResolve is the static-access slow path shared by both
// dispatch modes: resolve the field, guarantee the accessing isolate's
// initialization, and index the mirror. cacheShared additionally
// publishes the mirror on the pool entry — legal only under Shared
// semantics, where one mirror exists per class.
func (vm *VM) staticMirrorResolve(t *Thread, f *Frame, entry *classfile.PoolEntry, cacheShared bool) (*core.TaskClassMirror, *classfile.Field, error) {
	field := entry.ResolvedField.Load()
	if field == nil {
		var err error
		field, err = vm.resolveFieldEntry(f, entry, true)
		if err != nil {
			return nil, nil, vm.Throw(t, ClassNullPointerException, err.Error())
		}
	}
	ready, err := vm.ensureInitialized(t, field.Class, t.cur)
	if err != nil || !ready {
		return nil, nil, err
	}
	mirror := vm.world.Mirror(field.Class, t.cur)
	if cacheShared {
		entry.ResolvedMirror = mirror
	}
	return mirror, field, nil
}

// classInitReadyAt performs the class-initialization check for
// invokestatic/new through the same baseline-vs-I-JVM asymmetry as
// staticMirrorAt: Shared mode checks once per call site, I-JVM on every
// execution.
func (vm *VM) classInitReadyAt(t *Thread, entry *classfile.PoolEntry, class *classfile.Class) (bool, error) {
	if !vm.world.Isolated() && entry.ResolvedMirror != nil {
		return true, nil
	}
	ready, err := vm.ensureInitialized(t, class, t.cur)
	if err != nil || !ready {
		return false, err
	}
	if !vm.world.Isolated() {
		entry.ResolvedMirror = vm.world.Mirror(class, t.cur)
	}
	return true, nil
}

// resolveFieldEntryAt resolves a FieldRef pool entry by index with
// caching (reference switch path).
func (vm *VM) resolveFieldEntryAt(f *Frame, idx int32, wantStatic bool) (*classfile.Field, error) {
	entry, err := f.method.Class.Pool.Entry(idx)
	if err != nil {
		return nil, err
	}
	return vm.resolveFieldEntry(f, entry, wantStatic)
}

// resolveFieldEntry resolves a FieldRef pool entry with caching.
func (vm *VM) resolveFieldEntry(f *Frame, entry *classfile.PoolEntry, wantStatic bool) (*classfile.Field, error) {
	if field := entry.ResolvedField.Load(); field != nil {
		return field, nil
	}
	class, err := vm.resolveClassFrom(f.method.Class, entry.ClassName)
	if err != nil {
		return nil, err
	}
	var field *classfile.Field
	if wantStatic {
		field, err = class.LookupStaticField(entry.Name)
	} else {
		field, err = class.LookupField(entry.Name)
	}
	if err != nil {
		return nil, err
	}
	entry.ResolvedClass.Store(class)
	entry.ResolvedField.Store(field)
	return field, nil
}

// resolvePoolClass resolves a ClassRef pool entry by index with caching
// (reference switch path).
func (vm *VM) resolvePoolClass(f *Frame, idx int32) (*classfile.Class, error) {
	entry, err := f.method.Class.Pool.Entry(idx)
	if err != nil {
		return nil, err
	}
	return vm.resolvePoolClassEntry(f, entry)
}

// resolvePoolClassEntry resolves a ClassRef pool entry with caching.
func (vm *VM) resolvePoolClassEntry(f *Frame, entry *classfile.PoolEntry) (*classfile.Class, error) {
	if class := entry.ResolvedClass.Load(); class != nil {
		return class, nil
	}
	class, err := vm.resolveClassFrom(f.method.Class, entry.ClassName)
	if err != nil {
		return nil, err
	}
	entry.ResolvedClass.Store(class)
	return class, nil
}

// arrayElemClass resolves the element class of a newarray instruction; a
// zero pool index selects java/lang/Object.
func (vm *VM) arrayElemClass(f *Frame, idx int32) (*classfile.Class, error) {
	if idx == 0 {
		return vm.lookupWellKnown(ClassObject)
	}
	return vm.resolvePoolClass(f, idx)
}

func intBinop(op bytecode.Opcode, a, b int64) (int64, string) {
	switch op {
	case bytecode.OpIAdd:
		return a + b, ""
	case bytecode.OpISub:
		return a - b, ""
	case bytecode.OpIMul:
		return a * b, ""
	case bytecode.OpIDiv:
		if b == 0 {
			return 0, "/ by zero"
		}
		return a / b, ""
	case bytecode.OpIRem:
		if b == 0 {
			return 0, "% by zero"
		}
		return a % b, ""
	case bytecode.OpIShl:
		return a << (uint64(b) & 63), ""
	case bytecode.OpIShr:
		return a >> (uint64(b) & 63), ""
	case bytecode.OpIUshr:
		return int64(uint64(a) >> (uint64(b) & 63)), ""
	case bytecode.OpIAnd:
		return a & b, ""
	case bytecode.OpIOr:
		return a | b, ""
	case bytecode.OpIXor:
		return a ^ b, ""
	default:
		return 0, "invalid int binop"
	}
}

func floatBinop(op bytecode.Opcode, a, b float64) float64 {
	switch op {
	case bytecode.OpFAdd:
		return a + b
	case bytecode.OpFSub:
		return a - b
	case bytecode.OpFMul:
		return a * b
	default:
		return a / b
	}
}

func intCondition(op bytecode.Opcode, v int64) bool {
	switch op {
	case bytecode.OpIfEq:
		return v == 0
	case bytecode.OpIfNe:
		return v != 0
	case bytecode.OpIfLt:
		return v < 0
	case bytecode.OpIfLe:
		return v <= 0
	case bytecode.OpIfGt:
		return v > 0
	default:
		return v >= 0
	}
}

func intCmpCondition(op bytecode.Opcode, a, b int64) bool {
	switch op {
	case bytecode.OpIfICmpEq:
		return a == b
	case bytecode.OpIfICmpNe:
		return a != b
	case bytecode.OpIfICmpLt:
		return a < b
	case bytecode.OpIfICmpLe:
		return a <= b
	case bytecode.OpIfICmpGt:
		return a > b
	default:
		return a >= b
	}
}
