package interp_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// This file stress-tests the closure tier's concurrent promotion
// protocol under -race: one method body shared by every shard (its
// classes live in a registry loader owned by no isolate, so calls do not
// migrate and all workers execute the same bytecode.PCode), a promotion
// threshold low enough that several workers cross it in the same few
// quanta, and an admin goroutine storming exact collections, incremental
// cycle starts, interrupts and a mid-run kill. The contended surfaces:
// TierState.AddHeat, the build-then-CAS publication of the closure
// program (first winner publishes, losers adopt — same discipline as IC
// lines), per-frame adoption at activation and quantum boundaries, and
// deopt interleaving with stop-the-world phases.

const (
	tierRaceIsolates = 8
	tierRaceIters    = 1500
)

// tierRaceClasses builds the shared bundle: helper(x) = x*5 - 7 (its own
// promotion races once per call site activation) and
// spin(n) = n iterations of fused-shape arithmetic through helper.
func tierRaceClasses() []*classfile.Class {
	shared := classfile.NewClass("tier/Shared").
		Method("helper", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(5).IMul().Const(7).ISub().IReturn()
		}).
		Method("spin", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// Locals: 0 n, 1 acc, 2 i. The loop body quickens into
			// FusedLLCmpBr, FusedLCOpStore, FusedLLOpStore and
			// FusedIncGoto heads, all inside the promoted closure blocks.
			a.Const(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop").ILoad(2).ILoad(0).IfICmpGe("done")
			a.ILoad(1).Const(3).IAdd().IStore(1)
			a.ILoad(1).ILoad(2).IXor().IStore(1)
			a.ILoad(1).InvokeStatic("tier/Shared", "helper", "(I)I").IStore(1)
			a.IInc(2, 1).Goto("loop")
			a.Label("done").ILoad(1).IReturn()
		}).MustBuild()
	return []*classfile.Class{shared}
}

// tierRaceExpected is the Go-side oracle of spin(n).
func tierRaceExpected(n int64) int64 {
	var acc int64
	for i := int64(0); i < n; i++ {
		acc += 3
		acc ^= i
		acc = acc*5 - 7
	}
	return acc
}

func TestTierPromotionRaceStress(t *testing.T) {
	want := tierRaceExpected(tierRaceIters)
	for round := 0; round < 2; round++ {
		vm := interp.NewVM(interp.Options{
			Mode: core.ModeIsolated,
			// Low threshold: every shard's first quantum inside spin
			// crosses it, so promotion builds race instead of one early
			// winner publishing before anyone else warms up.
			TierPromoteThreshold: 64,
			HeapLimit:            256 << 10,
			GCThresholdPercent:   50,
			GCMarkStride:         64,
		})
		syslib.MustInstall(vm)
		sharedLoader := vm.Registry().NewLoader("tier-shared")
		if err := sharedLoader.DefineAll(tierRaceClasses()); err != nil {
			t.Fatal(err)
		}
		c, err := sharedLoader.Lookup("tier/Shared")
		if err != nil {
			t.Fatal(err)
		}
		spin, err := c.LookupMethod("spin", "(I)I")
		if err != nil {
			t.Fatal(err)
		}

		var threads []*interp.Thread
		var victim *core.Isolate
		for k := 0; k < tierRaceIsolates; k++ {
			iso, err := vm.NewIsolate(fmt.Sprintf("tierbundle%d", k))
			if err != nil {
				t.Fatal(err)
			}
			if k == 1 {
				victim = iso
			}
			th, err := vm.SpawnThread(fmt.Sprintf("tier%d", k), iso, spin,
				[]heap.Value{heap.IntVal(tierRaceIters)})
			if err != nil {
				t.Fatal(err)
			}
			threads = append(threads, th)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			killed := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					vm.CollectGarbage(nil)
				case 1:
					vm.StartIncrementalCycle()
				default:
					for _, th := range threads {
						_ = vm.InterruptThread(th)
					}
				}
				if i == 4 && !killed {
					killed = true
					if err := vm.KillIsolate(nil, victim); err != nil {
						t.Errorf("kill: %v", err)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		res := sched.Run(vm, 4, 0)
		close(stop)
		wg.Wait()
		if !res.AllDone {
			t.Fatalf("round %d: run did not finish: %+v", round, res)
		}

		for k, th := range threads {
			if k == 1 {
				continue // the victim died with its isolate
			}
			if th.Failure() != nil || th.Err() != nil {
				t.Fatalf("round %d: thread %d failed: %v / %v",
					round, k, th.FailureString(), th.Err())
			}
			if got := th.Result().I; got != want {
				t.Fatalf("round %d: thread %d = %d, want %d", round, k, got, want)
			}
		}

		// The contention under test really happened: the shared body was
		// promoted, and its prepared form carries fused heads.
		p := spin.Code.Prepared(bytecode.PSlot(bytecode.PModeIsolated, bytecode.PVariantFused))
		if p == nil {
			t.Fatalf("round %d: shared body never quickened", round)
		}
		if p.Tier.Hot() == nil {
			t.Fatalf("round %d: shared body never promoted", round)
		}
		fused := 0
		for i := range p.Instrs {
			if bytecode.IsFused(p.Instrs[i].H) {
				fused++
			}
		}
		if fused == 0 {
			t.Fatalf("round %d: shared body has no fused superinstructions", round)
		}
	}
}
