package interp

import "math"

// RunResult summarizes one scheduler run.
type RunResult struct {
	// Instructions executed during this run.
	Instructions int64
	// AllDone reports that every thread finished.
	AllDone bool
	// BudgetExhausted reports that the instruction budget ran out first —
	// the "freeze" detector for baseline denial-of-service attacks.
	BudgetExhausted bool
	// Deadlocked reports that live threads remain but none can ever
	// become runnable (all parked forever).
	Deadlocked bool
	// TargetDone reports that RunUntil's target thread finished.
	TargetDone bool
	// Shutdown reports that the platform was shut down during the run.
	Shutdown bool
	// PerIsolate carries per-isolate execution results; it is populated
	// by the concurrent scheduler (internal/sched) and empty for
	// sequential runs.
	PerIsolate []IsolateRun
}

// IsolateRun is the per-isolate slice of a concurrent run's result.
type IsolateRun struct {
	// IsolateID and Name identify the isolate.
	IsolateID int32
	Name      string
	// Instructions executed by the isolate's shard during the run
	// (attributed to the isolate that was current, exactly like the
	// sequential engine's accounting).
	Instructions int64
	// Killed reports the isolate was dead (killed or disposed) when the
	// run finished.
	Killed bool
	// ThreadsRemaining counts unfinished threads left in the shard.
	ThreadsRemaining int
	// Weight is the proportional-share weight the isolate ran under
	// (core.DefaultWeight unless set; meaningful only for concurrent
	// runs with the proportional policy).
	Weight int64
}

// Run executes runnable threads until all threads finish, the platform
// shuts down, the system deadlocks, or budget instructions have executed.
// budget <= 0 means unlimited.
func (vm *VM) Run(budget int64) RunResult {
	return vm.run(budget, nil)
}

// RunUntil is Run, stopping early once target finishes.
func (vm *VM) RunUntil(target *Thread, budget int64) RunResult {
	return vm.run(budget, target)
}

func (vm *VM) run(budget int64, target *Thread) RunResult {
	if budget <= 0 {
		budget = math.MaxInt64
	}
	vm.pruneDoneThreads()
	var res RunResult
	for {
		if vm.IsShutdown() {
			res.Shutdown = true
			return res
		}
		if target != nil && target.Done() {
			res.TargetDone = true
			return res
		}
		if res.Instructions >= budget {
			res.BudgetExhausted = true
			return res
		}
		t := vm.pickRunnable()
		if t == nil {
			if vm.liveThreads.Load() == 0 {
				res.AllDone = true
				return res
			}
			if !vm.advanceClock() {
				res.Deadlocked = true
				return res
			}
			continue
		}
		quantum := int64(vm.opts.Quantum)
		if remaining := budget - res.Instructions; remaining < quantum {
			quantum = remaining
		}
		res.Instructions += vm.runQuantum(t, quantum, target)
		// Collector hook: open a background cycle on occupancy, perform
		// one mark stride, or run the terminal phase — all at this
		// quantum boundary, with the batched charges just flushed.
		vm.gcQuantum(vm.seqAlloc)
	}
}

// runQuantum executes up to quantum instructions of t on the sequential
// engine. Accounting is batched exactly like the concurrent engine's
// RunThreadQuantum: instructions, clock ticks and per-isolate charges
// accumulate in plain local counters (the shared core.InstrBatch flushes
// on isolate migration) and are published to the atomics once per
// quantum — the per-instruction hot path performs no atomic operations.
// Per-isolate attribution is unchanged: every instruction is charged to
// the isolate that is current after the step. The hoisted mode is
// refreshed whenever SetIsolationMode raises seqModeFlip (a plain field
// beside the batch counters the loop already touches), so an
// on-goroutine flip — from a native mid-quantum, or an admin action
// between quanta — charges every instruction under the mode it actually
// executed in without re-reading the atomic mode per step.
func (vm *VM) runQuantum(t *Thread, quantum int64, target *Thread) int64 {
	if vm.seqAlloc == nil {
		vm.seqAlloc = vm.acquireAllocState()
	}
	// Quantum-start refresh of the cached write-barrier flag: arming only
	// happens inside a stop-the-world, so a per-quantum refresh keeps the
	// per-store fast path a plain bool read (see allocState.barrierOn).
	vm.seqAlloc.barrierOn = vm.heap.BarrierActive()
	// Install the sequential engine's allocation state for the quantum;
	// allocation inside the steps below goes through its shard-local
	// domain with batched byte accounting. The quantum accountant (qa)
	// rides alongside: superinstruction handlers and closure blocks charge
	// their extra covered instructions through it, so fused execution
	// keeps per-instruction-exact budgets, clock ticks, per-isolate
	// counters and CPU samples (see quantumAcct).
	t.alloc = vm.seqAlloc
	qa := quantumAcct{vm: vm, limit: quantum, isolated: vm.world.Isolated(), seq: true}
	t.qa = &qa
	defer func() { t.alloc = nil; t.qa = nil }()
	for qa.steps < quantum && t.State() == StateRunnable {
		err := vm.stepThread(t)
		qa.steps++
		vm.seqPending++
		if vm.seqModeFlip {
			vm.seqModeFlip = false
			qa.isolated = vm.world.Isolated()
		}
		if qa.isolated {
			cur := t.cur
			vm.seqBatch.Note(cur.Account())
			vm.instrSinceSample++
			if vm.instrSinceSample >= vm.opts.SampleEvery {
				vm.instrSinceSample = 0
				// The paper's CPU accounting: sample the isolate
				// reference of the running thread (§3.2).
				cur.Account().CPUSamples.Add(1)
			}
		}
		if err != nil {
			t.err = err
			vm.finishThread(t)
			break
		}
		if vm.IsShutdown() || (target != nil && target.Done()) {
			break
		}
	}
	n := qa.steps
	vm.flushSequential()
	vm.noteQuantumHeat(t, n)
	return n
}

// flushSequential publishes the sequential engine's pending batched
// charges (virtual clock, total instructions, per-isolate counters). It
// runs at every quantum boundary and at sequential safepoints
// (withWorldStopped), so stopped-world observers — the accounting GC,
// isolate kills, precise accounting — always see exact counters. Owned
// by the goroutine running Run/RunUntil.
func (vm *VM) flushSequential() {
	if vm.seqPending != 0 {
		vm.clock.Add(vm.seqPending)
		vm.totalInstrs.Add(vm.seqPending)
		vm.seqPending = 0
	}
	vm.seqBatch.Flush()
	if vm.seqAlloc != nil {
		vm.seqAlloc.batch.Flush()
		vm.seqAlloc.flushSATB(vm.heap)
	}
}

// pruneDoneThreads drops finished threads from the scheduler list once
// they dominate it, keeping long-lived VMs (benchmark loops, the OSGi
// shell) from scanning ever-growing dead entries. Host references to
// pruned Thread handles stay valid.
func (vm *VM) pruneDoneThreads() {
	vm.threadsMu.Lock()
	defer vm.threadsMu.Unlock()
	done := len(vm.threads) - int(vm.liveThreads.Load())
	if done < 64 || done < len(vm.threads)/2 {
		return
	}
	live := vm.threads[:0]
	for _, t := range vm.threads {
		if !t.Done() {
			live = append(live, t)
		} else {
			t.pruned = true
		}
	}
	for i := len(live); i < len(vm.threads); i++ {
		vm.threads[i] = nil
	}
	vm.threads = live
	vm.rrIndex = 0
}

// pickRunnable promotes wakeable threads and returns the next runnable
// thread in round-robin order, or nil. Sequential engine only; the
// concurrent scheduler polls per shard through PromoteRunnable.
func (vm *VM) pickRunnable() *Thread {
	n := len(vm.threads)
	if n == 0 {
		return nil
	}
	vm.schedMu.Lock()
	defer vm.schedMu.Unlock()
	for scan := 0; scan < n; scan++ {
		vm.rrIndex++
		t := vm.threads[(vm.rrIndex)%n]
		if vm.promoteLocked(t) {
			return t
		}
	}
	return nil
}

// promoteLocked attempts to make one thread runnable (waking it from an
// elapsed sleep, a free monitor, a notified wait or a finished join).
// It returns true when the thread is runnable afterwards. schedMu held.
func (vm *VM) promoteLocked(t *Thread) bool {
	switch t.State() {
	case StateRunnable:
		return true
	case StateSleeping:
		if t.wakeAt != SleepForever && vm.clock.Load() >= t.wakeAt {
			vm.wakeFromSleepLocked(t)
			return true
		}
	case StateBlockedMonitor:
		return vm.promoteBlockedLocked(t)
	case StateWaitingMonitor:
		if t.wakeAt != SleepForever && t.wakeAt > 0 && vm.clock.Load() >= t.wakeAt {
			// Timed wait elapsed: leave the wait set and contend for
			// the monitor again.
			obj := t.waitingOn
			vm.removeWaiterLocked(t, obj)
			vm.wakeWaiterLocked(t, obj)
			return vm.promoteBlockedLocked(t)
		}
	case StateWaitingJoin:
		if t.joinOn == nil || t.joinOn.Done() {
			vm.removeSleepGaugeLocked(t)
			t.setState(StateRunnable)
			t.joinOn = nil
			return true
		}
	}
	return false
}

// promoteBlockedLocked attempts to hand a free monitor to a blocked
// thread. For wait-reacquisition (savedLock > 0) the saved recursion
// count is restored; for monitorenter retries the instruction
// re-executes. schedMu held; the monitor word is read (and, for
// reacquisition, written) under its stripe (schedMu -> stripe ordering).
func (vm *VM) promoteBlockedLocked(t *Thread) bool {
	obj := t.blockedOn
	if obj == nil {
		t.setState(StateRunnable)
		return true
	}
	mu := vm.monStripe(obj)
	mu.Lock()
	defer mu.Unlock()
	if obj.Monitor.Owner != 0 && obj.Monitor.Owner != t.id {
		return false
	}
	if t.savedLock > 0 {
		// Complete the Object.wait reacquisition atomically.
		obj.Monitor.Owner = t.id
		obj.Monitor.Count = t.savedLock
		t.savedLock = 0
		t.blockedOn = nil
		t.setState(StateRunnable)
		return true
	}
	// monitorenter retry: just make it runnable; the instruction
	// reattempts acquisition.
	t.blockedOn = nil
	t.setState(StateRunnable)
	return true
}

// wakeFromSleepLocked transitions a sleeping thread to runnable.
func (vm *VM) wakeFromSleepLocked(t *Thread) {
	vm.removeSleepGaugeLocked(t)
	t.setState(StateRunnable)
	t.wakeAt = 0
}

// advanceClock jumps the virtual clock to the earliest wake deadline of a
// parked thread. It returns false when no thread can ever wake (true
// deadlock). Sequential engine only.
func (vm *VM) advanceClock() bool {
	earliest, ok := vm.NextWakeDeadline()
	if !ok {
		return false
	}
	vm.AdvanceClockTo(earliest)
	return true
}

// NextWakeDeadline returns the earliest virtual-time deadline among
// parked threads, if any. Used by both engines when every thread is
// parked and only a clock jump can make progress.
func (vm *VM) NextWakeDeadline() (int64, bool) {
	vm.threadsMu.Lock()
	threads := append([]*Thread(nil), vm.threads...)
	vm.threadsMu.Unlock()
	vm.schedMu.Lock()
	defer vm.schedMu.Unlock()
	earliest := int64(math.MaxInt64)
	for _, t := range threads {
		switch t.State() {
		case StateSleeping, StateWaitingMonitor:
			if t.wakeAt != SleepForever && t.wakeAt > 0 && t.wakeAt < earliest {
				earliest = t.wakeAt
			}
		}
	}
	if earliest == math.MaxInt64 {
		return 0, false
	}
	return earliest, true
}

// AdvanceClockTo moves the virtual clock forward to tick (never
// backward).
func (vm *VM) AdvanceClockTo(tick int64) {
	for {
		cur := vm.clock.Load()
		if tick <= cur || vm.clock.CompareAndSwap(cur, tick) {
			return
		}
	}
}

// Sleep parks the calling thread for d virtual ticks (SleepForever for an
// unbounded sleep). Used by the Thread.sleep native.
func (vm *VM) Sleep(t *Thread, d int64) {
	now := vm.NowTicks() // before schedMu: exact, and keeps schedMu a leaf
	vm.schedMu.Lock()
	t.setState(StateSleeping)
	if d == SleepForever {
		t.wakeAt = SleepForever
	} else {
		t.wakeAt = now + d
	}
	vm.addSleepGaugeLocked(t)
	t.StageResumeVoid()
	vm.schedMu.Unlock()
}

// Join parks the calling thread until other finishes.
func (vm *VM) Join(t *Thread, other *Thread) {
	if other == nil || other.Done() {
		return
	}
	vm.schedMu.Lock()
	t.setState(StateWaitingJoin)
	t.joinOn = other
	vm.addSleepGaugeLocked(t)
	t.StageResumeVoid()
	vm.schedMu.Unlock()
}

// InterruptThread sets the interrupt flag and wakes the thread with
// InterruptedException if it is parked in sleep, wait or join. Threads
// blocked on monitor acquisition are not interruptible, as in the JVM.
//
// The wake happens in two phases: the thread is detached from its wait
// structures under schedMu (entering an internal staging state invisible
// to the schedulers), then the InterruptedException is allocated outside
// the lock (allocation can trigger a stop-the-world collection), and
// finally the staged throw is installed and the thread made runnable.
func (vm *VM) InterruptThread(t *Thread) error {
	vm.schedMu.Lock()
	wake := false
	switch t.State() {
	case StateSleeping, StateWaitingJoin:
		vm.removeSleepGaugeLocked(t)
		t.wakeAt = 0
		t.joinOn = nil
		t.setState(stateStaging)
		wake = true
	case StateWaitingMonitor:
		obj := t.waitingOn
		vm.removeWaiterLocked(t, obj)
		vm.removeSleepGaugeLocked(t)
		t.blockedOn = obj
		t.waitingOn = nil
		t.wakeAt = 0
		t.setState(stateStaging)
		wake = true
	default:
		t.interrupted = true
	}
	vm.schedMu.Unlock()
	if !wake {
		return nil
	}
	obj, err := vm.NewThrowable(t.CurrentIsolateOrZero(), ClassInterruptedException, "interrupted")
	vm.schedMu.Lock()
	if err == nil {
		t.interrupted = false
		t.StageResumeThrow(obj)
	}
	// Publish the final state even when the allocation failed: a thread
	// left in the staging state would be invisible to both schedulers
	// forever. The failure mode is a spurious wake without the
	// exception — the graceful degradation the pre-staging code had.
	if t.blockedOn != nil {
		// Interrupted out of Object.wait: contend for the monitor again,
		// delivering the exception once it is re-acquired.
		t.setState(StateBlockedMonitor)
	} else {
		t.setState(StateRunnable)
	}
	vm.schedMu.Unlock()
	vm.notifyUnparked(t)
	return err
}

// forceInterrupt wakes a parked thread of a killed isolate with the
// appropriate exception; used by the termination engine for threads
// blocked in system-library calls below killed-isolate frames (§3.3:
// "I-JVM sets the interrupted flag of the thread so that I/O or sleep
// calls are interrupted").
func (vm *VM) forceInterrupt(t *Thread) error {
	vm.schedMu.Lock()
	blocked := t.State() == StateBlockedMonitor
	if blocked {
		// A thread blocked entering a monitor of a killed isolate's
		// object is released with the exception staged; it never
		// acquires.
		t.blockedOn = nil
		t.setState(stateStaging)
	}
	vm.schedMu.Unlock()
	if !blocked {
		switch t.State() {
		case StateSleeping, StateWaitingJoin, StateWaitingMonitor:
			return vm.InterruptThread(t)
		default:
			return nil
		}
	}
	obj, err := vm.NewThrowable(t.CurrentIsolateOrZero(), ClassStoppedIsolateException, "monitor owner stopped")
	vm.schedMu.Lock()
	if err == nil {
		t.StageResumeThrow(obj)
	}
	// As in InterruptThread: never leave the thread in staging — on
	// allocation failure it wakes spuriously instead of vanishing.
	t.setState(StateRunnable)
	vm.schedMu.Unlock()
	vm.notifyUnparked(t)
	return err
}
