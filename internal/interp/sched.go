package interp

import "math"

// RunResult summarizes one scheduler run.
type RunResult struct {
	// Instructions executed during this run.
	Instructions int64
	// AllDone reports that every thread finished.
	AllDone bool
	// BudgetExhausted reports that the instruction budget ran out first —
	// the "freeze" detector for baseline denial-of-service attacks.
	BudgetExhausted bool
	// Deadlocked reports that live threads remain but none can ever
	// become runnable (all parked forever).
	Deadlocked bool
	// TargetDone reports that RunUntil's target thread finished.
	TargetDone bool
	// Shutdown reports that the platform was shut down during the run.
	Shutdown bool
}

// Run executes runnable threads until all threads finish, the platform
// shuts down, the system deadlocks, or budget instructions have executed.
// budget <= 0 means unlimited.
func (vm *VM) Run(budget int64) RunResult {
	return vm.run(budget, nil)
}

// RunUntil is Run, stopping early once target finishes.
func (vm *VM) RunUntil(target *Thread, budget int64) RunResult {
	return vm.run(budget, target)
}

func (vm *VM) run(budget int64, target *Thread) RunResult {
	if budget <= 0 {
		budget = math.MaxInt64
	}
	vm.pruneDoneThreads()
	var res RunResult
	isolated := vm.world.Isolated()
	for {
		if vm.shutdown {
			res.Shutdown = true
			return res
		}
		if target != nil && target.Done() {
			res.TargetDone = true
			return res
		}
		if res.Instructions >= budget {
			res.BudgetExhausted = true
			return res
		}
		t := vm.pickRunnable()
		if t == nil {
			if vm.liveThreads == 0 {
				res.AllDone = true
				return res
			}
			if !vm.advanceClock() {
				res.Deadlocked = true
				return res
			}
			continue
		}
		quantum := int64(vm.opts.Quantum)
		if remaining := budget - res.Instructions; remaining < quantum {
			quantum = remaining
		}
		for i := int64(0); i < quantum && t.state == StateRunnable; i++ {
			err := vm.stepThread(t)
			res.Instructions++
			vm.clock++
			vm.totalInstrs++
			if isolated {
				cur := t.cur
				cur.Account().Instructions++
				vm.instrSinceSample++
				if vm.instrSinceSample >= vm.opts.SampleEvery {
					vm.instrSinceSample = 0
					// The paper's CPU accounting: sample the isolate
					// reference of the running thread (§3.2).
					cur.Account().CPUSamples++
				}
			}
			if err != nil {
				t.err = err
				vm.finishThread(t)
				break
			}
			if vm.shutdown || (target != nil && target.Done()) {
				break
			}
		}
	}
}

// pruneDoneThreads drops finished threads from the scheduler list once
// they dominate it, keeping long-lived VMs (benchmark loops, the OSGi
// shell) from scanning ever-growing dead entries. Host references to
// pruned Thread handles stay valid.
func (vm *VM) pruneDoneThreads() {
	done := len(vm.threads) - vm.liveThreads
	if done < 64 || done < len(vm.threads)/2 {
		return
	}
	live := vm.threads[:0]
	for _, t := range vm.threads {
		if !t.Done() {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(vm.threads); i++ {
		vm.threads[i] = nil
	}
	vm.threads = live
	vm.rrIndex = 0
}

// pickRunnable promotes wakeable threads and returns the next runnable
// thread in round-robin order, or nil.
func (vm *VM) pickRunnable() *Thread {
	n := len(vm.threads)
	if n == 0 {
		return nil
	}
	for scan := 0; scan < n; scan++ {
		vm.rrIndex++
		t := vm.threads[(vm.rrIndex)%n]
		switch t.state {
		case StateRunnable:
			return t
		case StateSleeping:
			if t.wakeAt != SleepForever && vm.clock >= t.wakeAt {
				vm.wakeFromSleep(t)
				return t
			}
		case StateBlockedMonitor:
			if vm.promoteBlocked(t) {
				return t
			}
		case StateWaitingMonitor:
			if t.wakeAt != SleepForever && t.wakeAt > 0 && vm.clock >= t.wakeAt {
				// Timed wait elapsed: leave the wait set and contend for
				// the monitor again.
				obj := t.waitingOn
				vm.removeWaiter(t, obj)
				vm.wakeWaiter(t, obj)
				if vm.promoteBlocked(t) {
					return t
				}
			}
		case StateWaitingJoin:
			if t.joinOn == nil || t.joinOn.Done() {
				vm.removeSleepGauge(t)
				t.state = StateRunnable
				t.joinOn = nil
				return t
			}
		}
	}
	return nil
}

// promoteBlocked attempts to hand a free monitor to a blocked thread. For
// wait-reacquisition (savedLock > 0) the saved recursion count is
// restored; for monitorenter retries the instruction re-executes.
func (vm *VM) promoteBlocked(t *Thread) bool {
	obj := t.blockedOn
	if obj == nil {
		t.state = StateRunnable
		return true
	}
	if obj.Monitor.Owner != 0 && obj.Monitor.Owner != t.id {
		return false
	}
	if t.savedLock > 0 {
		// Complete the Object.wait reacquisition atomically.
		obj.Monitor.Owner = t.id
		obj.Monitor.Count = t.savedLock
		t.savedLock = 0
		t.blockedOn = nil
		t.state = StateRunnable
		return true
	}
	// monitorenter retry: just make it runnable; the instruction
	// reattempts acquisition.
	t.blockedOn = nil
	t.state = StateRunnable
	return true
}

// wakeFromSleep transitions a sleeping thread to runnable.
func (vm *VM) wakeFromSleep(t *Thread) {
	vm.removeSleepGauge(t)
	t.state = StateRunnable
	t.wakeAt = 0
}

// advanceClock jumps the virtual clock to the earliest wake deadline of a
// parked thread. It returns false when no thread can ever wake (true
// deadlock).
func (vm *VM) advanceClock() bool {
	earliest := int64(math.MaxInt64)
	for _, t := range vm.threads {
		switch t.state {
		case StateSleeping, StateWaitingMonitor:
			if t.wakeAt != SleepForever && t.wakeAt > 0 && t.wakeAt < earliest {
				earliest = t.wakeAt
			}
		}
	}
	if earliest == math.MaxInt64 {
		return false
	}
	if earliest > vm.clock {
		vm.clock = earliest
	}
	return true
}

// Sleep parks the calling thread for d virtual ticks (SleepForever for an
// unbounded sleep). Used by the Thread.sleep native.
func (vm *VM) Sleep(t *Thread, d int64) {
	t.state = StateSleeping
	if d == SleepForever {
		t.wakeAt = SleepForever
	} else {
		t.wakeAt = vm.clock + d
	}
	vm.addSleepGauge(t)
	t.StageResumeVoid()
}

// Join parks the calling thread until other finishes.
func (vm *VM) Join(t *Thread, other *Thread) {
	if other == nil || other.Done() {
		return
	}
	t.state = StateWaitingJoin
	t.joinOn = other
	vm.addSleepGauge(t)
	t.StageResumeVoid()
}

// InterruptThread sets the interrupt flag and wakes the thread with
// InterruptedException if it is parked in sleep, wait or join. Threads
// blocked on monitor acquisition are not interruptible, as in the JVM.
func (vm *VM) InterruptThread(t *Thread) error {
	t.interrupted = true
	switch t.state {
	case StateSleeping, StateWaitingJoin:
		vm.removeSleepGauge(t)
		t.state = StateRunnable
		t.wakeAt = 0
		t.joinOn = nil
		return vm.stageInterrupted(t)
	case StateWaitingMonitor:
		obj := t.waitingOn
		vm.removeWaiter(t, obj)
		vm.removeSleepGauge(t)
		t.state = StateBlockedMonitor
		t.blockedOn = obj
		t.waitingOn = nil
		return vm.stageInterrupted(t)
	default:
		return nil
	}
}

func (vm *VM) stageInterrupted(t *Thread) error {
	obj, err := vm.NewThrowable(t.CurrentIsolateOrZero(), ClassInterruptedException, "interrupted")
	if err != nil {
		return err
	}
	t.interrupted = false
	t.StageResumeThrow(obj)
	return nil
}

// ForceWakeAll wakes every parked thread of an isolate with the given
// exception class; used by the termination engine for threads blocked in
// system-library calls below killed-isolate frames (§3.3: "I-JVM sets the
// interrupted flag of the thread so that I/O or sleep calls are
// interrupted").
func (vm *VM) forceInterrupt(t *Thread) error {
	switch t.state {
	case StateSleeping, StateWaitingJoin, StateWaitingMonitor:
		return vm.InterruptThread(t)
	case StateBlockedMonitor:
		// A thread blocked entering a monitor of a killed isolate's
		// object is released with the exception staged; it never
		// acquires.
		t.blockedOn = nil
		t.state = StateRunnable
		obj, err := vm.NewThrowable(t.CurrentIsolateOrZero(), ClassStoppedIsolateException, "monitor owner stopped")
		if err != nil {
			return err
		}
		t.StageResumeThrow(obj)
		return nil
	default:
		return nil
	}
}
