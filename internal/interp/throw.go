package interp

import (
	"fmt"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
)

const voidKind = classfile.KindVoid

// NewThrowable allocates an instance of a throwable system class and sets
// its message field, through the host allocation path. It is the
// wake-side entry point: InterruptThread, forceInterrupt and the kill
// patching all allocate the exception for a *parked* thread from a
// goroutine that is not executing it, so they must not touch the
// thread's engine-installed allocation state. Code running on the
// executing goroutine uses newThrowableT (via Throw) instead.
func (vm *VM) NewThrowable(iso *core.Isolate, className, msg string) (*heap.Object, error) {
	return vm.newThrowableT(nil, iso, className, msg)
}

// newThrowableT is NewThrowable with the executing thread's allocation
// state (t may be nil for the host path).
func (vm *VM) newThrowableT(t *Thread, iso *core.Isolate, className, msg string) (*heap.Object, error) {
	class, err := vm.lookupWellKnown(className)
	if err != nil {
		return nil, err
	}
	obj, err := vm.AllocObjectIn(t, class, iso)
	if err != nil {
		return nil, fmt.Errorf("allocating %s: %w", className, err)
	}
	if msg != "" {
		if f, ferr := class.LookupField("message"); ferr == nil {
			msgObj, serr := vm.NewStringObject(t, iso, msg)
			if serr != nil {
				return nil, serr
			}
			obj.Fields[f.Slot] = heap.RefVal(msgObj)
		}
	}
	return obj, nil
}

// Throw raises a guest exception of the named class in thread t,
// unwinding its frame stack. It runs on the goroutine executing t, so
// the exception is allocated through the executing shard's domain.
func (vm *VM) Throw(t *Thread, className, msg string) error {
	iso := t.CurrentIsolateOrZero()
	obj, err := vm.newThrowableT(t, iso, className, msg)
	if err != nil {
		return err
	}
	return vm.DeliverException(t, obj)
}

// isStoppedIsolate reports whether obj is I-JVM's termination exception.
func isStoppedIsolate(obj *heap.Object) bool {
	for c := obj.Class; c != nil; c = c.Super {
		if c.Name == ClassStoppedIsolateException {
			return true
		}
	}
	return false
}

// DeliverException unwinds t's frame stack looking for a handler (§3.3):
//
//   - handlers in frames belonging to a killed isolate are skipped — the
//     terminating isolate cannot catch anything anymore, and in particular
//     "the terminating isolate cannot catch [StoppedIsolateException]:
//     even if the isolate tries to catch it in the Java code, I-JVM will
//     ignore it";
//   - monitors held by synchronized frames are released during unwinding;
//   - the thread's current-isolate reference is restored across
//     inter-isolate frames;
//   - an unhandled exception terminates the thread and is recorded as its
//     failure.
func (vm *VM) DeliverException(t *Thread, exObj *heap.Object) error {
	if exObj == nil {
		return fmt.Errorf("thread %d: throw of nil exception object", t.id)
	}
	stopped := isStoppedIsolate(exObj)
	for len(t.frames) > 0 {
		f := t.top()
		frameKilled := f.iso != nil && f.iso.Killed()
		if !frameKilled {
			if target, ok := vm.findHandler(f, exObj); ok {
				f.stack = f.stack[:0]
				f.push(heap.RefVal(exObj))
				f.pc = target
				return nil
			}
		}
		vm.popFrame(t, f)
		// Returning into a killed isolate's frame converts any in-flight
		// exception into StoppedIsolateException at the lower level
		// (paper: the patched return pointer throws; an exception
		// traversing the killed frame keeps unwinding it).
		if !stopped {
			if nf := t.top(); nf != nil && nf.iso != nil && nf.iso.Killed() {
				replacement, err := vm.newThrowableT(t, t.CurrentIsolateOrZero(), ClassStoppedIsolateException,
					"isolate "+nf.iso.Name()+" stopped")
				if err != nil {
					return err
				}
				exObj = replacement
				stopped = true
			}
		}
	}
	t.failure = exObj
	vm.finishThread(t)
	return nil
}

// findHandler scans f's exception table for a handler covering the
// current pc that matches the exception's class.
func (vm *VM) findHandler(f *Frame, exObj *heap.Object) (int32, bool) {
	code := f.method.Code
	if code == nil {
		return 0, false
	}
	for _, h := range code.Handlers {
		if !h.Covers(f.pc) {
			continue
		}
		if h.CatchClass == "" {
			return h.Target, true
		}
		catch, err := vm.resolveClassFrom(f.method.Class, h.CatchClass)
		if err != nil {
			continue
		}
		if exObj.Class.IsSubclassOf(catch) {
			return h.Target, true
		}
	}
	return 0, false
}

// popFrame removes the top frame, releasing its monitor, completing a
// <clinit> mirror, and restoring the caller's isolate reference (the
// return half of thread migration, §3.1). The frame is recycled into the
// VM's frame pool: callers must capture anything they still need from it
// before calling popFrame.
func (vm *VM) popFrame(t *Thread, f *Frame) {
	if f.lockedMonitor != nil {
		vm.releaseMonitor(t, f.lockedMonitor)
		f.lockedMonitor = nil
	}
	if f.clinitMirror != nil {
		f.clinitMirror.State = core.InitDone
		f.clinitMirror.InitThread = 0
	}
	if f.callerIso != nil {
		t.cur = f.callerIso
		if vm.opts.PerCallCPUAccounting {
			vm.chargePerCallCPU(t, f.iso)
		}
	}
	n := len(t.frames) - 1
	t.frames[n] = nil
	t.frames = t.frames[:n]
	vm.releaseFrame(f)
}

// chargePerCallCPU implements the ablation-only per-call accounting
// strategy the paper rejected: charge the virtual time spent since the
// last isolate switch to the isolate being left.
func (vm *VM) chargePerCallCPU(t *Thread, leaving *core.Isolate) {
	if leaving == nil {
		return
	}
	now := vm.NowTicks()
	leaving.Account().CPUTicks.Add(now - t.lastSwitchTick)
	t.lastSwitchTick = now
}

// finishThread marks t done and releases any monitors still held by its
// frames (uncaught exception path keeps invariants intact). Joiners of
// the finished thread may become runnable; the scheduler hooks are
// notified so idle shards re-poll.
func (vm *VM) finishThread(t *Thread) {
	for len(t.frames) > 0 {
		vm.popFrame(t, t.top())
	}
	t.finishTick = vm.NowTicks()
	vm.schedMu.Lock()
	vm.removeSleepGaugeLocked(t)
	t.setState(StateDone)
	vm.schedMu.Unlock()
	t.creator.Account().ThreadsLive.Add(-1)
	vm.liveThreads.Add(-1)
	vm.notifyThreadsChanged()
}
