package textasm_test

import (
	"os"
	"path/filepath"
	"testing"

	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
	"ijvm/internal/textasm"
)

// TestShippedPrograms keeps every example .jasm program assembling and
// producing its documented result in both VM modes.
func TestShippedPrograms(t *testing.T) {
	programs := []struct {
		file   string
		class  string
		method string
		desc   string
		n      int64
		want   int64 // ignored for ()V entries
		isVoid bool
	}{
		{"sieve.jasm", "demo/Sieve", "run", "(I)I", 1000, 168, false},
		{"sieve.jasm", "demo/Sieve", "run", "(I)I", 100, 25, false},
		{"quicksort.jasm", "demo/Quicksort", "run", "(I)I", 300, 0, false},
		{"hello.jasm", "demo/Hello", "main", "()V", 0, 0, true},
	}
	for _, p := range programs {
		for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
			name := p.file + "/" + mode.String()
			if !p.isVoid {
				name += "/" + itoa(p.n)
			}
			t.Run(name, func(t *testing.T) {
				src, err := os.ReadFile(filepath.Join("../../examples/programs", p.file))
				if err != nil {
					t.Fatal(err)
				}
				classes, err := textasm.Parse(string(src))
				if err != nil {
					t.Fatal(err)
				}
				vm := interp.NewVM(interp.Options{Mode: mode})
				syslib.MustInstall(vm)
				iso, err := vm.NewIsolate("main")
				if err != nil {
					t.Fatal(err)
				}
				if err := iso.Loader().DefineAll(classes); err != nil {
					t.Fatal(err)
				}
				class, err := iso.Loader().Lookup(p.class)
				if err != nil {
					t.Fatal(err)
				}
				m, err := class.LookupMethod(p.method, p.desc)
				if err != nil {
					t.Fatal(err)
				}
				var args []heap.Value
				if !p.isVoid {
					args = []heap.Value{heap.IntVal(p.n)}
				}
				v, th, err := vm.CallRoot(iso, m, args, 50_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if th.Failure() != nil {
					t.Fatalf("uncaught: %s", th.FailureString())
				}
				if !p.isVoid && v.I != p.want {
					t.Fatalf("%s(%d) = %d, want %d", p.method, p.n, v.I, p.want)
				}
			})
		}
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
