package textasm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
)

// Print renders classes back into .jasm source that Parse accepts,
// closing the assemble/disassemble loop (used by cmd/ijvm -dump and the
// round-trip property tests). Native methods cannot be printed; they are
// emitted as comments.
func Print(classes []*classfile.Class) string {
	var b strings.Builder
	for i, c := range classes {
		if i > 0 {
			b.WriteByte('\n')
		}
		printClass(&b, c)
	}
	return b.String()
}

func printClass(b *strings.Builder, c *classfile.Class) {
	fmt.Fprintf(b, ".class %s\n", c.Name)
	if c.SuperName != "" && c.SuperName != classfile.ObjectClassName {
		fmt.Fprintf(b, ".super %s\n", c.SuperName)
	}
	for _, ifname := range c.Interfaces {
		fmt.Fprintf(b, ".implements %s\n", ifname)
	}
	for _, f := range c.Fields {
		fmt.Fprintf(b, ".field %s %s\n", f.Name, kindChar(f.Kind))
	}
	for _, f := range c.StaticFields {
		fmt.Fprintf(b, ".static %s %s\n", f.Name, kindChar(f.Kind))
	}
	for _, m := range c.Methods {
		printMethod(b, c, m)
	}
}

func kindChar(k classfile.Kind) string {
	switch k {
	case classfile.KindInt:
		return "I"
	case classfile.KindFloat:
		return "F"
	default:
		return "A"
	}
}

func methodFlags(flags classfile.Flags) string {
	var parts []string
	if flags.Has(classfile.FlagStatic) {
		parts = append(parts, "static")
	}
	if flags.Has(classfile.FlagPublic) {
		parts = append(parts, "public")
	}
	if flags.Has(classfile.FlagSynchronized) {
		parts = append(parts, "synchronized")
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

func printMethod(b *strings.Builder, c *classfile.Class, m *classfile.Method) {
	if m.IsNative() {
		fmt.Fprintf(b, "; native method %s%s elided\n", m.Name, m.Desc.Raw())
		return
	}
	fmt.Fprintf(b, ".method %s %s%s\n", m.Name, m.Desc.Raw(), methodFlags(m.Flags))
	code := m.Code
	labels := collectLabels(code)
	for pc, in := range code.Instrs {
		if name, ok := labels[int32(pc)]; ok {
			fmt.Fprintf(b, "%s:\n", name)
		}
		fmt.Fprintf(b, "    %s\n", renderInstr(c, in, labels))
	}
	// A label that targets one past the last instruction cannot occur
	// (validated code), but handler end labels can point there.
	if name, ok := labels[int32(len(code.Instrs))]; ok {
		fmt.Fprintf(b, "%s:\n", name)
	}
	for _, h := range code.Handlers {
		catch := h.CatchClass
		if catch == "" {
			catch = "*"
		}
		fmt.Fprintf(b, ".catch %s %s %s %s\n",
			catch, labels[h.Start], labels[h.End], labels[h.Target])
	}
	b.WriteString(".end\n")
}

// collectLabels assigns stable label names to every branch target and
// handler boundary.
func collectLabels(code *bytecode.Code) map[int32]string {
	targets := make(map[int32]bool)
	for _, in := range code.Instrs {
		if in.Op.IsBranch() {
			targets[in.A] = true
		}
	}
	for _, h := range code.Handlers {
		targets[h.Start] = true
		targets[h.End] = true
		targets[h.Target] = true
	}
	pcs := make([]int32, 0, len(targets))
	for pc := range targets {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	labels := make(map[int32]string, len(pcs))
	for i, pc := range pcs {
		labels[pc] = fmt.Sprintf("L%d", i)
	}
	return labels
}

func renderInstr(c *classfile.Class, in bytecode.Instr, labels map[int32]string) string {
	op := in.Op
	switch {
	case op == bytecode.OpIConst:
		return fmt.Sprintf("iconst %d", in.I)
	case op == bytecode.OpFConst:
		return "fconst " + strconv.FormatFloat(in.F, 'g', -1, 64)
	case op == bytecode.OpIInc:
		return fmt.Sprintf("iinc %d %d", in.A, in.B)
	case op.UsesLocal():
		return fmt.Sprintf("%s %d", op, in.A)
	case op.IsBranch():
		return fmt.Sprintf("%s %s", op, labels[in.A])
	case op.UsesPool():
		return renderPoolInstr(c, in)
	default:
		return op.String()
	}
}

func renderPoolInstr(c *classfile.Class, in bytecode.Instr) string {
	entry, err := c.Pool.Entry(in.A)
	if err != nil {
		if in.Op == bytecode.OpNewArray && in.A == 0 {
			return "newarray"
		}
		return fmt.Sprintf("; unprintable %s (pool %d)", in.Op, in.A)
	}
	switch in.Op {
	case bytecode.OpLdcString:
		return fmt.Sprintf("ldc_string %q", entry.Str)
	case bytecode.OpLdcClass:
		return "ldc_class " + entry.ClassName
	case bytecode.OpGetStatic, bytecode.OpPutStatic, bytecode.OpGetField, bytecode.OpPutField:
		return fmt.Sprintf("%s %s.%s", in.Op, entry.ClassName, entry.Name)
	case bytecode.OpInvokeStatic, bytecode.OpInvokeVirtual, bytecode.OpInvokeSpecial:
		return fmt.Sprintf("%s %s.%s%s", in.Op, entry.ClassName, entry.Name, entry.Descriptor)
	case bytecode.OpNew, bytecode.OpInstanceOf, bytecode.OpCheckCast:
		return fmt.Sprintf("%s %s", in.Op, entry.ClassName)
	case bytecode.OpNewArray:
		return "newarray " + entry.ClassName
	default:
		return fmt.Sprintf("; unprintable %s", in.Op)
	}
}
