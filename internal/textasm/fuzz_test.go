package textasm

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse throws arbitrary source at the assembler-text parser. The
// contract under test: Parse never panics — malformed input is rejected
// with a *ParseError (or parses cleanly), never by crashing the host.
// The corpus is seeded from the real example programs so the fuzzer
// starts from deep inside the grammar.
func FuzzParse(f *testing.F) {
	for _, name := range []string{"hello.jasm", "quicksort.jasm", "sieve.jasm"} {
		src, err := os.ReadFile(filepath.Join("../../examples/programs", name))
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		f.Add(string(src))
	}
	f.Add(".class a/B\n.method run (I)I static\niconst 1\nireturn\n.end\n")
	f.Add(".class x\n.field f int\n.method m ()V\n.handler a b c java/lang/E\nreturn\n.end\n")
	f.Fuzz(func(t *testing.T, src string) {
		classes, err := Parse(src)
		if err == nil {
			// A successful parse must produce linkable class structures;
			// touching them shakes out nil members a lenient parser might
			// leave behind.
			for _, c := range classes {
				if c == nil || c.Pool == nil {
					t.Fatalf("Parse returned nil class or pool without error")
				}
				for _, m := range c.Methods {
					if m.Code == nil && m.Native == nil {
						t.Fatalf("method %s has neither code nor native", m.Name)
					}
				}
			}
		}
	})
}
