// Package textasm parses a textual assembly format (".jasm") into class
// definitions, giving the cmd/ijvm tool a source format to run. The format
// is line-oriented:
//
//	.class demo/Hello                ; start a class (until the next .class)
//	.super java/lang/Object          ; optional superclass
//	.implements some/Interface       ; optional, repeatable
//	.field name I                    ; instance field (I, F or A)
//	.static name A                   ; static field
//	.method run (I)I static          ; start a method; flags: static,
//	                                 ; public, synchronized
//	    iconst 0
//	    istore 1
//	loop:                            ; labels end with ':'
//	    iload 1
//	    iload 0
//	    if_icmpge done
//	    iinc 1 1
//	    goto loop
//	done:
//	    iload 1
//	    ireturn
//	.catch java/lang/Throwable try endtry handler   ; exception table entry
//	.end                             ; end of method
//
// Operand syntax per opcode family:
//
//	iconst 42                fconst 2.5
//	ldc_string "text"        ldc_class pkg/Name
//	iload/istore/... N       iinc N delta
//	branch ops: label name
//	getstatic pkg/C.field    (same for putstatic/getfield/putfield)
//	invokestatic pkg/C.m(I)I (same for invokevirtual/invokespecial)
//	new pkg/C                newarray [pkg/C]   instanceof/checkcast pkg/C
//
// Comments start with ';' and run to end of line.
package textasm

import (
	"fmt"
	"strconv"
	"strings"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// Parse assembles a .jasm source into class definitions.
func Parse(src string) ([]*classfile.Class, error) {
	p := &parser{}
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := p.line(i+1, line); err != nil {
			return nil, err
		}
	}
	if p.method != nil {
		return nil, &ParseError{Line: p.methodLine, Msg: "method missing .end"}
	}
	if err := p.flushClass(); err != nil {
		return nil, err
	}
	if len(p.classes) == 0 {
		return nil, fmt.Errorf("textasm: no classes defined")
	}
	return p.classes, nil
}

// stripComment removes a trailing comment. A ';' begins a comment only at
// the start of the line or after whitespace — a ';' glued to preceding
// text is part of a method descriptor ("Ljava/lang/String;").
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case ';':
			if inStr {
				continue
			}
			if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
				return strings.TrimSpace(line[:i])
			}
		}
	}
	return strings.TrimSpace(line)
}

// tokenize splits on whitespace, keeping quoted strings as one token
// (quotes retained).
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inStr:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

func parseKind(s string) (classfile.Kind, error) {
	switch s {
	case "I":
		return classfile.KindInt, nil
	case "F":
		return classfile.KindFloat, nil
	case "A":
		return classfile.KindRef, nil
	default:
		return 0, fmt.Errorf("unknown field kind %q (want I, F or A)", s)
	}
}

type pendingMethod struct {
	name  string
	desc  string
	flags classfile.Flags
	asm   *bytecode.Assembler
}

type parser struct {
	classes []*classfile.Class

	builder    *classfile.ClassBuilder
	className  string
	methods    []*pendingMethod
	method     *pendingMethod
	methodLine int
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) line(n int, line string) error {
	if strings.HasSuffix(line, ":") && !strings.HasPrefix(line, ".") {
		if p.method == nil {
			return p.errf(n, "label outside method")
		}
		p.method.asm.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	fields := tokenize(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case ".class":
		if p.method != nil {
			return p.errf(n, ".class inside method")
		}
		if err := p.flushClass(); err != nil {
			return err
		}
		if len(fields) != 2 {
			return p.errf(n, ".class needs a name")
		}
		p.className = fields[1]
		p.builder = classfile.NewClass(fields[1])
		return nil
	case ".super":
		if p.builder == nil || len(fields) != 2 {
			return p.errf(n, ".super needs an open class and a name")
		}
		p.builder.Super(fields[1])
		return nil
	case ".implements":
		if p.builder == nil || len(fields) != 2 {
			return p.errf(n, ".implements needs an open class and a name")
		}
		p.builder.Implements(fields[1])
		return nil
	case ".field", ".static":
		if p.builder == nil || len(fields) != 3 {
			return p.errf(n, "%s needs an open class, a name and a kind", fields[0])
		}
		kind, err := parseKind(fields[2])
		if err != nil {
			return p.errf(n, "%v", err)
		}
		if fields[0] == ".field" {
			p.builder.Field(fields[1], kind)
		} else {
			p.builder.StaticField(fields[1], kind)
		}
		return nil
	case ".method":
		if p.builder == nil {
			return p.errf(n, ".method outside class")
		}
		if p.method != nil {
			return p.errf(n, "nested .method (missing .end?)")
		}
		if len(fields) < 3 {
			return p.errf(n, ".method needs a name and a descriptor")
		}
		var flags classfile.Flags
		for _, f := range fields[3:] {
			switch f {
			case "static":
				flags |= classfile.FlagStatic
			case "public":
				flags |= classfile.FlagPublic
			case "synchronized":
				flags |= classfile.FlagSynchronized
			default:
				return p.errf(n, "unknown method flag %q", f)
			}
		}
		d, err := classfile.ParseDescriptor(fields[2])
		if err != nil {
			return p.errf(n, "%v", err)
		}
		asm := bytecode.NewAssembler(p.builder.Pool())
		nParams := d.NumParams()
		if !flags.Has(classfile.FlagStatic) {
			nParams++
		}
		asm.ReserveLocals(nParams)
		p.method = &pendingMethod{name: fields[1], desc: fields[2], flags: flags, asm: asm}
		p.methodLine = n
		return nil
	case ".end":
		if p.method == nil {
			return p.errf(n, ".end outside method")
		}
		p.methods = append(p.methods, p.method)
		p.method = nil
		return nil
	case ".catch":
		if p.method == nil {
			return p.errf(n, ".catch outside method")
		}
		if len(fields) != 5 {
			return p.errf(n, ".catch needs: class start end handler")
		}
		catch := fields[1]
		if catch == "*" {
			catch = ""
		}
		p.method.asm.Handler(fields[2], fields[3], fields[4], catch)
		return nil
	}
	if p.method == nil {
		return p.errf(n, "instruction outside method: %q", line)
	}
	return p.instruction(n, fields)
}

func (p *parser) flushClass() error {
	if p.builder == nil {
		return nil
	}
	for _, m := range p.methods {
		code, err := m.asm.Finish()
		if err != nil {
			return fmt.Errorf("class %s method %s: %w", p.className, m.name, err)
		}
		if err := bytecode.Validate(code); err != nil {
			return fmt.Errorf("class %s method %s: %w", p.className, m.name, err)
		}
		p.builder.RawMethod(m.name, m.desc, m.flags, code)
	}
	class, err := p.builder.Build()
	if err != nil {
		return err
	}
	p.classes = append(p.classes, class)
	p.builder = nil
	p.methods = nil
	return nil
}

// splitMember splits "pkg/Class.member" into class and member.
func splitMember(s string) (string, string, error) {
	i := strings.LastIndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("expected class.member, got %q", s)
	}
	return s[:i], s[i+1:], nil
}

// splitMethodRef splits "pkg/Class.name(desc)ret" into its three parts.
func splitMethodRef(s string) (class, name, desc string, err error) {
	paren := strings.IndexByte(s, '(')
	if paren < 0 {
		return "", "", "", fmt.Errorf("method reference %q missing descriptor", s)
	}
	head := s[:paren]
	desc = s[paren:]
	dot := strings.LastIndexByte(head, '.')
	if dot <= 0 || dot == len(head)-1 {
		return "", "", "", fmt.Errorf("expected class.method(desc), got %q", s)
	}
	return head[:dot], head[dot+1:], desc, nil
}

// instruction assembles one instruction line.
func (p *parser) instruction(n int, fields []string) error {
	a := p.method.asm
	mnemonic := fields[0]
	op, ok := bytecode.OpcodeByName(mnemonic)
	if !ok {
		return p.errf(n, "unknown mnemonic %q", mnemonic)
	}
	args := fields[1:]
	needArgs := func(k int) error {
		if len(args) != k {
			return p.errf(n, "%s expects %d operand(s), got %d", mnemonic, k, len(args))
		}
		return nil
	}
	intArg := func(i int) (int64, error) {
		v, err := strconv.ParseInt(args[i], 10, 64)
		if err != nil {
			return 0, p.errf(n, "%s: bad integer %q", mnemonic, args[i])
		}
		return v, nil
	}

	switch {
	case op == bytecode.OpIConst:
		if err := needArgs(1); err != nil {
			return err
		}
		v, err := intArg(0)
		if err != nil {
			return err
		}
		a.Const(v)
	case op == bytecode.OpFConst:
		if err := needArgs(1); err != nil {
			return err
		}
		f, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return p.errf(n, "fconst: bad float %q", args[0])
		}
		a.FConst(f)
	case op == bytecode.OpLdcString:
		if err := needArgs(1); err != nil {
			return err
		}
		s := args[0]
		if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
			return p.errf(n, "ldc_string expects a quoted string")
		}
		a.Str(s[1 : len(s)-1])
	case op == bytecode.OpLdcClass:
		if err := needArgs(1); err != nil {
			return err
		}
		a.ClassConst(args[0])
	case op == bytecode.OpIInc:
		if err := needArgs(2); err != nil {
			return err
		}
		slot, err := intArg(0)
		if err != nil {
			return err
		}
		delta, err := intArg(1)
		if err != nil {
			return err
		}
		a.IInc(int(slot), int32(delta))
	case op.UsesLocal():
		if err := needArgs(1); err != nil {
			return err
		}
		slot, err := intArg(0)
		if err != nil {
			return err
		}
		switch op {
		case bytecode.OpILoad:
			a.ILoad(int(slot))
		case bytecode.OpFLoad:
			a.FLoad(int(slot))
		case bytecode.OpALoad:
			a.ALoad(int(slot))
		case bytecode.OpIStore:
			a.IStore(int(slot))
		case bytecode.OpFStore:
			a.FStore(int(slot))
		case bytecode.OpAStore:
			a.AStore(int(slot))
		}
	case op.IsBranch():
		if err := needArgs(1); err != nil {
			return err
		}
		p.emitBranch(op, args[0])
	case op == bytecode.OpGetStatic, op == bytecode.OpPutStatic,
		op == bytecode.OpGetField, op == bytecode.OpPutField:
		if err := needArgs(1); err != nil {
			return err
		}
		class, member, err := splitMember(args[0])
		if err != nil {
			return p.errf(n, "%s: %v", mnemonic, err)
		}
		switch op {
		case bytecode.OpGetStatic:
			a.GetStatic(class, member)
		case bytecode.OpPutStatic:
			a.PutStatic(class, member)
		case bytecode.OpGetField:
			a.GetField(class, member)
		case bytecode.OpPutField:
			a.PutField(class, member)
		}
	case op == bytecode.OpInvokeStatic, op == bytecode.OpInvokeVirtual, op == bytecode.OpInvokeSpecial:
		if err := needArgs(1); err != nil {
			return err
		}
		class, name, desc, err := splitMethodRef(args[0])
		if err != nil {
			return p.errf(n, "%s: %v", mnemonic, err)
		}
		switch op {
		case bytecode.OpInvokeStatic:
			a.InvokeStatic(class, name, desc)
		case bytecode.OpInvokeVirtual:
			a.InvokeVirtual(class, name, desc)
		case bytecode.OpInvokeSpecial:
			a.InvokeSpecial(class, name, desc)
		}
	case op == bytecode.OpNew, op == bytecode.OpInstanceOf, op == bytecode.OpCheckCast:
		if err := needArgs(1); err != nil {
			return err
		}
		switch op {
		case bytecode.OpNew:
			a.New(args[0])
		case bytecode.OpInstanceOf:
			a.InstanceOf(args[0])
		case bytecode.OpCheckCast:
			a.CheckCast(args[0])
		}
	case op == bytecode.OpNewArray:
		elem := ""
		if len(args) == 1 {
			elem = args[0]
		} else if len(args) > 1 {
			return p.errf(n, "newarray takes at most one operand")
		}
		a.NewArray(elem)
	default:
		// Operand-free instructions.
		if len(args) != 0 {
			return p.errf(n, "%s takes no operands", mnemonic)
		}
		p.emitPlain(op)
	}
	return nil
}

// emitBranch dispatches a branch mnemonic to the assembler.
func (p *parser) emitBranch(op bytecode.Opcode, label string) {
	a := p.method.asm
	switch op {
	case bytecode.OpGoto:
		a.Goto(label)
	case bytecode.OpIfEq:
		a.IfEq(label)
	case bytecode.OpIfNe:
		a.IfNe(label)
	case bytecode.OpIfLt:
		a.IfLt(label)
	case bytecode.OpIfLe:
		a.IfLe(label)
	case bytecode.OpIfGt:
		a.IfGt(label)
	case bytecode.OpIfGe:
		a.IfGe(label)
	case bytecode.OpIfICmpEq:
		a.IfICmpEq(label)
	case bytecode.OpIfICmpNe:
		a.IfICmpNe(label)
	case bytecode.OpIfICmpLt:
		a.IfICmpLt(label)
	case bytecode.OpIfICmpLe:
		a.IfICmpLe(label)
	case bytecode.OpIfICmpGt:
		a.IfICmpGt(label)
	case bytecode.OpIfICmpGe:
		a.IfICmpGe(label)
	case bytecode.OpIfACmpEq:
		a.IfACmpEq(label)
	case bytecode.OpIfACmpNe:
		a.IfACmpNe(label)
	case bytecode.OpIfNull:
		a.IfNull(label)
	case bytecode.OpIfNonNull:
		a.IfNonNull(label)
	}
}

// emitPlain dispatches an operand-free mnemonic.
func (p *parser) emitPlain(op bytecode.Opcode) {
	a := p.method.asm
	switch op {
	case bytecode.OpNop:
		a.Nop()
	case bytecode.OpAConstNull:
		a.Null()
	case bytecode.OpPop:
		a.Pop()
	case bytecode.OpDup:
		a.Dup()
	case bytecode.OpDupX1:
		a.DupX1()
	case bytecode.OpSwap:
		a.Swap()
	case bytecode.OpIAdd:
		a.IAdd()
	case bytecode.OpISub:
		a.ISub()
	case bytecode.OpIMul:
		a.IMul()
	case bytecode.OpIDiv:
		a.IDiv()
	case bytecode.OpIRem:
		a.IRem()
	case bytecode.OpINeg:
		a.INeg()
	case bytecode.OpIShl:
		a.IShl()
	case bytecode.OpIShr:
		a.IShr()
	case bytecode.OpIUshr:
		a.IUshr()
	case bytecode.OpIAnd:
		a.IAnd()
	case bytecode.OpIOr:
		a.IOr()
	case bytecode.OpIXor:
		a.IXor()
	case bytecode.OpFAdd:
		a.FAdd()
	case bytecode.OpFSub:
		a.FSub()
	case bytecode.OpFMul:
		a.FMul()
	case bytecode.OpFDiv:
		a.FDiv()
	case bytecode.OpFNeg:
		a.FNeg()
	case bytecode.OpFCmp:
		a.FCmp()
	case bytecode.OpI2F:
		a.I2F()
	case bytecode.OpF2I:
		a.F2I()
	case bytecode.OpReturn:
		a.Return()
	case bytecode.OpIReturn:
		a.IReturn()
	case bytecode.OpFReturn:
		a.FReturn()
	case bytecode.OpAReturn:
		a.AReturn()
	case bytecode.OpArrayLength:
		a.ArrayLength()
	case bytecode.OpArrayLoad:
		a.ArrayLoad()
	case bytecode.OpArrayStore:
		a.ArrayStore()
	case bytecode.OpMonitorEnter:
		a.MonitorEnter()
	case bytecode.OpMonitorExit:
		a.MonitorExit()
	case bytecode.OpAThrow:
		a.AThrow()
	}
}
