package textasm_test

import (
	"os"
	"strings"
	"testing"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
	"ijvm/internal/textasm"
)

// runProgram executes className.run(n) from parsed classes.
func runProgram(t *testing.T, classes []*classfile.Class, className string, n int64) int64 {
	t.Helper()
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(classes); err != nil {
		t.Fatal(err)
	}
	class, err := iso.Loader().Lookup(className)
	if err != nil {
		t.Fatal(err)
	}
	m, err := class.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(n)}, 10_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("%v / %s", err, th.FailureString())
	}
	return v.I
}

// TestPrintParseRoundTripPreservesSemantics: parse -> print -> parse must
// yield a program with identical behaviour and identical instruction
// streams.
func TestPrintParseRoundTripPreservesSemantics(t *testing.T) {
	sources := map[string]struct {
		src   string
		class string
		n     int64
		want  int64
	}{
		"sum":   {sumProgram, "demo/Sum", 100, 5050},
		"multi": {multiClassProgram, "demo/Main", 34, 42},
	}
	for name, tc := range sources {
		t.Run(name, func(t *testing.T) {
			first, err := textasm.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			printed := textasm.Print(first)
			second, err := textasm.Parse(printed)
			if err != nil {
				t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
			}
			if len(first) != len(second) {
				t.Fatalf("class count changed: %d -> %d", len(first), len(second))
			}
			// Structural check: same opcode streams.
			for ci := range first {
				if len(first[ci].Methods) != len(second[ci].Methods) {
					t.Fatalf("method count changed in %s", first[ci].Name)
				}
				for mi := range first[ci].Methods {
					a, b := first[ci].Methods[mi].Code, second[ci].Methods[mi].Code
					if len(a.Instrs) != len(b.Instrs) {
						t.Fatalf("instr count changed in %s", first[ci].Methods[mi].QualifiedName())
					}
					for pc := range a.Instrs {
						if a.Instrs[pc].Op != b.Instrs[pc].Op {
							t.Fatalf("op changed at %s pc %d: %v -> %v",
								first[ci].Methods[mi].QualifiedName(), pc, a.Instrs[pc].Op, b.Instrs[pc].Op)
						}
					}
				}
			}
			// Behavioural check (fresh class sets: classes link once).
			third, err := textasm.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			fourth, err := textasm.Parse(printed)
			if err != nil {
				t.Fatal(err)
			}
			got1 := runProgram(t, third, tc.class, tc.n)
			got2 := runProgram(t, fourth, tc.class, tc.n)
			if got1 != tc.want || got2 != tc.want {
				t.Fatalf("results: original=%d reprinted=%d want=%d", got1, got2, tc.want)
			}
		})
	}
}

// TestPrintHandlesExceptionTables round-trips the catch program.
func TestPrintHandlesExceptionTables(t *testing.T) {
	first, err := textasm.Parse(catchProgram)
	if err != nil {
		t.Fatal(err)
	}
	printed := textasm.Print(first)
	if !strings.Contains(printed, ".catch java/lang/ArithmeticException") {
		t.Fatalf("handler lost:\n%s", printed)
	}
	reparsed, err := textasm.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	got := runProgram(t, reparsed, "demo/Catch", 0)
	if got != -1 {
		t.Fatalf("run(0) = %d, want -1 via handler", got)
	}
}

// TestPrintRoundTripSieveFile round-trips the shipped example program.
func TestPrintRoundTripSieveFile(t *testing.T) {
	src, err := os.ReadFile("../../examples/programs/sieve.jasm")
	if err != nil {
		t.Skipf("example program unavailable: %v", err)
	}
	first, err := textasm.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	printed := textasm.Print(first)
	reparsed, err := textasm.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := runProgram(t, reparsed, "demo/Sieve", 1000); got != 168 {
		t.Fatalf("primes(1000) = %d, want 168", got)
	}
}
