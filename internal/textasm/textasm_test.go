package textasm_test

import (
	"strings"
	"testing"

	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
	"ijvm/internal/textasm"
)

const sumProgram = `
; sum 1..n
.class demo/Sum
.method run (I)I static
    iconst 0
    istore 1
    iconst 1
    istore 2
loop:
    iload 2
    iload 0
    if_icmpgt done
    iload 1
    iload 2
    iadd
    istore 1
    iinc 2 1
    goto loop
done:
    iload 1
    ireturn
.end
`

func TestParseAndRunSum(t *testing.T) {
	classes, err := textasm.Parse(sumProgram)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(classes) != 1 || classes[0].Name != "demo/Sum" {
		t.Fatalf("unexpected classes: %v", classes)
	}
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(classes); err != nil {
		t.Fatal(err)
	}
	m, err := classes[0].LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(100)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("run: %v / %s", err, th.FailureString())
	}
	if v.I != 5050 {
		t.Fatalf("run(100) = %d, want 5050", v.I)
	}
}

const multiClassProgram = `
.class demo/Pair
.field a I
.field b I
.method <init> (II)V public
    aload 0
    invokespecial java/lang/Object.<init>()V
    aload 0
    iload 1
    putfield demo/Pair.a
    aload 0
    iload 2
    putfield demo/Pair.b
    return
.end
.method sum ()I public
    aload 0
    getfield demo/Pair.a
    aload 0
    getfield demo/Pair.b
    iadd
    ireturn
.end

.class demo/Main
.static last I
.method run (I)I static
    new demo/Pair
    dup
    iload 0
    iconst 8
    invokespecial demo/Pair.<init>(II)V
    invokevirtual demo/Pair.sum()I
    putstatic demo/Main.last
    getstatic demo/Main.last
    ireturn
.end
`

func TestParseMultiClassWithFieldsAndStrings(t *testing.T) {
	classes, err := textasm.Parse(multiClassProgram)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(classes); err != nil {
		t.Fatal(err)
	}
	mainClass := classes[1]
	m, err := mainClass.LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(34)}, 1_000_000)
	if err != nil || th.Failure() != nil {
		t.Fatalf("run: %v / %s", err, th.FailureString())
	}
	if v.I != 42 {
		t.Fatalf("run(34) = %d, want 42", v.I)
	}
}

const catchProgram = `
.class demo/Catch
.method run (I)I static
try:
    iconst 10
    iload 0
    idiv
    ireturn
endtry:
handler:
    pop
    iconst -1
    ireturn
.catch java/lang/ArithmeticException try endtry handler
.end
`

func TestParseExceptionHandler(t *testing.T) {
	classes, err := textasm.Parse(catchProgram)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	iso, err := vm.NewIsolate("main")
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Loader().DefineAll(classes); err != nil {
		t.Fatal(err)
	}
	m, err := classes[0].LookupMethod("run", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(0)}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != -1 {
		t.Fatalf("run(0) = %d, want -1 (handler)", v.I)
	}
	v, _, err = vm.CallRoot(iso, m, []heap.Value{heap.IntVal(2)}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 5 {
		t.Fatalf("run(2) = %d, want 5", v.I)
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", ".class c\n.method m ()V static\nbogus\n.end", "unknown mnemonic"},
		{"label outside method", "oops:\n", "label outside method"},
		{"missing end", ".class c\n.method m ()V static\nreturn\n", "missing .end"},
		{"instruction outside method", ".class c\nreturn", "instruction outside method"},
		{"bad flag", ".class c\n.method m ()V bogusflag\n.end", "unknown method flag"},
		{"no classes", "; just a comment", "no classes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := textasm.Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
