package loader

import (
	"sync"
	"sync/atomic"

	"ijvm/internal/classfile"
)

// loaderTable is the copy-on-write published loader slice.
type loaderTable struct {
	p atomic.Pointer[[]*Loader]
}

func (t *loaderTable) load() []*Loader { return *t.p.Load() }

func (t *loaderTable) publish(ls []*Loader) { t.p.Store(&ls) }

// Registry owns all loaders of one VM and hands out link-time IDs.
//
// Concurrency: the loader table and the statics-ID class index are both
// published copy-on-write through atomic pointers so the interpreter's
// invoke path (Loader by ID on every cross-loader call) and the GC's
// mirror-root walk (ClassByStaticsID for every installed mirror) stay
// lock-free while the snapshot-clone path creates tenant loaders — and
// concurrent cold provisioning defines whole class sets — behind a
// running scheduler; regMu serializes creation, release, and ID
// assignment (registerLinked). Classes are immutable once linked; only
// the registry-wide counters and the published index need the lock.
type Registry struct {
	regMu       sync.Mutex
	loaders     loaderTable
	freeLoaders []*Loader

	bootstrap          *Loader
	nextStaticsID      int
	nextMethodID       int
	classesByStaticsID classTable
}

// classTable is the copy-on-write published statics-ID -> class index.
type classTable struct {
	p atomic.Pointer[[]*classfile.Class]
}

func (t *classTable) load() []*classfile.Class {
	if cs := t.p.Load(); cs != nil {
		return *cs
	}
	return nil
}

func (t *classTable) publish(cs []*classfile.Class) { t.p.Store(&cs) }

// registerLinked assigns the class (and its methods) their registry-wide
// IDs and publishes the class in the statics-ID index, all under regMu.
// link calls it exactly once per class, as its final step: everything
// else about the class is already immutable by then, so a reader that
// loads the new table sees a fully linked class. Keeping the counters
// and the append under the lock is what lets clone-pool refill and cold
// tenant provisioning define classes concurrently without torn IDs or a
// lost index entry.
func (r *Registry) registerLinked(c *classfile.Class) {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	c.StaticsID = r.nextStaticsID
	r.nextStaticsID++
	for _, m := range c.Methods {
		m.ID = r.nextMethodID
		r.nextMethodID++
	}
	cur := r.classesByStaticsID.load()
	grown := make([]*classfile.Class, len(cur)+1)
	copy(grown, cur)
	grown[len(cur)] = c
	r.classesByStaticsID.publish(grown)
}

// NewRegistry creates a registry with a fresh bootstrap loader.
func NewRegistry() *Registry {
	r := &Registry{}
	r.bootstrap = &Loader{
		id:       BootstrapID,
		name:     "bootstrap",
		registry: r,
		classes:  make(map[string]*classfile.Class),
	}
	r.loaders.publish([]*Loader{r.bootstrap})
	return r
}

// Bootstrap returns the system-library loader.
func (r *Registry) Bootstrap() *Loader { return r.bootstrap }

// NewLoader creates an application class loader. Per the paper, the first
// application loader becomes Isolate0's loader; subsequent loaders belong
// to standard (bundle) isolates. The isolate association itself is
// maintained by the core package. A previously released classless loader
// is reused (same ID, fresh name, no delegates) before a new slot is
// grown — the recycling pool's loader-side counterpart.
func (r *Registry) NewLoader(name string) *Loader {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	if n := len(r.freeLoaders); n > 0 {
		l := r.freeLoaders[n-1]
		r.freeLoaders = r.freeLoaders[:n-1]
		l.name = name
		return l
	}
	cur := r.loaders.load()
	l := &Loader{
		id:       len(cur),
		name:     name,
		registry: r,
		classes:  make(map[string]*classfile.Class),
	}
	grown := make([]*Loader, len(cur)+1)
	copy(grown, cur)
	grown[len(cur)] = l
	r.loaders.publish(grown)
	return l
}

// ReleaseLoader returns a classless application loader to the registry's
// free-list so the next NewLoader reuses its ID instead of growing the
// table — snapshot clones resolve everything through delegation and
// define no classes of their own, so a recycled tenant's loader is always
// eligible. Loaders that defined classes are never released (their
// classes' LoaderID bindings must stay unambiguous forever). The caller
// must have detached the loader from any isolate first (core.FreeIsolate
// does). Returns false if the loader is not eligible.
func (r *Registry) ReleaseLoader(l *Loader) bool {
	if l == nil || l.IsBootstrap() || l.registry != r || len(l.classes) > 0 {
		return false
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	for _, f := range r.freeLoaders {
		if f == l {
			return false
		}
	}
	l.delegates = nil
	r.freeLoaders = append(r.freeLoaders, l)
	return true
}

// Loader returns the loader with the given ID, or nil. Lock-free (one
// atomic load plus an index) — the interpreter consults it on every
// cross-loader invoke.
func (r *Registry) Loader(id int) *Loader {
	cur := r.loaders.load()
	if id < 0 || id >= len(cur) {
		return nil
	}
	return cur[id]
}

// NumLoaders returns the number of loaders including bootstrap.
func (r *Registry) NumLoaders() int { return len(r.loaders.load()) }

// NumClasses returns the total number of linked classes. Lock-free (one
// atomic load).
func (r *Registry) NumClasses() int { return len(r.classesByStaticsID.load()) }

// ClassByStaticsID returns the class whose StaticsID is id, or nil.
// Lock-free — the GC's mirror-root walk calls it for every installed
// mirror while loaders keep linking classes.
func (r *Registry) ClassByStaticsID(id int) *classfile.Class {
	cur := r.classesByStaticsID.load()
	if id < 0 || id >= len(cur) {
		return nil
	}
	return cur[id]
}
