package loader_test

import (
	"errors"
	"strings"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/loader"
)

func simpleClass(name, super string) *classfile.Class {
	b := classfile.NewClass(name)
	if super != "" {
		b.Super(super)
	}
	b.Field("x", classfile.KindInt)
	b.StaticField("s", classfile.KindInt)
	b.Method("m", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) { a.Return() })
	return b.MustBuild()
}

func newRegistryWithObject(t *testing.T) *loader.Registry {
	t.Helper()
	r := loader.NewRegistry()
	obj := classfile.NewClass(classfile.ObjectClassName).MustBuild()
	if err := r.Bootstrap().Define(obj); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLinkAssignsSlotsAcrossHierarchy(t *testing.T) {
	r := newRegistryWithObject(t)
	l := r.NewLoader("app")
	base := simpleClass("a/Base", "")
	if err := l.Define(base); err != nil {
		t.Fatal(err)
	}
	derived := simpleClass("a/Derived", "a/Base")
	if err := l.Define(derived); err != nil {
		t.Fatal(err)
	}
	if base.NumFieldSlots != 1 || derived.NumFieldSlots != 2 {
		t.Fatalf("field slots: base=%d derived=%d", base.NumFieldSlots, derived.NumFieldSlots)
	}
	if derived.Fields[0].Slot != 1 {
		t.Fatalf("derived field slot = %d, want 1", derived.Fields[0].Slot)
	}
	if base.StaticsID == derived.StaticsID {
		t.Fatal("statics IDs must be unique")
	}
	if derived.Super != base {
		t.Fatal("superclass not resolved")
	}
	if base.LoaderID != l.ID() {
		t.Fatal("loader ID not recorded")
	}
}

func TestBootstrapClassesAreSystem(t *testing.T) {
	r := newRegistryWithObject(t)
	obj, err := r.Bootstrap().Lookup(classfile.ObjectClassName)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.IsSystem() {
		t.Fatal("bootstrap class must carry FlagSystem")
	}
	l := r.NewLoader("app")
	c := simpleClass("a/C", "")
	if err := l.Define(c); err != nil {
		t.Fatal(err)
	}
	if c.IsSystem() {
		t.Fatal("application class must not carry FlagSystem")
	}
}

func TestLookupDelegation(t *testing.T) {
	r := newRegistryWithObject(t)
	exporter := r.NewLoader("exporter")
	if err := exporter.Define(simpleClass("exp/C", "")); err != nil {
		t.Fatal(err)
	}
	importer := r.NewLoader("importer")

	// Without wiring: not visible.
	if _, err := importer.Lookup("exp/C"); err == nil {
		t.Fatal("class visible without delegation")
	}
	var cnf *loader.ClassNotFoundError
	if _, err := importer.Lookup("exp/C"); !errors.As(err, &cnf) {
		t.Fatalf("error type: %v", err)
	}

	importer.AddDelegate(exporter)
	if _, err := importer.Lookup("exp/C"); err != nil {
		t.Fatalf("delegation failed: %v", err)
	}
	// Bootstrap always wins.
	if c, err := importer.Lookup(classfile.ObjectClassName); err != nil || !c.IsSystem() {
		t.Fatalf("bootstrap lookup: %v", err)
	}
	// Self/nil delegation is ignored.
	importer.AddDelegate(importer)
	importer.AddDelegate(nil)
	importer.AddDelegate(exporter) // duplicate
}

func TestDefineRejectsDuplicatesAndRelinks(t *testing.T) {
	r := newRegistryWithObject(t)
	l := r.NewLoader("app")
	c := simpleClass("a/C", "")
	if err := l.Define(c); err != nil {
		t.Fatal(err)
	}
	if err := l.Define(c); err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Fatalf("relink err = %v", err)
	}
	dup := simpleClass("a/C", "")
	if err := l.Define(dup); err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Fatalf("duplicate err = %v", err)
	}
	if err := l.Define(simpleClass("a/D", "missing/Super")); err == nil {
		t.Fatal("missing superclass accepted")
	}
}

func TestDefineAllOrdersBySuperclass(t *testing.T) {
	r := newRegistryWithObject(t)
	l := r.NewLoader("app")
	// Deliberately reversed order.
	classes := []*classfile.Class{
		simpleClass("o/C", "o/B"),
		simpleClass("o/B", "o/A"),
		simpleClass("o/A", ""),
	}
	if err := l.DefineAll(classes); err != nil {
		t.Fatal(err)
	}
	if l.NumClasses() != 3 {
		t.Fatalf("defined %d classes", l.NumClasses())
	}
	names := []string{}
	for _, c := range l.Classes() {
		names = append(names, c.Name)
	}
	if names[0] != "o/A" || names[2] != "o/C" {
		t.Fatalf("Classes() = %v", names)
	}
}

func TestDefineAllDetectsCycles(t *testing.T) {
	r := newRegistryWithObject(t)
	l := r.NewLoader("app")
	err := l.DefineAll([]*classfile.Class{
		simpleClass("c/A", "c/B"),
		simpleClass("c/B", "c/A"),
	})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryAccessors(t *testing.T) {
	r := newRegistryWithObject(t)
	l1 := r.NewLoader("one")
	if r.NumLoaders() != 2 {
		t.Fatalf("loaders = %d", r.NumLoaders())
	}
	if r.Loader(l1.ID()) != l1 || r.Loader(99) != nil || r.Loader(-1) != nil {
		t.Fatal("Loader accessor broken")
	}
	c := simpleClass("x/C", "")
	if err := l1.Define(c); err != nil {
		t.Fatal(err)
	}
	if r.ClassByStaticsID(c.StaticsID) != c {
		t.Fatal("ClassByStaticsID broken")
	}
	if r.ClassByStaticsID(1000) != nil {
		t.Fatal("out-of-range StaticsID accepted")
	}
	if r.NumClasses() != 2 { // Object + x/C
		t.Fatalf("NumClasses = %d", r.NumClasses())
	}
}
