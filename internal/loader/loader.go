// Package loader implements class loaders and the class registry. A class
// loader delimits an isolate's scope, exactly as in the paper (§3.1): "an
// isolate is built from a class loader, so its scope is the classes loaded
// by the class loader". The bootstrap loader holds the Java System Library
// and belongs to no isolate; its code executes in the caller's isolate.
package loader

import (
	"errors"
	"fmt"
	"sort"

	"ijvm/internal/classfile"
)

// BootstrapID is the loader ID of the bootstrap (system library) loader.
const BootstrapID = 0

// FinalizeName is the finalizer method name; instances of classes
// declaring finalize()V are finalized before the collector reclaims them.
const FinalizeName = "finalize"

// ClassNotFoundError reports a failed class lookup.
type ClassNotFoundError struct {
	Loader string
	Name   string
}

func (e *ClassNotFoundError) Error() string {
	return fmt.Sprintf("class %s not found by loader %s", e.Name, e.Loader)
}

// Loader defines and resolves classes. Lookup order is: bootstrap loader,
// the loader's own classes, then delegate loaders (OSGi package wiring).
type Loader struct {
	id        int
	name      string
	registry  *Registry
	classes   map[string]*classfile.Class
	delegates []*Loader
}

// ID returns the loader's registry ID (BootstrapID for the bootstrap
// loader).
func (l *Loader) ID() int { return l.id }

// Name returns the loader's diagnostic name.
func (l *Loader) Name() string { return l.name }

// IsBootstrap reports whether this is the system-library loader.
func (l *Loader) IsBootstrap() bool { return l.id == BootstrapID }

// AddDelegate wires another loader into this loader's resolution path
// (OSGi import-package wiring). Delegation is searched after the loader's
// own classes, in wiring order.
func (l *Loader) AddDelegate(d *Loader) {
	if d == nil || d == l {
		return
	}
	for _, existing := range l.delegates {
		if existing == d {
			return
		}
	}
	l.delegates = append(l.delegates, d)
}

// Delegates returns the loader's delegate wiring in resolution order (a
// copy). The snapshot engine replays it onto clone loaders so a clone
// resolves exactly the class set its template did.
func (l *Loader) Delegates() []*Loader {
	return append([]*Loader(nil), l.delegates...)
}

// Define links and registers a built class with this loader. The
// superclass (and interfaces, if defined as classes) must already be
// resolvable through this loader.
func (l *Loader) Define(c *classfile.Class) error {
	if c == nil {
		return errors.New("loader: define nil class")
	}
	if c.Linked {
		return fmt.Errorf("loader: class %s already defined", c.Name)
	}
	if _, exists := l.classes[c.Name]; exists {
		return fmt.Errorf("loader %s: duplicate class %s", l.name, c.Name)
	}
	if err := l.link(c); err != nil {
		return err
	}
	l.classes[c.Name] = c
	return nil
}

// MustDefine is Define for statically-correct class sets; it panics on
// error.
func (l *Loader) MustDefine(c *classfile.Class) *classfile.Class {
	if err := l.Define(c); err != nil {
		panic("loader: " + err.Error())
	}
	return c
}

// DefineAll defines classes in an order that satisfies superclass
// dependencies within the given set (classes whose superclasses are
// outside the set must already be resolvable).
func (l *Loader) DefineAll(classes []*classfile.Class) error {
	pending := make(map[string]*classfile.Class, len(classes))
	for _, c := range classes {
		pending[c.Name] = c
	}
	remaining := append([]*classfile.Class(nil), classes...)
	for len(remaining) > 0 {
		progressed := false
		var next []*classfile.Class
		for _, c := range remaining {
			if _, inSet := pending[c.SuperName]; inSet {
				next = append(next, c)
				continue
			}
			if err := l.Define(c); err != nil {
				return err
			}
			delete(pending, c.Name)
			progressed = true
		}
		if !progressed {
			names := make([]string, 0, len(next))
			for _, c := range next {
				names = append(names, c.Name)
			}
			sort.Strings(names)
			return fmt.Errorf("loader %s: superclass cycle or missing superclass among %v", l.name, names)
		}
		remaining = next
	}
	return nil
}

// Lookup resolves a class name: bootstrap first, then this loader's own
// classes, then delegates.
func (l *Loader) Lookup(name string) (*classfile.Class, error) {
	if !l.IsBootstrap() {
		if c, ok := l.registry.bootstrap.classes[name]; ok {
			return c, nil
		}
	}
	if c, ok := l.classes[name]; ok {
		return c, nil
	}
	for _, d := range l.delegates {
		if c, ok := d.classes[name]; ok {
			return c, nil
		}
	}
	return nil, &ClassNotFoundError{Loader: l.name, Name: name}
}

// Classes returns the classes defined directly by this loader, sorted by
// name (a copy; callers may not mutate loader state through it).
func (l *Loader) Classes() []*classfile.Class {
	out := make([]*classfile.Class, 0, len(l.classes))
	for _, c := range l.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumClasses returns the number of classes defined by this loader.
func (l *Loader) NumClasses() int { return len(l.classes) }

// link resolves the superclass, assigns field slots and statics/method
// IDs, and marks the class linked.
func (l *Loader) link(c *classfile.Class) error {
	if c.Name != classfile.ObjectClassName {
		super, err := l.Lookup(c.SuperName)
		if err != nil {
			return fmt.Errorf("link %s: superclass: %w", c.Name, err)
		}
		c.Super = super
	}
	base := 0
	if c.Super != nil {
		base = c.Super.NumFieldSlots
	}
	for i, f := range c.Fields {
		f.Slot = base + i
	}
	c.NumFieldSlots = base + len(c.Fields)
	for i, f := range c.StaticFields {
		f.Slot = i
	}
	c.NumStaticSlots = len(c.StaticFields)
	c.LoaderID = l.id
	if l.IsBootstrap() {
		c.Flags |= classfile.FlagSystem
	}
	c.HasFinalizer = c.DeclaredMethod(FinalizeName, "()V") != nil ||
		(c.Super != nil && c.Super.HasFinalizer)
	// ID assignment and index publication go last, under the registry
	// lock: once the class appears in the statics-ID table it is fully
	// linked, so lock-free readers (invoke path, GC mirror-root walk)
	// never observe a half-linked class.
	l.registry.registerLinked(c)
	c.Linked = true
	return nil
}

// Registry owns all loaders of one VM and hands out link-time IDs; see
// registry.go.
