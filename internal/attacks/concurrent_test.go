package attacks_test

import (
	"testing"

	"ijvm/internal/attacks"
	"ijvm/internal/core"
)

// TestAttacksUnderConcurrentScheduler re-runs the §4.3 attack scenarios
// with every scheduler phase driven through the concurrent isolate
// scheduler (RunConcurrent) instead of the sequential cooperative loop,
// and asserts the outcomes the paper's table demands are unchanged: the
// victim isolates survive, and the attacker is detected, killed and
// accounted exactly as in the sequential path. Running under -race this
// also exercises the cross-isolate locking discipline end to end.
func TestAttacksUnderConcurrentScheduler(t *testing.T) {
	attacks.ConcurrentWorkers = 4
	defer func() { attacks.ConcurrentWorkers = 0 }()

	needsDetection := map[string]bool{
		"A1": false, "A2": false,
		"A3": true, "A4": true, "A5": true, "A6": true, "A7": true, "A8": true,
		"X9": true,
	}

	all := append(attacks.All(), attacks.Extensions()...)
	for _, a := range all {
		a := a
		t.Run(a.ID+"/ijvm", func(t *testing.T) {
			r, err := a.Run(core.ModeIsolated)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !r.VictimOK {
				t.Errorf("victim must survive %s under the concurrent scheduler: %s", a.ID, r)
			}
			if needsDetection[a.ID] && (!r.Detected || !r.OffenderKilled) {
				t.Errorf("admin must detect and kill for %s under the concurrent scheduler: %s", a.ID, r)
			}
		})
	}

	// The isolation attacks must still visibly compromise the baseline
	// when the baseline is driven concurrently (a single shard: the
	// concurrent engine degenerates to cooperative scheduling there).
	for _, id := range []string{"A1", "A2"} {
		a := attacks.ByID(id)
		t.Run(id+"/baseline", func(t *testing.T) {
			r, err := a.Run(core.ModeShared)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !r.PlatformCompromised {
				t.Errorf("baseline must be compromised by %s: %s", id, r)
			}
		})
	}
}
