// Package attacks implements the eight attacks of the paper's robustness
// evaluation (§4.3), each runnable on the baseline VM (Shared mode — the
// "Sun JVM" column) and on I-JVM (Isolated mode). The harness reproduces
// the paper's outcome table: on the baseline the attacks corrupt, freeze
// or abort the platform and the administrator has no handle to stop them;
// on I-JVM isolation neutralizes A1/A2 outright and resource accounting
// lets the administrator locate and kill the offender for A3-A8.
package attacks

import (
	"fmt"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/osgi"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// ConcurrentWorkers, when set to a positive value, makes every attack
// environment drive its scheduler phases through the concurrent isolate
// scheduler (internal/sched) with that many workers instead of the
// sequential cooperative loop. The concurrency test suite uses it to
// re-run the §4.3 scenarios under RunConcurrent; it is not safe to
// change while attacks are running.
var ConcurrentWorkers = 0

// SeedDispatch, when true, builds every attack environment with code
// preparation disabled so the scenarios execute through the seed-style
// switch interpreter. The dispatch oracle test uses it to prove the
// quickened interpreter reproduces the attack outcomes and accounting
// exactly; it is not safe to change while attacks are running.
var SeedDispatch = false

// TestHookNewVM, when non-nil, observes every attack environment's VM at
// creation time. The dispatch oracle test uses it to read per-isolate
// accounting after a scenario finishes.
var TestHookNewVM func(*interp.VM)

// Result captures one attack execution.
type Result struct {
	// ID is the attack identifier (A1..A8, §4.3 numbering).
	ID string
	// Name is the attack's short description.
	Name string
	// Mode is the VM mode the attack ran under.
	Mode core.Mode

	// VictimOK reports whether the victim bundle kept operating
	// correctly (after administrative recovery, where applicable).
	VictimOK bool
	// PlatformCompromised reports that the attack achieved its effect
	// (corruption, freeze, denial) on this VM.
	PlatformCompromised bool
	// Detected reports that the administrator's detectors identified the
	// offending bundle.
	Detected bool
	// OffenderKilled reports that the offender was terminated.
	OffenderKilled bool
	// Notes carries a human-readable outcome summary.
	Notes string
}

func (r Result) String() string {
	return fmt.Sprintf("%-3s %-28s mode=%-8s victimOK=%-5v compromised=%-5v detected=%-5v killed=%-5v  %s",
		r.ID, r.Name, r.Mode, r.VictimOK, r.PlatformCompromised, r.Detected, r.OffenderKilled, r.Notes)
}

// Contained reports the paper's I-JVM outcome: either isolation
// neutralized the attack outright (A1/A2/A8 — no compromise at all), or
// the attack transiently achieved its effect but accounting located the
// offender, the administrator killed it, and the victim kept operating
// (the A3–A7 detect-and-recover loop). A shared-mode baseline run is
// expected NOT to be contained — that asymmetry is the point of the
// paper's table.
func (r Result) Contained() bool {
	if !r.VictimOK {
		return false
	}
	return !r.PlatformCompromised || (r.Detected && r.OffenderKilled)
}

// Attack is one runnable attack scenario.
type Attack struct {
	ID   string
	Name string
	Run  func(mode core.Mode) (Result, error)
}

// All returns the eight attacks in §4.3 order.
func All() []Attack {
	return []Attack{
		{ID: "A1", Name: "static variable corruption", Run: RunA1},
		{ID: "A2", Name: "lock on shared Class object", Run: RunA2},
		{ID: "A3", Name: "memory exhaustion", Run: RunA3},
		{ID: "A4", Name: "exponential object creation", Run: RunA4},
		{ID: "A5", Name: "recursive thread creation", Run: RunA5},
		{ID: "A6", Name: "standalone infinite loop", Run: RunA6},
		{ID: "A7", Name: "hanging thread", Run: RunA7},
		{ID: "A8", Name: "lack of termination support", Run: RunA8},
	}
}

// Extensions returns attacks beyond the paper's suite, exercising
// accounting dimensions §4.3 leaves untested.
func Extensions() []Attack {
	return []Attack{
		{ID: "X9", Name: "connection/IO flood (extension)", Run: RunX9},
	}
}

// ByID returns the attack (paper suite or extension) with the given ID,
// or nil.
func ByID(id string) *Attack {
	for _, set := range [][]Attack{All(), Extensions()} {
		for i := range set {
			if set[i].ID == id {
				return &set[i]
			}
		}
	}
	return nil
}

// RunAll executes every attack under the given mode.
func RunAll(mode core.Mode) ([]Result, error) {
	var out []Result
	for _, a := range All() {
		r, err := a.Run(mode)
		if err != nil {
			return out, fmt.Errorf("%s: %w", a.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// env is one attack environment: a fresh VM and OSGi framework. workers
// > 0 selects the concurrent scheduler for every drive phase.
type env struct {
	vm      *interp.VM
	fw      *osgi.Framework
	workers int
}

// run drives the scheduler for at most budget instructions.
func (e *env) run(budget int64) {
	if e.workers > 0 {
		sched.Run(e.vm, e.workers, budget)
	} else {
		e.vm.Run(budget)
	}
}

// runUntil drives the scheduler until the target finishes or the budget
// is exhausted, using the per-thread target on both engines
// (sched.RunUntil is the concurrent counterpart of VM.RunUntil).
func (e *env) runUntil(t *interp.Thread, budget int64) {
	if e.workers > 0 {
		sched.RunUntil(e.vm, e.workers, budget, t)
	} else {
		e.vm.RunUntil(t, budget)
	}
}

// call invokes a method on a fresh thread and drives the scheduler until
// it finishes, mirroring interp.CallRoot under either engine.
func (e *env) call(iso *core.Isolate, m *classfile.Method, args []heap.Value, budget int64) (heap.Value, *interp.Thread, error) {
	if e.workers == 0 {
		return e.vm.CallRoot(iso, m, args, budget)
	}
	t, err := e.vm.SpawnThread("call:"+m.Name, iso, m, args)
	if err != nil {
		return heap.Value{}, nil, err
	}
	sched.RunUntil(e.vm, e.workers, budget, t)
	if t.Err() != nil {
		return heap.Value{}, t, t.Err()
	}
	if !t.Done() {
		return heap.Value{}, t, fmt.Errorf("thread %s did not finish (budget %d)", t.Name(), budget)
	}
	return t.Result(), t, nil
}

// newEnv builds the attack environment. The heap is kept small so memory
// attacks bite quickly; thread limits are low for the same reason.
func newEnv(mode core.Mode) (*env, error) {
	vm := interp.NewVM(interp.Options{
		Mode:           mode,
		HeapLimit:      8 << 20,
		MaxThreads:     64,
		DisablePrepare: SeedDispatch,
	})
	if err := syslib.Install(vm); err != nil {
		return nil, err
	}
	if TestHookNewVM != nil {
		TestHookNewVM(vm)
	}
	fw, err := osgi.NewFramework(vm)
	if err != nil {
		return nil, err
	}
	return &env{vm: vm, fw: fw, workers: ConcurrentWorkers}, nil
}

// thresholds returns detector settings matched to the small attack
// environment.
func thresholds() core.Thresholds {
	return core.Thresholds{
		MaxLiveBytes:       2 << 20,
		MaxGCActivations:   5,
		MaxThreadsCreated:  16,
		MinCPUSharePercent: 70,
		MinCPUSamples:      100,
		MaxSleepingThreads: 0, // enabled per-attack
	}
}

// detectAndKill runs the admin loop once: snapshot, detect, kill the
// top offender. It returns (detected, killed bundle name).
func (e *env) detectAndKill(th core.Thresholds) (bool, string, error) {
	findings := e.fw.DetectOffenders(th)
	if len(findings) == 0 {
		return false, "", nil
	}
	offender := e.fw.BundleByIsolateID(findings[0].IsolateID)
	if offender == nil {
		return true, "", fmt.Errorf("finding names unknown isolate %d", findings[0].IsolateID)
	}
	if err := e.fw.KillBundle(offender); err != nil {
		return true, offender.Name(), err
	}
	return true, offender.Name(), nil
}
