package attacks

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/osgi"
)

// RunX9 executes the I/O-flood extension attack (not part of the paper's
// §4.3 suite; it exercises the connection and I/O-byte accounting
// dimensions of §3.2 that the eight original attacks leave untested): a
// malicious bundle opens connections and pumps bytes through them,
// saturating the gateway's uplink. The baseline has no per-bundle I/O
// attribution; I-JVM's JRes-style instrumentation charges every byte to
// the writing isolate and the administrator kills the flooder.
func RunX9(mode core.Mode) (Result, error) {
	res := Result{ID: "X9", Name: "connection/IO flood (extension)", Mode: mode}
	const cn = "malice/Flood"
	flood := classfile.NewClass(cn).
		Method("attack", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			// for i in 0..n: c = open("uplink"); c.writeBytes(64KiB); c.close()
			a.Const(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.Str("uplink").InvokeStatic("ijvm/io/Connection", "open",
				"(Ljava/lang/String;)Lijvm/io/Connection;").AStore(3)
			a.ALoad(3).Const(65536).InvokeVirtual("ijvm/io/Connection", "writeBytes", "(I)I").
				ILoad(2).IAdd().IStore(2)
			a.ALoad(3).InvokeVirtual("ijvm/io/Connection", "close", "()V")
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	// The victim performs a modest upload and just needs its I/O to keep
	// being attributable (under the baseline, nothing distinguishes it
	// from the flooder).
	victim := classfile.NewClass("victim/Upload").
		Method("upload", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Str("uplink").InvokeStatic("ijvm/io/Connection", "open",
				"(Ljava/lang/String;)Lijvm/io/Connection;").AStore(0)
			a.ALoad(0).Str("telemetry").InvokeVirtual("ijvm/io/Connection", "write",
				"(Ljava/lang/String;)I").IStore(1)
			a.ALoad(0).InvokeVirtual("ijvm/io/Connection", "close", "()V")
			a.ILoad(1).IReturn()
		}).MustBuild()

	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victimB, err := e.fw.Install(osgi.Manifest{Name: "victim"}, []*classfile.Class{victim})
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice"}, []*classfile.Class{flood})
	if err != nil {
		return res, err
	}

	// The victim uploads before the flood.
	if n, err := e.callVictim(victimB, "victim/Upload", "upload"); err != nil || n != 9 {
		return res, fmt.Errorf("victim upload before flood: %d, %v", n, err)
	}

	mc, _ := malice.Loader().Lookup(cn)
	am, _ := mc.LookupMethod("attack", "(I)I")
	at, err := e.vm.SpawnThread("malice:flood", malice.Isolate(), am,
		[]heap.Value{heap.IntVal(2048)})
	if err != nil {
		return res, err
	}
	e.runUntil(at, 50_000_000)
	res.PlatformCompromised = true // ~128 MiB pushed through the uplink

	if mode == core.ModeIsolated {
		th := thresholds()
		th.MaxIOBytes = 16 << 20
		th.MaxConnections = 0 // rely on the byte counter
		detected, offender, err := e.detectAndKill(th)
		if err != nil {
			return res, err
		}
		res.Detected = detected
		res.OffenderKilled = offender == "malice"
		n, err := e.callVictim(victimB, "victim/Upload", "upload")
		if err != nil {
			return res, err
		}
		res.VictimOK = n == 9
		flooded := malice.Isolate().Account().IOBytesWritten.Load()
		res.Notes = fmt.Sprintf("flooder charged %d IO bytes; admin killed %q", flooded, offender)
	} else {
		n, err := e.callVictim(victimB, "victim/Upload", "upload")
		if err != nil {
			return res, err
		}
		res.VictimOK = n == 9
		res.Notes = "bytes flow unattributed; the flooder cannot be identified"
	}
	return res, nil
}
