package attacks

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/osgi"
)

// RunA6 executes attack A6 (standalone infinite loop). The baseline has
// no CPU accounting: other bundles progress slowly and the administrator
// cannot identify the spinner. I-JVM samples the isolate reference of
// running threads; the spinner dominates the samples and is killed.
func RunA6(mode core.Mode) (Result, error) {
	res := Result{ID: "A6", Name: "standalone infinite loop", Mode: mode}
	const cn = "malice/Spin"
	spin := classfile.NewClass(cn).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0)
			a.Label("loop")
			a.IInc(0, 1)
			a.Goto("loop")
		}).MustBuild()
	compute := classfile.NewClass("victim/Compute").
		Method("compute", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0).Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(0).Const(10000).IfICmpGe("done")
			a.ILoad(1).ILoad(0).IAdd().IStore(1)
			a.IInc(0, 1).Goto("loop")
			a.Label("done")
			a.Const(1).IReturn()
		}).MustBuild()

	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victim, err := e.fw.Install(osgi.Manifest{Name: "victim"}, []*classfile.Class{compute})
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice"}, []*classfile.Class{spin})
	if err != nil {
		return res, err
	}

	mc, _ := malice.Loader().Lookup(cn)
	am, _ := mc.LookupMethod("attack", "()V")
	if _, err := e.vm.SpawnThread("malice:spin", malice.Isolate(), am, nil); err != nil {
		return res, err
	}
	// Let the spinner monopolize the CPU for a while.
	e.run(3_000_000)
	res.PlatformCompromised = true // the loop never terminates by itself

	if mode == core.ModeIsolated {
		detected, offender, err := e.detectAndKill(thresholds())
		if err != nil {
			return res, err
		}
		res.Detected = detected
		res.OffenderKilled = offender == "malice"
		e.run(100_000) // deliver the staged StoppedIsolateException
		during, err := e.callVictim(victim, "victim/Compute", "compute")
		if err != nil {
			return res, err
		}
		res.VictimOK = during == 1 && e.vm.LiveThreads() == 0
		res.Notes = fmt.Sprintf("cpu-share flagged %q; spinner terminated", offender)
	} else {
		during, err := e.callVictim(victim, "victim/Compute", "compute")
		if err != nil {
			return res, err
		}
		res.VictimOK = during == 1
		res.Notes = "spinner shares the CPU unattributed; it can never be stopped"
	}
	return res, nil
}

// hangServiceClasses builds the A7 callee: service.hang() sleeps forever
// (the paper's bundle B calling Thread.sleep(0)).
func hangServiceClasses() []*classfile.Class {
	const cn = "bsvc/Hang"
	c := classfile.NewClass(cn).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("hang", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).InvokeStatic("java/lang/Thread", "sleep", "(I)V").Return()
		}).
		Method("make", "()Ljava/lang/Object;", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.New(cn).Dup().InvokeSpecial(cn, classfile.InitName, "()V").AReturn()
		}).MustBuild()
	return []*classfile.Class{c}
}

// hangCallerClasses builds the A7 caller, prepared per §3.4's rule for
// bundle writers: it catches any Throwable around the inter-bundle call.
// callB returns 1 on a normal return and 2 when an exception (the
// StoppedIsolateException after the admin kill) brought control back.
func hangCallerClasses() []*classfile.Class {
	const cn = "avictim/Caller"
	c := classfile.NewClass(cn).
		StaticField("svc", classfile.KindRef).
		Method("bind", "(Ljava/lang/Object;)V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).PutStatic(cn, "svc").Return()
		}).
		Method("callB", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.GetStatic(cn, "svc").CheckCast("bsvc/Hang").
				InvokeVirtual("bsvc/Hang", "hang", "()V")
			a.Const(1).IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop().Const(2).IReturn()
			a.Handler("try", "endtry", "catch", "")
		}).MustBuild()
	return []*classfile.Class{c}
}

// RunA7 executes attack A7 (hanging thread): bundle A calls bundle B and
// B never returns. Baseline: A's thread is stuck forever. I-JVM: the
// sleeping-thread gauge points at B; killing B interrupts the sleep and A
// catches StoppedIsolateException.
func RunA7(mode core.Mode) (Result, error) {
	res := Result{ID: "A7", Name: "hanging thread", Mode: mode}
	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	bundleB, err := e.fw.Install(osgi.Manifest{Name: "malice", Exports: []string{"bsvc"}}, hangServiceClasses())
	if err != nil {
		return res, err
	}
	bundleA, err := e.fw.Install(osgi.Manifest{Name: "victim", Imports: []string{"bsvc"}}, hangCallerClasses())
	if err != nil {
		return res, err
	}
	if err := e.fw.Resolve(bundleA); err != nil {
		return res, err
	}

	// Create B's service and bind it into A.
	bc, _ := bundleB.Loader().Lookup("bsvc/Hang")
	makeM, _ := bc.LookupMethod("make", "()Ljava/lang/Object;")
	svc, th, err := e.call(bundleB.Isolate(), makeM, nil, 1_000_000)
	if err != nil || th.Failure() != nil {
		return res, fmt.Errorf("creating service: %v", err)
	}
	ac, _ := bundleA.Loader().Lookup("avictim/Caller")
	bindM, _ := ac.LookupMethod("bind", "(Ljava/lang/Object;)V")
	if _, th, err := e.call(bundleA.Isolate(), bindM, []heap.Value{svc}, 1_000_000); err != nil || th.Failure() != nil {
		return res, fmt.Errorf("binding service: %v", err)
	}

	// A calls B; the call hangs inside B.
	callM, _ := ac.LookupMethod("callB", "()I")
	at, err := e.vm.SpawnThread("victim:callB", bundleA.Isolate(), callM, nil)
	if err != nil {
		return res, err
	}
	e.runUntil(at, 2_000_000)
	if at.Done() {
		return res, fmt.Errorf("call into hanging service returned prematurely")
	}
	res.PlatformCompromised = true // execution never returns on its own

	if mode == core.ModeIsolated {
		th := thresholds()
		th.MaxSleepingThreads = 1
		detected, offender, err := e.detectAndKill(th)
		if err != nil {
			return res, err
		}
		res.Detected = detected
		res.OffenderKilled = offender == "malice"
		e.runUntil(at, 2_000_000)
		res.VictimOK = at.Done() && at.Failure() == nil && at.Result().I == 2
		res.Notes = fmt.Sprintf("sleeping-thread gauge flagged %q; control returned to the caller", offender)
	} else {
		res.VictimOK = false
		res.Notes = "execution never returns to the caller; no admin remedy exists"
	}
	return res, nil
}

// RunA8 executes attack A8 (lack of termination support): bundle B hands
// bundle A a reference to an internal object, then mounts a denial of
// service. The administrator unloads B. Baseline: unloading is impossible
// and the attack keeps running. I-JVM: B's isolate is killed, every entry
// into its code throws, and its code provably never executes again.
func RunA8(mode core.Mode) (Result, error) {
	res := Result{ID: "A8", Name: "lack of termination support", Mode: mode}
	const bn = "bsvc/Internal"
	internal := classfile.NewClass(bn).
		Field("secret", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V")
			a.ALoad(0).Const(99).PutField(bn, "secret")
			a.Return()
		}).
		Method("peek", "()I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).GetField(bn, "secret").IReturn()
		}).
		Method("make", "()Ljava/lang/Object;", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.New(bn).Dup().InvokeSpecial(bn, classfile.InitName, "()V").AReturn()
		}).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("loop")
			a.Goto("loop")
		}).MustBuild()

	const an = "avictim/Holder"
	holder := classfile.NewClass(an).
		StaticField("ref", classfile.KindRef).
		Method("store", "(Ljava/lang/Object;)V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).PutStatic(an, "ref").Return()
		}).
		// poke(): calls a method on the stored internal object of B;
		// returns its value, or -1 when the call throws (B killed).
		Method("poke", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.GetStatic(an, "ref").CheckCast(bn).InvokeVirtual(bn, "peek", "()I").IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop().Const(-1).IReturn()
			a.Handler("try", "endtry", "catch", "")
		}).
		Method("release", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Null().PutStatic(an, "ref").Return()
		}).MustBuild()

	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	bundleB, err := e.fw.Install(osgi.Manifest{Name: "malice", Exports: []string{"bsvc"}},
		[]*classfile.Class{internal})
	if err != nil {
		return res, err
	}
	bundleA, err := e.fw.Install(osgi.Manifest{Name: "victim", Imports: []string{"bsvc"}},
		[]*classfile.Class{holder})
	if err != nil {
		return res, err
	}
	if err := e.fw.Resolve(bundleA); err != nil {
		return res, err
	}

	// B hands its internal object to A, which stores it.
	bc, _ := bundleB.Loader().Lookup(bn)
	makeM, _ := bc.LookupMethod("make", "()Ljava/lang/Object;")
	obj, th, err := e.call(bundleB.Isolate(), makeM, nil, 1_000_000)
	if err != nil || th.Failure() != nil {
		return res, fmt.Errorf("creating internal object: %v", err)
	}
	ac, _ := bundleA.Loader().Lookup(an)
	storeM, _ := ac.LookupMethod("store", "(Ljava/lang/Object;)V")
	if _, th, err := e.call(bundleA.Isolate(), storeM, []heap.Value{obj}, 1_000_000); err != nil || th.Failure() != nil {
		return res, fmt.Errorf("storing reference: %v", err)
	}

	// B mounts its denial of service.
	attackM, _ := bc.LookupMethod("attack", "()V")
	if _, err := e.vm.SpawnThread("malice:dos", bundleB.Isolate(), attackM, nil); err != nil {
		return res, err
	}
	e.run(1_000_000)

	if mode == core.ModeIsolated {
		// The administrator unloads B; after the kill, B code must never
		// execute again — verified with an execution trace.
		if err := e.fw.KillBundle(bundleB); err != nil {
			return res, err
		}
		res.Detected = true
		res.OffenderKilled = true
		executed := false
		e.vm.TraceMethodEntry = func(m *classfile.Method, iso *core.Isolate) {
			if iso == bundleB.Isolate() {
				executed = true
			}
		}
		e.run(1_000_000) // the DoS thread dies here
		poked, err := e.callVictim(bundleA, an, "poke")
		if err != nil {
			return res, err
		}
		res.PlatformCompromised = false
		res.VictimOK = poked == -1 && !executed && e.vm.LiveThreads() == 0
		// Once A releases the reference, B's memory is reclaimed and the
		// isolate disposed (§3.3 / §3.4 rule 3).
		releaseM, _ := ac.LookupMethod("release", "()V")
		if _, _, err := e.call(bundleA.Isolate(), releaseM, nil, 1_000_000); err != nil {
			return res, err
		}
		e.vm.CollectGarbage(nil)
		res.Notes = fmt.Sprintf("B's code never ran post-kill; B disposed=%v after A released its reference",
			bundleB.Isolate().Disposed())
	} else {
		// Unloading is impossible on the baseline; the attack keeps
		// consuming the platform.
		err := e.fw.KillBundle(bundleB)
		res.PlatformCompromised = true
		res.VictimOK = false
		res.Notes = fmt.Sprintf("unload attempt: %v; the DoS loop keeps running", err)
	}
	return res, nil
}
