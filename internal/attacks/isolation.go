package attacks

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/osgi"
)

// victimDataClasses builds the A1 victim: a static table of objects,
// initialized in <clinit>, that the bundle's code depends on.
func victimDataClasses() []*classfile.Class {
	const cn = "victim/Data"
	c := classfile.NewClass(cn).
		StaticField("table", classfile.KindRef).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// table = new Object[4]; table[i] = new Object();
			a.Const(4).NewArray("").PutStatic(cn, "table")
			for i := int64(0); i < 4; i++ {
				a.GetStatic(cn, "table").Const(i)
				a.New(classfile.ObjectClassName).Dup().
					InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V")
				a.ArrayStore()
			}
			a.Return()
		}).
		// use(): works on the elements of the array; returns 1 when every
		// element is intact, 0 when any was nulled (the paper's bundle A
		// would throw a NullPointerException at this point).
		Method("use", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0)
			a.Label("loop")
			a.ILoad(0).Const(4).IfICmpGe("ok")
			a.GetStatic(cn, "table").ILoad(0).ArrayLoad().IfNull("corrupted")
			a.IInc(0, 1).Goto("loop")
			a.Label("ok")
			a.Const(1).IReturn()
			a.Label("corrupted")
			a.Const(0).IReturn()
		}).MustBuild()
	return []*classfile.Class{c}
}

// maliceA1Classes builds the A1 attacker: it discovers victim/Data.table
// at "compile time" (a direct getstatic) and nulls its contents.
func maliceA1Classes() []*classfile.Class {
	const cn = "malice/NullWriter"
	c := classfile.NewClass(cn).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic("victim/Data", "table").AStore(0)
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ALoad(0).ArrayLength().IfICmpGe("done")
			a.ALoad(0).ILoad(1).Null().ArrayStore()
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild()
	return []*classfile.Class{c}
}

// RunA1 executes attack A1 (modification of a static variable). On the
// baseline, the shared static table is corrupted and the victim breaks;
// under I-JVM the attacker only ever sees its own task-class-mirror copy.
func RunA1(mode core.Mode) (Result, error) {
	res := Result{ID: "A1", Name: "static variable corruption", Mode: mode}
	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victim, err := e.fw.Install(osgi.Manifest{Name: "victim", Exports: []string{"victim"}}, victimDataClasses())
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice", Imports: []string{"victim"}}, maliceA1Classes())
	if err != nil {
		return res, err
	}
	if err := e.fw.Resolve(malice); err != nil {
		return res, err
	}

	use := func() (int64, error) {
		c, err := victim.Loader().Lookup("victim/Data")
		if err != nil {
			return 0, err
		}
		m, err := c.LookupMethod("use", "()I")
		if err != nil {
			return 0, err
		}
		v, th, err := e.call(victim.Isolate(), m, nil, 1_000_000)
		if err != nil {
			return 0, err
		}
		if th.Failure() != nil {
			return 0, fmt.Errorf("victim failed: %s", th.FailureString())
		}
		return v.I, nil
	}

	before, err := use()
	if err != nil {
		return res, err
	}
	if before != 1 {
		return res, fmt.Errorf("victim broken before attack (use=%d)", before)
	}

	mc, err := malice.Loader().Lookup("malice/NullWriter")
	if err != nil {
		return res, err
	}
	am, err := mc.LookupMethod("attack", "()V")
	if err != nil {
		return res, err
	}
	if _, th, err := e.call(malice.Isolate(), am, nil, 1_000_000); err != nil {
		return res, err
	} else if th.Failure() != nil {
		return res, fmt.Errorf("attack failed to run: %s", th.FailureString())
	}

	after, err := use()
	if err != nil {
		return res, err
	}
	res.VictimOK = after == 1
	res.PlatformCompromised = after == 0
	if res.PlatformCompromised {
		res.Notes = "shared static table corrupted; victim observes null elements"
	} else {
		res.Notes = "attacker nulled its own task-class-mirror copy; victim unaffected"
	}
	return res, nil
}

// victimLockClasses builds the A2 victim: a static synchronized method,
// i.e. one that locks the java.lang.Class object of its class.
func victimLockClasses() []*classfile.Class {
	const cn = "victim/Lock"
	c := classfile.NewClass(cn).
		Method("work", "()I", classfile.FlagStatic|classfile.FlagPublic|classfile.FlagSynchronized,
			func(a *bytecode.Assembler) {
				a.Const(1).IReturn()
			}).MustBuild()
	return []*classfile.Class{c}
}

// maliceA2Classes builds the A2 attacker: it grabs the monitor of the
// victim's Class object and holds it forever.
func maliceA2Classes() []*classfile.Class {
	const cn = "malice/LockHolder"
	c := classfile.NewClass(cn).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ClassConst("victim/Lock").MonitorEnter()
			// Hold the lock forever.
			a.Const(0).InvokeStatic("java/lang/Thread", "sleep", "(I)V")
			a.Return()
		}).MustBuild()
	return []*classfile.Class{c}
}

// RunA2 executes attack A2 (synchronized method / synchronized block). On
// the baseline both bundles see the same Class object, so the victim's
// static synchronized method blocks forever; under I-JVM each isolate has
// its own Class object and the victim proceeds.
func RunA2(mode core.Mode) (Result, error) {
	res := Result{ID: "A2", Name: "lock on shared Class object", Mode: mode}
	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victim, err := e.fw.Install(osgi.Manifest{Name: "victim", Exports: []string{"victim"}}, victimLockClasses())
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice", Imports: []string{"victim"}}, maliceA2Classes())
	if err != nil {
		return res, err
	}
	if err := e.fw.Resolve(malice); err != nil {
		return res, err
	}

	// Attacker thread takes the lock and parks holding it.
	mc, err := malice.Loader().Lookup("malice/LockHolder")
	if err != nil {
		return res, err
	}
	runM, err := mc.LookupMethod("run", "()V")
	if err != nil {
		return res, err
	}
	holder, err := e.vm.AllocObjectIn(nil, mc, malice.Isolate())
	if err != nil {
		return res, err
	}
	if _, err := e.vm.SpawnThread("malice:lockholder", malice.Isolate(), runM,
		[]heap.Value{heap.RefVal(holder)}); err != nil {
		return res, err
	}
	e.run(100_000) // let the attacker acquire and park

	// Victim calls its static synchronized method.
	vc, err := victim.Loader().Lookup("victim/Lock")
	if err != nil {
		return res, err
	}
	workM, err := vc.LookupMethod("work", "()I")
	if err != nil {
		return res, err
	}
	vt, err := e.vm.SpawnThread("victim:work", victim.Isolate(), workM, nil)
	if err != nil {
		return res, err
	}
	e.runUntil(vt, 2_000_000)

	res.VictimOK = vt.Done() && vt.Failure() == nil && vt.Result().I == 1
	res.PlatformCompromised = !vt.Done()
	if res.PlatformCompromised {
		res.Notes = "victim blocked forever on its own Class object's monitor"
	} else {
		res.Notes = "per-isolate Class objects: attacker holds its own copy's monitor only"
	}
	return res, nil
}
