package attacks_test

import (
	"testing"

	"ijvm/internal/attacks"
	"ijvm/internal/core"
	"ijvm/internal/interp"
)

// attackTrace is one attack execution under one dispatch mode: the
// outcome struct plus the per-isolate accounting of every VM the
// scenario created.
type attackTrace struct {
	result   attacks.Result
	accounts []map[string][2]int64 // per VM: isolate name -> {Instructions, CPUSamples}
}

// runAttackTraced runs one attack with the given dispatch mode and
// captures outcome and accounting.
func runAttackTraced(t *testing.T, a attacks.Attack, mode core.Mode, seedDispatch bool) attackTrace {
	t.Helper()
	var vms []*interp.VM
	attacks.SeedDispatch = seedDispatch
	attacks.TestHookNewVM = func(vm *interp.VM) { vms = append(vms, vm) }
	defer func() {
		attacks.SeedDispatch = false
		attacks.TestHookNewVM = nil
	}()
	r, err := a.Run(mode)
	if err != nil {
		t.Fatalf("%s (seed=%v): %v", a.ID, seedDispatch, err)
	}
	tr := attackTrace{result: r}
	for _, vm := range vms {
		acc := make(map[string][2]int64)
		for _, s := range vm.Snapshots() {
			acc[s.IsolateName] = [2]int64{s.Instructions, s.CPUSamples}
		}
		tr.accounts = append(tr.accounts, acc)
	}
	return tr
}

// TestDispatchOracleAttacks re-runs the full §4.3 attack suite (plus the
// extensions) on the quickened interpreter and on the seed-style switch
// interpreter, sequentially in both cases, and asserts identical
// outcomes AND identical per-isolate instruction counts. This is the
// acceptance oracle for the code-preparation pass: the attack detectors
// and budget exhaustion must fire at exactly the same points on both
// dispatch paths.
func TestDispatchOracleAttacks(t *testing.T) {
	all := append(attacks.All(), attacks.Extensions()...)
	for _, a := range all {
		a := a
		for _, mode := range []core.Mode{core.ModeIsolated, core.ModeShared} {
			t.Run(a.ID+"/"+mode.String(), func(t *testing.T) {
				prepared := runAttackTraced(t, a, mode, false)
				seed := runAttackTraced(t, a, mode, true)
				if prepared.result != seed.result {
					t.Errorf("outcome mismatch:\nprepared: %s\nseed:     %s", prepared.result, seed.result)
				}
				if len(prepared.accounts) != len(seed.accounts) {
					t.Fatalf("VM count %d (prepared) != %d (seed)", len(prepared.accounts), len(seed.accounts))
				}
				for i := range prepared.accounts {
					p, s := prepared.accounts[i], seed.accounts[i]
					if len(p) != len(s) {
						t.Errorf("vm %d: isolate count %d (prepared) != %d (seed)", i, len(p), len(s))
					}
					for iso, pv := range p {
						sv, ok := s[iso]
						if !ok {
							t.Errorf("vm %d: isolate %s missing from seed run", i, iso)
							continue
						}
						if pv != sv {
							t.Errorf("vm %d isolate %s: {instructions, samples} = %v (prepared) != %v (seed)",
								i, iso, pv, sv)
						}
					}
				}
			})
		}
	}
}
