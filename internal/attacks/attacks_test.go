package attacks_test

import (
	"testing"

	"ijvm/internal/attacks"
	"ijvm/internal/core"
)

// TestAttackOutcomesMatchPaperTable reproduces the §4.3 outcome table:
// every attack compromises the baseline VM, and I-JVM either neutralizes
// it outright (A1, A2 — isolation) or lets the administrator detect and
// kill the offender with the victim recovering (A3-A8).
func TestAttackOutcomesMatchPaperTable(t *testing.T) {
	type expectation struct {
		baselineVictimOK bool // victim keeps working on the baseline
		needsDetection   bool // I-JVM relies on the admin loop
	}
	expect := map[string]expectation{
		"A1": {baselineVictimOK: false, needsDetection: false},
		"A2": {baselineVictimOK: false, needsDetection: false},
		"A3": {baselineVictimOK: false, needsDetection: true},
		"A4": {baselineVictimOK: true, needsDetection: true}, // progresses slowly
		"A5": {baselineVictimOK: false, needsDetection: true},
		"A6": {baselineVictimOK: true, needsDetection: true}, // progresses slowly
		"A7": {baselineVictimOK: false, needsDetection: true},
		"A8": {baselineVictimOK: false, needsDetection: true},
	}

	for _, a := range attacks.All() {
		a := a
		exp := expect[a.ID]
		t.Run(a.ID+"/baseline", func(t *testing.T) {
			r, err := a.Run(core.ModeShared)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !r.PlatformCompromised {
				t.Errorf("baseline must be compromised by %s: %s", a.ID, r)
			}
			if r.VictimOK != exp.baselineVictimOK {
				t.Errorf("baseline victimOK = %v, want %v: %s", r.VictimOK, exp.baselineVictimOK, r)
			}
			if r.Detected || r.OffenderKilled {
				t.Errorf("baseline has no detection/termination, got: %s", r)
			}
		})
		t.Run(a.ID+"/ijvm", func(t *testing.T) {
			r, err := a.Run(core.ModeIsolated)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !r.VictimOK {
				t.Errorf("I-JVM victim must keep working for %s: %s", a.ID, r)
			}
			if exp.needsDetection && (!r.Detected || !r.OffenderKilled) {
				t.Errorf("I-JVM admin must detect and kill for %s: %s", a.ID, r)
			}
		})
	}
}

// TestAttackRegistry sanity-checks the attack catalogue.
func TestAttackRegistry(t *testing.T) {
	all := attacks.All()
	if len(all) != 8 {
		t.Fatalf("expected 8 attacks, got %d", len(all))
	}
	for _, a := range all {
		if attacks.ByID(a.ID) == nil {
			t.Errorf("ByID(%s) lost the attack", a.ID)
		}
	}
	if attacks.ByID("X9") == nil {
		t.Error("extension attack X9 missing from ByID")
	}
	if attacks.ByID("A9") != nil {
		t.Error("ByID must return nil for unknown attacks")
	}
}

// TestExtensionIOFlood covers the X9 extension attack: unattributable on
// the baseline, detected through the I/O byte counters under I-JVM.
func TestExtensionIOFlood(t *testing.T) {
	base, err := attacks.RunX9(core.ModeShared)
	if err != nil {
		t.Fatal(err)
	}
	if !base.PlatformCompromised || base.Detected {
		t.Fatalf("baseline = %s", base)
	}
	iso, err := attacks.RunX9(core.ModeIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if !iso.Detected || !iso.OffenderKilled || !iso.VictimOK {
		t.Fatalf("isolated = %s", iso)
	}
}
