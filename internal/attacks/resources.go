package attacks

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/osgi"
)

// victimAllocClasses builds a victim that just needs to allocate: it
// returns 1 on success and 0 when allocation fails with
// OutOfMemoryError.
func victimAllocClasses() []*classfile.Class {
	const cn = "victim/Alloc"
	c := classfile.NewClass(cn).
		Method("tryAlloc", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.Const(256).NewArray("").Pop()
			a.Const(1).IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop().Const(0).IReturn()
			a.Handler("try", "endtry", "catch", "java/lang/OutOfMemoryError")
		}).MustBuild()
	return []*classfile.Class{c}
}

// victimSpawnClasses builds a victim that needs a thread: trySpawn
// returns 1 when Thread.start succeeds and 0 on OutOfMemoryError.
func victimSpawnClasses() []*classfile.Class {
	const cn = "victim/Spawn"
	worker := classfile.NewClass("victim/Noop").
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Return()
		}).MustBuild()
	c := classfile.NewClass(cn).
		Method("trySpawn", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("try")
			a.New("java/lang/Thread").Dup()
			a.New("victim/Noop").Dup().InvokeSpecial("victim/Noop", classfile.InitName, "()V")
			a.InvokeSpecial("java/lang/Thread", classfile.InitName, "(Ljava/lang/Object;)V").AStore(0)
			a.ALoad(0).InvokeVirtual("java/lang/Thread", "start", "()V")
			a.ALoad(0).InvokeVirtual("java/lang/Thread", "join", "()V")
			a.Const(1).IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop().Const(0).IReturn()
			a.Handler("try", "endtry", "catch", "java/lang/OutOfMemoryError")
		}).MustBuild()
	return []*classfile.Class{worker, c}
}

// callVictim invokes a victim's nullary int method on its isolate.
func (e *env) callVictim(b *osgi.Bundle, className, method string) (int64, error) {
	c, err := b.Loader().Lookup(className)
	if err != nil {
		return 0, err
	}
	m, err := c.LookupMethod(method, "()I")
	if err != nil {
		return 0, err
	}
	v, th, err := e.call(b.Isolate(), m, nil, 10_000_000)
	if err != nil {
		return 0, err
	}
	if th.Failure() != nil {
		return 0, fmt.Errorf("victim %s.%s failed: %s", className, method, th.FailureString())
	}
	return v.I, nil
}

// RunA3 executes attack A3 (memory exhaustion): the attacker retains
// arrays in a static until the heap fills. Baseline: the victim's next
// allocation fails with OutOfMemoryError. I-JVM: the administrator reads
// per-bundle live memory, kills the hog, the GC reclaims its retained
// objects, and the victim allocates normally.
func RunA3(mode core.Mode) (Result, error) {
	res := Result{ID: "A3", Name: "memory exhaustion", Mode: mode}
	const cn = "malice/Hog"
	hog := classfile.NewClass(cn).
		StaticField("hoard", classfile.KindRef).
		StaticField("next", classfile.KindInt).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			// hoard = new Object[16384]; fill with 1KB arrays until OOM.
			a.Const(16384).NewArray("").PutStatic(cn, "hoard")
			a.Const(0).IStore(0)
			a.Label("loop")
			a.ILoad(0).Const(16384).IfICmpGe("done")
			a.GetStatic(cn, "hoard").ILoad(0).Const(128).NewArray("").ArrayStore()
			a.IInc(0, 1).Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild()

	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victim, err := e.fw.Install(osgi.Manifest{Name: "victim"}, victimAllocClasses())
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice"}, []*classfile.Class{hog})
	if err != nil {
		return res, err
	}

	// The attack thread dies with an uncaught OutOfMemoryError once the
	// heap is full; the hoard stays referenced by the attacker's static.
	mc, _ := malice.Loader().Lookup(cn)
	am, _ := mc.LookupMethod("attack", "()V")
	at, err := e.vm.SpawnThread("malice:hog", malice.Isolate(), am, nil)
	if err != nil {
		return res, err
	}
	e.runUntil(at, 200_000_000)

	during, err := e.callVictim(victim, "victim/Alloc", "tryAlloc")
	if err != nil {
		return res, err
	}
	res.PlatformCompromised = during == 0

	if mode == core.ModeIsolated {
		th := thresholds()
		detected, offender, err := e.detectAndKill(th)
		if err != nil {
			return res, err
		}
		res.Detected = detected
		res.OffenderKilled = offender == "malice"
		e.vm.CollectGarbage(nil) // reclaim the killed bundle's hoard
		after, err := e.callVictim(victim, "victim/Alloc", "tryAlloc")
		if err != nil {
			return res, err
		}
		res.VictimOK = after == 1
		res.Notes = fmt.Sprintf("admin killed %q; heap used after reclaim: %d bytes", offender, e.vm.Heap().Used())
	} else {
		res.VictimOK = during == 1
		res.Notes = "all bundles share the full heap; no per-bundle usage is attributable"
	}
	return res, nil
}

// RunA4 executes attack A4 (exponential object creation): the attacker
// allocates garbage, repeatedly triggering collections. I-JVM counts GC
// activations per bundle; the administrator kills the churner.
func RunA4(mode core.Mode) (Result, error) {
	res := Result{ID: "A4", Name: "exponential object creation", Mode: mode}
	const cn = "malice/Churn"
	churn := classfile.NewClass(cn).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			// 4000 unreferenced 32KB arrays: ~125MB of garbage through an
			// 8MB heap => dozens of collections.
			a.Const(0).IStore(0)
			a.Label("loop")
			a.ILoad(0).Const(4000).IfICmpGe("done")
			a.Const(4096).NewArray("").Pop()
			a.IInc(0, 1).Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild()

	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victim, err := e.fw.Install(osgi.Manifest{Name: "victim"}, victimAllocClasses())
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice"}, []*classfile.Class{churn})
	if err != nil {
		return res, err
	}

	mc, _ := malice.Loader().Lookup(cn)
	am, _ := mc.LookupMethod("attack", "()V")
	at, err := e.vm.SpawnThread("malice:churn", malice.Isolate(), am, nil)
	if err != nil {
		return res, err
	}
	e.runUntil(at, 100_000_000)

	gcs := e.vm.Heap().GCCount()
	res.PlatformCompromised = gcs > 5 // the churner forced frequent collections

	if mode == core.ModeIsolated {
		detected, offender, err := e.detectAndKill(thresholds())
		if err != nil {
			return res, err
		}
		res.Detected = detected
		res.OffenderKilled = offender == "malice"
		after, err := e.callVictim(victim, "victim/Alloc", "tryAlloc")
		if err != nil {
			return res, err
		}
		res.VictimOK = after == 1
		res.Notes = fmt.Sprintf("%d collections attributed to the churner; admin killed %q", gcs, offender)
	} else {
		after, err := e.callVictim(victim, "victim/Alloc", "tryAlloc")
		if err != nil {
			return res, err
		}
		res.VictimOK = after == 1 // survives, but the platform thrashed
		res.Notes = fmt.Sprintf("%d collections with no attribution; non-offending bundles progress slowly", gcs)
	}
	return res, nil
}

// RunA5 executes attack A5 (recursive thread creation): the attacker
// spawns sleeping threads until the platform limit. Baseline: the victim
// cannot create threads anymore. I-JVM: per-bundle thread counts identify
// the spawner; killing it interrupts and reaps its threads.
func RunA5(mode core.Mode) (Result, error) {
	res := Result{ID: "A5", Name: "recursive thread creation", Mode: mode}
	sleeper := classfile.NewClass("malice/Sleeper").
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).InvokeStatic("java/lang/Thread", "sleep", "(I)V").Return()
		}).MustBuild()
	const cn = "malice/Spawner"
	spawner := classfile.NewClass(cn).
		Method("attack", "()I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0)
			a.Label("try")
			a.Label("loop")
			a.ILoad(0).Const(200).IfICmpGe("done")
			a.New("java/lang/Thread").Dup()
			a.New("malice/Sleeper").Dup().InvokeSpecial("malice/Sleeper", classfile.InitName, "()V")
			a.InvokeSpecial("java/lang/Thread", classfile.InitName, "(Ljava/lang/Object;)V")
			a.InvokeVirtual("java/lang/Thread", "start", "()V")
			a.IInc(0, 1).Goto("loop")
			a.Label("done")
			a.ILoad(0).IReturn()
			a.Label("endtry")
			a.Label("catch")
			a.Pop().ILoad(0).IReturn()
			a.Handler("try", "endtry", "catch", "java/lang/OutOfMemoryError")
		}).MustBuild()

	e, err := newEnv(mode)
	if err != nil {
		return res, err
	}
	victim, err := e.fw.Install(osgi.Manifest{Name: "victim"}, victimSpawnClasses())
	if err != nil {
		return res, err
	}
	malice, err := e.fw.Install(osgi.Manifest{Name: "malice"},
		[]*classfile.Class{sleeper, spawner})
	if err != nil {
		return res, err
	}

	mc, _ := malice.Loader().Lookup(cn)
	am, _ := mc.LookupMethod("attack", "()I")
	at, err := e.vm.SpawnThread("malice:spawner", malice.Isolate(), am, nil)
	if err != nil {
		return res, err
	}
	e.runUntil(at, 50_000_000)

	during, err := e.callVictim(victim, "victim/Spawn", "trySpawn")
	if err != nil {
		return res, err
	}
	res.PlatformCompromised = during == 0

	if mode == core.ModeIsolated {
		detected, offender, err := e.detectAndKill(thresholds())
		if err != nil {
			return res, err
		}
		res.Detected = detected
		res.OffenderKilled = offender == "malice"
		// Drain the interrupted sleeper threads so their slots free up.
		e.run(5_000_000)
		after, err := e.callVictim(victim, "victim/Spawn", "trySpawn")
		if err != nil {
			return res, err
		}
		res.VictimOK = after == 1
		res.Notes = fmt.Sprintf("admin killed %q; %d threads reaped", offender, e.vm.LiveThreads())
	} else {
		res.VictimOK = during == 1
		res.Notes = "thread limit exhausted platform-wide; creator not attributable"
	}
	return res, nil
}
