package core
