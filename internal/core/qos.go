package core

import "errors"

// QoSClass partitions isolates into scheduling classes. The class only
// affects *ordering* among runnable shards (interactive shards are
// dispatched ahead of batch shards of equal virtual time, and may
// preempt a batch shard at its next quantum boundary); long-run CPU
// share is governed solely by Weight, so a batch isolate with a large
// weight still gets its proportional share.
type QoSClass uint8

const (
	// QoSBatch is the default class: throughput-oriented, preemptible by
	// interactive shards at quantum boundaries.
	QoSBatch QoSClass = iota
	// QoSInteractive marks latency-sensitive isolates: dispatched before
	// batch shards of equal virtual time and able to preempt a running
	// batch slice at its next quantum boundary.
	QoSInteractive
)

// String returns the class name.
func (c QoSClass) String() string {
	switch c {
	case QoSInteractive:
		return "interactive"
	default:
		return "batch"
	}
}

// DefaultWeight is the proportional-share weight of an isolate that
// never had SetWeight called. Weights are relative: an isolate with
// weight 2*DefaultWeight receives twice the CPU share of a default
// isolate when both are runnable.
const DefaultWeight = 100

// MaxWeight bounds SetWeight so virtual-time arithmetic
// (instructions*DefaultWeight accumulated into int64) cannot overflow.
const MaxWeight = 1 << 20

// ErrThrottled is returned when an operation is refused because the
// governor has placed the initiating isolate under admission control
// (stage throttled): new thread spawns and new RPC submissions are
// refused until the isolate's burn rate calms down. Callers should
// treat it like transient backpressure (compare rpc.ErrSaturated).
var ErrThrottled = errors.New("isolate throttled by governor")

// Weight returns the isolate's proportional-share weight. Isolates
// start at DefaultWeight without any explicit initialization.
func (iso *Isolate) Weight() int64 {
	if w := iso.weight.Load(); w > 0 {
		return w
	}
	return DefaultWeight
}

// SetWeight sets the proportional-share weight, clamped to
// [1, MaxWeight]. Safe to call while the isolate is running; the
// scheduler observes the new weight from the next slice on.
func (iso *Isolate) SetWeight(w int64) {
	if w < 1 {
		w = 1
	}
	if w > MaxWeight {
		w = MaxWeight
	}
	iso.weight.Store(w)
}

// QoS returns the isolate's scheduling class.
func (iso *Isolate) QoS() QoSClass { return QoSClass(iso.qos.Load()) }

// SetQoS sets the isolate's scheduling class. Safe to call while the
// isolate is running.
func (iso *Isolate) SetQoS(c QoSClass) { iso.qos.Store(uint32(c)) }

// Throttled reports whether the governor currently refuses new spawns
// and RPC admissions for this isolate.
func (iso *Isolate) Throttled() bool { return iso.throttled.Load() }

// SetThrottled flips the admission-control bit. Only the governor
// should call this.
func (iso *Isolate) SetThrottled(v bool) { iso.throttled.Store(v) }
