package core

import (
	"fmt"
	"sort"
)

// Thresholds configures the administrator-side denial-of-service
// detectors. The paper positions accounting as "an assistance for an
// administrator to locate possible resource problems" (§6); these
// detectors encode the decision rules the evaluation's administrator
// applies in §4.3. A zero threshold disables the corresponding check.
type Thresholds struct {
	// MaxLiveBytes flags isolates holding more live memory than this
	// after a collection (attack A3).
	MaxLiveBytes int64
	// MaxGCActivations flags isolates that triggered more collections
	// than this (attack A4).
	MaxGCActivations int64
	// MaxThreadsCreated flags isolates that created more threads than
	// this (attack A5).
	MaxThreadsCreated int64
	// MinCPUShare flags isolates whose share of all CPU samples exceeds
	// this fraction (attack A6). Expressed in percent (0-100).
	MinCPUSharePercent int64
	// MinCPUSamples gates the CPU-share check until enough samples exist.
	MinCPUSamples int64
	// MaxSleepingThreads flags isolates with more threads parked in
	// sleep/wait inside their code than this (attack A7).
	MaxSleepingThreads int64
	// MaxConnections flags isolates holding more live connections.
	MaxConnections int64
	// MaxIOBytes flags isolates that read+wrote more connection bytes.
	MaxIOBytes int64
}

// DefaultThresholds returns a conservative configuration used by the
// attack harness and the gateway example.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxLiveBytes:       8 << 20,
		MaxGCActivations:   8,
		MaxThreadsCreated:  64,
		MinCPUSharePercent: 80,
		MinCPUSamples:      200,
		MaxSleepingThreads: 4,
		MaxConnections:     128,
		MaxIOBytes:         64 << 20,
	}
}

// Finding names one isolate flagged by a detector.
type Finding struct {
	IsolateID   int32
	IsolateName string
	Rule        string
	Observed    int64
	Limit       int64
}

func (f Finding) String() string {
	return fmt.Sprintf("isolate %d (%s): %s observed=%d limit=%d",
		f.IsolateID, f.IsolateName, f.Rule, f.Observed, f.Limit)
}

// Detect applies the thresholds to a set of snapshots and returns the
// findings, most-severe metric first per rule. Isolate0 is exempt from CPU
// and memory rules: the OSGi runtime legitimately dominates at startup.
func Detect(snaps []Snapshot, th Thresholds) []Finding {
	var out []Finding
	var totalSamples int64
	for i := range snaps {
		totalSamples += snaps[i].CPUSamples
	}
	for i := range snaps {
		s := &snaps[i]
		if s.State != StateLive {
			continue
		}
		isRuntime := s.IsolateID == 0
		if th.MaxLiveBytes > 0 && !isRuntime && s.LiveBytes > th.MaxLiveBytes {
			out = append(out, Finding{s.IsolateID, s.IsolateName, "live-memory", s.LiveBytes, th.MaxLiveBytes})
		}
		if th.MaxGCActivations > 0 && s.GCActivations > th.MaxGCActivations {
			out = append(out, Finding{s.IsolateID, s.IsolateName, "gc-activations", s.GCActivations, th.MaxGCActivations})
		}
		if th.MaxThreadsCreated > 0 && s.ThreadsCreated > th.MaxThreadsCreated {
			out = append(out, Finding{s.IsolateID, s.IsolateName, "threads-created", s.ThreadsCreated, th.MaxThreadsCreated})
		}
		if th.MinCPUSharePercent > 0 && !isRuntime && totalSamples >= th.MinCPUSamples && totalSamples > 0 {
			share := s.CPUSamples * 100 / totalSamples
			if share > th.MinCPUSharePercent {
				out = append(out, Finding{s.IsolateID, s.IsolateName, "cpu-share", share, th.MinCPUSharePercent})
			}
		}
		if th.MaxSleepingThreads > 0 && s.SleepingThreads >= th.MaxSleepingThreads {
			out = append(out, Finding{s.IsolateID, s.IsolateName, "sleeping-threads", s.SleepingThreads, th.MaxSleepingThreads})
		}
		if th.MaxConnections > 0 && s.LiveConnections > th.MaxConnections {
			out = append(out, Finding{s.IsolateID, s.IsolateName, "connections", s.LiveConnections, th.MaxConnections})
		}
		if th.MaxIOBytes > 0 && s.IOBytesRead+s.IOBytesWritten > th.MaxIOBytes {
			out = append(out, Finding{s.IsolateID, s.IsolateName, "io-bytes", s.IOBytesRead + s.IOBytesWritten, th.MaxIOBytes})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Observed > out[j].Observed
	})
	return out
}

// TopBy returns the live, non-runtime isolate maximizing metric, or -1.
func TopBy(snaps []Snapshot, metric func(Snapshot) int64) int32 {
	best, bestID := int64(-1), int32(-1)
	for _, s := range snaps {
		if s.IsolateID == 0 || s.State != StateLive {
			continue
		}
		if v := metric(s); v > best {
			best, bestID = v, s.IsolateID
		}
	}
	return bestID
}
