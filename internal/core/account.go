package core

// Account holds the mutable per-isolate resource counters the paper's
// resource accounting maintains (§3.2). Memory counters live in the heap
// (creator-charged allocation counters plus GC-recomputed live usage) and
// are merged into Snapshot by the World.
type Account struct {
	// CPUSamples counts scheduler samples that observed a thread running
	// in this isolate (§3.2, "CPU time": the chosen sampling design).
	CPUSamples int64
	// Instructions counts instructions executed while the current isolate
	// was this isolate. It is the exact counterpart of CPUSamples, kept
	// for the §4.4 precision experiments and the per-call accounting
	// ablation.
	Instructions int64
	// ThreadsCreated counts threads created by the isolate ("threads are
	// charged to their creator").
	ThreadsCreated int64
	// ThreadsLive is the number of created-by-this-isolate threads that
	// have not terminated.
	ThreadsLive int64
	// SleepingThreads is a gauge of threads currently blocked in
	// sleep/wait while executing this isolate's code (attack A7
	// detection).
	SleepingThreads int64
	// GCActivations counts collections triggered by this isolate's
	// allocations or explicit System.gc calls (attack A4 detection).
	GCActivations int64
	// IOBytesRead and IOBytesWritten count connection I/O performed while
	// executing in the isolate (JRes-style instrumentation of the few
	// system classes that touch connections).
	IOBytesRead    int64
	IOBytesWritten int64
	// ConnectionsOpened counts connection objects created by the isolate.
	ConnectionsOpened int64
	// InterBundleCallsIn counts inter-isolate calls that entered this
	// isolate (paint-demo metric, §4.1).
	InterBundleCallsIn int64
	// InterBundleCallsOut counts inter-isolate calls made from this
	// isolate.
	InterBundleCallsOut int64
	// CPUTicks accumulates per-call virtual time when the (ablation-only)
	// per-call timestamping accounting strategy is enabled.
	CPUTicks int64
	// FinalizersRun counts finalizer invocations scheduled on behalf of
	// the isolate's dead objects (part of the GC-churn cost attack A4
	// inflicts).
	FinalizersRun int64
}

// Snapshot is an immutable copy of one isolate's resource usage, combining
// the interpreter-maintained Account with the heap's memory views.
type Snapshot struct {
	IsolateID   int32
	IsolateName string
	State       LifeState

	Account

	// AllocatedObjects/AllocatedBytes are monotonic creator-charged
	// allocation counters.
	AllocatedObjects int64
	AllocatedBytes   int64
	// LiveObjects/LiveBytes/LiveConnections are the per-isolate usage
	// recomputed by the last accounting GC ("first isolate that
	// references it" charging).
	LiveObjects     int64
	LiveBytes       int64
	LiveConnections int64
}
