package core

import (
	"sync/atomic"

	"ijvm/internal/heap"
)

// AccountCounters holds the mutable per-isolate resource counters the
// paper's resource accounting maintains (§3.2). Memory counters live in
// the heap (creator-charged allocation counters plus GC-recomputed live
// usage) and are merged into Snapshot by the World.
//
// Every counter is an atomic: the concurrent scheduler (internal/sched)
// lets threads of different isolates execute in parallel, and counters of
// one isolate are charged both by its own shard and by migrated threads
// and admin-side samplers. Lock-free adds keep the interpreter hot path
// cheap in both the sequential and the concurrent engine.
type AccountCounters struct {
	// CPUSamples counts scheduler samples that observed a thread running
	// in this isolate (§3.2, "CPU time": the chosen sampling design).
	CPUSamples atomic.Int64
	// Instructions counts instructions executed while the current isolate
	// was this isolate. It is the exact counterpart of CPUSamples, kept
	// for the §4.4 precision experiments and the per-call accounting
	// ablation.
	Instructions atomic.Int64
	// ThreadsCreated counts threads created by the isolate ("threads are
	// charged to their creator").
	ThreadsCreated atomic.Int64
	// ThreadsLive is the number of created-by-this-isolate threads that
	// have not terminated.
	ThreadsLive atomic.Int64
	// SleepingThreads is a gauge of threads currently blocked in
	// sleep/wait while executing this isolate's code (attack A7
	// detection).
	SleepingThreads atomic.Int64
	// GCActivations counts collections the isolate demanded: exact
	// stop-the-world collections triggered by its allocation pressure or
	// explicit System.gc calls, plus background incremental mark cycles
	// whose opening occupancy crossing was caused by one of its
	// allocations (the interpreter attributes the crossing on the
	// allocation path, not at the quantum boundary that happens to open
	// the cycle — §4.4 experiment 2 pins this). Mark strides and
	// terminal phases of an already-open cycle charge nothing, so the
	// counter stays comparable between the incremental and the
	// forced-STW collector: one activation per collection the isolate
	// forced (attack A4 detection).
	GCActivations atomic.Int64
	// IOBytesRead and IOBytesWritten count connection I/O performed while
	// executing in the isolate (JRes-style instrumentation of the few
	// system classes that touch connections).
	IOBytesRead    atomic.Int64
	IOBytesWritten atomic.Int64
	// ConnectionsOpened counts connection objects created by the isolate.
	ConnectionsOpened atomic.Int64
	// InterBundleCallsIn counts inter-isolate calls that entered this
	// isolate (paint-demo metric, §4.1).
	InterBundleCallsIn atomic.Int64
	// InterBundleCallsOut counts inter-isolate calls made from this
	// isolate.
	InterBundleCallsOut atomic.Int64
	// CPUTicks accumulates per-call virtual time when the (ablation-only)
	// per-call timestamping accounting strategy is enabled.
	CPUTicks atomic.Int64
	// FinalizersRun counts finalizer invocations scheduled on behalf of
	// the isolate's dead objects (part of the GC-churn cost attack A4
	// inflicts).
	FinalizersRun atomic.Int64
	// RPCSaturated counts RPC submissions by this isolate (as caller)
	// refused or delayed because the link's admission queue was full —
	// the governor's signal that the isolate floods a callee faster than
	// it drains.
	RPCSaturated atomic.Int64
}

// Numbers returns a plain-integer copy of the counters, suitable for
// embedding in an immutable Snapshot.
func (a *AccountCounters) Numbers() Account {
	return Account{
		CPUSamples:          a.CPUSamples.Load(),
		Instructions:        a.Instructions.Load(),
		ThreadsCreated:      a.ThreadsCreated.Load(),
		ThreadsLive:         a.ThreadsLive.Load(),
		SleepingThreads:     a.SleepingThreads.Load(),
		GCActivations:       a.GCActivations.Load(),
		IOBytesRead:         a.IOBytesRead.Load(),
		IOBytesWritten:      a.IOBytesWritten.Load(),
		ConnectionsOpened:   a.ConnectionsOpened.Load(),
		InterBundleCallsIn:  a.InterBundleCallsIn.Load(),
		InterBundleCallsOut: a.InterBundleCallsOut.Load(),
		CPUTicks:            a.CPUTicks.Load(),
		FinalizersRun:       a.FinalizersRun.Load(),
		RPCSaturated:        a.RPCSaturated.Load(),
	}
}

// Seed overwrites every counter with the values in v. The snapshot-clone
// path uses it to make a freshly materialized isolate's account
// byte-identical to the warmed template's at capture time (the clone never
// executed the warm-up instructions itself, but must be indistinguishable
// from a cold start that did); the recycling path seeds the zero Account
// so a reused isolate ID starts with a clean slate. Stores are plain
// atomics: callers seed only while the isolate runs no guest code.
func (a *AccountCounters) Seed(v Account) {
	a.CPUSamples.Store(v.CPUSamples)
	a.Instructions.Store(v.Instructions)
	a.ThreadsCreated.Store(v.ThreadsCreated)
	a.ThreadsLive.Store(v.ThreadsLive)
	a.SleepingThreads.Store(v.SleepingThreads)
	a.GCActivations.Store(v.GCActivations)
	a.IOBytesRead.Store(v.IOBytesRead)
	a.IOBytesWritten.Store(v.IOBytesWritten)
	a.ConnectionsOpened.Store(v.ConnectionsOpened)
	a.InterBundleCallsIn.Store(v.InterBundleCallsIn)
	a.InterBundleCallsOut.Store(v.InterBundleCallsOut)
	a.CPUTicks.Store(v.CPUTicks)
	a.FinalizersRun.Store(v.FinalizersRun)
	a.RPCSaturated.Store(v.RPCSaturated)
}

// InstrBatch accumulates instruction charges for one isolate in a plain
// local counter and publishes them with a single atomic add when the
// charged isolate changes or a quantum/safepoint boundary flushes the
// batch. Both execution engines use it — the concurrent scheduler per
// worker quantum, the sequential loop per scheduler quantum — so the
// per-instruction hot path performs no atomic operations at all while
// per-isolate attribution stays exact at every flush point.
//
// An InstrBatch is single-goroutine state: it must only be used by the
// goroutine executing the instructions it charges.
type InstrBatch struct {
	acc *AccountCounters
	n   int64
}

// Note charges one instruction to acc, flushing the pending batch first
// when the charged isolate changed (an inter-isolate migration).
func (b *InstrBatch) Note(acc *AccountCounters) {
	if acc != b.acc {
		b.Flush()
		b.acc = acc
	}
	b.n++
}

// NoteN charges n instructions to acc in one call, exactly as n
// consecutive Note calls would (the fused/closure tiers use it to retire
// a whole instruction group's charges at once).
func (b *InstrBatch) NoteN(acc *AccountCounters, n int64) {
	if acc != b.acc {
		b.Flush()
		b.acc = acc
	}
	b.n += n
}

// Flush publishes the pending charges with one atomic add.
func (b *InstrBatch) Flush() {
	if b.acc != nil && b.n != 0 {
		b.acc.Instructions.Add(b.n)
	}
	b.n = 0
}

// ByteBatch accumulates per-isolate allocation charges (objects, bytes,
// connections) in plain local counters and publishes them with a few
// atomic adds when the charged isolate changes or a quantum/safepoint
// boundary flushes the batch — the allocation counterpart of InstrBatch.
// Both execution engines use it for domain (shard-local) allocation, so
// the allocation fast path performs no shared atomic statistic updates;
// per-isolate attribution stays exact at every flush point, and the
// stop-the-world accounting GC observes exact totals (workers flush at
// quantum boundaries before parking, and the allocation-pressure path
// flushes before triggering a collection).
//
// A ByteBatch is single-goroutine state: it must only be used by the
// goroutine executing the allocations it charges.
type ByteBatch struct {
	acc     *heap.AllocCounters
	objects int64
	bytes   int64
	conns   int64
}

// Note charges one allocation of size bytes to acc, flushing the pending
// batch first when the charged isolate changed.
func (b *ByteBatch) Note(acc *heap.AllocCounters, size int64, conn bool) {
	if acc != b.acc {
		b.Flush()
		b.acc = acc
	}
	b.objects++
	b.bytes += size
	if conn {
		b.conns++
	}
}

// Flush publishes the pending charges with one atomic add per counter.
func (b *ByteBatch) Flush() {
	if b.acc != nil && b.objects != 0 {
		b.acc.Objects.Add(b.objects)
		b.acc.Bytes.Add(b.bytes)
		if b.conns != 0 {
			b.acc.Connections.Add(b.conns)
		}
	}
	b.objects, b.bytes, b.conns = 0, 0, 0
}

// Account is an immutable plain-integer view of AccountCounters; see the
// counter documentation there. Snapshot embeds it so detector code and
// tests read ordinary int64 fields.
type Account struct {
	CPUSamples          int64
	Instructions        int64
	ThreadsCreated      int64
	ThreadsLive         int64
	SleepingThreads     int64
	GCActivations       int64
	IOBytesRead         int64
	IOBytesWritten      int64
	ConnectionsOpened   int64
	InterBundleCallsIn  int64
	InterBundleCallsOut int64
	CPUTicks            int64
	FinalizersRun       int64
	RPCSaturated        int64
}

// Snapshot is an immutable copy of one isolate's resource usage, combining
// the interpreter-maintained Account with the heap's memory views.
type Snapshot struct {
	IsolateID   int32
	IsolateName string
	State       LifeState

	Account

	// AllocatedObjects/AllocatedBytes are monotonic creator-charged
	// allocation counters.
	AllocatedObjects int64
	AllocatedBytes   int64
	// LiveObjects/LiveBytes/LiveConnections are the per-isolate usage
	// recomputed by the last accounting GC ("first isolate that
	// references it" charging).
	LiveObjects     int64
	LiveBytes       int64
	LiveConnections int64
}
