package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ijvm/internal/classfile"
	"ijvm/internal/heap"
	"ijvm/internal/loader"
)

// Mode selects the isolation behaviour of the VM.
type Mode uint8

// VM modes.
const (
	// ModeShared is the baseline JVM: one global set of static variables,
	// one interned-string pool, shared java.lang.Class objects, no
	// resource accounting and no isolate termination. It reproduces the
	// LadyVM/Sun-JVM behaviour the paper compares against.
	ModeShared Mode = iota + 1
	// ModeIsolated is I-JVM: one isolate per application class loader,
	// task class mirrors, thread migration, accounting and termination.
	ModeIsolated
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "shared"
	case ModeIsolated:
		return "isolated"
	default:
		return "invalid"
	}
}

// ErrNoRight is returned when an isolate attempts a privileged operation
// (spawn/kill/shutdown) without holding the corresponding right.
var ErrNoRight = errors.New("core: isolate lacks the required right")

// ErrKilled is returned when an operation targets a killed isolate.
var ErrKilled = errors.New("core: isolate is killed")

// mirrorTable is an immutable snapshot of the task-class-mirror storage:
// mirrors[staticsID][isolateID] (Shared mode: the inner index is always
// 0). Readers load it atomically and index without locks; writers build a
// fresh outer slice and fresh rows under World.mirrorMu and publish the
// new table with an atomic store. Published rows are never mutated in
// place, so a reader can never observe a half-written entry.
type mirrorTable struct {
	rows [][]*TaskClassMirror
}

// World owns the isolates of one VM and the task-class-mirror storage. The
// interpreter calls Mirror on every static access; everything else is
// management-plane.
//
// Locking: mu guards the isolate registries (creation order, loader
// indexes); mirrorMu serializes mirror-table growth; the table itself is
// read lock-free through an atomic pointer. Mirror *contents* are
// shard-local (see the package comment) and unguarded.
type World struct {
	// mode is atomic: the interpreter reads it on hot paths from every
	// scheduler worker, and SetMode may flip it (inside a stop-the-world
	// section) after construction.
	mode     atomic.Uint32
	registry *loader.Registry

	mu            sync.RWMutex
	isolates      []*Isolate
	byLoaderID    map[int]*Isolate
	byLoaderSlice []*Isolate
	// freeIDs is the isolate-recycling free-list: accounting IDs of
	// disposed isolates returned by FreeIsolate, reused LIFO by NewIsolate
	// so long-running gateways with tenant churn keep the isolate table,
	// mirror columns and heap counter arrays dense instead of growing
	// without bound.
	freeIDs []heap.IsolateID

	mirrorMu sync.Mutex
	mirrors  atomic.Pointer[mirrorTable]
}

// NewWorld creates the isolate world for one VM.
func NewWorld(mode Mode, registry *loader.Registry) *World {
	w := &World{
		registry:   registry,
		byLoaderID: make(map[int]*Isolate),
	}
	w.mode.Store(uint32(mode))
	w.mirrors.Store(&mirrorTable{})
	return w
}

// Mode returns the isolation mode.
func (w *World) Mode() Mode { return Mode(w.mode.Load()) }

// Isolated reports whether I-JVM mechanisms are active.
func (w *World) Isolated() bool { return Mode(w.mode.Load()) == ModeIsolated }

// SetMode flips the isolation mode at runtime. The caller (the
// interpreter's VM.SetIsolationMode) must hold the world stopped: every
// mode-derived cache — mode-specialized quickenings, frames' prepared
// bodies, the Shared-mode ResolvedMirror pool caches — is re-derived
// under the same stopped-world section. Isolated -> Shared is only legal
// while at most one isolate exists (Shared mode has no isolation to
// attribute a second isolate to); mirrors survive the flip because
// isolate 0 indexes mirror slot 0 in both modes.
func (w *World) SetMode(mode Mode) error {
	if mode != ModeShared && mode != ModeIsolated {
		return fmt.Errorf("core: invalid mode %d", mode)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if mode == ModeShared && len(w.isolates) > 1 {
		return fmt.Errorf("core: cannot enter shared mode with %d isolates", len(w.isolates))
	}
	w.mode.Store(uint32(mode))
	return nil
}

// NewIsolate creates an isolate for a class loader. The first isolate
// created becomes Isolate0 with all rights (paper §3.1); in Shared mode
// only Isolate0 may exist.
func (w *World) NewIsolate(name string, l *loader.Loader) (*Isolate, error) {
	if l == nil {
		return nil, errors.New("core: isolate requires a class loader")
	}
	if l.IsBootstrap() {
		return nil, errors.New("core: the bootstrap loader cannot form an isolate")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.byLoaderID[l.ID()]; dup {
		return nil, fmt.Errorf("core: loader %s already has an isolate", l.Name())
	}
	if w.Mode() == ModeShared && len(w.isolates) > 0 {
		return nil, errors.New("core: shared mode supports a single isolate")
	}
	id := heap.IsolateID(len(w.isolates))
	reused := false
	if n := len(w.freeIDs); n > 0 {
		id = w.freeIDs[n-1]
		w.freeIDs = w.freeIDs[:n-1]
		reused = true
	}
	iso := &Isolate{
		id:     id,
		name:   name,
		loader: l,
	}
	empty := make(map[string]*heap.Object)
	iso.strings.Store(&empty)
	iso.setState(StateLive)
	if iso.id == 0 {
		iso.rights = AllRights
	}
	if reused {
		w.isolates[id] = iso
	} else {
		w.isolates = append(w.isolates, iso)
	}
	w.byLoaderID[l.ID()] = iso
	for len(w.byLoaderSlice) <= l.ID() {
		w.byLoaderSlice = append(w.byLoaderSlice, nil)
	}
	w.byLoaderSlice[l.ID()] = iso
	return iso, nil
}

// IsolateForLoaderID is the hot-path variant of IsolateForLoader used by
// the interpreter's invoke sequence; it returns nil for the bootstrap
// loader and for loaders without isolates.
func (w *World) IsolateForLoaderID(id int) *Isolate {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if id <= 0 || id >= len(w.byLoaderSlice) {
		return nil
	}
	return w.byLoaderSlice[id]
}

// Isolate0 returns the OSGi runtime's isolate, or nil before it exists.
func (w *World) Isolate0() *Isolate {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if len(w.isolates) == 0 {
		return nil
	}
	return w.isolates[0]
}

// IsolateByID returns the isolate with the given accounting ID, or nil.
func (w *World) IsolateByID(id heap.IsolateID) *Isolate {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if id < 0 || int(id) >= len(w.isolates) {
		return nil
	}
	return w.isolates[id]
}

// IsolateForLoader returns the isolate built from loader l, or nil for
// the bootstrap loader (system code executes in the caller's isolate).
func (w *World) IsolateForLoader(l *loader.Loader) *Isolate {
	if l == nil || l.IsBootstrap() {
		return nil
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.byLoaderID[l.ID()]
}

// IsolateForClass returns the isolate owning a class, or nil for system
// classes.
func (w *World) IsolateForClass(c *classfile.Class) *Isolate {
	if c.IsSystem() {
		return nil
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.byLoaderID[c.LoaderID]
}

// Isolates returns all isolates in creation order (a copy).
func (w *World) Isolates() []*Isolate {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]*Isolate(nil), w.isolates...)
}

// NumIsolates returns the number of isolates created so far.
func (w *World) NumIsolates() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.isolates)
}

// Mirror returns the task class mirror of class c for isolate iso,
// creating it lazily. This is the getstatic/putstatic hot path: in
// Isolated mode it performs the paper's two extra loads (current isolate,
// then the mirror array entry); in Shared mode isolates collapse to a
// single mirror. The fast path is lock-free: it indexes an immutable
// table snapshot; only a miss (first access of a (class, isolate) pair)
// takes the growth lock.
func (w *World) Mirror(c *classfile.Class, iso *Isolate) *TaskClassMirror {
	sid := c.StaticsID
	idx := 0
	if w.Mode() == ModeIsolated {
		idx = int(iso.id)
	}
	tab := w.mirrors.Load()
	if sid < len(tab.rows) {
		if row := tab.rows[sid]; idx < len(row) {
			if m := row[idx]; m != nil {
				return m
			}
		}
	}
	return w.growMirror(sid, idx, c)
}

// growMirror publishes a new table snapshot containing a mirror at
// (sid, idx), creating it if a concurrent caller has not already.
func (w *World) growMirror(sid, idx int, c *classfile.Class) *TaskClassMirror {
	w.mirrorMu.Lock()
	defer w.mirrorMu.Unlock()
	tab := w.mirrors.Load()
	// Re-check under the lock: another goroutine may have published it.
	if sid < len(tab.rows) {
		if row := tab.rows[sid]; idx < len(row) && row[idx] != nil {
			return row[idx]
		}
	}
	rows := tab.rows
	if sid >= len(rows) {
		grown := make([][]*TaskClassMirror, sid+16)
		copy(grown, rows)
		rows = grown
	} else {
		rows = append([][]*TaskClassMirror(nil), rows...)
	}
	row := rows[sid]
	grownRow := make([]*TaskClassMirror, max(idx+4, len(row)))
	copy(grownRow, row)
	m := newMirror(c)
	grownRow[idx] = m
	rows[sid] = grownRow
	w.mirrors.Store(&mirrorTable{rows: rows})
	return m
}

// MirrorIfPresent returns the mirror without creating it.
func (w *World) MirrorIfPresent(c *classfile.Class, iso *Isolate) *TaskClassMirror {
	sid := c.StaticsID
	idx := 0
	if w.Mode() == ModeIsolated {
		idx = int(iso.id)
	}
	tab := w.mirrors.Load()
	if sid >= len(tab.rows) {
		return nil
	}
	row := tab.rows[sid]
	if idx >= len(row) {
		return nil
	}
	return row[idx]
}

// MirrorEntry pairs a class with one isolate's mirror for it, as returned
// by MirrorEntries.
type MirrorEntry struct {
	Class  *classfile.Class
	Mirror *TaskClassMirror
}

// MirrorEntries returns every existing (class, mirror) pair of iso, in
// StaticsID order. The snapshot engine walks it to capture the isolate's
// initialized statics; callers that need a stable cut run with the world
// stopped.
func (w *World) MirrorEntries(iso *Isolate) []MirrorEntry {
	idx := 0
	if w.Mode() == ModeIsolated {
		idx = int(iso.id)
	}
	tab := w.mirrors.Load()
	var out []MirrorEntry
	for sid, row := range tab.rows {
		if idx >= len(row) || row[idx] == nil {
			continue
		}
		class := w.registry.ClassByStaticsID(sid)
		if class == nil {
			continue
		}
		out = append(out, MirrorEntry{Class: class, Mirror: row[idx]})
	}
	return out
}

// InstallMirrors publishes pre-built mirrors for iso in one table update,
// keyed by StaticsID. The snapshot-clone path uses it to install a whole
// warmed mirror column at once instead of paying a growMirror publication
// per class. A slot that already holds a mirror refuses the install (the
// clone would silently lose state the isolate already accumulated), so
// callers install before the isolate runs any guest code.
func (w *World) InstallMirrors(iso *Isolate, mirrors map[int]*TaskClassMirror) error {
	if len(mirrors) == 0 {
		return nil
	}
	idx := 0
	if w.Mode() == ModeIsolated {
		idx = int(iso.id)
	}
	w.mirrorMu.Lock()
	defer w.mirrorMu.Unlock()
	tab := w.mirrors.Load()
	maxSid := 0
	for sid := range mirrors {
		if sid < 0 {
			return fmt.Errorf("core: invalid statics id %d", sid)
		}
		if sid > maxSid {
			maxSid = sid
		}
		if sid < len(tab.rows) {
			if row := tab.rows[sid]; idx < len(row) && row[idx] != nil {
				return fmt.Errorf("core: isolate %d already has a mirror for statics id %d", iso.id, sid)
			}
		}
	}
	rows := tab.rows
	if maxSid >= len(rows) {
		grown := make([][]*TaskClassMirror, maxSid+16)
		copy(grown, rows)
		rows = grown
	} else {
		rows = append([][]*TaskClassMirror(nil), rows...)
	}
	for sid, m := range mirrors {
		row := rows[sid]
		grownRow := make([]*TaskClassMirror, max(idx+4, len(row)))
		copy(grownRow, row)
		grownRow[idx] = m
		rows[sid] = grownRow
	}
	w.mirrors.Store(&mirrorTable{rows: rows})
	return nil
}

// ErrNotDisposed is returned by FreeIsolate for an isolate that still has
// live charged objects (or was never killed).
var ErrNotDisposed = errors.New("core: isolate is not disposed")

// FreeIsolate returns a disposed isolate's identity to service: its
// accounting ID joins the free-list for the next NewIsolate, its mirror
// column and heap counters are cleared, and its loader indexes are
// detached. Only fully disposed isolates (killed, swept, no live charged
// objects) qualify, and never Isolate0. The ordering matters: the ID is
// published for reuse only after the mirror column and counters are
// cleared, so a concurrent NewIsolate can never adopt an ID that still
// shows the dead tenant's statics or charges. The isolate struct itself
// stays in the creation-order slice until the ID is reused (iterators
// rely on non-nil entries and simply see a disposed corpse).
func (w *World) FreeIsolate(iso *Isolate, h *heap.Heap) error {
	if iso == nil {
		return errors.New("core: free nil isolate")
	}
	if iso.IsIsolate0() {
		return errors.New("core: cannot recycle Isolate0")
	}
	if iso.State() != StateDisposed {
		return fmt.Errorf("%w: %s", ErrNotDisposed, iso.name)
	}
	if !iso.recycled.CompareAndSwap(false, true) {
		return fmt.Errorf("core: %s already recycled", iso.name)
	}

	w.mu.Lock()
	if w.byLoaderID[iso.loader.ID()] == iso {
		delete(w.byLoaderID, iso.loader.ID())
		if id := iso.loader.ID(); id < len(w.byLoaderSlice) {
			w.byLoaderSlice[id] = nil
		}
	}
	w.mu.Unlock()

	w.clearMirrorColumn(int(iso.id))
	if h != nil {
		h.ResetIsolateStats(iso.id)
	}

	w.mu.Lock()
	w.freeIDs = append(w.freeIDs, iso.id)
	w.mu.Unlock()
	return nil
}

// clearMirrorColumn publishes a table snapshot with every mirror of the
// given isolate index removed.
func (w *World) clearMirrorColumn(idx int) {
	w.mirrorMu.Lock()
	defer w.mirrorMu.Unlock()
	tab := w.mirrors.Load()
	changed := false
	rows := append([][]*TaskClassMirror(nil), tab.rows...)
	for sid, row := range rows {
		if idx < len(row) && row[idx] != nil {
			fresh := append([]*TaskClassMirror(nil), row...)
			fresh[idx] = nil
			rows[sid] = fresh
			changed = true
		}
	}
	if changed {
		w.mirrors.Store(&mirrorTable{rows: rows})
	}
}

// MirrorRootSets builds the GC accounting root contribution of every
// isolate's mirrors and string pools (paper §3.2, step 2). The returned
// map is keyed by isolate ID. Callers run with the world stopped (the
// collection is stop-the-world), so the table snapshot is complete.
func (w *World) MirrorRootSets() map[heap.IsolateID][]*heap.Object {
	isolates := w.Isolates()
	out := make(map[heap.IsolateID][]*heap.Object, len(isolates))
	for _, iso := range isolates {
		// Killed isolates contribute no roots: "all the objects
		// referenced by the terminating isolate are reclaimed by the
		// garbage collector, with the exception of objects shared with
		// other bundles" (§3.3) — shared objects survive through the
		// other isolates' roots.
		if iso.Killed() {
			continue
		}
		out[iso.id] = iso.StringPoolRoots(nil)
	}
	tab := w.mirrors.Load()
	for sid, row := range tab.rows {
		class := w.registry.ClassByStaticsID(sid)
		if class == nil {
			continue
		}
		for idx, m := range row {
			if m == nil {
				continue
			}
			isoID := heap.IsolateID(idx)
			if w.Mode() == ModeShared {
				isoID = 0
			}
			if iso := w.IsolateByID(isoID); iso == nil || iso.Killed() {
				continue
			}
			out[isoID] = m.Roots(out[isoID])
		}
	}
	return out
}

// Modelled sizes of the VM-internal structures that Figure 3 accounts
// for: "(i) the array of task class mirrors for each class and (ii) a
// per-isolate set of strings and statistics information" (§4.2).
const (
	mirrorRowBytes   = 24 // slice header per class
	mirrorSlotBytes  = 8  // one row entry (pointer)
	mirrorBytes      = 56 // TaskClassMirror struct
	staticSlotBytes  = 16 // one static variable slot (tagged value)
	isolateBytes     = 96 // Isolate struct
	accountBytes     = 14 * 8
	stringEntryBytes = 48 // string pool map entry (key header + pointer)
)

// StructFootprint returns the modelled byte size of the isolation
// metadata: task-class-mirror arrays, per-isolate string pools and
// statistics. Together with the heap's Used() this is the memory measure
// of Figure 3 — in Shared mode every class has exactly one mirror, while
// I-JVM pays one mirror per (class, accessing isolate) plus per-isolate
// pools and accounts.
func (w *World) StructFootprint() int64 {
	var total int64
	tab := w.mirrors.Load()
	for _, row := range tab.rows {
		if row == nil {
			continue
		}
		total += mirrorRowBytes + mirrorSlotBytes*int64(len(row))
		for _, m := range row {
			if m == nil {
				continue
			}
			total += mirrorBytes + staticSlotBytes*int64(len(m.Statics))
		}
	}
	for _, iso := range w.Isolates() {
		total += isolateBytes + accountBytes
		total += stringEntryBytes * int64(iso.NumInternedStrings())
	}
	return total
}

// Kill marks an isolate as killed. The caller (the interpreter's
// termination engine) is responsible for patching thread stacks and
// poisoning methods; killer must hold RightKillIsolate unless it is nil
// (host-initiated administrative kill).
func (w *World) Kill(killer, target *Isolate) error {
	if target == nil {
		return errors.New("core: kill nil isolate")
	}
	if killer != nil && !killer.rights.Has(RightKillIsolate) {
		return fmt.Errorf("%w: %s cannot kill %s", ErrNoRight, killer.name, target.name)
	}
	if !target.state.CompareAndSwap(uint32(StateLive), uint32(StateKilled)) {
		return fmt.Errorf("%w: %s", ErrKilled, target.name)
	}
	return nil
}

// UpdateDisposal promotes killed isolates with no remaining live charged
// objects to StateDisposed ("an isolate is only removed from memory when
// there is no remaining object whose class is defined by the isolate",
// §3.3). Call after an accounting collection.
func (w *World) UpdateDisposal(h *heap.Heap) {
	for _, iso := range w.Isolates() {
		if iso.State() != StateKilled {
			continue
		}
		if h.LiveStatsFor(iso.id).Objects == 0 {
			iso.setState(StateDisposed)
		}
	}
}

// Snapshot builds a point-in-time resource snapshot of one isolate,
// merging the interpreter-maintained account with the heap's memory
// views.
func (w *World) Snapshot(iso *Isolate, h *heap.Heap) Snapshot {
	alloc := h.AllocStatsFor(iso.id)
	live := h.LiveStatsFor(iso.id)
	return Snapshot{
		IsolateID:        int32(iso.id),
		IsolateName:      iso.name,
		State:            iso.State(),
		Account:          iso.account.Numbers(),
		AllocatedObjects: alloc.Objects,
		AllocatedBytes:   alloc.Bytes,
		LiveObjects:      live.Objects,
		LiveBytes:        live.Bytes,
		LiveConnections:  live.Connections,
	}
}

// Snapshots returns snapshots of all isolates in creation order.
func (w *World) Snapshots(h *heap.Heap) []Snapshot {
	isolates := w.Isolates()
	out := make([]Snapshot, 0, len(isolates))
	for _, iso := range isolates {
		out = append(out, w.Snapshot(iso, h))
	}
	return out
}
