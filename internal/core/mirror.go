package core

import (
	"sync/atomic"

	"ijvm/internal/classfile"
	"ijvm/internal/heap"
)

// InitState is the class initialization state carried by a task class
// mirror. Initialization runs once per (class, isolate) pair in I-JVM mode
// and once per class in Shared mode.
type InitState uint8

// Initialization states.
const (
	// InitNone means <clinit> has not started for this mirror.
	InitNone InitState = iota
	// InitRunning means <clinit> is executing (re-entrant accesses from
	// the initializing thread proceed, as in the JVM).
	InitRunning
	// InitDone means the mirror is ready.
	InitDone
)

// TaskClassMirror is the per-isolate projection of one class (§3.1,
// following MVM): the initialization state, the static variable slots, and
// the isolate-private java.lang.Class object. I-JVM indexes the mirror
// array of a class with the current isolate reference of the thread;
// Shared mode keeps exactly one mirror per class.
type TaskClassMirror struct {
	State   InitState
	Statics []heap.Value
	// ClassObject is the isolate-private java.lang.Class instance,
	// allocated lazily on first ldc_class. It is an atomic pointer
	// because a thread migrating into the isolate on a synchronized
	// static call materializes it from its source worker, racing with
	// the isolate's own shard; the first published object wins.
	ClassObject atomic.Pointer[heap.Object]
	// InitThread is the VM thread currently running <clinit>, for
	// re-entrancy (0 when none).
	InitThread int64
}

func newMirror(c *classfile.Class) *TaskClassMirror {
	statics := make([]heap.Value, c.NumStaticSlots)
	for i, f := range c.StaticFields {
		statics[i] = heap.ZeroOf(f.Kind)
	}
	return &TaskClassMirror{Statics: statics}
}

// Roots appends the mirror's references (statics and the Class object) to
// roots for GC accounting (step 2) and returns the extended slice.
func (m *TaskClassMirror) Roots(roots []*heap.Object) []*heap.Object {
	for i := range m.Statics {
		if r := m.Statics[i].R; r != nil {
			roots = append(roots, r)
		}
	}
	if obj := m.ClassObject.Load(); obj != nil {
		roots = append(roots, obj)
	}
	return roots
}
