package core_test

import (
	"errors"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/loader"
)

func newWorld(t *testing.T, mode core.Mode) (*core.World, *loader.Registry) {
	t.Helper()
	r := loader.NewRegistry()
	obj := classfile.NewClass(classfile.ObjectClassName).MustBuild()
	if err := r.Bootstrap().Define(obj); err != nil {
		t.Fatal(err)
	}
	return core.NewWorld(mode, r), r
}

func classWithStatics(t *testing.T, r *loader.Registry, l *loader.Loader, name string) *classfile.Class {
	t.Helper()
	c := classfile.NewClass(name).
		StaticField("a", classfile.KindInt).
		StaticField("b", classfile.KindRef).
		Method("m", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) { a.Return() }).
		MustBuild()
	if err := l.Define(c); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIsolate0GetsAllRights(t *testing.T) {
	w, r := newWorld(t, core.ModeIsolated)
	iso0, err := w.NewIsolate("runtime", r.NewLoader("runtime"))
	if err != nil {
		t.Fatal(err)
	}
	if !iso0.IsIsolate0() || !iso0.Rights().Has(core.AllRights) {
		t.Fatal("first isolate must be Isolate0 with all rights")
	}
	iso1, err := w.NewIsolate("bundle", r.NewLoader("bundle"))
	if err != nil {
		t.Fatal(err)
	}
	if iso1.Rights() != 0 {
		t.Fatal("standard isolates must have no rights")
	}
	if w.Isolate0() != iso0 || w.IsolateByID(1) != iso1 || w.IsolateByID(7) != nil {
		t.Fatal("isolate accessors broken")
	}
}

func TestWorldRejectsInvalidIsolates(t *testing.T) {
	w, r := newWorld(t, core.ModeIsolated)
	if _, err := w.NewIsolate("x", nil); err == nil {
		t.Fatal("nil loader accepted")
	}
	if _, err := w.NewIsolate("x", r.Bootstrap()); err == nil {
		t.Fatal("bootstrap loader accepted")
	}
	l := r.NewLoader("a")
	if _, err := w.NewIsolate("a", l); err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewIsolate("a2", l); err == nil {
		t.Fatal("duplicate loader accepted")
	}
}

func TestSharedModeSingleIsolate(t *testing.T) {
	w, r := newWorld(t, core.ModeShared)
	if _, err := w.NewIsolate("only", r.NewLoader("only")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewIsolate("second", r.NewLoader("second")); err == nil {
		t.Fatal("shared mode must reject a second isolate")
	}
}

func TestMirrorsPerIsolateVsShared(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
		t.Run(mode.String(), func(t *testing.T) {
			w, r := newWorld(t, mode)
			l0 := r.NewLoader("l0")
			iso0, err := w.NewIsolate("i0", l0)
			if err != nil {
				t.Fatal(err)
			}
			c := classWithStatics(t, r, l0, "m/C")

			var iso1 *core.Isolate
			if mode == core.ModeIsolated {
				iso1, err = w.NewIsolate("i1", r.NewLoader("l1"))
				if err != nil {
					t.Fatal(err)
				}
			} else {
				iso1 = iso0
			}

			m0 := w.Mirror(c, iso0)
			m1 := w.Mirror(c, iso1)
			if len(m0.Statics) != 2 {
				t.Fatalf("statics slots = %d", len(m0.Statics))
			}
			m0.Statics[0] = heap.IntVal(42)
			if mode == core.ModeIsolated {
				if m0 == m1 {
					t.Fatal("isolates must have distinct mirrors")
				}
				if m1.Statics[0].I == 42 {
					t.Fatal("static leak between isolates")
				}
			} else if m0 != m1 {
				t.Fatal("shared mode must have one mirror")
			}
			if w.Mirror(c, iso0) != m0 {
				t.Fatal("mirror identity unstable")
			}
			if w.MirrorIfPresent(c, iso0) != m0 {
				t.Fatal("MirrorIfPresent missed an existing mirror")
			}
		})
	}
}

func TestKillRightsAndStates(t *testing.T) {
	w, r := newWorld(t, core.ModeIsolated)
	iso0, _ := w.NewIsolate("runtime", r.NewLoader("r"))
	bundle, _ := w.NewIsolate("bundle", r.NewLoader("b"))
	other, _ := w.NewIsolate("other", r.NewLoader("o"))

	if err := w.Kill(other, bundle); !errors.Is(err, core.ErrNoRight) {
		t.Fatalf("unprivileged kill: %v", err)
	}
	if err := w.Kill(iso0, bundle); err != nil {
		t.Fatalf("privileged kill: %v", err)
	}
	if !bundle.Killed() || bundle.State() != core.StateKilled {
		t.Fatal("bundle not killed")
	}
	if err := w.Kill(iso0, bundle); !errors.Is(err, core.ErrKilled) {
		t.Fatalf("double kill: %v", err)
	}
	// Host-initiated kill (nil killer) is allowed.
	if err := w.Kill(nil, other); err != nil {
		t.Fatalf("host kill: %v", err)
	}
}

func TestKilledIsolateContributesNoRoots(t *testing.T) {
	w, r := newWorld(t, core.ModeIsolated)
	l := r.NewLoader("b")
	iso, _ := w.NewIsolate("bundle", l)
	c := classWithStatics(t, r, l, "k/C")
	h := heap.New(1 << 20)
	obj, err := h.AllocObject(r.ClassByStaticsID(c.StaticsID), iso.ID())
	if err != nil {
		t.Fatal(err)
	}
	w.Mirror(c, iso).Statics[1] = heap.RefVal(obj)

	roots := w.MirrorRootSets()
	if len(roots[iso.ID()]) == 0 {
		t.Fatal("live isolate must contribute its static roots")
	}
	if err := w.Kill(nil, iso); err != nil {
		t.Fatal(err)
	}
	roots = w.MirrorRootSets()
	if len(roots[iso.ID()]) != 0 {
		t.Fatal("killed isolate must contribute no roots (§3.3 reclamation)")
	}
	// After a GC finds nothing charged to it, the isolate is disposed.
	h.Collect(nil)
	w.UpdateDisposal(h)
	if !iso.Disposed() {
		t.Fatal("killed isolate with no live objects must be disposed")
	}
}

func TestDetectRules(t *testing.T) {
	th := core.Thresholds{
		MaxLiveBytes:       1000,
		MaxGCActivations:   3,
		MaxThreadsCreated:  5,
		MinCPUSharePercent: 60,
		MinCPUSamples:      10,
		MaxSleepingThreads: 2,
		MaxConnections:     4,
		MaxIOBytes:         100,
	}
	snaps := []core.Snapshot{
		{IsolateID: 0, IsolateName: "runtime", State: core.StateLive,
			Account: core.Account{CPUSamples: 5}},
		{IsolateID: 1, IsolateName: "hog", State: core.StateLive,
			LiveBytes: 5000,
			Account: core.Account{
				CPUSamples: 95, GCActivations: 10, ThreadsCreated: 50,
				SleepingThreads: 3, IOBytesRead: 80, IOBytesWritten: 70,
			},
			LiveConnections: 9},
		{IsolateID: 2, IsolateName: "good", State: core.StateLive,
			LiveBytes: 10, Account: core.Account{CPUSamples: 0}},
		{IsolateID: 3, IsolateName: "dead", State: core.StateKilled,
			LiveBytes: 99999, Account: core.Account{GCActivations: 99}},
	}
	findings := core.Detect(snaps, th)
	rules := make(map[string]int32)
	for _, f := range findings {
		if f.IsolateName == "dead" {
			t.Fatal("killed isolates must not be flagged")
		}
		rules[f.Rule] = f.IsolateID
	}
	for _, rule := range []string{
		"live-memory", "gc-activations", "threads-created", "cpu-share",
		"sleeping-threads", "connections", "io-bytes",
	} {
		if rules[rule] != 1 {
			t.Errorf("rule %s flagged isolate %d, want 1", rule, rules[rule])
		}
	}
	// Runtime exemption: isolate0 with dominant CPU is not flagged.
	snaps[0].CPUSamples = 1000
	snaps[1].CPUSamples = 1
	for _, f := range core.Detect(snaps, th) {
		if f.Rule == "cpu-share" && f.IsolateID == 0 {
			t.Fatal("Isolate0 must be exempt from the CPU rule")
		}
	}
}

func TestTopBy(t *testing.T) {
	snaps := []core.Snapshot{
		{IsolateID: 0, State: core.StateLive, LiveBytes: 99999},
		{IsolateID: 1, State: core.StateLive, LiveBytes: 10},
		{IsolateID: 2, State: core.StateLive, LiveBytes: 500},
		{IsolateID: 3, State: core.StateKilled, LiveBytes: 800},
	}
	got := core.TopBy(snaps, func(s core.Snapshot) int64 { return s.LiveBytes })
	if got != 2 {
		t.Fatalf("TopBy = %d, want 2 (runtime and killed excluded)", got)
	}
	if core.TopBy(nil, func(core.Snapshot) int64 { return 0 }) != -1 {
		t.Fatal("empty TopBy must return -1")
	}
}

func TestStructFootprintGrowsWithIsolation(t *testing.T) {
	// Two isolates touching the same class must cost more metadata than
	// one isolate touching it (the Figure 3 overhead source).
	w, r := newWorld(t, core.ModeIsolated)
	l0 := r.NewLoader("l0")
	iso0, _ := w.NewIsolate("i0", l0)
	c := classWithStatics(t, r, l0, "fp/C")
	w.Mirror(c, iso0)
	single := w.StructFootprint()

	iso1, _ := w.NewIsolate("i1", r.NewLoader("l1"))
	w.Mirror(c, iso1)
	double := w.StructFootprint()
	if double <= single {
		t.Fatalf("footprint did not grow: %d -> %d", single, double)
	}
}

func TestSnapshotMergesHeapViews(t *testing.T) {
	w, r := newWorld(t, core.ModeIsolated)
	l := r.NewLoader("b")
	iso, _ := w.NewIsolate("bundle", l)
	h := heap.New(1 << 20)
	obj := classfile.NewClass("s/C").MustBuild()
	if err := l.Define(obj); err != nil {
		t.Fatal(err)
	}
	o, err := h.AllocObject(obj, iso.ID())
	if err != nil {
		t.Fatal(err)
	}
	h.Collect([]heap.RootSet{{Isolate: iso.ID(), Refs: []*heap.Object{o}}})
	iso.Account().ThreadsCreated.Store(7)
	snap := w.Snapshot(iso, h)
	if snap.ThreadsCreated != 7 || snap.AllocatedObjects != 1 || snap.LiveObjects != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.IsolateName != "bundle" || snap.State != core.StateLive {
		t.Fatalf("identity = %q %v", snap.IsolateName, snap.State)
	}
}
