// Package core implements the paper's primary contribution: lightweight
// isolates for OSGi bundles inside a single JVM. It provides
//
//   - the Isolate abstraction built from a class loader (§3.1), including
//     Isolate0 with elevated rights;
//   - task class mirrors: per-isolate static variables, initialization
//     state and java.lang.Class objects (§3.1);
//   - per-isolate interned-string pools (§3.5);
//   - per-isolate resource accounts: CPU samples, threads, connections,
//     I/O, GC activations, allocated and live memory (§3.2);
//   - the isolate termination state machine (§3.3): killed isolates have
//     their methods poisoned and their frames made unable to catch
//     StoppedIsolateException.
//
// The interpreter (internal/interp) consults this package on every static
// access, method call and allocation; the scheduler drives CPU sampling.
//
// # Locking discipline
//
// The concurrent scheduler (internal/sched) executes isolates in
// parallel, one worker per isolate shard, so this package distinguishes
// three classes of state:
//
//   - shard-local state (task-class-mirror contents: statics, init state,
//     Class objects) is only ever touched by the worker currently owning
//     the isolate the access is keyed by — the thread's current isolate —
//     and needs no locks;
//   - cross-isolate counters (AccountCounters, the isolate life state)
//     are atomics, readable and writable from any goroutine;
//   - shared registries (the mirror table in World, the per-isolate
//     interned-string pool) take internal mutexes.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ijvm/internal/heap"
	"ijvm/internal/loader"
)

// Rights is the permission set of an isolate. Isolate0 — the isolate of
// the OSGi runtime — holds all rights; standard bundle isolates hold none
// (paper §3.1).
type Rights uint8

// Right bits.
const (
	// RightSpawnIsolate permits creating new isolates.
	RightSpawnIsolate Rights = 1 << iota
	// RightKillIsolate permits terminating other isolates.
	RightKillIsolate
	// RightShutdown permits shutting down the entire platform.
	RightShutdown
)

// AllRights is the right set of Isolate0.
const AllRights = RightSpawnIsolate | RightKillIsolate | RightShutdown

// Has reports whether all bits in mask are present.
func (r Rights) Has(mask Rights) bool { return r&mask == mask }

// LifeState tracks an isolate through its lifecycle.
type LifeState uint8

// Isolate life states.
const (
	// StateLive is the normal running state.
	StateLive LifeState = iota + 1
	// StateKilled means termination has been requested: methods are
	// poisoned, threads executing the isolate's code receive
	// StoppedIsolateException, but objects may still be referenced by
	// other isolates.
	StateKilled
	// StateDisposed means no live object charged to the isolate remains;
	// the isolate has been removed from memory (paper §3.3, last
	// paragraph).
	StateDisposed
)

// String returns the state name.
func (s LifeState) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateKilled:
		return "killed"
	case StateDisposed:
		return "disposed"
	default:
		return "invalid"
	}
}

// Isolate is one protection domain. In I-JVM mode each bundle class loader
// gets its own isolate; in Shared (baseline) mode a single isolate spans
// the whole VM.
type Isolate struct {
	id     heap.IsolateID
	name   string
	loader *loader.Loader
	rights Rights

	// state holds the LifeState. It is atomic because the kill path flips
	// it from an arbitrary goroutine while worker goroutines consult
	// Killed() on every cross-isolate call and frame return.
	state atomic.Uint32

	account AccountCounters

	// weight, qos and throttled are the scheduler-QoS knobs (see qos.go).
	// All atomics: the governor writes them from its own goroutine while
	// scheduler workers and admission gates read them on hot paths. A
	// zero weight reads as DefaultWeight so constructors need no change.
	weight    atomic.Int64
	qos       atomic.Uint32
	throttled atomic.Bool

	// strings is the per-isolate interned-string pool (§3.5: "each bundle
	// has its map of strings, therefore the == operator does not work for
	// strings allocated by different bundles"), published copy-on-write:
	// the read path (every Ldc of an already-interned literal — the
	// steady state) is one atomic pointer load and a map lookup with no
	// lock, so threads migrated into the isolate and the isolate's own
	// shard never serialize on hot constant loads. stringsMu serializes
	// writers only: an insert copies the map, and the first publisher of
	// a string wins — later racing interners adopt the published object,
	// keeping guest == stable for everyone who interned the same
	// literal.
	stringsMu sync.Mutex
	strings   atomic.Pointer[map[string]*heap.Object]

	// recycled flips once when FreeIsolate returns the isolate's ID to the
	// World's free-list; the CAS guards against double-free.
	recycled atomic.Bool
}

// ID returns the isolate's accounting ID (0 for Isolate0).
func (iso *Isolate) ID() heap.IsolateID { return iso.id }

// Name returns the isolate's diagnostic name.
func (iso *Isolate) Name() string { return iso.name }

// Loader returns the class loader the isolate is built from.
func (iso *Isolate) Loader() *loader.Loader { return iso.loader }

// Rights returns the isolate's permission set.
func (iso *Isolate) Rights() Rights { return iso.rights }

// State returns the isolate's life state.
func (iso *Isolate) State() LifeState { return LifeState(iso.state.Load()) }

func (iso *Isolate) setState(s LifeState) { iso.state.Store(uint32(s)) }

// Killed reports whether termination has been requested (or completed).
func (iso *Isolate) Killed() bool { return iso.State() != StateLive }

// Disposed reports whether the isolate has been fully reclaimed.
func (iso *Isolate) Disposed() bool { return iso.State() == StateDisposed }

// IsIsolate0 reports whether this is the OSGi runtime's isolate.
func (iso *Isolate) IsIsolate0() bool { return iso.id == 0 }

// Account returns a pointer to the isolate's resource counters; the
// interpreter updates them in place with atomic adds.
func (iso *Isolate) Account() *AccountCounters { return &iso.account }

// InternedString returns the isolate-private interned object for s, if
// any. Lock-free: one atomic load plus a map lookup against the current
// copy-on-write snapshot.
func (iso *Isolate) InternedString(s string) (*heap.Object, bool) {
	obj, ok := (*iso.strings.Load())[s]
	return obj, ok
}

// SetInternedString records the isolate-private interned object for s
// and returns the pool's canonical object: the first publisher wins, so
// two racing interners of the same literal both end up holding the same
// object (guest == stability). The insert copies the map (writes are
// once-per-distinct-literal; reads are the hot path).
func (iso *Isolate) SetInternedString(s string, obj *heap.Object) *heap.Object {
	iso.stringsMu.Lock()
	defer iso.stringsMu.Unlock()
	old := *iso.strings.Load()
	if cur, ok := old[s]; ok {
		return cur
	}
	grown := make(map[string]*heap.Object, len(old)+1)
	for k, v := range old {
		grown[k] = v
	}
	grown[s] = obj
	iso.strings.Store(&grown)
	return obj
}

// StringPoolRoots appends the interned strings to roots (GC accounting
// step 2) and returns the extended slice. Lock-free against the current
// snapshot.
func (iso *Isolate) StringPoolRoots(roots []*heap.Object) []*heap.Object {
	for _, obj := range *iso.strings.Load() {
		roots = append(roots, obj)
	}
	return roots
}

// StringPoolSnapshot returns the isolate's current interned-string map.
// The map is a copy-on-write snapshot and must not be mutated; the
// snapshot-clone path captures it so clones share the template's canonical
// string objects (guest == across a clone and its template pool is
// intentionally preserved — interned strings are immutable).
func (iso *Isolate) StringPoolSnapshot() map[string]*heap.Object {
	return *iso.strings.Load()
}

// AdoptStringPool replaces the isolate's interned-string pool with pool
// (as captured by StringPoolSnapshot; nil resets to an empty pool). The
// isolate's own pool keeps growing copy-on-write from this base, so the
// adopted map is never mutated. Callers adopt only while the isolate runs
// no guest code.
func (iso *Isolate) AdoptStringPool(pool map[string]*heap.Object) {
	iso.stringsMu.Lock()
	defer iso.stringsMu.Unlock()
	if pool == nil {
		pool = map[string]*heap.Object{}
	}
	iso.strings.Store(&pool)
}

// NumInternedStrings returns the size of the isolate's string pool.
func (iso *Isolate) NumInternedStrings() int {
	return len(*iso.strings.Load())
}

func (iso *Isolate) String() string {
	return fmt.Sprintf("isolate %d (%s, %s)", iso.id, iso.name, iso.State())
}
