package limits_test

import (
	"testing"

	"ijvm/internal/limits"
)

// TestCPUDistributionChargesCallee reproduces §4.4 experiment 1: sampling
// charges the majority of the loop's CPU to the callee (the paper
// measured roughly 75%/25%; the exact split depends on the callee/caller
// instruction ratio).
func TestCPUDistributionChargesCallee(t *testing.T) {
	callee, caller, err := limits.CPUDistribution(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if callee <= caller {
		t.Fatalf("callee share %.1f%% must exceed caller share %.1f%%", callee, caller)
	}
	if callee < 50 || callee > 95 {
		t.Fatalf("callee share %.1f%% outside the plausible band", callee)
	}
}

// TestGCAttributionChargesCallee reproduces §4.4 experiment 2: the
// collections forced by per-call allocations inside the service are
// charged to the service, not to the driving loop.
func TestGCAttributionChargesCallee(t *testing.T) {
	// 200k calls x 1KB garbage through a 64MB heap forces several GCs.
	svcGCs, drvGCs, err := limits.GCAttribution(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if svcGCs == 0 {
		t.Fatal("expected collections to be triggered on behalf of the service")
	}
	if drvGCs != 0 {
		t.Fatalf("driver charged %d GCs; allocations happen inside the callee", drvGCs)
	}
}

// TestSharedMemoryChargedToCaller reproduces §4.4 experiment 3: the large
// object returned by the service and retained by the caller is charged to
// the caller after collection.
func TestSharedMemoryChargedToCaller(t *testing.T) {
	const slots = 100_000 // ~800KB payload
	svcBytes, drvBytes, err := limits.SharedMemoryCharge(slots)
	if err != nil {
		t.Fatal(err)
	}
	if drvBytes < slots*8 {
		t.Fatalf("driver charged %d bytes, want >= %d (it retains the payload)", drvBytes, slots*8)
	}
	if svcBytes >= slots*8 {
		t.Fatalf("service charged %d bytes for an object it does not retain", svcBytes)
	}
}

// TestAttributionCollectorMatrix runs all three §4.4 experiments under
// every collector configuration (stock, forced stop-the-world,
// aggressively paced incremental) and asserts the attribution outcomes
// are collector-independent: who gets charged is decided on the
// allocation and reference paths, not by how collection work is paced.
func TestAttributionCollectorMatrix(t *testing.T) {
	for _, c := range limits.Collectors() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			t.Run("cpu", func(t *testing.T) {
				callee, caller, err := limits.CPUDistributionWith(c, 100_000)
				if err != nil {
					t.Fatal(err)
				}
				if callee <= caller {
					t.Fatalf("callee share %.1f%% must exceed caller share %.1f%%", callee, caller)
				}
			})
			t.Run("gc", func(t *testing.T) {
				svcGCs, drvGCs, err := limits.GCAttributionWith(c, 200_000)
				if err != nil {
					t.Fatal(err)
				}
				if svcGCs == 0 {
					t.Fatal("expected collections charged to the allocating service")
				}
				if drvGCs != 0 {
					t.Fatalf("driver charged %d GCs; allocations happen inside the callee", drvGCs)
				}
			})
			t.Run("memory", func(t *testing.T) {
				const slots = 100_000
				svcBytes, drvBytes, err := limits.SharedMemoryChargeWith(c, slots)
				if err != nil {
					t.Fatal(err)
				}
				if drvBytes < slots*8 {
					t.Fatalf("driver charged %d bytes, want >= %d", drvBytes, slots*8)
				}
				if svcBytes >= slots*8 {
					t.Fatalf("service charged %d bytes for an unretained object", svcBytes)
				}
			})
		})
	}
}
