// Package limits implements the three §4.4 experiments that demonstrate
// the precision limits of I-JVM's resource accounting:
//
//  1. CPU sampling charges most of the time of a cross-bundle call loop
//     to the callee (the paper measured roughly 75% callee / 25% caller);
//  2. collections triggered by allocations performed inside the callee on
//     behalf of the caller are charged to the callee;
//  3. a large object returned by a service and retained by its callers is
//     charged to the callers, not to the allocating service.
package limits

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// Collector selects the garbage-collector configuration an experiment
// runs under. The §4.4 attribution results are collector-independent:
// who gets charged is decided on the allocation and reference paths,
// not by how the collection work is scheduled.
type Collector uint8

const (
	// CollectorDefault is the VM's stock configuration (incremental
	// cycles at the default threshold and stride).
	CollectorDefault Collector = iota
	// CollectorSTW forces the exact stop-the-world reference collector
	// (no incremental cycles).
	CollectorSTW
	// CollectorPaced is the incremental collector tuned aggressive: a
	// low opening threshold and a small mark stride, so cycles open
	// early and progress in many tiny increments interleaved with the
	// mutator.
	CollectorPaced
)

// Collectors lists the configurations the attribution matrix covers.
func Collectors() []Collector {
	return []Collector{CollectorDefault, CollectorSTW, CollectorPaced}
}

// String returns the collector name.
func (c Collector) String() string {
	switch c {
	case CollectorSTW:
		return "stw"
	case CollectorPaced:
		return "paced"
	default:
		return "default"
	}
}

// options returns the VM options selecting this collector.
func (c Collector) options() interp.Options {
	opts := interp.Options{Mode: core.ModeIsolated, HeapLimit: 64 << 20}
	switch c {
	case CollectorSTW:
		opts.ForceSTWGC = true
	case CollectorPaced:
		opts.GCThresholdPercent = 60
		opts.GCMarkStride = 64
	}
	return opts
}

// env is a two-isolate world: "service" (the callee, analogous to the
// paper's bundle A or dictionary service M) and "driver" (the caller).
type env struct {
	vm      *interp.VM
	runtime *core.Isolate // Isolate0 placeholder so bundles are standard isolates
	service *core.Isolate
	driver  *core.Isolate
}

func newEnv(collector Collector, serviceClasses, driverClasses []*classfile.Class) (*env, error) {
	vm := interp.NewVM(collector.options())
	if err := syslib.Install(vm); err != nil {
		return nil, err
	}
	rtLoader := vm.Registry().NewLoader("runtime")
	runtime, err := vm.World().NewIsolate("runtime", rtLoader)
	if err != nil {
		return nil, err
	}
	svcLoader := vm.Registry().NewLoader("service")
	service, err := vm.World().NewIsolate("service", svcLoader)
	if err != nil {
		return nil, err
	}
	if err := svcLoader.DefineAll(serviceClasses); err != nil {
		return nil, err
	}
	drvLoader := vm.Registry().NewLoader("driver")
	driver, err := vm.World().NewIsolate("driver", drvLoader)
	if err != nil {
		return nil, err
	}
	drvLoader.AddDelegate(svcLoader)
	if err := drvLoader.DefineAll(driverClasses); err != nil {
		return nil, err
	}
	return &env{vm: vm, runtime: runtime, service: service, driver: driver}, nil
}

func (e *env) call(iso *core.Isolate, className, method, desc string, args []heap.Value) (heap.Value, error) {
	c, err := iso.Loader().Lookup(className)
	if err != nil {
		return heap.Value{}, err
	}
	m, err := c.LookupMethod(method, desc)
	if err != nil {
		return heap.Value{}, err
	}
	v, th, err := e.vm.CallRoot(iso, m, args, 0)
	if err != nil {
		return heap.Value{}, err
	}
	if th.Failure() != nil {
		return heap.Value{}, fmt.Errorf("%s.%s failed: %s", className, method, th.FailureString())
	}
	return v, nil
}

// CPUDistribution runs experiment 1 under the default collector; see
// CPUDistributionWith.
func CPUDistribution(n int64) (calleeShare, callerShare float64, err error) {
	return CPUDistributionWith(CollectorDefault, n)
}

// CPUDistributionWith runs experiment 1: the driver calls the service's
// function n times; returns the callee's and caller's share (percent) of
// the CPU samples attributed to the two bundles.
func CPUDistributionWith(collector Collector, n int64) (calleeShare, callerShare float64, err error) {
	const svcName = "limits/Svc"
	svc := classfile.NewClass(svcName).
		// f(x): the called function does a realistic amount of work —
		// several times the caller's loop overhead, which is what skews
		// the sampled CPU distribution toward the callee in the paper's
		// experiment ("since the callee updates the current isolate, it
		// executes more code than the caller").
		Method("f", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(3).IMul().Const(7).IAdd().IStore(1)
			a.ILoad(1).Const(5).IRem().ILoad(0).IAdd().IStore(1)
			a.ILoad(1).Const(13).IMul().Const(11).IRem().IStore(1)
			a.ILoad(1).ILoad(0).IXor().Const(255).IAnd().IStore(1)
			a.ILoad(1).ILoad(0).IAdd().IReturn()
		}).MustBuild()
	const drvName = "limits/Drv"
	drv := classfile.NewClass(drvName).
		Method("loop", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1).Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ILoad(1).InvokeStatic(svcName, "f", "(I)I").IStore(2)
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()

	e, err := newEnv(collector, []*classfile.Class{svc}, []*classfile.Class{drv})
	if err != nil {
		return 0, 0, err
	}
	if _, err := e.call(e.driver, drvName, "loop", "(I)I", []heap.Value{heap.IntVal(n)}); err != nil {
		return 0, 0, err
	}
	callee := e.service.Account().CPUSamples.Load()
	caller := e.driver.Account().CPUSamples.Load()
	total := callee + caller
	if total == 0 {
		return 0, 0, fmt.Errorf("no CPU samples recorded (n=%d too small?)", n)
	}
	return 100 * float64(callee) / float64(total), 100 * float64(caller) / float64(total), nil
}

// GCAttribution runs experiment 2 under the default collector; see
// GCAttributionWith.
func GCAttribution(n int64) (serviceGCs, driverGCs int64, err error) {
	return GCAttributionWith(CollectorDefault, n)
}

// GCAttributionWith runs experiment 2: the service's function allocates
// and returns a new object per call; the driver's loop forces
// collections. It returns the GC activations charged to the service and
// to the driver. The charge lands on the allocation that crossed the
// opening occupancy regardless of collector pacing, so the split is the
// same under the STW reference collector and the incremental one.
func GCAttributionWith(collector Collector, n int64) (serviceGCs, driverGCs int64, err error) {
	const svcName = "limits/AllocSvc"
	svc := classfile.NewClass(svcName).
		// fresh(): allocates and returns a new 1KB array.
		Method("fresh", "()Ljava/lang/Object;", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(128).NewArray("").AReturn()
		}).MustBuild()
	const drvName = "limits/AllocDrv"
	drv := classfile.NewClass(drvName).
		Method("loop", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.InvokeStatic(svcName, "fresh", "()Ljava/lang/Object;").Pop()
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(1).IReturn()
		}).MustBuild()

	e, err := newEnv(collector, []*classfile.Class{svc}, []*classfile.Class{drv})
	if err != nil {
		return 0, 0, err
	}
	if _, err := e.call(e.driver, drvName, "loop", "(I)I", []heap.Value{heap.IntVal(n)}); err != nil {
		return 0, 0, err
	}
	return e.service.Account().GCActivations.Load(), e.driver.Account().GCActivations.Load(), nil
}

// SharedMemoryCharge runs experiment 3 under the default collector; see
// SharedMemoryChargeWith.
func SharedMemoryCharge(payloadSlots int64) (serviceBytes, driverBytes int64, err error) {
	return SharedMemoryChargeWith(CollectorDefault, payloadSlots)
}

// SharedMemoryChargeWith runs experiment 3: the service returns a large
// object that the driver retains in a static; after a collection the
// object is charged to the driver ("the garbage collector does not charge
// the large objects to M but to the callers of M"). It returns the live
// bytes charged to each bundle.
func SharedMemoryChargeWith(collector Collector, payloadSlots int64) (serviceBytes, driverBytes int64, err error) {
	const svcName = "limits/Dict"
	svc := classfile.NewClass(svcName).
		// lookup(): the dictionary service returning a large result.
		Method("lookup", "(I)Ljava/lang/Object;", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).NewArray("").AReturn()
		}).MustBuild()
	const drvName = "limits/DictUser"
	drv := classfile.NewClass(drvName).
		StaticField("cache", classfile.KindRef).
		Method("fetch", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).InvokeStatic(svcName, "lookup", "(I)Ljava/lang/Object;").
				PutStatic(drvName, "cache")
			a.Const(1).IReturn()
		}).MustBuild()

	e, err := newEnv(collector, []*classfile.Class{svc}, []*classfile.Class{drv})
	if err != nil {
		return 0, 0, err
	}
	if _, err := e.call(e.driver, drvName, "fetch", "(I)I", []heap.Value{heap.IntVal(payloadSlots)}); err != nil {
		return 0, 0, err
	}
	e.vm.CollectGarbage(nil)
	return e.vm.Heap().LiveStatsFor(e.service.ID()).Bytes,
		e.vm.Heap().LiveStatsFor(e.driver.ID()).Bytes, nil
}
