// Package mesh drives a microservice-mesh workload over the async
// messaging layer: frontend isolates fan requests out to a pool of
// service bundles through the OSGi registry, aggregate the responses,
// and keep going while an administrator churns tenants underneath them
// (bundle kill + fresh reinstall, the §4.3 response loop). Legs that
// land on a saturated queue are rejected fail-fast; legs in flight to
// a killed service fail and surface to the aggregator as cascading
// timeouts rather than wedging the mesh.
package mesh

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/osgi"
	"ijvm/internal/rpc"
	"ijvm/internal/syslib"
	"ijvm/internal/workloads"
)

// Config sizes one mesh run.
type Config struct {
	// Services is the number of service bundles registered under the
	// fan-out prefix; every request produces one leg per service.
	Services int
	// Frontends is the number of concurrent caller isolates.
	Frontends int
	// Requests is the number of fan-out requests each frontend issues.
	Requests int
	// QueueDepth bounds each link's pipelining window (backpressure).
	QueueDepth int
	// PayloadLen selects the call shape: 0 sends scalar fstatic(x)
	// calls with a checkable x+1 result; >0 sends an Object[] payload
	// of that length through the stateful drag entry point.
	PayloadLen int
	// ZeroCopy freezes the payload arrays so the copier shares them
	// across isolates instead of deep-copying per leg.
	ZeroCopy bool
	// ChurnEvery kills and reinstalls one service bundle each time the
	// mesh completes that many requests (0 disables churn).
	ChurnEvery int
	// Retry makes frontends retry legs refused by transient
	// backpressure (saturation, governor throttles) with jittered
	// backoff instead of counting them rejected: pressure degrades to
	// latency, not errors.
	Retry bool
}

func (c *Config) fill() {
	if c.Services <= 0 {
		c.Services = 4
	}
	if c.Frontends <= 0 {
		c.Frontends = 4
	}
	if c.Requests <= 0 {
		c.Requests = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
}

// Result aggregates one run. Legs = Completed + Failed + Rejected.
type Result struct {
	Requests  int   // fan-out requests issued (Frontends * Requests)
	Completed int64 // legs that returned a value
	Failed    int64 // legs lost to kills, closed links, budgets
	Rejected  int64 // legs refused fail-fast by queue backpressure
	Retried   int64 // legs that went through the backoff-retry path
	Churns    int   // kill + reinstall cycles performed
	Checksum  int64 // sum of completed scalar results
	Wall      time.Duration
	P50, P99  time.Duration // per-request fan-out + aggregate latency
	// Throughput is completed legs per second of wall time.
	Throughput float64
}

func (r *Result) String() string {
	return fmt.Sprintf("mesh: %d req, %d ok / %d failed / %d rejected / %d retried legs, %d churns, p50=%s p99=%s, %.0f legs/s",
		r.Requests, r.Completed, r.Failed, r.Rejected, r.Retried, r.Churns, r.P50, r.P99, r.Throughput)
}

const prefix = "mesh/svc/"

func serviceName(slot int) string { return fmt.Sprintf("%s%02d", prefix, slot) }

// Run executes the workload on a fresh isolated-mode VM and returns the
// aggregate. It errors on setup failure or on a completed leg carrying
// a wrong scalar result — lost legs under churn are data, not errors.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated})
	syslib.MustInstall(vm)
	fw, err := osgi.NewFramework(vm)
	if err != nil {
		return nil, err
	}
	hub := rpc.NewHub(vm)
	defer hub.Close()
	reg := fw.Registry()

	// Service pool: one bundle per slot, its Service instance published
	// under a generation-independent registry name so reinstalls slide
	// back under the same fan-out prefix.
	bundles := make([]*osgi.Bundle, cfg.Services)
	gen := 0
	install := func(slot int) error {
		name := fmt.Sprintf("mesh-svc-%d-g%d", slot, gen)
		b, err := fw.Install(osgi.Manifest{Name: name, Version: "1.0.0"}, workloads.ServiceClasses())
		if err != nil {
			return err
		}
		svcClass, err := b.Loader().Lookup(workloads.ServiceClassName)
		if err != nil {
			return err
		}
		makeM, err := svcClass.LookupMethod("make", "()Ljava/lang/Object;")
		if err != nil {
			return err
		}
		v, th, err := vm.CallRoot(b.Isolate(), makeM, nil, 10_000_000)
		if err != nil {
			return err
		}
		if th.Failure() != nil {
			return fmt.Errorf("mesh: make service: %s", th.FailureString())
		}
		// Register pins the instance before any GC can run: inside a
		// hub.Sync window (churn) collections are excluded, and during
		// setup no other mutator exists yet.
		if err := reg.Register(serviceName(slot), v.R, b); err != nil {
			return err
		}
		bundles[slot] = b
		return nil
	}
	for slot := 0; slot < cfg.Services; slot++ {
		if err := install(slot); err != nil {
			return nil, err
		}
		gen++
	}

	// Frontends: plain caller isolates; their traffic is host-driven.
	method, desc := "fstatic", "(I)I"
	if cfg.PayloadLen > 0 {
		method, desc = "drag", "(Ljava/lang/Object;)I"
	}
	objClass, err := vm.Registry().Bootstrap().Lookup(interp.ClassObject)
	if err != nil {
		return nil, err
	}
	type frontend struct {
		iso     *core.Isolate
		roots   *interp.HostRoots
		payload heap.Value
	}
	fronts := make([]*frontend, cfg.Frontends)
	for i := range fronts {
		l := vm.Registry().NewLoader(fmt.Sprintf("mesh-frontend-%d", i))
		iso, err := vm.World().NewIsolate(fmt.Sprintf("mesh-frontend-%d", i), l)
		if err != nil {
			return nil, err
		}
		f := &frontend{iso: iso, roots: vm.NewHostRoots(iso)}
		defer f.roots.Release()
		if cfg.PayloadLen > 0 {
			arr, err := vm.AllocArrayRooted(f.roots, objClass, cfg.PayloadLen, iso)
			if err != nil {
				return nil, err
			}
			for j := range arr.Elems {
				arr.Elems[j] = heap.IntVal(int64(j))
			}
			if cfg.ZeroCopy {
				if err := heap.Freeze(arr); err != nil {
					return nil, err
				}
			}
			f.payload = heap.RefVal(arr)
		}
		fronts[i] = f
	}
	opts := rpc.LinkOptions{QueueDepth: cfg.QueueDepth, ZeroCopy: cfg.ZeroCopy}

	var (
		completed, failed, rejected, retried, checksum, doneReqs int64
		mismatch                                                 atomic.Value // first wrong-result error
		latMu                                                    sync.Mutex
		lats                                                     []time.Duration
	)
	classify := func(err error) {
		if errors.Is(err, rpc.ErrSaturated) {
			atomic.AddInt64(&rejected, 1)
		} else {
			atomic.AddInt64(&failed, 1)
		}
	}

	trafficDone := make(chan struct{})
	churnDone := make(chan struct{})
	churns := 0
	if cfg.ChurnEvery > 0 {
		go func() {
			defer close(churnDone)
			target := int64(cfg.ChurnEvery)
			for {
				for atomic.LoadInt64(&doneReqs) < target {
					select {
					case <-trafficDone:
						return
					case <-time.After(200 * time.Microsecond):
					}
				}
				slot := churns % cfg.Services
				// All administration — the kill, the reinstall's guest
				// constructor — runs inside one Sync window so it lands
				// between dispatch slices, never beside them.
				hub.Sync(func() {
					if err := fw.KillBundle(bundles[slot]); err != nil {
						return
					}
					gen++
					_ = install(slot) // a failed reinstall just shrinks the mesh
				})
				churns++
				target += int64(cfg.ChurnEvery)
			}
		}()
	} else {
		close(churnDone)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for fi, f := range fronts {
		wg.Add(1)
		go func(fi int, f *frontend) {
			defer wg.Done()
			var bo *rpc.Backoff
			if cfg.Retry {
				bo = &rpc.Backoff{Seed: uint64(fi) + 1}
			}
			// retryLeg re-submits one service's leg under backoff: the
			// full service name is a single-match fan-out prefix.
			retryLeg := func(service string, args []heap.Value) (heap.Value, error) {
				var v heap.Value
				err := bo.Do(func() error {
					legs := reg.FanOut(hub, f.iso, service, method, desc, opts, args)
					if len(legs) == 0 {
						return rpc.ErrLinkClosed // churned away mid-retry
					}
					if legs[0].Err != nil {
						return legs[0].Err
					}
					v2, werr := legs[0].Fut.Wait()
					legs[0].Fut.Release()
					v = v2
					return werr
				})
				return v, err
			}
			myLats := make([]time.Duration, 0, cfg.Requests)
			for r := 0; r < cfg.Requests; r++ {
				x := int64(r % 1000)
				var args []heap.Value
				if cfg.PayloadLen > 0 {
					args = []heap.Value{f.payload}
				} else {
					args = []heap.Value{heap.IntVal(x)}
				}
				t0 := time.Now()
				for _, leg := range reg.FanOut(hub, f.iso, prefix, method, desc, opts, args) {
					var v heap.Value
					err := leg.Err
					if err == nil {
						v, err = leg.Fut.Wait()
						leg.Fut.Release()
					}
					if err != nil && bo != nil && rpc.Retryable(err) {
						atomic.AddInt64(&retried, 1)
						v, err = retryLeg(leg.Service, args)
					}
					if err != nil {
						classify(err)
						continue
					}
					atomic.AddInt64(&completed, 1)
					atomic.AddInt64(&checksum, v.I)
					if cfg.PayloadLen == 0 && v.I != x+1 {
						mismatch.Store(fmt.Errorf("mesh: %s returned %d for fstatic(%d)", leg.Service, v.I, x))
					}
				}
				myLats = append(myLats, time.Since(t0))
				atomic.AddInt64(&doneReqs, 1)
			}
			latMu.Lock()
			lats = append(lats, myLats...)
			latMu.Unlock()
		}(fi, f)
	}
	wg.Wait()
	close(trafficDone)
	<-churnDone
	wall := time.Since(start)

	// Teardown: unregistering closes the cached fan-out links.
	for slot := 0; slot < cfg.Services; slot++ {
		reg.Unregister(serviceName(slot))
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	res := &Result{
		Requests:  cfg.Frontends * cfg.Requests,
		Completed: completed,
		Failed:    failed,
		Rejected:  rejected,
		Retried:   retried,
		Churns:    churns,
		Checksum:  checksum,
		Wall:      wall,
		P50:       pct(0.50),
		P99:       pct(0.99),
	}
	if wall > 0 {
		res.Throughput = float64(completed) / wall.Seconds()
	}
	if err, ok := mismatch.Load().(error); ok {
		return res, err
	}
	return res, nil
}
