package mesh_test

import (
	"testing"

	"ijvm/internal/workloads/mesh"
)

// A quiet mesh loses nothing: every leg completes and the aggregate
// checksum is exactly Σ over requests of Services*(x+1).
func TestMeshNoChurnIsLossless(t *testing.T) {
	cfg := mesh.Config{Services: 3, Frontends: 2, Requests: 20, QueueDepth: 8}
	res, err := mesh.Run(cfg)
	if err != nil {
		t.Fatalf("mesh: %v (%s)", err, res)
	}
	wantLegs := int64(cfg.Frontends * cfg.Requests * cfg.Services)
	if res.Completed != wantLegs || res.Failed != 0 || res.Rejected != 0 {
		t.Fatalf("lossy quiet mesh: %s", res)
	}
	var want int64
	for r := 0; r < cfg.Requests; r++ {
		want += int64(cfg.Frontends*cfg.Services) * int64(r%1000+1)
	}
	if res.Checksum != want {
		t.Fatalf("checksum %d, want %d (%s)", res.Checksum, want, res)
	}
}

// Under tenant churn the mesh keeps serving: kills surface as failed
// legs (cascading timeouts), never as wrong answers or a wedged run.
func TestMeshSurvivesChurn(t *testing.T) {
	res, err := mesh.Run(mesh.Config{
		Services: 3, Frontends: 3, Requests: 25, QueueDepth: 8, ChurnEvery: 10,
	})
	if err != nil {
		t.Fatalf("mesh: %v (%s)", err, res)
	}
	if res.Churns == 0 {
		t.Fatalf("churn never fired: %s", res)
	}
	if res.Completed == 0 {
		t.Fatalf("no leg completed under churn: %s", res)
	}
	t.Logf("%s", res)
}

// Frozen-payload runs share the argument graph instead of copying it;
// the run must stay lossless and the payload reusable across all legs.
func TestMeshZeroCopyPayload(t *testing.T) {
	cfg := mesh.Config{Services: 2, Frontends: 2, Requests: 15, QueueDepth: 8,
		PayloadLen: 6, ZeroCopy: true}
	res, err := mesh.Run(cfg)
	if err != nil {
		t.Fatalf("mesh: %v (%s)", err, res)
	}
	wantLegs := int64(cfg.Frontends * cfg.Requests * cfg.Services)
	if res.Completed != wantLegs || res.Failed != 0 || res.Rejected != 0 {
		t.Fatalf("lossy zero-copy mesh: %s", res)
	}
}
