// Package workloads defines the benchmark programs of the evaluation:
// the four micro-benchmarks of Figure 1 (intra-isolate call, inter-isolate
// call, object allocation, static variable access), the seven SPEC
// JVM98-analogue macro workloads of Figure 2, and the service pair used by
// Table 1 and the paint demo.
package workloads

import (
	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
)

// Micro-benchmark driver convention: a static method "run(I)I" performing
// n iterations of the measured operation and returning a checksum.
const (
	// MicroDriverMethod is the driver entry point name.
	MicroDriverMethod = "run"
	// MicroDriverDesc is the driver descriptor.
	MicroDriverDesc = "(I)I"
)

// ServiceClassName is the callee service used by the inter-isolate micro
// benchmark, Table 1 and the paint demo.
const ServiceClassName = "micro/callee/Service"

// ServiceClasses builds the callee bundle: a trivial service whose inc
// method is the measured inter-bundle call target.
func ServiceClasses() []*classfile.Class {
	svc := classfile.NewClass(ServiceClassName).
		Field("total", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		// inc(x): total += x; return total — one field read/write, as in
		// the paint demo's shape-drag callback.
		Method("inc", "(I)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).ALoad(0).GetField(ServiceClassName, "total").ILoad(1).IAdd().
				PutField(ServiceClassName, "total")
			a.ALoad(0).GetField(ServiceClassName, "total").IReturn()
		}).
		// fstatic(x): the static-call variant.
		Method("fstatic", "(I)I", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(1).IAdd().IReturn()
		}).
		// drag(event): the paint-demo shaped call — the drawing area
		// hands the shape an event object on every drag step (§4.1). A
		// direct call shares the event by reference; the RPC baselines
		// must copy or serialize it.
		Method("drag", "(Ljava/lang/Object;)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).ALoad(0).GetField(ServiceClassName, "total").Const(1).IAdd().
				PutField(ServiceClassName, "total")
			a.ALoad(1).ArrayLength().ALoad(0).GetField(ServiceClassName, "total").IAdd().IReturn()
		}).
		// make(): guest-side factory so harnesses can construct the
		// instance inside the callee's isolate.
		Method("make", "()Ljava/lang/Object;", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New(ServiceClassName).Dup().
				InvokeSpecial(ServiceClassName, classfile.InitName, "()V").AReturn()
		}).MustBuild()
	return []*classfile.Class{svc}
}

// CallerClassName is the driver class of the inter-isolate call bench.
const CallerClassName = "micro/caller/Driver"

// CallerClasses builds the caller bundle: run(n) performs n virtual calls
// on a Service instance reachable through the static "svc" field (set up
// by the harness or by calling bind()).
func CallerClasses() []*classfile.Class {
	driver := classfile.NewClass(CallerClassName).
		StaticField("svc", classfile.KindRef).
		// bind(s): installs the callee service instance.
		Method("bind", "(Ljava/lang/Object;)V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).CheckCast(ServiceClassName).PutStatic(CallerClassName, "svc").Return()
		}).
		// run(n): for (i=0..n) sum = svc.inc(1) — each call migrates the
		// thread into the callee's isolate and back.
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1) // i
			a.Const(0).IStore(2) // sum
			a.GetStatic(CallerClassName, "svc").AStore(3)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ALoad(3).Const(1).InvokeVirtual(ServiceClassName, "inc", "(I)I").IStore(2)
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).
		// rundrag(n): the Table 1 loop — n drag calls passing an event
		// object across the bundle boundary by reference.
		Method(DragDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(8).NewArray("").AStore(3) // event = new Object[8]
			a.GetStatic(CallerClassName, "svc").AStore(4)
			a.Const(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ALoad(4).ALoad(3).InvokeVirtual(ServiceClassName, "drag", "(Ljava/lang/Object;)I").IStore(2)
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	return []*classfile.Class{driver}
}

// DragDriverMethod is the Table 1 drag-loop entry point present on both
// the inter-isolate caller and the intra-isolate driver.
const DragDriverMethod = "rundrag"

// IntraClassName is the driver of the intra-isolate call bench.
const IntraClassName = "micro/intra/Driver"

// IntraCallClasses builds a single bundle whose driver calls a method of
// its own isolate n times — the "two test instructions" overhead case of
// §4.2.
func IntraCallClasses() []*classfile.Class {
	driver := classfile.NewClass(IntraClassName).
		Field("total", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("inc", "(I)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).ALoad(0).GetField(IntraClassName, "total").ILoad(1).IAdd().
				PutField(IntraClassName, "total")
			a.ALoad(0).GetField(IntraClassName, "total").IReturn()
		}).
		Method("drag", "(Ljava/lang/Object;)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).ALoad(0).GetField(IntraClassName, "total").Const(1).IAdd().
				PutField(IntraClassName, "total")
			a.ALoad(1).ArrayLength().ALoad(0).GetField(IntraClassName, "total").IAdd().IReturn()
		}).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New(IntraClassName).Dup().InvokeSpecial(IntraClassName, classfile.InitName, "()V").AStore(3)
			a.Const(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ALoad(3).Const(1).InvokeVirtual(IntraClassName, "inc", "(I)I").IStore(2)
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).
		Method(DragDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.New(IntraClassName).Dup().InvokeSpecial(IntraClassName, classfile.InitName, "()V").AStore(4)
			a.Const(8).NewArray("").AStore(3)
			a.Const(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ALoad(4).ALoad(3).InvokeVirtual(IntraClassName, "drag", "(Ljava/lang/Object;)I").IStore(2)
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	return []*classfile.Class{driver}
}

// AllocClassName is the driver of the object-allocation bench.
const AllocClassName = "micro/alloc/Driver"

// AllocClasses builds the allocation micro benchmark: run(n) allocates n
// java.lang.Object instances (28 bytes each, as in the paper) without
// retaining them.
func AllocClasses() []*classfile.Class {
	driver := classfile.NewClass(AllocClassName).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.New(classfile.ObjectClassName).Pop()
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.ILoad(1).IReturn()
		}).MustBuild()
	return []*classfile.Class{driver}
}

// StaticClassName is the driver of the static-access bench.
const StaticClassName = "micro/statics/Driver"

// StaticAccessClasses builds the static-variable access benchmark: run(n)
// performs n getstatic+putstatic pairs — the task-class-mirror double
// indirection hot path of §3.1.
func StaticAccessClasses() []*classfile.Class {
	driver := classfile.NewClass(StaticClassName).
		StaticField("counter", classfile.KindInt).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.GetStatic(StaticClassName, "counter").Const(1).IAdd().PutStatic(StaticClassName, "counter")
			a.IInc(1, 1)
			a.Goto("loop")
			a.Label("done")
			a.GetStatic(StaticClassName, "counter").IReturn()
		}).MustBuild()
	return []*classfile.Class{driver}
}
