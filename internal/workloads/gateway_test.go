package workloads

import "testing"

func TestGatewayModesAgree(t *testing.T) {
	base := GatewayConfig{Sessions: 6, Requests: 8, HeapLimit: 32 << 20}
	var checksums []int64
	var serves []int
	for _, mode := range []GatewayMode{GatewayCold, GatewayClone, GatewayRecycled} {
		cfg := base
		cfg.Mode = mode
		res, err := RunGateway(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Serves == 0 || res.SpawnP50 <= 0 {
			t.Fatalf("%v: degenerate result %+v", mode, res)
		}
		checksums = append(checksums, res.Checksum)
		serves = append(serves, res.Serves-boolToInt(mode == GatewayCold)*cfg.Sessions)
		if mode == GatewayRecycled && res.RecycledIDs != cfg.Sessions {
			t.Fatalf("recycled: want %d freed slots, got %d", cfg.Sessions, res.RecycledIDs)
		}
	}
	// The serve sequences are identical across provisioning strategies
	// (cold additionally serves once during spawn, excluded above), so the
	// checksums and serve counts must agree byte-for-byte.
	for i := 1; i < len(checksums); i++ {
		if checksums[i] != checksums[0] || serves[i] != serves[0] {
			t.Fatalf("mode results diverge: checksums %v serves %v", checksums, serves)
		}
	}
}

func TestGatewayFreezeShared(t *testing.T) {
	res, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: 4, Requests: 4,
		HeapLimit: 32 << 20, FreezeShared: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: 4, Requests: 4, HeapLimit: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != plain.Checksum {
		t.Fatalf("frozen-shared clones diverge: %d vs %d", res.Checksum, plain.Checksum)
	}
}

func TestGatewayInstrLimit(t *testing.T) {
	// Greedy sessions (every 8th, 4x requests) blow a budget sized for
	// normal sessions and get admin-killed early.
	res, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: 16, Requests: 8,
		HeapLimit: 32 << 20, InstrLimit: 8 * 40 * 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LimitKills == 0 {
		t.Fatalf("expected limit kills, got none (serves=%d)", res.Serves)
	}
	if res.LimitKills > res.Sessions {
		t.Fatalf("more kills than sessions: %+v", res)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
