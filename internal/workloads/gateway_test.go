package workloads

import (
	"testing"

	"ijvm/internal/sched"
)

func TestGatewayModesAgree(t *testing.T) {
	base := GatewayConfig{Sessions: 6, Requests: 8, HeapLimit: 32 << 20}
	var checksums []int64
	var serves []int
	for _, mode := range []GatewayMode{GatewayCold, GatewayClone, GatewayRecycled} {
		cfg := base
		cfg.Mode = mode
		res, err := RunGateway(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Serves == 0 || res.SpawnP50 <= 0 {
			t.Fatalf("%v: degenerate result %+v", mode, res)
		}
		checksums = append(checksums, res.Checksum)
		serves = append(serves, res.Serves-boolToInt(mode == GatewayCold)*cfg.Sessions)
		if mode == GatewayRecycled && res.RecycledIDs != cfg.Sessions {
			t.Fatalf("recycled: want %d freed slots, got %d", cfg.Sessions, res.RecycledIDs)
		}
	}
	// The serve sequences are identical across provisioning strategies
	// (cold additionally serves once during spawn, excluded above), so the
	// checksums and serve counts must agree byte-for-byte.
	for i := 1; i < len(checksums); i++ {
		if checksums[i] != checksums[0] || serves[i] != serves[0] {
			t.Fatalf("mode results diverge: checksums %v serves %v", checksums, serves)
		}
	}
}

func TestGatewayFreezeShared(t *testing.T) {
	res, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: 4, Requests: 4,
		HeapLimit: 32 << 20, FreezeShared: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: 4, Requests: 4, HeapLimit: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != plain.Checksum {
		t.Fatalf("frozen-shared clones diverge: %d vs %d", res.Checksum, plain.Checksum)
	}
}

func TestGatewayInstrLimit(t *testing.T) {
	// Greedy sessions (every 8th, 4x requests) blow a budget sized for
	// normal sessions and get admin-killed early.
	res, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: 16, Requests: 8,
		HeapLimit: 32 << 20, InstrLimit: 8 * 40 * 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LimitKills == 0 {
		t.Fatalf("expected limit kills, got none (serves=%d)", res.Serves)
	}
	if res.LimitKills > res.Sessions {
		t.Fatalf("more kills than sessions: %+v", res)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestGatewayConcurrentChecksumAgreesWithSequential is the differential
// oracle for the concurrent path: a pool-mode concurrent run serves the
// same request-argument sequence as the sequential clone-mode gateway,
// so the checksums must agree byte-for-byte — concurrency, pool
// recycling, and refill ordering must not change results. The cold
// concurrent leg must agree too (its warm serves are counted but, like
// the sequential cold leg, excluded from the checksum).
func TestGatewayConcurrentChecksumAgreesWithSequential(t *testing.T) {
	const tenants, perTenant, requests = 4, 2, 6
	seq, err := RunGateway(GatewayConfig{
		Mode: GatewayClone, Sessions: tenants * perTenant, Requests: requests,
		HeapLimit: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, usePool := range []bool{true, false} {
		res, err := RunGatewayConcurrent(GatewayConcurrentConfig{
			Tenants: tenants, SessionsPerTenant: perTenant, Requests: requests,
			UsePool: usePool,
		})
		if err != nil {
			t.Fatalf("%s: %v", res.Mode, err)
		}
		if res.Checksum != seq.Checksum {
			t.Fatalf("%s checksum %d != sequential clone checksum %d", res.Mode, res.Checksum, seq.Checksum)
		}
		wantServes := tenants * perTenant * requests
		if !usePool {
			wantServes += tenants * perTenant // cold warm serves
		}
		if res.Serves != wantServes {
			t.Fatalf("%s serves %d, want %d", res.Mode, res.Serves, wantServes)
		}
		// Pool spawn can legitimately be 0 ticks (a warm Acquire executes
		// no guest instructions); cold spawn always pays clinit ticks.
		if res.ServeP99Ticks <= 0 || (!usePool && res.SpawnP99Ticks <= 0) {
			t.Fatalf("%s: degenerate tick percentiles %+v", res.Mode, res)
		}
		if usePool && res.Recycled < int64(tenants*perTenant) {
			t.Fatalf("pool recycled %d sessions, want >= %d", res.Recycled, tenants*perTenant)
		}
	}
}

// TestGatewayConcurrentPoolSpawnSpeedup is the acceptance gate: with 64
// in-flight tenants, provisioning from a pool sized for the load must
// put concurrent spawn p99 (virtual ticks) at least 5x under concurrent
// cold provisioning, which pays define+link+clinit per session while
// every other tenant's instructions advance the clock.
func TestGatewayConcurrentPoolSpawnSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("64-tenant concurrent run in -short mode")
	}
	const tenants = 64
	cold, err := RunGatewayConcurrent(GatewayConcurrentConfig{
		Tenants: tenants, Requests: 2, HeapLimit: 128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := RunGatewayConcurrent(GatewayConcurrentConfig{
		Tenants: tenants, Requests: 2, HeapLimit: 128 << 20,
		UsePool: true, PoolCapacity: tenants,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.SpawnP99Ticks <= 0 {
		t.Fatalf("degenerate cold spawn ticks: %+v", cold)
	}
	// A warm Acquire can be 0 ticks; floor it at 1 so the ratio is
	// well-defined.
	p99 := pool.SpawnP99Ticks
	if p99 < 1 {
		p99 = 1
	}
	if p99*5 > cold.SpawnP99Ticks {
		t.Fatalf("pool spawn p99 %d ticks not 5x under cold %d ticks",
			pool.SpawnP99Ticks, cold.SpawnP99Ticks)
	}
	if pool.Checksum != cold.Checksum {
		t.Fatalf("pool checksum %d != cold checksum %d", pool.Checksum, cold.Checksum)
	}
}

// TestGatewayConcurrentGovernedSheds: throttled abusers hammering the
// admission edge are refused with core.ErrThrottled before any warm
// slot is spent, while the tenants' sessions complete with the right
// results. The governor tuning mirrors the benchtable QoS legs: small
// windows and low thresholds so escalation lands within a short run.
func TestGatewayConcurrentGovernedSheds(t *testing.T) {
	res, err := RunGatewayConcurrent(GatewayConcurrentConfig{
		Tenants: 4, SessionsPerTenant: 2, Requests: 4,
		UsePool: true, Governed: true, Abusers: 2,
		// The TestSLOGovernedUnderAttack tuning: windows small enough that
		// a throttle streak fits in a short run, CPU criterion disabled so
		// only the alloc/sleeper escalation paths fire.
		// The qos_test small-window tuning: most of a gateway run's ticks
		// are host-side warm-up, so windows must fit the scheduler's own
		// instruction budget for a throttle streak to complete. The CPU
		// criterion is disabled (only the alloc path should fire) and the
		// stage-one weight cut is kept gentle so the flood still trips the
		// alloc criterion on the way to throttle.
		Governor: &sched.GovernorConfig{
			WindowInstrs:        4096,
			CPUFactor:           100,
			SleepersMax:         8,
			AllocBytesPerWindow: 8 << 10,
			DeprioritizeAfter:   2,
			ThrottleAfter:       3,
			DeprioritizeDivisor: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("governed run shed no abuser admissions: %+v", res)
	}
	if res.Serves != 4*2*4 {
		t.Fatalf("governed tenants served %d, want %d", res.Serves, 4*2*4)
	}
	if res.Governor.Throttles == 0 {
		t.Fatalf("governor never reached the throttle stage: %+v", res.Governor)
	}
}
