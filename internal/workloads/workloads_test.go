package workloads_test

import (
	"testing"

	"ijvm/internal/core"
	"ijvm/internal/workloads"
)

// TestMicroRunnersBothModes verifies each micro benchmark runs to
// completion in both modes with matching checksums (mode must not change
// observable semantics).
func TestMicroRunnersBothModes(t *testing.T) {
	const n = 1000
	for _, kind := range workloads.MicroKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			var results [2]int64
			for i, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
				r, err := workloads.NewMicroRunner(mode, kind, n)
				if err != nil {
					t.Fatalf("%v runner: %v", mode, err)
				}
				v, err := r.Run()
				if err != nil {
					t.Fatalf("%v run: %v", mode, err)
				}
				results[i] = v
			}
			if results[0] != results[1] {
				t.Fatalf("checksum differs between modes: shared=%d isolated=%d", results[0], results[1])
			}
		})
	}
}

// TestInterIsolateCallsCounted verifies the inter-isolate benchmark really
// migrates threads n times.
func TestInterIsolateCallsCounted(t *testing.T) {
	const n = 500
	r, err := workloads.NewMicroRunner(core.ModeIsolated, workloads.MicroInter, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	out := r.Isolate().Account().InterBundleCallsOut.Load()
	if out < n {
		t.Fatalf("InterBundleCallsOut = %d, want >= %d", out, n)
	}
}

// TestSpecWorkloadsDeterministicAcrossModes runs every SPEC analogue in
// both modes with a reduced iteration count and checks checksums match and
// are non-trivial.
func TestSpecWorkloadsDeterministicAcrossModes(t *testing.T) {
	for _, spec := range workloads.SpecJVM98() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			n := spec.DefaultN / 10
			if n < 2 {
				n = 2
			}
			var results [2]int64
			for i, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
				r, err := workloads.NewSpecRunner(mode, spec, n)
				if err != nil {
					t.Fatalf("%v runner: %v", mode, err)
				}
				v, err := r.Run()
				if err != nil {
					t.Fatalf("%v run: %v", mode, err)
				}
				results[i] = v
			}
			if results[0] != results[1] {
				t.Fatalf("checksum differs: shared=%d isolated=%d", results[0], results[1])
			}
			if results[0] == 0 && spec.Name != "mpegaudio" {
				t.Fatalf("suspicious zero checksum for %s", spec.Name)
			}
		})
	}
}

// TestSpecRunnerRepeatable ensures re-running the same runner is
// deterministic (the VM clock advances but results must not change).
func TestSpecRunnerRepeatable(t *testing.T) {
	spec := workloads.SpecByName("compress")
	if spec == nil {
		t.Fatal("compress spec missing")
	}
	r, err := workloads.NewSpecRunner(core.ModeIsolated, *spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("non-deterministic workload: %d then %d", first, second)
	}
}
