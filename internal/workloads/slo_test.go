package workloads_test

import (
	"testing"

	"ijvm/internal/sched"
	"ijvm/internal/workloads"
)

// TestSLONoAttackBaseline: with no adversaries every tenant request
// completes with the right result and all measured CPU is tenant CPU.
func TestSLONoAttackBaseline(t *testing.T) {
	res, err := workloads.RunSLO(workloads.SLOConfig{
		Tenants:           2,
		RequestsPerTenant: 8,
		WorkIters:         1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != int64(res.Requests) {
		t.Fatalf("baseline lost requests: %s", res)
	}
	if res.TenantInstructions == 0 || res.AttackerInstructions != 0 {
		t.Fatalf("instruction split wrong: %s", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("percentiles malformed: %s", res)
	}
}

// TestSLOGovernedUnderAttack is the governed smoke leg: the full
// attacker suite runs beside two tenants, yet every tenant request
// completes, and the governor escalates the monitor hog at least to the
// throttle stage (its sleeper gauge never calms down).
//
// The leg ends when the tenants finish, so its total instruction budget
// shrinks under -race (the attackers get fewer wall-seconds of CPU).
// The window is therefore sized well below the leg's tenant-bound
// instruction total so a throttle streak always fits, and the CPU
// criterion is disabled outright (CPUFactor 100): this test asserts the
// sleeper/alloc escalation paths, and with a window this small the CPU
// path could misfire on a bursty tenant (see the README tuning note —
// the latency acceptance tests keep the big window instead).
func TestSLOGovernedUnderAttack(t *testing.T) {
	res, err := workloads.RunSLO(workloads.SLOConfig{
		Tenants:           2,
		RequestsPerTenant: 8,
		WorkIters:         1500,
		Attackers:         workloads.AllAttackers(),
		Governed:          true,
		Governor: &sched.GovernorConfig{
			WindowInstrs:        32768,
			CPUFactor:           100,
			SleepersMax:         8,
			AllocBytesPerWindow: 32 << 10,
			DeprioritizeAfter:   2,
			ThrottleAfter:       3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != int64(res.Requests) {
		t.Fatalf("governed leg lost requests: %s", res)
	}
	if len(res.Attackers) != len(workloads.AllAttackers()) {
		t.Fatalf("attacker fates missing: %+v", res.Attackers)
	}
	var hog workloads.AttackerFate
	for _, f := range res.Attackers {
		if f.Kind == workloads.AttackMonitorHog {
			hog = f
		}
	}
	if hog.Stage < sched.StageThrottled {
		t.Fatalf("monitor hog reached only %v, want at least throttled; governor %+v",
			hog.Stage, res.Governor)
	}
	if res.Governor.Ticks == 0 || res.Governor.Deprioritizations == 0 || res.Governor.Throttles == 0 {
		t.Fatalf("governor never intervened: %+v", res.Governor)
	}
}

// TestSLOGovernedTailWithinBaseline is the graceful-degradation
// acceptance gate: with one worker (so the virtual clock advances only
// by scheduler-chosen interleaving, independent of host CPU count), the
// governed proportional leg's p99 under a CPU-dominance attack stays
// within 3x of the no-attack baseline.
func TestSLOGovernedTailWithinBaseline(t *testing.T) {
	leg := func(attackers []workloads.AttackerKind) *workloads.SLOResult {
		t.Helper()
		res, err := workloads.RunSLO(workloads.SLOConfig{
			Tenants:           2,
			RequestsPerTenant: 10,
			WorkIters:         2000,
			Workers:           1,
			Attackers:         attackers,
			Governed:          true,
			Governor:          &sched.GovernorConfig{WindowInstrs: 131072},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("leg lost requests: %s", res)
		}
		return res
	}
	baseline := leg(nil)
	attacked := leg([]workloads.AttackerKind{workloads.AttackSpin})
	if attacked.P99 > 3*baseline.P99 {
		t.Fatalf("governed p99 %s exceeds 3x no-attack baseline %s",
			workloads.VirtualMS(attacked.P99), workloads.VirtualMS(baseline.P99))
	}
}

// TestSLORoundRobinUngoverned pins the baseline leg the benchmarks
// compare against: round-robin without a governor still completes all
// tenant requests (the attack degrades latency, not correctness).
func TestSLORoundRobinUngoverned(t *testing.T) {
	res, err := workloads.RunSLO(workloads.SLOConfig{
		Tenants:           2,
		RequestsPerTenant: 6,
		WorkIters:         1500,
		Attackers:         []workloads.AttackerKind{workloads.AttackSpin},
		RoundRobin:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != int64(res.Requests) {
		t.Fatalf("round-robin leg lost requests: %s", res)
	}
	if res.AttackerInstructions == 0 {
		t.Fatalf("spin attacker never ran: %s", res)
	}
	for _, f := range res.Attackers {
		if f.Stage != sched.StageNormal || f.Killed {
			t.Fatalf("ungoverned leg intervened: %+v", f)
		}
	}
}
