package workloads

import (
	"fmt"
	"sort"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// GatewayMode selects the tenant provisioning strategy for the serving
// workload: cold spawns (define + link + run the heavy clinit per tenant),
// snapshot clones (materialize a warmed isolate from a captured template),
// or clones recycled through the isolate free pool (kill, sweep, free,
// reuse ID/loader/thread slots).
type GatewayMode uint8

// Gateway provisioning modes.
const (
	GatewayCold GatewayMode = iota + 1
	GatewayClone
	GatewayRecycled
)

// String names the mode for tables and JSON keys.
func (m GatewayMode) String() string {
	switch m {
	case GatewayCold:
		return "cold"
	case GatewayClone:
		return "clone"
	case GatewayRecycled:
		return "recycled"
	default:
		return "invalid"
	}
}

// GatewayAppClass is the tenant application class name.
const GatewayAppClass = "gw/App"

// gatewayWarmIters sizes the clinit warm loop; it is what makes a cold
// spawn expensive and a snapshot clone worth taking.
const gatewayWarmIters = 20000

// gatewayRoutes are interned per tenant at warm-up; clones share them
// copy-on-write through the snapshot's string pool.
var gatewayRoutes = []string{
	"gw/route/index", "gw/route/assets", "gw/route/api/v1", "gw/route/admin",
}

// GatewayClasses builds a fresh (unlinked) copy of the tenant
// application: a heavy <clinit> that fills a 256-entry route table,
// interns the route strings, and runs a warm loop; and a light serve(I)I
// handler that walks the table and bumps a private hit counter.
func GatewayClasses() []*classfile.Class {
	app := classfile.NewClass(GatewayAppClass).
		StaticField("table", classfile.KindRef).
		StaticField("routes", classfile.KindRef).
		StaticField("hits", classfile.KindInt).
		StaticField("seed", classfile.KindInt).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// table = new int[256]; table[i] = i*i + 7
			a.Const(256).NewArray("").PutStatic(GatewayAppClass, "table")
			a.Const(0).IStore(0)
			a.Label("tloop")
			a.ILoad(0).Const(256).IfICmpGe("tdone")
			a.GetStatic(GatewayAppClass, "table").ILoad(0)
			a.ILoad(0).ILoad(0).IMul().Const(7).IAdd()
			a.ArrayStore()
			a.IInc(0, 1).Goto("tloop")
			a.Label("tdone")
			// routes = { interned literals }
			a.Const(int64(len(gatewayRoutes))).NewArray("").PutStatic(GatewayAppClass, "routes")
			for k, s := range gatewayRoutes {
				a.GetStatic(GatewayAppClass, "routes").Const(int64(k)).Str(s).ArrayStore()
			}
			// warm loop: seed = fold of table over gatewayWarmIters steps
			a.Const(0).IStore(1)
			a.Const(0).IStore(0)
			a.Label("wloop")
			a.ILoad(0).Const(gatewayWarmIters).IfICmpGe("wdone")
			a.ILoad(1)
			a.GetStatic(GatewayAppClass, "table").ILoad(0).Const(255).IAnd().ArrayLoad()
			a.IAdd().Const(0x7FFFFF).IAnd().IStore(1)
			a.IInc(0, 1).Goto("wloop")
			a.Label("wdone")
			a.ILoad(1).PutStatic(GatewayAppClass, "seed")
			a.Return()
		}).
		Method("serve", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			// x = arg; 32 table-walk steps; one small garbage allocation;
			// hits++; return x + hits (tenant-private state feeds the result).
			a.ILoad(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("sloop")
			a.ILoad(2).Const(32).IfICmpGe("sdone")
			a.ILoad(1)
			a.GetStatic(GatewayAppClass, "table").ILoad(1).Const(255).IAnd().ArrayLoad()
			a.IAdd().Const(1).IAdd().Const(0x7FFFFF).IAnd().IStore(1)
			a.IInc(2, 1).Goto("sloop")
			a.Label("sdone")
			a.Const(8).NewArray("").Pop()
			a.GetStatic(GatewayAppClass, "hits").Const(1).IAdd().PutStatic(GatewayAppClass, "hits")
			a.ILoad(1).GetStatic(GatewayAppClass, "hits").IAdd().IReturn()
		}).
		MustBuild()
	return []*classfile.Class{app}
}

// GatewayConfig parameterizes one serving run.
type GatewayConfig struct {
	Mode     GatewayMode
	Sessions int // tenants spawned sequentially (spawn/serve/kill churn)
	Requests int // serves per tenant session
	// HeapLimit bounds the VM heap (0 = 64 MiB).
	HeapLimit int64
	// FreezeShared also shares frozen warmed arrays between clones
	// (clone/recycled modes).
	FreezeShared bool
	// InstrLimit, when > 0, is the per-tenant instruction budget; a
	// session whose account exceeds it mid-serve is admin-killed early
	// (counted in LimitKills). Every 8th session is "greedy" (4x the
	// requests) so a budget between normal and greedy consumption
	// exercises enforcement deterministically.
	InstrLimit int64
}

// GatewayResult reports spawn latency and steady-state serving throughput.
type GatewayResult struct {
	Mode     string        `json:"mode"`
	Sessions int           `json:"sessions"`
	Serves   int           `json:"serves"`
	Checksum int64         `json:"checksum"`
	SpawnP50 time.Duration `json:"spawn_p50_ns"`
	SpawnP99 time.Duration `json:"spawn_p99_ns"`
	SpawnMax time.Duration `json:"spawn_max_ns"`
	// SpawnTotal is the summed tenant provisioning time.
	SpawnTotal time.Duration `json:"spawn_total_ns"`
	// ServeDuration is the summed in-session serving time.
	ServeDuration time.Duration `json:"serve_total_ns"`
	ServesPerSec  float64       `json:"serves_per_sec"`
	// RecycledIDs counts isolate slots returned to (and reused from) the
	// free pool (recycled mode only).
	RecycledIDs int `json:"recycled_ids"`
	// LimitKills counts tenants admin-killed for exceeding InstrLimit.
	LimitKills int `json:"limit_kills"`
	// GCs is the collector activation count across the run.
	GCs int64 `json:"gcs"`
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// gatewayVM builds the serving VM with a runtime Isolate0 (the gateway
// host: admin kills and GC triggers are charged to it).
func gatewayVM(cfg GatewayConfig) (*interp.VM, *core.Isolate, error) {
	limit := cfg.HeapLimit
	if limit <= 0 {
		limit = 64 << 20
	}
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: limit})
	if err := syslib.Install(vm); err != nil {
		return nil, nil, err
	}
	host, err := vm.World().NewIsolate("gateway", vm.Registry().NewLoader("gateway"))
	if err != nil {
		return nil, nil, err
	}
	return vm, host, nil
}

// RunGateway executes one serving run: cfg.Sessions sequential tenant
// sessions, each provisioned per cfg.Mode, served cfg.Requests times, then
// killed and swept (recycled mode additionally frees the isolate slot back
// to the pool). Spawn latencies are wall-clock per session; the serve
// window is timed separately for steady-state throughput.
func RunGateway(cfg GatewayConfig) (GatewayResult, error) {
	if cfg.Sessions <= 0 || cfg.Requests <= 0 {
		return GatewayResult{}, fmt.Errorf("gateway: need positive Sessions and Requests")
	}
	vm, host, err := gatewayVM(cfg)
	if err != nil {
		return GatewayResult{}, err
	}
	world := vm.World()
	reg := vm.Registry()

	var (
		snap  *interp.Snapshot
		serve *classfile.Method
	)
	if cfg.Mode == GatewayClone || cfg.Mode == GatewayRecycled {
		// Untimed template setup: a template loader owns the classes, a
		// warmer isolate (kept alive: snapshot pool strings pin to it)
		// runs the heavy clinit once, and the snapshot captures the
		// warmed state.
		tl := reg.NewLoader("gw-template")
		if err := tl.DefineAll(GatewayClasses()); err != nil {
			return GatewayResult{}, err
		}
		wl := reg.NewLoader("gw-warmer")
		warmer, err := world.NewIsolate("gw-warmer", wl)
		if err != nil {
			return GatewayResult{}, err
		}
		wl.AddDelegate(tl)
		app, err := tl.Lookup(GatewayAppClass)
		if err != nil {
			return GatewayResult{}, err
		}
		serve, err = app.LookupMethod("serve", "(I)I")
		if err != nil {
			return GatewayResult{}, err
		}
		if _, th, err := vm.CallRoot(warmer, serve, []heap.Value{heap.IntVal(1)}, 0); err != nil || th.Failure() != nil {
			return GatewayResult{}, fmt.Errorf("gateway warm-up: %v / %s", err, th.FailureString())
		}
		snap, err = vm.CaptureSnapshot(warmer, interp.SnapshotOptions{FreezeShared: cfg.FreezeShared})
		if err != nil {
			return GatewayResult{}, err
		}
		defer snap.Release()
	}

	res := GatewayResult{Mode: cfg.Mode.String(), Sessions: cfg.Sessions}
	spawns := make([]time.Duration, 0, cfg.Sessions)
	var worker *interp.Thread // recycled mode reuses one thread slot

	callServe := func(iso *core.Isolate, m *classfile.Method, arg int64) (heap.Value, error) {
		if cfg.Mode != GatewayRecycled {
			v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 0)
			if err != nil {
				return heap.Value{}, err
			}
			if th.Failure() != nil {
				return heap.Value{}, fmt.Errorf("serve failed: %s", th.FailureString())
			}
			return v, nil
		}
		if worker == nil {
			t, err := vm.SpawnThread("gw-worker", iso, m, []heap.Value{heap.IntVal(arg)})
			if err != nil {
				return heap.Value{}, err
			}
			worker = t
		} else if err := vm.RespawnThread(worker, "gw-worker", iso, m, []heap.Value{heap.IntVal(arg)}); err != nil {
			return heap.Value{}, err
		}
		vm.RunUntil(worker, 0)
		if worker.Err() != nil {
			return heap.Value{}, worker.Err()
		}
		if !worker.Done() {
			return heap.Value{}, fmt.Errorf("serve did not finish")
		}
		if worker.Failure() != nil {
			return heap.Value{}, fmt.Errorf("serve failed: %s", worker.FailureString())
		}
		return worker.Result(), nil
	}

	for s := 0; s < cfg.Sessions; s++ {
		name := fmt.Sprintf("tenant-%d", s)
		var (
			iso     *core.Isolate
			serveM  *classfile.Method
			elapsed time.Duration
		)
		switch cfg.Mode {
		case GatewayCold:
			// The whole provisioning path is the spawn: build, define,
			// link, and run the heavy clinit.
			start := time.Now()
			l := reg.NewLoader(name)
			iso, err = world.NewIsolate(name, l)
			if err != nil {
				return res, err
			}
			if err := l.DefineAll(GatewayClasses()); err != nil {
				return res, err
			}
			app, err := l.Lookup(GatewayAppClass)
			if err != nil {
				return res, err
			}
			serveM, err = app.LookupMethod("serve", "(I)I")
			if err != nil {
				return res, err
			}
			if _, terr := callServe(iso, serveM, 1); terr != nil {
				return res, terr
			}
			elapsed = time.Since(start)
			res.Serves++
		case GatewayClone, GatewayRecycled:
			start := time.Now()
			iso, err = vm.CloneIsolate(snap, name)
			if err != nil {
				return res, err
			}
			elapsed = time.Since(start)
			serveM = serve
		default:
			return res, fmt.Errorf("gateway: unknown mode %d", cfg.Mode)
		}
		spawns = append(spawns, elapsed)
		res.SpawnTotal += elapsed

		requests := cfg.Requests
		greedy := cfg.InstrLimit > 0 && s%8 == 7
		if greedy {
			requests *= 4
		}
		serveStart := time.Now()
		for r := 0; r < requests; r++ {
			v, terr := callServe(iso, serveM, int64(s*1000+r))
			if terr != nil {
				return res, terr
			}
			res.Checksum += v.I
			res.Serves++
			if cfg.InstrLimit > 0 && iso.Account().Numbers().Instructions > cfg.InstrLimit {
				res.LimitKills++
				break
			}
		}
		res.ServeDuration += time.Since(serveStart)

		// Session teardown: admin kill, sweep, and (recycled mode) return
		// the slot to the pool.
		if err := vm.KillIsolate(host, iso); err != nil {
			return res, fmt.Errorf("kill %s: %w", name, err)
		}
		vm.CollectGarbage(host)
		if cfg.Mode == GatewayRecycled && iso.Disposed() {
			if err := vm.FreeIsolate(iso); err != nil {
				return res, fmt.Errorf("free %s: %w", name, err)
			}
			res.RecycledIDs++
		}
	}

	sort.Slice(spawns, func(i, j int) bool { return spawns[i] < spawns[j] })
	res.SpawnP50 = percentile(spawns, 0.50)
	res.SpawnP99 = percentile(spawns, 0.99)
	res.SpawnMax = spawns[len(spawns)-1]
	if res.ServeDuration > 0 {
		res.ServesPerSec = float64(res.Serves) / res.ServeDuration.Seconds()
	}
	res.GCs = vm.Heap().GCCount()
	return res, nil
}
