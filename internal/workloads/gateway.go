package workloads

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/serve"
	"ijvm/internal/syslib"
)

// GatewayMode selects the tenant provisioning strategy for the serving
// workload: cold spawns (define + link + run the heavy clinit per tenant),
// snapshot clones (materialize a warmed isolate from a captured template),
// or clones recycled through the isolate free pool (kill, sweep, free,
// reuse ID/loader/thread slots).
type GatewayMode uint8

// Gateway provisioning modes.
const (
	GatewayCold GatewayMode = iota + 1
	GatewayClone
	GatewayRecycled
)

// String names the mode for tables and JSON keys.
func (m GatewayMode) String() string {
	switch m {
	case GatewayCold:
		return "cold"
	case GatewayClone:
		return "clone"
	case GatewayRecycled:
		return "recycled"
	default:
		return "invalid"
	}
}

// GatewayAppClass is the tenant application class name.
const GatewayAppClass = "gw/App"

// gatewayWarmIters sizes the clinit warm loop; it is what makes a cold
// spawn expensive and a snapshot clone worth taking.
const gatewayWarmIters = 20000

// gatewayRoutes are interned per tenant at warm-up; clones share them
// copy-on-write through the snapshot's string pool.
var gatewayRoutes = []string{
	"gw/route/index", "gw/route/assets", "gw/route/api/v1", "gw/route/admin",
}

// GatewayClasses builds a fresh (unlinked) copy of the tenant
// application: a heavy <clinit> that fills a 256-entry route table,
// interns the route strings, and runs a warm loop; and a light serve(I)I
// handler that walks the table and bumps a private hit counter.
func GatewayClasses() []*classfile.Class {
	app := classfile.NewClass(GatewayAppClass).
		StaticField("table", classfile.KindRef).
		StaticField("routes", classfile.KindRef).
		StaticField("hits", classfile.KindInt).
		StaticField("seed", classfile.KindInt).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// table = new int[256]; table[i] = i*i + 7
			a.Const(256).NewArray("").PutStatic(GatewayAppClass, "table")
			a.Const(0).IStore(0)
			a.Label("tloop")
			a.ILoad(0).Const(256).IfICmpGe("tdone")
			a.GetStatic(GatewayAppClass, "table").ILoad(0)
			a.ILoad(0).ILoad(0).IMul().Const(7).IAdd()
			a.ArrayStore()
			a.IInc(0, 1).Goto("tloop")
			a.Label("tdone")
			// routes = { interned literals }
			a.Const(int64(len(gatewayRoutes))).NewArray("").PutStatic(GatewayAppClass, "routes")
			for k, s := range gatewayRoutes {
				a.GetStatic(GatewayAppClass, "routes").Const(int64(k)).Str(s).ArrayStore()
			}
			// warm loop: seed = fold of table over gatewayWarmIters steps
			a.Const(0).IStore(1)
			a.Const(0).IStore(0)
			a.Label("wloop")
			a.ILoad(0).Const(gatewayWarmIters).IfICmpGe("wdone")
			a.ILoad(1)
			a.GetStatic(GatewayAppClass, "table").ILoad(0).Const(255).IAnd().ArrayLoad()
			a.IAdd().Const(0x7FFFFF).IAnd().IStore(1)
			a.IInc(0, 1).Goto("wloop")
			a.Label("wdone")
			a.ILoad(1).PutStatic(GatewayAppClass, "seed")
			a.Return()
		}).
		Method("serve", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			// x = arg; 32 table-walk steps; one small garbage allocation;
			// hits++; return x + hits (tenant-private state feeds the result).
			a.ILoad(0).IStore(1)
			a.Const(0).IStore(2)
			a.Label("sloop")
			a.ILoad(2).Const(32).IfICmpGe("sdone")
			a.ILoad(1)
			a.GetStatic(GatewayAppClass, "table").ILoad(1).Const(255).IAnd().ArrayLoad()
			a.IAdd().Const(1).IAdd().Const(0x7FFFFF).IAnd().IStore(1)
			a.IInc(2, 1).Goto("sloop")
			a.Label("sdone")
			a.Const(8).NewArray("").Pop()
			a.GetStatic(GatewayAppClass, "hits").Const(1).IAdd().PutStatic(GatewayAppClass, "hits")
			a.ILoad(1).GetStatic(GatewayAppClass, "hits").IAdd().IReturn()
		}).
		MustBuild()
	return []*classfile.Class{app}
}

// GatewayConfig parameterizes one serving run.
type GatewayConfig struct {
	Mode     GatewayMode
	Sessions int // tenants spawned sequentially (spawn/serve/kill churn)
	Requests int // serves per tenant session
	// HeapLimit bounds the VM heap (0 = 64 MiB).
	HeapLimit int64
	// FreezeShared also shares frozen warmed arrays between clones
	// (clone/recycled modes).
	FreezeShared bool
	// InstrLimit, when > 0, is the per-tenant instruction budget; a
	// session whose account exceeds it mid-serve is admin-killed early
	// (counted in LimitKills). Every 8th session is "greedy" (4x the
	// requests) so a budget between normal and greedy consumption
	// exercises enforcement deterministically.
	InstrLimit int64
}

// GatewayResult reports spawn latency and steady-state serving throughput.
//
// Measurement contract: the sequential gateway is single-threaded host
// driving — nothing else runs while a session spawns or serves — so its
// latencies are wall-clock durations (the p99 gate compares like with
// like and the 1-CPU caveat cancels out). The concurrent gateway
// (GatewayConcurrentResult) must NOT use wall clock: with N sessions in
// flight on scheduler workers, wall time measures Go runtime preemption
// of the measuring goroutine, not this system. Its latencies are virtual
// ticks (slo.go contract: 1 tick per executed instruction, 1000 ticks =
// 1 virtual ms).
type GatewayResult struct {
	Mode     string        `json:"mode"`
	Sessions int           `json:"sessions"`
	Serves   int           `json:"serves"`
	Checksum int64         `json:"checksum"`
	SpawnP50 time.Duration `json:"spawn_p50_ns"`
	SpawnP99 time.Duration `json:"spawn_p99_ns"`
	SpawnMax time.Duration `json:"spawn_max_ns"`
	// SpawnTotal is the summed tenant provisioning time.
	SpawnTotal time.Duration `json:"spawn_total_ns"`
	// ServeDuration is the summed in-session serving time.
	ServeDuration time.Duration `json:"serve_total_ns"`
	ServesPerSec  float64       `json:"serves_per_sec"`
	// RecycledIDs counts isolate slots returned to (and reused from) the
	// free pool (recycled mode only).
	RecycledIDs int `json:"recycled_ids"`
	// LimitKills counts tenants admin-killed for exceeding InstrLimit.
	LimitKills int `json:"limit_kills"`
	// GCs is the collector activation count across the run.
	GCs int64 `json:"gcs"`
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// gatewayVM builds the serving VM with a runtime Isolate0 (the gateway
// host: admin kills and GC triggers are charged to it).
func gatewayVM(cfg GatewayConfig) (*interp.VM, *core.Isolate, error) {
	limit := cfg.HeapLimit
	if limit <= 0 {
		limit = 64 << 20
	}
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: limit})
	if err := syslib.Install(vm); err != nil {
		return nil, nil, err
	}
	host, err := vm.World().NewIsolate("gateway", vm.Registry().NewLoader("gateway"))
	if err != nil {
		return nil, nil, err
	}
	return vm, host, nil
}

// RunGateway executes one serving run: cfg.Sessions sequential tenant
// sessions, each provisioned per cfg.Mode, served cfg.Requests times, then
// killed and swept (recycled mode additionally frees the isolate slot back
// to the pool). Spawn latencies are wall-clock per session; the serve
// window is timed separately for steady-state throughput.
func RunGateway(cfg GatewayConfig) (GatewayResult, error) {
	if cfg.Sessions <= 0 || cfg.Requests <= 0 {
		return GatewayResult{}, fmt.Errorf("gateway: need positive Sessions and Requests")
	}
	vm, host, err := gatewayVM(cfg)
	if err != nil {
		return GatewayResult{}, err
	}
	world := vm.World()
	reg := vm.Registry()

	var (
		snap  *interp.Snapshot
		serve *classfile.Method
	)
	if cfg.Mode == GatewayClone || cfg.Mode == GatewayRecycled {
		// Untimed template setup: a template loader owns the classes, a
		// warmer isolate (kept alive: snapshot pool strings pin to it)
		// runs the heavy clinit once, and the snapshot captures the
		// warmed state.
		tl := reg.NewLoader("gw-template")
		if err := tl.DefineAll(GatewayClasses()); err != nil {
			return GatewayResult{}, err
		}
		wl := reg.NewLoader("gw-warmer")
		warmer, err := world.NewIsolate("gw-warmer", wl)
		if err != nil {
			return GatewayResult{}, err
		}
		wl.AddDelegate(tl)
		app, err := tl.Lookup(GatewayAppClass)
		if err != nil {
			return GatewayResult{}, err
		}
		serve, err = app.LookupMethod("serve", "(I)I")
		if err != nil {
			return GatewayResult{}, err
		}
		if _, th, err := vm.CallRoot(warmer, serve, []heap.Value{heap.IntVal(1)}, 0); err != nil || th.Failure() != nil {
			return GatewayResult{}, fmt.Errorf("gateway warm-up: %v / %s", err, th.FailureString())
		}
		snap, err = vm.CaptureSnapshot(warmer, interp.SnapshotOptions{FreezeShared: cfg.FreezeShared})
		if err != nil {
			return GatewayResult{}, err
		}
		defer snap.Release()
	}

	res := GatewayResult{Mode: cfg.Mode.String(), Sessions: cfg.Sessions}
	spawns := make([]time.Duration, 0, cfg.Sessions)
	var worker *interp.Thread // recycled mode reuses one thread slot

	callServe := func(iso *core.Isolate, m *classfile.Method, arg int64) (heap.Value, error) {
		if cfg.Mode != GatewayRecycled {
			v, th, err := vm.CallRoot(iso, m, []heap.Value{heap.IntVal(arg)}, 0)
			if err != nil {
				return heap.Value{}, err
			}
			if th.Failure() != nil {
				return heap.Value{}, fmt.Errorf("serve failed: %s", th.FailureString())
			}
			return v, nil
		}
		if worker == nil {
			t, err := vm.SpawnThread("gw-worker", iso, m, []heap.Value{heap.IntVal(arg)})
			if err != nil {
				return heap.Value{}, err
			}
			worker = t
		} else if err := vm.RespawnThread(worker, "gw-worker", iso, m, []heap.Value{heap.IntVal(arg)}); err != nil {
			return heap.Value{}, err
		}
		vm.RunUntil(worker, 0)
		if worker.Err() != nil {
			return heap.Value{}, worker.Err()
		}
		if !worker.Done() {
			return heap.Value{}, fmt.Errorf("serve did not finish")
		}
		if worker.Failure() != nil {
			return heap.Value{}, fmt.Errorf("serve failed: %s", worker.FailureString())
		}
		return worker.Result(), nil
	}

	for s := 0; s < cfg.Sessions; s++ {
		name := fmt.Sprintf("tenant-%d", s)
		var (
			iso     *core.Isolate
			serveM  *classfile.Method
			elapsed time.Duration
		)
		switch cfg.Mode {
		case GatewayCold:
			// The whole provisioning path is the spawn: build, define,
			// link, and run the heavy clinit.
			start := time.Now()
			l := reg.NewLoader(name)
			iso, err = world.NewIsolate(name, l)
			if err != nil {
				return res, err
			}
			if err := l.DefineAll(GatewayClasses()); err != nil {
				return res, err
			}
			app, err := l.Lookup(GatewayAppClass)
			if err != nil {
				return res, err
			}
			serveM, err = app.LookupMethod("serve", "(I)I")
			if err != nil {
				return res, err
			}
			if _, terr := callServe(iso, serveM, 1); terr != nil {
				return res, terr
			}
			elapsed = time.Since(start)
			res.Serves++
		case GatewayClone, GatewayRecycled:
			start := time.Now()
			iso, err = vm.CloneIsolate(snap, name)
			if err != nil {
				return res, err
			}
			elapsed = time.Since(start)
			serveM = serve
		default:
			return res, fmt.Errorf("gateway: unknown mode %d", cfg.Mode)
		}
		spawns = append(spawns, elapsed)
		res.SpawnTotal += elapsed

		requests := cfg.Requests
		greedy := cfg.InstrLimit > 0 && s%8 == 7
		if greedy {
			requests *= 4
		}
		serveStart := time.Now()
		for r := 0; r < requests; r++ {
			v, terr := callServe(iso, serveM, int64(s*1000+r))
			if terr != nil {
				return res, terr
			}
			res.Checksum += v.I
			res.Serves++
			if cfg.InstrLimit > 0 && iso.Account().Numbers().Instructions > cfg.InstrLimit {
				res.LimitKills++
				break
			}
		}
		res.ServeDuration += time.Since(serveStart)

		// Session teardown: admin kill, sweep, and (recycled mode) return
		// the slot to the pool.
		if err := vm.KillIsolate(host, iso); err != nil {
			return res, fmt.Errorf("kill %s: %w", name, err)
		}
		vm.CollectGarbage(host)
		if cfg.Mode == GatewayRecycled && iso.Disposed() {
			if err := vm.FreeIsolate(iso); err != nil {
				return res, fmt.Errorf("free %s: %w", name, err)
			}
			res.RecycledIDs++
		}
	}

	sort.Slice(spawns, func(i, j int) bool { return spawns[i] < spawns[j] })
	res.SpawnP50 = percentile(spawns, 0.50)
	res.SpawnP99 = percentile(spawns, 0.99)
	res.SpawnMax = spawns[len(spawns)-1]
	if res.ServeDuration > 0 {
		res.ServesPerSec = float64(res.Serves) / res.ServeDuration.Seconds()
	}
	res.GCs = vm.Heap().GCCount()
	return res, nil
}

// GatewayConcurrentConfig parameterizes one concurrent serving run: N
// closed-loop tenant clients drive sessions through the scheduler at
// once, provisioned either cold (define + link + clinit per session,
// all contending on the world and registry locks) or from a pre-warmed
// serve.Pool.
type GatewayConcurrentConfig struct {
	// Tenants is the number of concurrent closed-loop clients (in-flight
	// sessions). Default 8.
	Tenants int
	// SessionsPerTenant is how many back-to-back sessions each client
	// runs. Default 1.
	SessionsPerTenant int
	// Requests is the serve count per session. Default 8.
	Requests int
	// UsePool provisions sessions from a pre-warmed clone pool instead of
	// cold spawns.
	UsePool bool
	// PoolCapacity bounds the warm set (default min(Tenants, 16)).
	PoolCapacity int
	// Workers is the scheduler worker count. Default 2.
	Workers int
	// HeapLimit bounds the VM heap (0 = 64 MiB).
	HeapLimit int64
	// FreezeShared shares frozen warmed arrays between clones.
	FreezeShared bool
	// Governed attaches a governor; with Abusers > 0 this is what sheds
	// abusive principals at the pool's admission edge.
	Governed bool
	// Governor overrides governor tuning (nil = defaults).
	Governor *sched.GovernorConfig
	// Abusers adds allocation-flood adversary isolates that also hammer
	// Acquire; once the governor throttles them the pool must shed their
	// admissions (core.ErrThrottled) without spending warm slots.
	Abusers int
}

func (c *GatewayConcurrentConfig) fill() {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.SessionsPerTenant <= 0 {
		c.SessionsPerTenant = 1
	}
	if c.Requests <= 0 {
		c.Requests = 8
	}
	if c.PoolCapacity <= 0 {
		c.PoolCapacity = c.Tenants
		if c.PoolCapacity > 16 {
			c.PoolCapacity = 16
		}
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.HeapLimit <= 0 {
		c.HeapLimit = 64 << 20
	}
}

// GatewayConcurrentResult aggregates one concurrent serving run.
//
// Latencies are virtual ticks on the VM clock (1 tick per executed
// instruction; 1000 ticks = 1 virtual ms — see VirtualMS and the slo.go
// measurement contract): a session's spawn latency is the clock
// interval its client observed across provisioning, and a request's
// serve latency is the worker-stamped FinishTick-SpawnTick interval.
// Wall clock on a small host would measure Go runtime preemption of the
// client goroutines, not how many instructions the rest of the world
// executed while this tenant waited. ServesPerSec stays wall-clock on
// purpose, like SLO goodput: it is a work-conservation number, not a
// latency.
type GatewayConcurrentResult struct {
	Mode     string `json:"mode"` // "cold" or "pool"
	Tenants  int    `json:"tenants"`
	Sessions int    `json:"sessions"`
	Serves   int    `json:"serves"`
	Checksum int64  `json:"checksum"`
	// Spawn percentiles are per-session provisioning latency in virtual
	// ticks (pool acquire vs cold define+clinit, under contention).
	SpawnP50Ticks int64 `json:"spawn_p50_ticks"`
	SpawnP99Ticks int64 `json:"spawn_p99_ticks"`
	SpawnMaxTicks int64 `json:"spawn_max_ticks"`
	// Serve percentiles are per-request latency in virtual ticks.
	ServeP50Ticks int64 `json:"serve_p50_ticks"`
	ServeP99Ticks int64 `json:"serve_p99_ticks"`
	// SaturatedRejects counts Acquire calls that got ErrSaturated (the
	// typed fail-fast admission error) before a slot freed up.
	SaturatedRejects int64 `json:"saturated_rejects"`
	// Shed counts admissions refused with core.ErrThrottled before any
	// pool slot was spent (governed abusers).
	Shed int64 `json:"shed"`
	// Recycled counts isolates whose slot was freed back through the
	// pool's teardown pipeline. Read after pool Close, so it is final:
	// every released session plus any warm clones left at shutdown.
	Recycled int64 `json:"recycled"`
	// CloneFailures counts refill clones that failed (transient heap
	// pressure; each failure is fully unwound and retried).
	CloneFailures int64         `json:"clone_failures"`
	TotalTicks    int64         `json:"total_ticks"`
	Wall          time.Duration `json:"wall_ns"`
	ServesPerSec  float64       `json:"serves_per_sec"`
	GCs           int64         `json:"gcs"`
	// Governor is the governor's counter snapshot (zero when ungoverned).
	Governor sched.GovernorStats `json:"governor"`
}

// RunGatewayConcurrent executes one concurrent serving run: the
// template is warmed and captured up front (pool mode primes the clone
// pool from it), the scheduler runs on its own goroutine with a
// weight-1 keeper holding the run open, and cfg.Tenants client
// goroutines drive sessions concurrently — provision, serve
// cfg.Requests times through spawned request threads, tear down —
// using the sanctioned live-administration pattern throughout. The
// request argument sequence matches the sequential gateway's, so a
// pool-mode run's checksum equals RunGateway's clone-mode checksum for
// Tenants*SessionsPerTenant sessions: concurrency must not change
// results.
func RunGatewayConcurrent(cfg GatewayConcurrentConfig) (GatewayConcurrentResult, error) {
	cfg.fill()
	vm, host, err := gatewayVM(GatewayConfig{HeapLimit: cfg.HeapLimit})
	if err != nil {
		return GatewayConcurrentResult{}, err
	}
	world := vm.World()
	reg := vm.Registry()
	res := GatewayConcurrentResult{
		Mode:    "cold",
		Tenants: cfg.Tenants,
	}
	if cfg.UsePool {
		res.Mode = "pool"
	}

	// Keeper: the gateway host (Isolate0, governance-exempt) spins at
	// weight 1 so the scheduler never quiesces between sessions.
	host.SetWeight(1)
	if err := host.Loader().Define(spinForeverClasses("gw/Keeper")); err != nil {
		return res, err
	}
	kc, err := host.Loader().Lookup("gw/Keeper")
	if err != nil {
		return res, err
	}
	km, err := kc.LookupMethod("attack", "()V")
	if err != nil {
		return res, err
	}
	if _, err := vm.SpawnThread("gw-keeper", host, km, nil); err != nil {
		return res, err
	}

	// Template warm-up and capture happen before the scheduler starts
	// (CallRoot drives the sequential engine). Cold mode needs no
	// snapshot but shares the rest of the setup.
	var (
		snap   *interp.Snapshot
		serveM *classfile.Method
		pool   *serve.Pool
	)
	if cfg.UsePool {
		tl := reg.NewLoader("gw-template")
		if err := tl.DefineAll(GatewayClasses()); err != nil {
			return res, err
		}
		wl := reg.NewLoader("gw-warmer")
		warmer, err := world.NewIsolate("gw-warmer", wl)
		if err != nil {
			return res, err
		}
		wl.AddDelegate(tl)
		app, err := tl.Lookup(GatewayAppClass)
		if err != nil {
			return res, err
		}
		serveM, err = app.LookupMethod("serve", "(I)I")
		if err != nil {
			return res, err
		}
		if _, th, err := vm.CallRoot(warmer, serveM, []heap.Value{heap.IntVal(1)}, 0); err != nil || th.Failure() != nil {
			return res, fmt.Errorf("gateway warm-up: %v / %s", err, th.FailureString())
		}
		snap, err = vm.CaptureSnapshot(warmer, interp.SnapshotOptions{FreezeShared: cfg.FreezeShared})
		if err != nil {
			return res, err
		}
		defer snap.Release()
		pool, err = serve.NewPool(vm, snap, serve.Config{Capacity: cfg.PoolCapacity, NamePrefix: "gw-pooled"})
		if err != nil {
			return res, err
		}
		defer pool.Close()
	}

	// Abusers: allocation-flood adversaries, threads pre-spawned so the
	// governor sees their burn from the first window.
	abusers := make([]*core.Isolate, 0, cfg.Abusers)
	for i := 0; i < cfg.Abusers; i++ {
		iso, err := vm.NewIsolate(fmt.Sprintf("gw-abuser%d", i))
		if err != nil {
			return res, err
		}
		// 512-byte payloads: the flood must stay over the governor's
		// alloc criterion even after the deprioritize stage cuts its
		// scheduling weight, so escalation reliably reaches the throttle
		// stage the pool's admission shedding keys on.
		cn := fmt.Sprintf("gwa/Flood%d", i)
		if err := iso.Loader().Define(allocFloodClasses(cn, 512)); err != nil {
			return res, err
		}
		c, err := iso.Loader().Lookup(cn)
		if err != nil {
			return res, err
		}
		m, err := c.LookupMethod("attack", "()V")
		if err != nil {
			return res, err
		}
		if _, err := vm.SpawnThread(fmt.Sprintf("gw-abuse%d", i), iso, m, nil); err != nil {
			return res, err
		}
		abusers = append(abusers, iso)
	}

	var gov *sched.Governor
	if cfg.Governed {
		gcfg := sched.GovernorConfig{}
		if cfg.Governor != nil {
			gcfg = *cfg.Governor
		}
		gov = sched.NewGovernor(gcfg)
	}
	resCh := make(chan interp.RunResult, 1)
	go func() {
		resCh <- sched.RunConfig(vm, sched.Config{
			Workers:  cfg.Workers,
			Policy:   sched.PolicyProportional,
			Governor: gov,
		})
	}()
	for vm.TotalInstructions() == 0 {
		time.Sleep(50 * time.Microsecond)
	}

	// Abuser admission clients: hammer Acquire so throttle-stage shedding
	// is observable at the admission edge. Pre-throttle admissions give
	// the slot straight back.
	stopAbuse := make(chan struct{})
	var abuseWG sync.WaitGroup
	if pool != nil {
		for _, iso := range abusers {
			abuseWG.Add(1)
			go func(iso *core.Isolate) {
				defer abuseWG.Done()
				for {
					select {
					case <-stopAbuse:
						return
					default:
					}
					if got, err := pool.Acquire(iso); err == nil {
						pool.Release(got)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}(iso)
		}
	}

	var (
		checksum   atomic.Int64
		serves     atomic.Int64
		spawnMu    sync.Mutex
		spawnLats  []int64
		serveLats  []int64
		clientErr  atomic.Pointer[error]
		wg         sync.WaitGroup
	)
	fail := func(err error) { clientErr.CompareAndSwap(nil, &err) }
	start := time.Now()
	for ti := 0; ti < cfg.Tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			mySpawn := make([]int64, 0, cfg.SessionsPerTenant)
			myServe := make([]int64, 0, cfg.SessionsPerTenant*cfg.Requests)
			for s := 0; s < cfg.SessionsPerTenant; s++ {
				session := ti*cfg.SessionsPerTenant + s
				var (
					iso *core.Isolate
					m   *classfile.Method
				)
				t0 := vm.Clock()
				if cfg.UsePool {
					for attempt := 0; ; attempt++ {
						got, err := pool.Acquire(nil)
						if err == nil {
							iso = got
							break
						}
						if !errors.Is(err, serve.ErrSaturated) {
							fail(fmt.Errorf("session %d acquire: %w", session, err))
							return
						}
						if attempt > 1<<20 {
							fail(fmt.Errorf("session %d: pool never refilled", session))
							return
						}
						time.Sleep(20 * time.Microsecond)
					}
					m = serveM
				} else {
					name := fmt.Sprintf("gw-tenant-%d", session)
					l := reg.NewLoader(name)
					var err error
					iso, err = world.NewIsolate(name, l)
					if err != nil {
						fail(err)
						return
					}
					if err := l.DefineAll(GatewayClasses()); err != nil {
						fail(err)
						return
					}
					app, err := l.Lookup(GatewayAppClass)
					if err != nil {
						fail(err)
						return
					}
					m, err = app.LookupMethod("serve", "(I)I")
					if err != nil {
						fail(err)
						return
					}
					// The warm serve runs the heavy clinit on a scheduler
					// worker; like the sequential cold leg, it is part of
					// the spawn and excluded from the checksum.
					th, err := vm.SpawnThread(name+":warm", iso, m, []heap.Value{heap.IntVal(1)})
					if err != nil {
						fail(err)
						return
					}
					for !th.Done() {
						time.Sleep(20 * time.Microsecond)
					}
					if th.Failure() != nil || th.Err() != nil {
						fail(fmt.Errorf("session %d warm-up: %v / %s", session, th.Err(), th.FailureString()))
						return
					}
					serves.Add(1)
				}
				mySpawn = append(mySpawn, vm.Clock()-t0)

				for r := 0; r < cfg.Requests; r++ {
					arg := int64(session*1000 + r)
					var th *interp.Thread
					for attempt := 0; ; attempt++ {
						var err error
						th, err = vm.SpawnThread(fmt.Sprintf("gw-req-%d-%d", session, r), iso, m,
							[]heap.Value{heap.IntVal(arg)})
						if err == nil {
							break
						}
						if !errors.Is(err, core.ErrThrottled) || attempt > 1<<20 {
							fail(fmt.Errorf("session %d request %d: %w", session, r, err))
							return
						}
						time.Sleep(50 * time.Microsecond)
					}
					for !th.Done() {
						time.Sleep(20 * time.Microsecond)
					}
					if th.Failure() != nil || th.Err() != nil {
						fail(fmt.Errorf("session %d request %d: %v / %s", session, r, th.Err(), th.FailureString()))
						return
					}
					myServe = append(myServe, th.FinishTick()-th.SpawnTick())
					checksum.Add(th.Result().I)
					serves.Add(1)
				}

				// Teardown: pool sessions return through the recycling
				// pipeline; cold corpses are admin-killed and left to the
				// pressure collector.
				if cfg.UsePool {
					pool.Release(iso)
				} else if err := vm.KillIsolate(nil, iso); err != nil {
					fail(fmt.Errorf("session %d kill: %w", session, err))
					return
				}
			}
			spawnMu.Lock()
			spawnLats = append(spawnLats, mySpawn...)
			serveLats = append(serveLats, myServe...)
			spawnMu.Unlock()
		}(ti)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	close(stopAbuse)
	abuseWG.Wait()
	res.TotalTicks = vm.Clock()
	vm.Shutdown()
	<-resCh
	if pool != nil {
		// Close first: it drains the dead list through the teardown
		// pipeline, so the recycled counter is final rather than a
		// point-in-time race with the background refiller.
		pool.Close()
		st := pool.Stats()
		res.SaturatedRejects = st.Saturated
		res.Shed = st.Shed
		res.Recycled = st.Recycled
		res.CloneFailures = st.CloneFailures
	}
	if errp := clientErr.Load(); errp != nil {
		return res, *errp
	}

	res.Sessions = cfg.Tenants * cfg.SessionsPerTenant
	res.Serves = int(serves.Load())
	res.Checksum = checksum.Load()
	sortInt64(spawnLats)
	sortInt64(serveLats)
	res.SpawnP50Ticks = pctTicks(spawnLats, 0.50)
	res.SpawnP99Ticks = pctTicks(spawnLats, 0.99)
	if n := len(spawnLats); n > 0 {
		res.SpawnMaxTicks = spawnLats[n-1]
	}
	res.ServeP50Ticks = pctTicks(serveLats, 0.50)
	res.ServeP99Ticks = pctTicks(serveLats, 0.99)
	if res.Wall > 0 {
		res.ServesPerSec = float64(res.Serves) / res.Wall.Seconds()
	}
	res.GCs = vm.Heap().GCCount()
	if gov != nil {
		res.Governor = gov.Stats()
	}
	return res, nil
}

func sortInt64(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

func pctTicks(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}
