package workloads

import (
	"fmt"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/syslib"
)

// MicroKind selects one of Figure 1's micro benchmarks.
type MicroKind uint8

// Micro benchmark kinds.
const (
	// MicroIntra measures intra-isolate virtual calls.
	MicroIntra MicroKind = iota + 1
	// MicroInter measures inter-isolate virtual calls (thread
	// migration).
	MicroInter
	// MicroAlloc measures object allocation.
	MicroAlloc
	// MicroStatic measures static variable access (task class mirror
	// indirection).
	MicroStatic
)

// String returns the benchmark name as used in Figure 1.
func (k MicroKind) String() string {
	switch k {
	case MicroIntra:
		return "intra-isolate call"
	case MicroInter:
		return "inter-isolate call"
	case MicroAlloc:
		return "object allocation"
	case MicroStatic:
		return "static variable access"
	default:
		return "invalid"
	}
}

// MicroKinds lists all Figure 1 benchmarks in presentation order.
func MicroKinds() []MicroKind {
	return []MicroKind{MicroIntra, MicroInter, MicroAlloc, MicroStatic}
}

// Runner is a prepared workload: a VM with the workload classes loaded
// and a driver method resolvable; Run executes one driver invocation.
type Runner struct {
	vm     *interp.VM
	iso    *core.Isolate
	driver *classfile.Method
	n      int64
}

// VM exposes the underlying machine (stat collection in benches).
func (r *Runner) VM() *interp.VM { return r.vm }

// Isolate returns the isolate the driver runs in.
func (r *Runner) Isolate() *core.Isolate { return r.iso }

// WithDriver rebinds the runner to another static driver method (same
// descriptor) on the same driver class — e.g. the Table 1 drag loop.
func (r *Runner) WithDriver(methodName string) (*Runner, error) {
	m, err := r.driver.Class.LookupMethod(methodName, MicroDriverDesc)
	if err != nil {
		return nil, err
	}
	dup := *r
	dup.driver = m
	return &dup, nil
}

// Run performs one driver invocation run(n) and returns the checksum.
func (r *Runner) Run() (int64, error) {
	v, th, err := r.vm.CallRoot(r.iso, r.driver, []heap.Value{heap.IntVal(r.n)}, 0)
	if err != nil {
		return 0, err
	}
	if th.Failure() != nil {
		return 0, fmt.Errorf("workload failed: %s", th.FailureString())
	}
	return v.I, nil
}

// newVM builds a fresh VM with the system library installed.
func newVM(mode core.Mode) (*interp.VM, error) {
	vm := interp.NewVM(interp.Options{Mode: mode, HeapLimit: 512 << 20})
	if err := syslib.Install(vm); err != nil {
		return nil, err
	}
	return vm, nil
}

// NewMicroRunner prepares one Figure 1 micro benchmark with iteration
// count n in the given mode.
func NewMicroRunner(mode core.Mode, kind MicroKind, n int64) (*Runner, error) {
	vm, err := newVM(mode)
	if err != nil {
		return nil, err
	}
	reg := vm.Registry()
	world := vm.World()

	switch kind {
	case MicroInter:
		// Two bundles: caller and callee, wired; the callee's service
		// instance is created in its own isolate, then bound into the
		// caller's static field.
		calleeLoader := reg.NewLoader("callee")
		calleeIso, err := world.NewIsolate("callee", calleeLoader)
		if err != nil {
			return nil, err
		}
		if err := calleeLoader.DefineAll(ServiceClasses()); err != nil {
			return nil, err
		}
		var callerIso *core.Isolate
		callerLoader := reg.NewLoader("caller")
		if world.Isolated() {
			callerIso, err = world.NewIsolate("caller", callerLoader)
			if err != nil {
				return nil, err
			}
		} else {
			callerIso = calleeIso
		}
		callerLoader.AddDelegate(calleeLoader)
		if err := callerLoader.DefineAll(CallerClasses()); err != nil {
			return nil, err
		}
		svcClass, err := calleeLoader.Lookup(ServiceClassName)
		if err != nil {
			return nil, err
		}
		makeM, err := svcClass.LookupMethod("make", "()Ljava/lang/Object;")
		if err != nil {
			return nil, err
		}
		svcObj, th, err := vm.CallRoot(calleeIso, makeM, nil, 1_000_000)
		if err != nil || th.Failure() != nil {
			return nil, fmt.Errorf("creating service: %v / %s", err, th.FailureString())
		}
		callerClass, err := callerLoader.Lookup(CallerClassName)
		if err != nil {
			return nil, err
		}
		bindM, err := callerClass.LookupMethod("bind", "(Ljava/lang/Object;)V")
		if err != nil {
			return nil, err
		}
		if _, th, err := vm.CallRoot(callerIso, bindM, []heap.Value{svcObj}, 1_000_000); err != nil || th.Failure() != nil {
			return nil, fmt.Errorf("binding service: %v / %s", err, th.FailureString())
		}
		driver, err := callerClass.LookupMethod(MicroDriverMethod, MicroDriverDesc)
		if err != nil {
			return nil, err
		}
		return &Runner{vm: vm, iso: callerIso, driver: driver, n: n}, nil

	case MicroIntra, MicroAlloc, MicroStatic:
		var classes []*classfile.Class
		var driverName string
		switch kind {
		case MicroIntra:
			classes, driverName = IntraCallClasses(), IntraClassName
		case MicroAlloc:
			classes, driverName = AllocClasses(), AllocClassName
		default:
			classes, driverName = StaticAccessClasses(), StaticClassName
		}
		l := reg.NewLoader("micro")
		iso, err := world.NewIsolate("micro", l)
		if err != nil {
			return nil, err
		}
		if err := l.DefineAll(classes); err != nil {
			return nil, err
		}
		c, err := l.Lookup(driverName)
		if err != nil {
			return nil, err
		}
		driver, err := c.LookupMethod(MicroDriverMethod, MicroDriverDesc)
		if err != nil {
			return nil, err
		}
		return &Runner{vm: vm, iso: iso, driver: driver, n: n}, nil
	default:
		return nil, fmt.Errorf("workloads: unknown micro kind %d", kind)
	}
}

// NewSpecRunner prepares one Figure 2 macro workload; n <= 0 selects the
// workload's default iteration count.
func NewSpecRunner(mode core.Mode, spec Spec, n int64) (*Runner, error) {
	if n <= 0 {
		n = spec.DefaultN
	}
	vm, err := newVM(mode)
	if err != nil {
		return nil, err
	}
	l := vm.Registry().NewLoader("spec:" + spec.Name)
	iso, err := vm.World().NewIsolate("spec:"+spec.Name, l)
	if err != nil {
		return nil, err
	}
	if err := l.DefineAll(spec.Classes()); err != nil {
		return nil, err
	}
	c, err := l.Lookup(spec.Driver)
	if err != nil {
		return nil, err
	}
	driver, err := c.LookupMethod(MicroDriverMethod, MicroDriverDesc)
	if err != nil {
		return nil, err
	}
	return &Runner{vm: vm, iso: iso, driver: driver, n: n}, nil
}
