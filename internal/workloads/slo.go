// slo.go is the adversarial SLO harness: N well-behaved tenant isolates
// serve closed-loop requests while §4.3-style attackers (CPU spinners,
// allocation floods, monitor hogs, cross-isolate call floods) run beside
// them on the concurrent scheduler. The harness runs one scheduling leg
// per configuration — round-robin vs proportional-share, governed vs
// not — and reports tail-latency percentiles and goodput, turning the
// attack suite from a pass/fail gate into a continuous isolation-quality
// metric.
//
// Latency is measured on the VM's virtual clock (1 tick per executed
// instruction; 1000 ticks = 1 virtual millisecond, the syslib
// currentTimeMillis convention), stamped by the worker that finishes the
// request thread. Wall-clock latency on a host with few CPUs measures Go
// runtime goroutine scheduling — the completion-poll goroutine can wait
// ~10ms for a sysmon preemption while VM workers saturate GOMAXPROCS —
// whereas virtual-clock latency measures exactly what the VM scheduler
// controls: how many instructions the rest of the world executed while a
// tenant request waited and ran.
package workloads

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// AttackerKind names one adversarial tenant in the SLO harness.
type AttackerKind string

// Attacker kinds (the §4.3 classes expressible under the concurrent
// scheduler; RPC-hub floods need the sequential engine and are covered
// by the rpc package's own saturation tests).
const (
	// AttackSpin is the A6 standalone infinite loop: one thread burning
	// CPU forever.
	AttackSpin AttackerKind = "spin"
	// AttackAllocFlood allocates garbage arrays as fast as possible
	// (A1/A4 style memory and GC-churn pressure).
	AttackAllocFlood AttackerKind = "allocflood"
	// AttackMonitorHog spawns threads that sleep forever (A5/A7 style
	// thread and sleeper-slot exhaustion), then spins.
	AttackMonitorHog AttackerKind = "monitorhog"
	// AttackCallFlood hammers cross-isolate static calls into a second
	// attacker-owned isolate (migration churn + CPU dominance).
	AttackCallFlood AttackerKind = "callflood"
)

// AllAttackers lists every attacker kind in presentation order.
func AllAttackers() []AttackerKind {
	return []AttackerKind{AttackSpin, AttackAllocFlood, AttackMonitorHog, AttackCallFlood}
}

// SLOConfig sizes one SLO harness leg.
type SLOConfig struct {
	// Tenants is the number of well-behaved tenant isolates (each gets
	// one closed-loop client goroutine). Default 4.
	Tenants int
	// RequestsPerTenant is the per-tenant request count. Default 50.
	RequestsPerTenant int
	// WorkIters is the tenant request cost in spin-loop iterations
	// (~5 instructions each). Default 2000.
	WorkIters int
	// Attackers selects the adversarial tenants running beside the
	// well-behaved ones (empty = no-attack baseline).
	Attackers []AttackerKind
	// RoundRobin selects the FIFO baseline scheduler leg instead of
	// proportional share.
	RoundRobin bool
	// Governed attaches a governor (admission control / load shedding).
	Governed bool
	// Governor overrides the governor tuning (nil = defaults); only
	// meaningful with Governed.
	Governor *sched.GovernorConfig
	// Workers is the scheduler worker count. Default 2.
	Workers int
	// HeapLimit is the VM heap size. Default 32 MiB.
	HeapLimit int64
	// MaxThreads bounds the VM thread population. Default 256.
	MaxThreads int
}

func (c *SLOConfig) fill() {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.RequestsPerTenant <= 0 {
		c.RequestsPerTenant = 50
	}
	if c.WorkIters <= 0 {
		c.WorkIters = 2000
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.HeapLimit <= 0 {
		c.HeapLimit = 32 << 20
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 256
	}
}

// AttackerFate is one attacker's end-of-run condition.
type AttackerFate struct {
	Kind AttackerKind
	// Stage is the governor's final escalation stage for the attacker
	// (StageNormal when ungoverned).
	Stage sched.Stage
	// Killed reports the isolate was dead when the run ended.
	Killed bool
	// Instructions the attacker's isolate executed (its obtained CPU).
	Instructions int64
}

// SLOResult aggregates one leg of the SLO harness.
type SLOResult struct {
	Requests  int   // issued tenant requests
	Completed int64 // requests that finished with the right result
	Failed    int64 // requests lost (spawn refused, wrong result, attacker damage)
	Wall      time.Duration
	// P50/P99/P999 are tenant request latencies in virtual ticks
	// (spawn to finish on the VM clock; 1000 ticks = 1 virtual ms).
	P50, P99, P999 int64
	// TotalTicks is the VM clock at the end of the leg.
	TotalTicks int64
	// Goodput is completed tenant requests per second of wall time.
	// (Virtual-time goodput would penalize work conservation: between
	// closed-loop requests the scheduler rightly hands the CPU to
	// whoever is runnable, advancing the clock without tenant work.)
	Goodput float64
	// TenantInstructions / AttackerInstructions split the executed
	// instructions between the well-behaved and adversarial tenants
	// (the obtained-share view of proportional fairness).
	TenantInstructions   int64
	AttackerInstructions int64
	// Governor is the governor's counter snapshot (zero when
	// ungoverned).
	Governor sched.GovernorStats
	// Attackers reports each adversarial tenant's fate.
	Attackers []AttackerFate
}

// VirtualMS renders a tick latency as virtual milliseconds.
func VirtualMS(ticks int64) string {
	return fmt.Sprintf("%.2fvms", float64(ticks)/1000)
}

func (r *SLOResult) String() string {
	return fmt.Sprintf("slo: %d req, %d ok / %d failed, p50=%s p99=%s p999=%s, %.1f req/s, tenant/attacker instrs %d/%d",
		r.Requests, r.Completed, r.Failed, VirtualMS(r.P50), VirtualMS(r.P99), VirtualMS(r.P999),
		r.Goodput, r.TenantInstructions, r.AttackerInstructions)
}

// tenantClasses builds the tenant service: work(n) burns n loop
// iterations and returns n (checkable result).
func tenantClasses(cn string) *classfile.Class {
	return classfile.NewClass(cn).
		Method("work", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(0).IReturn()
		}).MustBuild()
}

// spinForeverClasses builds the A6-style spinner (also the keeper that
// holds the run open in the no-attack baseline).
func spinForeverClasses(cn string) *classfile.Class {
	return classfile.NewClass(cn).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0)
			a.Label("loop")
			a.IInc(0, 1)
			a.Goto("loop")
		}).MustBuild()
}

// allocFloodClasses builds the garbage-flood attacker: an endless loop
// allocating len-element Object[] arrays and dropping them.
func allocFloodClasses(cn string, arrLen int) *classfile.Class {
	return classfile.NewClass(cn).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("loop")
			a.Const(int64(arrLen)).NewArray(classfile.ObjectClassName).Pop()
			a.Goto("loop")
		}).MustBuild()
}

// monitorHogClasses builds the sleeper-spawn attacker: attack(n) starts
// n guest threads that sleep forever (catching the refusal once the
// governor throttles or the thread limit bites), then spins.
func monitorHogClasses(cn string) []*classfile.Class {
	sleeper := cn + "$Sleeper"
	s := classfile.NewClass(sleeper).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("run", "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).InvokeStatic("java/lang/Thread", "sleep", "(I)V").Return()
		}).MustBuild()
	h := classfile.NewClass(cn).
		Method("attack", "(I)V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("spin")
			a.Label("try")
			a.New(sleeper).Dup().InvokeSpecial(sleeper, classfile.InitName, "()V").AStore(2)
			a.New("java/lang/Thread").Dup().ALoad(2).
				InvokeSpecial("java/lang/Thread", classfile.InitName, "(Ljava/lang/Object;)V").AStore(3)
			a.ALoad(3).InvokeVirtual("java/lang/Thread", "start", "()V")
			a.Label("endtry")
			a.IInc(1, 1).Goto("loop")
			// A refused spawn (throttle, thread limit) ends the spawn
			// phase; the hog keeps burning CPU either way.
			a.Label("catch")
			a.Pop().Goto("spin")
			a.Label("spin")
			a.Const(0).IStore(1)
			a.Label("spinloop")
			a.IInc(1, 1).Goto("spinloop")
			a.Handler("try", "endtry", "catch", "java/lang/Throwable")
		}).MustBuild()
	return []*classfile.Class{s, h}
}

// callFloodClasses builds the cross-isolate call flood: main's attack()
// loops invoking peerCn.ping(x) (defined in a second attacker-owned
// isolate), migrating the thread on every call and return.
func callFloodClasses(cn, peerCn string) (main, peer *classfile.Class) {
	peer = classfile.NewClass(peerCn).
		Method("ping", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(1).IAdd().IReturn()
		}).MustBuild()
	main = classfile.NewClass(cn).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0)
			a.Label("loop")
			a.ILoad(0).InvokeStatic(peerCn, "ping", "(I)I").IStore(0)
			a.Goto("loop")
		}).MustBuild()
	return main, peer
}

// RunSLO executes one leg of the adversarial SLO harness and returns
// its latency/goodput aggregate. The scheduler runs on its own
// goroutine while host-side closed-loop clients spawn tenant request
// threads and poll their completion — the sanctioned live-administration
// pattern (observe the run via TotalInstructions before administering).
func RunSLO(cfg SLOConfig) (*SLOResult, error) {
	cfg.fill()
	vm := interp.NewVM(interp.Options{
		Mode:       core.ModeIsolated,
		HeapLimit:  cfg.HeapLimit,
		MaxThreads: cfg.MaxThreads,
	})
	syslib.MustInstall(vm)

	// The keeper is created first so it becomes Isolate0, the OSGi
	// runtime: exempt from governance, unkillable, and the governor's
	// killer credential for the §3.3 path. At weight 1 it only consumes
	// CPU nobody else wants; its spin holds the run open (the scheduler
	// never quiesces to AllDone between tenant requests) until Shutdown.
	keeperIso, err := vm.NewIsolate("keeper")
	if err != nil {
		return nil, err
	}
	keeperIso.SetWeight(1)
	if err := keeperIso.Loader().Define(spinForeverClasses("slo/Keeper")); err != nil {
		return nil, err
	}
	kc, err := keeperIso.Loader().Lookup("slo/Keeper")
	if err != nil {
		return nil, err
	}
	km, err := kc.LookupMethod("attack", "()V")
	if err != nil {
		return nil, err
	}
	if _, err := vm.SpawnThread("keeper", keeperIso, km, nil); err != nil {
		return nil, err
	}

	// Tenants: interactive class, default weight.
	type tenant struct {
		iso  *core.Isolate
		work *classfile.Method
	}
	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		iso, err := vm.NewIsolate(fmt.Sprintf("tenant%d", i))
		if err != nil {
			return nil, err
		}
		cn := fmt.Sprintf("slo/Tenant%d", i)
		if err := iso.Loader().Define(tenantClasses(cn)); err != nil {
			return nil, err
		}
		c, err := iso.Loader().Lookup(cn)
		if err != nil {
			return nil, err
		}
		m, err := c.LookupMethod("work", "(I)I")
		if err != nil {
			return nil, err
		}
		iso.SetQoS(core.QoSInteractive)
		tenants[i] = &tenant{iso: iso, work: m}
	}

	// Attackers: one isolate per kind (call floods get a second,
	// attacker-owned peer isolate), threads pre-spawned.
	type attacker struct {
		kind AttackerKind
		iso  *core.Isolate
	}
	attackers := make([]*attacker, 0, len(cfg.Attackers))
	for i, kind := range cfg.Attackers {
		iso, err := vm.NewIsolate(fmt.Sprintf("attacker%d-%s", i, kind))
		if err != nil {
			return nil, err
		}
		cn := fmt.Sprintf("atk/Attack%d", i)
		var entry string
		var args []heap.Value
		switch kind {
		case AttackSpin:
			if err := iso.Loader().Define(spinForeverClasses(cn)); err != nil {
				return nil, err
			}
			entry = "()V"
		case AttackAllocFlood:
			if err := iso.Loader().Define(allocFloodClasses(cn, 64)); err != nil {
				return nil, err
			}
			entry = "()V"
		case AttackMonitorHog:
			if err := iso.Loader().DefineAll(monitorHogClasses(cn)); err != nil {
				return nil, err
			}
			entry = "(I)V"
			// Target half the thread table: enough to trip any sleeper
			// gauge many times over, but never enough to wedge the VM —
			// an exhausted global table would turn every leg (including
			// the ungoverned baseline) into a deadlock instead of a
			// latency measurement.
			args = []heap.Value{heap.IntVal(int64(cfg.MaxThreads / 2))}
		case AttackCallFlood:
			peerIso, err := vm.NewIsolate(fmt.Sprintf("attacker%d-peer", i))
			if err != nil {
				return nil, err
			}
			peerCn := fmt.Sprintf("atkpeer/Peer%d", i)
			mainC, peerC := callFloodClasses(cn, peerCn)
			if err := peerIso.Loader().Define(peerC); err != nil {
				return nil, err
			}
			iso.Loader().AddDelegate(peerIso.Loader())
			if err := iso.Loader().Define(mainC); err != nil {
				return nil, err
			}
			entry = "()V"
		default:
			return nil, fmt.Errorf("slo: unknown attacker kind %q", kind)
		}
		c, err := iso.Loader().Lookup(cn)
		if err != nil {
			return nil, err
		}
		m, err := c.LookupMethod("attack", entry)
		if err != nil {
			return nil, err
		}
		if _, err := vm.SpawnThread(fmt.Sprintf("atk:%s", kind), iso, m, args); err != nil {
			return nil, err
		}
		attackers = append(attackers, &attacker{kind: kind, iso: iso})
	}

	var gov *sched.Governor
	if cfg.Governed {
		gcfg := sched.GovernorConfig{}
		if cfg.Governor != nil {
			gcfg = *cfg.Governor
		}
		gov = sched.NewGovernor(gcfg)
	}
	policy := sched.PolicyProportional
	if cfg.RoundRobin {
		policy = sched.PolicyRoundRobin
	}

	resCh := make(chan interp.RunResult, 1)
	go func() {
		resCh <- sched.RunConfig(vm, sched.Config{
			Workers:  cfg.Workers,
			Policy:   policy,
			Governor: gov,
		})
	}()
	// Observe the run before administering it (the pool must have
	// installed its safepoint machinery before host-side spawns arrive).
	for vm.TotalInstructions() == 0 {
		time.Sleep(50 * time.Microsecond)
	}

	var completed, failed int64
	latMu := sync.Mutex{}
	lats := make([]int64, 0, cfg.Tenants*cfg.RequestsPerTenant)
	start := time.Now()
	var wg sync.WaitGroup
	for ti, tn := range tenants {
		wg.Add(1)
		go func(ti int, tn *tenant) {
			defer wg.Done()
			myLats := make([]int64, 0, cfg.RequestsPerTenant)
			for r := 0; r < cfg.RequestsPerTenant; r++ {
				th, err := vm.SpawnThread(fmt.Sprintf("req:t%d-%d", ti, r), tn.iso, tn.work,
					[]heap.Value{heap.IntVal(int64(cfg.WorkIters))})
				if err != nil {
					atomic.AddInt64(&failed, 1)
					continue
				}
				// The poll only detects completion; the latency itself is
				// the worker-stamped virtual interval, so poll granularity
				// (which can reach Go sysmon preemption scale when VM
				// workers saturate the host CPUs) does not distort it.
				for !th.Done() {
					time.Sleep(20 * time.Microsecond)
				}
				lat := th.FinishTick() - th.SpawnTick()
				if th.Failure() != nil || th.Err() != nil || th.Result().I != int64(cfg.WorkIters) {
					atomic.AddInt64(&failed, 1)
					continue
				}
				atomic.AddInt64(&completed, 1)
				myLats = append(myLats, lat)
			}
			latMu.Lock()
			lats = append(lats, myLats...)
			latMu.Unlock()
		}(ti, tn)
	}
	wg.Wait()
	wall := time.Since(start)
	totalTicks := vm.Clock()
	vm.Shutdown()
	runRes := <-resCh

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	res := &SLOResult{
		Requests:   cfg.Tenants * cfg.RequestsPerTenant,
		Completed:  completed,
		Failed:     failed,
		Wall:       wall,
		P50:        pct(0.50),
		P99:        pct(0.99),
		P999:       pct(0.999),
		TotalTicks: totalTicks,
	}
	if wall > 0 {
		res.Goodput = float64(completed) / wall.Seconds()
	}
	if gov != nil {
		res.Governor = gov.Stats()
	}
	attackerByIso := make(map[string]*attacker, len(attackers))
	for _, a := range attackers {
		attackerByIso[a.iso.Name()] = a
	}
	for _, ir := range runRes.PerIsolate {
		if a, ok := attackerByIso[ir.Name]; ok {
			fate := AttackerFate{Kind: a.kind, Killed: ir.Killed, Instructions: ir.Instructions}
			if gov != nil {
				fate.Stage = gov.StageOf(a.iso)
			}
			res.Attackers = append(res.Attackers, fate)
			res.AttackerInstructions += ir.Instructions
			continue
		}
		for _, tn := range tenants {
			if tn.iso.Name() == ir.Name {
				res.TenantInstructions += ir.Instructions
				break
			}
		}
	}
	// Call-flood peers are attacker CPU too.
	for _, ir := range runRes.PerIsolate {
		if len(ir.Name) > 5 && ir.Name[len(ir.Name)-5:] == "-peer" {
			res.AttackerInstructions += ir.Instructions
		}
	}
	return res, nil
}
