package workloads

import (
	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
)

// Spec describes one SPEC JVM98-analogue macro workload (Figure 2). Each
// workload is a bundle-sized class set with a static driver
// "run(I)I" whose result is a deterministic checksum, letting tests assert
// that Shared and Isolated modes compute identical results.
type Spec struct {
	// Name is the SPEC program the workload models.
	Name string
	// Profile describes the dominant operation mix being reproduced.
	Profile string
	// Driver is the entry class; the entry method is run(I)I.
	Driver string
	// DefaultN is the iteration count used by Figure 2.
	DefaultN int64
	// Classes builds a fresh class set (class objects are single-use:
	// they link into exactly one loader).
	Classes func() []*classfile.Class
}

// SpecJVM98 returns the seven workloads modelling the SPEC JVM98 suite.
func SpecJVM98() []Spec {
	return []Spec{
		{
			Name:     "compress",
			Profile:  "array scans, integer ops, run-length encoding",
			Driver:   "spec/compress/Main",
			DefaultN: 20,
			Classes:  compressClasses,
		},
		{
			Name:     "jess",
			Profile:  "rule-condition branching over a fact base",
			Driver:   "spec/jess/Main",
			DefaultN: 400,
			Classes:  jessClasses,
		},
		{
			Name:     "db",
			Profile:  "record objects, field access, sort/lookup passes",
			Driver:   "spec/db/Main",
			DefaultN: 150,
			Classes:  dbClasses,
		},
		{
			Name:     "javac",
			Profile:  "string scanning and tokenization (native-heavy)",
			Driver:   "spec/javac/Main",
			DefaultN: 300,
			Classes:  javacClasses,
		},
		{
			Name:     "mpegaudio",
			Profile:  "float filter kernels",
			Driver:   "spec/mpegaudio/Main",
			DefaultN: 3000,
			Classes:  mpegClasses,
		},
		{
			Name:     "mtrt",
			Profile:  "float vector math, ray-sphere intersection",
			Driver:   "spec/mtrt/Main",
			DefaultN: 1500,
			Classes:  mtrtClasses,
		},
		{
			Name:     "jack",
			Profile:  "string building and allocation churn",
			Driver:   "spec/jack/Main",
			DefaultN: 250,
			Classes:  jackClasses,
		},
	}
}

// SpecByName returns the workload with the given name, or nil.
func SpecByName(name string) *Spec {
	specs := SpecJVM98()
	for i := range specs {
		if specs[i].Name == name {
			return &specs[i]
		}
	}
	return nil
}

// compress: run-length encode a synthetic 4096-entry buffer n times.
func compressClasses() []*classfile.Class {
	const cn = "spec/compress/Main"
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=data 2=checksum 3=iter 4=i 5=v 6=run 7=t
			a.Const(4096).NewArray("").AStore(1)
			// fill: data[i] = (i/7) & 255
			a.Const(0).IStore(4)
			a.Label("fill")
			a.ILoad(4).Const(4096).IfICmpGe("filled")
			a.ALoad(1).ILoad(4).ILoad(4).Const(7).IDiv().Const(255).IAnd().ArrayStore()
			a.IInc(4, 1).Goto("fill")
			a.Label("filled")
			a.Const(0).IStore(2)
			a.Const(0).IStore(3)
			a.Label("outer")
			a.ILoad(3).ILoad(0).IfICmpGe("done")
			a.Const(0).IStore(4)
			a.Label("inner")
			a.ILoad(4).Const(4096).IfICmpGe("enditer")
			// v = data[i]; run = 1
			a.ALoad(1).ILoad(4).ArrayLoad().IStore(5)
			a.Const(1).IStore(6)
			a.Label("scan")
			// t = i + run; if (t >= 4096 || data[t] != v || run >= 255) break
			a.ILoad(4).ILoad(6).IAdd().IStore(7)
			a.ILoad(7).Const(4096).IfICmpGe("endscan")
			a.ALoad(1).ILoad(7).ArrayLoad().ILoad(5).IfICmpNe("endscan")
			a.ILoad(6).Const(255).IfICmpGe("endscan")
			a.IInc(6, 1).Goto("scan")
			a.Label("endscan")
			// checksum += v + run; i += run
			a.ILoad(2).ILoad(5).IAdd().ILoad(6).IAdd().IStore(2)
			a.ILoad(4).ILoad(6).IAdd().IStore(4)
			a.Goto("inner")
			a.Label("enditer")
			a.IInc(3, 1).Goto("outer")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// jess: branch-heavy rule evaluation over a fact base.
func jessClasses() []*classfile.Class {
	const cn = "spec/jess/Main"
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=facts 2=derived 3=iter 4=i 5=f
			a.Const(512).NewArray("").AStore(1)
			a.Const(0).IStore(4)
			a.Label("fill")
			a.ILoad(4).Const(512).IfICmpGe("filled")
			a.ALoad(1).ILoad(4).ILoad(4).Const(17).IMul().Const(256).IRem().ArrayStore()
			a.IInc(4, 1).Goto("fill")
			a.Label("filled")
			a.Const(0).IStore(2)
			a.Const(0).IStore(3)
			a.Label("outer")
			a.ILoad(3).ILoad(0).IfICmpGe("done")
			a.Const(0).IStore(4)
			a.Label("inner")
			a.ILoad(4).Const(512).IfICmpGe("enditer")
			a.ALoad(1).ILoad(4).ArrayLoad().IStore(5)
			// rule 1: even and > 64  -> derived += f >> 1
			a.ILoad(5).Const(1).IAnd().IfNe("rule2")
			a.ILoad(5).Const(64).IfICmpLe("rule2")
			a.ILoad(2).ILoad(5).Const(1).IShr().IAdd().IStore(2)
			a.Goto("next")
			a.Label("rule2")
			// rule 2: f % 3 == 0 -> derived += f * 2
			a.ILoad(5).Const(3).IRem().IfNe("rule3")
			a.ILoad(2).ILoad(5).Const(2).IMul().IAdd().IStore(2)
			a.Goto("next")
			a.Label("rule3")
			a.IInc(2, 1)
			a.Label("next")
			a.IInc(4, 1).Goto("inner")
			a.Label("enditer")
			a.IInc(3, 1).Goto("outer")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// db: record objects with field traffic, a bubble pass and lookups.
func dbClasses() []*classfile.Class {
	const rec = "spec/db/Record"
	const cn = "spec/db/Main"
	record := classfile.NewClass(rec).
		Field("key", classfile.KindInt).
		Field("val", classfile.KindInt).
		Method(classfile.InitName, "(II)V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V")
			a.ALoad(0).ILoad(1).PutField(rec, "key")
			a.ALoad(0).ILoad(2).PutField(rec, "val")
			a.Return()
		}).MustBuild()
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=tab 2=acc 3=iter 4=i 5=tmpA 6=tmpB
			a.Const(256).NewArray(rec).AStore(1)
			a.Const(0).IStore(4)
			a.Label("fill")
			a.ILoad(4).Const(256).IfICmpGe("filled")
			a.ALoad(1).ILoad(4)
			a.New(rec).Dup().ILoad(4).Const(73).IMul().Const(256).IRem().ILoad(4).
				InvokeSpecial(rec, classfile.InitName, "(II)V")
			a.ArrayStore()
			a.IInc(4, 1).Goto("fill")
			a.Label("filled")
			a.Const(0).IStore(2)
			a.Const(0).IStore(3)
			a.Label("outer")
			a.ILoad(3).ILoad(0).IfICmpGe("done")
			// bubble pass: one sweep comparing adjacent keys
			a.Const(0).IStore(4)
			a.Label("sweep")
			a.ILoad(4).Const(255).IfICmpGe("swept")
			a.ALoad(1).ILoad(4).ArrayLoad().AStore(5)
			a.ALoad(1).ILoad(4).Const(1).IAdd().ArrayLoad().AStore(6)
			a.ALoad(5).GetField(rec, "key").ALoad(6).GetField(rec, "key").IfICmpLe("noswap")
			a.ALoad(1).ILoad(4).ALoad(6).ArrayStore()
			a.ALoad(1).ILoad(4).Const(1).IAdd().ALoad(5).ArrayStore()
			a.Label("noswap")
			a.IInc(4, 1).Goto("sweep")
			a.Label("swept")
			// lookups: acc += tab[iter % 256].val + tab[0].key
			a.ILoad(2).ALoad(1).ILoad(3).Const(256).IRem().ArrayLoad().GetField(rec, "val").IAdd().IStore(2)
			a.ILoad(2).ALoad(1).Const(0).ArrayLoad().GetField(rec, "key").IAdd().IStore(2)
			a.IInc(3, 1).Goto("outer")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	return []*classfile.Class{record, main}
}

// javac: tokenization of a constant source string (native string calls).
func javacClasses() []*classfile.Class {
	const cn = "spec/javac/Main"
	const src = "class Foo { int x = 42 ; int y = x + 7 ; void m ( ) { y = y * x ; } } " +
		"class Bar extends Foo { float z = 3 ; int w ( int a ) { return a + 1 ; } }"
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=src 2=tokens 3=iter 4=i 5=state 6=len 7=c
			a.Str(src).AStore(1)
			a.ALoad(1).InvokeVirtual("java/lang/String", "length", "()I").IStore(6)
			a.Const(0).IStore(2)
			a.Const(0).IStore(3)
			a.Label("outer")
			a.ILoad(3).ILoad(0).IfICmpGe("done")
			a.Const(0).IStore(4)
			a.Const(0).IStore(5)
			a.Label("inner")
			a.ILoad(4).ILoad(6).IfICmpGe("flush")
			a.ALoad(1).ILoad(4).InvokeVirtual("java/lang/String", "charAt", "(I)I").IStore(7)
			// if (c == ' ') { if (state != 0) tokens++; state = 0 } else state = 1
			a.ILoad(7).Const(32).IfICmpNe("word")
			a.ILoad(5).IfEq("cont")
			a.IInc(2, 1)
			a.Label("cont")
			a.Const(0).IStore(5)
			a.Goto("next")
			a.Label("word")
			a.Const(1).IStore(5)
			a.Label("next")
			a.IInc(4, 1).Goto("inner")
			a.Label("flush")
			a.ILoad(5).IfEq("enditer")
			a.IInc(2, 1)
			a.Label("enditer")
			a.IInc(3, 1).Goto("outer")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// mpegaudio: a 32-tap float filter kernel.
func mpegClasses() []*classfile.Class {
	const cn = "spec/mpegaudio/Main"
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=iter 2=k 3(float slot)=acc 4(float)=x
			a.FConst(0).FStore(3)
			a.Const(0).IStore(1)
			a.Label("outer")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.Const(0).IStore(2)
			a.Label("taps")
			a.ILoad(2).Const(32).IfICmpGe("enditer")
			// x = k * 0.5; acc = acc*0.98 + x*x - x
			a.ILoad(2).I2F().FConst(0.5).FMul().FStore(4)
			a.FLoad(3).FConst(0.98).FMul().FLoad(4).FLoad(4).FMul().FAdd().FLoad(4).FSub().FStore(3)
			a.IInc(2, 1).Goto("taps")
			a.Label("enditer")
			a.IInc(1, 1).Goto("outer")
			a.Label("done")
			a.FLoad(3).F2I().IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// mtrt: ray-sphere intersection tests in float math.
func mtrtClasses() []*classfile.Class {
	const cn = "spec/mtrt/Main"
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=iter 2=k 3=hits 4(f)=dx 5(f)=b 6(f)=disc
			a.Const(0).IStore(3)
			a.Const(0).IStore(1)
			a.Label("outer")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.Const(0).IStore(2)
			a.Label("rays")
			a.ILoad(2).Const(16).IfICmpGe("enditer")
			// dx = (k - 8) * 0.25; b = dx*2 - 1; disc = b*b - dx
			a.ILoad(2).Const(8).ISub().I2F().FConst(0.25).FMul().FStore(4)
			a.FLoad(4).FConst(2).FMul().FConst(1).FSub().FStore(5)
			a.FLoad(5).FLoad(5).FMul().FLoad(4).FSub().FStore(6)
			// if (disc > 0) hits++
			a.FLoad(6).FConst(0).FCmp().IfLe("miss")
			a.IInc(3, 1)
			a.Label("miss")
			a.IInc(2, 1).Goto("rays")
			a.Label("enditer")
			a.IInc(1, 1).Goto("outer")
			a.Label("done")
			a.ILoad(3).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}

// jack: allocation-heavy string generation via StringBuilder.
func jackClasses() []*classfile.Class {
	const cn = "spec/jack/Main"
	const sb = "java/lang/StringBuilder"
	main := classfile.NewClass(cn).
		Method(MicroDriverMethod, MicroDriverDesc, classfile.FlagStatic, func(a *bytecode.Assembler) {
			// locals: 0=n 1=iter 2=k 3=len 4=sb
			a.Const(0).IStore(3)
			a.Const(0).IStore(1)
			a.Label("outer")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.New(sb).Dup().InvokeSpecial(sb, classfile.InitName, "()V").AStore(4)
			a.Const(0).IStore(2)
			a.Label("emit")
			a.ILoad(2).Const(16).IfICmpGe("enditer")
			a.ALoad(4).ILoad(2).InvokeVirtual(sb, "appendInt", "(I)Ljava/lang/StringBuilder;").
				Str(",").InvokeVirtual(sb, "append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;").Pop()
			a.IInc(2, 1).Goto("emit")
			a.Label("enditer")
			a.ILoad(3).ALoad(4).InvokeVirtual(sb, "toString", "()Ljava/lang/String;").
				InvokeVirtual("java/lang/String", "length", "()I").IAdd().IStore(3)
			a.IInc(1, 1).Goto("outer")
			a.Label("done")
			a.ILoad(3).IReturn()
		}).MustBuild()
	return []*classfile.Class{main}
}
