package osgi

import (
	"fmt"
	"sort"
	"sync"

	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/rpc"
)

// ServiceRegistry is the OSGi name service (§3.4): bundles "register
// object references in a name service and find foreign references" through
// it. Handing a reference out through the registry is the explicit sharing
// mechanism of I-JVM — after that, calls on the service are direct method
// calls with thread migration.
type ServiceRegistry struct {
	vm *interp.VM
	// mu guards services and links: fan-out callers snapshot concurrently
	// with churn (kill + reinstall) mutating the registry. It is never
	// held across guest execution or link teardown.
	mu       sync.Mutex
	services map[string]*serviceEntry
	// links caches the inter-isolate messaging links created by FanOut,
	// torn down when their service is unregistered.
	links map[fanKey]*rpc.Link
	// onChange queues a service event for deferred dispatch (set by the
	// framework).
	onChange func(name string, eventType int64, origin *Bundle)
}

type serviceEntry struct {
	name   string
	obj    *heap.Object
	owner  *Bundle
	usedBy map[int]bool // bundle IDs that looked the service up
}

func newServiceRegistry(vm *interp.VM) *ServiceRegistry {
	return &ServiceRegistry{vm: vm, services: make(map[string]*serviceEntry)}
}

// Register publishes a service object under a name, owned by a bundle.
// The registry entry pins the object as a GC root charged to the owner.
func (r *ServiceRegistry) Register(name string, obj *heap.Object, owner *Bundle) error {
	if obj == nil {
		return fmt.Errorf("osgi: registering nil service %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[name]; dup {
		return fmt.Errorf("osgi: service %q already registered", name)
	}
	r.services[name] = &serviceEntry{
		name:   name,
		obj:    obj,
		owner:  owner,
		usedBy: make(map[int]bool),
	}
	r.vm.Pin(owner.iso.ID(), obj)
	if r.onChange != nil {
		r.onChange(name, 1 /* ServiceRegistered */, owner)
	}
	return nil
}

// Get returns the service object, or nil when unknown. user records the
// looking-up bundle for diagnostics.
func (r *ServiceRegistry) Get(name string, user *Bundle) *heap.Object {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.services[name]
	if !ok {
		return nil
	}
	if user != nil {
		e.usedBy[user.id] = true
	}
	return e.obj
}

// Unregister removes a service by name.
func (r *ServiceRegistry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.services[name]
	if !ok {
		return
	}
	r.vm.Unpin(e.owner.iso.ID(), e.obj)
	delete(r.services, name)
	r.dropLinksFor(name)
	if r.onChange != nil {
		r.onChange(name, 2 /* ServiceUnregistered */, e.owner)
	}
}

// unregisterOwnedBy drops every service owned by a bundle (bundle kill /
// uninstall path).
func (r *ServiceRegistry) unregisterOwnedBy(b *Bundle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.services {
		if e.owner == b {
			r.vm.Unpin(e.owner.iso.ID(), e.obj)
			delete(r.services, name)
			r.dropLinksFor(name)
			if r.onChange != nil {
				r.onChange(name, 2 /* ServiceUnregistered */, b)
			}
		}
	}
}

// Names returns the registered service names, sorted.
func (r *ServiceRegistry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.services))
	for name := range r.services {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OwnerOf returns the owning bundle of a service, or nil.
func (r *ServiceRegistry) OwnerOf(name string) *Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.services[name]; ok {
		return e.owner
	}
	return nil
}
