// Package osgi implements the OSGi-like component framework the paper
// runs on top of I-JVM (§3.4): bundles as deployment units with their own
// class loaders, package export/import wiring, a service registry (the
// name service through which the first shared objects flow), bundle
// lifecycle driven in fresh threads, StoppedBundleEvents, and
// administrative termination backed by isolate kill.
//
// The framework body is host (Go) code registered as Isolate0, with all
// bundle code, activators and services living in the VM — every
// inter-bundle service call is a guest-level direct method call with
// thread migration, which is where all of the paper's measured effects
// live (see DESIGN.md, substitution table).
package osgi

import (
	"fmt"
	"strings"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/loader"
)

// BundleState is the OSGi bundle lifecycle state.
type BundleState uint8

// Bundle lifecycle states.
const (
	StateInstalled BundleState = iota + 1
	StateResolved
	StateStarting
	StateActive
	StateStopping
	StateStopped
	StateUninstalled
)

// String returns the state name.
func (s BundleState) String() string {
	switch s {
	case StateInstalled:
		return "INSTALLED"
	case StateResolved:
		return "RESOLVED"
	case StateStarting:
		return "STARTING"
	case StateActive:
		return "ACTIVE"
	case StateStopping:
		return "STOPPING"
	case StateStopped:
		return "STOPPED"
	case StateUninstalled:
		return "UNINSTALLED"
	default:
		return "INVALID"
	}
}

// Manifest describes a bundle: its identity, the packages it exports and
// imports (slash-separated prefixes, e.g. "shapes/circle"), and its
// activator class, which may declare:
//
//	start(Lijvm/osgi/BundleContext;)V
//	stop(Lijvm/osgi/BundleContext;)V
//	bundleStopped(Ljava/lang/String;)V   (StoppedBundleEvent callback)
type Manifest struct {
	Name      string
	Version   string
	Exports   []string
	Imports   []string
	Activator string
}

// Bundle is one installed bundle.
type Bundle struct {
	id       int
	manifest Manifest
	state    BundleState
	classes  []*classfile.Class
	loader   *loader.Loader
	iso      *core.Isolate
	ctxObj   *heap.Object

	startThreadID int64
}

// ID returns the framework-assigned bundle ID (>= 1; 0 is the framework).
func (b *Bundle) ID() int { return b.id }

// Name returns the bundle's symbolic name.
func (b *Bundle) Name() string { return b.manifest.Name }

// State returns the lifecycle state.
func (b *Bundle) State() BundleState { return b.state }

// Manifest returns a copy of the bundle's manifest.
func (b *Bundle) Manifest() Manifest {
	m := b.manifest
	m.Exports = append([]string(nil), b.manifest.Exports...)
	m.Imports = append([]string(nil), b.manifest.Imports...)
	return m
}

// Isolate returns the bundle's isolate (the shared world isolate in
// baseline mode).
func (b *Bundle) Isolate() *core.Isolate { return b.iso }

// Loader returns the bundle's class loader.
func (b *Bundle) Loader() *loader.Loader { return b.loader }

// exportsPackage reports whether the bundle exports the package of a
// class name.
func (b *Bundle) exportsPackage(pkg string) bool {
	for _, e := range b.manifest.Exports {
		if e == pkg {
			return true
		}
	}
	return false
}

// packageOf returns the package prefix of a slash-separated class name.
func packageOf(className string) string {
	if i := strings.LastIndexByte(className, '/'); i >= 0 {
		return className[:i]
	}
	return ""
}

func (b *Bundle) String() string {
	return fmt.Sprintf("bundle %d %s@%s [%s]", b.id, b.manifest.Name, b.manifest.Version, b.state)
}
