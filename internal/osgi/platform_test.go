package osgi_test

import (
	"strings"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/osgi"
)

// TestPlatformEndToEnd drives a full platform lifecycle in one scenario:
// a Felix-like base configuration plus a service provider/consumer pair
// and a memory-hogging third-party bundle; the consumer keeps calling the
// provider across the attack, the automated administrator kills the hog,
// and the platform state stays consistent throughout.
func TestPlatformEndToEnd(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)

	// Base management bundles.
	if _, err := osgi.InstallAndStart(f, osgi.FelixConfig()); err != nil {
		t.Fatal(err)
	}

	// Application pair.
	pClasses, pMan := providerSpec()
	cClasses, cMan := consumerSpec()
	provider := f.MustInstall(pMan, pClasses)
	consumer := f.MustInstall(cMan, cClasses)
	if _, err := f.Start(provider); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start(consumer); err != nil {
		t.Fatal(err)
	}

	drive := func(n int64) int64 {
		t.Helper()
		class, err := consumer.Loader().Lookup("consumer/Client")
		if err != nil {
			t.Fatal(err)
		}
		m, err := class.LookupMethod("drive", "(I)I")
		if err != nil {
			t.Fatal(err)
		}
		v, th, err := f.VM().CallRoot(consumer.Isolate(), m, []heap.Value{heap.IntVal(n)}, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if th.Failure() != nil {
			t.Fatalf("drive failed: %s", th.FailureString())
		}
		return v.I
	}
	if got := drive(50); got != 50 {
		t.Fatalf("drive(50) = %d", got)
	}

	// Third-party hog arrives.
	hog := classfile.NewClass("rogue/Hog").
		StaticField("hoard", classfile.KindRef).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(8192).NewArray("").PutStatic("rogue/Hog", "hoard")
			a.Const(0).IStore(0)
			a.Label("loop")
			a.ILoad(0).Const(8192).IfICmpGe("done")
			a.GetStatic("rogue/Hog", "hoard").ILoad(0).Const(256).NewArray("").ArrayStore()
			a.IInc(0, 1).Goto("loop")
			a.Label("done")
			a.Return()
		}).MustBuild()
	rogue := f.MustInstall(osgi.Manifest{Name: "rogue"}, []*classfile.Class{hog})
	am, _ := hog.LookupMethod("attack", "()V")
	at, err := f.VM().SpawnThread("rogue:attack", rogue.Isolate(), am, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.VM().RunUntil(at, 100_000_000)

	// The pair still communicates during the attack (memory pressure is
	// visible to allocation-heavy code, but the call path is fine).
	if got := drive(25); got != 75 {
		t.Fatalf("drive during attack = %d, want cumulative 75", got)
	}

	// Automated admin identifies and kills the hog — and nothing else.
	admin := osgi.NewAutoAdmin(f, osgi.AdminPolicy{
		Thresholds: core.Thresholds{MaxLiveBytes: 4 << 20},
	})
	actions, err := admin.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Bundle != "rogue" || !actions[0].Killed {
		t.Fatalf("admin actions = %v", actions)
	}
	for _, b := range f.Bundles() {
		if b.Name() != "rogue" && b.Isolate().Killed() {
			t.Fatalf("innocent bundle %s killed", b.Name())
		}
	}

	// Platform fully functional after recovery.
	if got := drive(25); got != 100 {
		t.Fatalf("drive after recovery = %d, want cumulative 100", got)
	}

	// The shell reflects the final state coherently.
	var sb strings.Builder
	shell := osgi.NewShell(f)
	if err := shell.Execute(&sb, "bundles"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rogue") || !strings.Contains(out, "ACTIVE") {
		t.Fatalf("shell bundles:\n%s", out)
	}
	sb.Reset()
	if err := shell.Execute(&sb, "stats"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "provider") {
		t.Fatalf("shell stats:\n%s", sb.String())
	}

	// Heap integrity: after a final collection, the rogue's hoard is
	// gone and the live set is small again.
	f.VM().CollectGarbage(nil)
	if used := f.VM().Heap().Used(); used > 4<<20 {
		t.Fatalf("heap still holds %d bytes after the rogue's death", used)
	}
}
