package osgi

import (
	"fmt"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
)

// BundleSpec couples a manifest with its class set; used by the synthetic
// platform configurations that reproduce Figure 3.
type BundleSpec struct {
	Manifest Manifest
	Classes  []*classfile.Class
}

// ManagementBundle synthesizes a management bundle in the style of
// Felix/Equinox support bundles (administration, shell, repository, ...):
// nClasses classes, each with static state initialized in <clinit>, string
// constants, instance methods, and an activator that allocates working
// state and registers a service. The memory it occupies scales with its
// parameters, which is what Figure 3 measures.
func ManagementBundle(name string, nClasses, stringsPerClass, staticArrayLen int) BundleSpec {
	pkg := "mgmt/" + name
	activatorName := pkg + "/Activator"
	classes := make([]*classfile.Class, 0, nClasses+1)

	for ci := 0; ci < nClasses; ci++ {
		cname := fmt.Sprintf("%s/Component%d", pkg, ci)
		b := classfile.NewClass(cname)
		b.StaticField("table", classfile.KindRef)
		b.StaticField("hits", classfile.KindInt)
		b.Field("state", classfile.KindInt)
		b.Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// table = new Object[staticArrayLen]; plus intern strings.
			a.Const(int64(staticArrayLen)).NewArray("").PutStatic(cname, "table")
			for si := 0; si < stringsPerClass; si++ {
				a.Str(fmt.Sprintf("%s.const.%d.%s", cname, si, padding)).Pop()
			}
			a.Return()
		})
		b.Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		})
		b.Method("touch", "(I)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(cname, "hits").Const(1).IAdd().PutStatic(cname, "hits")
			a.ALoad(0).ILoad(1).PutField(cname, "state")
			a.ALoad(0).GetField(cname, "state").IReturn()
		})
		classes = append(classes, b.MustBuild())
	}

	act := classfile.NewClass(activatorName)
	act.StaticField("workset", classfile.KindRef)
	act.Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
		a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
	})
	act.Method("start", "(Lijvm/osgi/BundleContext;)V", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
		// workset = new ArrayList(); fill with components; register self
		// as a service.
		a.New("java/util/ArrayList").Dup().
			InvokeSpecial("java/util/ArrayList", classfile.InitName, "()V").
			PutStatic(activatorName, "workset")
		for ci := 0; ci < nClasses; ci++ {
			cname := fmt.Sprintf("%s/Component%d", pkg, ci)
			a.GetStatic(activatorName, "workset")
			a.New(cname).Dup().InvokeSpecial(cname, classfile.InitName, "()V")
			a.InvokeVirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)Z").Pop()
		}
		a.ALoad(0).Str("svc/"+name).GetStatic(activatorName, "workset").
			InvokeVirtual("ijvm/osgi/BundleContext", "registerService", "(Ljava/lang/String;Ljava/lang/Object;)V")
		a.Return()
	})
	act.Method("stop", "(Lijvm/osgi/BundleContext;)V", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
		a.Null().PutStatic(activatorName, "workset")
		a.Return()
	})
	classes = append(classes, act.MustBuild())

	return BundleSpec{
		Manifest: Manifest{
			Name:      name,
			Version:   "1.0.0",
			Exports:   []string{pkg},
			Activator: activatorName,
		},
		Classes: classes,
	}
}

// padding lengthens synthetic string constants so string-pool footprints
// are visible in the memory measurements.
const padding = "........................................"

// FelixConfig is the paper's Felix base configuration: the OSGi runtime
// plus three management bundles (administration, shell, repository) —
// §4.2, Figure 3.
func FelixConfig() []BundleSpec {
	return []BundleSpec{
		ManagementBundle("administration", 6, 12, 64),
		ManagementBundle("shell", 4, 16, 32),
		ManagementBundle("repository", 8, 10, 96),
	}
}

// EquinoxConfig is the paper's Equinox base configuration: the OSGi
// runtime plus twenty-two management bundles — §4.2, Figure 3.
func EquinoxConfig() []BundleSpec {
	specs := make([]BundleSpec, 0, 22)
	for i := 0; i < 22; i++ {
		specs = append(specs, ManagementBundle(
			fmt.Sprintf("equinox-mgmt-%02d", i),
			3+i%5,  // 3-7 classes
			8+i%9,  // 8-16 strings per class
			32+i*4, // growing static tables
		))
	}
	return specs
}

// InstallAndStart installs, resolves and starts every spec in order.
func InstallAndStart(f *Framework, specs []BundleSpec) ([]*Bundle, error) {
	bundles := make([]*Bundle, 0, len(specs))
	for _, spec := range specs {
		b, err := f.Install(spec.Manifest, spec.Classes)
		if err != nil {
			return bundles, err
		}
		if _, err := f.Start(b); err != nil {
			return bundles, err
		}
		bundles = append(bundles, b)
	}
	return bundles, nil
}
