package osgi_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/osgi"
)

// listenerSpec builds a bundle whose activator records every
// serviceChanged event in statics.
func listenerSpec() ([]*classfile.Class, osgi.Manifest) {
	const cn = "listener/Activator"
	act := classfile.NewClass(cn).
		StaticField("registered", classfile.KindInt).
		StaticField("unregistered", classfile.KindInt).
		StaticField("lastName", classfile.KindRef).
		Method("start", "(Lijvm/osgi/BundleContext;)V", classfile.FlagPublic|classfile.FlagStatic,
			func(a *bytecode.Assembler) { a.Return() }).
		Method("serviceChanged", "(Ljava/lang/String;I)V", classfile.FlagPublic|classfile.FlagStatic,
			func(a *bytecode.Assembler) {
				a.ALoad(0).PutStatic(cn, "lastName")
				a.ILoad(1).Const(1).IfICmpNe("unreg")
				a.GetStatic(cn, "registered").Const(1).IAdd().PutStatic(cn, "registered")
				a.Return()
				a.Label("unreg")
				a.GetStatic(cn, "unregistered").Const(1).IAdd().PutStatic(cn, "unregistered")
				a.Return()
			}).MustBuild()
	return []*classfile.Class{act}, osgi.Manifest{Name: "listener", Activator: cn}
}

// TestServiceEventsDelivered verifies register/unregister events reach
// listener bundles, and that the origin bundle is not notified of its
// own registrations.
func TestServiceEventsDelivered(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	lClasses, lMan := listenerSpec()
	listener := f.MustInstall(lMan, lClasses)
	if _, err := f.Start(listener); err != nil {
		t.Fatal(err)
	}

	pClasses, pMan := providerSpec()
	provider := f.MustInstall(pMan, pClasses)
	if _, err := f.Start(provider); err != nil {
		t.Fatal(err)
	}

	readStatic := func(slotName string) int64 {
		class, err := listener.Loader().Lookup("listener/Activator")
		if err != nil {
			t.Fatal(err)
		}
		field, err := class.LookupStaticField(slotName)
		if err != nil {
			t.Fatal(err)
		}
		mirror := f.VM().World().Mirror(class, listener.Isolate())
		return mirror.Statics[field.Slot].I
	}

	if got := readStatic("registered"); got != 1 {
		t.Fatalf("registered events = %d, want 1", got)
	}
	if got := readStatic("unregistered"); got != 0 {
		t.Fatalf("unregistered events = %d, want 0", got)
	}

	// Killing the provider unregisters its service -> one event.
	if err := f.KillBundle(provider); err != nil {
		t.Fatal(err)
	}
	if got := readStatic("unregistered"); got != 1 {
		t.Fatalf("unregistered events after kill = %d, want 1", got)
	}
}

// TestHangingActivatorDoesNotFreezeFramework verifies §3.4 rule 1: start
// runs in a fresh thread, so a malicious activator that never returns
// cannot freeze the OSGi runtime.
func TestHangingActivatorDoesNotFreezeFramework(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	f.LifecycleBudget = 200_000 // keep the test fast
	const cn = "hang/Activator"
	act := classfile.NewClass(cn).
		Method("start", "(Lijvm/osgi/BundleContext;)V", classfile.FlagPublic|classfile.FlagStatic,
			func(a *bytecode.Assembler) {
				a.Label("loop")
				a.Goto("loop")
			}).MustBuild()
	hang := f.MustInstall(osgi.Manifest{Name: "hang", Activator: cn}, []*classfile.Class{act})
	th, err := f.Start(hang)
	if err != nil {
		t.Fatalf("framework must survive a hanging start: %v", err)
	}
	if th == nil || th.Done() {
		t.Fatal("the hanging start thread must still be parked/running")
	}
	if hang.State() != osgi.StateActive {
		t.Fatalf("bundle state = %s", hang.State())
	}

	// The framework remains fully operational: another bundle installs
	// and starts normally.
	pClasses, pMan := providerSpec()
	provider := f.MustInstall(pMan, pClasses)
	if _, err := f.Start(provider); err != nil {
		t.Fatal(err)
	}
	if provider.State() != osgi.StateActive {
		t.Fatal("provider blocked by the hanging activator")
	}
	// And the administrator can still kill the hanging bundle.
	if err := f.KillBundle(hang); err != nil {
		t.Fatal(err)
	}
	f.VM().Run(1_000_000)
	if !th.Done() {
		t.Fatal("hanging start thread must die after the kill")
	}
}

// TestStopUnregistersServices covers the stop path's registry cleanup.
func TestStopUnregistersServices(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	pClasses, pMan := providerSpec()
	provider := f.MustInstall(pMan, pClasses)
	if _, err := f.Start(provider); err != nil {
		t.Fatal(err)
	}
	if len(f.Registry().Names()) != 1 {
		t.Fatal("service not registered")
	}
	if _, err := f.Stop(provider); err != nil {
		t.Fatal(err)
	}
	if len(f.Registry().Names()) != 0 {
		t.Fatal("stop must unregister the bundle's services")
	}
	if err := f.Uninstall(provider); err != nil {
		t.Fatal(err)
	}
	if provider.State() != osgi.StateUninstalled {
		t.Fatalf("state = %s", provider.State())
	}
}
