package osgi

import (
	"fmt"

	"ijvm/internal/classfile"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
)

// buildContextClass defines ijvm/osgi/BundleContext in the bootstrap
// loader. The context is the object handed to activators (§3.4, "the
// start method of a bundle receives an object that represents OSGi. This
// object is the first shared object between bundles"); its natives bridge
// into the framework:
//
//	registerService(Ljava/lang/String;Ljava/lang/Object;)V
//	getService(Ljava/lang/String;)Ljava/lang/Object;
//	bundleName()Ljava/lang/String;
//
// The natives are system-library code: they execute in the calling
// bundle's isolate and charge it for any allocation.
func (f *Framework) buildContextClass() (*classfile.Class, error) {
	b := classfile.NewClass("ijvm/osgi/BundleContext")
	pub := classfile.FlagPublic

	bundleOf := func(recv heap.Value) (*Bundle, error) {
		if recv.R == nil {
			return nil, fmt.Errorf("nil BundleContext")
		}
		bundle, ok := recv.R.Native.(*Bundle)
		if !ok {
			return nil, fmt.Errorf("BundleContext without bundle payload")
		}
		return bundle, nil
	}

	b.NativeMethod("registerService", "(Ljava/lang/String;Ljava/lang/Object;)V", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			bundle, err := bundleOf(recv)
			if err != nil {
				return interp.NativeResult{}, err
			}
			name := ""
			if args[0].R != nil {
				name, _ = args[0].R.StringValue()
			}
			if name == "" {
				return interp.NativeThrowName(vm, t, "java/lang/IllegalArgumentException", "empty service name")
			}
			if args[1].R == nil {
				return interp.NativeThrowName(vm, t, interp.ClassNullPointerException, "null service object")
			}
			if regErr := f.registry.Register(name, args[1].R, bundle); regErr != nil {
				return interp.NativeThrowName(vm, t, "java/lang/IllegalStateException", regErr.Error())
			}
			return interp.NativeVoid()
		}))

	b.NativeMethod("getService", "(Ljava/lang/String;)Ljava/lang/Object;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			bundle, err := bundleOf(recv)
			if err != nil {
				return interp.NativeResult{}, err
			}
			name := ""
			if args[0].R != nil {
				name, _ = args[0].R.StringValue()
			}
			obj := f.registry.Get(name, bundle)
			if obj == nil {
				return interp.NativeReturn(heap.Null())
			}
			return interp.NativeReturn(heap.RefVal(obj))
		}))

	b.NativeMethod("bundleName", "()Ljava/lang/String;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			bundle, err := bundleOf(recv)
			if err != nil {
				return interp.NativeResult{}, err
			}
			obj, serr := vm.InternString(t, t.CurrentIsolateOrZero(), bundle.manifest.Name)
			if serr != nil {
				return interp.NativeResult{}, serr
			}
			return interp.NativeReturn(heap.RefVal(obj))
		}))

	class, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("osgi: building BundleContext: %w", err)
	}
	if err := f.vm.Registry().Bootstrap().Define(class); err != nil {
		return nil, fmt.Errorf("osgi: defining BundleContext: %w", err)
	}
	return class, nil
}
