package osgi_test

import (
	"strings"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/osgi"
)

func trivialClasses(pkg string) []*classfile.Class {
	c := classfile.NewClass(pkg+"/Impl").
		Method("noop", "()V", classfile.FlagStatic, func(a *bytecode.Assembler) { a.Return() }).
		MustBuild()
	return []*classfile.Class{c}
}

func TestResolveFailsForMissingImport(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	b, err := f.Install(osgi.Manifest{Name: "needy", Imports: []string{"absent/pkg"}},
		trivialClasses("needy"))
	if err != nil {
		t.Fatal(err)
	}
	err = f.Resolve(b)
	if err == nil || !strings.Contains(err.Error(), "no bundle exports") {
		t.Fatalf("err = %v", err)
	}
	if b.State() != osgi.StateInstalled {
		t.Fatalf("state = %s, want INSTALLED", b.State())
	}
	// Installing the exporter later lets resolution succeed.
	exp, err := f.Install(osgi.Manifest{Name: "exporter", Exports: []string{"absent/pkg"}},
		trivialClasses("absent/pkg"))
	if err != nil {
		t.Fatal(err)
	}
	_ = exp
	if err := f.Resolve(b); err != nil {
		t.Fatalf("resolve after exporter installed: %v", err)
	}
	if b.State() != osgi.StateResolved {
		t.Fatalf("state = %s, want RESOLVED", b.State())
	}
}

func TestResolveSkipsKilledExporters(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	exp1, err := f.Install(osgi.Manifest{Name: "exp1", Exports: []string{"shared/pkg"}},
		trivialClasses("shared/pkg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.KillBundle(exp1); err != nil {
		t.Fatal(err)
	}
	importer, err := f.Install(osgi.Manifest{Name: "imp", Imports: []string{"shared/pkg"}},
		trivialClasses("imp"))
	if err != nil {
		t.Fatal(err)
	}
	// The only exporter is dead: resolution must fail rather than wire
	// to a killed bundle.
	if err := f.Resolve(importer); err == nil {
		t.Fatal("resolution wired to a killed exporter")
	}
}

func TestInstallRejectsDuplicatesAndEmptyNames(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	if _, err := f.Install(osgi.Manifest{}, nil); err == nil {
		t.Fatal("empty manifest accepted")
	}
	if _, err := f.Install(osgi.Manifest{Name: "dup"}, trivialClasses("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(osgi.Manifest{Name: "dup"}, trivialClasses("dup2")); err == nil {
		t.Fatal("duplicate bundle name accepted")
	}
}

func TestUninstallRequiresStopped(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	pClasses, pMan := providerSpec()
	provider := f.MustInstall(pMan, pClasses)
	if _, err := f.Start(provider); err != nil {
		t.Fatal(err)
	}
	if err := f.Uninstall(provider); err == nil {
		t.Fatal("uninstall of an ACTIVE bundle accepted")
	}
	if _, err := f.Stop(provider); err != nil {
		t.Fatal(err)
	}
	if err := f.Uninstall(provider); err != nil {
		t.Fatal(err)
	}
	// An uninstalled bundle cannot resolve or restart.
	if err := f.Resolve(provider); err == nil {
		t.Fatal("resolve of uninstalled bundle accepted")
	}
}

func TestBundleManifestIsCopied(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	b, err := f.Install(osgi.Manifest{Name: "m", Exports: []string{"p"}}, trivialClasses("p"))
	if err != nil {
		t.Fatal(err)
	}
	man := b.Manifest()
	man.Exports[0] = "hijacked"
	if got := b.Manifest().Exports[0]; got != "p" {
		t.Fatalf("manifest aliased: %q", got)
	}
}
