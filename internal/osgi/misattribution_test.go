package osgi_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/osgi"
)

// TestAutoAdminMisattribution reproduces the cautionary §4.4 scenario as
// an end-to-end demonstration of why the paper leaves the kill decision
// to a human: a malicious bundle M drives a tight call loop into an
// innocent service bundle A. CPU sampling charges the majority of the
// time to A (the callee), so a naive automated administrator keyed on CPU
// share kills the *victim*.
func TestAutoAdminMisattribution(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)

	// Innocent service bundle A.
	const svc = "a/Service"
	svcClass := classfile.NewClass(svc).
		Method("work", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(3).IMul().Const(7).IAdd().IStore(1)
			a.ILoad(1).Const(5).IRem().ILoad(0).IAdd().IStore(1)
			a.ILoad(1).Const(13).IMul().Const(11).IRem().IStore(1)
			a.ILoad(1).ILoad(0).IXor().IReturn()
		}).MustBuild()
	bundleA, err := f.Install(osgi.Manifest{Name: "service-a", Exports: []string{"a"}},
		[]*classfile.Class{svcClass})
	if err != nil {
		t.Fatal(err)
	}

	// Malicious caller M.
	const drv = "m/Loop"
	drvClass := classfile.NewClass(drv).
		Method("attack", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1).Const(0).IStore(2)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ILoad(1).InvokeStatic(svc, "work", "(I)I").IStore(2)
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
	bundleM, err := f.Install(osgi.Manifest{Name: "malice-m", Imports: []string{"a"}},
		[]*classfile.Class{drvClass})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Resolve(bundleM); err != nil {
		t.Fatal(err)
	}

	// M hammers A.
	m, err := drvClass.LookupMethod("attack", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	mt, err := f.VM().SpawnThread("malice:loop", bundleM.Isolate(), m,
		[]heap.Value{heap.IntVal(100_000)})
	if err != nil {
		t.Fatal(err)
	}
	f.VM().RunUntil(mt, 0)

	// The callee was charged more CPU than the caller — sampling's known
	// imprecision.
	if bundleA.Isolate().Account().CPUSamples.Load() <= bundleM.Isolate().Account().CPUSamples.Load() {
		t.Fatalf("expected the callee to dominate the samples: A=%d M=%d",
			bundleA.Isolate().Account().CPUSamples.Load(), bundleM.Isolate().Account().CPUSamples.Load())
	}

	// The naive automated administrator kills the innocent bundle.
	admin := osgi.NewAutoAdmin(f, osgi.AdminPolicy{
		Thresholds: core.Thresholds{MinCPUSharePercent: 50, MinCPUSamples: 10},
	})
	actions, err := admin.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 {
		t.Fatalf("actions = %v", actions)
	}
	if actions[0].Bundle != "service-a" || !actions[0].Killed {
		t.Fatalf("expected the automation to (wrongly) kill service-a, got %v", actions[0])
	}
	// This is exactly why §4.4 concludes CPU samples "cannot in the
	// current design be used to automatically kill these bundles".
}
