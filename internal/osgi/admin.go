package osgi

import (
	"fmt"

	"ijvm/internal/core"
)

// AdminPolicy configures the automated administrator. The paper positions
// accounting as decision support for a *human* administrator and
// explicitly discusses why naive automation is unsafe (§4.4: sampling can
// charge a victim callee for a malicious caller's loop). AutoAdmin
// implements the automation anyway — with the safeguards below — so the
// §4.4 misattribution scenarios can be demonstrated and tested.
type AdminPolicy struct {
	// Thresholds drive the detectors.
	Thresholds core.Thresholds
	// MaxKills bounds administrative kills per run (0 = unlimited).
	MaxKills int
	// DryRun reports findings without killing.
	DryRun bool
	// Protected lists bundle names the admin must never kill.
	Protected []string
}

// AdminAction records one decision of the automated administrator.
type AdminAction struct {
	Finding core.Finding
	Bundle  string
	Killed  bool
	Reason  string
}

func (a AdminAction) String() string {
	verb := "flagged"
	if a.Killed {
		verb = "killed"
	}
	return fmt.Sprintf("%s %s: %s (%s)", verb, a.Bundle, a.Finding.Rule, a.Reason)
}

// AutoAdmin is the automated administrator loop.
type AutoAdmin struct {
	fw     *Framework
	policy AdminPolicy
	kills  int
	log    []AdminAction
}

// NewAutoAdmin creates an automated administrator for a framework.
func NewAutoAdmin(fw *Framework, policy AdminPolicy) *AutoAdmin {
	if policy.Thresholds == (core.Thresholds{}) {
		policy.Thresholds = core.DefaultThresholds()
	}
	return &AutoAdmin{fw: fw, policy: policy}
}

// Log returns the actions taken so far (a copy).
func (a *AutoAdmin) Log() []AdminAction { return append([]AdminAction(nil), a.log...) }

// Kills returns the number of bundles killed.
func (a *AutoAdmin) Kills() int { return a.kills }

// Tick runs one administration cycle: snapshot, detect, and (unless
// DryRun) kill the offender of each finding. It returns the actions
// taken. Repeated findings against an already-killed bundle are dropped.
func (a *AutoAdmin) Tick() ([]AdminAction, error) {
	findings := a.fw.DetectOffenders(a.policy.Thresholds)
	var actions []AdminAction
	seen := make(map[string]bool)
	for _, f := range findings {
		b := a.fw.BundleByIsolateID(f.IsolateID)
		if b == nil || b.iso.Killed() || seen[b.Name()] {
			continue
		}
		seen[b.Name()] = true
		action := AdminAction{Finding: f, Bundle: b.Name()}
		switch {
		case a.policy.DryRun:
			action.Reason = "dry run"
		case a.isProtected(b.Name()):
			action.Reason = "protected bundle"
		case a.policy.MaxKills > 0 && a.kills >= a.policy.MaxKills:
			action.Reason = "kill budget exhausted"
		default:
			if err := a.fw.KillBundle(b); err != nil {
				return actions, fmt.Errorf("auto-admin killing %s: %w", b.Name(), err)
			}
			// Drain staged termination exceptions so the platform state
			// settles before the next detection cycle.
			a.fw.vm.Run(1_000_000)
			a.kills++
			action.Killed = true
			action.Reason = fmt.Sprintf("%s=%d over limit %d", f.Rule, f.Observed, f.Limit)
		}
		a.log = append(a.log, action)
		actions = append(actions, action)
	}
	return actions, nil
}

func (a *AutoAdmin) isProtected(name string) bool {
	for _, p := range a.policy.Protected {
		if p == name {
			return true
		}
	}
	return false
}
