package osgi_test

import (
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/osgi"
	"ijvm/internal/syslib"
)

func newFramework(t *testing.T, mode core.Mode) *osgi.Framework {
	t.Helper()
	vm := interp.NewVM(interp.Options{Mode: mode})
	syslib.MustInstall(vm)
	f, err := osgi.NewFramework(vm)
	if err != nil {
		t.Fatalf("framework: %v", err)
	}
	return f
}

// providerSpec builds a bundle exporting a Counter service.
func providerSpec() ([]*classfile.Class, osgi.Manifest) {
	counter := classfile.NewClass("provider/Counter").
		Field("n", classfile.KindInt).
		Method(classfile.InitName, "()V", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeSpecial(classfile.ObjectClassName, classfile.InitName, "()V").Return()
		}).
		Method("inc", "(I)I", classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ALoad(0).ALoad(0).GetField("provider/Counter", "n").ILoad(1).IAdd().
				PutField("provider/Counter", "n")
			a.ALoad(0).GetField("provider/Counter", "n").IReturn()
		}).MustBuild()
	activator := classfile.NewClass("provider/Activator").
		Method("start", "(Lijvm/osgi/BundleContext;)V", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).Str("svc/counter")
			a.New("provider/Counter").Dup().InvokeSpecial("provider/Counter", classfile.InitName, "()V")
			a.InvokeVirtual("ijvm/osgi/BundleContext", "registerService", "(Ljava/lang/String;Ljava/lang/Object;)V")
			a.Return()
		}).MustBuild()
	return []*classfile.Class{counter, activator}, osgi.Manifest{
		Name:      "provider",
		Version:   "1.0.0",
		Exports:   []string{"provider"},
		Activator: "provider/Activator",
	}
}

// consumerSpec builds a bundle that calls the Counter service n times.
func consumerSpec() ([]*classfile.Class, osgi.Manifest) {
	consumer := classfile.NewClass("consumer/Client").
		StaticField("ctx", classfile.KindRef).
		Method("setCtx", "(Lijvm/osgi/BundleContext;)V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).PutStatic("consumer/Client", "ctx").Return()
		}).
		Method("drive", "(I)I", classfile.FlagStatic, func(a *bytecode.Assembler) {
			// Counter c = (Counter) ctx.getService("svc/counter");
			a.GetStatic("consumer/Client", "ctx").Str("svc/counter").
				InvokeVirtual("ijvm/osgi/BundleContext", "getService", "(Ljava/lang/String;)Ljava/lang/Object;").
				CheckCast("provider/Counter").AStore(1)
			// for (i = 0; i < n; i++) last = c.inc(1);
			a.Const(0).IStore(2).Const(0).IStore(3)
			a.Label("loop")
			a.ILoad(2).ILoad(0).IfICmpGe("done")
			a.ALoad(1).Const(1).InvokeVirtual("provider/Counter", "inc", "(I)I").IStore(3)
			a.IInc(2, 1).Goto("loop")
			a.Label("done")
			a.ILoad(3).IReturn()
		}).MustBuild()
	activator := classfile.NewClass("consumer/Activator").
		Method("start", "(Lijvm/osgi/BundleContext;)V", classfile.FlagPublic|classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.ALoad(0).InvokeStatic("consumer/Client", "setCtx", "(Lijvm/osgi/BundleContext;)V").Return()
		}).MustBuild()
	return []*classfile.Class{consumer, activator}, osgi.Manifest{
		Name:      "consumer",
		Version:   "1.0.0",
		Imports:   []string{"provider"},
		Activator: "consumer/Activator",
	}
}

func TestServiceCallAcrossBundles(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeShared, core.ModeIsolated} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newFramework(t, mode)
			pClasses, pMan := providerSpec()
			cClasses, cMan := consumerSpec()
			provider := f.MustInstall(pMan, pClasses)
			consumer := f.MustInstall(cMan, cClasses)
			if _, err := f.Start(provider); err != nil {
				t.Fatalf("start provider: %v", err)
			}
			if _, err := f.Start(consumer); err != nil {
				t.Fatalf("start consumer: %v", err)
			}

			driveClass, err := consumer.Loader().Lookup("consumer/Client")
			if err != nil {
				t.Fatal(err)
			}
			m, err := driveClass.LookupMethod("drive", "(I)I")
			if err != nil {
				t.Fatal(err)
			}
			v, th, err := f.VM().CallRoot(consumer.Isolate(), m, []heap.Value{heap.IntVal(200)}, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if th.Failure() != nil {
				t.Fatalf("uncaught: %s", th.FailureString())
			}
			if v.I != 200 {
				t.Fatalf("drive(200) = %d, want 200", v.I)
			}

			if mode == core.ModeIsolated {
				// The drag loop makes 200 inter-bundle calls into the
				// provider (§4.1's paint-demo metric).
				in := provider.Isolate().Account().InterBundleCallsIn.Load()
				if in < 200 {
					t.Fatalf("provider InterBundleCallsIn = %d, want >= 200", in)
				}
				if provider.Isolate() == consumer.Isolate() {
					t.Fatal("bundles must have distinct isolates in isolated mode")
				}
			} else if provider.Isolate() != consumer.Isolate() {
				t.Fatal("bundles must share the world isolate in shared mode")
			}
		})
	}
}

func TestKillBundleStopsItsCode(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	pClasses, pMan := providerSpec()
	cClasses, cMan := consumerSpec()
	provider := f.MustInstall(pMan, pClasses)
	consumer := f.MustInstall(cMan, cClasses)
	if _, err := f.Start(provider); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start(consumer); err != nil {
		t.Fatal(err)
	}
	if err := f.KillBundle(provider); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if !provider.Isolate().Killed() {
		t.Fatal("provider isolate must be killed")
	}
	// Calling into the killed bundle must raise StoppedIsolateException,
	// never execute provider code.
	executed := false
	f.VM().TraceMethodEntry = func(m *classfile.Method, iso *core.Isolate) {
		if iso == provider.Isolate() {
			executed = true
		}
	}
	driveClass, err := consumer.Loader().Lookup("consumer/Client")
	if err != nil {
		t.Fatal(err)
	}
	m, err := driveClass.LookupMethod("drive", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	// The service was unregistered on kill, so getService returns null
	// and checkcast passes null; inc() on null receiver throws NPE — or,
	// if the consumer cached a reference, the call throws
	// StoppedIsolateException. Either way provider code never runs.
	_, th, err := f.VM().CallRoot(consumer.Isolate(), m, []heap.Value{heap.IntVal(5)}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if th.Failure() == nil {
		t.Fatal("expected a failure after provider kill")
	}
	if executed {
		t.Fatal("killed bundle's code executed")
	}
}

func TestSyntheticConfigsInstall(t *testing.T) {
	for _, tc := range []struct {
		name  string
		specs []osgi.BundleSpec
	}{
		{"felix", osgi.FelixConfig()},
		{"equinox", osgi.EquinoxConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newFramework(t, core.ModeIsolated)
			bundles, err := osgi.InstallAndStart(f, tc.specs)
			if err != nil {
				t.Fatalf("install: %v", err)
			}
			if len(bundles) != len(tc.specs) {
				t.Fatalf("installed %d of %d bundles", len(bundles), len(tc.specs))
			}
			for _, b := range bundles {
				if b.State() != osgi.StateActive {
					t.Fatalf("bundle %s state = %s, want ACTIVE", b.Name(), b.State())
				}
			}
			if got := len(f.Registry().Names()); got != len(tc.specs) {
				t.Fatalf("registered services = %d, want %d", got, len(tc.specs))
			}
		})
	}
}
