package osgi_test

import (
	"strings"
	"testing"

	"ijvm/internal/core"
	"ijvm/internal/osgi"
)

func shellEnv(t *testing.T) (*osgi.Framework, *osgi.Shell) {
	t.Helper()
	f := newFramework(t, core.ModeIsolated)
	if _, err := osgi.InstallAndStart(f, osgi.FelixConfig()); err != nil {
		t.Fatal(err)
	}
	return f, osgi.NewShell(f)
}

func execute(t *testing.T, s *osgi.Shell, cmd string) string {
	t.Helper()
	var sb strings.Builder
	if err := s.Execute(&sb, cmd); err != nil {
		t.Fatalf("%q: %v", cmd, err)
	}
	return sb.String()
}

func TestShellBundlesAndServices(t *testing.T) {
	_, s := shellEnv(t)
	out := execute(t, s, "bundles")
	for _, want := range []string{"administration", "shell", "repository", "ACTIVE"} {
		if !strings.Contains(out, want) {
			t.Errorf("bundles output missing %q:\n%s", want, out)
		}
	}
	out = execute(t, s, "services")
	if !strings.Contains(out, "svc/administration") {
		t.Errorf("services output missing registration:\n%s", out)
	}
}

func TestShellStatsAndMem(t *testing.T) {
	_, s := shellEnv(t)
	out := execute(t, s, "stats")
	if !strings.Contains(out, "osgi-framework") || !strings.Contains(out, "LIVE-B") {
		t.Errorf("stats output:\n%s", out)
	}
	out = execute(t, s, "mem")
	if !strings.Contains(out, "heap:") || !strings.Contains(out, "footprint:") {
		t.Errorf("mem output:\n%s", out)
	}
	out = execute(t, s, "precise")
	if !strings.Contains(out, "SHARED-B") {
		t.Errorf("precise output:\n%s", out)
	}
	out = execute(t, s, "threads")
	if !strings.Contains(out, "STATE") {
		t.Errorf("threads output:\n%s", out)
	}
	execute(t, s, "gc")
}

func TestShellLifecycleAndKill(t *testing.T) {
	f, s := shellEnv(t)
	out := execute(t, s, "kill shell")
	if !strings.Contains(out, "kill shell") {
		t.Errorf("kill output:\n%s", out)
	}
	b := f.BundleByName("shell")
	if !b.Isolate().Killed() {
		t.Fatal("shell bundle not killed")
	}
	out = execute(t, s, "bundles")
	if !strings.Contains(out, "killed") && !strings.Contains(out, "disposed") {
		t.Errorf("killed state not shown:\n%s", out)
	}
	// Errors for unknown bundles and commands.
	var sb strings.Builder
	if err := s.Execute(&sb, "kill nosuch"); err == nil {
		t.Fatal("kill of unknown bundle accepted")
	}
	if err := s.Execute(&sb, "frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := s.Execute(&sb, ""); err != nil {
		t.Fatal("empty line must be a no-op")
	}
	execute(t, s, "help")
	execute(t, s, "detect")
}

func TestAutoAdminKillsHog(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	// Reuse the attack-style hog via a synthetic bundle holding memory.
	spec := osgi.ManagementBundle("innocent", 2, 4, 16)
	if _, err := osgi.InstallAndStart(f, []osgi.BundleSpec{spec}); err != nil {
		t.Fatal(err)
	}
	hogSpec := osgi.ManagementBundle("hog", 2, 4, 1<<17) // huge static tables
	if _, err := osgi.InstallAndStart(f, []osgi.BundleSpec{hogSpec}); err != nil {
		t.Fatal(err)
	}

	admin := osgi.NewAutoAdmin(f, osgi.AdminPolicy{
		Thresholds: core.Thresholds{MaxLiveBytes: 1 << 20},
		Protected:  []string{"innocent"},
	})
	actions, err := admin.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || !actions[0].Killed || actions[0].Bundle != "hog" {
		t.Fatalf("actions = %v", actions)
	}
	if !f.BundleByName("hog").Isolate().Killed() {
		t.Fatal("hog not killed")
	}
	if f.BundleByName("innocent").Isolate().Killed() {
		t.Fatal("innocent bundle killed")
	}
	// A second tick is a no-op: the offender is dead and reclaimed.
	actions, err = admin.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Fatalf("second tick acted: %v", actions)
	}
	if admin.Kills() != 1 || len(admin.Log()) != 1 {
		t.Fatalf("kills=%d log=%d", admin.Kills(), len(admin.Log()))
	}
}

func TestAutoAdminDryRunAndBudget(t *testing.T) {
	f := newFramework(t, core.ModeIsolated)
	hog := osgi.ManagementBundle("hog", 2, 4, 1<<17)
	if _, err := osgi.InstallAndStart(f, []osgi.BundleSpec{hog}); err != nil {
		t.Fatal(err)
	}
	admin := osgi.NewAutoAdmin(f, osgi.AdminPolicy{
		Thresholds: core.Thresholds{MaxLiveBytes: 1 << 20},
		DryRun:     true,
	})
	actions, err := admin.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Killed {
		t.Fatalf("dry run acted: %v", actions)
	}
	if f.BundleByName("hog").Isolate().Killed() {
		t.Fatal("dry run killed a bundle")
	}
}
