package osgi

import (
	"errors"
	"fmt"

	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/loader"
)

// DefaultLifecycleBudget bounds the instructions an activator start/stop
// call may consume synchronously before the framework moves on (rule 1 of
// §3.4: lifecycle methods run in fresh threads precisely so a malicious
// bundle cannot freeze the runtime).
const DefaultLifecycleBudget = 20_000_000

// ErrNotIsolated is returned by isolation-dependent operations on a
// baseline (shared-mode) framework.
var ErrNotIsolated = errors.New("osgi: operation requires an isolated-mode VM")

// Framework is the OSGi runtime. It occupies Isolate0 with full rights
// (§3.1); bundles are standard isolates.
type Framework struct {
	vm       *interp.VM
	loader0  *loader.Loader
	isolate0 *core.Isolate

	bundles  []*Bundle
	registry *ServiceRegistry
	ctxClass *classfile.Class

	// pendingEvents queues service events raised from guest natives;
	// they are dispatched at the next framework safe point (event
	// callbacks spawn threads, which must not happen while the scheduler
	// is mid-instruction inside a native).
	pendingEvents []serviceEvent

	// LifecycleBudget overrides DefaultLifecycleBudget when > 0.
	LifecycleBudget int64
}

// NewFramework creates the OSGi runtime on a VM whose system library is
// already installed. The framework's class loader becomes Isolate0.
func NewFramework(vm *interp.VM) (*Framework, error) {
	l := vm.Registry().NewLoader("osgi-framework")
	iso0, err := vm.World().NewIsolate("osgi-framework", l)
	if err != nil {
		return nil, fmt.Errorf("osgi: creating Isolate0: %w", err)
	}
	f := &Framework{
		vm:       vm,
		loader0:  l,
		isolate0: iso0,
		registry: newServiceRegistry(vm),
	}
	f.registry.onChange = f.queueServiceEvent
	ctxClass, err := f.buildContextClass()
	if err != nil {
		return nil, err
	}
	f.ctxClass = ctxClass
	return f, nil
}

// VM returns the underlying interpreter VM.
func (f *Framework) VM() *interp.VM { return f.vm }

// Isolate0 returns the framework's isolate.
func (f *Framework) Isolate0() *core.Isolate { return f.isolate0 }

// Registry returns the service registry.
func (f *Framework) Registry() *ServiceRegistry { return f.registry }

// Bundles returns all installed bundles in installation order.
func (f *Framework) Bundles() []*Bundle { return append([]*Bundle(nil), f.bundles...) }

// BundleByName returns the bundle with the given symbolic name, or nil.
func (f *Framework) BundleByName(name string) *Bundle {
	for _, b := range f.bundles {
		if b.manifest.Name == name {
			return b
		}
	}
	return nil
}

func (f *Framework) lifecycleBudget() int64 {
	if f.LifecycleBudget > 0 {
		return f.LifecycleBudget
	}
	return DefaultLifecycleBudget
}

// Install registers a bundle: a fresh class loader is created and, in
// I-JVM mode, attached to a fresh standard isolate ("when OSGi loads a
// new bundle, it allocates a new class loader; I-JVM associates therefore
// a standard isolate to this class loader", §3.4).
func (f *Framework) Install(m Manifest, classes []*classfile.Class) (*Bundle, error) {
	if m.Name == "" {
		return nil, errors.New("osgi: bundle manifest requires a name")
	}
	if f.BundleByName(m.Name) != nil {
		return nil, fmt.Errorf("osgi: bundle %s already installed", m.Name)
	}
	l := f.vm.Registry().NewLoader("bundle:" + m.Name)
	var iso *core.Isolate
	if f.vm.World().Isolated() {
		var err error
		iso, err = f.vm.World().NewIsolate(m.Name, l)
		if err != nil {
			return nil, fmt.Errorf("osgi: isolate for %s: %w", m.Name, err)
		}
	} else {
		iso = f.isolate0
	}
	if err := l.DefineAll(classes); err != nil {
		return nil, fmt.Errorf("osgi: defining classes of %s: %w", m.Name, err)
	}
	b := &Bundle{
		id:       len(f.bundles) + 1,
		manifest: m,
		state:    StateInstalled,
		classes:  classes,
		loader:   l,
		iso:      iso,
	}
	f.bundles = append(f.bundles, b)
	return b, nil
}

// InstallClone registers a bundle provisioned from a warmed snapshot
// instead of a class set: the bundle's isolate is materialized by
// interp.CloneIsolate (statics initialized, string pool adopted, no
// <clinit> replay), and its loader resolves the template's classes
// through delegation. The gateway's high-density serving path (§1) uses
// it to spawn tenants in microseconds. Isolated mode only — the Shared
// baseline has no per-bundle isolate to clone into.
func (f *Framework) InstallClone(m Manifest, snap *interp.Snapshot) (*Bundle, error) {
	if m.Name == "" {
		return nil, errors.New("osgi: bundle manifest requires a name")
	}
	if f.BundleByName(m.Name) != nil {
		return nil, fmt.Errorf("osgi: bundle %s already installed", m.Name)
	}
	if !f.vm.World().Isolated() {
		return nil, errors.New("osgi: InstallClone requires isolated mode")
	}
	iso, err := f.vm.CloneIsolate(snap, m.Name)
	if err != nil {
		return nil, fmt.Errorf("osgi: cloning %s: %w", m.Name, err)
	}
	b := &Bundle{
		id:       len(f.bundles) + 1,
		manifest: m,
		state:    StateInstalled,
		loader:   iso.Loader(),
		iso:      iso,
	}
	f.bundles = append(f.bundles, b)
	return b, nil
}

// MustInstall panics on installation failure.
func (f *Framework) MustInstall(m Manifest, classes []*classfile.Class) *Bundle {
	b, err := f.Install(m, classes)
	if err != nil {
		panic(err)
	}
	return b
}

// Resolve wires the bundle's package imports to exporting bundles.
func (f *Framework) Resolve(b *Bundle) error {
	if b.state == StateUninstalled {
		return fmt.Errorf("osgi: %s is uninstalled", b.manifest.Name)
	}
	if b.state != StateInstalled {
		return nil
	}
	for _, imp := range b.manifest.Imports {
		exporter := f.exporterOf(imp)
		if exporter == nil {
			return fmt.Errorf("osgi: %s imports %s but no bundle exports it", b.manifest.Name, imp)
		}
		b.loader.AddDelegate(exporter.loader)
	}
	b.state = StateResolved
	return nil
}

func (f *Framework) exporterOf(pkg string) *Bundle {
	for _, b := range f.bundles {
		if b.state == StateUninstalled || b.iso.Killed() {
			continue
		}
		if b.exportsPackage(pkg) {
			return b
		}
	}
	return nil
}

// Start resolves the bundle and invokes its activator's start method in a
// new thread (rule 1, §3.4), running the scheduler up to the lifecycle
// budget. The bundle transitions to ACTIVE once the start call is
// dispatched; a hanging start cannot freeze the framework. The start
// thread is returned for callers that need to inspect it.
func (f *Framework) Start(b *Bundle) (*interp.Thread, error) {
	if err := f.Resolve(b); err != nil {
		return nil, err
	}
	if b.state == StateActive {
		return nil, nil
	}
	b.state = StateStarting
	ctx, err := f.contextObjectFor(b)
	if err != nil {
		return nil, err
	}
	t, err := f.callActivator(b, "start", []heap.Value{heap.RefVal(ctx)})
	if err != nil {
		return nil, err
	}
	b.state = StateActive
	f.FlushServiceEvents()
	if t != nil {
		b.startThreadID = t.ID()
		if t.Failure() != nil {
			return t, fmt.Errorf("osgi: %s start failed: %s", b.manifest.Name, t.FailureString())
		}
	}
	return t, nil
}

// Stop invokes the activator's stop method in a new thread and marks the
// bundle stopped.
func (f *Framework) Stop(b *Bundle) (*interp.Thread, error) {
	if b.state != StateActive {
		return nil, nil
	}
	b.state = StateStopping
	ctx, err := f.contextObjectFor(b)
	if err != nil {
		return nil, err
	}
	t, err := f.callActivator(b, "stop", []heap.Value{heap.RefVal(ctx)})
	b.state = StateStopped
	f.registry.unregisterOwnedBy(b)
	f.FlushServiceEvents()
	return t, err
}

// callActivator spawns a thread on the bundle activator's method; a
// missing method is not an error (activators are optional).
func (f *Framework) callActivator(b *Bundle, name string, args []heap.Value) (*interp.Thread, error) {
	if b.manifest.Activator == "" {
		return nil, nil
	}
	class, err := b.loader.Lookup(b.manifest.Activator)
	if err != nil {
		return nil, fmt.Errorf("osgi: activator of %s: %w", b.manifest.Name, err)
	}
	m := class.DeclaredMethod(name, "(Lijvm/osgi/BundleContext;)V")
	if m == nil {
		return nil, nil
	}
	// Lifecycle methods run on fresh threads created by the framework;
	// the thread is charged to the bundle it executes (its first frame
	// migrates immediately into the bundle's isolate).
	t, err := f.vm.SpawnThread("osgi:"+b.manifest.Name+":"+name, f.isolate0, m, args)
	if err != nil {
		return nil, err
	}
	f.vm.RunUntil(t, f.lifecycleBudget())
	if t.Err() != nil {
		return t, fmt.Errorf("osgi: %s %s: %w", b.manifest.Name, name, t.Err())
	}
	return t, nil
}

// contextObjectFor lazily allocates the bundle's BundleContext object —
// "the first shared object between bundles" (§3.4).
func (f *Framework) contextObjectFor(b *Bundle) (*heap.Object, error) {
	if b.ctxObj != nil {
		return b.ctxObj, nil
	}
	obj, err := f.vm.AllocNativeIn(nil, f.ctxClass, b, 64, false, f.isolate0)
	if err != nil {
		return nil, err
	}
	f.vm.Pin(f.isolate0.ID(), obj)
	b.ctxObj = obj
	return obj, nil
}

// KillBundle administratively terminates a bundle (the §4.3 admin
// response): a StoppedBundleEvent is sent to all other active bundles
// (rule 3, §3.4), the bundle's services are unregistered, and its isolate
// is killed so its code can never run again. Requires isolated mode.
func (f *Framework) KillBundle(b *Bundle) error {
	if !f.vm.World().Isolated() {
		return ErrNotIsolated
	}
	if b.iso.Killed() {
		return nil
	}
	f.fireStoppedBundleEvent(b)
	f.registry.unregisterOwnedBy(b)
	if err := f.vm.KillIsolate(f.isolate0, b.iso); err != nil {
		return err
	}
	b.state = StateStopped
	f.FlushServiceEvents()
	return nil
}

// Uninstall removes a stopped bundle from the framework.
func (f *Framework) Uninstall(b *Bundle) error {
	switch b.state {
	case StateActive, StateStarting:
		return fmt.Errorf("osgi: stop %s before uninstalling", b.manifest.Name)
	}
	f.registry.unregisterOwnedBy(b)
	b.state = StateUninstalled
	return nil
}

// Service event types delivered to serviceChanged listeners.
const (
	// ServiceRegistered is fired after a service is registered.
	ServiceRegistered = 1
	// ServiceUnregistered is fired after a service is unregistered.
	ServiceUnregistered = 2
)

// serviceEvent is one queued registry change.
type serviceEvent struct {
	name      string
	eventType int64
	origin    *Bundle
}

// queueServiceEvent records a registry change for later dispatch.
func (f *Framework) queueServiceEvent(name string, eventType int64, origin *Bundle) {
	f.pendingEvents = append(f.pendingEvents, serviceEvent{name, eventType, origin})
}

// FlushServiceEvents dispatches queued service events to listeners. The
// framework calls it after every lifecycle operation; hosts driving the
// scheduler directly may call it at their own safe points.
func (f *Framework) FlushServiceEvents() {
	for len(f.pendingEvents) > 0 {
		ev := f.pendingEvents[0]
		f.pendingEvents = f.pendingEvents[1:]
		f.fireServiceEvent(ev.name, ev.eventType, ev.origin)
	}
}

// fireServiceEvent notifies every active bundle whose activator declares
// serviceChanged(Ljava/lang/String;I)V of a registry change, each on a
// fresh thread (rule 1 applies to event callbacks too: a hanging listener
// cannot freeze the framework). The registering bundle itself is not
// notified.
func (f *Framework) fireServiceEvent(name string, eventType int64, origin *Bundle) {
	for _, b := range f.bundles {
		if b == origin || b.state != StateActive || b.iso.Killed() {
			continue
		}
		if b.manifest.Activator == "" {
			continue
		}
		class, err := b.loader.Lookup(b.manifest.Activator)
		if err != nil {
			continue
		}
		m := class.DeclaredMethod("serviceChanged", "(Ljava/lang/String;I)V")
		if m == nil {
			continue
		}
		nameObj, err := f.vm.InternString(nil, f.isolate0, name)
		if err != nil {
			continue
		}
		t, err := f.vm.SpawnThread("osgi:svc-event:"+b.manifest.Name, f.isolate0, m,
			[]heap.Value{heap.RefVal(nameObj), heap.IntVal(eventType)})
		if err != nil {
			continue
		}
		f.vm.RunUntil(t, f.lifecycleBudget())
	}
}

// fireStoppedBundleEvent notifies every other active bundle whose
// activator declares bundleStopped(Ljava/lang/String;)V. Bundles may use
// the callback to drop references to the dying bundle's objects; if they
// do not, those objects stay live and I-JVM charges them to the holders
// (§3.4: "resources from the terminating bundle will not be released
// until all bundles release their references to them").
func (f *Framework) fireStoppedBundleEvent(stopped *Bundle) {
	for _, b := range f.bundles {
		if b == stopped || b.state != StateActive || b.iso.Killed() {
			continue
		}
		if b.manifest.Activator == "" {
			continue
		}
		class, err := b.loader.Lookup(b.manifest.Activator)
		if err != nil {
			continue
		}
		m := class.DeclaredMethod("bundleStopped", "(Ljava/lang/String;)V")
		if m == nil {
			continue
		}
		nameObj, err := f.vm.InternString(nil, f.isolate0, stopped.manifest.Name)
		if err != nil {
			continue
		}
		t, err := f.vm.SpawnThread("osgi:event:"+b.manifest.Name, f.isolate0, m,
			[]heap.Value{heap.RefVal(nameObj)})
		if err != nil {
			continue
		}
		f.vm.RunUntil(t, f.lifecycleBudget())
	}
}

// AdminSnapshot runs an accounting GC and returns per-isolate snapshots —
// the administrator's dashboard from §4.3.
func (f *Framework) AdminSnapshot() []core.Snapshot {
	f.vm.CollectGarbage(nil)
	return f.vm.Snapshots()
}

// DetectOffenders applies thresholds to a fresh AdminSnapshot.
func (f *Framework) DetectOffenders(th core.Thresholds) []core.Finding {
	return core.Detect(f.AdminSnapshot(), th)
}

// BundleByIsolateID maps a detector finding back to the bundle.
func (f *Framework) BundleByIsolateID(id int32) *Bundle {
	for _, b := range f.bundles {
		if int32(b.iso.ID()) == id {
			return b
		}
	}
	return nil
}

// Shutdown stops the platform.
func (f *Framework) Shutdown() { f.vm.Shutdown() }
