package osgi

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ijvm/internal/core"
)

// Shell is the framework's management console — the analogue of the Felix
// shell bundle from the paper's base configuration. It executes textual
// commands against the framework: listing bundles and services, dumping
// the per-isolate resource accounts (the administrator's §4.3 dashboard),
// killing misbehaving bundles, and forcing collections.
type Shell struct {
	fw *Framework
}

// NewShell creates a shell bound to a framework.
func NewShell(fw *Framework) *Shell { return &Shell{fw: fw} }

// Execute runs one command line and writes its output to w. Unknown
// commands return an error; the error is also suitable for display.
func (s *Shell) Execute(w io.Writer, line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		return s.help(w)
	case "bundles", "lb":
		return s.bundles(w)
	case "services":
		return s.services(w)
	case "stats":
		return s.stats(w)
	case "threads":
		return s.threads(w)
	case "precise":
		return s.precise(w)
	case "mem":
		return s.mem(w)
	case "gc":
		s.fw.vm.CollectGarbage(s.fw.isolate0)
		_, err := fmt.Fprintln(w, "collection complete")
		return err
	case "start", "stop", "kill", "uninstall":
		if len(args) != 1 {
			return fmt.Errorf("%s requires a bundle name", cmd)
		}
		return s.lifecycle(w, cmd, args[0])
	case "detect":
		return s.detect(w)
	case "shutdown":
		s.fw.Shutdown()
		_, err := fmt.Fprintln(w, "platform shutdown requested")
		return err
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *Shell) help(w io.Writer) error {
	_, err := fmt.Fprint(w, `commands:
  bundles | lb        list bundles and their states
  services            list registered services and owners
  stats               per-isolate resource accounts (runs a GC first)
  threads             list VM threads with state and current isolate
  precise             exact per-isolate memory (shared objects counted per sharer)
  mem                 heap and metadata memory footprint
  gc                  force an accounting collection
  start <bundle>      start a bundle
  stop <bundle>       stop a bundle
  kill <bundle>       terminate a bundle's isolate (I-JVM mode)
  uninstall <bundle>  remove a stopped bundle
  detect              run the DoS detectors with default thresholds
  shutdown            stop the platform
  help                this text
`)
	return err
}

func (s *Shell) bundles(w io.Writer) error {
	fmt.Fprintf(w, "%-4s %-24s %-10s %-10s %s\n", "ID", "NAME", "VERSION", "STATE", "ISOLATE")
	for _, b := range s.fw.Bundles() {
		isoState := "-"
		if b.iso != nil {
			isoState = b.iso.State().String()
		}
		fmt.Fprintf(w, "%-4d %-24s %-10s %-10s %s\n",
			b.ID(), b.Name(), b.manifest.Version, b.State(), isoState)
	}
	return nil
}

func (s *Shell) services(w io.Writer) error {
	names := s.fw.registry.Names()
	if len(names) == 0 {
		_, err := fmt.Fprintln(w, "no services registered")
		return err
	}
	fmt.Fprintf(w, "%-28s %s\n", "SERVICE", "OWNER")
	for _, name := range names {
		owner := "?"
		if b := s.fw.registry.OwnerOf(name); b != nil {
			owner = b.Name()
		}
		fmt.Fprintf(w, "%-28s %s\n", name, owner)
	}
	return nil
}

func (s *Shell) stats(w io.Writer) error {
	snaps := s.fw.AdminSnapshot()
	fmt.Fprintf(w, "%-20s %-9s %10s %10s %8s %6s %6s %8s %8s\n",
		"ISOLATE", "STATE", "LIVE-B", "ALLOC-B", "CPU-SMP", "THRD", "GCS", "IO-R", "IO-W")
	for _, snap := range snaps {
		fmt.Fprintf(w, "%-20s %-9s %10d %10d %8d %6d %6d %8d %8d\n",
			snap.IsolateName, snap.State, snap.LiveBytes, snap.AllocatedBytes,
			snap.CPUSamples, snap.ThreadsCreated, snap.GCActivations,
			snap.IOBytesRead, snap.IOBytesWritten)
	}
	return nil
}

func (s *Shell) threads(w io.Writer) error {
	fmt.Fprintf(w, "%-5s %-28s %-10s %-18s %s\n", "ID", "NAME", "STATE", "ISOLATE", "FRAMES")
	for _, t := range s.fw.vm.Threads() {
		if t.Done() {
			continue
		}
		isoName := "-"
		if iso := t.CurrentIsolate(); iso != nil {
			isoName = iso.Name()
		}
		fmt.Fprintf(w, "%-5d %-28s %-10s %-18s %d\n", t.ID(), t.Name(), t.State(), isoName, t.Depth())
	}
	return nil
}

// precise runs the exact (rejected-by-the-paper, on-demand here)
// accounting pass: shared objects are charged to every isolate that
// reaches them.
func (s *Shell) precise(w io.Writer) error {
	stats := s.fw.vm.PreciseAccounting()
	fmt.Fprintf(w, "%-20s %10s %10s %10s\n", "ISOLATE", "OBJECTS", "BYTES", "SHARED-B")
	for _, iso := range s.fw.vm.World().Isolates() {
		st := stats[iso.ID()]
		if st == nil {
			continue
		}
		fmt.Fprintf(w, "%-20s %10d %10d %10d\n", iso.Name(), st.Objects, st.Bytes, st.SharedBytes)
	}
	return nil
}

func (s *Shell) mem(w io.Writer) error {
	s.fw.vm.CollectGarbage(nil)
	h := s.fw.vm.Heap()
	fmt.Fprintf(w, "heap:      %d / %d bytes (%d objects)\n", h.Used(), h.Limit(), h.NumObjects())
	fmt.Fprintf(w, "metadata:  %d bytes (mirrors, string pools, accounts)\n",
		s.fw.vm.World().StructFootprint())
	fmt.Fprintf(w, "footprint: %d bytes\n", s.fw.vm.MemoryFootprint())
	return nil
}

func (s *Shell) lifecycle(w io.Writer, cmd, name string) error {
	b := s.fw.BundleByName(name)
	if b == nil {
		return fmt.Errorf("no bundle named %q", name)
	}
	switch cmd {
	case "start":
		if _, err := s.fw.Start(b); err != nil {
			return err
		}
	case "stop":
		if _, err := s.fw.Stop(b); err != nil {
			return err
		}
	case "kill":
		if err := s.fw.KillBundle(b); err != nil {
			return err
		}
		// Let staged termination exceptions drain.
		s.fw.vm.Run(1_000_000)
	case "uninstall":
		if err := s.fw.Uninstall(b); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s %s: now %s\n", cmd, name, b.State())
	return nil
}

func (s *Shell) detect(w io.Writer) error {
	findings := s.fw.DetectOffenders(defaultShellThresholds())
	if len(findings) == 0 {
		_, err := fmt.Fprintln(w, "no findings")
		return err
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Rule < findings[j].Rule })
	for _, f := range findings {
		fmt.Fprintln(w, " ", f.String())
	}
	return nil
}

func defaultShellThresholds() core.Thresholds {
	return core.DefaultThresholds()
}
