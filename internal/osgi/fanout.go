package osgi

import (
	"fmt"
	"sort"

	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/rpc"
)

// fanKey identifies one cached inter-isolate link: a caller isolate
// bound to one method of one registered service.
type fanKey struct {
	service string
	caller  *core.Isolate
	method  string
	desc    string
}

// FanOutCall is one leg of a fan-out: the service it targets and either
// the pending future or the submission error (saturation, closed link,
// killed callee). Exactly one of Fut / Err is set.
type FanOutCall struct {
	Service string
	Fut     *rpc.Future
	Err     error
}

// FanOut dispatches one async call to every registered service whose
// name starts with prefix, in sorted name order, and returns the
// pending legs. Links are resolved through a per-(service, caller,
// method) cache so repeated fan-outs reuse queues, credits and rooted
// receivers; cached links are torn down when their service is
// unregistered (including the bundle-kill path). Submission is
// fail-fast per leg: a saturated or dying callee yields an Err leg
// instead of blocking the whole fan-out — the caller aggregates what
// it can and treats the rest as cascading timeouts.
//
// Safe for concurrent callers; the registry lock is held only for the
// snapshot-and-resolve step, never across copy-in or guest execution.
func (r *ServiceRegistry) FanOut(hub *rpc.Hub, caller *core.Isolate, prefix, method, desc string, opts rpc.LinkOptions, args []heap.Value) []FanOutCall {
	type leg struct {
		name string
		link *rpc.Link
		err  error
	}
	r.mu.Lock()
	if r.links == nil {
		r.links = make(map[fanKey]*rpc.Link)
	}
	var legs []leg
	for name, e := range r.services {
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		key := fanKey{service: name, caller: caller, method: method, desc: desc}
		link, ok := r.links[key]
		if !ok {
			m, err := e.obj.Class.LookupMethod(method, desc)
			if err != nil {
				legs = append(legs, leg{name: name, err: fmt.Errorf("osgi: service %q: %w", name, err)})
				continue
			}
			link, err = hub.NewLink(caller, e.owner.iso, m, heap.RefVal(e.obj), opts)
			if err != nil {
				legs = append(legs, leg{name: name, err: err})
				continue
			}
			r.links[key] = link
		}
		legs = append(legs, leg{name: name, link: link})
	}
	r.mu.Unlock()
	sort.Slice(legs, func(i, j int) bool { return legs[i].name < legs[j].name })

	out := make([]FanOutCall, 0, len(legs))
	for _, lg := range legs {
		if lg.err != nil {
			out = append(out, FanOutCall{Service: lg.name, Err: lg.err})
			continue
		}
		fut, err := lg.link.CallAsync(args)
		out = append(out, FanOutCall{Service: lg.name, Fut: fut, Err: err})
	}
	return out
}

// dropLinksFor removes and asynchronously closes every cached link
// bound to a service name. Close drains in-flight calls and therefore
// needs the engine lock — it must not run synchronously here, because
// the unregister paths execute under hub.Sync (bundle kill), which
// already holds it. Once removed from the cache no new calls can pick
// the link up; in-flight ones resolve (or fail fast against the dead
// callee) and the goroutine reclaims the rooted receiver.
func (r *ServiceRegistry) dropLinksFor(name string) {
	for key, link := range r.links {
		if key.service == name {
			delete(r.links, key)
			go link.Close()
		}
	}
}
