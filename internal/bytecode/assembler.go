package bytecode

import (
	"errors"
	"fmt"
)

// Pool abstracts the constant pool of the enclosing class. The assembler
// uses it to translate symbolic references into pool indices; the concrete
// implementation lives in the classfile package.
type Pool interface {
	// StringIndex interns s and returns its pool index.
	StringIndex(s string) int32
	// ClassIndex records a symbolic class reference and returns its index.
	ClassIndex(name string) int32
	// FieldIndex records a symbolic field reference (static or instance)
	// and returns its index.
	FieldIndex(class, name string) int32
	// MethodIndex records a symbolic method reference and returns its
	// index.
	MethodIndex(class, name, descriptor string) int32
}

// Assembler builds a Code body with label-based control flow. All emit
// methods return the assembler for chaining; errors (duplicate or undefined
// labels) are accumulated and reported by Finish.
type Assembler struct {
	pool      Pool
	instrs    []Instr
	labels    map[string]int32
	patches   []patch
	handlers  []pendingHandler
	maxLocals int
	errs      []error
}

type patch struct {
	instr int32
	label string
}

type pendingHandler struct {
	start, end, target string
	catchClass         string
}

// NewAssembler creates an assembler that resolves symbolic references
// against pool. A nil pool is allowed for code that needs no pool entries.
func NewAssembler(pool Pool) *Assembler {
	return &Assembler{
		pool:   pool,
		labels: make(map[string]int32),
	}
}

func (a *Assembler) emit(in Instr) *Assembler {
	a.instrs = append(a.instrs, in)
	return a
}

func (a *Assembler) emitLocal(op Opcode, slot int) *Assembler {
	if slot < 0 {
		a.errs = append(a.errs, fmt.Errorf("%s: negative local slot %d", op, slot))
		slot = 0
	}
	if slot+1 > a.maxLocals {
		a.maxLocals = slot + 1
	}
	return a.emit(Instr{Op: op, A: int32(slot)})
}

func (a *Assembler) emitBranch(op Opcode, label string) *Assembler {
	a.patches = append(a.patches, patch{instr: int32(len(a.instrs)), label: label})
	return a.emit(Instr{Op: op})
}

func (a *Assembler) poolIndex(kind string, fn func() int32) int32 {
	if a.pool == nil {
		a.errs = append(a.errs, fmt.Errorf("%s reference requires a constant pool", kind))
		return 0
	}
	return fn()
}

// Label defines a branch target at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("duplicate label %q", name))
		return a
	}
	a.labels[name] = int32(len(a.instrs))
	return a
}

// PC returns the index of the next instruction to be emitted.
func (a *Assembler) PC() int32 { return int32(len(a.instrs)) }

// Nop emits a no-op.
func (a *Assembler) Nop() *Assembler { return a.emit(Instr{Op: OpNop}) }

// Const pushes an immediate integer.
func (a *Assembler) Const(v int64) *Assembler { return a.emit(Instr{Op: OpIConst, I: v}) }

// FConst pushes an immediate float.
func (a *Assembler) FConst(v float64) *Assembler { return a.emit(Instr{Op: OpFConst, F: v}) }

// Str pushes the interned string s.
func (a *Assembler) Str(s string) *Assembler {
	idx := a.poolIndex("string", func() int32 { return a.pool.StringIndex(s) })
	return a.emit(Instr{Op: OpLdcString, A: idx})
}

// ClassConst pushes the java.lang.Class object of the named class.
func (a *Assembler) ClassConst(name string) *Assembler {
	idx := a.poolIndex("class", func() int32 { return a.pool.ClassIndex(name) })
	return a.emit(Instr{Op: OpLdcClass, A: idx})
}

// Null pushes the null reference.
func (a *Assembler) Null() *Assembler { return a.emit(Instr{Op: OpAConstNull}) }

// Pop discards the top of stack.
func (a *Assembler) Pop() *Assembler { return a.emit(Instr{Op: OpPop}) }

// Dup duplicates the top of stack.
func (a *Assembler) Dup() *Assembler { return a.emit(Instr{Op: OpDup}) }

// DupX1 duplicates the top of stack below the second value.
func (a *Assembler) DupX1() *Assembler { return a.emit(Instr{Op: OpDupX1}) }

// Swap exchanges the two top stack values.
func (a *Assembler) Swap() *Assembler { return a.emit(Instr{Op: OpSwap}) }

// ILoad pushes int local slot.
func (a *Assembler) ILoad(slot int) *Assembler { return a.emitLocal(OpILoad, slot) }

// FLoad pushes float local slot.
func (a *Assembler) FLoad(slot int) *Assembler { return a.emitLocal(OpFLoad, slot) }

// ALoad pushes reference local slot.
func (a *Assembler) ALoad(slot int) *Assembler { return a.emitLocal(OpALoad, slot) }

// IStore pops into int local slot.
func (a *Assembler) IStore(slot int) *Assembler { return a.emitLocal(OpIStore, slot) }

// FStore pops into float local slot.
func (a *Assembler) FStore(slot int) *Assembler { return a.emitLocal(OpFStore, slot) }

// AStore pops into reference local slot.
func (a *Assembler) AStore(slot int) *Assembler { return a.emitLocal(OpAStore, slot) }

// IInc adds delta to int local slot.
func (a *Assembler) IInc(slot int, delta int32) *Assembler {
	a.emitLocal(OpIInc, slot)
	a.instrs[len(a.instrs)-1].B = delta
	return a
}

// Arithmetic.

func (a *Assembler) IAdd() *Assembler  { return a.emit(Instr{Op: OpIAdd}) }
func (a *Assembler) ISub() *Assembler  { return a.emit(Instr{Op: OpISub}) }
func (a *Assembler) IMul() *Assembler  { return a.emit(Instr{Op: OpIMul}) }
func (a *Assembler) IDiv() *Assembler  { return a.emit(Instr{Op: OpIDiv}) }
func (a *Assembler) IRem() *Assembler  { return a.emit(Instr{Op: OpIRem}) }
func (a *Assembler) INeg() *Assembler  { return a.emit(Instr{Op: OpINeg}) }
func (a *Assembler) IShl() *Assembler  { return a.emit(Instr{Op: OpIShl}) }
func (a *Assembler) IShr() *Assembler  { return a.emit(Instr{Op: OpIShr}) }
func (a *Assembler) IUshr() *Assembler { return a.emit(Instr{Op: OpIUshr}) }
func (a *Assembler) IAnd() *Assembler  { return a.emit(Instr{Op: OpIAnd}) }
func (a *Assembler) IOr() *Assembler   { return a.emit(Instr{Op: OpIOr}) }
func (a *Assembler) IXor() *Assembler  { return a.emit(Instr{Op: OpIXor}) }
func (a *Assembler) FAdd() *Assembler  { return a.emit(Instr{Op: OpFAdd}) }
func (a *Assembler) FSub() *Assembler  { return a.emit(Instr{Op: OpFSub}) }
func (a *Assembler) FMul() *Assembler  { return a.emit(Instr{Op: OpFMul}) }
func (a *Assembler) FDiv() *Assembler  { return a.emit(Instr{Op: OpFDiv}) }
func (a *Assembler) FNeg() *Assembler  { return a.emit(Instr{Op: OpFNeg}) }
func (a *Assembler) FCmp() *Assembler  { return a.emit(Instr{Op: OpFCmp}) }
func (a *Assembler) I2F() *Assembler   { return a.emit(Instr{Op: OpI2F}) }
func (a *Assembler) F2I() *Assembler   { return a.emit(Instr{Op: OpF2I}) }

// Control flow.

func (a *Assembler) Goto(label string) *Assembler      { return a.emitBranch(OpGoto, label) }
func (a *Assembler) IfEq(label string) *Assembler      { return a.emitBranch(OpIfEq, label) }
func (a *Assembler) IfNe(label string) *Assembler      { return a.emitBranch(OpIfNe, label) }
func (a *Assembler) IfLt(label string) *Assembler      { return a.emitBranch(OpIfLt, label) }
func (a *Assembler) IfLe(label string) *Assembler      { return a.emitBranch(OpIfLe, label) }
func (a *Assembler) IfGt(label string) *Assembler      { return a.emitBranch(OpIfGt, label) }
func (a *Assembler) IfGe(label string) *Assembler      { return a.emitBranch(OpIfGe, label) }
func (a *Assembler) IfICmpEq(label string) *Assembler  { return a.emitBranch(OpIfICmpEq, label) }
func (a *Assembler) IfICmpNe(label string) *Assembler  { return a.emitBranch(OpIfICmpNe, label) }
func (a *Assembler) IfICmpLt(label string) *Assembler  { return a.emitBranch(OpIfICmpLt, label) }
func (a *Assembler) IfICmpLe(label string) *Assembler  { return a.emitBranch(OpIfICmpLe, label) }
func (a *Assembler) IfICmpGt(label string) *Assembler  { return a.emitBranch(OpIfICmpGt, label) }
func (a *Assembler) IfICmpGe(label string) *Assembler  { return a.emitBranch(OpIfICmpGe, label) }
func (a *Assembler) IfACmpEq(label string) *Assembler  { return a.emitBranch(OpIfACmpEq, label) }
func (a *Assembler) IfACmpNe(label string) *Assembler  { return a.emitBranch(OpIfACmpNe, label) }
func (a *Assembler) IfNull(label string) *Assembler    { return a.emitBranch(OpIfNull, label) }
func (a *Assembler) IfNonNull(label string) *Assembler { return a.emitBranch(OpIfNonNull, label) }

// Returns.

func (a *Assembler) Return() *Assembler  { return a.emit(Instr{Op: OpReturn}) }
func (a *Assembler) IReturn() *Assembler { return a.emit(Instr{Op: OpIReturn}) }
func (a *Assembler) FReturn() *Assembler { return a.emit(Instr{Op: OpFReturn}) }
func (a *Assembler) AReturn() *Assembler { return a.emit(Instr{Op: OpAReturn}) }

// Field access.

func (a *Assembler) GetStatic(class, field string) *Assembler {
	idx := a.poolIndex("field", func() int32 { return a.pool.FieldIndex(class, field) })
	return a.emit(Instr{Op: OpGetStatic, A: idx})
}

func (a *Assembler) PutStatic(class, field string) *Assembler {
	idx := a.poolIndex("field", func() int32 { return a.pool.FieldIndex(class, field) })
	return a.emit(Instr{Op: OpPutStatic, A: idx})
}

func (a *Assembler) GetField(class, field string) *Assembler {
	idx := a.poolIndex("field", func() int32 { return a.pool.FieldIndex(class, field) })
	return a.emit(Instr{Op: OpGetField, A: idx})
}

func (a *Assembler) PutField(class, field string) *Assembler {
	idx := a.poolIndex("field", func() int32 { return a.pool.FieldIndex(class, field) })
	return a.emit(Instr{Op: OpPutField, A: idx})
}

// Invocation.

func (a *Assembler) InvokeStatic(class, name, desc string) *Assembler {
	idx := a.poolIndex("method", func() int32 { return a.pool.MethodIndex(class, name, desc) })
	return a.emit(Instr{Op: OpInvokeStatic, A: idx})
}

func (a *Assembler) InvokeVirtual(class, name, desc string) *Assembler {
	idx := a.poolIndex("method", func() int32 { return a.pool.MethodIndex(class, name, desc) })
	return a.emit(Instr{Op: OpInvokeVirtual, A: idx})
}

func (a *Assembler) InvokeSpecial(class, name, desc string) *Assembler {
	idx := a.poolIndex("method", func() int32 { return a.pool.MethodIndex(class, name, desc) })
	return a.emit(Instr{Op: OpInvokeSpecial, A: idx})
}

// Objects and arrays.

func (a *Assembler) New(class string) *Assembler {
	idx := a.poolIndex("class", func() int32 { return a.pool.ClassIndex(class) })
	return a.emit(Instr{Op: OpNew, A: idx})
}

// NewArray pops a length and pushes a new array. The element class name is
// informational; "" produces an untyped array.
func (a *Assembler) NewArray(elemClass string) *Assembler {
	var idx int32
	if elemClass != "" {
		idx = a.poolIndex("class", func() int32 { return a.pool.ClassIndex(elemClass) })
	}
	return a.emit(Instr{Op: OpNewArray, A: idx})
}

func (a *Assembler) ArrayLength() *Assembler { return a.emit(Instr{Op: OpArrayLength}) }
func (a *Assembler) ArrayLoad() *Assembler   { return a.emit(Instr{Op: OpArrayLoad}) }
func (a *Assembler) ArrayStore() *Assembler  { return a.emit(Instr{Op: OpArrayStore}) }

func (a *Assembler) InstanceOf(class string) *Assembler {
	idx := a.poolIndex("class", func() int32 { return a.pool.ClassIndex(class) })
	return a.emit(Instr{Op: OpInstanceOf, A: idx})
}

func (a *Assembler) CheckCast(class string) *Assembler {
	idx := a.poolIndex("class", func() int32 { return a.pool.ClassIndex(class) })
	return a.emit(Instr{Op: OpCheckCast, A: idx})
}

// Monitors and exceptions.

func (a *Assembler) MonitorEnter() *Assembler { return a.emit(Instr{Op: OpMonitorEnter}) }
func (a *Assembler) MonitorExit() *Assembler  { return a.emit(Instr{Op: OpMonitorExit}) }
func (a *Assembler) AThrow() *Assembler       { return a.emit(Instr{Op: OpAThrow}) }

// Handler registers an exception handler covering [startLabel, endLabel)
// with the handler code at targetLabel. catchClass may be empty to catch
// all throwables.
func (a *Assembler) Handler(startLabel, endLabel, targetLabel, catchClass string) *Assembler {
	a.handlers = append(a.handlers, pendingHandler{
		start: startLabel, end: endLabel, target: targetLabel, catchClass: catchClass,
	})
	return a
}

// ReserveLocals guarantees that MaxLocals is at least n (for methods whose
// parameters occupy slots never otherwise referenced).
func (a *Assembler) ReserveLocals(n int) *Assembler {
	if n > a.maxLocals {
		a.maxLocals = n
	}
	return a
}

func (a *Assembler) resolve(label string) (int32, bool) {
	pc, ok := a.labels[label]
	return pc, ok
}

// Finish resolves all labels and returns the assembled code.
func (a *Assembler) Finish() (*Code, error) {
	errs := append([]error(nil), a.errs...)
	for _, p := range a.patches {
		pc, ok := a.resolve(p.label)
		if !ok {
			errs = append(errs, fmt.Errorf("undefined label %q", p.label))
			continue
		}
		a.instrs[p.instr].A = pc
	}
	handlers := make([]Handler, 0, len(a.handlers))
	for _, h := range a.handlers {
		start, ok1 := a.resolve(h.start)
		end, ok2 := a.resolve(h.end)
		target, ok3 := a.resolve(h.target)
		if !ok1 || !ok2 || !ok3 {
			errs = append(errs, fmt.Errorf("handler references undefined label (%q, %q, %q)", h.start, h.end, h.target))
			continue
		}
		handlers = append(handlers, Handler{Start: start, End: end, Target: target, CatchClass: h.catchClass})
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	code := &Code{
		Instrs:    a.instrs,
		Handlers:  handlers,
		MaxLocals: a.maxLocals,
	}
	code.MaxStack = estimateMaxStack(code)
	return code, nil
}

// MustFinish is Finish for code that is statically known to assemble, such
// as compiled-in workloads. It panics on error (program-construction bug).
func (a *Assembler) MustFinish() *Code {
	code, err := a.Finish()
	if err != nil {
		panic("bytecode: assemble: " + err.Error())
	}
	return code
}
