package bytecode

import (
	"sync/atomic"
	"unsafe"
)

// ICMaxEntries bounds the polymorphic inline cache of one prepared
// invoke site. A site that has dispatched to more receiver classes than
// this goes megamorphic and falls back to the per-class resolution cache
// for the rest of its life.
const ICMaxEntries = 4

// ICache is the polymorphic inline cache attached to a prepared
// invokevirtual instruction (PInstr.IC). It memoizes the receiver-class
// to target-method dispatch of the site:
//
//	empty       -> first dispatch publishes a monomorphic line
//	monomorphic -> one (class, target) pair; the steady-state fast path
//	polymorphic -> up to ICMaxEntries pairs, scanned linearly
//	megamorphic -> a terminal marker line; the site stops caching and
//	               every dispatch resolves through the class's
//	               resolution cache (Class.LookupMethod)
//
// Classes and targets are stored as raw pointers so this package stays
// free of classfile dependencies and the probe loop compares one
// machine word per entry instead of an interface's (type, data) pair;
// the interpreter stores *classfile.Class keys and *classfile.Method
// targets (both heap pointers, so the Go GC still traces the line).
//
// Publication is race-safe without locks: a line is immutable once
// published, and transitions replace the whole line with a
// compare-and-swap on the atomic pointer. Concurrent scheduler workers
// racing on one site therefore either observe the old line (and retry
// the transition against it) or the new one — never a torn cache.
// Invalidation is never needed: dispatch depends only on the immutable
// receiver class, and calls into killed isolates are rejected after
// dispatch (pushFrame's kill check), so a cached target can never
// bypass termination.
type ICache struct {
	line atomic.Pointer[ICLine]
}

// ICLine is one immutable cache generation: N valid (class, target)
// pairs, or the terminal megamorphic marker. Dispatch must check Mega
// before probing: a megamorphic line has N == 0, so the probe is a
// guaranteed miss and the site should go straight to the per-class
// resolution cache.
type ICLine struct {
	Classes [ICMaxEntries]unsafe.Pointer
	Targets [ICMaxEntries]unsafe.Pointer
	N       int
	Mega    bool
}

// Line returns the current cache line, or nil before the first
// dispatch.
func (c *ICache) Line() *ICLine { return c.line.Load() }

// Lookup returns the cached target for class, or nil on a miss (and on
// a megamorphic line, whose N is zero).
func (l *ICLine) Lookup(class unsafe.Pointer) unsafe.Pointer {
	for i := 0; i < l.N; i++ {
		if l.Classes[i] == class {
			return l.Targets[i]
		}
	}
	return nil
}

// Add records one observed (class, target) dispatch, growing the line
// mono -> poly and degrading to the megamorphic marker when the site
// exceeds ICMaxEntries receiver classes. Loses of the publication race
// retry against the winner's line, so a hot site converges after a
// bounded number of transitions (a line only ever grows).
func (c *ICache) Add(class, target unsafe.Pointer) {
	for {
		old := c.line.Load()
		// Early-out before allocating the replacement line: megamorphic
		// sites and racing duplicate publications hit this on every call.
		if old != nil && (old.Mega || old.Lookup(class) != nil) {
			return
		}
		nl := &ICLine{}
		switch {
		case old == nil:
			nl.Classes[0] = class
			nl.Targets[0] = target
			nl.N = 1
		case old.N == ICMaxEntries:
			nl.Mega = true
		default:
			*nl = *old
			nl.Classes[nl.N] = class
			nl.Targets[nl.N] = target
			nl.N++
		}
		if c.line.CompareAndSwap(old, nl) {
			return
		}
	}
}
