package bytecode

import "sync/atomic"

// FieldSlot is the resolved-field cache of one prepared getfield/putfield
// site (PInstr.FS). It memoizes the instance-field slot index the site's
// symbolic reference resolves to, with the same immutable-publish shape
// as the invoke inline caches: the slot is published once with a CAS and
// never changes afterwards (field resolution is a pure function of the
// immutable pool entry), so the fast path is a single atomic load with
// no pool-entry indirection and no pointer chase.
//
// Like PInstr.IC, the cache lives in the prepared form — not the pool
// entry — so a re-quickening (mode flip, poisoned clone) starts cold.
type FieldSlot struct {
	slot atomic.Int32
}

// fieldSlotEmpty marks an unpublished cache.
const fieldSlotEmpty = -1

// NewFieldSlot returns an empty cache.
func NewFieldSlot() *FieldSlot {
	fs := &FieldSlot{}
	fs.slot.Store(fieldSlotEmpty)
	return fs
}

// Get returns the cached slot index, or a negative value before the
// first resolution.
func (fs *FieldSlot) Get() int32 { return fs.slot.Load() }

// Publish records the resolved slot index. First publisher wins; racing
// resolvers of one site always compute the same slot, so losing the CAS
// is harmless.
func (fs *FieldSlot) Publish(slot int32) {
	fs.slot.CompareAndSwap(fieldSlotEmpty, slot)
}
