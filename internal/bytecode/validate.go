package bytecode

import (
	"errors"
	"fmt"
)

// stackDelta returns (pops, pushes) for an instruction, with invocation
// effects approximated (the pool is not visible at this layer; the
// interpreter's operand stacks grow on demand, so MaxStack is a
// preallocation hint only).
func stackDelta(in Instr) (pops, pushes int) {
	switch in.Op {
	case OpIConst, OpFConst, OpLdcString, OpLdcClass, OpAConstNull,
		OpILoad, OpFLoad, OpALoad:
		return 0, 1
	case OpPop, OpIStore, OpFStore, OpAStore,
		OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe, OpIfNull, OpIfNonNull,
		OpIReturn, OpFReturn, OpAReturn, OpMonitorEnter, OpMonitorExit, OpAThrow, OpPutStatic:
		return 1, 0
	case OpDup:
		return 1, 2
	case OpDupX1:
		return 2, 3
	case OpSwap:
		return 2, 2
	case OpIAdd, OpISub, OpIMul, OpIDiv, OpIRem, OpIShl, OpIShr, OpIUshr,
		OpIAnd, OpIOr, OpIXor, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp:
		return 2, 1
	case OpGetStatic:
		return 0, 1
	case OpINeg, OpFNeg, OpI2F, OpF2I, OpArrayLength, OpInstanceOf, OpCheckCast,
		OpNewArray, OpGetField:
		return 1, 1
	case OpIfICmpEq, OpIfICmpNe, OpIfICmpLt, OpIfICmpLe, OpIfICmpGt, OpIfICmpGe,
		OpIfACmpEq, OpIfACmpNe:
		return 2, 0
	case OpPutField:
		return 2, 0
	case OpArrayLoad:
		return 2, 1
	case OpArrayStore:
		return 3, 0
	case OpNew:
		return 0, 1
	case OpInvokeStatic, OpInvokeVirtual, OpInvokeSpecial:
		// Approximate: assume net +1 for sizing purposes.
		return 0, 1
	default:
		return 0, 0
	}
}

// estimateMaxStack computes a preallocation hint for frame operand stacks
// by a linear pass that ignores control flow (safe because interpreter
// stacks grow dynamically).
func estimateMaxStack(code *Code) int {
	height, maxHeight := 0, 4
	for _, in := range code.Instrs {
		pops, pushes := stackDelta(in)
		height -= pops
		if height < 0 {
			height = 0
		}
		height += pushes
		if height > maxHeight {
			maxHeight = height
		}
		if in.Op.IsTerminator() {
			height = 0
		}
	}
	return maxHeight
}

// Validate performs structural checks on assembled code: branch targets in
// range, non-negative pool indices, local slots within MaxLocals, handler
// ranges well-formed, and no fall-through past the last instruction.
func Validate(code *Code) error {
	if code == nil {
		return errors.New("bytecode: nil code")
	}
	n := int32(len(code.Instrs))
	if n == 0 {
		return errors.New("bytecode: empty code body")
	}
	var errs []error
	for pc, in := range code.Instrs {
		if !in.Op.Valid() {
			errs = append(errs, fmt.Errorf("pc %d: invalid opcode %d", pc, in.Op))
			continue
		}
		if in.Op.IsBranch() && (in.A < 0 || in.A >= n) {
			errs = append(errs, fmt.Errorf("pc %d: %s target %d out of range [0,%d)", pc, in.Op, in.A, n))
		}
		if in.Op.UsesPool() && in.A < 0 {
			errs = append(errs, fmt.Errorf("pc %d: %s negative pool index %d", pc, in.Op, in.A))
		}
		if in.Op.UsesLocal() {
			if in.A < 0 || int(in.A) >= code.MaxLocals {
				errs = append(errs, fmt.Errorf("pc %d: %s local slot %d outside [0,%d)", pc, in.Op, in.A, code.MaxLocals))
			}
		}
	}
	last := code.Instrs[n-1]
	if !last.Op.IsTerminator() {
		errs = append(errs, fmt.Errorf("pc %d: code may fall off the end (last op %s)", n-1, last.Op))
	}
	for i, h := range code.Handlers {
		if h.Start < 0 || h.End > n || h.Start >= h.End {
			errs = append(errs, fmt.Errorf("handler %d: bad range [%d,%d)", i, h.Start, h.End))
		}
		if h.Target < 0 || h.Target >= n {
			errs = append(errs, fmt.Errorf("handler %d: target %d out of range", i, h.Target))
		}
	}
	return errors.Join(errs...)
}

// Disassemble renders code as one instruction per line, prefixed with the
// instruction index, in a form the text assembler can reparse.
func Disassemble(code *Code) string {
	if code == nil {
		return ""
	}
	out := make([]byte, 0, len(code.Instrs)*16)
	for pc, in := range code.Instrs {
		out = append(out, fmt.Sprintf("%4d: %s\n", pc, in.String())...)
	}
	for _, h := range code.Handlers {
		catch := h.CatchClass
		if catch == "" {
			catch = "*"
		}
		out = append(out, fmt.Sprintf("      .catch %s [%d,%d) -> %d\n", catch, h.Start, h.End, h.Target)...)
	}
	return string(out)
}
