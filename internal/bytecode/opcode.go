// Package bytecode defines the instruction set executed by the I-JVM
// interpreter, together with an assembler (label-resolving builder), a
// disassembler, and a structural validator.
//
// The instruction set mirrors the JVM bytecodes the paper's mechanisms hook
// into: static variable accesses (task class mirror indirection), method
// invocations (thread migration between isolates), object allocation
// (memory accounting), monitors, and exception dispatch.
package bytecode

import "strconv"

// Opcode identifies one instruction of the virtual machine.
type Opcode uint8

// Instruction opcodes. The numbering is internal; code is stored as decoded
// Instr values, not packed bytes.
const (
	// OpNop does nothing.
	OpNop Opcode = iota + 1

	// Constants.
	OpIConst    // push immediate int (Instr.I)
	OpFConst    // push immediate float (Instr.F)
	OpLdcString // push interned string for pool index A (per-isolate pool in I-JVM mode)
	OpLdcClass  // push java.lang.Class object for class ref at pool index A
	OpAConstNull

	// Operand-stack manipulation.
	OpPop
	OpDup
	OpDupX1
	OpSwap

	// Locals.
	OpILoad  // push local A (int)
	OpFLoad  // push local A (float)
	OpALoad  // push local A (ref)
	OpIStore // pop into local A
	OpFStore
	OpAStore
	OpIInc // local A += B

	// Integer arithmetic and bit operations.
	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIRem
	OpINeg
	OpIShl
	OpIShr
	OpIUshr
	OpIAnd
	OpIOr
	OpIXor

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFCmp // push -1, 0 or 1

	// Conversions.
	OpI2F
	OpF2I

	// Control flow. Branch targets (Instr.A) are instruction indices.
	OpGoto
	OpIfEq // pop int; branch if == 0
	OpIfNe
	OpIfLt
	OpIfLe
	OpIfGt
	OpIfGe
	OpIfICmpEq // pop two ints; branch on comparison
	OpIfICmpNe
	OpIfICmpLt
	OpIfICmpLe
	OpIfICmpGt
	OpIfICmpGe
	OpIfACmpEq // pop two refs; branch on reference equality
	OpIfACmpNe
	OpIfNull
	OpIfNonNull

	// Returns.
	OpReturn  // void
	OpIReturn // int
	OpFReturn
	OpAReturn

	// Field access. A = pool index of a FieldRef.
	OpGetStatic
	OpPutStatic
	OpGetField
	OpPutField

	// Invocation. A = pool index of a MethodRef.
	OpInvokeStatic
	OpInvokeVirtual // dynamic dispatch on the receiver's class
	OpInvokeSpecial // direct dispatch (constructors, private/super calls)

	// Objects and arrays.
	OpNew         // A = pool index of a ClassRef
	OpNewArray    // pop length; push new array; A = pool index of ClassRef for element class (may be 0 for untyped)
	OpArrayLength // pop array; push length
	OpArrayLoad   // pop index, array; push element
	OpArrayStore  // pop value, index, array
	OpInstanceOf  // pop ref; push 0/1; A = pool index of ClassRef
	OpCheckCast   // pop ref; push ref or throw ClassCastException

	// Monitors.
	OpMonitorEnter
	OpMonitorExit

	// Exceptions.
	OpAThrow

	opMax // sentinel; keep last
)

// NumOpcodes is the number of defined opcodes plus one (opcodes are 1-based).
const NumOpcodes = int(opMax)

var opcodeNames = map[Opcode]string{
	OpNop:           "nop",
	OpIConst:        "iconst",
	OpFConst:        "fconst",
	OpLdcString:     "ldc_string",
	OpLdcClass:      "ldc_class",
	OpAConstNull:    "aconst_null",
	OpPop:           "pop",
	OpDup:           "dup",
	OpDupX1:         "dup_x1",
	OpSwap:          "swap",
	OpILoad:         "iload",
	OpFLoad:         "fload",
	OpALoad:         "aload",
	OpIStore:        "istore",
	OpFStore:        "fstore",
	OpAStore:        "astore",
	OpIInc:          "iinc",
	OpIAdd:          "iadd",
	OpISub:          "isub",
	OpIMul:          "imul",
	OpIDiv:          "idiv",
	OpIRem:          "irem",
	OpINeg:          "ineg",
	OpIShl:          "ishl",
	OpIShr:          "ishr",
	OpIUshr:         "iushr",
	OpIAnd:          "iand",
	OpIOr:           "ior",
	OpIXor:          "ixor",
	OpFAdd:          "fadd",
	OpFSub:          "fsub",
	OpFMul:          "fmul",
	OpFDiv:          "fdiv",
	OpFNeg:          "fneg",
	OpFCmp:          "fcmp",
	OpI2F:           "i2f",
	OpF2I:           "f2i",
	OpGoto:          "goto",
	OpIfEq:          "ifeq",
	OpIfNe:          "ifne",
	OpIfLt:          "iflt",
	OpIfLe:          "ifle",
	OpIfGt:          "ifgt",
	OpIfGe:          "ifge",
	OpIfICmpEq:      "if_icmpeq",
	OpIfICmpNe:      "if_icmpne",
	OpIfICmpLt:      "if_icmplt",
	OpIfICmpLe:      "if_icmple",
	OpIfICmpGt:      "if_icmpgt",
	OpIfICmpGe:      "if_icmpge",
	OpIfACmpEq:      "if_acmpeq",
	OpIfACmpNe:      "if_acmpne",
	OpIfNull:        "ifnull",
	OpIfNonNull:     "ifnonnull",
	OpReturn:        "return",
	OpIReturn:       "ireturn",
	OpFReturn:       "freturn",
	OpAReturn:       "areturn",
	OpGetStatic:     "getstatic",
	OpPutStatic:     "putstatic",
	OpGetField:      "getfield",
	OpPutField:      "putfield",
	OpInvokeStatic:  "invokestatic",
	OpInvokeVirtual: "invokevirtual",
	OpInvokeSpecial: "invokespecial",
	OpNew:           "new",
	OpNewArray:      "newarray",
	OpArrayLength:   "arraylength",
	OpArrayLoad:     "arrayload",
	OpArrayStore:    "arraystore",
	OpInstanceOf:    "instanceof",
	OpCheckCast:     "checkcast",
	OpMonitorEnter:  "monitorenter",
	OpMonitorExit:   "monitorexit",
	OpAThrow:        "athrow",
}

var opcodeByName = buildOpcodeByName()

func buildOpcodeByName() map[string]Opcode {
	m := make(map[string]Opcode, len(opcodeNames))
	for op, name := range opcodeNames {
		m[name] = op
	}
	return m
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if name, ok := opcodeNames[op]; ok {
		return name
	}
	return "op#" + strconv.Itoa(int(op))
}

// OpcodeByName resolves a mnemonic to its opcode. The boolean reports
// whether the mnemonic is known.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	_, ok := opcodeNames[op]
	return ok
}

// IsBranch reports whether the instruction transfers control to Instr.A.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpGoto, OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe,
		OpIfICmpEq, OpIfICmpNe, OpIfICmpLt, OpIfICmpLe, OpIfICmpGt, OpIfICmpGe,
		OpIfACmpEq, OpIfACmpNe, OpIfNull, OpIfNonNull:
		return true
	}
	return false
}

// IsConditionalBranch reports whether the instruction may fall through.
func (op Opcode) IsConditionalBranch() bool {
	return op.IsBranch() && op != OpGoto
}

// IsReturn reports whether the instruction leaves the current frame
// normally.
func (op Opcode) IsReturn() bool {
	switch op {
	case OpReturn, OpIReturn, OpFReturn, OpAReturn:
		return true
	}
	return false
}

// IsTerminator reports whether control never falls through to the next
// instruction.
func (op Opcode) IsTerminator() bool {
	return op == OpGoto || op == OpAThrow || op.IsReturn()
}

// UsesPool reports whether Instr.A is an index into the constant pool.
func (op Opcode) UsesPool() bool {
	switch op {
	case OpLdcString, OpLdcClass, OpGetStatic, OpPutStatic, OpGetField, OpPutField,
		OpInvokeStatic, OpInvokeVirtual, OpInvokeSpecial, OpNew, OpNewArray,
		OpInstanceOf, OpCheckCast:
		return true
	}
	return false
}

// UsesLocal reports whether Instr.A is a local-variable slot index.
func (op Opcode) UsesLocal() bool {
	switch op {
	case OpILoad, OpFLoad, OpALoad, OpIStore, OpFStore, OpAStore, OpIInc:
		return true
	}
	return false
}
