package bytecode

import "sync/atomic"

// PInstr is one prepared ("quickened") instruction. The interpreter's
// code-preparation pass runs once per method and isolation mode on first
// invocation and rewrites the decoded Instr stream into this form:
//
//   - H is the dispatch handler index into the interpreter's flat handler
//     table, replacing the opcode switch. Base handlers use the opcode
//     value itself; the numbering only has to agree between the preparer
//     and the table, so specialized (quickened) handlers may use indices
//     beyond NumOpcodes.
//   - Ref carries the pre-resolved constant-pool operand (the pool entry
//     pointer for field/method/class/string references). It is opaque at
//     this layer so the package stays free of classfile dependencies.
//   - IC is the polymorphic inline cache of an invokevirtual site (nil
//     for every other instruction). It lives in the prepared form — not
//     the pool entry — so distinct call sites of one method reference
//     keep independent dispatch histories, and a re-quickening (mode
//     flip, poisoned clone) starts cold.
//   - FS is the resolved-field slot cache of a getfield/putfield site
//     (nil for every other instruction), published once on first
//     resolution so later executions index the receiver's field array
//     directly (same immutable-publish shape as IC).
//   - B holds, for the three invoke opcodes, the argument-window size
//     (declared parameters plus the receiver for instance calls),
//     precomputed from the referenced descriptor so fast paths never
//     re-derive it. All other opcodes keep the decoded operand.
//   - A, I, F mirror the decoded Instr operands.
type PInstr struct {
	Ref any
	IC  *ICache
	FS  *FieldSlot
	I   int64
	F   float64
	A   int32
	B   int32
	H   uint8
}

// PCode is the prepared executable form of a method body. Unlike Code,
// whose MaxStack is a preallocation hint, a PCode's MaxStack/MaxLocals
// are exact: the preparation pass verifies operand-stack discipline by
// dataflow, so frames can use fixed-capacity stacks and the handlers can
// pop without underflow checks. ErrPC is the preformatted sticky error
// returned when the program counter escapes the code (validated
// impossible for prepared code reached through normal control flow, but
// kept as the single cheap bounds check in the dispatch loop).
type PCode struct {
	Instrs    []PInstr
	MaxStack  int
	MaxLocals int
	ErrPC     error

	// Tier is the closure-threaded hot-tier promotion state (heat counter
	// and the CAS-published closure program). It rides on the prepared
	// form so a re-quickening (mode flip, poisoned clone) starts cold.
	Tier TierState
}

// Prepared-form mode indexes. A method body carries one independent
// quickening per isolation mode: the Shared and Isolated interpreters
// dispatch through mode-specialized handler tables, and each mode's
// inline caches warm against its own execution history (a Code shared by
// a baseline VM and an I-JVM VM must not share call-site state).
const (
	PModeShared = iota
	PModeIsolated
	NumPModes
)

// Prepared-form variant indexes. Each mode comes in two variants:
// the default fused variant (superinstruction heads rewritten, see
// fused.go) and the unfused variant (pure quickening, one handler per
// instruction) used when fusion is disabled. The fused variant occupies
// the low slots so `Prepared(PModeIsolated)` keeps meaning "the form a
// default-options VM executes".
const (
	PVariantFused = iota
	PVariantUnfused
	NumPVariants
)

// PSlot maps a (mode, variant) pair to its prepared-cache slot index.
func PSlot(mode, variant int) int { return mode + NumPModes*variant }

// Prepared returns the cached prepared form for one cache slot (a mode
// index, or PSlot(mode, variant) for non-default variants), or nil
// before the first preparation. A non-nil result with an empty Instrs
// slice is the preparer's "unpreparable" sentinel: the method
// permanently executes through the reference switch interpreter.
func (c *Code) Prepared(slot int) *PCode { return c.prepared[slot].Load() }

// StorePrepared publishes p as the code's prepared form for one cache
// slot. Preparation is deterministic, so when two scheduler workers
// race the first publisher wins and both use the winning form, which is
// returned.
func (c *Code) StorePrepared(slot int, p *PCode) *PCode {
	if c.prepared[slot].CompareAndSwap(nil, p) {
		return p
	}
	return c.prepared[slot].Load()
}

// preparedCache is the per-Code cache slot array for the quickened
// forms, one per (isolation mode, fusion variant) pair. Clone
// intentionally does not copy it: a cloned (e.g. poisoned) body must be
// re-prepared.
type preparedCache = [NumPModes * NumPVariants]atomic.Pointer[PCode]
