package bytecode

import "sync/atomic"

// PInstr is one prepared ("quickened") instruction. The interpreter's
// code-preparation pass runs once per method on first invocation and
// rewrites the decoded Instr stream into this form:
//
//   - H is the dispatch handler index into the interpreter's flat handler
//     table, replacing the opcode switch. Base handlers use the opcode
//     value itself; the numbering only has to agree between the preparer
//     and the table, so specialized (quickened) handlers may use indices
//     beyond NumOpcodes.
//   - Ref carries the pre-resolved constant-pool operand (the pool entry
//     pointer for field/method/class/string references). It is opaque at
//     this layer so the package stays free of classfile dependencies.
//   - A, B, I, F mirror the decoded Instr operands.
type PInstr struct {
	Ref any
	I   int64
	F   float64
	A   int32
	B   int32
	H   uint8
}

// PCode is the prepared executable form of a method body. Unlike Code,
// whose MaxStack is a preallocation hint, a PCode's MaxStack/MaxLocals
// are exact: the preparation pass verifies operand-stack discipline by
// dataflow, so frames can use fixed-capacity stacks and the handlers can
// pop without underflow checks. ErrPC is the preformatted sticky error
// returned when the program counter escapes the code (validated
// impossible for prepared code reached through normal control flow, but
// kept as the single cheap bounds check in the dispatch loop).
type PCode struct {
	Instrs    []PInstr
	MaxStack  int
	MaxLocals int
	ErrPC     error
}

// Prepared returns the cached prepared form of the code, or nil before
// the first preparation. A non-nil result with an empty Instrs slice is
// the preparer's "unpreparable" sentinel: the method permanently executes
// through the reference switch interpreter.
func (c *Code) Prepared() *PCode { return c.prepared.Load() }

// StorePrepared publishes p as the code's prepared form. Preparation is
// deterministic, so when two scheduler workers race the first publisher
// wins and both use the winning form, which is returned.
func (c *Code) StorePrepared(p *PCode) *PCode {
	if c.prepared.CompareAndSwap(nil, p) {
		return p
	}
	return c.prepared.Load()
}

// preparedCache is the per-Code cache slot for the quickened form. Clone
// intentionally does not copy it: a cloned (e.g. poisoned) body must be
// re-prepared.
type preparedCache = atomic.Pointer[PCode]
