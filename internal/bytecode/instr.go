package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Instr is one decoded instruction. Operands are pre-decoded so the
// interpreter never parses bytes on the hot path:
//
//   - A: local slot, constant-pool index, or branch target (instruction
//     index) depending on the opcode.
//   - B: secondary operand (iinc delta).
//   - I: immediate integer (iconst).
//   - F: immediate float (fconst).
type Instr struct {
	Op Opcode
	A  int32
	B  int32
	I  int64
	F  float64
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpIConst:
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(in.I, 10))
	case OpFConst:
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(in.F, 'g', -1, 64))
	case OpIInc:
		fmt.Fprintf(&b, " %d %d", in.A, in.B)
	default:
		if in.Op.UsesLocal() || in.Op.UsesPool() || in.Op.IsBranch() {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(int64(in.A), 10))
		}
	}
	return b.String()
}

// Handler is one entry of a method's exception table. A handler covers
// instruction indices in [Start, End) and transfers control to Target when
// an exception whose class is (a subclass of) CatchClass is thrown inside
// the range. An empty CatchClass catches everything.
type Handler struct {
	Start      int32
	End        int32
	Target     int32
	CatchClass string
}

// Covers reports whether the handler protects instruction index pc.
func (h Handler) Covers(pc int32) bool {
	return pc >= h.Start && pc < h.End
}

// Code is the executable body of a method.
type Code struct {
	Instrs    []Instr
	Handlers  []Handler
	MaxLocals int
	MaxStack  int

	// prepared caches the quickened form (see prepared.go); nil until the
	// interpreter's preparation pass first runs the method.
	prepared preparedCache
}

// Clone returns a deep copy of the code, so callers can mutate (e.g. poison
// method entry on isolate termination) without affecting shared state.
func (c *Code) Clone() *Code {
	if c == nil {
		return nil
	}
	out := &Code{
		MaxLocals: c.MaxLocals,
		MaxStack:  c.MaxStack,
	}
	out.Instrs = make([]Instr, len(c.Instrs))
	copy(out.Instrs, c.Instrs)
	out.Handlers = make([]Handler, len(c.Handlers))
	copy(out.Handlers, c.Handlers)
	return out
}
