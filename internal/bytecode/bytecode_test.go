package bytecode_test

import (
	"strings"
	"testing"
	"testing/quick"

	"ijvm/internal/bytecode"
)

// stubPool implements bytecode.Pool with sequential indices.
type stubPool struct {
	entries []string
}

func (p *stubPool) add(key string) int32 {
	for i, e := range p.entries {
		if e == key {
			return int32(i + 1)
		}
	}
	p.entries = append(p.entries, key)
	return int32(len(p.entries))
}

func (p *stubPool) StringIndex(s string) int32 { return p.add("s:" + s) }
func (p *stubPool) ClassIndex(n string) int32  { return p.add("c:" + n) }
func (p *stubPool) FieldIndex(c, n string) int32 {
	return p.add("f:" + c + "." + n)
}
func (p *stubPool) MethodIndex(c, n, d string) int32 {
	return p.add("m:" + c + "." + n + d)
}

func TestOpcodeNamesRoundTrip(t *testing.T) {
	for op := bytecode.Opcode(1); int(op) < bytecode.NumOpcodes; op++ {
		if !op.Valid() {
			continue
		}
		name := op.String()
		back, ok := bytecode.OpcodeByName(name)
		if !ok {
			t.Errorf("OpcodeByName(%q) missing", name)
			continue
		}
		if back != op {
			t.Errorf("OpcodeByName(%q) = %v, want %v", name, back, op)
		}
	}
	if _, ok := bytecode.OpcodeByName("definitely-not-an-op"); ok {
		t.Error("OpcodeByName accepted garbage")
	}
}

func TestOpcodeClassificationConsistency(t *testing.T) {
	for op := bytecode.Opcode(1); int(op) < bytecode.NumOpcodes; op++ {
		if !op.Valid() {
			continue
		}
		if op.IsConditionalBranch() && !op.IsBranch() {
			t.Errorf("%v conditional but not branch", op)
		}
		if op == bytecode.OpGoto && op.IsConditionalBranch() {
			t.Error("goto must be unconditional")
		}
		if op.IsReturn() && !op.IsTerminator() {
			t.Errorf("%v returns but is not a terminator", op)
		}
		if op.UsesPool() && op.UsesLocal() {
			t.Errorf("%v claims both pool and local operands", op)
		}
	}
}

func TestAssemblerLabelResolution(t *testing.T) {
	a := bytecode.NewAssembler(nil)
	a.Const(1).IfNe("skip").Const(0).IReturn().Label("skip").Const(2).IReturn()
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := bytecode.Validate(code); err != nil {
		t.Fatal(err)
	}
	branch := code.Instrs[1]
	if branch.Op != bytecode.OpIfNe || branch.A != 4 {
		t.Fatalf("branch target = %+v, want ifne -> 4", branch)
	}
}

func TestAssemblerErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		a := bytecode.NewAssembler(nil)
		a.Goto("nowhere")
		if _, err := a.Finish(); err == nil || !strings.Contains(err.Error(), "undefined label") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		a := bytecode.NewAssembler(nil)
		a.Label("x").Label("x").Return()
		if _, err := a.Finish(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("pool required", func(t *testing.T) {
		a := bytecode.NewAssembler(nil)
		a.Str("needs pool").Return()
		if _, err := a.Finish(); err == nil || !strings.Contains(err.Error(), "constant pool") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("handler undefined labels", func(t *testing.T) {
		a := bytecode.NewAssembler(nil)
		a.Return()
		a.Handler("a", "b", "c", "")
		if _, err := a.Finish(); err == nil || !strings.Contains(err.Error(), "handler") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestValidateRejectsBadCode(t *testing.T) {
	cases := []struct {
		name string
		code *bytecode.Code
		want string
	}{
		{"nil", nil, "nil code"},
		{"empty", &bytecode.Code{}, "empty code"},
		{
			"fallthrough",
			&bytecode.Code{Instrs: []bytecode.Instr{{Op: bytecode.OpNop}}},
			"fall off",
		},
		{
			"bad branch",
			&bytecode.Code{Instrs: []bytecode.Instr{
				{Op: bytecode.OpGoto, A: 99},
			}},
			"out of range",
		},
		{
			"bad local",
			&bytecode.Code{Instrs: []bytecode.Instr{
				{Op: bytecode.OpILoad, A: 3},
				{Op: bytecode.OpReturn},
			}, MaxLocals: 1},
			"local slot",
		},
		{
			"bad handler",
			&bytecode.Code{
				Instrs:   []bytecode.Instr{{Op: bytecode.OpReturn}},
				Handlers: []bytecode.Handler{{Start: 5, End: 2, Target: 0}},
			},
			"bad range",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := bytecode.Validate(tc.code)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCodeClone(t *testing.T) {
	a := bytecode.NewAssembler(nil)
	a.Const(1).IReturn()
	code := a.MustFinish()
	dup := code.Clone()
	dup.Instrs[0].I = 99
	if code.Instrs[0].I != 1 {
		t.Fatal("Clone shares instruction storage")
	}
	if (*bytecode.Code)(nil).Clone() != nil {
		t.Fatal("nil Clone must be nil")
	}
}

func TestDisassembleShowsHandlers(t *testing.T) {
	a := bytecode.NewAssembler(nil)
	a.Label("try").Const(1).IReturn().Label("end").Label("h").Const(0).IReturn()
	a.Handler("try", "end", "h", "java/lang/Exception")
	code := a.MustFinish()
	out := bytecode.Disassemble(code)
	if !strings.Contains(out, "iconst 1") || !strings.Contains(out, ".catch java/lang/Exception") {
		t.Fatalf("disassembly missing pieces:\n%s", out)
	}
}

// TestQuickLinearProgramsValidate builds random straight-line stack-safe
// programs and checks assembler output always validates.
func TestQuickLinearProgramsValidate(t *testing.T) {
	fn := func(seed uint64, opsRaw []byte) bool {
		a := bytecode.NewAssembler(&stubPool{})
		depth := 0
		for _, raw := range opsRaw {
			switch raw % 7 {
			case 0:
				a.Const(int64(raw))
				depth++
			case 1:
				a.FConst(float64(raw) / 3)
				depth++
			case 2:
				if depth >= 2 {
					a.IAdd()
					depth--
				}
			case 3:
				if depth >= 1 {
					a.Pop()
					depth--
				}
			case 4:
				if depth >= 1 {
					a.Dup()
					depth++
				}
			case 5:
				a.ILoad(int(raw % 4))
				depth++
			case 6:
				if depth >= 1 {
					a.IStore(int(raw % 4))
					depth--
				}
			}
		}
		a.Const(0).IReturn()
		code, err := a.Finish()
		if err != nil {
			return false
		}
		return bytecode.Validate(code) == nil && code.MaxStack >= 1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
