package bytecode

import "sync/atomic"

// Superinstruction indices.
//
// The preparation pass fuses common quickened sequences into
// superinstructions by rewriting ONLY the head instruction's handler index
// (PInstr.H) to one of the Fused* values below. The follower instructions
// keep their original form — operands, pool refs, field slots, and IC lines
// are all untouched — so branch targets that land in the middle of a fused
// group, exception-handler entries, and re-quickening of live frames all
// keep working with no control-flow analysis: any entry at a follower pc
// simply executes the original single instruction. Fused handlers read
// follower operands from PCode.Instrs[pc+1..].
//
// Shapes split into two families:
//
//   - full-inline: every sub-instruction is non-throwing and cannot reach a
//     safepoint, so the handler executes the whole group and returns nil
//     (the engine loop's own +1 charge covers the final sub);
//   - delegated-final: the non-throwing prefix is inlined, then the group's
//     last instruction — which may throw, allocate, invoke, or flip the
//     isolation mode — is dispatched through the live handler table with
//     the frame in exactly the state the unfused engine would have.
//
// Handler indices start well above the opcode range (NumOpcodes < 80).
const FusedBase uint8 = 200

const (
	// Full-inline shapes.
	FusedLLOpStore  uint8 = FusedBase + iota // load; load; pure int op; store
	FusedLCOpStore                           // load; iconst; pure int op; store
	FusedLLOp                                // load; load; pure int op
	FusedLCOp                                // load; iconst; pure int op
	FusedLLCmpBr                             // load; load; if_icmpXX
	FusedLCCmpBr                             // load; iconst; if_icmpXX
	FusedIncGoto                             // iinc; goto
	FusedConstStore                          // iconst; store

	// Delegated-final shapes.
	FusedLLThen       // load; load; <delegated final>   (e.g. idiv, putfield)
	FusedLCThen       // load; iconst; <delegated final>
	FusedLThen        // load; <delegated final>         (e.g. getfield, invokevirtual)
	FusedGetFieldThen // getfield (guarded inline); invokevirtual/invokespecial

	fusedEnd // sentinel; keep last
)

// NumFused is the number of superinstruction indices.
const NumFused = int(fusedEnd - FusedBase)

// IsFused reports whether a PInstr handler index denotes a superinstruction
// head rather than a plain opcode.
func IsFused(h uint8) bool {
	return h >= FusedBase && h < fusedEnd
}

// FusedWidth returns the number of original instructions covered by the
// superinstruction, or 0 if h is not a superinstruction index.
func FusedWidth(h uint8) int {
	switch h {
	case FusedLLOpStore, FusedLCOpStore:
		return 4
	case FusedLLOp, FusedLCOp, FusedLLCmpBr, FusedLCCmpBr, FusedLLThen, FusedLCThen:
		return 3
	case FusedIncGoto, FusedConstStore, FusedLThen, FusedGetFieldThen:
		return 2
	}
	return 0
}

var fusedNames = map[uint8]string{
	FusedLLOpStore:    "fused_ll_op_store",
	FusedLCOpStore:    "fused_lc_op_store",
	FusedLLOp:         "fused_ll_op",
	FusedLCOp:         "fused_lc_op",
	FusedLLCmpBr:      "fused_ll_cmp_br",
	FusedLCCmpBr:      "fused_lc_cmp_br",
	FusedIncGoto:      "fused_inc_goto",
	FusedConstStore:   "fused_const_store",
	FusedLLThen:       "fused_ll_then",
	FusedLCThen:       "fused_lc_then",
	FusedLThen:        "fused_l_then",
	FusedGetFieldThen: "fused_getfield_then",
}

// FusedName returns the mnemonic for a superinstruction index, or "" if h
// is not one.
func FusedName(h uint8) string {
	return fusedNames[h]
}

// TierState is the per-PCode promotion state for the closure-threaded hot
// tier. Heat accumulates on method activation and at quantum boundaries;
// when it crosses the VM's promotion threshold the interpreter compiles a
// closure-threaded program for the method and publishes it here with a
// first-wins CAS (racing promoters adopt the winner, like IC lines).
type TierState struct {
	heat atomic.Int64
	hot  atomic.Value // holds the interpreter's closure program (opaque here)
}

// AddHeat adds n activation heat and returns the new total.
func (ts *TierState) AddHeat(n int64) int64 {
	return ts.heat.Add(n)
}

// Heat returns the accumulated activation heat.
func (ts *TierState) Heat() int64 {
	return ts.heat.Load()
}

// Hot returns the published closure-threaded program, or nil.
func (ts *TierState) Hot() any {
	return ts.hot.Load()
}

// PublishHot installs the closure-threaded program if none is published
// yet. It reports whether p won; on false the caller should adopt Hot().
func (ts *TierState) PublishHot(p any) bool {
	return ts.hot.CompareAndSwap(nil, p)
}
