package serve_test

import (
	"errors"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/serve"
	"ijvm/internal/syslib"
)

const poolApp = "pl/App"

// poolClasses is the minimal serving app: clinit seeds count=5, serve(x)
// adds x and returns the new count (tenant-private state feeds the
// result, so a stale or shared mirror shows up immediately).
func poolClasses() []*classfile.Class {
	app := classfile.NewClass(poolApp).
		StaticField("count", classfile.KindInt).
		Method(classfile.ClinitName, "()V", classfile.FlagStatic, func(a *bytecode.Assembler) {
			a.Const(5).PutStatic(poolApp, "count").Return()
		}).
		Method("serve", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.GetStatic(poolApp, "count").ILoad(0).IAdd().PutStatic(poolApp, "count")
			a.GetStatic(poolApp, "count").IReturn()
		}).MustBuild()
	return []*classfile.Class{app}
}

// poolVM builds an isolated VM with a host Isolate0, a warmed template
// and its snapshot (count=6 at capture), returning the serve method
// resolvable from every clone.
func poolVM(t *testing.T, heapLimit int64) (*interp.VM, *core.Isolate, *interp.Snapshot, *classfile.Method) {
	t.Helper()
	if heapLimit <= 0 {
		heapLimit = 16 << 20
	}
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: heapLimit})
	syslib.MustInstall(vm)
	host, err := vm.NewIsolate("host")
	if err != nil {
		t.Fatal(err)
	}
	tl := vm.Registry().NewLoader("pl-template")
	if err := tl.DefineAll(poolClasses()); err != nil {
		t.Fatal(err)
	}
	wl := vm.Registry().NewLoader("pl-warmer")
	warmer, err := vm.World().NewIsolate("pl-warmer", wl)
	if err != nil {
		t.Fatal(err)
	}
	wl.AddDelegate(tl)
	app, err := tl.Lookup(poolApp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := app.LookupMethod("serve", "(I)I")
	if err != nil {
		t.Fatal(err)
	}
	if v, th, err := vm.CallRoot(warmer, m, []heap.Value{heap.IntVal(1)}, 0); err != nil || th.Failure() != nil || v.I != 6 {
		t.Fatalf("warm-up: %v / %v", err, th)
	}
	snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return vm, host, snap, m
}

func waitWarm(t *testing.T, p *serve.Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if p.Stats().Warm >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never refilled to %d: %+v", want, p.Stats())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestPoolAcquireServeRelease covers the basic lifecycle: a primed pool
// hands out distinct fresh clones, exhaustion fails fast with the typed
// ErrSaturated, released sessions recycle through kill/sweep/free, and
// the refiller restores the warm set.
func TestPoolAcquireServeRelease(t *testing.T) {
	vm, _, snap, serveM := poolVM(t, 0)
	defer snap.Release()
	p, err := serve.NewPool(vm, snap, serve.Config{Capacity: 4, NamePrefix: "pl"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if st := p.Stats(); st.Warm != 4 || st.Cloned != 4 {
		t.Fatalf("priming: %+v", st)
	}

	got := make([]*core.Isolate, 0, 4)
	seen := map[*core.Isolate]bool{}
	for i := 0; i < 4; i++ {
		iso, err := p.Acquire(nil)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if seen[iso] {
			t.Fatalf("acquire %d returned a duplicate isolate", i)
		}
		seen[iso] = true
		got = append(got, iso)
	}
	// Exhausted: the typed admission error, not a block.
	if _, err := p.Acquire(nil); !errors.Is(err, serve.ErrSaturated) {
		t.Fatalf("exhausted acquire: %v, want ErrSaturated", err)
	}

	// Every acquired isolate is a fresh warmed clone: count starts at the
	// captured 6.
	for i, iso := range got {
		v, th, err := vm.CallRoot(iso, serveM, []heap.Value{heap.IntVal(int64(i + 1))}, 0)
		if err != nil || th.Failure() != nil {
			t.Fatalf("serve on %s: %v / %s", iso.Name(), err, th.FailureString())
		}
		if want := int64(6 + i + 1); v.I != want {
			t.Fatalf("serve on %s = %d, want %d", iso.Name(), v.I, want)
		}
	}

	for _, iso := range got {
		p.Release(iso)
	}
	waitWarm(t, p, 4)
	st := p.Stats()
	if st.Recycled != 4 {
		t.Fatalf("recycled %d sessions, want 4 (%+v)", st.Recycled, st)
	}
	if st.Acquired != 4 || st.Saturated != 1 {
		t.Fatalf("counter mismatch: %+v", st)
	}
	// The refilled isolates are fresh again.
	iso, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, th, err := vm.CallRoot(iso, serveM, []heap.Value{heap.IntVal(2)}, 0); err != nil || th.Failure() != nil || v.I != 8 {
		t.Fatalf("refilled serve = %v (%v), want 8", v.I, err)
	}
	p.Release(iso)
}

// TestPoolRecyclesIsolateSlots proves steady-state churn does not grow
// the world: many acquire/release cycles reuse the same dense IDs.
func TestPoolRecyclesIsolateSlots(t *testing.T) {
	vm, _, snap, _ := poolVM(t, 0)
	defer snap.Release()
	p, err := serve.NewPool(vm, snap, serve.Config{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// One extra slot may exist transiently while a retired session and
	// its replacement clone overlap; the world table must stay bounded
	// regardless of how many sessions churn through.
	bound := vm.World().NumIsolates() + p.Stats().Warm + 1
	for cycle := 0; cycle < 20; cycle++ {
		iso, err := p.Acquire(nil)
		if err != nil {
			time.Sleep(500 * time.Microsecond)
			continue
		}
		p.Release(iso)
		waitWarm(t, p, 1)
	}
	waitWarm(t, p, 2)
	if got := vm.World().NumIsolates(); got > bound {
		t.Fatalf("world grew to %d isolates under churn, bound %d", got, bound)
	}
	if st := p.Stats(); st.Recycled == 0 {
		t.Fatalf("no sessions recycled: %+v", st)
	}
}

// TestPoolShedsThrottled: a governor-throttled principal is refused with
// core.ErrThrottled before any slot is spent; Isolate0 is exempt.
func TestPoolShedsThrottled(t *testing.T) {
	vm, host, snap, _ := poolVM(t, 0)
	defer snap.Release()
	p, err := serve.NewPool(vm, snap, serve.Config{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	abuser, err := vm.NewIsolate("abuser")
	if err != nil {
		t.Fatal(err)
	}
	abuser.SetThrottled(true)
	if _, err := p.Acquire(abuser); !errors.Is(err, core.ErrThrottled) {
		t.Fatalf("throttled acquire: %v, want ErrThrottled", err)
	}
	st := p.Stats()
	if st.Shed != 1 {
		t.Fatalf("shed count %d, want 1", st.Shed)
	}
	if st.Warm != 2 {
		t.Fatalf("shedding spent a slot: warm %d, want 2", st.Warm)
	}
	// Isolate0 (the runtime) is governance-exempt at the admission edge
	// too, matching SpawnThread's throttle gate.
	host.SetThrottled(true)
	iso, err := p.Acquire(host)
	if err != nil {
		t.Fatalf("Isolate0 acquire while throttled: %v", err)
	}
	p.Release(iso)
	// An untrottled principal is admitted normally.
	abuser.SetThrottled(false)
	iso, err = p.Acquire(abuser)
	if err != nil {
		t.Fatalf("unthrottled acquire: %v", err)
	}
	p.Release(iso)
}

// TestPoolClose: Close tears everything down, further Acquires fail
// typed, and a post-Close Release of an outstanding isolate is torn
// down inline instead of leaking.
func TestPoolClose(t *testing.T) {
	vm, _, snap, _ := poolVM(t, 0)
	defer snap.Release()
	p, err := serve.NewPool(vm, snap, serve.Config{Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Acquire(nil); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("acquire after close: %v, want ErrClosed", err)
	}
	if st := p.Stats(); st.Warm != 0 || st.Recycled != 2 {
		t.Fatalf("close teardown: %+v, want warm=0 recycled=2", st)
	}
	p.Release(out)
	if st := p.Stats(); st.Recycled != 3 {
		t.Fatalf("post-close release not torn down: %+v", st)
	}
	if !out.Disposed() {
		t.Fatal("outstanding isolate not disposed after post-close release")
	}
}

// TestPoolPrimingFailure: a pool that cannot prime (snapshot already
// released) fails construction without leaking partial state.
func TestPoolPrimingFailure(t *testing.T) {
	vm, _, snap, _ := poolVM(t, 0)
	isolates := vm.World().NumIsolates()
	loaders := vm.Registry().NumLoaders()
	snap.Release()
	if _, err := serve.NewPool(vm, snap, serve.Config{Capacity: 2}); err == nil {
		t.Fatal("NewPool over a released snapshot succeeded")
	}
	if got := vm.World().NumIsolates(); got != isolates {
		t.Fatalf("failed priming leaked isolates: %d, want %d", got, isolates)
	}
	if got := vm.Registry().NumLoaders(); got != loaders {
		t.Fatalf("failed priming leaked loaders: %d, want %d", got, loaders)
	}
}
