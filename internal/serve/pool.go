// Package serve is the high-density serving layer: a bounded pre-warmed
// clone pool that sits between an admission edge (gateway, RPC ingress)
// and the concurrent scheduler, so tenant sessions start on an
// already-materialized warmed isolate instead of paying clone — let
// alone cold class-load — latency on the request path.
//
// # Model
//
// A Pool owns a set of isolates cloned from one interp.Snapshot. A
// background refiller goroutine keeps the warm set topped up to
// Capacity: every Acquire/Release kicks it, it materializes
// CloneIsolate copies off the request path, and it retires returned
// sessions through the sanctioned teardown pipeline
// (kill -> accounting collection -> FreeIsolate), which recycles the
// dense isolate ID, mirror column, heap counters and registry loader of
// every finished session. Clone materialization is GC-safe behind a
// running scheduler (HostRoots keeps the partial copy rooted until the
// mirrors are published), so refill happens while tenants execute.
//
// # Admission and backpressure
//
// Acquire never blocks and never clones inline. The contract mirrors
// the RPC layer's queue admission (rpc.ErrSaturated):
//
//   - a governor-throttled principal is shed first, with
//     core.ErrThrottled, before a pool slot is spent on it — the
//     scheduler's pressure signal reaches the admission edge;
//   - an empty pool fails fast with ErrSaturated; the caller applies
//     its own retry/shed policy while the refiller catches up;
//   - a closed pool fails with ErrClosed.
//
// # Lock ordering
//
// The pool mutex is a leaf lock: it guards only the warm/dead slices
// and is never held across any VM operation (clone, kill, collect,
// free). VM-side operations therefore take their usual internal locks
// (world stop, pinMu, regMu, heap locks) without ever nesting inside
// pool.mu, and callers may invoke pool methods from scheduler-adjacent
// goroutines without lock-order concerns.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ijvm/internal/core"
	"ijvm/internal/interp"
)

var (
	// ErrSaturated is the typed admission-backpressure error: the warm
	// set is empty and the refiller has not caught up. Fail-fast by
	// design — a blocking Acquire would turn pool exhaustion into
	// unbounded queueing at the edge instead of load shedding.
	ErrSaturated = errors.New("serve: clone pool exhausted")
	// ErrClosed is returned by Acquire after Close.
	ErrClosed = errors.New("serve: clone pool closed")
)

// Config configures a Pool.
type Config struct {
	// Capacity is the warm-set bound (default 8). The refiller keeps at
	// most this many materialized clones ready; it is also the prime
	// count NewPool builds synchronously before returning.
	Capacity int
	// NamePrefix names pooled isolates "<prefix>-<seq>" (default
	// "pooled").
	NamePrefix string
}

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Acquired      int64 // successful Acquires
	Saturated     int64 // Acquires refused with ErrSaturated
	Shed          int64 // Acquires refused with core.ErrThrottled
	Cloned        int64 // isolates materialized from the snapshot
	Recycled      int64 // retired sessions whose slot was freed
	CloneFailures int64 // refill clone attempts that failed
	Warm          int   // isolates ready right now
	Retiring      int   // returned isolates awaiting teardown
}

// Pool is a bounded pre-warmed clone pool. All methods are safe for
// concurrent use.
type Pool struct {
	vm   *interp.VM
	snap *interp.Snapshot
	cfg  Config

	mu     sync.Mutex
	warm   []*core.Isolate
	dead   []*core.Isolate
	closed bool

	seq  atomic.Int64
	wake chan struct{}
	done chan struct{}
	idle sync.WaitGroup

	acquired      atomic.Int64
	saturated     atomic.Int64
	shed          atomic.Int64
	cloned        atomic.Int64
	recycled      atomic.Int64
	cloneFailures atomic.Int64
}

// NewPool builds a pool over snap, primes it synchronously to Capacity
// (so the first Acquire after NewPool never sees a cold pool), and
// starts the refiller. The snapshot must stay unreleased for the pool's
// lifetime; the pool does not take ownership of it.
func NewPool(vm *interp.VM, snap *interp.Snapshot, cfg Config) (*Pool, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "pooled"
	}
	p := &Pool{
		vm:   vm,
		snap: snap,
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.Capacity; i++ {
		iso, err := p.clone()
		if err != nil {
			p.retire(p.warm)
			return nil, fmt.Errorf("serve: priming clone %d/%d: %w", i+1, cfg.Capacity, err)
		}
		p.warm = append(p.warm, iso)
	}
	p.idle.Add(1)
	go p.refiller()
	return p, nil
}

// Acquire hands out a warmed isolate, or fails fast. A throttled
// principal (governor escalation, core.ErrThrottled) is shed before any
// slot is spent; pass nil for principal-less (host/anonymous)
// admission. An empty pool returns ErrSaturated and kicks the refiller.
func (p *Pool) Acquire(principal *core.Isolate) (*core.Isolate, error) {
	if principal != nil && principal.Throttled() && !principal.IsIsolate0() {
		p.shed.Add(1)
		return nil, fmt.Errorf("serve: admission refused for %s: %w", principal.Name(), core.ErrThrottled)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(p.warm); n > 0 {
		iso := p.warm[n-1]
		p.warm = p.warm[:n-1]
		p.mu.Unlock()
		p.acquired.Add(1)
		p.kick()
		return iso, nil
	}
	p.mu.Unlock()
	p.saturated.Add(1)
	p.kick()
	return nil, ErrSaturated
}

// Release returns a finished session's isolate for teardown and
// recycling. The caller must have no undone threads still bound to the
// isolate (wait for its session threads first); killing it beforehand
// is allowed but not required — the refiller kills un-killed returns.
func (p *Pool) Release(iso *core.Isolate) {
	if iso == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// The refiller is gone; tear the straggler down inline.
		p.retire([]*core.Isolate{iso})
		return
	}
	p.dead = append(p.dead, iso)
	p.mu.Unlock()
	p.kick()
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	warm, retiring := len(p.warm), len(p.dead)
	p.mu.Unlock()
	return Stats{
		Acquired:      p.acquired.Load(),
		Saturated:     p.saturated.Load(),
		Shed:          p.shed.Load(),
		Cloned:        p.cloned.Load(),
		Recycled:      p.recycled.Load(),
		CloneFailures: p.cloneFailures.Load(),
		Warm:          warm,
		Retiring:      retiring,
	}
}

// Close stops the refiller and tears down every warm and returned
// isolate (kill, sweep, free). Idempotent. Outstanding acquired
// isolates are the caller's to Release (torn down inline after Close).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	rest := append(p.warm, p.dead...)
	p.warm, p.dead = nil, nil
	p.mu.Unlock()
	close(p.done)
	p.idle.Wait()
	for attempt := 0; len(rest) > 0 && attempt < 1000; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Millisecond)
		}
		rest = p.retire(rest)
	}
}

// kick nudges the refiller without blocking (the wake channel is a
// 1-buffered latch; a pending kick absorbs further ones).
func (p *Pool) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

func (p *Pool) refiller() {
	defer p.idle.Done()
	for {
		select {
		case <-p.done:
			return
		case <-p.wake:
		}
		p.refill()
	}
}

// refill retires returned sessions, then tops the warm set back up to
// Capacity. Runs only on the refiller goroutine; holds no pool lock
// across VM operations.
func (p *Pool) refill() {
	p.mu.Lock()
	dead := p.dead
	p.dead = nil
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.retire(dead)
		return
	}
	if rest := p.retire(dead); len(rest) > 0 {
		// Threads still unwinding or sweep not terminal yet: put them
		// back and retry shortly.
		p.mu.Lock()
		p.dead = append(p.dead, rest...)
		p.mu.Unlock()
		time.AfterFunc(time.Millisecond, p.kick)
	}
	for {
		p.mu.Lock()
		full := p.closed || len(p.warm) >= p.cfg.Capacity
		p.mu.Unlock()
		if full {
			return
		}
		iso, err := p.clone()
		if err != nil {
			// Likely transient (heap pressure from in-flight sessions);
			// CloneIsolate unwound the attempt, so retrying on the next
			// kick leaks nothing.
			p.cloneFailures.Add(1)
			time.AfterFunc(time.Millisecond, p.kick)
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			p.retire([]*core.Isolate{iso})
			return
		}
		p.warm = append(p.warm, iso)
		p.mu.Unlock()
	}
}

func (p *Pool) clone() (*core.Isolate, error) {
	iso, err := p.vm.CloneIsolate(p.snap, fmt.Sprintf("%s-%d", p.cfg.NamePrefix, p.seq.Add(1)))
	if err != nil {
		return nil, err
	}
	p.cloned.Add(1)
	return iso, nil
}

// retire runs the teardown pipeline over a batch: kill what is not yet
// killed, one amortized accounting collection to sweep the corpses and
// flip them to Disposed, then FreeIsolate each. Isolates that are not
// yet disposable (threads still unwinding) are returned for retry.
func (p *Pool) retire(batch []*core.Isolate) []*core.Isolate {
	if len(batch) == 0 {
		return nil
	}
	for _, iso := range batch {
		if !iso.Killed() {
			_ = p.vm.KillIsolate(nil, iso)
		}
	}
	p.vm.CollectGarbage(nil)
	var rest []*core.Isolate
	for _, iso := range batch {
		if !iso.Disposed() {
			rest = append(rest, iso)
			continue
		}
		if err := p.vm.FreeIsolate(iso); err != nil {
			rest = append(rest, iso)
			continue
		}
		p.recycled.Add(1)
	}
	return rest
}
