package serve_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/serve"
	"ijvm/internal/syslib"
)

// This is the clone-pool companion of TestSnapshotCaptureUnderLoad: 8
// session-churn goroutines hammer Acquire / spawn-serve / (sometimes
// kill) / Release — which is CloneIsolate and FreeIsolate churn on the
// refiller — while 4 compute shards keep the scheduler workers busy
// mutating statics, an admin goroutine layers on collection and
// interrupt storms plus a mid-run victim kill, and a weight-1 keeper
// holds the run open. World-lock and reservation-counter contention on
// the clone path is exactly where ROADMAP says the scaling bugs hide;
// this runs under -race in CI.
//
// Assertions: every serve observes a fresh warmed clone (count starts
// at the captured value), surviving compute shards produce the exact
// closed-form result, sessions recycled, and after teardown the pin
// table is empty and the reservation counter equals live bytes.

const (
	poolStressChurners = 8
	poolStressSessions = 30
	poolStressShards   = 4
	poolStressIters    = 5000
)

func poolStressComputeClasses(cn string) *classfile.Class {
	return classfile.NewClass(cn).
		StaticField("sum", classfile.KindInt).
		StaticField("slot", classfile.KindRef).
		Method("run", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop").ILoad(1).ILoad(0).IfICmpGe("done")
			a.GetStatic(cn, "sum").ILoad(1).IAdd().PutStatic(cn, "sum")
			// Ref static overwrite keeps the SATB barrier and the
			// pressure collector busy under the clone churn.
			a.Const(16).NewArray("").PutStatic(cn, "slot")
			a.IInc(1, 1).Goto("loop")
			a.Label("done").GetStatic(cn, "sum").IReturn()
		}).MustBuild()
}

func TestClonePoolConcurrentChurn(t *testing.T) {
	vm := interp.NewVM(interp.Options{Mode: core.ModeIsolated, HeapLimit: 16 << 20, MaxThreads: 512})
	syslib.MustInstall(vm)

	// Keeper first: Isolate0, weight 1, spin thread holds the run open.
	keeper, err := vm.NewIsolate("keeper")
	if err != nil {
		t.Fatal(err)
	}
	keeper.SetWeight(1)
	spin := classfile.NewClass("st/Keeper").
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(0)
			a.Label("loop").IInc(0, 1).Goto("loop")
		}).MustBuild()
	if err := keeper.Loader().Define(spin); err != nil {
		t.Fatal(err)
	}
	kc, _ := keeper.Loader().Lookup("st/Keeper")
	km, _ := kc.LookupMethod("attack", "()V")
	if _, err := vm.SpawnThread("keeper", keeper, km, nil); err != nil {
		t.Fatal(err)
	}

	// Warmed template + snapshot (count=6 at capture).
	tl := vm.Registry().NewLoader("st-template")
	if err := tl.DefineAll(poolClasses()); err != nil {
		t.Fatal(err)
	}
	wl := vm.Registry().NewLoader("st-warmer")
	warmer, err := vm.World().NewIsolate("st-warmer", wl)
	if err != nil {
		t.Fatal(err)
	}
	wl.AddDelegate(tl)
	app, _ := tl.Lookup(poolApp)
	serveM, _ := app.LookupMethod("serve", "(I)I")
	if _, th, err := vm.CallRoot(warmer, serveM, []heap.Value{heap.IntVal(1)}, 0); err != nil || th.Failure() != nil {
		t.Fatalf("warm-up: %v / %s", err, th.FailureString())
	}
	snap, err := vm.CaptureSnapshot(warmer, interp.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}

	pool, err := serve.NewPool(vm, snap, serve.Config{Capacity: poolStressChurners, NamePrefix: "st"})
	if err != nil {
		t.Fatal(err)
	}

	// Compute shards: exact closed-form results prove the churn never
	// perturbs unrelated tenants.
	var shardThreads []*interp.Thread
	var shards []*core.Isolate
	for k := 0; k < poolStressShards; k++ {
		iso, err := vm.NewIsolate(fmt.Sprintf("shard%d", k))
		if err != nil {
			t.Fatal(err)
		}
		cn := fmt.Sprintf("st/Compute%d", k)
		if err := iso.Loader().Define(poolStressComputeClasses(cn)); err != nil {
			t.Fatal(err)
		}
		c, _ := iso.Loader().Lookup(cn)
		m, _ := c.LookupMethod("run", "(I)I")
		th, err := vm.SpawnThread(fmt.Sprintf("compute%d", k), iso, m,
			[]heap.Value{heap.IntVal(poolStressIters)})
		if err != nil {
			t.Fatal(err)
		}
		shardThreads = append(shardThreads, th)
		shards = append(shards, iso)
	}
	victim := shards[1]

	resCh := make(chan interp.RunResult, 1)
	go func() {
		resCh <- sched.RunConfig(vm, sched.Config{Workers: 4, Policy: sched.PolicyProportional})
	}()
	for vm.TotalInstructions() == 0 {
		time.Sleep(50 * time.Microsecond)
	}

	// Admin storms: collections every round, interrupt storms every 3rd,
	// one victim kill.
	stop := make(chan struct{})
	var adminWG sync.WaitGroup
	adminWG.Add(1)
	go func() {
		defer adminWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vm.CollectGarbage(nil)
			if i == 5 {
				if err := vm.KillIsolate(nil, victim); err != nil {
					t.Errorf("kill victim: %v", err)
				}
			}
			if i%3 == 0 {
				for _, th := range shardThreads {
					_ = vm.InterruptThread(th)
				}
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	var churnWG sync.WaitGroup
	for g := 0; g < poolStressChurners; g++ {
		churnWG.Add(1)
		go func(g int) {
			defer churnWG.Done()
			for s := 0; s < poolStressSessions; s++ {
				var iso *core.Isolate
				for {
					got, err := pool.Acquire(nil)
					if err == nil {
						iso = got
						break
					}
					time.Sleep(100 * time.Microsecond)
				}
				arg := int64(g*poolStressSessions + s + 1)
				th, err := vm.SpawnThread(fmt.Sprintf("churn%d-%d", g, s), iso, serveM,
					[]heap.Value{heap.IntVal(arg)})
				if err != nil {
					t.Errorf("churn %d session %d spawn: %v", g, s, err)
					pool.Release(iso)
					continue
				}
				for !th.Done() {
					time.Sleep(20 * time.Microsecond)
				}
				if th.Failure() != nil || th.Err() != nil {
					t.Errorf("churn %d session %d: %v / %s", g, s, th.Err(), th.FailureString())
				} else if th.Result().I != 6+arg {
					t.Errorf("churn %d session %d: result %d, want %d (stale clone?)",
						g, s, th.Result().I, 6+arg)
				}
				if s%3 == 0 {
					// Exercise the caller-kills path; the pool must cope
					// with already-killed returns.
					if err := vm.KillIsolate(nil, iso); err != nil {
						t.Errorf("churn %d session %d kill: %v", g, s, err)
					}
				}
				pool.Release(iso)
			}
		}(g)
	}
	churnWG.Wait()

	// Let the surviving compute shards finish before tearing down.
	deadline := time.Now().Add(30 * time.Second)
	for _, th := range shardThreads {
		for !th.Done() && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(stop)
	adminWG.Wait()
	vm.Shutdown()
	res := <-resCh
	// The keeper spins forever by design, so the run always ends via
	// Shutdown preemption, never AllDone.
	if !res.Shutdown {
		t.Fatalf("run ended without shutdown: deadlocked=%v budget=%v", res.Deadlocked, res.BudgetExhausted)
	}

	want := int64(poolStressIters) * (poolStressIters - 1) / 2
	for k, th := range shardThreads {
		if k == 1 {
			continue // the victim may die mid-loop; both fates are legal
		}
		if th.Err() != nil {
			t.Fatalf("shard%d: host error %v", k, th.Err())
		}
		if th.Failure() != nil {
			t.Fatalf("shard%d: guest failure %v", k, th.FailureString())
		}
		if th.Result().I != want {
			t.Fatalf("shard%d: result %d, want %d", k, th.Result().I, want)
		}
	}

	st := pool.Stats()
	if st.Acquired != poolStressChurners*poolStressSessions {
		t.Fatalf("acquired %d, want %d", st.Acquired, poolStressChurners*poolStressSessions)
	}
	if st.Recycled == 0 || st.Cloned < poolStressChurners {
		t.Fatalf("pool never churned: %+v", st)
	}
	pool.Close()
	snap.Release()
	if pins := vm.Heap().SharedPins(); pins != 0 {
		t.Fatalf("%d shared pins leaked after teardown", pins)
	}
	final := vm.CollectGarbage(nil)
	if used := vm.Heap().Used(); used != final.LiveBytes {
		t.Fatalf("used %d != live %d after final collection", used, final.LiveBytes)
	}
	if vm.Heap().GCCount() == 0 {
		t.Fatal("expected collections during the run")
	}
}
