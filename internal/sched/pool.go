// Package sched implements the concurrent multi-isolate scheduler: it
// executes the threads of N isolates on a bounded pool of OS workers
// (goroutines), one isolate shard per worker at a time, with per-shard
// instruction budgets refilled by a proportional-share virtual-time run
// queue and a stop-the-world safepoint protocol for the accounting GC
// and the preemptive isolate kill path.
//
// # Execution model
//
// Every isolate of the world is a shard. A shard owns the green threads
// whose *current* isolate it is — the paper's thread-migration rule
// (§3.1) becomes the scheduling rule: when a thread's inter-isolate call
// (or return) changes its isolate reference, the thread is handed off to
// the target isolate's shard. One worker executes one shard at a time,
// so all isolate-keyed state (task class mirrors, statics,
// initialization, string-pool content) is only ever touched by the
// worker currently owning that isolate; cross-isolate state (accounts,
// kill flags, the heap, monitors) is synchronized in the lower layers —
// see internal/interp/README.md for the full locking discipline.
//
// # Budgets and proportional share
//
// A dispatch gives a shard a slice of sliceFactor×Quantum instructions,
// consumed by its runnable threads round-robin in Quantum-sized chunks.
// Under the default PolicyProportional the runnable shard with the
// lowest virtual time runs next: each shard's virtual time advances by
// consumed/Weight, so over any interval runnable shards receive CPU in
// proportion to their isolate weights (stride scheduling) and a
// flooding tenant can never push a competitor below its share. Waking
// shards are capped to the dispatch floor (zero lag) so sleeping earns
// no credit; priority aging and the interactive QoS class adjust
// ordering only — see README.md for the full model and the exact
// magnitude-invariance argument. PolicyRoundRobin keeps the original
// FIFO refill as a baseline. The global budget is a shared pool the
// workers draw quanta from.
//
// # Stop-the-world
//
// CollectGarbage and KillIsolate need the object graph and thread stacks
// quiescent. The pool implements interp.Safepointer: the requester (a
// worker that hit allocation pressure, or a host goroutine such as an
// admin watchdog) raises the stop flag, every worker parks at its next
// instruction boundary, the critical section runs alone, and the world
// resumes. Requests are reentrant per goroutine so a kill that triggers
// an allocation-pressure collection does not self-deadlock.
package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ijvm/internal/core"
	"ijvm/internal/interp"
)

// sliceFactor is how many scheduler quanta one shard dispatch may
// consume before the shard returns to the run queue.
const sliceFactor = 8

// vrtUnit is the virtual-time scale: a shard at core.DefaultWeight
// advances its virtual time by exactly one unit per instruction, so
// vrt = floor(consumed·vrtUnit/weight) stays exact under the
// remainder-carry division in advanceVrt.
const vrtUnit = core.DefaultWeight

// agingFactor sets the default aging threshold (in executed
// instructions, global clock) as a multiple of the slice length: a
// shard queued longer than this outranks class and virtual-time order
// (FIFO among aged shards), bounding worst-case queue delay even under
// pathological weight ratios.
const agingFactor = 64

// Policy selects the run-queue discipline.
type Policy uint8

const (
	// PolicyProportional (the default) dispatches the runnable shard
	// with the lowest virtual time; CPU is shared in proportion to
	// isolate weights.
	PolicyProportional Policy = iota
	// PolicyRoundRobin is the original FIFO refill: every runnable
	// shard gets one slice per cycle regardless of weight. Kept as the
	// baseline leg for the QoS/SLO benchmarks.
	PolicyRoundRobin
)

// Config parameterizes a concurrent run.
type Config struct {
	// Workers is the worker-goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
	// Budget bounds total executed instructions; <= 0 means unlimited.
	Budget int64
	// Target, when non-nil, ends the run as soon as it finishes.
	Target *interp.Thread
	// Policy selects the run-queue discipline (default
	// PolicyProportional).
	Policy Policy
	// Governor, when non-nil, is sampled at dispatch boundaries for
	// admission control and load shedding.
	Governor *Governor
	// AgingInstrs overrides the aging threshold (global executed
	// instructions a shard may wait queued before it outranks class and
	// virtual-time order); 0 selects agingFactor×slice.
	AgingInstrs int64
}

type shardState uint8

const (
	shardIdle shardState = iota
	shardQueued
	shardRunning
)

// shard is the scheduling unit: one isolate and the threads currently
// executing in it. threads is owned by the running worker during a
// slice and by pool.mu otherwise; inbox is always pool.mu-guarded and
// is merged at slice boundaries. The virtual-time fields (vrt, vrtRem,
// vtie) and the queue bookkeeping (queuedAt, intCounted, sliceStart)
// are pool.mu-guarded.
type shard struct {
	iso     *core.Isolate
	seq     int
	threads []*interp.Thread
	inbox   []*interp.Thread
	state   shardState
	rr      int
	instrs  int64

	// vrt is the shard's virtual time: exactly
	// floor(effectiveConsumed·vrtUnit/weight), maintained by
	// remainder-carry division (vrtRem is the running remainder). vtie
	// is the effective consumed-instruction total itself, used as the
	// tiebreak so that at equal weights the dispatch order is a pure
	// function of consumption and shard index — byte-identical across
	// weight magnitudes (see README.md).
	vrt    int64
	vrtRem int64
	vtie   int64
	// queuedAt is the global instruction clock at enqueue (aging).
	queuedAt int64
	// intCounted records that this queued shard is counted in
	// pool.intQueued (interactive preemption).
	intCounted bool
	// sliceStart is s.instrs at dispatch; the delta at slice end is the
	// consumption advancing vrt.
	sliceStart int64
}

// advanceVrt advances the shard's virtual time by n consumed
// instructions at weight w, carrying the division remainder so vrt
// remains the exact floor of the scaled total (no drift, no
// magnitude-dependent truncation ties).
func (s *shard) advanceVrt(n, w int64) {
	num := n*vrtUnit + s.vrtRem
	s.vrt += num / w
	s.vrtRem = num % w
	s.vtie += n
}

type endReason uint8

const (
	endNone endReason = iota
	endAllDone
	endBudget
	endDeadlock
	endShutdown
	endTarget
)

type pool struct {
	vm      *interp.VM
	quantum int64
	slice   int64
	limited bool
	policy  Policy
	gov     *Governor
	aging   int64
	// target, when non-nil, ends the run as soon as it finishes (the
	// concurrent counterpart of VM.RunUntil's per-thread target).
	target *interp.Thread

	budget atomic.Int64
	// stop is polled by workers at every instruction boundary; it rises
	// for stop-the-world pauses and for run termination.
	stop    atomic.Bool
	stwWant atomic.Bool
	// intQueued counts queued interactive shards; batch slices poll it
	// at quantum boundaries and yield early when it is nonzero.
	intQueued atomic.Int64

	mu     sync.Mutex
	cond   *sync.Cond
	shards map[*core.Isolate]*shard
	order  []*shard
	queue  []*shard
	alive  int
	idle   int
	parked int
	ended  bool
	reason endReason
	// vminVrt/vminRem/vminTie form the dispatch floor: the virtual-time
	// key of the most recently dispatched shard (monotone — dispatch
	// always picks the queue minimum and waking shards are capped up to
	// it). An idle shard re-entering the queue below the floor adopts
	// all three fields, so sleeping earns no virtual-time credit (zero
	// lag) and a waker cannot monopolize the CPU to catch up.
	vminVrt int64
	vminRem int64
	vminTie int64
	// nextWake is the earliest timed-sleep deadline among idle shards
	// (MaxInt64 when none): busy workers check it each dispatch so
	// sleepers wake as soon as the running shards advance the clock far
	// enough, without waiting for full quiescence.
	nextWake int64

	stwDepth int
	stwOwner int64

	goidMu  sync.RWMutex
	workers map[int64]bool

	instrs atomic.Int64
	wg     sync.WaitGroup
}

// Run executes every live thread of the VM on a pool of workers until
// all threads finish, the global instruction budget is exhausted, the
// platform shuts down, or no thread can ever run again. workers <= 0
// selects GOMAXPROCS; budget <= 0 means unlimited.
//
// Run must not race with the sequential engine (VM.Run / VM.RunUntil)
// or with a second Run on the same VM; host-side administration
// (snapshots, detection, KillIsolate, CollectGarbage) is safe to call
// concurrently from other goroutines while Run executes. A caller that
// launches Run on a separate goroutine must observe the run before
// administering it preemptively (e.g. wait for VM.TotalInstructions to
// advance): before Run installs its safepoint machinery the VM cannot
// stop workers it does not know about yet.
func Run(vm *interp.VM, workers int, budget int64) interp.RunResult {
	return RunConfig(vm, Config{Workers: workers, Budget: budget})
}

// RunUntil is Run, additionally stopping as soon as target finishes —
// the per-thread target parity with the sequential VM.RunUntil. Workers
// observe the target at every instruction boundary, so the run ends at
// the same precision as the sequential engine.
func RunUntil(vm *interp.VM, workers int, budget int64, target *interp.Thread) interp.RunResult {
	return RunConfig(vm, Config{Workers: workers, Budget: budget, Target: target})
}

// RunConfig is Run with the full QoS surface: scheduling policy,
// per-isolate weights (read from core.Isolate), aging, and an optional
// governor.
func RunConfig(vm *interp.VM, cfg Config) interp.RunResult {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{
		vm:      vm,
		quantum: int64(vm.Options().Quantum),
		limited: cfg.Budget > 0,
		policy:  cfg.Policy,
		gov:     cfg.Governor,
		target:  cfg.Target,
		shards:  make(map[*core.Isolate]*shard),
		workers: make(map[int64]bool),
	}
	p.slice = p.quantum * sliceFactor
	p.aging = cfg.AgingInstrs
	if p.aging <= 0 {
		p.aging = p.slice * agingFactor
	}
	p.nextWake = math.MaxInt64
	p.cond = sync.NewCond(&p.mu)
	if p.limited {
		p.budget.Store(cfg.Budget)
	} else {
		p.budget.Store(math.MaxInt64)
	}

	for _, iso := range vm.World().Isolates() {
		p.shardFor(iso)
	}
	for _, t := range vm.Threads() {
		if t.Done() {
			continue
		}
		s := p.shardFor(t.CurrentIsolate())
		s.threads = append(s.threads, t)
	}
	for _, s := range p.order {
		if len(s.threads) > 0 {
			p.enqueueLocked(s)
		}
	}

	// alive must be published before the safepointer: a host-initiated
	// stop-the-world arriving in the startup window must wait for the
	// (about-to-start) workers to park rather than observe an empty pool
	// and run unprotected.
	p.alive = workers
	vm.SetSchedHooks(p)
	vm.SetSafepointer(p)
	defer func() {
		vm.SetSchedHooks(nil)
		vm.SetSafepointer(nil)
	}()

	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	p.wg.Wait()

	return p.result()
}

// shardFor returns (creating if needed) the shard of iso. Callers during
// the run hold p.mu; the setup phase is single-goroutine.
func (p *pool) shardFor(iso *core.Isolate) *shard {
	if s, ok := p.shards[iso]; ok {
		return s
	}
	s := &shard{iso: iso, seq: len(p.order)}
	p.shards[iso] = s
	p.order = append(p.order, s)
	return s
}

func (p *pool) result() interp.RunResult {
	res := interp.RunResult{Instructions: p.instrs.Load()}
	switch p.reason {
	case endAllDone:
		res.AllDone = true
	case endBudget:
		res.BudgetExhausted = true
	case endDeadlock:
		res.Deadlocked = true
	case endShutdown:
		res.Shutdown = true
	case endTarget:
		res.TargetDone = true
	}
	for _, s := range p.order {
		remaining := 0
		for _, t := range append(s.threads, s.inbox...) {
			if !t.Done() {
				remaining++
			}
		}
		res.PerIsolate = append(res.PerIsolate, interp.IsolateRun{
			IsolateID:        int32(s.iso.ID()),
			Name:             s.iso.Name(),
			Instructions:     s.instrs,
			Killed:           s.iso.Killed(),
			ThreadsRemaining: remaining,
			Weight:           s.iso.Weight(),
		})
	}
	return res
}

// worker is one pool goroutine: it dispatches queued shards, parks for
// stop-the-world requests, and triggers quiescence handling when it is
// the last worker out of work.
func (p *pool) worker() {
	defer p.wg.Done()
	gid := goid()
	p.goidMu.Lock()
	p.workers[gid] = true
	p.goidMu.Unlock()
	defer func() {
		p.goidMu.Lock()
		delete(p.workers, gid)
		p.goidMu.Unlock()
	}()

	var sampler interp.SampleState
	defer p.vm.ReleaseWorkerState(&sampler)

	p.mu.Lock()
	for {
		if p.ended {
			p.alive--
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		if p.stwPendingLocked() {
			p.parked++
			p.cond.Broadcast()
			for p.stwPendingLocked() {
				p.cond.Wait()
			}
			p.parked--
			continue
		}
		if p.target != nil && p.target.Done() {
			p.endLocked(endTarget)
			continue
		}
		if p.limited && p.budget.Load() <= 0 {
			p.endLocked(endBudget)
			continue
		}
		if p.nextWake != math.MaxInt64 && p.vm.Clock() >= p.nextWake {
			p.requeueWakeableLocked()
			p.recomputeNextWakeLocked()
		}
		if s := p.dequeueLocked(); s != nil {
			p.mu.Unlock()
			end := p.runSlice(s, &sampler)
			// Governor sampling happens at the dispatch boundary with
			// p.mu released: an escalation to kill stops the world,
			// which must not be attempted while holding the pool lock.
			if p.gov != nil {
				p.gov.tick(p)
			}
			p.mu.Lock()
			p.finishSliceLocked(s)
			if end != endNone {
				p.endLocked(end)
			}
			continue
		}
		// No work. The last worker to go idle decides whether the run is
		// over, deadlocked, or just waiting for a virtual-clock jump.
		p.idle++
		if p.idle == p.alive && p.parked == 0 && p.stwDepth == 0 {
			p.quiesceLocked()
		}
		if len(p.queue) == 0 && !p.ended && !p.stwPendingLocked() {
			p.cond.Wait()
		}
		p.idle--
	}
}

func (p *pool) stwPendingLocked() bool { return p.stwDepth > 0 || p.stwWant.Load() }

// endLocked terminates the run; p.mu held.
func (p *pool) endLocked(r endReason) {
	if p.ended {
		return
	}
	p.ended = true
	p.reason = r
	p.stop.Store(true)
	p.cond.Broadcast()
}

// enqueueLocked transitions s to shardQueued: stamps the aging clock,
// applies the zero-lag wake cap (idle shards only — a shard requeued
// straight from running keeps its earned virtual-time deficit), and
// maintains the interactive-queued count. p.mu held; the caller has
// established that s is not already queued.
func (p *pool) enqueueLocked(s *shard) {
	if p.policy == PolicyProportional && s.state == shardIdle {
		if s.vrt < p.vminVrt || (s.vrt == p.vminVrt && s.vtie < p.vminTie) {
			s.vrt, s.vrtRem, s.vtie = p.vminVrt, p.vminRem, p.vminTie
		}
	}
	s.state = shardQueued
	s.queuedAt = p.instrs.Load()
	if s.iso.QoS() == core.QoSInteractive {
		s.intCounted = true
		p.intQueued.Add(1)
	}
	p.queue = append(p.queue, s)
}

// dequeueLocked removes and returns the next shard to dispatch (nil when
// the queue is empty), merging its inbox. PolicyRoundRobin pops the
// queue head (FIFO); PolicyProportional scans for the minimum-key shard
// (aged first, then interactive before batch, then lowest virtual time)
// and advances the dispatch floor to its key. p.mu held.
func (p *pool) dequeueLocked() *shard {
	if len(p.queue) == 0 {
		return nil
	}
	best := 0
	if p.policy == PolicyProportional {
		for i := 1; i < len(p.queue); i++ {
			if p.shardLessLocked(p.queue[i], p.queue[best]) {
				best = i
			}
		}
	}
	s := p.queue[best]
	copy(p.queue[best:], p.queue[best+1:])
	p.queue[len(p.queue)-1] = nil
	p.queue = p.queue[:len(p.queue)-1]
	if p.policy == PolicyProportional {
		if s.vrt > p.vminVrt || (s.vrt == p.vminVrt && s.vtie > p.vminTie) {
			p.vminVrt, p.vminRem, p.vminTie = s.vrt, s.vrtRem, s.vtie
		}
	}
	if s.intCounted {
		s.intCounted = false
		p.intQueued.Add(-1)
	}
	s.state = shardRunning
	s.sliceStart = s.instrs
	s.threads = append(s.threads, s.inbox...)
	s.inbox = nil
	return s
}

// agedLocked reports whether s has waited past the aging threshold.
func (p *pool) agedLocked(s *shard) bool {
	return p.instrs.Load()-s.queuedAt >= p.aging
}

// shardLessLocked is the proportional-share dispatch order: aged shards
// first (FIFO among themselves — bounded worst-case queue delay), then
// interactive before batch, then lowest virtual time with ties broken
// by effective consumption and shard index. At equal weights the whole
// key reduces to (consumption, index), which is what makes equal-weight
// runs byte-identical across weight magnitudes. p.mu held.
func (p *pool) shardLessLocked(a, b *shard) bool {
	aAged, bAged := p.agedLocked(a), p.agedLocked(b)
	if aAged != bAged {
		return aAged
	}
	if aAged {
		if a.queuedAt != b.queuedAt {
			return a.queuedAt < b.queuedAt
		}
	} else {
		aInt := a.iso.QoS() == core.QoSInteractive
		bInt := b.iso.QoS() == core.QoSInteractive
		if aInt != bInt {
			return aInt
		}
	}
	if a.vrt != b.vrt {
		return a.vrt < b.vrt
	}
	if a.vtie != b.vtie {
		return a.vtie < b.vtie
	}
	return a.seq < b.seq
}

// finishSliceLocked advances the shard's virtual time by what the slice
// consumed, merges its inbox and requeues or idles it; p.mu held.
func (p *pool) finishSliceLocked(s *shard) {
	if p.policy == PolicyProportional {
		if consumed := s.instrs - s.sliceStart; consumed > 0 {
			s.advanceVrt(consumed, s.iso.Weight())
		}
	}
	s.threads = append(s.threads, s.inbox...)
	s.inbox = nil
	// Compact finished threads.
	live := s.threads[:0]
	for _, t := range s.threads {
		if !t.Done() {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(s.threads); i++ {
		s.threads[i] = nil
	}
	s.threads = live
	// Re-poll promotability (not just the Runnable state) before idling:
	// a monitor release or thread finish that happened while this shard
	// was running was skipped by ThreadsChanged (the shard was not idle),
	// and this poll under p.mu is what closes that window — any later
	// event sees the shard idle and queues it through the hooks.
	runnable := false
	for _, t := range s.threads {
		if t.Waking() || p.vm.PromoteRunnable(t) {
			runnable = true
			break
		}
	}
	if runnable && !p.ended {
		p.enqueueLocked(s)
		p.cond.Broadcast()
	} else {
		s.state = shardIdle
		if w, ok := p.shardWakeDeadline(s); ok && w < p.nextWake {
			p.nextWake = w
		}
	}
}

// shardWakeDeadline returns the earliest timed-sleep deadline among the
// shard's threads. p.mu held (the shard is idle).
func (p *pool) shardWakeDeadline(s *shard) (int64, bool) {
	earliest := int64(math.MaxInt64)
	for _, t := range s.threads {
		if w, ok := p.vm.WakeDeadline(t); ok && w < earliest {
			earliest = w
		}
	}
	for _, t := range s.inbox {
		if w, ok := p.vm.WakeDeadline(t); ok && w < earliest {
			earliest = w
		}
	}
	if earliest == math.MaxInt64 {
		return 0, false
	}
	return earliest, true
}

// recomputeNextWakeLocked rebuilds nextWake from the still-idle shards.
func (p *pool) recomputeNextWakeLocked() {
	p.nextWake = math.MaxInt64
	for _, s := range p.order {
		if s.state != shardIdle {
			continue
		}
		if w, ok := p.shardWakeDeadline(s); ok && w < p.nextWake {
			p.nextWake = w
		}
	}
}

// runSlice executes one dispatch of shard s: its runnable threads in
// round-robin quantum chunks until the slice budget is consumed, the
// shard has nothing runnable, a queued interactive shard preempts a
// batch slice, or the stop flag rises. It returns the end reason the
// slice observed (endNone when the run continues).
func (p *pool) runSlice(s *shard, sampler *interp.SampleState) endReason {
	remaining := p.slice
	interactive := s.iso.QoS() == core.QoSInteractive
	for remaining > 0 && !p.stop.Load() {
		t := p.nextRunnable(s)
		if t == nil {
			return endNone
		}
		q := p.quantum
		if q > remaining {
			q = remaining
		}
		if p.limited {
			q = p.reserveBudget(q)
			if q == 0 {
				return endNone
			}
		}
		res := p.vm.RunThreadQuantum(t, s.iso, q, &p.stop, sampler, p.target)
		// Collector hook at the worker's quantum boundary: open a
		// background cycle on occupancy, contribute one mark stride to
		// the shared gray pool (stealing spilled work from other
		// shards), or run the short terminal phase. The quantum's
		// batched charges and barrier records were flushed by the
		// RunThreadQuantum epilogue, so a stop-the-world started here
		// observes exact state.
		p.vm.GCQuantum(sampler)
		if p.limited && res.Instructions < q {
			p.budget.Add(q - res.Instructions)
		}
		s.instrs += res.Instructions
		p.instrs.Add(res.Instructions)
		remaining -= res.Instructions
		if res.Instructions == 0 && !res.Migrated && !res.Stopped && !res.Shutdown && !res.TargetDone {
			// Defensive: a runnable thread that made no progress (should
			// not happen) must not spin the slice loop.
			remaining--
		}
		if res.Migrated {
			p.migrate(s, t)
		}
		if res.Shutdown {
			return endShutdown
		}
		if res.TargetDone || (p.target != nil && p.target.Done()) {
			return endTarget
		}
		// Interactive preemption: a batch slice yields at the quantum
		// boundary as soon as an interactive shard is waiting. The
		// shard requeues with its virtual time advanced only by what it
		// actually consumed, so the yield costs it nothing in share.
		if !interactive && p.policy == PolicyProportional && p.intQueued.Load() > 0 {
			return endNone
		}
	}
	return endNone
}

// reserveBudget atomically takes up to want instructions from the global
// budget, returning how many were granted.
func (p *pool) reserveBudget(want int64) int64 {
	for {
		rem := p.budget.Load()
		if rem <= 0 {
			return 0
		}
		take := want
		if take > rem {
			take = rem
		}
		if p.budget.CompareAndSwap(rem, rem-take) {
			return take
		}
	}
}

// nextRunnable returns the next runnable thread of s in round-robin
// order, compacting finished threads, or nil.
func (p *pool) nextRunnable(s *shard) *interp.Thread {
	n := len(s.threads)
	for scan := 0; scan < n; scan++ {
		s.rr++
		t := s.threads[s.rr%n]
		if t.Done() {
			continue
		}
		if p.vm.PromoteRunnable(t) {
			return t
		}
	}
	return nil
}

// migrate hands a thread whose current isolate changed to its new shard.
// The caller's worker owns s, so removing from s.threads is safe; the
// target shard only ever receives through its inbox.
func (p *pool) migrate(s *shard, t *interp.Thread) {
	for i, x := range s.threads {
		if x == t {
			s.threads = append(s.threads[:i], s.threads[i+1:]...)
			break
		}
	}
	if t.Done() {
		return
	}
	target := t.CurrentIsolate()
	p.mu.Lock()
	ns := p.shardFor(target)
	ns.inbox = append(ns.inbox, t)
	if ns.state == shardIdle {
		p.enqueueLocked(ns)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// quiesceLocked runs when every worker is idle and the queue is empty:
// promote parked threads, advance the virtual clock to the next wake
// deadline, or end the run (all done / deadlocked / shut down). p.mu
// held.
func (p *pool) quiesceLocked() {
	if p.target != nil && p.target.Done() {
		p.endLocked(endTarget)
		return
	}
	if p.vm.IsShutdown() {
		p.endLocked(endShutdown)
		return
	}
	if p.requeueWakeableLocked() {
		return
	}
	if p.vm.LiveThreads() == 0 {
		p.endLocked(endAllDone)
		return
	}
	// A cross-shard wake may be mid-staging (detached but the exception
	// still allocating): the ThreadUnparked hook will arrive; just wait.
	for _, s := range p.order {
		for _, t := range append(s.threads, s.inbox...) {
			if t.Waking() {
				return
			}
		}
	}
	if deadline, ok := p.vm.NextWakeDeadline(); ok {
		p.vm.AdvanceClockTo(deadline)
		if p.requeueWakeableLocked() {
			return
		}
	}
	p.endLocked(endDeadlock)
}

// requeueWakeableLocked queues every idle shard that has a promotable
// thread; it reports whether any shard was queued. p.mu held.
func (p *pool) requeueWakeableLocked() bool {
	any := false
	for _, s := range p.order {
		if s.state != shardIdle {
			continue
		}
		for _, t := range append(s.threads, s.inbox...) {
			if t.Done() {
				continue
			}
			if p.vm.PromoteRunnable(t) {
				p.enqueueLocked(s)
				any = true
				break
			}
		}
	}
	if any {
		p.cond.Broadcast()
	}
	return any
}

// --- interp.SchedHooks ---------------------------------------------------

// ThreadSpawned routes a new thread to its creator's shard. The spawn
// stamp is retaken here, under p.mu, so latency harnesses measure from
// the moment the scheduler became responsible for the thread.
func (p *pool) ThreadSpawned(t *interp.Thread) {
	p.mu.Lock()
	t.RestampSpawn(p.vm.Clock())
	s := p.shardFor(t.CurrentIsolate())
	s.inbox = append(s.inbox, t)
	if s.state == shardIdle {
		p.enqueueLocked(s)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ThreadUnparked queues the shard of a thread woken by notify/interrupt.
func (p *pool) ThreadUnparked(t *interp.Thread) {
	p.mu.Lock()
	s := p.shardFor(t.CurrentIsolate())
	if s.state == shardIdle {
		p.enqueueLocked(s)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ThreadsChanged re-queues every idle shard with live threads: a monitor
// was freed or a thread finished, so blocked/joining threads anywhere
// may be promotable now.
func (p *pool) ThreadsChanged() {
	p.mu.Lock()
	for _, s := range p.order {
		if s.state != shardIdle {
			continue
		}
		hasLive := false
		for _, t := range append(s.threads, s.inbox...) {
			if !t.Done() {
				hasLive = true
				break
			}
		}
		if hasLive {
			p.enqueueLocked(s)
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// --- interp.Safepointer --------------------------------------------------

// StopTheWorld parks every worker at an instruction boundary, runs fn
// alone, and resumes. Reentrant per goroutine; safe from workers (a
// worker counts itself as parked while it owns the stop) and from host
// goroutines.
func (p *pool) StopTheWorld(fn func()) {
	gid := goid()
	p.goidMu.RLock()
	isWorker := p.workers[gid]
	p.goidMu.RUnlock()

	p.mu.Lock()
	if p.stwDepth > 0 && p.stwOwner == gid {
		// Nested request from inside the critical section.
		p.mu.Unlock()
		fn()
		return
	}
	if isWorker {
		p.parked++
		p.cond.Broadcast()
	}
	for p.stwDepth > 0 {
		p.cond.Wait()
	}
	p.stwDepth = 1
	p.stwOwner = gid
	p.stwWant.Store(true)
	p.stop.Store(true)
	for p.alive-p.idle-p.parked > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()

	fn()

	p.mu.Lock()
	p.stwDepth = 0
	p.stwOwner = 0
	p.stwWant.Store(false)
	if !p.ended {
		p.stop.Store(false)
	}
	if isWorker {
		p.parked--
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
