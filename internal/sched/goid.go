package sched

import (
	"bytes"
	"runtime"
	"strconv"
)

// goid returns the runtime ID of the calling goroutine, parsed from the
// stack header ("goroutine N [running]:"). It is used only on the rare
// stop-the-world paths to decide whether the requester is a pool worker
// (which must count itself as parked) or a host goroutine, and to make
// stop-the-world reentrant per goroutine; the interpreter hot path never
// calls it.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}
