package sched_test

import (
	"fmt"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
	"ijvm/internal/syslib"
)

// spinClasses builds a class whose run(n) method burns n loop iterations
// and stores the count in a static, returning it.
func spinClasses(name string) *classfile.Class {
	return classfile.NewClass(name).
		StaticField("count", classfile.KindInt).
		Method("run", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(1).PutStatic(name, "count")
			a.GetStatic(name, "count").IReturn()
		}).MustBuild()
}

func newIsolatedVM(t testing.TB, opts interp.Options) *interp.VM {
	t.Helper()
	if opts.Mode == 0 {
		opts.Mode = core.ModeIsolated
	}
	vm := interp.NewVM(opts)
	syslib.MustInstall(vm)
	return vm
}

// TestConcurrentBasic runs independent compute threads in 8 isolates on
// 4 workers and checks every thread finishes with the right result.
func TestConcurrentBasic(t *testing.T) {
	vm := newIsolatedVM(t, interp.Options{})
	const n = 8
	var threads []*interp.Thread
	for i := 0; i < n; i++ {
		iso, err := vm.NewIsolate(fmt.Sprintf("iso%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cn := fmt.Sprintf("demo/Spin%d", i)
		if err := iso.Loader().Define(spinClasses(cn)); err != nil {
			t.Fatal(err)
		}
		c, _ := iso.Loader().Lookup(cn)
		m, _ := c.LookupMethod("run", "(I)I")
		th, err := vm.SpawnThread(fmt.Sprintf("spin%d", i), iso, m, []heap.Value{heap.IntVal(int64(10_000 + i))})
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	res := sched.Run(vm, 4, 0)
	if !res.AllDone {
		t.Fatalf("run did not finish: %+v", res)
	}
	for i, th := range threads {
		if !th.Done() {
			t.Fatalf("thread %d not done (%v)", i, th.State())
		}
		if th.Failure() != nil {
			t.Fatalf("thread %d failed: %s", i, th.FailureString())
		}
		if want := int64(10_000 + i); th.Result().I != want {
			t.Fatalf("thread %d = %d, want %d", i, th.Result().I, want)
		}
	}
	if len(res.PerIsolate) != n {
		t.Fatalf("PerIsolate has %d entries, want %d", len(res.PerIsolate), n)
	}
	var sum int64
	for _, ir := range res.PerIsolate {
		sum += ir.Instructions
	}
	if sum != res.Instructions || sum == 0 {
		t.Fatalf("per-isolate instructions sum %d != total %d", sum, res.Instructions)
	}
}

// TestConcurrentBudget checks the global budget stops the run.
func TestConcurrentBudget(t *testing.T) {
	vm := newIsolatedVM(t, interp.Options{})
	iso, _ := vm.NewIsolate("main")
	cn := "demo/SpinB"
	if err := iso.Loader().Define(spinClasses(cn)); err != nil {
		t.Fatal(err)
	}
	c, _ := iso.Loader().Lookup(cn)
	m, _ := c.LookupMethod("run", "(I)I")
	if _, err := vm.SpawnThread("spin", iso, m, []heap.Value{heap.IntVal(100_000_000)}); err != nil {
		t.Fatal(err)
	}
	res := sched.Run(vm, 2, 50_000)
	if !res.BudgetExhausted {
		t.Fatalf("expected budget exhaustion, got %+v", res)
	}
	if res.Instructions > 60_000 {
		t.Fatalf("executed %d instructions, budget was 50k", res.Instructions)
	}
}
