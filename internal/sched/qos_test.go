package sched_test

import (
	"fmt"
	"strings"
	"testing"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
)

// sleepSpinClasses builds run(n): spin n iterations, Thread.sleep(7),
// spin n more, return 2n — exercising the idle→queued wake path (and
// with it the zero-lag cap) in the middle of a computation.
func sleepSpinClasses(name string) *classfile.Class {
	return classfile.NewClass(name).
		Method("run", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1)
			a.Label("loop1")
			a.ILoad(1).ILoad(0).IfICmpGe("nap")
			a.IInc(1, 1).Goto("loop1")
			a.Label("nap")
			a.Const(7).InvokeStatic("java/lang/Thread", "sleep", "(I)V")
			a.Label("loop2")
			a.ILoad(1).ILoad(0).Const(2).IMul().IfICmpGe("done")
			a.IInc(1, 1).Goto("loop2")
			a.Label("done")
			a.ILoad(1).IReturn()
		}).MustBuild()
}

// pingClasses builds the migration callee: ping(x) = x + 1.
func pingClasses(name string) *classfile.Class {
	return classfile.NewClass(name).
		Method("ping", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.ILoad(0).Const(1).IAdd().IReturn()
		}).MustBuild()
}

// callerClasses builds call(n): sum of ping(i) for i in [0,n), invoked
// cross-isolate so the thread migrates on every call and return.
func callerClasses(name, pingName string) *classfile.Class {
	return classfile.NewClass(name).
		Method("call", "(I)I", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(0).IStore(1) // i
			a.Const(0).IStore(2) // acc
			a.Label("loop")
			a.ILoad(1).ILoad(0).IfICmpGe("done")
			a.ILoad(1).InvokeStatic(pingName, "ping", "(I)I").ILoad(2).IAdd().IStore(2)
			a.IInc(1, 1).Goto("loop")
			a.Label("done")
			a.ILoad(2).IReturn()
		}).MustBuild()
}

// runQoSFingerprint executes a fixed four-isolate program (plain spin,
// sleep+spin, cross-isolate call flood, interactive spin) on one worker
// with every isolate at the given weight (0 = leave the default) and
// returns a fingerprint of everything observable: thread results, the
// virtual clock, and the per-isolate instruction counts and accounts.
// The Weight field itself is deliberately excluded — it is the one
// thing that legitimately differs between runs.
func runQoSFingerprint(t *testing.T, weight int64) string {
	t.Helper()
	vm := newIsolatedVM(t, interp.Options{})

	names := []string{"alpha", "bravo", "charlie", "delta"}
	isos := make([]*core.Isolate, len(names))
	for i, n := range names {
		iso, err := vm.NewIsolate(n)
		if err != nil {
			t.Fatal(err)
		}
		isos[i] = iso
	}

	// alpha: plain spinner, also hosts the ping callee.
	if err := isos[0].Loader().Define(spinClasses("qos/Spin")); err != nil {
		t.Fatal(err)
	}
	if err := isos[0].Loader().Define(pingClasses("qos/Ping")); err != nil {
		t.Fatal(err)
	}
	// bravo: sleeps mid-computation.
	if err := isos[1].Loader().Define(sleepSpinClasses("qos/Nap")); err != nil {
		t.Fatal(err)
	}
	// charlie: migrates into alpha on every ping call.
	isos[2].Loader().AddDelegate(isos[0].Loader())
	if err := isos[2].Loader().Define(callerClasses("qos/Call", "qos/Ping")); err != nil {
		t.Fatal(err)
	}
	// delta: interactive-class spinner (ordering, not share, differs).
	if err := isos[3].Loader().Define(spinClasses("qos/SpinI")); err != nil {
		t.Fatal(err)
	}
	isos[3].SetQoS(core.QoSInteractive)

	if weight > 0 {
		for _, iso := range isos {
			iso.SetWeight(weight)
		}
	}

	spawn := func(iso *core.Isolate, cn, mn, desc string, arg int64) *interp.Thread {
		c, err := iso.Loader().Lookup(cn)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.LookupMethod(mn, desc)
		if err != nil {
			t.Fatal(err)
		}
		th, err := vm.SpawnThread(cn, iso, m, []heap.Value{heap.IntVal(arg)})
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	threads := []*interp.Thread{
		spawn(isos[0], "qos/Spin", "run", "(I)I", 12_000),
		spawn(isos[1], "qos/Nap", "run", "(I)I", 400),
		spawn(isos[2], "qos/Call", "call", "(I)I", 600),
		spawn(isos[3], "qos/SpinI", "run", "(I)I", 8_000),
	}

	res := sched.RunConfig(vm, sched.Config{Workers: 1})
	if !res.AllDone {
		t.Fatalf("run did not finish: %+v", res)
	}

	var b strings.Builder
	for i, th := range threads {
		if th.Failure() != nil {
			t.Fatalf("thread %d failed: %s", i, th.FailureString())
		}
		fmt.Fprintf(&b, "thread %d = %d\n", i, th.Result().I)
	}
	fmt.Fprintf(&b, "instructions = %d clock = %d\n", res.Instructions, vm.Clock())
	for _, ir := range res.PerIsolate {
		fmt.Fprintf(&b, "iso %s: instrs=%d killed=%v remaining=%d\n",
			ir.Name, ir.Instructions, ir.Killed, ir.ThreadsRemaining)
	}
	for _, iso := range isos {
		fmt.Fprintf(&b, "account %s: %+v\n", iso.Name(), iso.Account().Numbers())
	}
	return b.String()
}

// TestEqualWeightsMagnitudeInvariance is the differential oracle for the
// proportional-share queue: when every isolate has the same weight, the
// absolute magnitude of that weight must not change anything observable
// — dispatch order, interleaving, per-isolate instruction counts and
// accounts are byte-identical whether the common weight is the default,
// 17, 1000, or 4096. This pins the remainder-carry virtual-time
// arithmetic (no magnitude-dependent truncation ties) and the zero-lag
// wake cap (the floor's remainder travels with its quotient).
func TestEqualWeightsMagnitudeInvariance(t *testing.T) {
	base := runQoSFingerprint(t, 0)
	if again := runQoSFingerprint(t, 0); again != base {
		t.Fatalf("single-worker run is not deterministic:\n--- first\n%s--- second\n%s", base, again)
	}
	for _, w := range []int64{17, 1000, 1 << 12} {
		if fp := runQoSFingerprint(t, w); fp != base {
			t.Errorf("weight %d diverges from default weight:\n--- default\n%s--- weight %d\n%s", w, base, w, fp)
		}
	}
}

// twoSpinnerRun races two endless spinners with the given weights and
// policy under a bounded budget and returns their instruction counts.
func twoSpinnerRun(t *testing.T, policy sched.Policy, wHeavy, wLight int64) (heavy, light int64) {
	t.Helper()
	vm := newIsolatedVM(t, interp.Options{})
	mk := func(name, cn string, w int64) {
		iso, err := vm.NewIsolate(name)
		if err != nil {
			t.Fatal(err)
		}
		iso.SetWeight(w)
		if err := iso.Loader().Define(spinClasses(cn)); err != nil {
			t.Fatal(err)
		}
		c, _ := iso.Loader().Lookup(cn)
		m, _ := c.LookupMethod("run", "(I)I")
		if _, err := vm.SpawnThread(name, iso, m, []heap.Value{heap.IntVal(1 << 30)}); err != nil {
			t.Fatal(err)
		}
	}
	mk("heavy", "qos/Heavy", wHeavy)
	mk("light", "qos/Light", wLight)
	res := sched.RunConfig(vm, sched.Config{Workers: 1, Budget: 400_000, Policy: policy})
	if !res.BudgetExhausted {
		t.Fatalf("expected budget exhaustion, got %+v", res)
	}
	for _, ir := range res.PerIsolate {
		switch ir.Name {
		case "heavy":
			heavy = ir.Instructions
		case "light":
			light = ir.Instructions
		}
	}
	return heavy, light
}

// TestWeightedShareRatio checks stride scheduling delivers CPU in
// proportion to weights: a 4:1 weight ratio yields roughly a 4:1
// instruction ratio over a bounded run, and the light isolate still
// runs (no starvation).
func TestWeightedShareRatio(t *testing.T) {
	heavy, light := twoSpinnerRun(t, sched.PolicyProportional, 400, 100)
	if light <= 0 || heavy <= 0 {
		t.Fatalf("an isolate starved: heavy=%d light=%d", heavy, light)
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("instruction ratio %.2f (heavy=%d light=%d), want ~4 for weights 400:100",
			ratio, heavy, light)
	}
}

// TestRoundRobinIgnoresWeights pins the baseline leg: under
// PolicyRoundRobin the same 4:1 weights split CPU roughly evenly.
func TestRoundRobinIgnoresWeights(t *testing.T) {
	heavy, light := twoSpinnerRun(t, sched.PolicyRoundRobin, 400, 100)
	if light <= 0 || heavy <= 0 {
		t.Fatalf("an isolate starved: heavy=%d light=%d", heavy, light)
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("round-robin instruction ratio %.2f (heavy=%d light=%d), want ~1", ratio, heavy, light)
	}
}

// allocFloodTestClasses builds flood(): an endless loop allocating and
// dropping Object[64] arrays.
func allocFloodTestClasses(name string) *classfile.Class {
	return classfile.NewClass(name).
		Method("flood", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Label("loop")
			a.Const(64).NewArray(classfile.ObjectClassName).Pop()
			a.Goto("loop")
		}).MustBuild()
}

// TestGovernorEscalatesAllocFlood drives the full escalation ladder: an
// allocation flood must be deprioritized, then throttled, then killed
// (in that order — the ladder is monotone by construction), while a
// well-behaved spinner beside it completes with the right result.
func TestGovernorEscalatesAllocFlood(t *testing.T) {
	vm := newIsolatedVM(t, interp.Options{})

	// The first isolate is Isolate0 (the OSGi runtime): exempt from
	// governance and the governor's killer credential. Create it first
	// so the flood is an ordinary, governable tenant.
	if _, err := vm.NewIsolate("runtime"); err != nil {
		t.Fatal(err)
	}

	flood, err := vm.NewIsolate("flood")
	if err != nil {
		t.Fatal(err)
	}
	if err := flood.Loader().Define(allocFloodTestClasses("qos/Flood")); err != nil {
		t.Fatal(err)
	}
	fc, _ := flood.Loader().Lookup("qos/Flood")
	fm, _ := fc.LookupMethod("flood", "()V")
	if _, err := vm.SpawnThread("flood", flood, fm, nil); err != nil {
		t.Fatal(err)
	}

	mate, err := vm.NewIsolate("mate")
	if err != nil {
		t.Fatal(err)
	}
	if err := mate.Loader().Define(spinClasses("qos/Mate")); err != nil {
		t.Fatal(err)
	}
	mc, _ := mate.Loader().Lookup("qos/Mate")
	mm, _ := mc.LookupMethod("run", "(I)I")
	mateTh, err := vm.SpawnThread("mate", mate, mm, []heap.Value{heap.IntVal(200_000)})
	if err != nil {
		t.Fatal(err)
	}

	gov := sched.NewGovernor(sched.GovernorConfig{
		WindowInstrs: 4096,
		// 4x the per-window threshold is alloc-hot regardless of heap
		// pressure; the flood clears 16 KiB per window trivially.
		AllocBytesPerWindow: 4 << 10,
		HeapHighPct:         99,
		DeprioritizeAfter:   1,
		ThrottleAfter:       2,
		KillAfter:           4,
	})
	res := sched.RunConfig(vm, sched.Config{Workers: 2, Budget: 3_000_000, Governor: gov})

	if !flood.Killed() {
		t.Fatalf("flood isolate survived: %+v, governor %+v", res, gov.Stats())
	}
	if got := gov.StageOf(flood); got != sched.StageKilled {
		t.Fatalf("flood stage = %v, want killed", got)
	}
	st := gov.Stats()
	if st.Deprioritizations < 1 || st.Throttles < 1 || st.Kills != 1 {
		t.Fatalf("escalation ladder skipped a rung: %+v", st)
	}
	if !mateTh.Done() || mateTh.Failure() != nil || mateTh.Result().I != 200_000 {
		t.Fatalf("bystander damaged: done=%v failure=%v result=%d",
			mateTh.Done(), mateTh.Failure(), mateTh.Result().I)
	}
	if gov.StageOf(mate) != sched.StageNormal {
		t.Fatalf("bystander escalated to %v", gov.StageOf(mate))
	}
}
