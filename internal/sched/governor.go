package sched

import (
	"sync"
	"sync/atomic"

	"ijvm/internal/core"
	"ijvm/internal/interp"
)

// Stage is an isolate's position on the governor's escalation ladder.
type Stage uint8

const (
	// StageNormal: no intervention.
	StageNormal Stage = iota
	// StageDeprioritized: the isolate's weight is divided so it keeps
	// running but at a fraction of its share.
	StageDeprioritized
	// StageThrottled: additionally, new thread spawns and new RPC
	// submissions by the isolate are refused (core.ErrThrottled).
	StageThrottled
	// StageKilled: the isolate was terminated through the §3.3 kill
	// path (sustained critical allocation pressure only).
	StageKilled
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageDeprioritized:
		return "deprioritized"
	case StageThrottled:
		return "throttled"
	case StageKilled:
		return "killed"
	default:
		return "normal"
	}
}

// GovernorConfig tunes the admission controller. Zero values select the
// documented defaults.
type GovernorConfig struct {
	// WindowInstrs is the sampling window in globally executed
	// instructions (default 65536). The governor observes per-isolate
	// burn-rate deltas over one window at dispatch boundaries.
	WindowInstrs int64
	// CPUFactor marks an isolate CPU-hot when its window share exceeds
	// CPUFactor times the fair share of the active isolates
	// (delta·activeN > total·CPUFactor; default 3). A latency-sensitive
	// tenant legitimately bursts past this in the single window its
	// request runs in — CPU hotness only escalates when it persists for
	// DeprioritizeAfter consecutive windows, which bursty interactive
	// work never sustains but a dominance attacker must.
	CPUFactor int64
	// HeapHighPct is the heap-pressure gate (percent of the limit,
	// default 85): allocation burn only escalates toward kill while the
	// heap is past it.
	HeapHighPct int64
	// AllocBytesPerWindow marks an isolate alloc-hot when it allocates
	// at least this many bytes in one window under heap pressure
	// (default 1 MiB); 4x this is alloc-hot regardless of pressure.
	AllocBytesPerWindow int64
	// SleepersMax marks an isolate hot when its sleeping-thread gauge
	// exceeds this (monitor/sleep hogs, attack A7; default 16).
	SleepersMax int64
	// SaturationsPerWindow marks an isolate hot when it drives at least
	// this many saturated RPC submissions in one window (default 64).
	SaturationsPerWindow int64
	// DeprioritizeAfter / ThrottleAfter are the consecutive-hot-window
	// counts that trigger each stage (defaults 2 and 3 — a single hot
	// window is indistinguishable from an interactive tenant's request
	// burst, so one window never escalates by default). KillAfter is
	// the consecutive-critical-window count (alloc-hot under heap
	// pressure) that triggers termination (default 6) — CPU, sleeper
	// and RPC abuse cap at throttling, so in steady state offenders are
	// throttled, never killed, unless they endanger the heap itself.
	DeprioritizeAfter int
	ThrottleAfter     int
	KillAfter         int
	// CalmAfter is the consecutive-calm-window count that resets an
	// isolate to normal, restoring its weight and admission (default 4).
	CalmAfter int
	// DeprioritizeDivisor divides the offender's weight while
	// deprioritized (default 8).
	DeprioritizeDivisor int64
	// Exempt, when non-nil, excludes isolates from governance (Isolate0
	// is always exempt).
	Exempt func(*core.Isolate) bool
}

func (c *GovernorConfig) fill() {
	if c.WindowInstrs <= 0 {
		c.WindowInstrs = 65536
	}
	if c.CPUFactor <= 0 {
		c.CPUFactor = 3
	}
	if c.HeapHighPct <= 0 {
		c.HeapHighPct = 85
	}
	if c.AllocBytesPerWindow <= 0 {
		c.AllocBytesPerWindow = 1 << 20
	}
	if c.SleepersMax <= 0 {
		c.SleepersMax = 16
	}
	if c.SaturationsPerWindow <= 0 {
		c.SaturationsPerWindow = 64
	}
	if c.DeprioritizeAfter <= 0 {
		c.DeprioritizeAfter = 2
	}
	if c.ThrottleAfter <= 0 {
		c.ThrottleAfter = 3
	}
	if c.KillAfter <= 0 {
		c.KillAfter = 6
	}
	if c.CalmAfter <= 0 {
		c.CalmAfter = 4
	}
	if c.DeprioritizeDivisor <= 1 {
		c.DeprioritizeDivisor = 8
	}
}

// GovernorStats is a point-in-time copy of the governor's counters.
type GovernorStats struct {
	// Ticks counts completed sampling windows.
	Ticks int64
	// Deprioritizations, Throttles and Kills count stage escalations
	// (each isolate counts once per episode, not per window).
	Deprioritizations int64
	Throttles         int64
	Kills             int64
	// Restores counts isolates returned to normal after calming down.
	Restores int64
}

// govEntry is the governor's per-isolate state. Guarded by Governor.mu.
type govEntry struct {
	primed         bool
	lastInstr      int64
	lastAllocBytes int64
	lastSat        int64
	hotStreak      int
	calmStreak     int
	criticalStreak int
	stage          Stage
	baseWeight     int64
}

// A Governor watches per-isolate burn rates (CPU share, allocation
// rate, sleeping-thread gauges, RPC saturation counts) together with
// global heap pressure and responds in escalating stages: deprioritize
// (weight division) → throttle (refuse new spawns and RPC admissions,
// core.ErrThrottled) → kill (the §3.3 termination path, reserved for
// sustained allocation pressure that endangers the shared heap). All
// interventions reverse except kill: an offender that calms down gets
// its weight and admission back.
//
// The scheduler samples the governor at dispatch boundaries (outside
// the pool lock — the kill path stops the world). A Governor is
// single-VM, single-run state; create a fresh one per RunConfig call.
type Governor struct {
	cfg    GovernorConfig
	nextAt atomic.Int64

	mu      sync.Mutex
	entries map[*core.Isolate]*govEntry

	ticks         atomic.Int64
	deprioritized atomic.Int64
	throttled     atomic.Int64
	kills         atomic.Int64
	restores      atomic.Int64
}

// NewGovernor creates a governor with cfg (zero fields take defaults).
func NewGovernor(cfg GovernorConfig) *Governor {
	cfg.fill()
	return &Governor{cfg: cfg, entries: make(map[*core.Isolate]*govEntry)}
}

// Stats returns a copy of the governor's counters.
func (g *Governor) Stats() GovernorStats {
	return GovernorStats{
		Ticks:             g.ticks.Load(),
		Deprioritizations: g.deprioritized.Load(),
		Throttles:         g.throttled.Load(),
		Kills:             g.kills.Load(),
		Restores:          g.restores.Load(),
	}
}

// StageOf returns iso's current escalation stage.
func (g *Governor) StageOf(iso *core.Isolate) Stage {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.entries[iso]; ok {
		return e.stage
	}
	return StageNormal
}

// tick samples the world if a full window has elapsed since the last
// sample. Called by pool workers at dispatch boundaries with p.mu NOT
// held (escalation to kill stops the world). The CAS on nextAt elects
// one worker per window; g.mu then serializes the sample itself.
func (g *Governor) tick(p *pool) {
	now := p.instrs.Load()
	next := g.nextAt.Load()
	if now < next || !g.nextAt.CompareAndSwap(next, now+g.cfg.WindowInstrs) {
		return
	}
	g.mu.Lock()
	kills := g.sampleLocked(p.vm)
	g.mu.Unlock()
	g.ticks.Add(1)
	// Kills run outside g.mu: the stop-the-world pause can wait on
	// workers that are themselves about to call tick.
	for _, iso := range kills {
		if err := p.vm.KillIsolate(p.vm.World().Isolate0(), iso); err == nil {
			g.kills.Add(1)
		}
	}
}

// sampleLocked reads one window of per-isolate deltas, updates streaks
// and applies reversible interventions; it returns the isolates whose
// critical streak crossed the kill threshold (the caller terminates
// them outside g.mu). g.mu held.
func (g *Governor) sampleLocked(vm *interp.VM) []*core.Isolate {
	isolates := vm.World().Isolates()
	pressure := vm.Heap().PressurePercent()

	type sample struct {
		iso        *core.Isolate
		e          *govEntry
		instrDelta int64
		allocDelta int64
		satDelta   int64
	}
	samples := make([]sample, 0, len(isolates))
	var totalDelta int64
	var activeN int64
	for _, iso := range isolates {
		if iso.IsIsolate0() || iso.Killed() {
			continue
		}
		if g.cfg.Exempt != nil && g.cfg.Exempt(iso) {
			continue
		}
		e, ok := g.entries[iso]
		if !ok {
			e = &govEntry{}
			g.entries[iso] = e
		}
		instr := iso.Account().Instructions.Load()
		alloc := vm.Heap().CountersFor(iso.ID()).Bytes.Load()
		sat := iso.Account().RPCSaturated.Load()
		if !e.primed {
			e.primed = true
			e.lastInstr, e.lastAllocBytes, e.lastSat = instr, alloc, sat
			continue
		}
		s := sample{
			iso:        iso,
			e:          e,
			instrDelta: instr - e.lastInstr,
			allocDelta: alloc - e.lastAllocBytes,
			satDelta:   sat - e.lastSat,
		}
		e.lastInstr, e.lastAllocBytes, e.lastSat = instr, alloc, sat
		totalDelta += s.instrDelta
		if s.instrDelta > 0 {
			activeN++
		}
		samples = append(samples, s)
	}

	var kills []*core.Isolate
	for _, s := range samples {
		e := s.iso.Account()
		critical := (s.allocDelta >= g.cfg.AllocBytesPerWindow && pressure >= g.cfg.HeapHighPct) ||
			s.allocDelta >= 4*g.cfg.AllocBytesPerWindow
		cpuHot := activeN > 1 && s.instrDelta*activeN > totalDelta*g.cfg.CPUFactor
		sleeperHot := e.SleepingThreads.Load() > g.cfg.SleepersMax
		satHot := s.satDelta >= g.cfg.SaturationsPerWindow
		hot := critical || cpuHot || sleeperHot || satHot
		if g.applyLocked(s.iso, s.e, hot, critical) {
			kills = append(kills, s.iso)
		}
	}
	return kills
}

// applyLocked updates one isolate's streaks and stage; it reports
// whether the isolate should be killed. g.mu held.
func (g *Governor) applyLocked(iso *core.Isolate, e *govEntry, hot, critical bool) bool {
	if e.stage == StageKilled {
		return false
	}
	if critical {
		e.criticalStreak++
	} else {
		e.criticalStreak = 0
	}
	if hot {
		e.hotStreak++
		e.calmStreak = 0
	} else {
		e.hotStreak = 0
		e.calmStreak++
		if e.stage != StageNormal && e.calmStreak >= g.cfg.CalmAfter {
			iso.SetThrottled(false)
			if e.baseWeight > 0 {
				iso.SetWeight(e.baseWeight)
			}
			e.stage = StageNormal
			e.baseWeight = 0
			g.restores.Add(1)
		}
		return false
	}
	if e.stage < StageDeprioritized && e.hotStreak >= g.cfg.DeprioritizeAfter {
		e.baseWeight = iso.Weight()
		w := e.baseWeight / g.cfg.DeprioritizeDivisor
		if w < 1 {
			w = 1
		}
		iso.SetWeight(w)
		e.stage = StageDeprioritized
		g.deprioritized.Add(1)
	}
	if e.stage < StageThrottled && e.hotStreak >= g.cfg.ThrottleAfter {
		iso.SetThrottled(true)
		e.stage = StageThrottled
		g.throttled.Add(1)
	}
	if e.criticalStreak >= g.cfg.KillAfter {
		e.stage = StageKilled
		return true
	}
	return false
}
