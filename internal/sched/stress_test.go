package sched_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ijvm/internal/bytecode"
	"ijvm/internal/classfile"
	"ijvm/internal/core"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
	"ijvm/internal/sched"
)

// allocLoopClass builds a bundle workload that allocates continuously:
// every iteration allocates a 64-slot array and parks it in a 32-entry
// static ring (so some memory stays live and the rest becomes garbage,
// forcing accounting collections under a small heap). It catches
// OutOfMemoryError so allocation pressure slows it down rather than
// killing it; only isolate termination stops it.
func allocLoopClass(name string) *classfile.Class {
	return classfile.NewClass(name).
		StaticField("ring", classfile.KindRef).
		StaticField("i", classfile.KindInt).
		Method("attack", "()V", classfile.FlagStatic|classfile.FlagPublic, func(a *bytecode.Assembler) {
			a.Const(32).NewArray("").PutStatic(name, "ring")
			a.Label("loop")
			a.Label("try")
			a.GetStatic(name, "ring").
				GetStatic(name, "i").Const(32).IRem().
				Const(64).NewArray("").
				ArrayStore()
			a.Label("endtry")
			a.Goto("cont")
			a.Label("oom")
			a.Pop()
			a.Label("cont")
			a.GetStatic(name, "i").Const(1).IAdd().PutStatic(name, "i")
			a.Goto("loop")
			a.Handler("try", "endtry", "oom", "java/lang/OutOfMemoryError")
		}).MustBuild()
}

// TestConcurrentStressKillsUnderRace spawns 8 bundle isolates that
// allocate as fast as they can from a small shared heap while a
// concurrent admin goroutine kills them one by one mid-run — half the
// kills issued by Isolate0 (the rights-checked guest-kill path), half as
// host administrative kills — interleaved with accounting collections
// and snapshot reads. The run must terminate with every bundle killed,
// every thread dead, and (under -race) no data race anywhere in the
// heap, accounting, mirror, or termination machinery.
func TestConcurrentStressKillsUnderRace(t *testing.T) {
	const bundles = 8
	vm := newIsolatedVM(t, interp.Options{HeapLimit: 8 << 20})

	runtimeIso, err := vm.NewIsolate("runtime") // Isolate0, holds kill rights
	if err != nil {
		t.Fatal(err)
	}

	var isos []*core.Isolate
	var threads []*interp.Thread
	for i := 0; i < bundles; i++ {
		iso, err := vm.NewIsolate(fmt.Sprintf("bundle%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cn := fmt.Sprintf("stress/Alloc%d", i)
		if err := iso.Loader().Define(allocLoopClass(cn)); err != nil {
			t.Fatal(err)
		}
		c, _ := iso.Loader().Lookup(cn)
		m, _ := c.LookupMethod("attack", "()V")
		th, err := vm.SpawnThread(fmt.Sprintf("alloc%d", i), iso, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		isos = append(isos, iso)
		threads = append(threads, th)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var res interp.RunResult
	go func() {
		defer wg.Done()
		res = sched.Run(vm, 4, 0) // unlimited budget: only the kills end it
	}()

	// Administer only a run we have observed (the safepoint machinery is
	// in place once instructions flow).
	for vm.TotalInstructions() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Admin goroutine: kill every bundle mid-run, alternating between the
	// Isolate0-initiated path (rights check) and the host path, with
	// collections and snapshot reads mixed in — all racing the workers.
	for i, iso := range isos {
		time.Sleep(2 * time.Millisecond)
		killer := runtimeIso
		if i%2 == 1 {
			killer = nil
		}
		if err := vm.KillIsolate(killer, iso); err != nil {
			t.Errorf("kill %s: %v", iso.Name(), err)
		}
		if i%3 == 0 {
			vm.CollectGarbage(nil)
		}
		_ = vm.Snapshots()
	}
	wg.Wait()

	if !res.AllDone {
		t.Fatalf("run did not drain after all kills: %+v", res)
	}
	for i, th := range threads {
		if !th.Done() {
			t.Errorf("thread %d still %v after its isolate was killed", i, th.State())
		}
	}
	for _, iso := range isos {
		if !iso.Killed() {
			t.Errorf("isolate %s not killed", iso.Name())
		}
	}
	if len(res.PerIsolate) != bundles+1 {
		t.Fatalf("PerIsolate has %d entries, want %d", len(res.PerIsolate), bundles+1)
	}
	for _, ir := range res.PerIsolate {
		if ir.Name == "runtime" {
			continue
		}
		if !ir.Killed {
			t.Errorf("per-isolate result for %s not marked killed", ir.Name)
		}
		if ir.ThreadsRemaining != 0 {
			t.Errorf("%s still has %d threads", ir.Name, ir.ThreadsRemaining)
		}
	}

	// After the kills and a final collection, the bundles' retained rings
	// are unreachable and the heap drains.
	before := vm.Heap().Used()
	vm.CollectGarbage(nil)
	after := vm.Heap().Used()
	if after > before {
		t.Errorf("heap grew across the post-kill collection: %d -> %d", before, after)
	}
	for _, iso := range isos {
		if live := vm.Heap().LiveStatsFor(iso.ID()).Bytes; live != 0 {
			t.Errorf("killed isolate %s still charged %d live bytes", iso.Name(), live)
		}
	}
}

// TestSequentialDeterminism asserts the sequential engine's results are
// bit-for-bit reproducible — the concurrency refactor (atomics, locks,
// batching) must not have perturbed cooperative scheduling. Two fresh
// VMs run an identical multi-isolate workload and must agree on the
// instruction count, the virtual clock, every thread result, and every
// per-isolate counter.
func TestSequentialDeterminism(t *testing.T) {
	type outcome struct {
		instrs  int64
		clock   int64
		results []int64
		snaps   []string
	}
	runOnce := func() outcome {
		vm := newIsolatedVM(t, interp.Options{})
		var threads []*interp.Thread
		for i := 0; i < 4; i++ {
			iso, err := vm.NewIsolate(fmt.Sprintf("iso%d", i))
			if err != nil {
				t.Fatal(err)
			}
			cn := fmt.Sprintf("det/Spin%d", i)
			if err := iso.Loader().Define(spinClasses(cn)); err != nil {
				t.Fatal(err)
			}
			c, _ := iso.Loader().Lookup(cn)
			m, _ := c.LookupMethod("run", "(I)I")
			th, err := vm.SpawnThread(fmt.Sprintf("spin%d", i), iso, m,
				[]heap.Value{heap.IntVal(int64(5_000 + i*97))})
			if err != nil {
				t.Fatal(err)
			}
			threads = append(threads, th)
		}
		res := vm.Run(0)
		if !res.AllDone {
			t.Fatalf("sequential run did not finish: %+v", res)
		}
		out := outcome{instrs: res.Instructions, clock: vm.Clock()}
		for _, th := range threads {
			out.results = append(out.results, th.Result().I)
		}
		for _, s := range vm.Snapshots() {
			out.snaps = append(out.snaps, fmt.Sprintf("%s:%d:%d:%d",
				s.IsolateName, s.Instructions, s.CPUSamples, s.AllocatedBytes))
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if a.instrs != b.instrs || a.clock != b.clock {
		t.Fatalf("instruction/clock counts diverged: %+v vs %+v", a, b)
	}
	if fmt.Sprint(a.results) != fmt.Sprint(b.results) {
		t.Fatalf("thread results diverged: %v vs %v", a.results, b.results)
	}
	if fmt.Sprint(a.snaps) != fmt.Sprint(b.snaps) {
		t.Fatalf("per-isolate accounting diverged:\n%v\n%v", a.snaps, b.snaps)
	}
}
