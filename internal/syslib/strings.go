package syslib

import (
	"fmt"
	"strconv"
	"strings"

	"ijvm/internal/classfile"
	"ijvm/internal/heap"
	"ijvm/internal/interp"
)

// stringOf extracts the native payload of a guest string.
func stringOf(v heap.Value) (string, bool) {
	if v.R == nil {
		return "", false
	}
	return v.R.StringValue()
}

// stringClass builds java/lang/String. In I-JVM mode strings are interned
// per isolate, so reference equality (==, if_acmpeq) does not hold across
// bundles (§3.5); equals compares content and works everywhere.
func stringClass() *classfile.Class {
	b := classfile.NewClass(interp.ClassString)
	pub := classfile.FlagPublic
	b.NativeMethod("length", "()I", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(recv)
			return interp.NativeReturn(heap.IntVal(int64(len(s))))
		}))
	b.NativeMethod("charAt", "(I)I", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(recv)
			i := args[0].I
			if i < 0 || i >= int64(len(s)) {
				return interp.NativeThrowName(vm, t, interp.ClassArrayIndexException,
					fmt.Sprintf("string index %d of %d", i, len(s)))
			}
			return interp.NativeReturn(heap.IntVal(int64(s[i])))
		}))
	b.NativeMethod("equals", "(Ljava/lang/Object;)Z", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			a, _ := stringOf(recv)
			bs, ok := stringOf(args[0])
			return interp.NativeReturn(heap.BoolVal(ok && a == bs))
		}))
	b.NativeMethod("hashCode", "()I", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(recv)
			var h int64
			for i := 0; i < len(s); i++ {
				h = 31*h + int64(s[i])
			}
			return interp.NativeReturn(heap.IntVal(h))
		}))
	b.NativeMethod("concat", "(Ljava/lang/String;)Ljava/lang/String;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			a, _ := stringOf(recv)
			bs, _ := stringOf(args[0])
			obj, err := vm.NewStringObject(t, t.CurrentIsolateOrZero(), a+bs)
			if err != nil {
				return interp.NativeResult{}, err
			}
			return interp.NativeReturn(heap.RefVal(obj))
		}))
	b.NativeMethod("substring", "(II)Ljava/lang/String;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(recv)
			from, to := args[0].I, args[1].I
			if from < 0 || to > int64(len(s)) || from > to {
				return interp.NativeThrowName(vm, t, interp.ClassArrayIndexException,
					fmt.Sprintf("substring [%d,%d) of %d", from, to, len(s)))
			}
			obj, err := vm.NewStringObject(t, t.CurrentIsolateOrZero(), s[from:to])
			if err != nil {
				return interp.NativeResult{}, err
			}
			return interp.NativeReturn(heap.RefVal(obj))
		}))
	b.NativeMethod("indexOf", "(Ljava/lang/String;)I", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(recv)
			sub, _ := stringOf(args[0])
			return interp.NativeReturn(heap.IntVal(int64(strings.Index(s, sub))))
		}))
	b.NativeMethod("startsWith", "(Ljava/lang/String;)Z", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(recv)
			prefix, _ := stringOf(args[0])
			return interp.NativeReturn(heap.BoolVal(strings.HasPrefix(s, prefix)))
		}))
	b.NativeMethod("intern", "()Ljava/lang/String;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			// Interning goes to the *current isolate's* pool: the same
			// content interned from two bundles yields two objects.
			s, _ := stringOf(recv)
			obj, err := vm.InternString(t, t.CurrentIsolateOrZero(), s)
			if err != nil {
				return interp.NativeResult{}, err
			}
			return interp.NativeReturn(heap.RefVal(obj))
		}))
	b.NativeMethod("toString", "()Ljava/lang/String;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			return interp.NativeReturn(recv)
		}))
	return b.MustBuild()
}

// builderPayload is the native state of a StringBuilder.
type builderPayload struct {
	b strings.Builder
}

// stringBuilderClass builds java/lang/StringBuilder with append/toString.
func stringBuilderClass() *classfile.Class {
	b := classfile.NewClass("java/lang/StringBuilder")
	pub := classfile.FlagPublic
	b.NativeMethod(classfile.InitName, "()V", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			recv.R.Native = &builderPayload{}
			return interp.NativeVoid()
		}))
	appendString := func(vm *interp.VM, t *interp.Thread, recv heap.Value, s string) (interp.NativeResult, error) {
		p, ok := recv.R.Native.(*builderPayload)
		if !ok {
			return interp.NativeThrowName(vm, t, interp.ClassNullPointerException, "uninitialized StringBuilder")
		}
		p.b.WriteString(s)
		vm.Heap().ResizeNative(recv.R, int64(p.b.Len()))
		return interp.NativeReturn(recv)
	}
	b.NativeMethod("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			s, _ := stringOf(args[0])
			return appendString(vm, t, recv, s)
		}))
	b.NativeMethod("appendInt", "(I)Ljava/lang/StringBuilder;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			return appendString(vm, t, recv, strconv.FormatInt(args[0].I, 10))
		}))
	b.NativeMethod("lengthOf", "()I", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			p, ok := recv.R.Native.(*builderPayload)
			if !ok {
				return interp.NativeThrowName(vm, t, interp.ClassNullPointerException, "uninitialized StringBuilder")
			}
			return interp.NativeReturn(heap.IntVal(int64(p.b.Len())))
		}))
	b.NativeMethod("toString", "()Ljava/lang/String;", pub, interp.NativeFunc(
		func(vm *interp.VM, t *interp.Thread, recv heap.Value, args []heap.Value) (interp.NativeResult, error) {
			p, ok := recv.R.Native.(*builderPayload)
			if !ok {
				return interp.NativeThrowName(vm, t, interp.ClassNullPointerException, "uninitialized StringBuilder")
			}
			obj, err := vm.NewStringObject(t, t.CurrentIsolateOrZero(), p.b.String())
			if err != nil {
				return interp.NativeResult{}, err
			}
			return interp.NativeReturn(heap.RefVal(obj))
		}))
	return b.MustBuild()
}
